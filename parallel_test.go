package zmesh

import (
	"sync"
	"testing"
)

func TestCompressFieldsMatchesSerial(t *testing.T) {
	ck := checkpoint(t)
	enc, err := NewEncoder(ck.Mesh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bound := RelBound(1e-4)
	parallel, err := enc.CompressFields(ck.Fields, bound, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(ck.Fields) {
		t.Fatalf("%d results for %d fields", len(parallel), len(ck.Fields))
	}
	for i, f := range ck.Fields {
		serial, err := enc.CompressField(f, bound)
		if err != nil {
			t.Fatal(err)
		}
		if parallel[i].FieldName != f.Name {
			t.Fatalf("result %d is %q, want %q (order must be preserved)",
				i, parallel[i].FieldName, f.Name)
		}
		if len(parallel[i].Payload) != len(serial.Payload) {
			t.Fatalf("field %s: parallel %d bytes, serial %d bytes",
				f.Name, len(parallel[i].Payload), len(serial.Payload))
		}
		for j := range serial.Payload {
			if parallel[i].Payload[j] != serial.Payload[j] {
				t.Fatalf("field %s: payload differs at byte %d (must be deterministic)", f.Name, j)
			}
		}
	}
}

func TestCompressFieldsWorkerCounts(t *testing.T) {
	ck := checkpoint(t)
	enc, err := NewEncoder(ck.Mesh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 16} {
		out, err := enc.CompressFields(ck.Fields, RelBound(1e-3), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, c := range out {
			if c == nil || len(c.Payload) == 0 {
				t.Fatalf("workers=%d: empty result", workers)
			}
		}
	}
}

func TestCompressFieldsPropagatesErrors(t *testing.T) {
	ck := checkpoint(t)
	other, err := NewMesh(2, 8, [3]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	foreign := NewField(other, "foreign")
	enc, err := NewEncoder(ck.Mesh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fields := append(append([]*Field{}, ck.Fields...), foreign)
	if _, err := enc.CompressFields(fields, RelBound(1e-3), 3); err == nil {
		t.Fatal("foreign field accepted in parallel path")
	}
}

func TestCompressFieldsEmpty(t *testing.T) {
	ck := checkpoint(t)
	enc, err := NewEncoder(ck.Mesh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := enc.CompressFields(nil, RelBound(1e-3), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("%d results for no fields", len(out))
	}
}

// The encoder must be safe for concurrent CompressField calls too (the
// recipe is read-only after construction).
func TestEncoderConcurrentUse(t *testing.T) {
	ck := checkpoint(t)
	enc, err := NewEncoder(ck.Mesh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := ck.Fields[g%len(ck.Fields)]
			if _, err := enc.CompressField(f, RelBound(1e-3)); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func BenchmarkCompressFieldsParallel(b *testing.B) {
	ck, _ := pipelineData(b)
	enc, err := NewEncoder(ck.Mesh, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	n := ck.Mesh.NumBlocks() * ck.Mesh.CellsPerBlock() * len(ck.Fields)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.CompressFields(ck.Fields, RelBound(1e-4), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressFieldsSerial(b *testing.B) {
	ck, _ := pipelineData(b)
	enc, err := NewEncoder(ck.Mesh, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	n := ck.Mesh.NumBlocks() * ck.Mesh.CellsPerBlock() * len(ck.Fields)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range ck.Fields {
			if _, err := enc.CompressField(f, RelBound(1e-4)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
