package zmesh

import (
	"context"
	"errors"
	"testing"
)

// The Context variants must honor cancellation: a canceled context stops
// dispatching work and surfaces ctx.Err() instead of partial results.
func TestCompressFieldsContextCanceled(t *testing.T) {
	ck := checkpoint(t)
	enc, err := NewEncoder(ck.Mesh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := enc.CompressFieldsContext(ctx, ck.Fields, RelBound(1e-3), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDecompressFieldsContextCanceled(t *testing.T) {
	ck := checkpoint(t)
	enc, err := NewEncoder(ck.Mesh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cs, err := enc.CompressFields(ck.Fields, RelBound(1e-3), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dec := NewDecoder(ck.Mesh)
	if _, err := dec.DecompressFieldsContext(ctx, cs, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The same decoder still works with a live context afterwards.
	out, err := dec.DecompressFieldsContext(context.Background(), cs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(cs) {
		t.Fatalf("%d results for %d artifacts", len(out), len(cs))
	}
}

// The background-context wrappers and the Context variants must agree: same
// results, and the empty-input fast path returns without spinning workers.
func TestDecompressFieldsEmpty(t *testing.T) {
	ck := checkpoint(t)
	dec := NewDecoder(ck.Mesh)
	out, err := dec.DecompressFields(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || len(out) != 0 {
		t.Fatalf("want empty non-nil slice, got %#v", out)
	}
	cs, err := dec.DecompressFields([]*Compressed{}, -3)
	if err != nil || len(cs) != 0 {
		t.Fatalf("empty slice with negative workers: %v, %d results", err, len(cs))
	}
}

func TestClampWorkers(t *testing.T) {
	cases := []struct {
		workers, jobs, want int
	}{
		{4, 10, 4},  // within budget
		{16, 3, 3},  // never more workers than jobs
		{1, 1, 1},   // exact
		{-7, 0, 1},  // degenerate inputs clamp to one
		{100, 1, 1}, // single job never fans out
	}
	for _, c := range cases {
		if got := clampWorkers(c.workers, c.jobs); got != c.want {
			t.Errorf("clampWorkers(%d, %d) = %d, want %d", c.workers, c.jobs, got, c.want)
		}
	}
	// workers <= 0 with jobs available resolves to GOMAXPROCS-bounded
	// parallelism: at least one, never more than the job count.
	if got := clampWorkers(0, 2); got < 1 || got > 2 {
		t.Errorf("clampWorkers(0, 2) = %d, want in [1, 2]", got)
	}
}
