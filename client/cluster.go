// ClusterClient: shard-aware routing over a zmeshd cluster.
//
// A cluster of zmeshd replicas (internal/cluster, server cluster mode)
// places each mesh on R owners by consistent hashing of the mesh id. The
// ClusterClient holds the same ring the replicas do — fetched from
// /v1/ring at first use — and routes every request straight to an owner,
// so the common case is one hop to a replica that has the recipe cached.
//
// Failure handling is layered:
//
//   - connect error / transport error / retryable status (429, 5xx): fail
//     over to the next owner in placement order, immediately — per-host
//     retry is disabled (the router owns the retry budget), so a killed
//     replica costs one failed dial, not a backoff window.
//   - 421 Misdirected Request: this client's ring is stale (membership
//     changed). Re-fetch /v1/ring, recompute the owners, rescan.
//   - whole sweep failed: sleep one jittered backoff round — honoring the
//     largest Retry-After any replica sent — then sweep again, up to the
//     configured retry budget.
//
// Registration is the one fan-out: structure bytes go to every owner (any
// single owner would do for correctness — peers heal each other — but
// seeding all R of them means no client ever pays the peer-fetch latency).
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	zmesh "repro"
	"repro/internal/cluster"
	"repro/internal/wire"
)

// ClusterClient routes requests across a zmeshd cluster by mesh id. It is
// safe for concurrent use.
type ClusterClient struct {
	seeds    []string
	template *Client // carries the caller's backoff/chunk/transport config
	opts     []Option

	mu      sync.RWMutex
	ring    *cluster.Ring
	clients map[string]*Client // per-host clients, retries disabled

	// Stats counters (see Stats): the harness asserts bounded retries.
	attempts      atomic.Int64
	failovers     atomic.Int64
	ringRefreshes atomic.Int64
	maxAttempts   atomic.Int64
}

// NewCluster creates a routing client from one or more seed URLs (any
// replica works; the full membership comes from /v1/ring). The options are
// applied to every per-host client except the retry budget, which the
// router owns: WithMaxRetries configures how many full sweeps of the owner
// list a request may take (default as for New).
func NewCluster(seeds []string, opts ...Option) (*ClusterClient, error) {
	if len(seeds) == 0 {
		return nil, errors.New("client: cluster needs at least one seed URL")
	}
	trimmed := make([]string, len(seeds))
	for i, s := range seeds {
		trimmed[i] = strings.TrimRight(s, "/")
	}
	return &ClusterClient{
		seeds:    trimmed,
		template: New(trimmed[0], opts...),
		opts:     opts,
		clients:  make(map[string]*Client),
	}, nil
}

// ClusterStats is a snapshot of the router's failure-handling counters.
type ClusterStats struct {
	// Attempts is the total per-replica request attempts issued.
	Attempts int64
	// Failovers counts attempts that moved on to another replica after a
	// connect error, transport error, or retryable status.
	Failovers int64
	// RingRefreshes counts /v1/ring re-fetches triggered by 421s.
	RingRefreshes int64
	// MaxAttemptsPerOp is the worst attempt count any single operation
	// needed — the harness asserts this stays within the retry budget.
	MaxAttemptsPerOp int64
}

// Stats returns a snapshot of the router's counters.
func (cc *ClusterClient) Stats() ClusterStats {
	return ClusterStats{
		Attempts:         cc.attempts.Load(),
		Failovers:        cc.failovers.Load(),
		RingRefreshes:    cc.ringRefreshes.Load(),
		MaxAttemptsPerOp: cc.maxAttempts.Load(),
	}
}

// clientFor returns (creating if needed) the per-host client for node. Per-
// host retries are disabled: the router decides what to do with each
// failure, so a dead replica costs one failed dial instead of a backoff
// window (the satellite fix for treating connect-refused like a 5xx).
func (cc *ClusterClient) clientFor(node string) *Client {
	cc.mu.RLock()
	cl := cc.clients[node]
	cc.mu.RUnlock()
	if cl != nil {
		return cl
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cl = cc.clients[node]; cl == nil {
		cl = New(node, append(append([]Option(nil), cc.opts...), WithMaxRetries(0))...)
		cc.clients[node] = cl
	}
	return cl
}

// Ring returns the client's current view of the cluster ring, fetching it
// on first use.
func (cc *ClusterClient) Ring(ctx context.Context) (*cluster.Ring, error) {
	cc.mu.RLock()
	r := cc.ring
	cc.mu.RUnlock()
	if r != nil {
		return r, nil
	}
	return cc.refreshRing(ctx)
}

// refreshRing re-fetches /v1/ring, trying every known node and then the
// seeds. A cluster where no replica serves a ring (all 404) degrades to a
// single-shard ring over the seeds — so the ClusterClient pointed at a
// plain single-node zmeshd just works.
func (cc *ClusterClient) refreshRing(ctx context.Context) (*cluster.Ring, error) {
	cc.ringRefreshes.Add(1)
	cc.mu.RLock()
	known := append([]string(nil), cc.seeds...)
	if cc.ring != nil {
		known = append(cc.ring.Nodes(), known...)
	}
	cc.mu.RUnlock()

	var lastErr error
	sawRingless := false
	seen := make(map[string]bool, len(known))
	for _, node := range known {
		if seen[node] {
			continue
		}
		seen[node] = true
		rr, err := cc.fetchRing(ctx, node)
		if err != nil {
			var se *StatusError
			if errors.As(err, &se) && se.Code == http.StatusNotFound {
				sawRingless = true // live replica, just not clustered
			} else {
				lastErr = err
			}
			continue
		}
		ring, err := cluster.New(rr.Nodes, rr.VNodes, rr.Replication)
		if err != nil {
			lastErr = fmt.Errorf("client: replica %s served an invalid ring: %w", node, err)
			continue
		}
		cc.setRing(ring)
		return ring, nil
	}
	if sawRingless {
		// Single-node compatibility: every reachable replica says "no ring",
		// so route everything to the seeds with no replication.
		ring, err := cluster.New(cc.seeds, cluster.DefaultVNodes, 1)
		if err != nil {
			return nil, err
		}
		cc.setRing(ring)
		return ring, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no replica reachable")
	}
	return nil, fmt.Errorf("client: fetching cluster ring: %w", lastErr)
}

func (cc *ClusterClient) setRing(r *cluster.Ring) {
	cc.mu.Lock()
	cc.ring = r
	cc.mu.Unlock()
}

// fetchRing GETs one node's /v1/ring without retries.
func (cc *ClusterClient) fetchRing(ctx context.Context, node string) (*wire.RingResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+wire.PathRing, nil)
	if err != nil {
		return nil, err
	}
	resp, err := cc.template.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp)
	}
	defer resp.Body.Close()
	var rr wire.RingResponse
	if err := decodeJSON(resp.Body, &rr); err != nil {
		return nil, fmt.Errorf("client: decoding ring response: %w", err)
	}
	return &rr, nil
}

// failover classifies an error from one replica: should the router move on
// to the next owner?
func failover(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return retryable(se.Code)
	}
	// Transport-level failures (connect refused, reset, timeout) all mean
	// "this replica can't answer right now" — the next owner might.
	return true
}

// misdirectedErr reports a 421: the replica disowns the mesh, so the ring
// is stale.
func misdirectedErr(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusMisdirectedRequest
}

// retryAfterOf extracts a replica's Retry-After hint, if any.
func retryAfterOf(err error) string {
	var se *StatusError
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return ""
}

// route runs op against the owners of meshID in placement order. Sweep
// semantics: each owner gets one attempt per round; a 421 triggers a ring
// refresh and a rescan of the (possibly new) owner list within the same
// round; a fully failed round sleeps one backoff step before the next. The
// round budget is the template's WithMaxRetries.
func (cc *ClusterClient) route(ctx context.Context, meshID string, op func(context.Context, *Client) error) error {
	ring, err := cc.Ring(ctx)
	if err != nil {
		return err
	}
	var attempts int64
	defer func() {
		cc.attempts.Add(attempts)
		for {
			cur := cc.maxAttempts.Load()
			if attempts <= cur || cc.maxAttempts.CompareAndSwap(cur, attempts) {
				return
			}
		}
	}()

	var lastErr error
	for round := 0; ; round++ {
		owners := ring.Owners(meshID)
		var retryAfter string
		refreshed := false
	sweep:
		for i := 0; i < len(owners); i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			attempts++
			err := op(ctx, cc.clientFor(owners[i]))
			if err == nil {
				return nil
			}
			lastErr = err
			switch {
			case misdirectedErr(err):
				// Stale ring. Refresh once per sweep and rescan the new
				// owner list from the top; a second 421 after a fresh ring
				// means the cluster itself is mid-reconfiguration — treat
				// it like any failed attempt.
				if !refreshed {
					refreshed = true
					if newRing, rerr := cc.refreshRing(ctx); rerr == nil {
						ring = newRing
						owners = ring.Owners(meshID)
						i = -1 // rescan from the first owner
						continue sweep
					}
				}
			case failover(err):
				if ra := retryAfterOf(err); ra != "" {
					retryAfter = ra
				}
				cc.failovers.Add(1)
			default:
				return err // terminal client error (4xx): no replica will differ
			}
		}
		if round >= cc.template.maxRetries {
			return fmt.Errorf("client: all %d owners failed after %d rounds: %w", len(owners), round+1, lastErr)
		}
		if err := cc.template.sleep(ctx, round+1, retryAfter, lastErr); err != nil {
			return err
		}
	}
}

// RegisterMesh registers structure bytes on every owner of their content
// address and returns the mesh id. The id is computed locally (it is the
// SHA-256 of the bytes), so routing happens before any request is sent.
// Registration succeeds if at least one owner accepted; owners that were
// down heal later via peer fetch.
func (cc *ClusterClient) RegisterMesh(ctx context.Context, structure []byte) (string, error) {
	id := cluster.MeshID(structure)
	ring, err := cc.Ring(ctx)
	if err != nil {
		return "", err
	}
	var lastErr error
	for round := 0; ; round++ {
		owners := ring.Owners(id)
		accepted := 0
		refreshed := false
		var retryAfter string
		for i := 0; i < len(owners); i++ {
			if err := ctx.Err(); err != nil {
				return "", err
			}
			cc.attempts.Add(1)
			got, err := cc.clientFor(owners[i]).RegisterMesh(ctx, structure)
			if err == nil {
				if got != id {
					return "", fmt.Errorf("client: replica %s returned mesh id %s, want %s", owners[i], got, id)
				}
				accepted++
				continue
			}
			lastErr = err
			if misdirectedErr(err) && !refreshed {
				refreshed = true
				if newRing, rerr := cc.refreshRing(ctx); rerr == nil {
					ring = newRing
					owners = ring.Owners(id)
					accepted = 0
					i = -1
					continue
				}
			}
			if ra := retryAfterOf(err); ra != "" {
				retryAfter = ra
			}
			cc.failovers.Add(1)
		}
		if accepted > 0 {
			return id, nil
		}
		if round >= cc.template.maxRetries {
			return "", fmt.Errorf("client: no owner accepted registration after %d rounds: %w", round+1, lastErr)
		}
		if err := cc.template.sleep(ctx, round+1, retryAfter, lastErr); err != nil {
			return "", err
		}
	}
}

// Register is RegisterMesh for a live mesh.
func (cc *ClusterClient) Register(ctx context.Context, m *zmesh.Mesh) (string, error) {
	return cc.RegisterMesh(ctx, m.Structure())
}

// Compress routes a compress request to an owner of meshID.
func (cc *ClusterClient) Compress(ctx context.Context, meshID, fieldName string, values []float64, opt zmesh.Options, bound zmesh.Bound) (*zmesh.Compressed, error) {
	var out *zmesh.Compressed
	err := cc.route(ctx, meshID, func(ctx context.Context, cl *Client) error {
		c, err := cl.Compress(ctx, meshID, fieldName, values, opt, bound)
		if err == nil {
			out = c
		}
		return err
	})
	return out, err
}

// CompressField is Compress for a live field.
func (cc *ClusterClient) CompressField(ctx context.Context, meshID string, f *zmesh.Field, opt zmesh.Options, bound zmesh.Bound) (*zmesh.Compressed, error) {
	return cc.Compress(ctx, meshID, f.Name, zmesh.FieldValues(f), opt, bound)
}

// Decompress routes a decompress request to an owner of meshID.
func (cc *ClusterClient) Decompress(ctx context.Context, meshID string, comp *zmesh.Compressed) ([]float64, error) {
	var out []float64
	err := cc.route(ctx, meshID, func(ctx context.Context, cl *Client) error {
		v, err := cl.Decompress(ctx, meshID, comp)
		if err == nil {
			out = v
		}
		return err
	})
	return out, err
}

// CompressBatch routes a batch compression to an owner of meshID.
func (cc *ClusterClient) CompressBatch(ctx context.Context, meshID string, fields []BatchField, opt zmesh.Options, bound zmesh.Bound) ([]*zmesh.Compressed, error) {
	var out []*zmesh.Compressed
	err := cc.route(ctx, meshID, func(ctx context.Context, cl *Client) error {
		cs, err := cl.CompressBatch(ctx, meshID, fields, opt, bound)
		if err == nil {
			out = cs
		}
		return err
	})
	return out, err
}

// CompressCheckpoint routes a whole-checkpoint compression to an owner of
// meshID.
func (cc *ClusterClient) CompressCheckpoint(ctx context.Context, meshID string, ck *zmesh.Checkpoint, opt zmesh.Options, bound zmesh.Bound) ([]*zmesh.Compressed, error) {
	var out []*zmesh.Compressed
	err := cc.route(ctx, meshID, func(ctx context.Context, cl *Client) error {
		cs, err := cl.CompressCheckpoint(ctx, meshID, ck, opt, bound)
		if err == nil {
			out = cs
		}
		return err
	})
	return out, err
}

// decodeJSON decodes a bounded JSON body (ring responses are tiny; the cap
// guards against a confused endpoint streaming forever).
func decodeJSON(r io.Reader, v any) error {
	body, err := io.ReadAll(io.LimitReader(r, 1<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}
