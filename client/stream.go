// Streaming and batch transport: the client side of zmeshd's chunked wire
// mode (wire/chunk.go) and checkpoint endpoint (wire/batch.go).
//
// CompressStream reads a field's float64-LE values from an io.Reader and
// frames them over the wire without ever holding the whole stream, so a
// multi-GB field flows through bounded client memory. Because the source
// is a stream, a failed attempt can only be retried while nothing has been
// consumed from it yet — once the first byte is committed to an attempt,
// failures surface to the caller instead of silently re-reading a source
// that cannot be rewound. DecompressStream and CompressCheckpoint send
// from buffers, so they keep the full retry/backoff machinery until the
// first response byte has been handed to the caller.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	zmesh "repro"
	"repro/internal/wire"
)

// BatchField is one field of a checkpoint batch request: a name plus its
// level-order value stream.
type BatchField struct {
	Name   string
	Values []float64
}

// statusError drains and closes a non-2xx response into a StatusError.
func statusError(resp *http.Response) *StatusError {
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	msg := strings.TrimSpace(string(body))
	var je wire.ErrorResponse
	if json.Unmarshal(body, &je) == nil && je.Error != "" {
		msg = je.Error
	}
	return &StatusError{Code: resp.StatusCode, Msg: msg, RetryAfter: resp.Header.Get("Retry-After")}
}

// compressQuery renders the shared compress-side query string.
func compressQuery(fieldName string, opt zmesh.Options, bound zmesh.Bound) string {
	return url.Values{
		wire.ParamField:  {fieldName},
		wire.ParamLayout: {opt.Layout.String()},
		wire.ParamCurve:  {opt.Curve},
		wire.ParamCodec:  {opt.Codec},
		wire.ParamBound:  {wire.FormatBound(bound)},
	}.Encode()
}

// countingReader tracks how many bytes have been consumed from the
// underlying stream — the retry-safety sentinel of CompressStream.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// CompressStream compresses one field whose float64-LE level-order values
// are read from values — the streaming sibling of Compress for fields too
// large to buffer. The request body is cut into chunked frames of the
// client's configured chunk size (WithChunkBytes); the response payload is
// reassembled from the server's chunked frames. Attempts are retried with
// the usual backoff only while zero bytes have been consumed from values;
// after that the stream cannot be replayed and the first failure is final.
func (c *Client) CompressStream(ctx context.Context, meshID, fieldName string, values io.Reader, opt zmesh.Options, bound zmesh.Bound) (*zmesh.Compressed, error) {
	opt = withDefaults(opt)
	reqURL := c.base + wire.CompressStreamPath(meshID) + "?" + compressQuery(fieldName, opt, bound)
	src := &countingReader{r: values}
	chunk := make([]byte, c.chunkSize())
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, pumpErr, err := c.startChunkedRequest(ctx, reqURL, src, chunk)
		var retryAfter string
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			if perr := <-pumpErr; perr != nil && !errors.Is(perr, io.ErrClosedPipe) {
				// The transport error was caused by the source itself; the
				// caller needs that, not the wrapped pipe error.
				return nil, fmt.Errorf("client: reading value stream: %w", perr)
			}
		case resp.StatusCode/100 == 2:
			payload, rerr := readChunkedAll(resp.Body)
			hdr := resp.Header
			resp.Body.Close()
			if rerr != nil {
				return nil, fmt.Errorf("client: reading chunked response: %w", rerr)
			}
			return artifactFromHeaders(hdr, payload)
		default:
			retryAfter = resp.Header.Get("Retry-After")
			se := statusError(resp)
			lastErr = se
			if !retryable(se.Code) {
				return nil, se
			}
		}
		if src.n > 0 {
			return nil, fmt.Errorf("client: stream failed after %d bytes were consumed (cannot replay an io.Reader): %w", src.n, lastErr)
		}
		if attempt >= c.maxRetries {
			return nil, fmt.Errorf("client: giving up after %d attempts: %w", attempt+1, lastErr)
		}
		if err := c.sleep(ctx, attempt+1, retryAfter, lastErr); err != nil {
			return nil, err
		}
	}
}

// startChunkedRequest issues one POST whose body is the chunked framing of
// src, pumped through a pipe so the request streams instead of buffering.
// The returned channel yields the pump goroutine's error once the request
// has fully completed (the transport always closes the request body, which
// unblocks the pump).
func (c *Client) startChunkedRequest(ctx context.Context, reqURL string, src io.Reader, chunk []byte) (*http.Response, <-chan error, error) {
	pr, pw := io.Pipe()
	pumpErr := make(chan error, 1)
	go func() {
		cw := wire.NewChunkWriter(pw)
		var perr error
		for {
			n, rerr := src.Read(chunk)
			if n > 0 {
				if werr := cw.WriteChunk(chunk[:n]); werr != nil {
					perr = werr
					break
				}
			}
			if rerr == io.EOF {
				perr = cw.Close()
				break
			}
			if rerr != nil {
				perr = rerr
				break
			}
		}
		pw.CloseWithError(perr) // nil closes cleanly (EOF to the transport)
		pumpErr <- perr
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, reqURL, pr)
	if err != nil {
		pr.CloseWithError(err)
		return nil, pumpErr, err
	}
	req.Header.Set("Content-Type", wire.ContentTypeChunked)
	resp, err := c.hc.Do(req)
	return resp, pumpErr, err
}

// readChunkedAll reassembles a whole chunked stream into one buffer.
func readChunkedAll(r io.Reader) ([]byte, error) {
	cr := wire.NewChunkReader(r)
	var out, buf []byte
	for {
		p, err := cr.Next(buf)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
		buf = p
	}
}

// sleep waits out one retry delay (see retryDelay), bounded by ctx.
func (c *Client) sleep(ctx context.Context, attempt int, retryAfter string, lastErr error) error {
	t := time.NewTimer(c.retryDelay(attempt, retryAfter, lastErr))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Client) chunkSize() int {
	n := c.chunkBytes
	if n <= 0 {
		n = wire.DefaultChunkBytes
	}
	if n > wire.MaxChunkPayload {
		n = wire.MaxChunkPayload
	}
	return n
}

// DecompressStream decompresses an artifact server-side and streams the
// reconstructed float64-LE values into w, returning the number of values
// written. The request is replayed from the artifact buffer on 429/5xx
// with the usual backoff; once the first response byte has been written to
// w, a mid-stream failure is final (w cannot be rewound). A truncated
// response (missing terminator frame) is detected by the chunk framing and
// surfaces as an error rather than silently short data.
func (c *Client) DecompressStream(ctx context.Context, meshID string, comp *zmesh.Compressed, w io.Writer) (int, error) {
	q := url.Values{
		wire.ParamField:  {comp.FieldName},
		wire.ParamLayout: {comp.Layout.String()},
		wire.ParamCurve:  {comp.Curve},
	}.Encode()
	reqURL := c.base + wire.DecompressStreamPath(meshID) + "?" + q
	framed := wire.AppendChunked(nil, comp.Payload, c.chunkSize())
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, reqURL, bytes.NewReader(framed))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", wire.ContentTypeChunked)
		resp, err := c.hc.Do(req)
		var retryAfter string
		if err != nil {
			if ctx.Err() != nil {
				return 0, ctx.Err()
			}
			lastErr = err
		} else if resp.StatusCode/100 == 2 {
			n, err := c.copyChunked(w, resp.Body)
			resp.Body.Close()
			if err != nil {
				return n / 8, fmt.Errorf("client: reading chunked values: %w", err)
			}
			if n%8 != 0 {
				return n / 8, fmt.Errorf("client: server streamed %d bytes, not a multiple of 8", n)
			}
			if comp.NumValues != 0 && n/8 != comp.NumValues {
				return n / 8, fmt.Errorf("client: server streamed %d values, artifact claims %d", n/8, comp.NumValues)
			}
			return n / 8, nil
		} else {
			retryAfter = resp.Header.Get("Retry-After")
			se := statusError(resp)
			lastErr = se
			if !retryable(se.Code) {
				return 0, se
			}
		}
		if attempt >= c.maxRetries {
			return 0, fmt.Errorf("client: giving up after %d attempts: %w", attempt+1, lastErr)
		}
		if err := c.sleep(ctx, attempt+1, retryAfter, lastErr); err != nil {
			return 0, err
		}
	}
}

// copyChunked unframes a chunked stream from r into w, returning the
// payload bytes written.
func (c *Client) copyChunked(w io.Writer, r io.Reader) (int, error) {
	cr := wire.NewChunkReader(r)
	buf := make([]byte, 0, c.chunkSize())
	total := 0
	for {
		p, err := cr.Next(buf)
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
		n, werr := w.Write(p)
		total += n
		if werr != nil {
			return total, werr
		}
		buf = p
	}
}

// CompressBatch compresses several fields of one registered mesh in a
// single request against one cached server-side encoder — the recipe cost
// is paid at most once for the whole batch (the paper's amortization
// claim, made cross-process). All fields share opt and bound; results come
// back in request order. The body is buffered, so the full retry/backoff
// machinery applies.
func (c *Client) CompressBatch(ctx context.Context, meshID string, fields []BatchField, opt zmesh.Options, bound zmesh.Bound) ([]*zmesh.Compressed, error) {
	if len(fields) == 0 {
		return nil, errors.New("client: empty batch")
	}
	opt = withDefaults(opt)
	var body bytes.Buffer
	bw := wire.NewBatchWriter(&body)
	meta := wire.FormatBound(bound)
	var scratch []byte
	for _, f := range fields {
		scratch = wire.AppendFloats(scratch[:0], f.Values)
		if err := bw.WriteSection(f.Name, meta, scratch); err != nil {
			return nil, err
		}
	}
	if err := bw.Close(); err != nil {
		return nil, err
	}
	return c.sendBatch(ctx, meshID, body.Bytes(), opt)
}

// CompressCheckpoint is CompressBatch over every field of a checkpoint,
// serialized one at a time through zmesh.EachFieldValues so the request
// body is built with a single reused stream buffer.
func (c *Client) CompressCheckpoint(ctx context.Context, meshID string, ck *zmesh.Checkpoint, opt zmesh.Options, bound zmesh.Bound) ([]*zmesh.Compressed, error) {
	if len(ck.Fields) == 0 {
		return nil, errors.New("client: checkpoint has no fields")
	}
	opt = withDefaults(opt)
	var body bytes.Buffer
	bw := wire.NewBatchWriter(&body)
	meta := wire.FormatBound(bound)
	var scratch []byte
	if err := zmesh.EachFieldValues(ck, func(name string, values []float64) error {
		scratch = wire.AppendFloats(scratch[:0], values)
		return bw.WriteSection(name, meta, scratch)
	}); err != nil {
		return nil, err
	}
	if err := bw.Close(); err != nil {
		return nil, err
	}
	return c.sendBatch(ctx, meshID, body.Bytes(), opt)
}

// sendBatch posts a built batch body to the checkpoint endpoint and parses
// the sectioned response into artifacts.
func (c *Client) sendBatch(ctx context.Context, meshID string, body []byte, opt zmesh.Options) ([]*zmesh.Compressed, error) {
	q := url.Values{
		wire.ParamLayout: {opt.Layout.String()},
		wire.ParamCurve:  {opt.Curve},
		wire.ParamCodec:  {opt.Codec},
	}.Encode()
	respBody, _, err := c.do(ctx, http.MethodPost, c.base+wire.CheckpointPath(meshID)+"?"+q, wire.ContentTypeBatch, body)
	if err != nil {
		return nil, err
	}
	br := wire.NewBatchReader(bytes.NewReader(respBody), 0)
	var out []*zmesh.Compressed
	var buf []byte
	for {
		name, meta, payload, err := br.Next(buf)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("client: parsing batch response (server aborted mid-batch?): %w", err)
		}
		numValues, err := strconv.Atoi(meta)
		if err != nil {
			return nil, fmt.Errorf("client: batch section %q carries no value count: %w", name, err)
		}
		out = append(out, &zmesh.Compressed{
			FieldName: name,
			Layout:    opt.Layout,
			Curve:     opt.Curve,
			Codec:     opt.Codec,
			NumValues: numValues,
			Payload:   append([]byte(nil), payload...),
		})
		buf = payload
	}
}
