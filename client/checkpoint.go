package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/compress/multilevel"
	"repro/internal/wire"
)

// Checkpoint reads: the visualization-client half of the temporal store.
// Every method takes the checkpoint id a Seal returned and talks straight to
// the persisted artifacts — no session needs to exist, and the same id keeps
// working across daemon restarts.

// CheckpointInfo fetches the JSON summary of a sealed checkpoint.
func (c *Client) CheckpointInfo(ctx context.Context, checkpointID string) (*wire.CheckpointResponse, error) {
	body, _, err := c.do(ctx, http.MethodGet, c.base+wire.CheckpointInfoPath(checkpointID), "", nil)
	if err != nil {
		return nil, err
	}
	var resp wire.CheckpointResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("client: decoding checkpoint response: %w", err)
	}
	return &resp, nil
}

// CheckpointStructure fetches the serialized mesh topology governing one
// snapshot (default: the last) of one field stream (default: the first).
// Rebuild the mesh with zmesh.NewDecoderFromStructure.
func (c *Client) CheckpointStructure(ctx context.Context, checkpointID, field string, snap int) ([]byte, error) {
	reqURL := c.base + wire.CheckpointStructurePath(checkpointID) + "?" + snapQuery(field, snap)
	body, _, err := c.do(ctx, http.MethodGet, reqURL, "", nil)
	if err != nil {
		return nil, err
	}
	return body, nil
}

func snapQuery(field string, snap int) string {
	q := ""
	if field != "" {
		q = wire.ParamField + "=" + url.QueryEscape(field)
	}
	if snap >= 0 {
		if q != "" {
			q += "&"
		}
		q += wire.ParamSnapshot + "=" + strconv.Itoa(snap)
	}
	return q
}

// ReadField fetches the full reconstruction of one snapshot (snap < 0 means
// the last) of one field, as level-order values.
func (c *Client) ReadField(ctx context.Context, checkpointID, field string, snap int) ([]float64, error) {
	reqURL := c.base + wire.CheckpointFieldPath(checkpointID, url.PathEscape(field))
	if q := snapQuery("", snap); q != "" {
		reqURL += "?" + q
	}
	body, _, err := c.do(ctx, http.MethodGet, reqURL, "", nil)
	if err != nil {
		return nil, err
	}
	return decodeChunkedFloats(body)
}

func decodeChunkedFloats(body []byte) ([]float64, error) {
	raw, err := readChunkedAll(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("client: reading chunked values: %w", err)
	}
	values, err := wire.DecodeFloats(raw)
	if err != nil {
		return nil, fmt.Errorf("client: decoding values: %w", err)
	}
	return values, nil
}

// LevelData is one progressive level-prefix read.
type LevelData struct {
	// Values is the level-order prefix covering refinement levels
	// 0..Levels-1. Turn it into a full field with
	// zmesh.ReconstructPartialLevels.
	Values []float64
	// Levels is the number of refinement levels delivered.
	Levels int
	// MeshLevels is the total refinement level count of the snapshot's
	// topology (Levels == MeshLevels means the read was complete).
	MeshLevels int
	// Snapshot and Snapshots locate the read within the stream.
	Snapshot  int
	Snapshots int
}

// ReadFieldLevels fetches the coarse prefix covering the first `levels`
// refinement levels of one snapshot — the level-of-detail read a
// visualization client renders while finer levels are still in flight.
func (c *Client) ReadFieldLevels(ctx context.Context, checkpointID, field string, snap, levels int) (*LevelData, error) {
	reqURL := c.base + wire.CheckpointFieldPath(checkpointID, url.PathEscape(field)) +
		"?" + wire.ParamLevels + "=" + strconv.Itoa(levels)
	if q := snapQuery("", snap); q != "" {
		reqURL += "&" + q
	}
	body, hdr, err := c.do(ctx, http.MethodGet, reqURL, "", nil)
	if err != nil {
		return nil, err
	}
	values, err := decodeChunkedFloats(body)
	if err != nil {
		return nil, err
	}
	ld := &LevelData{Values: values}
	for _, h := range []struct {
		name string
		dst  *int
	}{
		{wire.HeaderLevels, &ld.Levels},
		{wire.HeaderMeshLevels, &ld.MeshLevels},
		{wire.HeaderSnapshot, &ld.Snapshot},
		{wire.HeaderSnapshots, &ld.Snapshots},
	} {
		if *h.dst, err = strconv.Atoi(hdr.Get(h.name)); err != nil {
			return nil, fmt.Errorf("client: bad %s header: %w", h.name, err)
		}
	}
	return ld, nil
}

// TierData is one tiered progressive read: the reconstruction after decoding
// all delivered tiers, plus each tier's guaranteed absolute error bound.
// Bounds decrease strictly, so decoding the first k tiers of any response
// yields an error no worse than Bounds[k-1] — the strictly-improving
// guarantee of the tiered read.
type TierData struct {
	Values []float64
	Bounds []float64
	// Tiers are the raw tiers as received; DecompressProgressive over any
	// prefix gives the coarser previews.
	Tiers []multilevel.Tier
}

// DecodePrefix reconstructs the bounded-error preview carried by the first
// k tiers: the result's max error is guaranteed <= Bounds[k-1].
func (td *TierData) DecodePrefix(k int) ([]float64, error) {
	if k < 1 || k > len(td.Tiers) {
		return nil, fmt.Errorf("client: tier prefix %d out of range (have %d tiers)", k, len(td.Tiers))
	}
	return multilevel.New().DecompressProgressive(td.Tiers[:k])
}

// ReadFieldTiers fetches one snapshot as `tiers` progressive tiers with
// strictly decreasing error bounds and decodes them all.
func (c *Client) ReadFieldTiers(ctx context.Context, checkpointID, field string, snap, tiers int) (*TierData, error) {
	reqURL := c.base + wire.CheckpointFieldPath(checkpointID, url.PathEscape(field)) +
		"?" + wire.ParamTiers + "=" + strconv.Itoa(tiers)
	if q := snapQuery("", snap); q != "" {
		reqURL += "&" + q
	}
	body, _, err := c.do(ctx, http.MethodGet, reqURL, "", nil)
	if err != nil {
		return nil, err
	}
	br := wire.NewBatchReader(bytes.NewReader(body), 0)
	td := &TierData{}
	for {
		_, meta, payload, err := br.Next(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("client: reading tier batch: %w", err)
		}
		bound, perr := strconv.ParseFloat(meta, 64)
		if perr != nil {
			return nil, fmt.Errorf("client: bad tier bound %q: %w", meta, perr)
		}
		td.Tiers = append(td.Tiers, multilevel.Tier{Bound: bound, Payload: payload})
		td.Bounds = append(td.Bounds, bound)
	}
	if len(td.Tiers) == 0 {
		return nil, fmt.Errorf("client: tier response carried no tiers")
	}
	td.Values, err = multilevel.New().DecompressProgressive(td.Tiers)
	if err != nil {
		return nil, fmt.Errorf("client: decoding tiers: %w", err)
	}
	return td, nil
}
