package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"

	zmesh "repro"
	"repro/internal/wire"
)

// TemporalSession is a simulation's in-situ attachment to zmeshd's temporal
// checkpoint store: one server-side session holding one keyframe/delta
// stream per quantity. The session owns a local TemporalEncoder per field,
// frames each snapshot onto the wire, and — the part that makes it safe to
// run unattended for hours — recovers from server-side state loss
// automatically. An evicted or restarted session (404), a stream that lost
// its baseline (409), or a history divergence (412) all resolve the same
// way: re-establish the state and re-send the current snapshot as a forced
// keyframe. Nothing is ever replayed and the stream can never silently fork,
// because every append carries its expected sequence number and the server
// refuses anything that does not line up.
//
// A TemporalSession is safe for concurrent use; appends are serialized, as
// temporal order demands.
type TemporalSession struct {
	c   *Client
	opt zmesh.Options

	mu   sync.Mutex
	id   string
	encs map[string]*zmesh.TemporalEncoder
	// forced marks fields whose next keyframe is a recovery (re-sync) frame
	// rather than a topology change, so the server can count them apart.
	forced map[string]bool
	// seq is the next frame index per field, echoed to the server on every
	// append for exactly-once semantics.
	seq    map[string]uint64
	sealed bool
}

// ErrSessionSealed is returned by Append and Seal after a successful Seal.
var ErrSessionSealed = errors.New("client: temporal session already sealed")

// NewTemporalSession creates a server-side temporal session. opt names the
// pipeline every stream of this session encodes with; LayoutAuto is
// rejected — temporal streams need one stable concrete layout so delta
// frames stay comparable across snapshots.
func (c *Client) NewTemporalSession(ctx context.Context, opt zmesh.Options) (*TemporalSession, error) {
	opt = withDefaults(opt)
	if opt.Layout == zmesh.LayoutAuto {
		return nil, fmt.Errorf("client: temporal sessions need a concrete layout: %w", zmesh.ErrAutoLayout)
	}
	ts := &TemporalSession{
		c:      c,
		opt:    opt,
		encs:   make(map[string]*zmesh.TemporalEncoder),
		forced: make(map[string]bool),
		seq:    make(map[string]uint64),
	}
	if err := ts.createLocked(ctx); err != nil {
		return nil, err
	}
	return ts, nil
}

// createLocked mints a fresh server-side session and resets every stream to
// start over with a forced keyframe at sequence zero. Callers hold ts.mu
// (or, from NewTemporalSession, exclusive ownership).
func (ts *TemporalSession) createLocked(ctx context.Context) error {
	body, _, err := ts.c.do(ctx, http.MethodPost, ts.c.base+wire.PathSessions, "", nil)
	if err != nil {
		return err
	}
	var resp wire.SessionResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return fmt.Errorf("client: decoding session response: %w", err)
	}
	if resp.SessionID == "" {
		return errors.New("client: session response carries no session_id")
	}
	ts.id = resp.SessionID
	for name, enc := range ts.encs {
		enc.ForceKeyframe()
		ts.forced[name] = true
		ts.seq[name] = 0
	}
	return nil
}

// ID returns the current server-side session id (it changes when recovery
// re-creates the session).
func (ts *TemporalSession) ID() string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.id
}

// AppendResult reports one accepted snapshot append.
type AppendResult struct {
	// Frame is the locally encoded temporal frame the server accepted —
	// callers that mirror the stream (e.g. to track reconstruction error)
	// can feed it to their own TemporalDecoder.
	Frame *zmesh.TemporalCompressed
	// FrameIndex is the frame's position in its server-side stream.
	FrameIndex int
	// Keyframe and Forced mirror the accepted frame's flags.
	Keyframe bool
	Forced   bool
	// Recovered reports that this append transparently re-established
	// server-side state (session re-create and/or forced keyframe) first.
	Recovered bool
	// Object is the content address the frame bytes were persisted under.
	Object string
}

// Append encodes the next snapshot of field f (keyframe or delta, decided by
// the encoder from the topology) and posts it to the session's stream,
// transparently recovering from server-side state loss. The error bound
// resolves against this snapshot's own value stream, like
// TemporalEncoder.CompressSnapshot.
func (ts *TemporalSession) Append(ctx context.Context, f *zmesh.Field, bound zmesh.Bound) (*AppendResult, error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.sealed {
		return nil, ErrSessionSealed
	}
	enc := ts.encs[f.Name]
	if enc == nil {
		var err error
		enc, err = zmesh.NewTemporalEncoder(ts.opt)
		if err != nil {
			return nil, err
		}
		ts.encs[f.Name] = enc
		ts.forced[f.Name] = false
		ts.seq[f.Name] = 0
	}

	recovered := false
	// Two recovery rounds cover the worst case (evicted session discovered
	// via 404, then nothing else); a third failure is a real error.
	for attempt := 0; ; attempt++ {
		tc, err := enc.CompressSnapshot(f, bound)
		if err != nil {
			return nil, err
		}
		forced := tc.Keyframe && ts.forced[f.Name]
		frame, err := wire.EncodeTemporalFrame(&wire.TemporalFrame{
			Keyframe:  tc.Keyframe,
			Forced:    forced,
			Field:     tc.FieldName,
			Layout:    tc.Layout.String(),
			Curve:     tc.Curve,
			Codec:     tc.Codec,
			NumValues: tc.NumValues,
			Bound:     tc.Bound,
			Structure: tc.Structure,
			Payload:   tc.Payload,
		})
		if err != nil {
			return nil, err
		}
		reqURL := ts.c.base + wire.SessionFramesPath(ts.id, url.PathEscape(f.Name)) +
			"?" + wire.ParamSeq + "=" + strconv.FormatUint(ts.seq[f.Name], 10)
		body, _, err := ts.c.do(ctx, http.MethodPost, reqURL, wire.ContentTypeTemporal, frame)
		if err == nil {
			var resp wire.FrameResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				return nil, fmt.Errorf("client: decoding frame response: %w", err)
			}
			ts.forced[f.Name] = false
			ts.seq[f.Name]++
			return &AppendResult{
				Frame:      tc,
				FrameIndex: resp.FrameIndex,
				Keyframe:   resp.Keyframe,
				Forced:     resp.Forced,
				Recovered:  recovered,
				Object:     resp.Object,
			}, nil
		}

		var se *StatusError
		if !errors.As(err, &se) || attempt >= 2 {
			// Ambiguous failure (transport, exhausted retries): the server
			// may or may not have taken the frame. Force a keyframe so the
			// next append re-syncs instead of chaining a delta onto unknown
			// state; the sequence check catches any divergence.
			enc.ForceKeyframe()
			ts.forced[f.Name] = true
			return nil, err
		}
		switch se.Code {
		case http.StatusNotFound:
			// Session evicted or daemon restarted: new session, every stream
			// restarts with a forced keyframe.
			if cerr := ts.createLocked(ctx); cerr != nil {
				return nil, fmt.Errorf("client: re-creating evicted session: %w", cerr)
			}
		case http.StatusConflict:
			// This stream lost its baseline (server knows no keyframe):
			// restart just this field.
			enc.ForceKeyframe()
			ts.forced[f.Name] = true
			ts.seq[f.Name] = 0
		case http.StatusPreconditionFailed:
			// Histories diverged — the only safe move is a full resync into
			// a fresh session.
			if cerr := ts.createLocked(ctx); cerr != nil {
				return nil, fmt.Errorf("client: re-creating diverged session: %w", cerr)
			}
		default:
			enc.ForceKeyframe()
			ts.forced[f.Name] = true
			return nil, err
		}
		recovered = true
	}
}

// Seal makes the checkpoint durable: the server writes the manifest to the
// content-addressed store and retires the session. The returned checkpoint
// id is the handle for every read. After a successful Seal the session is
// spent; further Append or Seal calls return ErrSessionSealed.
func (ts *TemporalSession) Seal(ctx context.Context) (string, error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.sealed {
		return "", ErrSessionSealed
	}
	body, _, err := ts.c.do(ctx, http.MethodPost, ts.c.base+wire.SessionSealPath(ts.id), "", nil)
	if err != nil {
		return "", err
	}
	var resp wire.SealResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return "", fmt.Errorf("client: decoding seal response: %w", err)
	}
	if resp.CheckpointID == "" {
		return "", errors.New("client: seal response carries no checkpoint_id")
	}
	ts.sealed = true
	return resp.CheckpointID, nil
}
