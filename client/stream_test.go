package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	zmesh "repro"
	"repro/internal/wire"
)

// fakeStreamServer mocks the compress-stream endpoint: it unframes the
// chunked request, records the payload, and answers with a chunked
// response plus the metadata headers.
func fakeStreamServer(t *testing.T, reply []byte, before func(n int, w http.ResponseWriter, r *http.Request) bool) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1))
		if before != nil && !before(n, w, r) {
			return
		}
		cr := wire.NewChunkReader(r.Body)
		var got []byte
		for {
			p, err := cr.Next(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			got = append(got, p...)
		}
		h := w.Header()
		h.Set("Content-Type", wire.ContentTypeChunked)
		h.Set(wire.HeaderField, "dens")
		h.Set(wire.HeaderLayout, zmesh.LayoutZMesh.String())
		h.Set(wire.HeaderCurve, "hilbert")
		h.Set(wire.HeaderCodec, "sz")
		h.Set(wire.HeaderNumValues, strconv.Itoa(len(got)/8))
		w.Write(wire.AppendChunked(nil, reply, 0))
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestCompressStreamFramesAndParses(t *testing.T) {
	values := make([]float64, 1000)
	for i := range values {
		values[i] = float64(i) * 0.25
	}
	reply := []byte("the artifact payload")
	srv, calls := fakeStreamServer(t, reply, nil)
	c := New(srv.URL, WithChunkBytes(256)) // many frames
	comp, err := c.CompressStream(context.Background(), "m1", "dens",
		bytes.NewReader(wire.AppendFloats(nil, values)), zmesh.DefaultOptions(), zmesh.AbsBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(comp.Payload, reply) {
		t.Fatalf("payload %q, want %q", comp.Payload, reply)
	}
	if comp.NumValues != len(values) || comp.FieldName != "dens" || comp.Codec != "sz" {
		t.Fatalf("artifact metadata wrong: %+v", comp)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d requests, want 1", calls.Load())
	}
}

// TestCompressStreamRetriesBeforeFirstByte: sheds that land before any
// source byte is consumed are retried with backoff, like buffered
// requests.
func TestCompressStreamRetriesBeforeFirstByte(t *testing.T) {
	reply := []byte("ok")
	srv, calls := fakeStreamServer(t, reply, func(n int, w http.ResponseWriter, r *http.Request) bool {
		if n <= 2 {
			// Shed without reading the body: the client's source is untouched.
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
			return false
		}
		return true
	})
	c := New(srv.URL, WithBackoff(time.Microsecond, time.Millisecond), WithMaxRetries(8))
	// A blocking-then-ready source would race the shed with the pump; an
	// empty source makes "zero bytes consumed" deterministic.
	comp, err := c.CompressStream(context.Background(), "m1", "dens",
		bytes.NewReader(nil), zmesh.DefaultOptions(), zmesh.AbsBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(comp.Payload, reply) {
		t.Fatalf("payload %q, want %q", comp.Payload, reply)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d requests, want 3 (two sheds + success)", calls.Load())
	}
}

// TestCompressStreamNoReplayAfterConsumption: once the server has consumed
// source bytes, a failure must NOT retry (the io.Reader cannot be rewound)
// and the error must say so.
func TestCompressStreamNoReplayAfterConsumption(t *testing.T) {
	srv, calls := fakeStreamServer(t, nil, func(n int, w http.ResponseWriter, r *http.Request) bool {
		// Read the whole body first — the source is definitely consumed —
		// then fail with a normally-retryable status.
		io.Copy(io.Discard, r.Body)
		http.Error(w, `{"error":"boom"}`, http.StatusServiceUnavailable)
		return false
	})
	c := New(srv.URL, WithBackoff(time.Microsecond, time.Millisecond), WithMaxRetries(8))
	_, err := c.CompressStream(context.Background(), "m1", "dens",
		bytes.NewReader(wire.AppendFloats(nil, make([]float64, 4096))), zmesh.DefaultOptions(), zmesh.AbsBound(1e-3))
	if err == nil {
		t.Fatal("stream failure after consumption did not error")
	}
	if !strings.Contains(err.Error(), "cannot replay") {
		t.Fatalf("error %q does not explain the no-replay rule", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d requests, want exactly 1 (no replay of a consumed stream)", calls.Load())
	}
}

// TestCompressStreamNonRetryableStatus: a 400 fails immediately as a
// StatusError, never retried.
func TestCompressStreamNonRetryableStatus(t *testing.T) {
	srv, calls := fakeStreamServer(t, nil, func(n int, w http.ResponseWriter, r *http.Request) bool {
		http.Error(w, `{"error":"bad bound"}`, http.StatusBadRequest)
		return false
	})
	c := New(srv.URL, WithMaxRetries(8))
	_, err := c.CompressStream(context.Background(), "m1", "dens",
		bytes.NewReader(nil), zmesh.DefaultOptions(), zmesh.AbsBound(1e-3))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("got %v, want a 400 StatusError", err)
	}
	if se.Msg != "bad bound" {
		t.Fatalf("message %q not extracted from the JSON error body", se.Msg)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d requests, want 1", calls.Load())
	}
}

// TestCompressStreamSourceError: a failure in the caller's reader surfaces
// as a source error, not a transport one.
func TestCompressStreamSourceError(t *testing.T) {
	srv, _ := fakeStreamServer(t, nil, nil)
	c := New(srv.URL, WithMaxRetries(2), WithBackoff(time.Microsecond, time.Millisecond))
	boom := errors.New("disk on fire")
	_, err := c.CompressStream(context.Background(), "m1", "dens",
		io.MultiReader(bytes.NewReader(make([]byte, 64)), &failingReader{err: boom}),
		zmesh.DefaultOptions(), zmesh.AbsBound(1e-3))
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("got %v, want the source error", err)
	}
}

type failingReader struct{ err error }

func (f *failingReader) Read([]byte) (int, error) { return 0, f.err }

// TestDecompressStreamRetriesAndValidates: transient failures replay from
// the artifact buffer; the streamed values land in the writer; count and
// alignment are validated.
func TestDecompressStreamRetriesAndValidates(t *testing.T) {
	values := []float64{1, 2, 3, 4.5}
	valueBytes := wire.AppendFloats(nil, values)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
			return
		}
		// The request body must be the chunked framing of the payload.
		cr := wire.NewChunkReader(r.Body)
		var got []byte
		for {
			p, err := cr.Next(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			got = append(got, p...)
		}
		if string(got) != "artifact" {
			http.Error(w, `{"error":"wrong payload"}`, http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", wire.ContentTypeChunked)
		w.Write(wire.AppendChunked(nil, valueBytes, 8)) // one float per chunk
	}))
	t.Cleanup(srv.Close)

	c := New(srv.URL, WithBackoff(time.Microsecond, time.Millisecond), WithMaxRetries(8))
	comp := &zmesh.Compressed{FieldName: "dens", Layout: zmesh.LayoutZMesh, Curve: "hilbert", NumValues: len(values), Payload: []byte("artifact")}
	var out bytes.Buffer
	n, err := c.DecompressStream(context.Background(), "m1", comp, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(values) {
		t.Fatalf("returned %d values, want %d", n, len(values))
	}
	if !bytes.Equal(out.Bytes(), valueBytes) {
		t.Fatal("streamed value bytes differ from the server's")
	}
	if calls.Load() != 3 {
		t.Fatalf("%d requests, want 3", calls.Load())
	}

	// A count mismatch against the artifact must be flagged.
	comp.NumValues = len(values) + 1
	if _, err := c.DecompressStream(context.Background(), "m1", comp, io.Discard); err == nil {
		t.Fatal("value-count mismatch not detected")
	}
}

// TestDecompressStreamTruncatedResponse: a response missing its terminator
// frame (server aborted mid-stream) is an error, never silent short data.
func TestDecompressStreamTruncatedResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		full := wire.AppendChunked(nil, wire.AppendFloats(nil, []float64{1, 2, 3}), 8)
		w.Write(full[:len(full)-8]) // drop the terminator
	}))
	t.Cleanup(srv.Close)
	c := New(srv.URL, WithMaxRetries(0))
	comp := &zmesh.Compressed{FieldName: "dens", Layout: zmesh.LayoutZMesh, Curve: "hilbert", Payload: []byte("x")}
	_, err := c.DecompressStream(context.Background(), "m1", comp, io.Discard)
	if err == nil {
		t.Fatal("truncated response accepted")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("got %v, want an ErrUnexpectedEOF-wrapped error", err)
	}
}

// TestCompressBatchBuildsSectionsAndParses: the batch request carries one
// section per field with the bound as meta, and the response sections come
// back as artifacts with copied payloads.
func TestCompressBatchBuildsSectionsAndParses(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		br := wire.NewBatchReader(r.Body, 0)
		h := w.Header()
		h.Set("Content-Type", wire.ContentTypeBatch)
		h.Set(wire.HeaderLayout, zmesh.LayoutZMesh.String())
		h.Set(wire.HeaderCurve, "hilbert")
		h.Set(wire.HeaderCodec, "sz")
		bw := wire.NewBatchWriter(w)
		for {
			name, meta, payload, err := br.Next(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if meta != "abs:0.001" {
				http.Error(w, `{"error":"missing bound meta"}`, http.StatusBadRequest)
				return
			}
			// Echo a fake artifact: payload = name, count = len(values).
			bw.WriteSection(name, strconv.Itoa(len(payload)/8), []byte("artifact-"+name))
		}
		bw.Close()
	}))
	t.Cleanup(srv.Close)

	c := New(srv.URL)
	fields := []BatchField{
		{Name: "dens", Values: []float64{1, 2}},
		{Name: "pres", Values: []float64{3, 4, 5}},
	}
	arts, err := c.CompressBatch(context.Background(), "m1", fields, zmesh.DefaultOptions(), zmesh.AbsBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 2 {
		t.Fatalf("%d artifacts, want 2", len(arts))
	}
	for i, f := range fields {
		if arts[i].FieldName != f.Name || arts[i].NumValues != len(f.Values) {
			t.Fatalf("artifact %d: %+v", i, arts[i])
		}
		if string(arts[i].Payload) != "artifact-"+f.Name {
			t.Fatalf("artifact %d payload %q", i, arts[i].Payload)
		}
	}
	// Payloads must be independent copies, not aliases of one parse buffer.
	arts[0].Payload[0] = 'X'
	if string(arts[1].Payload) != "artifact-pres" {
		t.Fatal("batch artifact payloads alias each other")
	}

	if _, err := c.CompressBatch(context.Background(), "m1", nil, zmesh.DefaultOptions(), zmesh.AbsBound(1e-3)); err == nil {
		t.Fatal("empty batch accepted")
	}
}
