// Package client is the Go client for the zmeshd compression service
// (cmd/zmeshd, internal/server). It wraps the HTTP protocol with connection
// reuse, context deadlines, and retry with jittered exponential backoff on
// 429/5xx responses and transport errors — so a burst that trips the
// server's admission control resolves itself without caller-side logic.
//
// Typical use:
//
//	cl := client.New("http://localhost:8080")
//	id, _ := cl.Register(ctx, mesh)
//	c, _ := cl.CompressField(ctx, id, field, zmesh.DefaultOptions(), zmesh.AbsBound(1e-3))
//	values, _ := cl.Decompress(ctx, id, c)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	zmesh "repro"
	"repro/internal/core"
	"repro/internal/wire"
)

// Client talks to one zmeshd base URL. It is safe for concurrent use; all
// requests share one http.Client, so keep-alive connections are reused
// across calls and goroutines.
type Client struct {
	base        string
	hc          *http.Client
	maxRetries  int
	baseBackoff time.Duration
	maxBackoff  time.Duration
	chunkBytes  int

	// jitterState drives the backoff jitter: a splitmix64 sequence advanced
	// with a single atomic add, so concurrent retry loops never contend on a
	// lock (or race on a shared *rand.Rand) just to sleep.
	jitterState atomic.Uint64
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (e.g. to set TLS or an overall
// client timeout).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxRetries bounds the retry attempts per request (0 disables
// retrying; the first attempt always runs).
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithBackoff sets the exponential backoff window: the i-th retry waits a
// jittered duration in [base·2ⁱ/2, base·2ⁱ], capped at max. A server
// Retry-After hint overrides the computed delay.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.baseBackoff, c.maxBackoff = base, max }
}

// WithChunkBytes sets the frame size the streaming methods cut chunked
// request bodies into (default wire.DefaultChunkBytes, capped at
// wire.MaxChunkPayload). Smaller chunks lower peak memory on both ends at
// the cost of per-frame overhead.
func WithChunkBytes(n int) Option { return func(c *Client) { c.chunkBytes = n } }

// New creates a client for a zmeshd base URL like "http://host:8080".
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:        strings.TrimRight(baseURL, "/"),
		hc:          &http.Client{},
		maxRetries:  6,
		baseBackoff: 50 * time.Millisecond,
		maxBackoff:  2 * time.Second,
		chunkBytes:  wire.DefaultChunkBytes,
	}
	c.jitterState.Store(uint64(time.Now().UnixNano()))
	for _, o := range opts {
		o(c)
	}
	return c
}

// StatusError is a non-2xx response that was not (or no longer) retried.
type StatusError struct {
	Code int
	Msg  string
	// RetryAfter is the verbatim Retry-After header, if the server sent one
	// — a routing layer sweeping several replicas uses it to honor the shed
	// hint across the whole sweep, not just one host's retry loop.
	RetryAfter string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Msg)
}

// IsConnectError reports whether err is a failure to establish a TCP
// connection at all (connection refused, no route, dial timeout) — the
// server never saw the request. Exponential backoff is the wrong response
// to these: the host is down, not overloaded, so the retry loop uses a
// flat base delay and a routing client fails over to the next replica
// immediately.
func IsConnectError(err error) bool {
	var oe *net.OpError
	if errors.As(err, &oe) && oe.Op == "dial" {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED)
}

// retryable reports whether a status is worth another attempt: admission
// sheds and transient upstream failures, never client errors.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// jitter picks a uniform duration in [d/2, d] from the lock-free splitmix64
// stream.
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	z := c.jitterState.Add(0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	f := float64(z>>11) / float64(uint64(1)<<53) // uniform in [0, 1)
	return d/2 + time.Duration(f*float64(d/2))
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form:
// delay-seconds ("3") or HTTP-date ("Wed, 21 Oct 2015 07:28:00 GMT",
// interpreted relative to now and floored at zero). Unparseable or negative
// hints report !ok so the caller falls back to computed backoff.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// backoffDelay computes the wait before retry attempt (1-based), honoring a
// Retry-After hint when the server provided one. Hints are clamped to the
// configured maximum backoff: one server asking for a minute must not stall
// the retry loop longer than the caller budgeted.
func (c *Client) backoffDelay(attempt int, retryAfter string) time.Duration {
	if retryAfter != "" {
		if d, ok := parseRetryAfter(retryAfter, time.Now()); ok {
			if d > c.maxBackoff {
				d = c.maxBackoff
			}
			return d
		}
	}
	d := c.baseBackoff << uint(attempt-1)
	if d > c.maxBackoff || d <= 0 {
		d = c.maxBackoff
	}
	return c.jitter(d)
}

// retryDelay is backoffDelay made failure-aware: a connect error (the
// listener is gone, nothing was ever sent) gets a flat jittered base delay
// instead of the exponential window — backing off exponentially against a
// dead socket just burns the caller's deadline without easing any load.
// Everything else (shed responses, transport errors mid-request) keeps the
// exponential schedule.
func (c *Client) retryDelay(attempt int, retryAfter string, lastErr error) time.Duration {
	if IsConnectError(lastErr) {
		return c.jitter(c.baseBackoff)
	}
	return c.backoffDelay(attempt, retryAfter)
}

// do issues one request with retries, returning the response body and
// headers of the first 2xx answer. The body is re-sent from buf on each
// attempt; ctx bounds the whole retry loop including the backoff sleeps.
func (c *Client) do(ctx context.Context, method, url, contentType string, buf []byte) ([]byte, http.Header, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(buf))
		if err != nil {
			return nil, nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.hc.Do(req)
		var status int
		var retryAfter string
		if err != nil {
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			lastErr = err // transport error: retryable
		} else {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				lastErr = rerr
			} else if resp.StatusCode/100 == 2 {
				return body, resp.Header, nil
			} else {
				status = resp.StatusCode
				retryAfter = resp.Header.Get("Retry-After")
				msg := strings.TrimSpace(string(body))
				var je wire.ErrorResponse
				if json.Unmarshal(body, &je) == nil && je.Error != "" {
					msg = je.Error
				}
				lastErr = &StatusError{Code: status, Msg: msg, RetryAfter: retryAfter}
				if !retryable(status) {
					return nil, nil, lastErr
				}
			}
		}
		if attempt >= c.maxRetries {
			return nil, nil, fmt.Errorf("client: giving up after %d attempts: %w", attempt+1, lastErr)
		}
		t := time.NewTimer(c.retryDelay(attempt+1, retryAfter, lastErr))
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, nil, ctx.Err()
		case <-t.C:
		}
	}
}

// RegisterMesh registers serialized topology metadata (Mesh.Structure
// bytes) and returns the content-addressed mesh ID. Registration is
// idempotent: re-registering the same structure refreshes the server's
// cache recency and returns the same ID.
func (c *Client) RegisterMesh(ctx context.Context, structure []byte) (string, error) {
	body, _, err := c.do(ctx, http.MethodPost, c.base+wire.PathMeshes, wire.ContentTypeBinary, structure)
	if err != nil {
		return "", err
	}
	var reg wire.RegisterResponse
	if err := json.Unmarshal(body, &reg); err != nil {
		return "", fmt.Errorf("client: decoding register response: %w", err)
	}
	if reg.MeshID == "" {
		return "", errors.New("client: register response carries no mesh_id")
	}
	return reg.MeshID, nil
}

// Register is RegisterMesh for a live mesh.
func (c *Client) Register(ctx context.Context, m *zmesh.Mesh) (string, error) {
	return c.RegisterMesh(ctx, m.Structure())
}

// Compress sends one field's level-order values for server-side compression
// and returns the artifact. The payload comes back container-enveloped —
// byte-identical to what the in-process Encoder.CompressField produces for
// the same mesh, options and bound. With opt.Layout = zmesh.LayoutAuto the
// server picks the best layout for this field (always with auto seed 0, so
// every replica picks identically) and the returned artifact records the
// concrete winner — Decompress needs nothing further.
func (c *Client) Compress(ctx context.Context, meshID, fieldName string, values []float64, opt zmesh.Options, bound zmesh.Bound) (*zmesh.Compressed, error) {
	opt = withDefaults(opt)
	q := make([]string, 0, 5)
	q = append(q,
		wire.ParamField+"="+url.QueryEscape(fieldName),
		wire.ParamLayout+"="+url.QueryEscape(opt.Layout.String()),
		wire.ParamCurve+"="+url.QueryEscape(opt.Curve),
		wire.ParamCodec+"="+url.QueryEscape(opt.Codec),
		wire.ParamBound+"="+url.QueryEscape(wire.FormatBound(bound)),
	)
	reqURL := c.base + wire.CompressPath(meshID) + "?" + strings.Join(q, "&")
	buf := wire.AppendFloats(make([]byte, 0, 8*len(values)), values)
	payload, hdr, err := c.do(ctx, http.MethodPost, reqURL, wire.ContentTypeBinary, buf)
	if err != nil {
		return nil, err
	}
	return artifactFromHeaders(hdr, payload)
}

// artifactFromHeaders reconstructs a zmesh.Compressed from the X-Zmesh-*
// metadata headers of a compress response plus its payload bytes — shared
// by the buffered and streaming compress paths.
func artifactFromHeaders(hdr http.Header, payload []byte) (*zmesh.Compressed, error) {
	numValues, err := strconv.Atoi(hdr.Get(wire.HeaderNumValues))
	if err != nil {
		return nil, fmt.Errorf("client: bad %s header: %w", wire.HeaderNumValues, err)
	}
	layout, err := core.ParseLayout(hdr.Get(wire.HeaderLayout))
	if err != nil {
		return nil, fmt.Errorf("client: bad %s header: %w", wire.HeaderLayout, err)
	}
	return &zmesh.Compressed{
		FieldName: hdr.Get(wire.HeaderField),
		Layout:    layout,
		Curve:     hdr.Get(wire.HeaderCurve),
		Codec:     hdr.Get(wire.HeaderCodec),
		NumValues: numValues,
		Payload:   payload,
	}, nil
}

// CompressField is Compress for a live field.
func (c *Client) CompressField(ctx context.Context, meshID string, f *zmesh.Field, opt zmesh.Options, bound zmesh.Bound) (*zmesh.Compressed, error) {
	return c.Compress(ctx, meshID, f.Name, zmesh.FieldValues(f), opt, bound)
}

// Decompress sends an artifact for server-side decompression and returns
// the reconstructed level-order values. Layout and curve come from the
// artifact metadata; the codec is read from the container envelope by the
// server.
func (c *Client) Decompress(ctx context.Context, meshID string, comp *zmesh.Compressed) ([]float64, error) {
	q := strings.Join([]string{
		wire.ParamField + "=" + url.QueryEscape(comp.FieldName),
		wire.ParamLayout + "=" + url.QueryEscape(comp.Layout.String()),
		wire.ParamCurve + "=" + url.QueryEscape(comp.Curve),
	}, "&")
	reqURL := c.base + wire.DecompressPath(meshID) + "?" + q
	body, _, err := c.do(ctx, http.MethodPost, reqURL, wire.ContentTypeBinary, comp.Payload)
	if err != nil {
		return nil, err
	}
	values, err := wire.DecodeFloats(body)
	if err != nil {
		return nil, fmt.Errorf("client: decoding values: %w", err)
	}
	if comp.NumValues != 0 && len(values) != comp.NumValues {
		return nil, fmt.Errorf("client: server returned %d values, artifact claims %d", len(values), comp.NumValues)
	}
	return values, nil
}

func withDefaults(opt zmesh.Options) zmesh.Options {
	if opt.Curve == "" {
		opt.Curve = "hilbert"
	}
	if opt.Codec == "" {
		opt.Codec = "sz"
	}
	return opt
}
