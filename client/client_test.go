package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testClient(opts ...Option) *Client {
	return New("http://unused", opts...)
}

// TestBackoffDelaySeconds pins the integer-seconds Retry-After form,
// including the clamp to the configured maximum backoff.
func TestBackoffDelaySeconds(t *testing.T) {
	c := testClient(WithBackoff(50*time.Millisecond, 2*time.Second))
	if d := c.backoffDelay(1, "1"); d != time.Second {
		t.Fatalf("Retry-After: 1 -> %v, want 1s", d)
	}
	if d := c.backoffDelay(1, "0"); d != 0 {
		t.Fatalf("Retry-After: 0 -> %v, want 0", d)
	}
	// A hint beyond the budget clamps instead of stalling the retry loop.
	if d := c.backoffDelay(1, "60"); d != 2*time.Second {
		t.Fatalf("Retry-After: 60 -> %v, want clamp to 2s", d)
	}
}

// TestBackoffDelayHTTPDate pins the HTTP-date Retry-After form (RFC 9110
// allows either): future dates wait until then (clamped), past dates retry
// immediately, and garbage falls back to computed backoff.
func TestBackoffDelayHTTPDate(t *testing.T) {
	c := testClient(WithBackoff(50*time.Millisecond, 2*time.Second))

	future := time.Now().Add(1200 * time.Millisecond).UTC().Format(http.TimeFormat)
	d := c.backoffDelay(1, future)
	// http.TimeFormat has second granularity, so allow [0, 2s]; the point is
	// that the form parses and does not fall back to the 25-50ms jitter.
	if d < 100*time.Millisecond || d > 2*time.Second {
		t.Fatalf("future HTTP-date -> %v, want a near-1s wait", d)
	}

	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if d := c.backoffDelay(1, past); d != 0 {
		t.Fatalf("past HTTP-date -> %v, want 0", d)
	}

	farFuture := time.Now().Add(time.Hour).UTC().Format(http.TimeFormat)
	if d := c.backoffDelay(1, farFuture); d != 2*time.Second {
		t.Fatalf("far-future HTTP-date -> %v, want clamp to 2s", d)
	}

	if d := c.backoffDelay(1, "not a date"); d < 25*time.Millisecond || d > 50*time.Millisecond {
		t.Fatalf("garbage hint -> %v, want jittered base backoff in [25ms, 50ms]", d)
	}
}

// TestBackoffDelayComputed pins the exponential window: attempt i waits a
// jittered duration in [base*2^(i-1)/2, base*2^(i-1)], capped at max.
func TestBackoffDelayComputed(t *testing.T) {
	c := testClient(WithBackoff(100*time.Millisecond, time.Second))
	for attempt, want := range map[int]time.Duration{1: 100 * time.Millisecond, 2: 200 * time.Millisecond, 3: 400 * time.Millisecond} {
		for i := 0; i < 50; i++ {
			d := c.backoffDelay(attempt, "")
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
	// Past the cap every attempt waits within [max/2, max].
	if d := c.backoffDelay(30, ""); d < 500*time.Millisecond || d > time.Second {
		t.Fatalf("capped attempt: delay %v outside [500ms, 1s]", d)
	}
}

// TestConcurrentRetryJitter drives many goroutines through the retry loop of
// one shared Client against a server that sheds half the requests with 429.
// Run under -race (ci.yml does) this pins the lock-free jitter: the old
// shared *rand.Rand made concurrent backoffDelay calls a data race.
func TestConcurrentRetryJitter(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c := New(srv.URL, WithBackoff(time.Microsecond, time.Millisecond), WithMaxRetries(8))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, _, errs[g] = c.do(ctx, http.MethodPost, srv.URL+"/x", "", nil)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	// The jitter stream must actually vary (a frozen state would synchronize
	// every retry storm).
	seen := map[time.Duration]bool{}
	for i := 0; i < 8; i++ {
		seen[c.jitter(time.Second)] = true
	}
	if len(seen) < 2 {
		t.Fatal("jitter returned a constant sequence")
	}
}
