package client

import (
	"context"
	"errors"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	zmesh "repro"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/wire"
)

// clusterMesh builds the small deterministic mesh + field the cluster
// tests route around.
func clusterMesh(t testing.TB) (*zmesh.Mesh, *zmesh.Field) {
	t.Helper()
	m, err := zmesh.NewMesh(2, 8, [3]int{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Refine(m.Roots()[0]); err != nil {
		t.Fatal(err)
	}
	f := zmesh.SampleField(m, "dens", func(x, y, z float64) float64 {
		return math.Sin(4*x) * math.Cos(3*y)
	})
	return m, f
}

// bootCluster starts n real replicas sharing one ring and returns their
// servers, URLs, and a kill function that closes replica i's listener and
// shuts its server down (connect-refused thereafter).
func bootCluster(t testing.TB, n, repl int) ([]*server.Server, []string, func(i int)) {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	ring, err := cluster.New(urls, 32, repl)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*server.Server, n)
	for i := range servers {
		s := server.New(server.Config{Ring: ring, Self: urls[i], PeerTimeout: time.Second})
		servers[i] = s
		ln := lns[i]
		go func() { _ = s.Serve(ln) }()
	}
	kill := func(i int) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = servers[i].Shutdown(ctx)
	}
	t.Cleanup(func() {
		for i := range servers {
			kill(i)
		}
	})
	return servers, urls, kill
}

// connRefusedErr dials a freshly-released port to manufacture a real
// connect-refused error.
func connRefusedErr(t *testing.T) error {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	_, err = (&net.Dialer{Timeout: time.Second}).Dial("tcp", addr)
	if err == nil {
		t.Fatal("dial to closed port unexpectedly succeeded")
	}
	return err
}

func TestIsConnectError(t *testing.T) {
	if !IsConnectError(connRefusedErr(t)) {
		t.Fatal("refused dial not classified as connect error")
	}
	if IsConnectError(&StatusError{Code: 503}) {
		t.Fatal("503 classified as connect error")
	}
	if IsConnectError(nil) {
		t.Fatal("nil classified as connect error")
	}
	if IsConnectError(errors.New("some read error")) {
		t.Fatal("generic error classified as connect error")
	}
}

// TestRetryDelayConnectErrorIsFlat pins the satellite fix at the unit
// level: a connect error gets the flat jittered base delay no matter how
// deep into the attempt schedule the loop is, while status-driven retries
// keep the exponential window.
func TestRetryDelayConnectErrorIsFlat(t *testing.T) {
	c := testClient(WithBackoff(100*time.Millisecond, 10*time.Second))
	connErr := connRefusedErr(t)
	for attempt := 1; attempt <= 6; attempt++ {
		if d := c.retryDelay(attempt, "", connErr); d > 100*time.Millisecond {
			t.Fatalf("attempt %d connect-error delay %v exceeds flat base 100ms", attempt, d)
		}
	}
	if d := c.retryDelay(6, "", &StatusError{Code: 500}); d <= 100*time.Millisecond {
		t.Fatalf("attempt 6 status-error delay %v did not grow exponentially", d)
	}
}

// TestConnectRefusedDoesNotBurnBackoffWindow is the regression test with a
// killed listener: six retries against a dead socket must complete in flat
// time (≤ ~6 × base), not the exponential window (~6s of sleeps with this
// config) the old loop burned.
func TestConnectRefusedDoesNotBurnBackoffWindow(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close() // killed listener: every dial now refuses

	c := New(deadURL, WithBackoff(200*time.Millisecond, 10*time.Second), WithMaxRetries(6))
	start := time.Now()
	_, err = c.RegisterMesh(context.Background(), []byte("structure"))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("register against killed listener succeeded")
	}
	if !IsConnectError(err) {
		t.Fatalf("error %v does not unwrap to a connect error", err)
	}
	// Flat schedule: 6 sleeps in [100ms, 200ms] -> at most 1.2s plus dial
	// overhead. The old exponential schedule sleeps at least ~3s (half of
	// 200·(1+2+4+8+16+32) ms). 2.5s splits the two decisively.
	if elapsed > 2500*time.Millisecond {
		t.Fatalf("6 connect-refused retries took %v — backoff window burned on a dead socket", elapsed)
	}
}

// TestClusterFailoverOnKilledReplica pins the router half of the fix: with
// the primary owner dead, the request lands on the next replica in
// placement order and still round-trips bit-exactly.
func TestClusterFailoverOnKilledReplica(t *testing.T) {
	m, f := clusterMesh(t)
	_, urls, kill := bootCluster(t, 3, 2)
	cc, err := NewCluster(urls, WithBackoff(10*time.Millisecond, 100*time.Millisecond), WithMaxRetries(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	id, err := cc.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := cc.Ring(ctx)
	if err != nil {
		t.Fatal(err)
	}
	primary := ring.Primary(id)
	for i, u := range urls {
		if u == primary {
			kill(i)
		}
	}

	comp, err := cc.CompressField(ctx, id, f, zmesh.Options{Layout: zmesh.LayoutZMesh}, zmesh.AbsBound(1e-3))
	if err != nil {
		t.Fatalf("compress with dead primary: %v", err)
	}
	values, err := cc.Decompress(ctx, id, comp)
	if err != nil {
		t.Fatalf("decompress with dead primary: %v", err)
	}
	dec, err := zmesh.NewDecoder(m).DecompressField(comp)
	if err != nil {
		t.Fatal(err)
	}
	want := zmesh.FieldValues(dec)
	if len(values) != len(want) {
		t.Fatalf("got %d values, want %d", len(values), len(want))
	}
	for i := range values {
		if values[i] != want[i] {
			t.Fatalf("value %d differs: %g vs %g", i, values[i], want[i])
		}
	}
	st := cc.Stats()
	if st.Failovers == 0 {
		t.Fatal("no failovers recorded despite a dead primary")
	}
	if st.MaxAttemptsPerOp > int64(2*len(urls)) {
		t.Fatalf("an operation took %d attempts — retries not bounded by the owner sweep", st.MaxAttemptsPerOp)
	}
}

// TestClusterRefreshesRingOn421 pins the stale-ring handshake: a client
// whose ring routes to a non-owner gets a 421, re-fetches /v1/ring, and
// completes against the true owner without surfacing an error.
func TestClusterRefreshesRingOn421(t *testing.T) {
	m, f := clusterMesh(t)
	_, urls, _ := bootCluster(t, 3, 1)
	cc, err := NewCluster(urls, WithBackoff(10*time.Millisecond, 100*time.Millisecond), WithMaxRetries(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	id, err := cc.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}

	// Poison the client's ring with a single-node view pointing at a
	// non-owner — the picture a client holds after the cluster was
	// reconfigured underneath it.
	trueRing, err := cluster.New(urls, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	owner := trueRing.Primary(id)
	var nonOwner string
	for _, u := range urls {
		if u != owner {
			nonOwner = u
			break
		}
	}
	stale, err := cluster.New([]string{nonOwner}, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	cc.setRing(stale)
	before := cc.Stats().RingRefreshes

	comp, err := cc.CompressField(ctx, id, f, zmesh.Options{Layout: zmesh.LayoutZMesh}, zmesh.AbsBound(1e-3))
	if err != nil {
		t.Fatalf("compress with stale ring: %v", err)
	}
	if comp == nil || len(comp.Payload) == 0 {
		t.Fatal("empty artifact after ring refresh")
	}
	if cc.Stats().RingRefreshes <= before {
		t.Fatal("421 did not trigger a ring refresh")
	}
}

// TestClusterRegisterSeedsAllOwners pins the registration fan-out: after
// RegisterMesh, every owner serves the structure directly and non-owners
// do not hold it.
func TestClusterRegisterSeedsAllOwners(t *testing.T) {
	m, _ := clusterMesh(t)
	_, urls, _ := bootCluster(t, 3, 2)
	cc, err := NewCluster(urls, WithBackoff(10*time.Millisecond, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	id, err := cc.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if want := cluster.MeshID(m.Structure()); id != want {
		t.Fatalf("mesh id %s, want locally computed %s", id, want)
	}
	ring, err := cc.Ring(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range urls {
		resp, err := http.Get(u + wire.StructurePath(id))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ring.IsOwner(u, id) {
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("owner %s does not hold the structure (status %d)", u, resp.StatusCode)
			}
		} else if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("non-owner %s holds the structure (status %d)", u, resp.StatusCode)
		}
	}
}

// TestClusterSingleNodeFallback pins plain-daemon compatibility: pointed
// at a zmeshd with no ring (404 on /v1/ring), the ClusterClient degrades
// to a single-shard ring over its seeds and works end to end.
func TestClusterSingleNodeFallback(t *testing.T) {
	m, f := clusterMesh(t)
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cc, err := NewCluster([]string{ts.URL}, WithBackoff(10*time.Millisecond, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	id, err := cc.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := cc.CompressField(ctx, id, f, zmesh.Options{Layout: zmesh.LayoutZMesh}, zmesh.AbsBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Decompress(ctx, id, comp); err != nil {
		t.Fatal(err)
	}
	ring, err := cc.Ring(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ring.NumNodes() != 1 || ring.Replication() != 1 {
		t.Fatalf("fallback ring has %d nodes, replication %d; want 1/1", ring.NumNodes(), ring.Replication())
	}
}
