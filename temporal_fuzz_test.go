package zmesh

import (
	"math"
	"testing"

	"repro/internal/amr"
)

// FuzzDecompressSnapshot throws mutated temporal frames at the decoder,
// seeded from a real keyframe + delta pair. Two invariants: the decoder
// never panics, and a rejected frame never disturbs the stream state — a
// genuine delta must still decode after any number of rejected inputs.
func FuzzDecompressSnapshot(f *testing.F) {
	mesh, err := amr.NewMesh(2, 4, [3]int{1, 1, 1})
	if err != nil {
		f.Fatal(err)
	}
	if err := mesh.Refine(mesh.Roots()[0]); err != nil {
		f.Fatal(err)
	}
	snap := func(phase float64) *Field {
		fld := amr.NewField(mesh, "u")
		fld.FillFunc(func(x, y, z float64) float64 {
			return math.Sin(6*x+phase) * math.Cos(6*y)
		})
		return fld
	}
	enc, err := NewTemporalEncoder(DefaultOptions())
	if err != nil {
		f.Fatal(err)
	}
	bound := AbsBound(1e-3)
	key, err := enc.CompressSnapshot(snap(0), bound)
	if err != nil {
		f.Fatal(err)
	}
	delta, err := enc.CompressSnapshot(snap(0.1), bound)
	if err != nil {
		f.Fatal(err)
	}
	goodEnc, err := NewTemporalEncoder(DefaultOptions())
	if err != nil {
		f.Fatal(err)
	}
	if _, err := goodEnc.CompressSnapshot(snap(0), bound); err != nil {
		f.Fatal(err)
	}
	goodDelta, err := goodEnc.CompressSnapshot(snap(0.05), bound)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(true, key.Payload, key.Structure)
	f.Add(false, delta.Payload, delta.Structure)
	f.Add(false, key.Payload, []byte{})
	f.Add(true, delta.Payload, key.Structure)
	f.Add(true, []byte{}, []byte{0, 1, 2})
	f.Add(false, []byte{0xff, 0xff}, []byte(nil))

	f.Fuzz(func(t *testing.T, keyframe bool, payload, structure []byte) {
		dec := NewTemporalDecoder()
		if _, err := dec.DecompressSnapshot(key); err != nil {
			t.Fatal(err)
		}
		frame := &TemporalCompressed{
			Compressed: Compressed{
				FieldName: key.FieldName, Layout: key.Layout, Curve: key.Curve,
				Codec: key.Codec, NumValues: key.NumValues, Payload: payload,
			},
			Keyframe:  keyframe,
			Structure: structure,
		}
		if _, err := dec.DecompressSnapshot(frame); err == nil {
			// The mutation happened to produce a decodable frame; the
			// state-preservation invariant only applies to rejected frames.
			return
		}
		if _, err := dec.DecompressSnapshot(goodDelta); err != nil {
			t.Fatalf("rejected frame corrupted decoder state: %v", err)
		}
	})
}
