package zmesh

import (
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/amr"
	"repro/internal/compress"
	"repro/internal/compress/container"
)

// flakyCodec wraps sz and fails Compress on demand, simulating a transient
// codec error (resource exhaustion, cancelled cgo call, ...). The temporal
// encoder must survive such failures without wedging its stream state.
type flakyCodec struct {
	inner compress.Compressor
	fail  *atomic.Bool
}

var flakyFail atomic.Bool

func init() {
	compress.Register("flaky-test", func() compress.Compressor {
		inner, err := compress.Get("sz")
		if err != nil {
			panic(err)
		}
		return &flakyCodec{inner: inner, fail: &flakyFail}
	})
}

func (f *flakyCodec) Name() string { return "flaky-test" }

func (f *flakyCodec) Compress(data []float64, dims []int, b compress.Bound) ([]byte, error) {
	if f.fail.Load() {
		return nil, errors.New("injected codec failure")
	}
	return f.inner.Compress(data, dims, b)
}

func (f *flakyCodec) Decompress(buf []byte) ([]float64, error) {
	return f.inner.Decompress(buf)
}

// Regression: CompressSnapshot used to commit recipe/topology/reconstruction
// BEFORE compressing. A transient codec failure then left the encoder
// believing the snapshot had been encoded: every later frame became a delta
// against a reconstruction that was never emitted, corrupting the stream
// forever. State must commit only after the frame fully exists.
func TestTemporalEncoderRecoversFromCodecFailure(t *testing.T) {
	opt := DefaultOptions()
	opt.Codec = "flaky-test"
	enc, err := NewTemporalEncoder(opt)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewTemporalDecoder()
	bound := AbsBound(1e-4)
	flakyFail.Store(false)
	defer flakyFail.Store(false)

	evolveSequence(t, 4, 0, func(si int, snap *Field) {
		// Fail the very first keyframe and a mid-stream delta.
		if si == 0 || si == 2 {
			flakyFail.Store(true)
			if _, err := enc.CompressSnapshot(snap, bound); err == nil {
				t.Fatalf("snapshot %d: injected failure not surfaced", si)
			}
			flakyFail.Store(false)
		}
		c, err := enc.CompressSnapshot(snap, bound)
		if err != nil {
			t.Fatalf("snapshot %d: retry after injected failure: %v", si, err)
		}
		if si == 0 && !c.Keyframe {
			t.Fatal("first committed snapshot must be a keyframe")
		}
		if si > 0 && c.Keyframe {
			t.Fatalf("snapshot %d: topology unchanged but got a keyframe", si)
		}
		got, err := dec.DecompressSnapshot(c)
		if err != nil {
			t.Fatalf("snapshot %d: %v", si, err)
		}
		a := FieldValues(snap)
		b := FieldValues(got)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-4 {
				t.Fatalf("snapshot %d: error %g exceeds bound after recovery", si, math.Abs(a[i]-b[i]))
			}
		}
	})
}

// captureStream records every frame of a temporal stream plus the expected
// values at each snapshot.
func captureStream(t *testing.T, opt Options, steps int) (frames []*TemporalCompressed, want [][]float64) {
	t.Helper()
	enc, err := NewTemporalEncoder(opt)
	if err != nil {
		t.Fatal(err)
	}
	evolveSequence(t, steps, 0, func(si int, snap *Field) {
		c, err := enc.CompressSnapshot(snap, AbsBound(1e-4))
		if err != nil {
			t.Fatalf("snapshot %d: %v", si, err)
		}
		frames = append(frames, c)
		want = append(want, FieldValues(snap))
	})
	return frames, want
}

func checkWithinBound(t *testing.T, f *Field, want []float64, tol float64) {
	t.Helper()
	got := FieldValues(f)
	if len(got) != len(want) {
		t.Fatalf("decoded %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("value %d: error %g exceeds %g", i, math.Abs(got[i]-want[i]), tol)
		}
	}
}

// Regression: a delta frame from a *different* stream with the same value
// count used to be accumulated silently, producing garbage within no error
// bound. The decoder must pin the stream identity (layout, curve, field) at
// the keyframe and reject mismatching deltas — without disturbing its state.
func TestTemporalDecoderRejectsCrossStreamDelta(t *testing.T) {
	optA := DefaultOptions() // zmesh/hilbert
	optB := DefaultOptions()
	optB.Curve = "morton"

	framesA, wantA := captureStream(t, optA, 2)
	framesB, _ := captureStream(t, optB, 2)
	if framesA[1].Keyframe || framesB[1].Keyframe {
		t.Fatal("second snapshot unexpectedly a keyframe")
	}

	dec := NewTemporalDecoder()
	if _, err := dec.DecompressSnapshot(framesA[0]); err != nil {
		t.Fatal(err)
	}
	// Same field, same length, different curve: must be rejected.
	if _, err := dec.DecompressSnapshot(framesB[1]); err == nil {
		t.Fatal("delta from a morton stream accepted by a hilbert stream")
	} else if !strings.Contains(err.Error(), "morton") {
		t.Fatalf("mismatch error does not name the offending curve: %v", err)
	}
	// A renamed field is a different stream even with identical geometry.
	renamed := *framesA[1]
	renamed.FieldName = "other"
	if _, err := dec.DecompressSnapshot(&renamed); err == nil {
		t.Fatal("delta for a different field accepted")
	}
	// The rejections must not have consumed the delta slot: the genuine
	// frame still decodes to the right values.
	f, err := dec.DecompressSnapshot(framesA[1])
	if err != nil {
		t.Fatalf("stream state disturbed by rejected frames: %v", err)
	}
	checkWithinBound(t, f, wantA[1], 1e-4)
}

// Regression: a keyframe that fails mid-decode (here: topology from a
// different mesh, so the payload length no longer matches the recipe) must
// not reset the decoder. The stream keeps decoding from its previous state.
func TestTemporalDecoderKeyframeFailureKeepsState(t *testing.T) {
	frames, want := captureStream(t, DefaultOptions(), 2)

	other, err := amr.NewMesh(2, 4, [3]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}

	dec := NewTemporalDecoder()
	if _, err := dec.DecompressSnapshot(frames[0]); err != nil {
		t.Fatal(err)
	}
	poisoned := *frames[0]
	poisoned.Structure = other.Structure()
	if _, err := dec.DecompressSnapshot(&poisoned); err == nil {
		t.Fatal("keyframe with mismatched topology accepted")
	}
	f, err := dec.DecompressSnapshot(frames[1])
	if err != nil {
		t.Fatalf("failed keyframe corrupted decoder state: %v", err)
	}
	checkWithinBound(t, f, want[1], 1e-4)
}

// DecompressSnapshot must apply the same decoded-length-vs-NumValues check
// as Decoder.DecompressField, for keyframes and deltas alike. Legacy bare
// payloads have no envelope cross-check, so this is the only guard.
func TestTemporalDecoderRejectsWrongValueCount(t *testing.T) {
	frames, want := captureStream(t, DefaultOptions(), 2)

	bare := func(c *TemporalCompressed) TemporalCompressed {
		t.Helper()
		env, err := container.Unwrap(c.Payload)
		if err != nil {
			t.Fatal(err)
		}
		out := *c
		out.Payload = env.Payload
		return out
	}

	for _, tc := range []struct {
		name  string
		frame *TemporalCompressed
	}{
		{"keyframe", frames[0]},
		{"delta", frames[1]},
	} {
		dec := NewTemporalDecoder()
		if tc.frame.Keyframe {
			// nothing to prime
		} else if _, err := dec.DecompressSnapshot(frames[0]); err != nil {
			t.Fatal(err)
		}
		lying := bare(tc.frame)
		lying.NumValues = tc.frame.NumValues + 7
		if _, err := dec.DecompressSnapshot(&lying); err == nil {
			t.Fatalf("%s: wrong NumValues on a bare payload accepted", tc.name)
		}
		honest := bare(tc.frame)
		f, err := dec.DecompressSnapshot(&honest)
		if err != nil {
			t.Fatalf("%s: legacy bare payload rejected: %v", tc.name, err)
		}
		idx := 0
		if !tc.frame.Keyframe {
			idx = 1
		}
		checkWithinBound(t, f, want[idx], 1e-4)
	}
}
