package zmesh

import (
	"bytes"
	"fmt"

	"repro/internal/amr"
	"repro/internal/compress"
	"repro/internal/compress/container"
	"repro/internal/core"
)

// Temporal compression exploits the coherence between successive
// checkpoints of a running simulation: while the AMR topology is unchanged,
// each quantity is compressed as the delta between its current values and
// the previous snapshot's *reconstruction* (so encoder and decoder stay in
// lockstep and errors never accumulate beyond the per-snapshot bound).
// When a regrid changes the topology the encoder falls back to a spatial
// keyframe, exactly like video codecs at scene cuts.
//
// State-machine contract (see DESIGN.md "Temporal stream state machine"):
// both the encoder and the decoder treat their stream state (recipe,
// topology, previous reconstruction) as transactional. All validation and
// fallible work happens on locals; state commits only after the snapshot is
// fully encoded or decoded. A failed call therefore leaves the stream
// exactly where it was — the next call retries cleanly instead of wedging
// or silently corrupting the reconstruction.

// TemporalCompressed is one snapshot of one quantity in a temporal stream.
type TemporalCompressed struct {
	Compressed
	// Keyframe marks a spatially-coded snapshot (topology changed or first
	// in the stream); delta frames require every prior frame since the
	// last keyframe.
	Keyframe bool
	// Structure is the mesh topology for keyframes (nil on delta frames,
	// where topology is unchanged by construction).
	Structure []byte
	// Bound is the absolute point-wise error bound the frame was encoded
	// under (the caller's Bound resolved against this snapshot's stream).
	// Informational: checkpoint manifests record it per frame so progressive
	// readers can report accuracy. Zero on artifacts that predate the field.
	Bound float64
}

// TemporalEncoder compresses a time series of fields. One encoder handles
// one logical quantity stream (e.g. "dens" over time).
type TemporalEncoder struct {
	opt           Options
	prevStructure []byte
	recipe        *core.Recipe
	codec         compress.Compressor
	prevRecon     []float64 // previous reconstruction, layout order
	// Scratch buffers reused across snapshots so steady-state delta
	// encoding allocates no full-stream slices.
	flat   []float64
	stream []float64
	delta  []float64

	stats *temporalStats // nil unless Instrument attached a registry
	reg   *Registry      // registry for observed keyframe recipe builds
}

// NewTemporalEncoder creates an encoder for one quantity stream.
func NewTemporalEncoder(opt Options) (*TemporalEncoder, error) {
	opt.fillDefaults()
	// A temporal stream's delta frames only make sense against one stable
	// order; a per-snapshot auto pick could silently flip the layout between
	// keyframes, so the pseudo-layout is rejected up front.
	if opt.Layout == core.AutoLayout {
		return nil, fmt.Errorf("zmesh: temporal streams need a concrete layout: %w", core.ErrAutoLayout)
	}
	codec, err := compress.Get(opt.Codec)
	if err != nil {
		return nil, err
	}
	return &TemporalEncoder{opt: opt, codec: codec}, nil
}

// ForceKeyframe makes the next CompressSnapshot emit a keyframe even if the
// topology is unchanged, by discarding the encoder's notion of the previous
// structure. This is the client-side recovery hook for remote streams: when
// the receiving end loses its stream state (an evicted or restarted zmeshd
// session), resending the current snapshot as a keyframe re-establishes
// lockstep without replaying history. The previous reconstruction is left
// in place and is simply replaced by the keyframe's own reconstruction on
// the next successful encode.
func (te *TemporalEncoder) ForceKeyframe() { te.prevStructure = nil }

// CompressSnapshot encodes the next snapshot of the stream. The field's
// mesh may differ from the previous snapshot's (regridding); the encoder
// detects topology changes via the serialized structure.
//
// Encoder state (recipe, topology, reconstruction) commits only after the
// snapshot is fully encoded: a transient codec or bound error leaves the
// stream state untouched, and the next call recovers — with a keyframe if
// nothing has been committed for this topology yet, with a delta against
// the last successfully encoded snapshot otherwise.
func (te *TemporalEncoder) CompressSnapshot(f *Field, bound Bound) (*TemporalCompressed, error) {
	m := f.Mesh()
	structure := m.Structure()
	sameTopology := te.prevStructure != nil && bytes.Equal(structure, te.prevStructure)
	recipe := te.recipe
	if !sameTopology {
		var err error
		recipe, err = core.BuildRecipeObserved(m, te.opt.Layout, te.opt.Curve, 0, te.reg)
		if err != nil {
			te.stats.abort()
			return nil, err
		}
	}
	te.flat = amr.AppendLevelOrder(te.flat, f)
	stream, err := recipe.ApplyTo(te.stream, te.flat)
	if err != nil {
		te.stats.abort()
		return nil, err
	}
	te.stream = stream
	// Resolve the bound against the field itself so delta frames keep the
	// caller's point-wise semantics.
	abs := compress.AbsBound(bound.Absolute(stream))

	if !sameTopology {
		// Keyframe.
		t0 := stageStart(te.stats != nil)
		payload, err := te.codec.Compress(stream, []int{len(stream)}, abs)
		if err != nil {
			te.stats.abort()
			return nil, err
		}
		recon, err := te.codec.Decompress(payload)
		if err != nil {
			te.stats.abort()
			return nil, err
		}
		if s := te.stats; s != nil {
			s.codec.Since(t0)
		}
		wrapped, err := container.Wrap(te.opt.Codec, len(stream), payload)
		if err != nil {
			te.stats.abort()
			return nil, err
		}
		// Commit: the snapshot is fully encoded.
		te.recipe = recipe
		te.prevStructure = structure
		te.prevRecon = recon
		te.stats.commit(true, len(stream)*8, len(wrapped))
		return &TemporalCompressed{
			Compressed: Compressed{
				FieldName: f.Name, Layout: te.opt.Layout, Curve: te.opt.Curve,
				Codec: te.opt.Codec, NumValues: len(stream), Payload: wrapped,
			},
			Keyframe:  true,
			Structure: structure,
			Bound:     abs.Value,
		}, nil
	}
	// Delta frame against the previous reconstruction.
	if len(te.prevRecon) != len(stream) {
		te.stats.abort()
		return nil, fmt.Errorf("zmesh: temporal state out of sync (%d vs %d values)",
			len(te.prevRecon), len(stream))
	}
	if cap(te.delta) < len(stream) {
		te.delta = make([]float64, len(stream))
	}
	delta := te.delta[:len(stream)]
	for i := range delta {
		delta[i] = stream[i] - te.prevRecon[i]
	}
	t0 := stageStart(te.stats != nil)
	payload, err := te.codec.Compress(delta, []int{len(delta)}, abs)
	if err != nil {
		te.stats.abort()
		return nil, err
	}
	dRecon, err := te.codec.Decompress(payload)
	if err != nil {
		te.stats.abort()
		return nil, err
	}
	if s := te.stats; s != nil {
		s.codec.Since(t0)
	}
	wrapped, err := container.Wrap(te.opt.Codec, len(stream), payload)
	if err != nil {
		te.stats.abort()
		return nil, err
	}
	// Commit: advance the reconstruction only once the frame exists.
	for i := range te.prevRecon {
		te.prevRecon[i] += dRecon[i]
	}
	te.stats.commit(false, len(stream)*8, len(wrapped))
	return &TemporalCompressed{
		Compressed: Compressed{
			FieldName: f.Name, Layout: te.opt.Layout, Curve: te.opt.Curve,
			Codec: te.opt.Codec, NumValues: len(stream), Payload: wrapped,
		},
		Bound: abs.Value,
	}, nil
}

// TemporalDecoder reconstructs a quantity stream snapshot by snapshot.
type TemporalDecoder struct {
	recipe    *core.Recipe
	mesh      *Mesh
	prevRecon []float64
	// Stream identity, pinned by the last keyframe. Delta frames must match
	// it exactly; a frame from another stream that happens to have the same
	// length must be rejected, not silently accumulated.
	layout    Layout
	curve     string
	fieldName string
	// Scratch buffers reused across snapshots.
	flat      []float64
	nextRecon []float64

	stats *temporalStats // nil unless Instrument attached a registry
	reg   *Registry      // registry for observed keyframe recipe builds
}

// NewTemporalDecoder creates a decoder for one quantity stream.
func NewTemporalDecoder() *TemporalDecoder { return &TemporalDecoder{} }

// DecompressSnapshot decodes the next snapshot. Keyframes reset the stream
// state (and carry the topology); delta frames require the preceding
// frames to have been decoded in order, and must match the stream identity
// (layout, curve, field) established by the last keyframe.
//
// Decoder state commits only after the snapshot fully decodes: a corrupt
// frame — even one that passes CRC and codec framing but fails later
// validation — leaves the stream state untouched, so the stream keeps
// decoding from where it was.
func (td *TemporalDecoder) DecompressSnapshot(c *TemporalCompressed) (*Field, error) {
	var envStats *containerStats
	if td.stats != nil {
		envStats = &td.stats.envelope
	}
	codecName, payload, err := unwrapPayload(&c.Compressed, envStats)
	if err != nil {
		td.stats.abort()
		return nil, err
	}
	codec, err := compress.Get(codecName)
	if err != nil {
		td.stats.abort()
		return nil, err
	}
	t0 := stageStart(td.stats != nil)
	vals, err := codec.Decompress(payload)
	if err != nil {
		td.stats.abort()
		return nil, err
	}
	if s := td.stats; s != nil {
		s.codec.Since(t0)
	}
	// Same check as Decoder.DecompressField: truncated legacy (bare)
	// payloads must fail loudly instead of flowing into the reconstruction.
	if c.NumValues != 0 && len(vals) != c.NumValues {
		td.stats.abort()
		return nil, fmt.Errorf("zmesh: field %q: payload decoded to %d values, expected %d",
			c.FieldName, len(vals), c.NumValues)
	}
	if c.Keyframe {
		if len(c.Structure) == 0 {
			td.stats.abort()
			return nil, fmt.Errorf("zmesh: keyframe without topology")
		}
		m, err := amr.MeshFromStructure(c.Structure)
		if err != nil {
			td.stats.abort()
			return nil, err
		}
		recipe, err := core.BuildRecipeObserved(m, c.Layout, c.Curve, 0, td.reg)
		if err != nil {
			td.stats.abort()
			return nil, err
		}
		flat, err := recipe.RestoreTo(td.flat, vals)
		if err != nil {
			td.stats.abort()
			return nil, err
		}
		td.flat = flat
		levels, err := amr.SplitLevels(m, flat)
		if err != nil {
			td.stats.abort()
			return nil, err
		}
		f, err := amr.FieldFromLevelArrays(m, c.FieldName, levels)
		if err != nil {
			td.stats.abort()
			return nil, err
		}
		// Commit: the keyframe decoded end to end; it resets the stream.
		td.mesh = m
		td.recipe = recipe
		td.prevRecon = vals
		td.layout = c.Layout
		td.curve = c.Curve
		td.fieldName = c.FieldName
		td.stats.commit(true, len(vals)*8, len(c.Payload))
		return f, nil
	}
	// Delta frame: validate against the stream identity first.
	if td.prevRecon == nil {
		td.stats.abort()
		return nil, fmt.Errorf("zmesh: delta frame before any keyframe")
	}
	if c.Layout != td.layout || c.Curve != td.curve {
		td.stats.abort()
		return nil, fmt.Errorf("zmesh: delta frame layout %v/%s does not match stream keyframe %v/%s",
			c.Layout, c.Curve, td.layout, td.curve)
	}
	if c.FieldName != td.fieldName {
		td.stats.abort()
		return nil, fmt.Errorf("zmesh: delta frame for field %q on a stream of %q",
			c.FieldName, td.fieldName)
	}
	if len(vals) != len(td.prevRecon) {
		td.stats.abort()
		return nil, fmt.Errorf("zmesh: delta frame length %d, stream has %d", len(vals), len(td.prevRecon))
	}
	// Accumulate into a candidate buffer; prevRecon stays untouched until
	// the frame fully decodes.
	if cap(td.nextRecon) < len(vals) {
		td.nextRecon = make([]float64, len(vals))
	}
	next := td.nextRecon[:len(vals)]
	for i := range next {
		next[i] = td.prevRecon[i] + vals[i]
	}
	flat, err := td.recipe.RestoreTo(td.flat, next)
	if err != nil {
		td.stats.abort()
		return nil, err
	}
	td.flat = flat
	levels, err := amr.SplitLevels(td.mesh, flat)
	if err != nil {
		td.stats.abort()
		return nil, err
	}
	f, err := amr.FieldFromLevelArrays(td.mesh, c.FieldName, levels)
	if err != nil {
		td.stats.abort()
		return nil, err
	}
	// Commit: swap the candidate in; the old buffer becomes next call's
	// scratch, so steady-state delta decoding allocates no stream slices.
	td.prevRecon, td.nextRecon = next, td.prevRecon
	td.stats.commit(false, len(vals)*8, len(c.Payload))
	return f, nil
}

// Mesh exposes the topology of the last decoded keyframe.
func (td *TemporalDecoder) Mesh() *Mesh { return td.mesh }
