package zmesh

import (
	"bytes"
	"fmt"

	"repro/internal/amr"
	"repro/internal/compress"
	"repro/internal/compress/container"
	"repro/internal/core"
)

// Temporal compression exploits the coherence between successive
// checkpoints of a running simulation: while the AMR topology is unchanged,
// each quantity is compressed as the delta between its current values and
// the previous snapshot's *reconstruction* (so encoder and decoder stay in
// lockstep and errors never accumulate beyond the per-snapshot bound).
// When a regrid changes the topology the encoder falls back to a spatial
// keyframe, exactly like video codecs at scene cuts.

// TemporalCompressed is one snapshot of one quantity in a temporal stream.
type TemporalCompressed struct {
	Compressed
	// Keyframe marks a spatially-coded snapshot (topology changed or first
	// in the stream); delta frames require every prior frame since the
	// last keyframe.
	Keyframe bool
	// Structure is the mesh topology for keyframes (nil on delta frames,
	// where topology is unchanged by construction).
	Structure []byte
}

// TemporalEncoder compresses a time series of fields. One encoder handles
// one logical quantity stream (e.g. "dens" over time).
type TemporalEncoder struct {
	opt           Options
	prevStructure []byte
	recipe        *core.Recipe
	codec         compress.Compressor
	prevRecon     []float64 // previous reconstruction, layout order
}

// NewTemporalEncoder creates an encoder for one quantity stream.
func NewTemporalEncoder(opt Options) (*TemporalEncoder, error) {
	opt.fillDefaults()
	codec, err := compress.Get(opt.Codec)
	if err != nil {
		return nil, err
	}
	return &TemporalEncoder{opt: opt, codec: codec}, nil
}

// CompressSnapshot encodes the next snapshot of the stream. The field's
// mesh may differ from the previous snapshot's (regridding); the encoder
// detects topology changes via the serialized structure.
func (te *TemporalEncoder) CompressSnapshot(f *Field, bound Bound) (*TemporalCompressed, error) {
	m := f.Mesh()
	structure := m.Structure()
	sameTopology := te.prevStructure != nil && bytes.Equal(structure, te.prevStructure)
	if !sameTopology {
		recipe, err := core.BuildRecipe(m, te.opt.Layout, te.opt.Curve)
		if err != nil {
			return nil, err
		}
		te.recipe = recipe
		te.prevStructure = structure
	}
	stream, err := te.recipe.Apply(amr.Flatten(amr.LevelArrays(f)))
	if err != nil {
		return nil, err
	}
	// Resolve the bound against the field itself so delta frames keep the
	// caller's point-wise semantics.
	abs := compress.AbsBound(bound.Absolute(stream))

	if !sameTopology {
		// Keyframe.
		payload, err := te.codec.Compress(stream, []int{len(stream)}, abs)
		if err != nil {
			return nil, err
		}
		recon, err := te.codec.Decompress(payload)
		if err != nil {
			return nil, err
		}
		te.prevRecon = recon
		wrapped, err := container.Wrap(te.opt.Codec, len(stream), payload)
		if err != nil {
			return nil, err
		}
		return &TemporalCompressed{
			Compressed: Compressed{
				FieldName: f.Name, Layout: te.opt.Layout, Curve: te.opt.Curve,
				Codec: te.opt.Codec, NumValues: len(stream), Payload: wrapped,
			},
			Keyframe:  true,
			Structure: structure,
		}, nil
	}
	// Delta frame against the previous reconstruction.
	if len(te.prevRecon) != len(stream) {
		return nil, fmt.Errorf("zmesh: temporal state out of sync (%d vs %d values)",
			len(te.prevRecon), len(stream))
	}
	delta := make([]float64, len(stream))
	for i := range delta {
		delta[i] = stream[i] - te.prevRecon[i]
	}
	payload, err := te.codec.Compress(delta, []int{len(delta)}, abs)
	if err != nil {
		return nil, err
	}
	dRecon, err := te.codec.Decompress(payload)
	if err != nil {
		return nil, err
	}
	for i := range te.prevRecon {
		te.prevRecon[i] += dRecon[i]
	}
	wrapped, err := container.Wrap(te.opt.Codec, len(stream), payload)
	if err != nil {
		return nil, err
	}
	return &TemporalCompressed{
		Compressed: Compressed{
			FieldName: f.Name, Layout: te.opt.Layout, Curve: te.opt.Curve,
			Codec: te.opt.Codec, NumValues: len(stream), Payload: wrapped,
		},
	}, nil
}

// TemporalDecoder reconstructs a quantity stream snapshot by snapshot.
type TemporalDecoder struct {
	recipe    *core.Recipe
	mesh      *Mesh
	prevRecon []float64
}

// NewTemporalDecoder creates a decoder for one quantity stream.
func NewTemporalDecoder() *TemporalDecoder { return &TemporalDecoder{} }

// DecompressSnapshot decodes the next snapshot. Keyframes reset the stream
// state (and carry the topology); delta frames require the preceding
// frames to have been decoded in order.
func (td *TemporalDecoder) DecompressSnapshot(c *TemporalCompressed) (*Field, error) {
	codecName, payload, err := unwrapPayload(&c.Compressed)
	if err != nil {
		return nil, err
	}
	codec, err := compress.Get(codecName)
	if err != nil {
		return nil, err
	}
	vals, err := codec.Decompress(payload)
	if err != nil {
		return nil, err
	}
	if c.Keyframe {
		if len(c.Structure) == 0 {
			return nil, fmt.Errorf("zmesh: keyframe without topology")
		}
		m, err := amr.MeshFromStructure(c.Structure)
		if err != nil {
			return nil, err
		}
		recipe, err := core.BuildRecipe(m, c.Layout, c.Curve)
		if err != nil {
			return nil, err
		}
		td.mesh = m
		td.recipe = recipe
		td.prevRecon = vals
	} else {
		if td.prevRecon == nil {
			return nil, fmt.Errorf("zmesh: delta frame before any keyframe")
		}
		if len(vals) != len(td.prevRecon) {
			return nil, fmt.Errorf("zmesh: delta frame length %d, stream has %d", len(vals), len(td.prevRecon))
		}
		for i := range td.prevRecon {
			td.prevRecon[i] += vals[i]
		}
	}
	flat, err := td.recipe.Restore(td.prevRecon)
	if err != nil {
		return nil, err
	}
	levels, err := amr.SplitLevels(td.mesh, flat)
	if err != nil {
		return nil, err
	}
	return amr.FieldFromLevelArrays(td.mesh, c.FieldName, levels)
}

// Mesh exposes the topology of the last decoded keyframe.
func (td *TemporalDecoder) Mesh() *Mesh { return td.mesh }
