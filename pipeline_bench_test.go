package zmesh

// Shared dataset for the internal-package pipeline benchmarks
// (parallel_test.go, telemetry_integration_test.go). The external benchmark
// harness in bench_test.go has its own copy via the experiments suite; this
// package cannot use that suite because internal/experiments imports the
// public API for the T16 comparison.

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

var (
	pipelineOnce sync.Once
	pipelineCk   *sim.Checkpoint
	pipelineErr  error
)

// pipelineData returns the sedov benchmark checkpoint (128² solve, depth-3
// hierarchy — the same scale bench_test.go uses) and its density field.
func pipelineData(b *testing.B) (*Checkpoint, *Field) {
	b.Helper()
	pipelineOnce.Do(func() {
		opt := sim.DefaultCheckpointOptions()
		opt.Resolution = 128
		opt.MaxDepth = 3
		pipelineCk, pipelineErr = sim.GenerateCheckpoint("sedov", opt)
	})
	if pipelineErr != nil {
		b.Fatal(pipelineErr)
	}
	f, ok := pipelineCk.Field("dens")
	if !ok {
		b.Fatal("dens missing")
	}
	return pipelineCk, f
}
