package zmesh

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/amr"
	"repro/internal/compress"
	"repro/internal/compress/container"
)

// telemetryTestMesh builds a small refined mesh with one smooth field.
func telemetryTestMesh(t testing.TB) (*Mesh, *Field) {
	t.Helper()
	m, err := amr.NewMesh(2, 8, [3]int{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Refine(m.Roots()[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Refine(m.Roots()[2]); err != nil {
		t.Fatal(err)
	}
	f := amr.NewField(m, "dens")
	f.FillFunc(func(x, y, z float64) float64 {
		return math.Sin(5*x)*math.Cos(4*y) + 0.1*x*y
	})
	return m, f
}

// TestInstrumentedRoundTrip walks a compress/decompress cycle with a
// registry attached to both sides and asserts every pipeline metric the
// design promises is populated.
func TestInstrumentedRoundTrip(t *testing.T) {
	m, f := telemetryTestMesh(t)
	f2 := amr.SampleField(m, "pres", func(x, y, z float64) float64 { return x + 2*y })
	reg := NewRegistry()
	enc, err := NewEncoder(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	enc.Instrument(reg)
	cs, err := enc.CompressFields([]*Field{f, f2}, RelBound(1e-4), 2)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(m).Instrument(reg)
	if _, err := dec.DecompressFields(cs, 2); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counters["encode.fields"]; got != 2 {
		t.Errorf("encode.fields = %d, want 2", got)
	}
	if got := s.Counters["decode.fields"]; got != 2 {
		t.Errorf("decode.fields = %d, want 2", got)
	}
	if s.Counters["encode.bytes_raw"] == 0 || s.Counters["encode.bytes_compressed"] == 0 {
		t.Error("encode byte counters not populated")
	}
	if s.Counters["encode.bytes_raw"] != s.Counters["decode.bytes_raw"] {
		t.Errorf("raw bytes disagree: encode %d, decode %d",
			s.Counters["encode.bytes_raw"], s.Counters["decode.bytes_raw"])
	}
	if got := s.Counters["decode.recipe_builds"]; got != 1 {
		t.Errorf("decode.recipe_builds = %d, want 1 (one layout/curve key)", got)
	}
	if got := s.Counters["recipe.builds"]; got != 1 {
		t.Errorf("recipe.builds = %d, want 1", got)
	}
	if got := s.Counters["container.legacy_payloads"]; got != 0 {
		t.Errorf("container.legacy_payloads = %d, want 0", got)
	}
	if got := s.Counters["encode.errors"] + s.Counters["decode.errors"]; got != 0 {
		t.Errorf("error counters = %d, want 0", got)
	}
	for _, stage := range []string{
		"encode.stage.flatten", "encode.stage.reorder", "encode.stage.codec.sz",
		"encode.stage.wrap", "decode.stage.unwrap", "decode.stage.codec.sz",
		"decode.stage.restore", "recipe.setup",
	} {
		if ts, ok := s.Timers[stage]; !ok || ts.Count == 0 {
			t.Errorf("stage %q unobserved (have %v)", stage, s.Names())
		}
	}
	if rh := s.Histograms["encode.ratio_milli"]; rh.Count != 2 || rh.Min < 1000 {
		// Smooth data at 1e-4 must compress at least 1:1.
		t.Errorf("encode.ratio_milli = %+v, want 2 observations >= 1000", rh)
	}
	// JSON snapshot must serialize.
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, reg); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty JSON snapshot")
	}
}

// TestContainerCounters exercises the envelope counters: a legacy bare
// payload bumps container.legacy_payloads, a corrupted envelope bumps
// container.checksum_failures and decode.errors.
func TestContainerCounters(t *testing.T) {
	m, f := telemetryTestMesh(t)
	enc, err := NewEncoder(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c, err := enc.CompressField(f, RelBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	dec := NewDecoder(m).Instrument(reg)

	// Legacy: strip the envelope down to the bare codec payload.
	legacy := *c
	env, err := container.Unwrap(c.Payload)
	if err != nil {
		t.Fatal(err)
	}
	legacy.Payload = env.Payload
	if _, err := dec.DecompressField(&legacy); err != nil {
		t.Fatalf("legacy payload rejected: %v", err)
	}
	if got := reg.Snapshot().Counters["container.legacy_payloads"]; got != 1 {
		t.Errorf("legacy_payloads = %d, want 1", got)
	}

	// Corruption: flip a payload byte so the CRC fails.
	bad := *c
	bad.Payload = append([]byte(nil), c.Payload...)
	bad.Payload[len(bad.Payload)-1] ^= 0xff
	if _, err := dec.DecompressField(&bad); err == nil {
		t.Fatal("corrupted payload decoded")
	}
	s := reg.Snapshot()
	if got := s.Counters["container.checksum_failures"]; got != 1 {
		t.Errorf("checksum_failures = %d, want 1", got)
	}
	if got := s.Counters["decode.errors"]; got != 1 {
		t.Errorf("decode.errors = %d, want 1", got)
	}
}

// TestTemporalTelemetry checks the key/delta/commit/abort accounting on
// both sides of a temporal stream.
func TestTemporalTelemetry(t *testing.T) {
	_, f := telemetryTestMesh(t)
	reg := NewRegistry()
	enc, err := NewTemporalEncoder(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	enc.Instrument(reg)
	bound := AbsBound(1e-3)
	frames := make([]*TemporalCompressed, 0, 3)
	for i := 0; i < 3; i++ {
		f.FillFunc(func(x, y, z float64) float64 {
			return math.Sin(5*x+float64(i)*0.1) * math.Cos(4*y)
		})
		fr, err := enc.CompressSnapshot(f, bound)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, fr)
	}
	s := reg.Snapshot()
	if s.Counters["temporal.encode.keyframes"] != 1 || s.Counters["temporal.encode.deltas"] != 2 {
		t.Errorf("encode key/delta = %d/%d, want 1/2",
			s.Counters["temporal.encode.keyframes"], s.Counters["temporal.encode.deltas"])
	}
	if s.Counters["temporal.encode.commits"] != 3 || s.Counters["temporal.encode.aborts"] != 0 {
		t.Errorf("encode commits/aborts = %d/%d, want 3/0",
			s.Counters["temporal.encode.commits"], s.Counters["temporal.encode.aborts"])
	}
	if s.Counters["recipe.builds"] != 1 {
		t.Errorf("recipe.builds = %d, want 1 (single keyframe)", s.Counters["recipe.builds"])
	}

	dreg := NewRegistry()
	dec := NewTemporalDecoder().Instrument(dreg)
	// A delta before any keyframe must abort without disturbing the stream.
	if _, err := dec.DecompressSnapshot(frames[1]); err == nil {
		t.Fatal("delta before keyframe decoded")
	}
	for _, fr := range frames {
		if _, err := dec.DecompressSnapshot(fr); err != nil {
			t.Fatal(err)
		}
	}
	ds := dreg.Snapshot()
	if ds.Counters["temporal.decode.keyframes"] != 1 || ds.Counters["temporal.decode.deltas"] != 2 {
		t.Errorf("decode key/delta = %d/%d, want 1/2",
			ds.Counters["temporal.decode.keyframes"], ds.Counters["temporal.decode.deltas"])
	}
	if ds.Counters["temporal.decode.commits"] != 3 || ds.Counters["temporal.decode.aborts"] != 1 {
		t.Errorf("decode commits/aborts = %d/%d, want 3/1",
			ds.Counters["temporal.decode.commits"], ds.Counters["temporal.decode.aborts"])
	}
}

// rawCodec is a deterministic, allocation-stable codec for the allocation
// tests: the payload is the raw little-endian float64 stream.
type rawCodec struct{}

func (rawCodec) Name() string { return "rawtest" }

func (rawCodec) Compress(data []float64, dims []int, bound compress.Bound) ([]byte, error) {
	if err := compress.Validate(data, dims); err != nil {
		return nil, err
	}
	out := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out, nil
}

func (rawCodec) Decompress(buf []byte) ([]float64, error) {
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

func init() { compress.Register("rawtest", func() compress.Compressor { return rawCodec{} }) }

// TestInstrumentationAllocs pins the allocation contract from the issue:
// the uninstrumented hot path allocates nothing beyond what the pipeline
// itself allocates, and attaching a registry adds zero steady-state
// allocations on top (the deterministic rawtest codec makes the pipeline's
// own allocation count stable run to run).
func TestInstrumentationAllocs(t *testing.T) {
	m, f := telemetryTestMesh(t)
	opt := Options{Layout: LayoutZMesh, Curve: "hilbert", Codec: "rawtest"}
	bound := AbsBound(1e-6)

	plain, err := NewEncoder(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewEncoder(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	inst.Instrument(NewRegistry())

	var scratchPlain, scratchInst encodeScratch
	compressOnce := func(e *Encoder, scratch *encodeScratch) {
		if _, err := e.compressInto(e.codec, f, bound, scratch); err != nil {
			t.Fatal(err)
		}
	}
	// Warm both scratches (first call grows buffers and, on the
	// instrumented side, initializes histogram sentinels).
	compressOnce(plain, &scratchPlain)
	compressOnce(inst, &scratchInst)

	base := testing.AllocsPerRun(50, func() { compressOnce(plain, &scratchPlain) })
	withReg := testing.AllocsPerRun(50, func() { compressOnce(inst, &scratchInst) })
	if withReg > base {
		t.Errorf("instrumented compress allocates %.1f/op, uninstrumented %.1f/op — telemetry must add zero", withReg, base)
	}

	// Decode side: same contract.
	c, err := plain.CompressField(f, bound)
	if err != nil {
		t.Fatal(err)
	}
	decPlain := NewDecoder(m)
	decInst := NewDecoder(m).Instrument(NewRegistry())
	var flatPlain, flatInst []float64
	decompressOnce := func(d *Decoder, flat *[]float64) {
		fld, fl, err := d.decompressInto(c, *flat)
		if err != nil || fld == nil {
			t.Fatal(err)
		}
		*flat = fl
	}
	decompressOnce(decPlain, &flatPlain)
	decompressOnce(decInst, &flatInst)
	dbase := testing.AllocsPerRun(50, func() { decompressOnce(decPlain, &flatPlain) })
	dwith := testing.AllocsPerRun(50, func() { decompressOnce(decInst, &flatInst) })
	if dwith > dbase {
		t.Errorf("instrumented decompress allocates %.1f/op, uninstrumented %.1f/op — telemetry must add zero", dwith, dbase)
	}
}

// Instrumented twins of the headline pipeline benchmarks, for measuring the
// overhead budget (≤ 2 % with a registry attached — see DESIGN.md).
func BenchmarkCompressSZZMeshInstrumented(b *testing.B) {
	ck, f := pipelineData(b)
	enc, err := NewEncoder(ck.Mesh, Options{Layout: LayoutZMesh, Curve: "hilbert", Codec: "sz"})
	if err != nil {
		b.Fatal(err)
	}
	enc.Instrument(NewRegistry())
	n := ck.Mesh.NumBlocks() * ck.Mesh.CellsPerBlock()
	b.SetBytes(int64(n * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.CompressField(f, RelBound(1e-4)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressSZZMeshInstrumented(b *testing.B) {
	ck, f := pipelineData(b)
	enc, err := NewEncoder(ck.Mesh, Options{Layout: LayoutZMesh, Curve: "hilbert", Codec: "sz"})
	if err != nil {
		b.Fatal(err)
	}
	c, err := enc.CompressField(f, RelBound(1e-4))
	if err != nil {
		b.Fatal(err)
	}
	dec := NewDecoder(ck.Mesh).Instrument(NewRegistry())
	if _, err := dec.DecompressField(c); err != nil {
		b.Fatal(err)
	}
	n := ck.Mesh.NumBlocks() * ck.Mesh.CellsPerBlock()
	b.SetBytes(int64(n * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.DecompressField(c); err != nil {
			b.Fatal(err)
		}
	}
}
