package zmesh

import (
	"fmt"

	"repro/internal/amr"
)

// Progressive level-of-detail helpers: the client-side half of zmeshd's
// level-prefix reads. The level-order stream the pipeline compresses is
// sorted coarse-to-fine, so a prefix of it is a complete sample of the first
// K refinement levels — exactly what a visualization client wants to render
// while the rest is still in flight. LevelPrefixCells says how long that
// prefix is; ReconstructPartialLevels turns one into a full-resolution field
// by prolonging the finest delivered level down through the missing ones.
//
// Each added level typically shrinks the max point-wise error (and the full
// prefix is always exact), but piecewise-constant prolongation gives no hard
// per-step guarantee on discontinuous data — near a shock a finer sample can
// land on the wrong side of the jump. Readers that need a guaranteed
// strictly-improving error bound per prefix should use the tiered
// progressive read (multilevel CompressProgressive), whose tiers carry
// strictly decreasing bounds by construction.

// LevelPrefixCells returns the number of leading values of a level-order
// stream over mesh m that cover refinement levels 0..levels-1. levels must
// be in [1, m.MaxLevel()+1]; at the upper end the prefix is the whole
// stream.
func LevelPrefixCells(m *Mesh, levels int) (int, error) {
	if levels < 1 || levels > m.MaxLevel()+1 {
		return 0, fmt.Errorf("zmesh: levels %d out of range [1, %d]", levels, m.MaxLevel()+1)
	}
	cells := 0
	for l := 0; l < levels; l++ {
		cells += len(m.Level(l)) * m.CellsPerBlock()
	}
	return cells, nil
}

// ReconstructPartialLevels builds a full-topology field from a level-order
// prefix covering the first levels refinement levels of mesh m. Delivered
// levels are copied verbatim; every block below them is filled by
// piecewise-constant prolongation from its parent, so the result is defined
// on every block and converges to the exact field as levels grows. prefix
// must be exactly LevelPrefixCells(m, levels) values long.
func ReconstructPartialLevels(m *Mesh, name string, prefix []float64, levels int) (*Field, error) {
	want, err := LevelPrefixCells(m, levels)
	if err != nil {
		return nil, err
	}
	if len(prefix) != want {
		return nil, fmt.Errorf("zmesh: level prefix has %d values, want %d for %d levels", len(prefix), want, levels)
	}
	f := amr.NewField(m, name)
	cpb := m.CellsPerBlock()
	off := 0
	for l := 0; l < levels; l++ {
		for _, id := range m.SortedLevel(l) {
			copy(f.Data(id), prefix[off:off+cpb])
			off += cpb
		}
	}
	// Fill the undelivered levels top-down so each parent is complete before
	// its children sample it.
	for l := levels; l <= m.MaxLevel(); l++ {
		for _, id := range m.Level(l) {
			f.Prolong(id)
		}
	}
	return f, nil
}
