// Command zmeshd is the zMesh compression daemon: a long-lived HTTP service
// that lets many clients share one hot recipe cache. Clients register a
// mesh structure once (POST /v1/meshes) and then stream fields through
// /v1/meshes/{id}/compress and /decompress (buffered float64-LE bodies),
// /compress-stream and /decompress-stream (chunked framing through bounded
// buffers, for fields too large to buffer), or /checkpoint (batch framing:
// every field of a snapshot in one request against one cached encoder).
// The daemon caches encoders and decoders by (structure-hash, layout,
// curve, codec), sheds load past its in-flight budget with 429 +
// Retry-After, and drains in-flight requests on SIGTERM/SIGINT before
// exiting. Compression accepts every registered layout, including "tac"
// (adaptive 3-D boxes) and "auto" (per-field pick, always seeded 0 so
// replicas answer identical bytes; the response headers record the
// winner); decode paths require the concrete layout the compress response
// recorded and answer 400 for "auto".
//
// Temporal checkpoint store: with -store DIR the daemon persists sealed
// temporal checkpoints under DIR as content-addressed artifacts and opens
// the in-situ surface — POST /v1/sessions creates a temporal session, POST
// /v1/sessions/{sid}/streams/{field}/frames appends keyframe/delta frames,
// POST /v1/sessions/{sid}/seal makes the checkpoint durable, and GET
// /v1/checkpoints/{id}[/fields/{name}][?levels=K|tiers=K] serves full or
// progressive (coarse-levels-first) reads that survive daemon restarts.
// Sessions idle past -session-ttl are evicted; clients recover by
// re-attaching with a forced keyframe. Without -store those endpoints
// answer 503.
//
// Telemetry (server.*, encode.*, decode.*, recipe.*) is served on
// /debug/vars under the "zmeshd" key.
//
// Cluster mode: given -cluster-nodes (the full membership as advertised
// URLs) and -cluster-self (this replica's entry in that list), the daemon
// becomes one shard of a consistent-hash cluster — it owns the meshes the
// ring places on it, answers 421 for the rest, and heals an empty cache by
// fetching structure bytes from peer owners (internal/cluster, DESIGN.md
// "Cluster architecture").
//
// Usage:
//
//	zmeshd [-addr :8080] [-max-inflight N] [-max-meshes N] [-max-encoders N]
//	       [-retry-after 1s] [-max-body 1073741824] [-drain-timeout 30s]
//	       [-store DIR] [-session-ttl 15m] [-max-sessions 256]
//	       [-cluster-nodes url1,url2,... -cluster-self urlN]
//	       [-replication 2] [-vnodes 64] [-peer-timeout 5s]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	zmesh "repro"
	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (use 127.0.0.1:0 for an ephemeral port)")
		maxInflight  = flag.Int("max-inflight", 0, "admission budget: concurrent heavy requests (0 = 2×GOMAXPROCS)")
		maxMeshes    = flag.Int("max-meshes", 0, "registered-mesh LRU capacity (0 = default 64)")
		maxEncoders  = flag.Int("max-encoders", 0, "encoder LRU capacity (0 = default 256)")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on shed (429) responses")
		maxBody      = flag.Int64("max-body", 1<<30, "request body cap in bytes")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "maximum time to wait for in-flight requests on shutdown")
		storeDir     = flag.String("store", "", "temporal checkpoint store directory (empty = temporal endpoints disabled)")
		sessionTTL   = flag.Duration("session-ttl", 0, "evict temporal sessions idle past this duration (0 = default 15m)")
		maxSessions  = flag.Int("max-sessions", 0, "concurrently attached temporal sessions (0 = default 256)")
		clusterNodes = flag.String("cluster-nodes", "", "comma-separated advertised URLs of every cluster replica (empty = single-node)")
		clusterSelf  = flag.String("cluster-self", "", "this replica's advertised URL; must appear in -cluster-nodes")
		replication  = flag.Int("replication", 0, "owners per mesh in cluster mode (0 = default 2)")
		vnodes       = flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default 64)")
		peerTimeout  = flag.Duration("peer-timeout", 0, "per-peer structure fetch timeout (0 = default 5s)")
	)
	flag.Parse()
	cfg := server.Config{
		MaxMeshes:    *maxMeshes,
		MaxEncoders:  *maxEncoders,
		MaxInflight:  *maxInflight,
		RetryAfter:   *retryAfter,
		MaxBodyBytes: *maxBody,
		Registry:     zmesh.NewRegistry(),
		StoreDir:     *storeDir,
		SessionTTL:   *sessionTTL,
		MaxSessions:  *maxSessions,
	}
	if err := applyClusterFlags(&cfg, *clusterNodes, *clusterSelf, *vnodes, *replication, *peerTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "zmeshd: %v\n", err)
		os.Exit(2)
	}
	if err := run(*addr, cfg, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "zmeshd: %v\n", err)
		os.Exit(1)
	}
}

// applyClusterFlags validates the cluster flag set and installs the ring
// into cfg. Both -cluster-nodes and -cluster-self must be given together.
func applyClusterFlags(cfg *server.Config, nodesCSV, self string, vnodes, replication int, peerTimeout time.Duration) error {
	if nodesCSV == "" && self == "" {
		return nil // single-node daemon
	}
	if nodesCSV == "" || self == "" {
		return fmt.Errorf("cluster mode needs both -cluster-nodes and -cluster-self")
	}
	var nodes []string
	for _, n := range strings.Split(nodesCSV, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodes = append(nodes, n)
		}
	}
	ring, err := cluster.New(nodes, vnodes, replication)
	if err != nil {
		return fmt.Errorf("-cluster-nodes: %w", err)
	}
	if !ring.Contains(self) {
		return fmt.Errorf("-cluster-self %q is not in -cluster-nodes %q", self, nodesCSV)
	}
	cfg.Ring = ring
	cfg.Self = self
	cfg.PeerTimeout = peerTimeout
	return nil
}

func run(addr string, cfg server.Config, drainTimeout time.Duration) error {
	s := server.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The listen line goes to stdout so supervisors (and the e2e smoke
	// driver) can scrape the bound address when -addr requests port 0.
	fmt.Printf("zmeshd: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- s.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "zmeshd: %s received, draining (timeout %s)\n", got, drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && err != http.ErrServerClosed {
		return err
	}
	fmt.Fprintln(os.Stderr, "zmeshd: drained, exiting")
	return nil
}
