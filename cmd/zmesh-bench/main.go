// Command zmesh-bench regenerates the evaluation tables and figures of the
// zMesh reproduction (see EXPERIMENTS.md for the experiment index). Each
// experiment prints the rows/series the corresponding paper artefact
// reports.
//
//	zmesh-bench -all                 # run the full suite at default scale
//	zmesh-bench -exp F3              # one experiment
//	zmesh-bench -exp F3 -res 128     # smaller/faster datasets
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	exp := flag.String("exp", "", fmt.Sprintf("experiment id, one of %v", experiments.ExperimentIDs()))
	all := flag.Bool("all", false, "run every experiment")
	res := flag.Int("res", 256, "solver resolution for dataset generation")
	depth := flag.Int("depth", 4, "maximum AMR refinement depth")
	problems := flag.String("problems", "", "comma-separated problem subset (default: all)")
	fields := flag.String("fields", "", "comma-separated field subset (default: dens,pres,velx)")
	recipeBench := flag.Bool("recipebench", false, "time serial vs parallel recipe construction and write a JSON report")
	recipeOut := flag.String("recipe-out", "BENCH_recipe.json", "output path for the -recipebench report")
	workers := flag.Int("workers", 0, "worker count for -recipebench (0 = GOMAXPROCS)")
	telemetryOut := flag.String("telemetry", "", "write a full layout×curve×codec telemetry run report (ratios, smoothness, per-stage timings) to this JSON file")
	codecs := flag.String("codecs", "sz,zfp", "comma-separated codec list for -telemetry")
	bound := flag.Float64("bound", 1e-4, "relative error bound for -telemetry")
	flag.Parse()

	if *recipeBench {
		if err := runRecipeBench(*recipeOut, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "zmesh-bench: recipebench: %v\n", err)
			os.Exit(1)
		}
		if !*all && *exp == "" && *telemetryOut == "" {
			return
		}
	}

	if *telemetryOut != "" {
		if err := runTelemetryReport(*telemetryOut, *codecs, *bound, *res, *depth, *problems, *fields); err != nil {
			fmt.Fprintf(os.Stderr, "zmesh-bench: telemetry: %v\n", err)
			os.Exit(1)
		}
		if !*all && *exp == "" {
			return
		}
	}

	if !*all && *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.DefaultConfig()
	cfg.Resolution = *res
	cfg.MaxDepth = *depth
	if *problems != "" {
		cfg.Problems = strings.Split(*problems, ",")
	}
	if *fields != "" {
		cfg.Fields = strings.Split(*fields, ",")
	}
	suite := experiments.NewSuite(cfg)

	ids := []string{*exp}
	if *all {
		ids = experiments.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := suite.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zmesh-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(tbl.String())
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}

// runTelemetryReport runs the instrumented layout × curve × codec sweep and
// writes the consolidated run report as JSON.
func runTelemetryReport(out, codecs string, bound float64, res, depth int, problems, fields string) error {
	start := time.Now()
	cfg := experiments.DefaultConfig()
	cfg.Resolution = res
	cfg.MaxDepth = depth
	if problems != "" {
		cfg.Problems = strings.Split(problems, ",")
	}
	if fields != "" {
		cfg.Fields = strings.Split(fields, ",")
	}
	suite := experiments.NewSuite(cfg)
	rep, err := report.Telemetry(suite, strings.Split(codecs, ","), bound)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	for _, p := range rep.Points {
		fmt.Printf("telemetry %-8s %-12s %-8s %-5s ratio=%6.2f smooth=%+6.1f%% comp=%7.1fMB/s decomp=%7.1fMB/s recipe=%6.2fms\n",
			p.Problem, p.Layout, p.Curve, p.Codec,
			p.Ratio, p.SmoothnessPct, p.CompressMBps, p.DecompressMBps, float64(p.RecipeNs)/1e6)
	}
	fmt.Printf("(telemetry: %d points, wrote %s in %.1fs)\n\n",
		len(rep.Points), out, time.Since(start).Seconds())
	return nil
}

// runRecipeBench sweeps recipe construction (serial vs parallel) over
// layout × curve × depth and writes the trajectory as JSON.
func runRecipeBench(out string, workers int) error {
	start := time.Now()
	report, err := experiments.RunRecipeBench(nil, workers, 3)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	for _, p := range report.Points {
		fmt.Printf("recipe %-12s %-8s depth=%d cells=%-8d serial=%8.2fms parallel=%8.2fms speedup=%.2fx\n",
			p.Layout, p.Curve, p.Depth, p.Cells,
			float64(p.SerialNs)/1e6, float64(p.ParallelNs)/1e6, p.Speedup)
	}
	fmt.Printf("(recipebench: %d points, workers=%d, wrote %s in %.1fs)\n\n",
		len(report.Points), report.Workers, out, time.Since(start).Seconds())
	return nil
}
