// Command zmesh-bench regenerates the evaluation tables and figures of the
// zMesh reproduction (see EXPERIMENTS.md for the experiment index). Each
// experiment prints the rows/series the corresponding paper artefact
// reports.
//
//	zmesh-bench -all                 # run the full suite at default scale
//	zmesh-bench -exp F3              # one experiment
//	zmesh-bench -exp F3 -res 128     # smaller/faster datasets
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", fmt.Sprintf("experiment id, one of %v", experiments.ExperimentIDs()))
	all := flag.Bool("all", false, "run every experiment")
	res := flag.Int("res", 256, "solver resolution for dataset generation")
	depth := flag.Int("depth", 4, "maximum AMR refinement depth")
	problems := flag.String("problems", "", "comma-separated problem subset (default: all)")
	fields := flag.String("fields", "", "comma-separated field subset (default: dens,pres,velx)")
	flag.Parse()

	if !*all && *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.DefaultConfig()
	cfg.Resolution = *res
	cfg.MaxDepth = *depth
	if *problems != "" {
		cfg.Problems = strings.Split(*problems, ",")
	}
	if *fields != "" {
		cfg.Fields = strings.Split(*fields, ",")
	}
	suite := experiments.NewSuite(cfg)

	ids := []string{*exp}
	if *all {
		ids = experiments.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := suite.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "zmesh-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(tbl.String())
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
