package main

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	zmesh "repro"
)

// setupTelemetry wires the opt-in observability of the compress/decompress
// commands. When addr is non-empty it serves expvar (/debug/vars, including
// the published "zmesh" registry) and net/http/pprof (/debug/pprof/) on that
// address for the lifetime of the process. The returned flush dumps a JSON
// snapshot of the registry to stderr when stats is set. Both addr=="" and
// stats==false yields a nil registry, i.e. the pipeline stays entirely
// uninstrumented.
func setupTelemetry(addr string, stats bool) (*zmesh.Registry, func(), error) {
	if addr == "" && !stats {
		return nil, func() {}, nil
	}
	reg := zmesh.NewRegistry()
	zmesh.PublishMetrics("zmesh", reg)
	if addr != "" {
		bound, err := startMetricsServer(addr)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "zmesh: serving metrics on http://%s/debug/vars (pprof under /debug/pprof/)\n", bound)
	}
	flush := func() {
		if stats {
			if err := zmesh.WriteMetricsJSON(os.Stderr, reg); err == nil {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	return reg, flush, nil
}

// startMetricsServer serves expvar and pprof on addr for the lifetime of
// the process and returns the bound address (useful with ":0").
func startMetricsServer(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metricsaddr: %w", err)
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}
