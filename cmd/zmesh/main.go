// Command zmesh is the end-to-end CLI for the zMesh reproduction: generate
// AMR checkpoints from the built-in simulations, compress them with the
// zMesh reordering (or the baselines) over SZ/ZFP, decompress, inspect, and
// verify error bounds.
//
// Typical session:
//
//	zmesh generate -problem sedov -res 256 -o sedov.ckpt
//	zmesh compress -i sedov.ckpt -o sedov.zm -layout zmesh -curve hilbert -codec sz -rel 1e-4
//	zmesh decompress -i sedov.zm -o restored.ckpt
//	zmesh verify -orig sedov.ckpt -recon restored.ckpt -rel 1e-4
//	zmesh info -i sedov.zm
package main

import (
	"flag"
	"fmt"
	"image"
	"image/png"
	"os"

	zmesh "repro"
	"repro/internal/amr"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/render"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: zmesh <command> [flags]

commands:
  generate    run a built-in simulation and write an AMR checkpoint
  compress    compress a checkpoint into a zMesh archive
  decompress  restore a checkpoint from an archive
  info        describe a checkpoint or archive
  verify      check a reconstruction against the original and a bound
  render      rasterize a checkpoint field (or the AMR level map) to PNG

run "zmesh <command> -h" for command flags
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "decompress":
		err = cmdDecompress(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "render":
		err = cmdRender(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "zmesh: unknown command %q\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "zmesh: %v\n", err)
		os.Exit(1)
	}
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	problem := fs.String("problem", "sedov", fmt.Sprintf("simulation problem %v", zmesh.Problems()))
	res := fs.Int("res", 256, "uniform solver resolution")
	blockSize := fs.Int("block", 8, "AMR block size (cells per side)")
	depth := fs.Int("depth", 4, "maximum refinement depth")
	threshold := fs.Float64("threshold", 0.35, "refinement threshold (Löhner indicator)")
	out := fs.String("o", "", "output checkpoint path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("generate: -o is required")
	}
	ck, err := zmesh.Generate(*problem, zmesh.GenerateOptions{
		Resolution: *res,
		BlockSize:  *blockSize,
		MaxDepth:   *depth,
		Threshold:  *threshold,
	})
	if err != nil {
		return err
	}
	file := dataset.FromFields(*problem, ck.Mesh, ck.Fields)
	if err := dataset.SaveCheckpoint(*out, file); err != nil {
		return err
	}
	fmt.Printf("generated %s: %d levels, %d blocks (%d leaves), %d quantities -> %s\n",
		*problem, ck.Mesh.MaxLevel()+1, ck.Mesh.NumBlocks(), ck.Mesh.NumLeaves(),
		len(ck.Fields), *out)
	return nil
}

// loadFields rebuilds a mesh and live fields from a checkpoint file.
func loadFields(path string) (*dataset.CheckpointFile, *amr.Mesh, []*amr.Field, error) {
	file, err := dataset.LoadCheckpoint(path)
	if err != nil {
		return nil, nil, nil, err
	}
	m, err := file.Mesh()
	if err != nil {
		return nil, nil, nil, err
	}
	fields := make([]*amr.Field, 0, len(file.Fields))
	for _, fd := range file.Fields {
		f, err := amr.FieldFromLevelArrays(m, fd.Name, fd.Levels)
		if err != nil {
			return nil, nil, nil, err
		}
		fields = append(fields, f)
	}
	return file, m, fields, nil
}

func parseBound(rel, abs float64) (zmesh.Bound, string, float64, error) {
	switch {
	case rel > 0 && abs > 0:
		return zmesh.Bound{}, "", 0, fmt.Errorf("use only one of -rel and -abs")
	case abs > 0:
		return zmesh.AbsBound(abs), "abs", abs, nil
	case rel > 0:
		return zmesh.RelBound(rel), "rel", rel, nil
	default:
		return zmesh.Bound{}, "", 0, fmt.Errorf("one of -rel or -abs is required")
	}
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("i", "", "input checkpoint (required)")
	out := fs.String("o", "", "output archive (required)")
	layoutName := fs.String("layout", "zmesh", "layout: level | sfc-level | zmesh | zmesh-block | tac | auto (auto picks per field, recorded in the archive)")
	curve := fs.String("curve", "hilbert", "sibling curve: morton | hilbert | rowmajor")
	codec := fs.String("codec", "sz", "compressor: sz | zfp")
	rel := fs.Float64("rel", 0, "relative error bound (fraction of value range)")
	abs := fs.Float64("abs", 0, "absolute error bound")
	metricsAddr := fs.String("metricsaddr", "", "serve expvar + pprof telemetry on this address (e.g. localhost:6060)")
	stats := fs.Bool("stats", false, "dump a telemetry JSON snapshot to stderr when done")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("compress: -i and -o are required")
	}
	bound, bmode, bval, err := parseBound(*rel, *abs)
	if err != nil {
		return err
	}
	layout, err := core.ParseLayout(*layoutName)
	if err != nil {
		return err
	}
	file, m, fields, err := loadFields(*in)
	if err != nil {
		return err
	}
	enc, err := zmesh.NewEncoder(m, zmesh.Options{Layout: layout, Curve: *curve, Codec: *codec})
	if err != nil {
		return err
	}
	reg, flushStats, err := setupTelemetry(*metricsAddr, *stats)
	if err != nil {
		return err
	}
	defer flushStats()
	if reg != nil {
		enc.Instrument(reg)
	}
	arch := &dataset.ArchiveFile{Problem: file.Problem, Structure: file.Structure}
	var rawBytes, compBytes int
	for _, f := range fields {
		c, err := enc.CompressField(f, bound)
		if err != nil {
			return fmt.Errorf("compressing %s: %w", f.Name, err)
		}
		arch.Fields = append(arch.Fields, dataset.CompressedField{
			Name:      c.FieldName,
			Layout:    c.Layout.String(),
			Curve:     c.Curve,
			Codec:     c.Codec,
			BoundMode: bmode,
			BoundVal:  bval,
			NumValues: c.NumValues,
			Payload:   c.Payload,
		})
		rawBytes += c.NumValues * 8
		compBytes += len(c.Payload)
		fmt.Printf("  %-6s %9d values -> %8d bytes (ratio %.2f)\n",
			f.Name, c.NumValues, len(c.Payload), c.Ratio())
	}
	if err := dataset.SaveArchive(*out, arch); err != nil {
		return err
	}
	fmt.Printf("total: %d -> %d bytes, ratio %.2f -> %s\n",
		rawBytes, compBytes, float64(rawBytes)/float64(compBytes), *out)
	return nil
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	in := fs.String("i", "", "input archive (required)")
	out := fs.String("o", "", "output checkpoint (required)")
	metricsAddr := fs.String("metricsaddr", "", "serve expvar + pprof telemetry on this address (e.g. localhost:6060)")
	stats := fs.Bool("stats", false, "dump a telemetry JSON snapshot to stderr when done")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("decompress: -i and -o are required")
	}
	arch, err := dataset.LoadArchive(*in)
	if err != nil {
		return err
	}
	dec, err := zmesh.NewDecoderFromStructure(arch.Structure)
	if err != nil {
		return err
	}
	reg, flushStats, err := setupTelemetry(*metricsAddr, *stats)
	if err != nil {
		return err
	}
	defer flushStats()
	if reg != nil {
		dec.Instrument(reg)
	}
	file := &dataset.CheckpointFile{Problem: arch.Problem, Structure: arch.Structure}
	for _, cf := range arch.Fields {
		layout, err := core.ParseLayout(cf.Layout)
		if err != nil {
			return err
		}
		f, err := dec.DecompressField(&zmesh.Compressed{
			FieldName: cf.Name,
			Layout:    layout,
			Curve:     cf.Curve,
			Codec:     cf.Codec,
			NumValues: cf.NumValues,
			Payload:   cf.Payload,
		})
		if err != nil {
			return fmt.Errorf("decompressing %s: %w", cf.Name, err)
		}
		file.Fields = append(file.Fields, dataset.FieldData{
			Name:   cf.Name,
			Levels: amr.LevelArrays(f),
		})
		fmt.Printf("  %-6s restored (%d values)\n", cf.Name, cf.NumValues)
	}
	if err := dataset.SaveCheckpoint(*out, file); err != nil {
		return err
	}
	fmt.Printf("restored %d quantities -> %s\n", len(file.Fields), *out)
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "checkpoint or archive path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("info: -i is required")
	}
	if ck, err := dataset.LoadCheckpoint(*in); err == nil && len(ck.Fields) > 0 && len(ck.Fields[0].Levels) > 0 {
		m, err := ck.Mesh()
		if err != nil {
			return err
		}
		fmt.Printf("checkpoint %s (problem %s)\n", *in, ck.Problem)
		fmt.Printf("  mesh: %d-D, block %d^d, %d levels, %d blocks (%d leaves)\n",
			m.Dims(), m.BlockSize(), m.MaxLevel()+1, m.NumBlocks(), m.NumLeaves())
		for _, f := range ck.Fields {
			n := 0
			for _, l := range f.Levels {
				n += len(l)
			}
			fmt.Printf("  field %-6s %d values\n", f.Name, n)
		}
		return nil
	}
	arch, err := dataset.LoadArchive(*in)
	if err != nil {
		return fmt.Errorf("%s is neither checkpoint nor archive: %w", *in, err)
	}
	fmt.Printf("archive %s (problem %s)\n", *in, arch.Problem)
	fmt.Printf("  tree metadata: %d bytes\n", len(arch.Structure))
	for _, f := range arch.Fields {
		fmt.Printf("  field %-6s codec=%s layout=%s/%s bound=%s:%g  %d values -> %d bytes (ratio %.2f)\n",
			f.Name, f.Codec, f.Layout, f.Curve, f.BoundMode, f.BoundVal,
			f.NumValues, len(f.Payload), float64(f.NumValues*8)/float64(len(f.Payload)))
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	orig := fs.String("orig", "", "original checkpoint (required)")
	recon := fs.String("recon", "", "reconstructed checkpoint (required)")
	rel := fs.Float64("rel", 0, "relative bound to check")
	abs := fs.Float64("abs", 0, "absolute bound to check")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *orig == "" || *recon == "" {
		return fmt.Errorf("verify: -orig and -recon are required")
	}
	bound, _, _, err := parseBound(*rel, *abs)
	if err != nil {
		return err
	}
	of, err := dataset.LoadCheckpoint(*orig)
	if err != nil {
		return err
	}
	rf, err := dataset.LoadCheckpoint(*recon)
	if err != nil {
		return err
	}
	failed := false
	for _, fo := range of.Fields {
		fr, ok := rf.Field(fo.Name)
		if !ok {
			return fmt.Errorf("field %s missing from reconstruction", fo.Name)
		}
		a := flatten(fo.Levels)
		b := flatten(fr.Levels)
		maxe, err := metrics.MaxAbsError(a, b)
		if err != nil {
			return fmt.Errorf("field %s: %w", fo.Name, err)
		}
		eb := bound.Absolute(a)
		psnr, err := metrics.PSNR(a, b)
		if err != nil {
			return err
		}
		status := "OK"
		if maxe > eb {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("  %-6s max err %.3e (bound %.3e)  PSNR %.1f dB  %s\n",
			fo.Name, maxe, eb, psnr, status)
	}
	if failed {
		return fmt.Errorf("bound violated")
	}
	fmt.Println("all fields within bound")
	return nil
}

func cmdRender(args []string) error {
	fs := flag.NewFlagSet("render", flag.ExitOnError)
	in := fs.String("i", "", "input checkpoint (required)")
	out := fs.String("o", "", "output PNG path (required)")
	field := fs.String("field", "dens", "quantity to render ('levels' renders the AMR level map)")
	width := fs.Int("width", 512, "image width in pixels")
	blocks := fs.Bool("blocks", false, "overlay leaf-block boundaries")
	logScale := fs.Bool("log", false, "log10 colour scale")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("render: -i and -o are required")
	}
	_, m, fields, err := loadFields(*in)
	if err != nil {
		return err
	}
	var img image.Image
	if *field == "levels" {
		img, err = render.LevelMap(m, *width)
	} else {
		var target *amr.Field
		for _, f := range fields {
			if f.Name == *field {
				target = f
				break
			}
		}
		if target == nil {
			return fmt.Errorf("render: field %q not in checkpoint", *field)
		}
		img, err = render.Field(target, render.Options{
			Width: *width, ShowBlocks: *blocks, Log: *logScale,
		})
	}
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("rendered %s -> %s (%dx%d)\n", *field, *out,
		img.Bounds().Dx(), img.Bounds().Dy())
	return nil
}

func flatten(levels [][]float64) []float64 {
	n := 0
	for _, l := range levels {
		n += len(l)
	}
	out := make([]float64, 0, n)
	for _, l := range levels {
		out = append(out, l...)
	}
	return out
}
