package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The command functions are exercised in-process; they take arg slices
// exactly as the CLI dispatcher passes them.

func tempPaths(t *testing.T) (ckpt, arch, restored string) {
	dir := t.TempDir()
	return filepath.Join(dir, "a.ckpt"), filepath.Join(dir, "a.zm"), filepath.Join(dir, "r.ckpt")
}

func generateSmall(t *testing.T, path string) {
	t.Helper()
	err := cmdGenerate([]string{"-problem", "sedov", "-res", "48", "-depth", "2", "-o", path})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPipelineSZ(t *testing.T) {
	ckpt, arch, restored := tempPaths(t)
	generateSmall(t, ckpt)
	if err := cmdCompress([]string{"-i", ckpt, "-o", arch, "-rel", "1e-3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDecompress([]string{"-i", arch, "-o", restored}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-orig", ckpt, "-recon", restored, "-rel", "1e-3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{"-i", ckpt}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{"-i", arch}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineZFPAbsBound(t *testing.T) {
	ckpt, arch, restored := tempPaths(t)
	generateSmall(t, ckpt)
	if err := cmdCompress([]string{"-i", ckpt, "-o", arch,
		"-codec", "zfp", "-layout", "level", "-abs", "1e-2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDecompress([]string{"-i", arch, "-o", restored}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-orig", ckpt, "-recon", restored, "-abs", "1e-2"}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsViolation(t *testing.T) {
	ckpt, arch, restored := tempPaths(t)
	generateSmall(t, ckpt)
	if err := cmdCompress([]string{"-i", ckpt, "-o", arch, "-rel", "1e-2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDecompress([]string{"-i", arch, "-o", restored}); err != nil {
		t.Fatal(err)
	}
	// Verifying against a *tighter* bound than was used must fail.
	if err := cmdVerify([]string{"-orig", ckpt, "-recon", restored, "-rel", "1e-6"}); err == nil {
		t.Fatal("verify accepted a reconstruction beyond the bound")
	}
}

func TestFlagValidation(t *testing.T) {
	ckpt, arch, _ := tempPaths(t)
	if err := cmdGenerate([]string{"-problem", "sedov"}); err == nil {
		t.Fatal("generate without -o accepted")
	}
	if err := cmdGenerate([]string{"-problem", "nope", "-o", ckpt}); err == nil {
		t.Fatal("unknown problem accepted")
	}
	generateSmall(t, ckpt)
	if err := cmdCompress([]string{"-i", ckpt, "-o", arch}); err == nil {
		t.Fatal("compress without bound accepted")
	}
	if err := cmdCompress([]string{"-i", ckpt, "-o", arch, "-rel", "1e-3", "-abs", "1e-3"}); err == nil {
		t.Fatal("both bounds accepted")
	}
	if err := cmdCompress([]string{"-i", ckpt, "-o", arch, "-rel", "1e-3", "-layout", "bogus"}); err == nil {
		t.Fatal("bogus layout accepted")
	}
	if err := cmdCompress([]string{"-i", ckpt, "-o", arch, "-rel", "1e-3", "-codec", "bogus"}); err == nil {
		t.Fatal("bogus codec accepted")
	}
	if err := cmdDecompress([]string{"-i", "does-not-exist", "-o", arch}); err == nil {
		t.Fatal("missing archive accepted")
	}
	if err := cmdInfo([]string{"-i", "does-not-exist"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRender(t *testing.T) {
	ckpt, _, _ := tempPaths(t)
	generateSmall(t, ckpt)
	png1 := ckpt + ".png"
	if err := cmdRender([]string{"-i", ckpt, "-o", png1, "-field", "dens", "-width", "64", "-blocks"}); err != nil {
		t.Fatal(err)
	}
	if fi, err := statFile(png1); err != nil || fi <= 0 {
		t.Fatalf("png missing or empty: %v", err)
	}
	png2 := ckpt + ".levels.png"
	if err := cmdRender([]string{"-i", ckpt, "-o", png2, "-field", "levels", "-width", "64"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRender([]string{"-i", ckpt, "-o", png1, "-field", "nope"}); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := cmdRender([]string{"-i", ckpt}); err == nil {
		t.Fatal("missing -o accepted")
	}
}

func statFile(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func TestInfoDistinguishesFileKinds(t *testing.T) {
	ckpt, arch, _ := tempPaths(t)
	generateSmall(t, ckpt)
	if err := cmdCompress([]string{"-i", ckpt, "-o", arch, "-rel", "1e-3"}); err != nil {
		t.Fatal(err)
	}
	// info must succeed on both kinds; decompress must reject a checkpoint.
	if err := cmdDecompress([]string{"-i", ckpt, "-o", arch + ".x"}); err == nil {
		t.Fatal("decompress accepted a checkpoint as archive")
	}
}
