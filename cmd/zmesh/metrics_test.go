package main

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestMetricsServer covers the -metricsaddr plumbing end to end: a
// published registry must be readable as the "zmesh" expvar on /debug/vars
// of the started server, and the pprof index must respond.
func TestMetricsServer(t *testing.T) {
	reg, flush, err := setupTelemetry("127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	defer flush()
	if reg == nil {
		t.Fatal("setupTelemetry returned nil registry with an address set")
	}
	reg.Counter("encode.fields").Add(7)

	// setupTelemetry logs the bound address to stderr; re-bind a second
	// server directly to get a readable address for the probe.
	addr, err := startMetricsServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Zmesh struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"zmesh"`
	}
	if err := json.Unmarshal(buf, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, buf)
	}
	if got := vars.Zmesh.Counters["encode.fields"]; got != 7 {
		t.Fatalf("expvar zmesh.counters[encode.fields] = %d, want 7", got)
	}

	pp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index returned %d", pp.StatusCode)
	}

	// No address and no stats: the pipeline must stay uninstrumented.
	none, flushNone, err := setupTelemetry("", false)
	if err != nil {
		t.Fatal(err)
	}
	flushNone()
	if none != nil {
		t.Fatal("setupTelemetry without address or stats must return a nil registry")
	}
}
