// Command zmesh-ci is the benchmark-regression gate run in CI. It measures
// a fixed workload (recipe construction, compress/decompress, and the
// deterministic ratio table) and compares it against the committed baseline,
// failing the build when throughput regresses beyond -max-slowdown or any
// compression ratio drops beyond -max-ratio-drop.
//
// Throughput is compared as a *normalized score* — workload time divided by
// a machine-speed reference workload timed in the same process — so the
// committed baseline transfers across runners: slower hardware cancels out,
// a code regression does not.
//
//	zmesh-ci                       # check against BENCH_baseline.json
//	zmesh-ci -update               # regenerate the baseline in place
//	zmesh-ci -max-slowdown 0.15 -max-ratio-drop 0.01
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline path")
	update := flag.Bool("update", false, "measure and rewrite the baseline instead of checking")
	maxSlowdown := flag.Float64("max-slowdown", 0.4, "maximum allowed throughput regression (fraction); a coarse alarm — scores on shared runners drift ~30% run to run even with paired sampling, while the ratio table and kernel-speedup floor are gated exactly")
	maxRatioDrop := flag.Float64("max-ratio-drop", 0.01, "maximum allowed compression-ratio drop (fraction)")
	reps := flag.Int("reps", 5, "best-of repetition count")
	flag.Parse()

	if err := run(*baselinePath, *update, *maxSlowdown, *maxRatioDrop, *reps); err != nil {
		fmt.Fprintf(os.Stderr, "zmesh-ci: %v\n", err)
		os.Exit(1)
	}
}

func run(baselinePath string, update bool, maxSlowdown, maxRatioDrop float64, reps int) error {
	fmt.Printf("measuring gate workload (best of %d)...\n", reps)
	current, err := report.MeasureCIGate(reps)
	if err != nil {
		return err
	}
	fmt.Print(report.FormatCIMeasurement(current))

	if update {
		// Throughput modes differ between processes on shared hosts; commit
		// the slower mode of two runs so the baseline never flags a normal
		// run as a regression (see CIMeasurement.MergeConservative).
		fmt.Printf("re-measuring for a conservative baseline (best of %d)...\n", reps)
		second, err := report.MeasureCIGate(reps)
		if err != nil {
			return err
		}
		if err := current.MergeConservative(second); err != nil {
			return err
		}
		fmt.Print(report.FormatCIMeasurement(current))
		buf, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("baseline updated: %s\n", baselinePath)
		return nil
	}

	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline (run `zmesh-ci -update` to create it): %w", err)
	}
	var baseline report.CIMeasurement
	if err := json.Unmarshal(buf, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	violations := report.CompareCIGate(&baseline, current, maxSlowdown, maxRatioDrop)
	if len(violations) > 0 {
		fmt.Printf("\nFAIL: %d gate violation(s) vs %s:\n", len(violations), baselinePath)
		for _, v := range violations {
			fmt.Printf("  - %s\n", v)
		}
		return fmt.Errorf("benchmark regression gate failed")
	}
	fmt.Printf("\nOK: within budgets of %s (slowdown <= %.0f%%, ratio drop <= %.1f%%)\n",
		baselinePath, maxSlowdown*100, maxRatioDrop*100)
	return nil
}
