package zmesh

// The per-field layout auto-picker (LayoutAuto). No single order wins
// everywhere: zMesh's chained-tree order exploits cross-level coherence,
// TAC's dense boxes exploit in-level spatial neighborhoods, and on
// already-smooth fields the plain level order is hard to beat once the
// permutation machinery buys nothing. LayoutAuto resolves the choice per
// field at encode time: it trial-compresses a small deterministic sample of
// the field under every candidate layout with the encoder's real codec,
// picks the layout with the fewest payload bytes per sampled value, and
// stamps the winner into the artifact's Layout field — the decoder reads the
// recorded concrete layout and never guesses.
//
// Determinism contract: the sample positions are a pure function of
// (Options.AutoSeed, field name, stream length, candidate set), so two
// encoders with equal options pick the same layout for the same field and
// produce byte-identical artifacts. Ties break toward the earliest
// candidate. This is what lets CI gate auto's ratios exactly and lets
// replicated servers serve identical bytes.

import (
	"math"

	"repro/internal/compress"
	"repro/internal/core"
)

// autoCandidates is the closed candidate set, in tie-break priority order.
// ZMeshBlock is deliberately absent: it is an ablation variant of ZMesh, and
// sampling it would double the zMesh-family trials for a layout that the
// experiments show is dominated by cell-granularity zMesh.
var autoCandidates = []Layout{core.LevelOrder, core.SFCWithinLevel, core.ZMesh, core.TAC3D}

// Auto-picker sampling parameters. Part of the LayoutAuto definition —
// changing them changes which layout wins marginal fields, so they are
// constants, not options.
const (
	// autoSampleWindows is the number of sample windows (1-D candidates) or
	// box-walk strides (TAC) drawn per candidate.
	autoSampleWindows = 8
	// autoWindowCells is the cell length of one 1-D sample window; the TAC
	// sampler targets autoSampleWindows*autoWindowCells sampled cells.
	autoWindowCells = 512
)

// autoPicker holds the candidate recipes of a LayoutAuto encoder.
type autoPicker struct {
	seed    uint64
	recipes []*core.Recipe // one per autoCandidates entry, same order
}

// splitmix64 is the sample-position hash — a tiny, well-mixed PRF so window
// jitter is deterministic without math/rand state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv64a hashes the field name into the sample seed (FNV-1a).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// uvarintLen is the encoded size of v as a uvarint — the per-box table
// overhead the TAC sampler charges so its cost is comparable to the 1-D
// candidates' overhead-free streams.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// pickAuto trial-compresses samples of the level-order stream flat under
// every candidate and returns the winning recipe. sample and tac are
// caller-owned scratch (the candidate-ordered stream and the TAC dense box).
func (e *Encoder) pickAuto(codec compress.Compressor, name string, flat []float64, bound Bound, sample *[]float64, tac *tacFrameScratch) (*core.Recipe, error) {
	// Resolve a relative bound over the full stream once: the sample trials
	// must enforce the same absolute bound the real encode will, and the
	// resolution is ordering-invariant, so every candidate sees it equally.
	bound = tacResolveBound(bound, flat)
	h := splitmix64(e.auto.seed ^ fnv64a(name) ^ uint64(len(flat)))
	best, bestCost := 0, math.Inf(1)
	for ci, r := range e.auto.recipes {
		ordered, err := r.ApplyTo(*sample, flat)
		if err != nil {
			return nil, err
		}
		*sample = ordered
		var bytes, cells int
		if r.Layout() == core.TAC3D {
			bytes, cells, err = sampleTACBoxes(codec, e.mesh.Dims(), r.TACPlan(), ordered, bound, h, tac)
		} else {
			bytes, cells, err = sampleWindows(codec, ordered, bound, h)
		}
		if err != nil {
			return nil, err
		}
		if cells == 0 {
			continue
		}
		if cost := float64(bytes) / float64(cells); cost < bestCost {
			best, bestCost = ci, cost
		}
	}
	return e.auto.recipes[best], nil
}

// sampleWindows trial-compresses jittered, non-overlapping windows of a 1-D
// ordered stream and returns total payload bytes and cells sampled. The
// windows are gathered and compressed in ONE codec call: the real 1-D
// artifact is a single call over the whole stream, so charging the codec's
// fixed per-call overhead once per window (instead of once per field) would
// systematically overtax the 1-D candidates against TAC, which genuinely
// pays per box.
func sampleWindows(codec compress.Compressor, ordered []float64, bound Bound, h uint64) (bytes, cells int, err error) {
	n := len(ordered)
	if n == 0 {
		return 0, 0, nil
	}
	wlen := autoWindowCells
	if wlen > n {
		wlen = n
	}
	windows := autoSampleWindows
	if windows*wlen > n {
		windows = n / wlen
		if windows < 1 {
			windows = 1
		}
	}
	stride := n / windows
	gathered := make([]float64, 0, windows*wlen)
	for w := 0; w < windows; w++ {
		base := w * stride
		// Jitter within the window's stride so refinement-aligned structure
		// cannot systematically hide from every sample.
		slack := stride - wlen
		if w == windows-1 {
			slack = n - base - wlen
		}
		off := base
		if slack > 0 {
			off += int(splitmix64(h+uint64(w)) % uint64(slack+1))
		}
		gathered = append(gathered, ordered[off:off+wlen]...)
	}
	sub, err := codec.Compress(gathered, []int{len(gathered)}, bound)
	if err != nil {
		return 0, 0, err
	}
	return len(sub), len(gathered), nil
}

// sampleTACBoxes trial-compresses whole boxes of a TAC-ordered stream
// (dims-aware, exactly as the real frame encoder would) starting from a
// seeded box and striding through the plan until the cell target is met.
// Each box is charged its frame table entry so the cost is comparable to the
// 1-D candidates.
func sampleTACBoxes(codec compress.Compressor, dims int, plan *core.TACPlan, ordered []float64, bound Bound, h uint64, tac *tacFrameScratch) (bytes, cells int, err error) {
	nb := plan.NumBoxes()
	if nb == 0 {
		return 0, 0, nil
	}
	offs := make([]int, nb+1)
	for i := range plan.Boxes {
		offs[i+1] = offs[i] + plan.Boxes[i].NumCells
	}
	start := int(h % uint64(nb))
	stride := nb / autoSampleWindows
	if stride < 1 {
		stride = 1
	}
	target := autoSampleWindows * autoWindowCells
	for i := 0; i < nb && cells < target; i += stride {
		bi := (start + i) % nb
		box := &plan.Boxes[bi]
		sub, err := tacCompressBox(codec, dims, box, ordered[offs[bi]:offs[bi+1]], bound, tac)
		if err != nil {
			return 0, 0, err
		}
		bytes += len(sub) + uvarintLen(uint64(len(sub)))
		cells += box.NumCells
	}
	return bytes, cells, nil
}
