package zmesh

// Golden fixtures for the TAC box layout and the per-field auto-picker,
// extending the golden discipline of golden_test.go to the zTAC frame
// format and the picker's recorded choice. Regenerate together with the
// rest of the fixtures:
//
//	go test -run TestGolden -update .

import (
	"bytes"
	"testing"

	"repro/internal/compress/container"
	"repro/internal/core"
)

// TestGoldenTAC pins the zTAC frame format per codec on a genuinely 3-D
// mesh (partial boxes, carry-last padding, per-box sub-payload table). The
// fixture carries the mesh structure blob so decode starts from exactly
// what a reader of the committed artifact would have.
func TestGoldenTAC(t *testing.T) {
	m, f := tacTestMesh3D(t)
	for _, codec := range goldenCodecs {
		codec := codec
		t.Run(codec, func(t *testing.T) {
			name := "tac_" + codec + ".json"
			if *updateGolden {
				enc, err := NewEncoder(m, Options{Layout: core.TAC3D, Curve: "hilbert", Codec: codec})
				if err != nil {
					t.Fatal(err)
				}
				c, err := enc.CompressField(f, goldenBound())
				if err != nil {
					t.Fatal(err)
				}
				dec, err := NewDecoder(m).DecompressField(c)
				if err != nil {
					t.Fatal(err)
				}
				fx := fixtureFromCompressed(c, dec)
				fx.Structure = m.Structure()
				writeFixture(t, name, fx)
				return
			}
			var g goldenFixture
			readFixture(t, name, &g)
			checkVersion(t, name, g.ContainerVersion)
			if g.Layout != core.TAC3D.String() {
				t.Fatalf("%s: fixture layout %q, want tac", name, g.Layout)
			}
			c, err := g.compressed()
			if err != nil {
				t.Fatal(err)
			}
			d, err := NewDecoderFromStructure(g.Structure)
			if err != nil {
				t.Fatalf("%s: committed structure no longer parses: %v", name, err)
			}
			out, err := d.DecompressField(c)
			if err != nil {
				t.Fatalf("%s: committed TAC artifact no longer decodes: %v.\n"+
					"If the frame-format break is intentional, bump container.Version and regenerate with -update.", name, err)
			}
			compareBits(t, name, g.Values, FieldValues(out))
		})
	}
}

// TestGoldenAuto pins the auto-picker end to end, per codec: the committed
// artifact must still decode bit-exactly, AND a fresh LayoutAuto encoder
// over the same field must reproduce the committed winner and payload —
// so a picker change (candidate set, sampling protocol, tie-break) fails
// CI the same way a frame-format change would.
func TestGoldenAuto(t *testing.T) {
	m, f, _ := goldenField(t)
	for _, codec := range goldenCodecs {
		codec := codec
		t.Run(codec, func(t *testing.T) {
			name := "auto_" + codec + ".json"
			encode := func() *Compressed {
				enc, err := NewEncoder(m, Options{Layout: core.AutoLayout, Curve: "hilbert", Codec: codec})
				if err != nil {
					t.Fatal(err)
				}
				c, err := enc.CompressField(f, goldenBound())
				if err != nil {
					t.Fatal(err)
				}
				return c
			}
			if *updateGolden {
				c := encode()
				dec, err := NewDecoder(m).DecompressField(c)
				if err != nil {
					t.Fatal(err)
				}
				writeFixture(t, name, fixtureFromCompressed(c, dec))
				return
			}
			var g goldenFixture
			readFixture(t, name, &g)
			checkVersion(t, name, g.ContainerVersion)
			if g.Layout == core.AutoLayout.String() {
				t.Fatalf("%s: fixture records the pseudo-layout instead of a winner", name)
			}
			if !container.IsContainer(g.Payload) {
				t.Fatalf("%s: committed payload is not a container envelope", name)
			}
			c, err := g.compressed()
			if err != nil {
				t.Fatal(err)
			}
			out, err := NewDecoder(m).DecompressField(c)
			if err != nil {
				t.Fatalf("%s: committed auto artifact no longer decodes: %v", name, err)
			}
			compareBits(t, name, g.Values, FieldValues(out))
			fresh := encode()
			if fresh.Layout.String() != g.Layout {
				t.Fatalf("%s: auto picker now chooses %v, fixture pins %s.\n"+
					"The sampling protocol or candidate set changed; if intentional, regenerate with -update\n"+
					"and note the pick change in DESIGN.md.", name, fresh.Layout, g.Layout)
			}
			if !bytes.Equal(fresh.Payload, g.Payload) {
				t.Fatalf("%s: fresh auto encode differs from committed payload (%d vs %d bytes)",
					name, len(fresh.Payload), len(g.Payload))
			}
		})
	}
}
