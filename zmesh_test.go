package zmesh

import (
	"math"
	"testing"
)

// testCheckpoint builds a small Sedov checkpoint once per test binary.
var testCk *Checkpoint

func checkpoint(t testing.TB) *Checkpoint {
	t.Helper()
	if testCk == nil {
		ck, err := Generate("sedov", GenerateOptions{
			Resolution: 64, TScale: 0.5, BlockSize: 8,
			RootDims: [3]int{2, 2, 1}, MaxDepth: 2, Threshold: 0.35,
		})
		if err != nil {
			t.Fatal(err)
		}
		testCk = ck
	}
	return testCk
}

func TestEndToEndAllConfigs(t *testing.T) {
	ck := checkpoint(t)
	dens, _ := ck.Field("dens")
	bound := RelBound(1e-4)
	for _, layout := range []Layout{LayoutLevel, LayoutSFC, LayoutZMesh} {
		for _, codec := range []string{"sz", "zfp"} {
			enc, err := NewEncoder(ck.Mesh, Options{Layout: layout, Curve: "hilbert", Codec: codec})
			if err != nil {
				t.Fatalf("%v/%s: %v", layout, codec, err)
			}
			c, err := enc.CompressField(dens, bound)
			if err != nil {
				t.Fatalf("%v/%s: %v", layout, codec, err)
			}
			if c.Ratio() <= 1 {
				t.Fatalf("%v/%s: ratio %.2f not > 1", layout, codec, c.Ratio())
			}
			dec := NewDecoder(ck.Mesh)
			got, err := dec.DecompressField(c)
			if err != nil {
				t.Fatalf("%v/%s: %v", layout, codec, err)
			}
			e, err := MaxAbsError(dens, got)
			if err != nil {
				t.Fatal(err)
			}
			eb := bound.Absolute(FieldValues(dens))
			if e > eb {
				t.Fatalf("%v/%s: max error %g exceeds bound %g", layout, codec, e, eb)
			}
		}
	}
}

func TestDecoderFromStructure(t *testing.T) {
	// The round trip the paper describes: compressed payload + tree
	// metadata, no stored permutation.
	ck := checkpoint(t)
	pres, _ := ck.Field("pres")
	enc, err := NewEncoder(ck.Mesh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c, err := enc.CompressField(pres, RelBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	structure := ck.Mesh.Structure()
	dec, err := NewDecoderFromStructure(structure)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.DecompressField(c)
	if err != nil {
		t.Fatal(err)
	}
	orig := FieldValues(pres)
	recon := FieldValues(got)
	if len(orig) != len(recon) {
		t.Fatalf("length mismatch %d vs %d", len(orig), len(recon))
	}
	eb := RelBound(1e-3).Absolute(orig)
	for i := range orig {
		if math.Abs(orig[i]-recon[i]) > eb {
			t.Fatalf("value %d: error %g > %g", i, math.Abs(orig[i]-recon[i]), eb)
		}
	}
}

func TestZMeshBeatsLevelOrderForSZ(t *testing.T) {
	// The headline result at small scale: zMesh layout yields a better SZ
	// ratio than the native level order on a shock dataset. The gain is
	// largest at loose bounds (see EXPERIMENTS.md), so test there.
	ck := checkpoint(t)
	dens, _ := ck.Field("dens")
	bound := RelBound(1e-2)
	ratio := func(layout Layout) float64 {
		enc, err := NewEncoder(ck.Mesh, Options{Layout: layout, Curve: "hilbert", Codec: "sz"})
		if err != nil {
			t.Fatal(err)
		}
		c, err := enc.CompressField(dens, bound)
		if err != nil {
			t.Fatal(err)
		}
		return c.Ratio()
	}
	rLevel := ratio(LayoutLevel)
	rZ := ratio(LayoutZMesh)
	if rZ <= rLevel {
		t.Fatalf("zMesh ratio %.2f not better than level order %.2f", rZ, rLevel)
	}
}

func TestSmoothnessImprovementPositive(t *testing.T) {
	ck := checkpoint(t)
	dens, _ := ck.Field("dens")
	base := FieldValues(dens)
	enc, err := NewEncoder(ck.Mesh, Options{Layout: LayoutZMesh, Curve: "hilbert", Codec: "sz"})
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := enc.Serialize(dens)
	if err != nil {
		t.Fatal(err)
	}
	imp := SmoothnessImprovement(base, ordered)
	if imp <= 0 {
		t.Fatalf("smoothness improvement %.1f%% not positive", imp)
	}
}

func TestEncoderRejectsForeignField(t *testing.T) {
	ck := checkpoint(t)
	other, err := NewMesh(2, 8, [3]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	foreign := NewField(other, "x")
	enc, err := NewEncoder(ck.Mesh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.CompressField(foreign, RelBound(1e-3)); err == nil {
		t.Fatal("foreign field accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{Layout: LayoutZMesh}
	o.fillDefaults()
	if o.Curve != "hilbert" || o.Codec != "sz" {
		t.Fatalf("defaults %+v", o)
	}
	d := DefaultOptions()
	if d.Layout != LayoutZMesh {
		t.Fatal("default layout")
	}
}

func TestGenerateDefaultsAndErrors(t *testing.T) {
	if _, err := Generate("no-such-problem", GenerateOptions{}); err == nil {
		t.Fatal("unknown problem accepted")
	}
	if len(Problems()) == 0 || len(Codecs()) == 0 {
		t.Fatal("registries empty")
	}
}

func TestBuildAdaptivePublic(t *testing.T) {
	m, f, err := BuildAdaptive(BuildOptions{
		Dims: 2, BlockSize: 8, RootDims: [3]int{2, 2, 1},
		MaxDepth: 2, Threshold: 0.4,
	}, func(x, y, z float64) float64 {
		return math.Tanh((x - 0.5) / 0.02)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxLevel() < 1 {
		t.Fatal("no refinement")
	}
	g := SampleField(m, "second", func(x, y, z float64) float64 { return x * y })
	if g.Name != "second" {
		t.Fatal("sample field name")
	}
	_ = f
}

func TestPSNRPublic(t *testing.T) {
	ck := checkpoint(t)
	dens, _ := ck.Field("dens")
	enc, err := NewEncoder(ck.Mesh, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c, err := enc.CompressField(dens, RelBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewDecoder(ck.Mesh).DecompressField(c)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PSNR(dens, got)
	if err != nil {
		t.Fatal(err)
	}
	// 1e-4 relative bound implies PSNR of at least 80 dB.
	if p < 80 {
		t.Fatalf("PSNR %.1f dB below 80", p)
	}
}
