package zmesh

// The TAC frame format. A TAC3D recipe serializes the field box by box
// (internal/core/tac.go); this file turns that ordered stream into a payload
// by compressing every box as a dense padded 2D/3D array with the dims-aware
// codec — the half of the TAC idea the 1-D layouts cannot express. The frame
// lives *inside* the existing container envelope, so the wire format, CRC
// and legacy handling are untouched:
//
//	"zTAC" | version (1 byte) | uvarint nValues | uvarint nBoxes |
//	nBoxes × uvarint subLen | concatenated per-box codec payloads
//
// Like the permutation itself, the box table carries no geometry: box
// extents and fill masks are rebuilt from the mesh topology at decode time.
// The decoder therefore validates every frame-declared count against the
// topology-derived plan BEFORE sizing any allocation from it — a corrupt or
// hostile frame can fail, but it cannot make the decoder allocate.
//
// Padding cells (positions of the dense box whose block belongs to another
// box) carry the last-seen real value in row-major order, initialized to the
// box's first real value: predictors then see locally-constant data instead
// of zeros punched into a smooth field, and the padded values are simply
// dropped on decode.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/compress"
	"repro/internal/core"
)

const (
	tacFrameMagic   = "zTAC"
	tacFrameVersion = 1
)

// tacFrameScratch carries the reusable buffers of the TAC frame encoder: the
// dense padded box and the accumulated sub-payload area. The zero value is
// ready to use.
type tacFrameScratch struct {
	dense []float64
	body  []byte
	lens  []int
}

func (t *tacFrameScratch) pinnedBytes() int {
	return 8*cap(t.dense) + cap(t.body) + 8*cap(t.lens)
}

// tacBoxDims returns the codec dims of a box's dense array, slowest axis
// first ({dz, dy, dx} in 3-D, {dy, dx} in 2-D), matching the row-major
// (x fastest) cell order the recipe emits.
func tacBoxDims(dims int, box *core.TACBox) []int {
	cd := box.CellDims
	if dims == 3 {
		return []int{cd[2], cd[1], cd[0]}
	}
	return []int{cd[1], cd[0]}
}

// tacFillDense expands one box's real-cell run into its dense padded array.
// run holds the box's NumCells real values in local row-major order.
func tacFillDense(dense []float64, box *core.TACBox, run []float64) {
	if box.Mask == nil {
		copy(dense, run)
		return
	}
	last := run[0]
	k := 0
	for idx := range dense {
		if box.Present(idx) {
			last = run[k]
			k++
		}
		dense[idx] = last
	}
}

// tacResolveBound pins a relative bound to its absolute value over the whole
// field once, so every per-box codec call enforces the same point-wise bound
// the caller asked for (a box's local range must not tighten or loosen it).
// A bound that resolves to zero (constant field) passes through unchanged.
func tacResolveBound(bound Bound, ordered []float64) Bound {
	if abs := bound.Absolute(ordered); abs > 0 {
		return compress.AbsBound(abs)
	}
	return bound
}

// tacCompressBox pads and compresses one box of the ordered stream with the
// dims-aware codec, reusing the scratch dense buffer.
func tacCompressBox(codec compress.Compressor, dims int, box *core.TACBox, run []float64, bound Bound, sc *tacFrameScratch) ([]byte, error) {
	vol := box.Volume()
	if cap(sc.dense) < vol {
		sc.dense = make([]float64, vol)
	}
	dense := sc.dense[:vol]
	tacFillDense(dense, box, run)
	return codec.Compress(dense, tacBoxDims(dims, box), bound)
}

// tacEncodeStream encodes an already TAC-ordered stream into a zTAC frame.
func tacEncodeStream(codec compress.Compressor, dims int, plan *core.TACPlan, ordered []float64, bound Bound, sc *tacFrameScratch) ([]byte, error) {
	if plan == nil {
		return nil, fmt.Errorf("zmesh: tac recipe carries no box plan")
	}
	bound = tacResolveBound(bound, ordered)
	sc.body = sc.body[:0]
	sc.lens = sc.lens[:0]
	off := 0
	for i := range plan.Boxes {
		box := &plan.Boxes[i]
		if off+box.NumCells > len(ordered) {
			return nil, fmt.Errorf("zmesh: tac plan needs %d values past stream end", off+box.NumCells-len(ordered))
		}
		sub, err := tacCompressBox(codec, dims, box, ordered[off:off+box.NumCells], bound, sc)
		if err != nil {
			return nil, fmt.Errorf("zmesh: tac box %d: %w", i, err)
		}
		off += box.NumCells
		sc.lens = append(sc.lens, len(sub))
		sc.body = append(sc.body, sub...)
	}
	if off != len(ordered) {
		return nil, fmt.Errorf("zmesh: tac plan covers %d of %d values", off, len(ordered))
	}
	frame := make([]byte, 0, len(tacFrameMagic)+1+(2+len(sc.lens))*binary.MaxVarintLen64+len(sc.body))
	frame = append(frame, tacFrameMagic...)
	frame = append(frame, tacFrameVersion)
	frame = binary.AppendUvarint(frame, uint64(len(ordered)))
	frame = binary.AppendUvarint(frame, uint64(len(plan.Boxes)))
	for _, l := range sc.lens {
		frame = binary.AppendUvarint(frame, uint64(l))
	}
	return append(frame, sc.body...), nil
}

// tacDecodeStream decodes a zTAC frame back into the TAC-ordered stream.
// want is the topology-derived cell count (recipe length); every count the
// frame declares is checked against the plan before it sizes anything.
func tacDecodeStream(codec compress.Compressor, dims int, plan *core.TACPlan, want int, payload []byte) ([]float64, error) {
	if plan == nil {
		return nil, fmt.Errorf("zmesh: tac recipe carries no box plan")
	}
	if len(payload) < len(tacFrameMagic)+1 || string(payload[:len(tacFrameMagic)]) != tacFrameMagic {
		return nil, fmt.Errorf("zmesh: tac frame: bad magic")
	}
	if v := payload[len(tacFrameMagic)]; v != tacFrameVersion {
		return nil, fmt.Errorf("zmesh: tac frame: unsupported version %d", v)
	}
	rest := payload[len(tacFrameMagic)+1:]
	total, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("zmesh: tac frame: truncated value count")
	}
	rest = rest[n:]
	if total != uint64(want) {
		return nil, fmt.Errorf("zmesh: tac frame claims %d values, topology has %d", total, want)
	}
	nBoxes, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("zmesh: tac frame: truncated box count")
	}
	rest = rest[n:]
	// The declared box count must match the plan exactly; rejecting here —
	// before the box table is even read — is what caps a declared-box-count
	// allocation bomb.
	if nBoxes != uint64(plan.NumBoxes()) {
		return nil, fmt.Errorf("zmesh: tac frame claims %d boxes, topology has %d", nBoxes, plan.NumBoxes())
	}
	lens := make([]int, plan.NumBoxes())
	var sum uint64
	for i := range lens {
		l, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("zmesh: tac frame: truncated box table at entry %d", i)
		}
		rest = rest[n:]
		if sum += l; l > uint64(len(rest)) || sum > uint64(len(rest)) {
			return nil, fmt.Errorf("zmesh: tac frame: box table overruns payload at entry %d", i)
		}
		lens[i] = int(l)
	}
	if sum != uint64(len(rest)) {
		return nil, fmt.Errorf("zmesh: tac frame: box table claims %d payload bytes, frame has %d", sum, len(rest))
	}
	out := make([]float64, 0, want)
	off := 0
	for i := range plan.Boxes {
		box := &plan.Boxes[i]
		dense, err := codec.Decompress(rest[off : off+lens[i]])
		if err != nil {
			return nil, fmt.Errorf("zmesh: tac box %d: %w", i, err)
		}
		off += lens[i]
		if len(dense) != box.Volume() {
			return nil, fmt.Errorf("zmesh: tac box %d decoded to %d cells, box holds %d", i, len(dense), box.Volume())
		}
		if box.Mask == nil {
			out = append(out, dense...)
			continue
		}
		for idx := range dense {
			if box.Present(idx) {
				out = append(out, dense[idx])
			}
		}
	}
	if len(out) != want {
		return nil, fmt.Errorf("zmesh: tac frame: boxes decoded to %d values, topology has %d", len(out), want)
	}
	return out, nil
}
