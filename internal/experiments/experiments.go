// Package experiments implements the reproduction of every table and figure
// in the zMesh evaluation (as reconstructed in EXPERIMENTS.md). Each
// experiment is a pure function from a dataset suite to structured rows, so
// the same code backs the zmesh-bench CLI and the testing.B benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/amr"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"

	// Register codecs.
	_ "repro/internal/compress/lossless"
	_ "repro/internal/compress/multilevel"
	_ "repro/internal/compress/sz"
	_ "repro/internal/compress/zfp"
)

// Config scales the evaluation. The defaults reproduce the headline shapes
// in a few minutes; larger Resolution/MaxDepth sharpen the numbers.
type Config struct {
	Problems   []string
	Fields     []string
	Resolution int
	BlockSize  int
	RootDims   [3]int
	MaxDepth   int
	Threshold  float64
	Bounds     []float64 // relative error bounds for the sweeps
}

// DefaultConfig is the configuration used by EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Problems:   []string{"sod", "sedov", "blast", "kh"},
		Fields:     []string{"dens", "pres", "velx"},
		Resolution: 256,
		BlockSize:  8,
		RootDims:   [3]int{2, 2, 1},
		MaxDepth:   4,
		Threshold:  0.35,
		Bounds:     []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6},
	}
}

// QuickConfig is a scaled-down configuration for unit tests.
func QuickConfig() Config {
	return Config{
		Problems:   []string{"sedov"},
		Fields:     []string{"dens"},
		Resolution: 64,
		BlockSize:  8,
		RootDims:   [3]int{2, 2, 1},
		MaxDepth:   2,
		Threshold:  0.35,
		Bounds:     []float64{1e-2, 1e-4},
	}
}

// Suite caches generated checkpoints across experiments.
type Suite struct {
	Cfg Config

	mu  sync.Mutex
	cks map[string]*sim.Checkpoint
}

// NewSuite creates a suite for the configuration.
func NewSuite(cfg Config) *Suite {
	return &Suite{Cfg: cfg, cks: make(map[string]*sim.Checkpoint)}
}

// Checkpoint generates (or returns the cached) checkpoint for a problem.
func (s *Suite) Checkpoint(problem string) (*sim.Checkpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ck, ok := s.cks[problem]; ok {
		return ck, nil
	}
	ck, err := sim.GenerateCheckpoint(problem, sim.CheckpointOptions{
		Resolution: s.Cfg.Resolution,
		TScale:     1,
		BlockSize:  s.Cfg.BlockSize,
		RootDims:   s.Cfg.RootDims,
		MaxDepth:   s.Cfg.MaxDepth,
		Threshold:  s.Cfg.Threshold,
	})
	if err != nil {
		return nil, err
	}
	s.cks[problem] = ck
	return ck, nil
}

// layoutSpec pairs a layout with a sibling curve.
type layoutSpec struct {
	layout core.Layout
	curve  string
}

func (l layoutSpec) String() string {
	if l.layout == core.LevelOrder {
		return "level"
	}
	return fmt.Sprintf("%v/%s", l.layout, l.curve)
}

// standardLayouts is the comparison set used across experiments: the
// baseline, the within-level SFC orders, and zMesh with both curves.
func standardLayouts() []layoutSpec {
	return []layoutSpec{
		{core.LevelOrder, "morton"},
		{core.SFCWithinLevel, "morton"},
		{core.SFCWithinLevel, "hilbert"},
		{core.ZMesh, "morton"},
		{core.ZMesh, "hilbert"},
	}
}

// fieldStream serializes a named field of a checkpoint in a layout.
func fieldStream(ck *sim.Checkpoint, fieldName string, spec layoutSpec) ([]float64, error) {
	f, ok := ck.Field(fieldName)
	if !ok {
		return nil, fmt.Errorf("experiments: field %q missing", fieldName)
	}
	flat := amr.Flatten(amr.LevelArrays(f))
	recipe, err := core.BuildRecipe(ck.Mesh, spec.layout, spec.curve)
	if err != nil {
		return nil, err
	}
	return recipe.Apply(flat)
}

// Table is a generic result table: a header plus formatted rows, printable
// in the layout the paper's tables use.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

// IDs of the experiments, in presentation order.
func ExperimentIDs() []string {
	return []string{"T1", "F2", "F3", "F4", "F5", "T6", "F7", "T8", "F9", "F10", "T11", "T12", "T13", "F14", "T15", "T16"}
}

// Run dispatches one experiment by ID. Besides the listed IDs, "DIAG" runs
// the stream-locality diagnostic behind the F2 discussion.
func (s *Suite) Run(id string) (*Table, error) {
	switch strings.ToUpper(id) {
	case "T1":
		return s.DatasetInventory()
	case "F2":
		return s.Smoothness()
	case "F3":
		return s.RatioSweep("sz")
	case "F4":
		return s.RatioSweep("zfp")
	case "F5":
		return s.RateDistortion()
	case "T6":
		return s.ErrorCompliance()
	case "F7":
		return s.Amortization()
	case "T8":
		return s.Throughput()
	case "F9":
		return s.Ablation()
	case "F10":
		return s.ThreeD()
	case "T11":
		return s.CodecComparison()
	case "T12":
		return s.UniformGrid()
	case "T13":
		return s.ParallelScaling()
	case "F14":
		return s.PaddedLevels()
	case "T15":
		return s.Temporal()
	case "T16":
		return s.TACComparison()
	case "DIAG":
		return s.Locality()
	}
	return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, ExperimentIDs())
}

// DatasetInventory (T1) summarizes the generated datasets.
func (s *Suite) DatasetInventory() (*Table, error) {
	t := &Table{
		Title:  "T1 — dataset inventory",
		Header: []string{"dataset", "levels", "blocks", "leaves", "cells/field", "quantities"},
	}
	for _, p := range s.Cfg.Problems {
		ck, err := s.Checkpoint(p)
		if err != nil {
			return nil, err
		}
		m := ck.Mesh
		t.Rows = append(t.Rows, []string{
			p,
			fmt.Sprintf("%d", m.MaxLevel()+1),
			fmt.Sprintf("%d", m.NumBlocks()),
			fmt.Sprintf("%d", m.NumLeaves()),
			fmt.Sprintf("%d", m.NumBlocks()*m.CellsPerBlock()),
			fmt.Sprintf("%d", len(ck.Fields)),
		})
	}
	return t, nil
}

// Smoothness (F2) measures total-variation smoothness improvement of each
// reordering over the level-order baseline (the paper's 67.9% / 71.3%
// claim).
func (s *Suite) Smoothness() (*Table, error) {
	specs := standardLayouts()
	header := []string{"dataset", "field"}
	for _, sp := range specs[1:] {
		header = append(header, sp.String()+" Δ%")
	}
	t := &Table{Title: "F2 — smoothness improvement over level order (higher is better)", Header: header}
	var meanImp = map[string]float64{}
	var count float64
	for _, p := range s.Cfg.Problems {
		ck, err := s.Checkpoint(p)
		if err != nil {
			return nil, err
		}
		for _, fn := range s.Cfg.Fields {
			base, err := fieldStream(ck, fn, specs[0])
			if err != nil {
				return nil, err
			}
			row := []string{p, fn}
			for _, sp := range specs[1:] {
				ordered, err := fieldStream(ck, fn, sp)
				if err != nil {
					return nil, err
				}
				imp := metrics.SmoothnessImprovement(base, ordered)
				meanImp[sp.String()] += imp
				row = append(row, fmt.Sprintf("%+.1f", imp))
			}
			count++
			t.Rows = append(t.Rows, row)
		}
	}
	keys := make([]string, 0, len(meanImp))
	for k := range meanImp {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.Notes = append(t.Notes, fmt.Sprintf("mean %-18s %+.1f%%", k, meanImp[k]/count))
	}
	return t, nil
}

// RatioSweep (F3 for sz, F4 for zfp) sweeps relative error bounds and
// reports compression ratios per layout.
func (s *Suite) RatioSweep(codecName string) (*Table, error) {
	codec, err := compress.Get(codecName)
	if err != nil {
		return nil, err
	}
	specs := standardLayouts()
	header := []string{"dataset", "field", "rel bound"}
	for _, sp := range specs {
		header = append(header, sp.String())
	}
	header = append(header, "zmesh gain %")
	id := "F3"
	if codecName == "zfp" {
		id = "F4"
	}
	t := &Table{
		Title:  fmt.Sprintf("%s — %s compression ratio vs error bound", id, strings.ToUpper(codecName)),
		Header: header,
	}
	var bestGain float64
	for _, p := range s.Cfg.Problems {
		ck, err := s.Checkpoint(p)
		if err != nil {
			return nil, err
		}
		for _, fn := range s.Cfg.Fields {
			for _, eb := range s.Cfg.Bounds {
				row := []string{p, fn, fmt.Sprintf("%.0e", eb)}
				var rLevel, rZMesh float64
				for _, sp := range specs {
					stream, err := fieldStream(ck, fn, sp)
					if err != nil {
						return nil, err
					}
					buf, err := codec.Compress(stream, []int{len(stream)}, compress.RelBound(eb))
					if err != nil {
						return nil, err
					}
					r := compress.Ratio(len(stream), buf)
					if sp.layout == core.LevelOrder {
						rLevel = r
					}
					if sp.layout == core.ZMesh && sp.curve == "hilbert" {
						rZMesh = r
					}
					row = append(row, fmt.Sprintf("%.2f", r))
				}
				gain := 100 * (rZMesh - rLevel) / rLevel
				if gain > bestGain {
					bestGain = gain
				}
				row = append(row, fmt.Sprintf("%+.1f", gain))
				t.Rows = append(t.Rows, row)
			}
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("max zMesh(hilbert) gain over level order: %+.1f%%", bestGain))
	return t, nil
}

// RateDistortion (F5) reports bits/value and PSNR across the bound sweep
// for the baseline and zMesh layouts.
func (s *Suite) RateDistortion() (*Table, error) {
	szc, err := compress.Get("sz")
	if err != nil {
		return nil, err
	}
	specs := []layoutSpec{{core.LevelOrder, "morton"}, {core.ZMesh, "hilbert"}}
	t := &Table{
		Title: "F5 — rate–distortion (SZ): bits/value at PSNR, level order vs zMesh",
		Header: []string{"dataset", "field", "rel bound",
			"level bits/val", "level PSNR dB", "zmesh bits/val", "zmesh PSNR dB"},
	}
	for _, p := range s.Cfg.Problems {
		ck, err := s.Checkpoint(p)
		if err != nil {
			return nil, err
		}
		for _, fn := range s.Cfg.Fields {
			for _, eb := range s.Cfg.Bounds {
				row := []string{p, fn, fmt.Sprintf("%.0e", eb)}
				for _, sp := range specs {
					stream, err := fieldStream(ck, fn, sp)
					if err != nil {
						return nil, err
					}
					buf, err := szc.Compress(stream, []int{len(stream)}, compress.RelBound(eb))
					if err != nil {
						return nil, err
					}
					recon, err := szc.Decompress(buf)
					if err != nil {
						return nil, err
					}
					psnr, err := metrics.PSNR(stream, recon)
					if err != nil {
						return nil, err
					}
					row = append(row,
						fmt.Sprintf("%.3f", metrics.BitsPerValue(len(stream), len(buf))),
						fmt.Sprintf("%.1f", psnr))
				}
				t.Rows = append(t.Rows, row)
			}
		}
	}
	return t, nil
}

// ErrorCompliance (T6) verifies the point-wise bound for every codec,
// layout and bound, and that restore is a bit-exact permutation.
func (s *Suite) ErrorCompliance() (*Table, error) {
	t := &Table{
		Title:  "T6 — error-bound compliance (max observed error / bound; must be <= 1)",
		Header: []string{"dataset", "codec", "layout", "rel bound", "max err / bound", "restore exact"},
	}
	specs := []layoutSpec{{core.LevelOrder, "morton"}, {core.ZMesh, "hilbert"}}
	for _, p := range s.Cfg.Problems {
		ck, err := s.Checkpoint(p)
		if err != nil {
			return nil, err
		}
		f, ok := ck.Field(s.Cfg.Fields[0])
		if !ok {
			return nil, fmt.Errorf("experiments: field %q missing", s.Cfg.Fields[0])
		}
		flat := amr.Flatten(amr.LevelArrays(f))
		for _, codecName := range []string{"sz", "zfp"} {
			codec, err := compress.Get(codecName)
			if err != nil {
				return nil, err
			}
			for _, sp := range specs {
				recipe, err := core.BuildRecipe(ck.Mesh, sp.layout, sp.curve)
				if err != nil {
					return nil, err
				}
				ordered, err := recipe.Apply(flat)
				if err != nil {
					return nil, err
				}
				// Restore must be bit-exact (pure permutation).
				back, err := recipe.Restore(ordered)
				if err != nil {
					return nil, err
				}
				exact := true
				for i := range flat {
					if back[i] != flat[i] {
						exact = false
						break
					}
				}
				for _, eb := range s.Cfg.Bounds {
					bound := compress.RelBound(eb)
					buf, err := codec.Compress(ordered, []int{len(ordered)}, bound)
					if err != nil {
						return nil, err
					}
					recon, err := codec.Decompress(buf)
					if err != nil {
						return nil, err
					}
					maxe, err := metrics.MaxAbsError(ordered, recon)
					if err != nil {
						return nil, err
					}
					abs := bound.Absolute(ordered)
					t.Rows = append(t.Rows, []string{
						p, codecName, sp.String(), fmt.Sprintf("%.0e", eb),
						fmt.Sprintf("%.3f", maxe/abs),
						fmt.Sprintf("%v", exact),
					})
				}
			}
		}
	}
	return t, nil
}

// Amortization (F7) measures the recipe-construction overhead relative to
// compression work as the number of quantities grows — the paper's claim
// that tree/recipe cost is amortized across quantities.
func (s *Suite) Amortization() (*Table, error) {
	ck, err := s.Checkpoint(s.Cfg.Problems[0])
	if err != nil {
		return nil, err
	}
	szc, err := compress.Get("sz")
	if err != nil {
		return nil, err
	}
	flat := make([][]float64, 0, len(ck.Fields))
	for _, f := range ck.Fields {
		flat = append(flat, amr.Flatten(amr.LevelArrays(f)))
	}
	t := &Table{
		Title: "F7 — recipe-construction overhead amortization (zMesh/hilbert, SZ)",
		Header: []string{"quantities", "recipe ms", "reorder+compress ms",
			"overhead %", "per-quantity overhead ms"},
	}
	for _, nq := range []int{1, 2, 4, 8, 16} {
		start := time.Now()
		recipe, err := core.BuildRecipe(ck.Mesh, core.ZMesh, "hilbert")
		if err != nil {
			return nil, err
		}
		recipeTime := time.Since(start)
		var compTime time.Duration
		for q := 0; q < nq; q++ {
			data := flat[q%len(flat)]
			start = time.Now()
			ordered, err := recipe.Apply(data)
			if err != nil {
				return nil, err
			}
			if _, err := szc.Compress(ordered, []int{len(ordered)}, compress.RelBound(1e-4)); err != nil {
				return nil, err
			}
			compTime += time.Since(start)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nq),
			fmt.Sprintf("%.2f", recipeTime.Seconds()*1e3),
			fmt.Sprintf("%.2f", compTime.Seconds()*1e3),
			fmt.Sprintf("%.1f", 100*recipeTime.Seconds()/(recipeTime.Seconds()+compTime.Seconds())),
			fmt.Sprintf("%.3f", recipeTime.Seconds()*1e3/float64(nq)),
		})
	}
	t.Notes = append(t.Notes,
		"the recipe is built once per topology; its per-quantity share shrinks as 1/#quantities")
	return t, nil
}

// Throughput (T8) measures end-to-end compression and decompression
// throughput per codec and layout, verifying reconstruction on the way.
func (s *Suite) Throughput() (*Table, error) {
	ck, err := s.Checkpoint(s.Cfg.Problems[0])
	if err != nil {
		return nil, err
	}
	f, ok := ck.Field(s.Cfg.Fields[0])
	if !ok {
		return nil, fmt.Errorf("experiments: field missing")
	}
	flat := amr.Flatten(amr.LevelArrays(f))
	mb := float64(len(flat)*8) / (1 << 20)
	t := &Table{
		Title:  "T8 — end-to-end throughput (single thread)",
		Header: []string{"codec", "layout", "compress MB/s", "decompress MB/s", "ratio"},
	}
	specs := []layoutSpec{{core.LevelOrder, "morton"}, {core.ZMesh, "hilbert"}}
	for _, codecName := range []string{"sz", "zfp"} {
		codec, err := compress.Get(codecName)
		if err != nil {
			return nil, err
		}
		for _, sp := range specs {
			recipe, err := core.BuildRecipe(ck.Mesh, sp.layout, sp.curve)
			if err != nil {
				return nil, err
			}
			const reps = 5
			var encT, decT time.Duration
			var buf []byte
			for r := 0; r < reps; r++ {
				start := time.Now()
				ordered, err := recipe.Apply(flat)
				if err != nil {
					return nil, err
				}
				buf, err = codec.Compress(ordered, []int{len(ordered)}, compress.RelBound(1e-4))
				if err != nil {
					return nil, err
				}
				encT += time.Since(start)
				start = time.Now()
				recon, err := codec.Decompress(buf)
				if err != nil {
					return nil, err
				}
				if _, err := recipe.Restore(recon); err != nil {
					return nil, err
				}
				decT += time.Since(start)
			}
			t.Rows = append(t.Rows, []string{
				codecName, sp.String(),
				fmt.Sprintf("%.1f", mb*reps/encT.Seconds()),
				fmt.Sprintf("%.1f", mb*reps/decT.Seconds()),
				fmt.Sprintf("%.2f", compress.Ratio(len(flat), buf)),
			})
		}
	}
	return t, nil
}

// Ablation (F9) isolates zMesh's design choices: sibling-order curve
// (morton / hilbert / rowmajor) and chaining granularity (cell vs block).
func (s *Suite) Ablation() (*Table, error) {
	szc, err := compress.Get("sz")
	if err != nil {
		return nil, err
	}
	specs := []layoutSpec{
		{core.ZMesh, "rowmajor"},
		{core.ZMesh, "morton"},
		{core.ZMesh, "hilbert"},
		{core.ZMeshBlock, "morton"},
		{core.ZMeshBlock, "hilbert"},
	}
	header := []string{"dataset", "field"}
	for _, sp := range specs {
		header = append(header, sp.String())
	}
	t := &Table{
		Title:  "F9 — design ablation: SZ ratio at rel 1e-3 by sibling curve and chaining granularity",
		Header: header,
	}
	for _, p := range s.Cfg.Problems {
		ck, err := s.Checkpoint(p)
		if err != nil {
			return nil, err
		}
		for _, fn := range s.Cfg.Fields {
			row := []string{p, fn}
			for _, sp := range specs {
				stream, err := fieldStream(ck, fn, sp)
				if err != nil {
					return nil, err
				}
				buf, err := szc.Compress(stream, []int{len(stream)}, compress.RelBound(1e-3))
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.2f", compress.Ratio(len(stream), buf)))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}
