package experiments

import (
	"fmt"

	zmesh "repro"
	"repro/internal/core"
	"repro/internal/sim"
)

// TACComparison (T16) places the zMesh 1-D reordering against the TAC-style
// adaptive 3-D box layout on the shock-dominated datasets, through the full
// public pipeline (real artifacts, container envelope included), and records
// which layout the per-field auto-picker selects. The 2-D problems measure
// TAC's in-plane neighborhoods; the genuine 3-D Sedov solve is where the
// dense boxes gain a third predictive axis and the 1-D walk loses the most
// locality.
func (s *Suite) TACComparison() (*Table, error) {
	const eb = 1e-3
	t := &Table{
		Title:  "T16 — zMesh vs TAC adaptive boxes (rel 1e-3, full artifacts)",
		Header: []string{"dataset", "field", "sz zmesh", "sz tac", "zfp zmesh", "zfp tac", "auto pick (sz)"},
	}
	type job struct {
		name string
		ck   *sim.Checkpoint
	}
	var jobs []job
	for _, p := range s.Cfg.Problems {
		ck, err := s.Checkpoint(p)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job{p, ck})
	}
	// The 3-D hierarchy, scaled exactly like F10 so the two tables describe
	// the same dataset.
	depth := s.Cfg.MaxDepth - 1
	if depth < 2 {
		depth = 2
	}
	res3 := s.Cfg.Resolution / 4
	if res3 < 24 {
		res3 = 24
	}
	ck3, err := sim.GenerateCheckpoint3D("sedov3d", res3, sim.Analytic3DOptions{
		BlockSize: s.Cfg.BlockSize,
		RootDims:  [3]int{2, 2, 2},
		MaxDepth:  depth,
		Threshold: s.Cfg.Threshold,
	})
	if err != nil {
		return nil, err
	}
	jobs = append(jobs, job{"sedov3d", ck3})

	bound := zmesh.RelBound(eb)
	for _, j := range jobs {
		// One encoder per (layout, codec), shared by the job's fields — the
		// recipe amortization the library is built around.
		encs := map[[2]string]*zmesh.Encoder{}
		for _, codec := range []string{"sz", "zfp"} {
			for _, layout := range []core.Layout{core.ZMesh, core.TAC3D} {
				enc, err := zmesh.NewEncoder(j.ck.Mesh, zmesh.Options{Layout: layout, Curve: "hilbert", Codec: codec})
				if err != nil {
					return nil, err
				}
				encs[[2]string{codec, layout.String()}] = enc
			}
		}
		auto, err := zmesh.NewEncoder(j.ck.Mesh, zmesh.Options{Layout: core.AutoLayout, Curve: "hilbert", Codec: "sz"})
		if err != nil {
			return nil, err
		}
		fields := s.Cfg.Fields
		if j.name == "sedov3d" {
			fields = nil
			for _, f := range j.ck.Fields {
				fields = append(fields, f.Name)
			}
		}
		for _, fn := range fields {
			f, ok := j.ck.Field(fn)
			if !ok {
				return nil, fmt.Errorf("experiments: field %q missing from %s", fn, j.name)
			}
			row := []string{j.name, fn}
			for _, codec := range []string{"sz", "zfp"} {
				for _, layout := range []core.Layout{core.ZMesh, core.TAC3D} {
					c, err := encs[[2]string{codec, layout.String()}].CompressField(f, bound)
					if err != nil {
						return nil, err
					}
					row = append(row, fmt.Sprintf("%.2f", c.Ratio()))
				}
			}
			ca, err := auto.CompressField(f, bound)
			if err != nil {
				return nil, err
			}
			row = append(row, ca.Layout.String())
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"tac compresses each level as compact padded 2-D/3-D boxes with the dims-aware codec; "+
			"ratios are full artifacts (box table + container envelope included)",
		"auto pick = layout the deterministic per-field picker (seed 0) records in the artifact")
	return t, nil
}
