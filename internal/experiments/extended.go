package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/amr"
	"repro/internal/compress"
	"repro/internal/compress/chunked"
	"repro/internal/compress/sz"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// ThreeD (F10) extends the evaluation to a 3-D hierarchy: smoothness and
// SZ/ZFP ratios for the level-order baseline vs zMesh on a genuine 3-D
// Sedov blast solve projected onto a 3-D AMR hierarchy. Demonstrates that
// the chained-tree reordering and the 3-D Morton/Hilbert curves generalize
// beyond the paper's 2-D datasets.
func (s *Suite) ThreeD() (*Table, error) {
	depth := s.Cfg.MaxDepth - 1
	if depth < 2 {
		depth = 2
	}
	res3 := s.Cfg.Resolution / 4
	if res3 < 24 {
		res3 = 24
	}
	ck, err := sim.GenerateCheckpoint3D("sedov3d", res3, sim.Analytic3DOptions{
		BlockSize: s.Cfg.BlockSize,
		RootDims:  [3]int{2, 2, 2},
		MaxDepth:  depth,
		Threshold: s.Cfg.Threshold,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "F10 — 3-D generalization (blast3d): smoothness and ratios, level vs zMesh",
		Header: []string{"field", "layout", "smooth Δ%", "sz ratio", "zfp ratio"},
	}
	specs := []layoutSpec{
		{core.LevelOrder, "morton"},
		{core.ZMesh, "morton"},
		{core.ZMesh, "hilbert"},
	}
	szc, err := compress.Get("sz")
	if err != nil {
		return nil, err
	}
	zfpc, err := compress.Get("zfp")
	if err != nil {
		return nil, err
	}
	for _, f := range ck.Fields {
		base, err := fieldStream(ck, f.Name, specs[0])
		if err != nil {
			return nil, err
		}
		for _, sp := range specs {
			stream, err := fieldStream(ck, f.Name, sp)
			if err != nil {
				return nil, err
			}
			szBuf, err := szc.Compress(stream, []int{len(stream)}, compress.RelBound(1e-3))
			if err != nil {
				return nil, err
			}
			zfpBuf, err := zfpc.Compress(stream, []int{len(stream)}, compress.RelBound(1e-3))
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				f.Name, sp.String(),
				fmt.Sprintf("%+.1f", metrics.SmoothnessImprovement(base, stream)),
				fmt.Sprintf("%.2f", compress.Ratio(len(stream), szBuf)),
				fmt.Sprintf("%.2f", compress.Ratio(len(stream), zfpBuf)),
			})
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"3-D hierarchy: %d levels, %d blocks, %d values/field",
		ck.Mesh.MaxLevel()+1, ck.Mesh.NumBlocks(), ck.Mesh.NumBlocks()*ck.Mesh.CellsPerBlock()))
	return t, nil
}

// CodecComparison (T11) places the codecs side by side on every dataset at
// one representative bound, including the lossless floor — the
// cross-compressor view papers in this area lead with.
func (s *Suite) CodecComparison() (*Table, error) {
	const eb = 1e-3
	codecNames := []string{"gzip", "zfp", "mgl", "sz"}
	header := []string{"dataset", "field"}
	for _, cn := range codecNames {
		header = append(header, cn+" (level)", cn+" (zmesh)")
	}
	t := &Table{
		Title:  fmt.Sprintf("T11 — codec comparison at rel %g: level order vs zMesh/hilbert", eb),
		Header: header,
	}
	specs := []layoutSpec{{core.LevelOrder, "morton"}, {core.ZMesh, "hilbert"}}
	for _, p := range s.Cfg.Problems {
		ck, err := s.Checkpoint(p)
		if err != nil {
			return nil, err
		}
		for _, fn := range s.Cfg.Fields {
			row := []string{p, fn}
			for _, cn := range codecNames {
				codec, err := compress.Get(cn)
				if err != nil {
					return nil, err
				}
				for _, sp := range specs {
					stream, err := fieldStream(ck, fn, sp)
					if err != nil {
						return nil, err
					}
					buf, err := codec.Compress(stream, []int{len(stream)}, compress.RelBound(eb))
					if err != nil {
						return nil, err
					}
					row = append(row, fmt.Sprintf("%.2f", compress.Ratio(len(stream), buf)))
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"gzip is lossless (bound ignored): the floor error-bounded codecs must clear; "+
			"reordering cannot help it much since it sees raw IEEE bytes")
	return t, nil
}

// UniformGrid (T12) evaluates the codecs' native multi-dimensional modes on
// the raw uniform solver output (no AMR, no reordering): SZ as 1-D stream,
// SZ 2-D Lorenzo (regression disabled), SZ 2-D with the SZ-2-style blocked
// regression, ZFP 2-D and the multilevel codec 2-D. This isolates the codec
// machinery itself: dimensionality and block regression must both help on
// genuinely 2-D data.
func (s *Suite) UniformGrid() (*Table, error) {
	t := &Table{
		Title: "T12 — uniform-grid codec modes at rel 1e-4 (no AMR): dimensionality and regression",
		Header: []string{"dataset", "field", "sz 1-D", "sz 2-D lorenzo",
			"sz 2-D +regression", "zfp 2-D", "mgl 2-D"},
	}
	for _, p := range s.Cfg.Problems {
		prob, err := sim.Lookup(p)
		if err != nil {
			return nil, err
		}
		g, err := sim.Run(prob, s.Cfg.Resolution, s.Cfg.Resolution, 1)
		if err != nil {
			return nil, err
		}
		for _, fn := range s.Cfg.Fields {
			nx, ny := g.Nx, g.Ny
			data := make([]float64, nx*ny)
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					data[j*nx+i] = g.Quantity(fn, i, j)
				}
			}
			bound := compress.RelBound(1e-4)
			row := []string{p, fn}
			ratio := func(c compress.Compressor, dims []int) (string, error) {
				buf, err := c.Compress(data, dims, bound)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%.2f", compress.Ratio(len(data), buf)), nil
			}
			sz1, err := compress.Get("sz")
			if err != nil {
				return nil, err
			}
			cell, err := ratio(sz1, []int{nx * ny})
			if err != nil {
				return nil, err
			}
			row = append(row, cell)
			noReg := &sz.Compressor{Intervals: sz.DefaultIntervals, DisableRegression: true}
			if cell, err = ratio(noReg, []int{ny, nx}); err != nil {
				return nil, err
			}
			row = append(row, cell)
			if cell, err = ratio(sz.New(), []int{ny, nx}); err != nil {
				return nil, err
			}
			row = append(row, cell)
			zfpc, err := compress.Get("zfp")
			if err != nil {
				return nil, err
			}
			if cell, err = ratio(zfpc, []int{ny, nx}); err != nil {
				return nil, err
			}
			row = append(row, cell)
			mglc, err := compress.Get("mgl")
			if err != nil {
				return nil, err
			}
			if cell, err = ratio(mglc, []int{ny, nx}); err != nil {
				return nil, err
			}
			row = append(row, cell)
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// ParallelScaling (T13) measures chunk-parallel compression throughput of
// the zMesh stream as worker count grows, and the ratio cost of chunking —
// the trade-off ZFP's OpenMP mode and threaded SZ variants make.
func (s *Suite) ParallelScaling() (*Table, error) {
	ck, err := s.Checkpoint(s.Cfg.Problems[0])
	if err != nil {
		return nil, err
	}
	stream, err := fieldStream(ck, s.Cfg.Fields[0], layoutSpec{core.ZMesh, "hilbert"})
	if err != nil {
		return nil, err
	}
	// Replicate the stream to give the pool real work.
	for len(stream) < 1<<21 {
		stream = append(stream, stream...)
	}
	bound := compress.RelBound(1e-4)
	mb := float64(len(stream)*8) / (1 << 20)

	serial, err := compress.Get("sz")
	if err != nil {
		return nil, err
	}
	start := time.Now()
	serialBuf, err := serial.Compress(stream, []int{len(stream)}, bound)
	if err != nil {
		return nil, err
	}
	serialSec := time.Since(start).Seconds()
	serialRatio := compress.Ratio(len(stream), serialBuf)

	t := &Table{
		Title:  "T13 — chunk-parallel SZ compression scaling (zMesh stream)",
		Header: []string{"workers", "MB/s", "speedup", "ratio", "ratio vs serial %"},
		Notes: []string{
			fmt.Sprintf("serial (unchunked): %.1f MB/s, ratio %.2f", mb/serialSec, serialRatio),
			fmt.Sprintf("GOMAXPROCS=%d: speedup is capped by available cores; "+
				"on one core this table measures pure chunking overhead",
				runtime.GOMAXPROCS(0)),
		},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		c := &chunked.Compressor{Base: sz.New(), Workers: workers}
		start := time.Now()
		buf, err := c.Compress(stream, []int{len(stream)}, bound)
		if err != nil {
			return nil, err
		}
		sec := time.Since(start).Seconds()
		ratio := compress.Ratio(len(stream), buf)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", workers),
			fmt.Sprintf("%.1f", mb/sec),
			fmt.Sprintf("%.2fx", serialSec/sec),
			fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%+.1f", 100*(ratio-serialRatio)/serialRatio),
		})
	}
	return t, nil
}

// PaddedLevels (F14) evaluates the alternative AMR compression strategy
// zMesh argues against: pad each refinement level to a dense 2-D array
// over its bounding box (zeros where no blocks exist) and compress with the
// codecs' native 2-D modes. Padding restores dimensionality but wastes
// effort on holes and still separates levels; the comparison quantifies
// that trade-off against 1-D level-order and zMesh.
func (s *Suite) PaddedLevels() (*Table, error) {
	const eb = 1e-3
	t := &Table{
		Title: "F14 — padded per-level 2-D compression vs 1-D layouts at rel 1e-3",
		Header: []string{"dataset", "field", "sz 1-D level", "sz 2-D padded",
			"sz zmesh", "zfp 1-D level", "zfp 2-D padded"},
	}
	szc, err := compress.Get("sz")
	if err != nil {
		return nil, err
	}
	zfpc, err := compress.Get("zfp")
	if err != nil {
		return nil, err
	}
	for _, p := range s.Cfg.Problems {
		ck, err := s.Checkpoint(p)
		if err != nil {
			return nil, err
		}
		for _, fn := range s.Cfg.Fields {
			f, ok := ck.Field(fn)
			if !ok {
				return nil, fmt.Errorf("experiments: field %q missing", fn)
			}
			flat := fieldFlat(f)
			abs := compress.AbsBound(compress.RelBound(eb).Absolute(flat))
			row := []string{p, fn}
			// 1-D level order.
			buf, err := szc.Compress(flat, []int{len(flat)}, abs)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", compress.Ratio(len(flat), buf)))
			// 2-D padded per level.
			szPadded, err := paddedLevelBytes(ck, f, szc, abs)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", float64(len(flat)*8)/float64(szPadded)))
			// zMesh 1-D.
			stream, err := fieldStream(ck, fn, layoutSpec{core.ZMesh, "hilbert"})
			if err != nil {
				return nil, err
			}
			buf, err = szc.Compress(stream, []int{len(stream)}, abs)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", compress.Ratio(len(stream), buf)))
			// ZFP 1-D level + 2-D padded.
			buf, err = zfpc.Compress(flat, []int{len(flat)}, abs)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", compress.Ratio(len(flat), buf)))
			zfpPadded, err := paddedLevelBytes(ck, f, zfpc, abs)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", float64(len(flat)*8)/float64(zfpPadded)))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"padded ratios divide the ACTUAL data bytes by the compressed size of the padded arrays; "+
			"holes cost little after entropy coding but still dilute prediction contexts")
	return t, nil
}

// fieldFlat serializes a field level-by-level.
func fieldFlat(f *amr.Field) []float64 {
	return amr.Flatten(amr.LevelArrays(f))
}

// paddedLevelBytes compresses each level as a dense 2-D array over the
// level's block bounding box (zeros in holes) and returns total bytes.
func paddedLevelBytes(ck *sim.Checkpoint, f *amr.Field, codec compress.Compressor, bound compress.Bound) (int, error) {
	m := ck.Mesh
	bs := m.BlockSize()
	total := 0
	for level := 0; level <= m.MaxLevel(); level++ {
		ids := m.SortedLevel(level)
		if len(ids) == 0 {
			continue
		}
		minC := [2]int{1 << 30, 1 << 30}
		maxC := [2]int{-1, -1}
		for _, id := range ids {
			c := m.Block(id).Coord
			for d := 0; d < 2; d++ {
				if c[d] < minC[d] {
					minC[d] = c[d]
				}
				if c[d] > maxC[d] {
					maxC[d] = c[d]
				}
			}
		}
		nx := (maxC[0] - minC[0] + 1) * bs
		ny := (maxC[1] - minC[1] + 1) * bs
		dense := make([]float64, nx*ny)
		for _, id := range ids {
			c := m.Block(id).Coord
			ox := (c[0] - minC[0]) * bs
			oy := (c[1] - minC[1]) * bs
			data := f.Data(id)
			for j := 0; j < bs; j++ {
				for i := 0; i < bs; i++ {
					dense[(oy+j)*nx+(ox+i)] = data[j*bs+i]
				}
			}
		}
		buf, err := codec.Compress(dense, []int{ny, nx}, bound)
		if err != nil {
			return 0, err
		}
		total += len(buf)
	}
	return total, nil
}

// Temporal (T15) compares spatial re-encoding of every snapshot against
// delta encoding over a time series produced by the adaptive solver (the
// public API's TemporalEncoder implements the same scheme; this experiment
// drives the underlying primitives directly). Deltas are taken against the
// previous snapshot's reconstruction, so the per-snapshot bound never
// accumulates.
func (s *Suite) Temporal() (*Table, error) {
	mesh, u, err := amr.BuildAdaptive(amr.BuildOptions{
		Dims: 2, BlockSize: s.Cfg.BlockSize, RootDims: [3]int{2, 2, 1},
		MaxDepth: 3, Threshold: 0.3,
	}, func(x, y, z float64) float64 {
		dx, dy := x-0.35, y-0.35
		return math.Exp(-(dx*dx + dy*dy) / (2 * 0.05 * 0.05))
	})
	if err != nil {
		return nil, err
	}
	solver, err := sim.NewAdvectionDiffusion(mesh, u, 1, 1, 1e-4)
	if err != nil {
		return nil, err
	}
	szc, err := compress.Get("sz")
	if err != nil {
		return nil, err
	}
	const eb = 1e-4
	bound := compress.AbsBound(eb)
	t := &Table{
		Title:  "T15 — temporal delta encoding vs spatial re-encoding (SZ, abs 1e-4)",
		Header: []string{"snapshot", "frame", "spatial bytes", "temporal bytes", "saving %", "max err ok"},
	}
	var prevStructure []byte
	var prevRecon []float64
	var recipe *core.Recipe
	const snapshots = 8
	for snap := 0; snap < snapshots; snap++ {
		structure := mesh.Structure()
		key := prevStructure == nil || !bytesEqual(structure, prevStructure)
		if key {
			recipe, err = core.BuildRecipe(mesh, core.ZMesh, "hilbert")
			if err != nil {
				return nil, err
			}
			prevStructure = structure
		}
		stream, err := recipe.Apply(amr.Flatten(amr.LevelArrays(u)))
		if err != nil {
			return nil, err
		}
		spatialBuf, err := szc.Compress(stream, []int{len(stream)}, bound)
		if err != nil {
			return nil, err
		}
		var temporalBuf []byte
		frame := "key"
		if key {
			temporalBuf = spatialBuf
			prevRecon, err = szc.Decompress(spatialBuf)
			if err != nil {
				return nil, err
			}
		} else {
			frame = "delta"
			delta := make([]float64, len(stream))
			for i := range delta {
				delta[i] = stream[i] - prevRecon[i]
			}
			temporalBuf, err = szc.Compress(delta, []int{len(delta)}, bound)
			if err != nil {
				return nil, err
			}
			dRecon, err := szc.Decompress(temporalBuf)
			if err != nil {
				return nil, err
			}
			for i := range prevRecon {
				prevRecon[i] += dRecon[i]
			}
		}
		maxe, err := metrics.MaxAbsError(stream, prevRecon)
		if err != nil {
			return nil, err
		}
		saving := 100 * (1 - float64(len(temporalBuf))/float64(len(spatialBuf)))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", snap), frame,
			fmt.Sprintf("%d", len(spatialBuf)),
			fmt.Sprintf("%d", len(temporalBuf)),
			fmt.Sprintf("%+.1f", saving),
			fmt.Sprintf("%v", maxe <= eb),
		})
		if snap < snapshots-1 {
			if err := solver.Run(solver.Time+0.02, 4, 0.3, 3); err != nil {
				return nil, err
			}
		}
	}
	t.Notes = append(t.Notes,
		"regrids force keyframes (saving 0%); between regrids delta frames shrink with temporal coherence")
	return t, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// locality diagnostics used by the F2 discussion: mean geometric distance
// between stream-consecutive samples, per layout.
func meanStreamJump(ck *sim.Checkpoint, spec layoutSpec) (float64, error) {
	m := ck.Mesh
	recipe, err := core.BuildRecipe(m, spec.layout, spec.curve)
	if err != nil {
		return 0, err
	}
	// Physical coordinates per level-order position.
	coords := make([][3]float64, 0, recipe.Len())
	bs := m.BlockSize()
	kmax := 1
	if m.Dims() == 3 {
		kmax = bs
	}
	for level := 0; level <= m.MaxLevel(); level++ {
		for _, id := range m.SortedLevel(level) {
			for k := 0; k < kmax; k++ {
				for j := 0; j < bs; j++ {
					for i := 0; i < bs; i++ {
						coords = append(coords, m.CellCenter(id, i, j, k))
					}
				}
			}
		}
	}
	perm := recipe.Perm()
	var total float64
	for t := 1; t < len(perm); t++ {
		a, b := coords[perm[t-1]], coords[perm[t]]
		dx, dy, dz := a[0]-b[0], a[1]-b[1], a[2]-b[2]
		total += dx*dx + dy*dy + dz*dz
	}
	return total / float64(len(perm)-1), nil
}

// Locality is a diagnostic table (not a paper artefact): mean squared
// geometric distance between consecutive stream samples per layout, the
// mechanism behind the F2 smoothness numbers.
func (s *Suite) Locality() (*Table, error) {
	t := &Table{
		Title:  "diagnostic — mean squared geometric jump between consecutive stream samples",
		Header: []string{"dataset", "level", "sfc-level/hilbert", "zmesh/hilbert"},
	}
	specs := []layoutSpec{
		{core.LevelOrder, "morton"},
		{core.SFCWithinLevel, "hilbert"},
		{core.ZMesh, "hilbert"},
	}
	for _, p := range s.Cfg.Problems {
		ck, err := s.Checkpoint(p)
		if err != nil {
			return nil, err
		}
		row := []string{p}
		for _, sp := range specs {
			j, err := meanStreamJump(ck, sp)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2e", j))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
