package experiments

import (
	"strconv"
	"testing"

	"repro/internal/sim"
)

func TestThreeDExperiment(t *testing.T) {
	s := quickSuite()
	tbl, err := s.ThreeD()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 15 { // 5 quantities x 3 layouts
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// zMesh rows must show positive smoothness improvement on the 3-D
	// spherical front for the dens field.
	for _, row := range tbl.Rows {
		if row[0] == "dens" && row[1] == "zmesh/hilbert" {
			var imp float64
			if _, err := fmtSscan(row[2], &imp); err != nil {
				t.Fatal(err)
			}
			if imp <= 0 {
				t.Fatalf("3-D zmesh smoothness improvement %v not positive", imp)
			}
		}
	}
}

func TestCodecComparison(t *testing.T) {
	s := quickSuite()
	tbl, err := s.CodecComparison()
	if err != nil {
		t.Fatal(err)
	}
	// Columns: dataset, field, then (level, zmesh) pairs for gzip, zfp,
	// mgl, sz. SZ must clear the lossless floor comfortably at the 1e-3
	// bound; ZFP's fixed-rate-ish coding can dip near it on tiny,
	// repetition-heavy checkpoints, so only sanity-check it is positive.
	for _, row := range tbl.Rows {
		gz, _ := strconv.ParseFloat(row[2], 64)
		zfp, _ := strconv.ParseFloat(row[4], 64)
		mgl, _ := strconv.ParseFloat(row[6], 64)
		sz, _ := strconv.ParseFloat(row[8], 64)
		if sz <= gz {
			t.Fatalf("SZ below lossless floor: %v", row)
		}
		if zfp <= 1 || gz <= 1 || mgl <= 1 {
			t.Fatalf("degenerate ratios: %v", row)
		}
	}
}

func TestLocalityDiagnostic(t *testing.T) {
	s := quickSuite()
	tbl, err := s.Locality()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		lvl, _ := strconv.ParseFloat(row[1], 64)
		zm, _ := strconv.ParseFloat(row[3], 64)
		if zm >= lvl {
			t.Fatalf("zMesh mean jump %v not below level order %v", zm, lvl)
		}
	}
}

func TestUniformGridExperiment(t *testing.T) {
	s := quickSuite()
	tbl, err := s.UniformGrid()
	if err != nil {
		t.Fatal(err)
	}
	// Columns: dataset, field, sz1d, sz2d-lorenzo, sz2d+reg, zfp2d, mgl2d.
	for _, row := range tbl.Rows {
		sz2, _ := strconv.ParseFloat(row[3], 64)
		sz2r, _ := strconv.ParseFloat(row[4], 64)
		if sz2r < sz2*0.95 {
			t.Fatalf("regression materially hurts 2-D SZ: %v", row)
		}
	}
}

func TestGenerate3DStructure(t *testing.T) {
	ck, err := sim.Generate3D(sim.Analytic3DOptions{
		BlockSize: 4, RootDims: [3]int{2, 2, 2}, MaxDepth: 2, Threshold: 0.35,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ck.Mesh.Dims() != 3 {
		t.Fatalf("dims %d", ck.Mesh.Dims())
	}
	if ck.Mesh.MaxLevel() < 1 {
		t.Fatal("3-D front did not refine")
	}
	if len(ck.Fields) != 3 {
		t.Fatalf("%d fields", len(ck.Fields))
	}
}
