package experiments

import "testing"

func TestRunRecipeBench(t *testing.T) {
	report, err := RunRecipeBench([]int{1}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if report.Workers != 2 {
		t.Fatalf("workers = %d, want 2", report.Workers)
	}
	if len(report.Points) != 12 { // 4 layouts x 3 curves x 1 depth
		t.Fatalf("%d points, want 12", len(report.Points))
	}
	for _, p := range report.Points {
		if p.Cells <= 0 || p.SerialNs <= 0 || p.ParallelNs <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
		if p.Layout == "" || p.Curve == "" {
			t.Fatalf("unlabelled point: %+v", p)
		}
	}
}
