package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/amr"
	"repro/internal/core"
)

// RecipeBenchPoint is one cell of the recipe-construction sweep: the serial
// reference builder vs the parallel span builder on the same mesh.
type RecipeBenchPoint struct {
	Layout     string  `json:"layout"`
	Curve      string  `json:"curve"`
	Depth      int     `json:"depth"`
	Blocks     int     `json:"blocks"`
	Cells      int     `json:"cells"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
}

// RecipeBenchReport is the BENCH_recipe.json artefact emitted by
// `zmesh-bench -recipebench`: the recipe-construction trajectory over
// layout × curve × depth, with the worker count it ran at.
type RecipeBenchReport struct {
	GOMAXPROCS int                `json:"gomaxprocs"`
	Workers    int                `json:"workers"`
	Points     []RecipeBenchPoint `json:"points"`
}

// ringFrontMesh refines along a circular front crossing many root blocks —
// the footprint a shock-driven regrid produces, and the workload the
// parallel builder is sized for (many chained trees of uneven depth).
func ringFrontMesh(depth int) (*amr.Mesh, error) {
	rd := [3]int{4, 4, 1}
	m, err := amr.NewMesh(2, 8, rd)
	if err != nil {
		return nil, err
	}
	for d := 0; d < depth; d++ {
		for _, id := range m.Leaves() {
			blk := m.Block(id)
			if blk.Level != d {
				continue
			}
			diag, r := 0.0, 0.0
			for k := 0; k < 2; k++ {
				ext := 1.0 / float64(rd[k]<<uint(blk.Level))
				c := (float64(blk.Coord[k])+0.5)*ext - 0.5
				diag += ext * ext / 4
				r += c * c
			}
			if math.Abs(math.Sqrt(r)-0.35) < math.Sqrt(diag) {
				if err := m.Refine(id); err != nil {
					return nil, err
				}
			}
		}
	}
	return m, nil
}

func bestOf(reps int, run func() error) (int64, error) {
	best := int64(math.MaxInt64)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := run(); err != nil {
			return 0, err
		}
		if ns := time.Since(start).Nanoseconds(); ns < best {
			best = ns
		}
	}
	return best, nil
}

// RunRecipeBench times BuildRecipeSerial against BuildRecipeParallel over
// layout × curve × depth on ring-front meshes. Zero workers means
// GOMAXPROCS; reps is the best-of repetition count (min 1).
func RunRecipeBench(depths []int, workers, reps int) (*RecipeBenchReport, error) {
	if len(depths) == 0 {
		depths = []int{2, 3, 4, 5}
	}
	if reps < 1 {
		reps = 1
	}
	effWorkers := workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	report := &RecipeBenchReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: effWorkers}
	layouts := []core.Layout{core.LevelOrder, core.SFCWithinLevel, core.ZMesh, core.ZMeshBlock}
	curves := []string{"hilbert", "morton", "rowmajor"}
	for _, depth := range depths {
		m, err := ringFrontMesh(depth)
		if err != nil {
			return nil, fmt.Errorf("recipebench: depth %d: %w", depth, err)
		}
		for _, layout := range layouts {
			for _, curve := range curves {
				serial, err := bestOf(reps, func() error {
					_, err := core.BuildRecipeSerial(m, layout, curve)
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("recipebench: serial %v/%s depth %d: %w", layout, curve, depth, err)
				}
				par, err := bestOf(reps, func() error {
					_, err := core.BuildRecipeParallel(m, layout, curve, workers)
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("recipebench: parallel %v/%s depth %d: %w", layout, curve, depth, err)
				}
				speedup := 0.0
				if par > 0 {
					speedup = float64(serial) / float64(par)
				}
				report.Points = append(report.Points, RecipeBenchPoint{
					Layout: layout.String(), Curve: curve, Depth: depth,
					Blocks: m.NumBlocks(), Cells: m.NumBlocks() * m.CellsPerBlock(),
					SerialNs: serial, ParallelNs: par, Speedup: speedup,
				})
			}
		}
	}
	return report, nil
}

// RingFrontMesh exposes the ring-front regrid workload to sibling packages
// (the internal/report CI gate measures recipe construction on it).
func RingFrontMesh(depth int) (*amr.Mesh, error) { return ringFrontMesh(depth) }
