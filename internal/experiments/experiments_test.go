package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickSuite() *Suite { return NewSuite(QuickConfig()) }

func TestAllExperimentsRun(t *testing.T) {
	s := quickSuite()
	for _, id := range ExperimentIDs() {
		tbl, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s: no rows", id)
		}
		out := tbl.String()
		if !strings.Contains(out, tbl.Title) {
			t.Fatalf("%s: render missing title", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := quickSuite().Run("X99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestCheckpointCaching(t *testing.T) {
	s := quickSuite()
	a, err := s.Checkpoint("sedov")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Checkpoint("sedov")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("checkpoint not cached")
	}
}

func TestErrorComplianceHolds(t *testing.T) {
	s := quickSuite()
	tbl, err := s.ErrorCompliance()
	if err != nil {
		t.Fatal(err)
	}
	// Columns: dataset, codec, layout, bound, maxerr/bound, restore exact.
	for _, row := range tbl.Rows {
		var ratio float64
		if _, err := fmtSscan(row[4], &ratio); err != nil {
			t.Fatalf("unparsable ratio %q", row[4])
		}
		if ratio > 1.0 {
			t.Fatalf("bound violated: %v", row)
		}
		if row[5] != "true" {
			t.Fatalf("restore not exact: %v", row)
		}
	}
}

func TestSmoothnessTablePositiveForZMesh(t *testing.T) {
	// On the quick (sedov) config, zMesh/hilbert must improve smoothness.
	s := quickSuite()
	tbl, err := s.Smoothness()
	if err != nil {
		t.Fatal(err)
	}
	col := -1
	for i, h := range tbl.Header {
		if strings.HasPrefix(h, "zmesh/hilbert") {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("zmesh/hilbert column missing: %v", tbl.Header)
	}
	for _, row := range tbl.Rows {
		var imp float64
		if _, err := fmtSscan(row[col], &imp); err != nil {
			t.Fatalf("unparsable improvement %q", row[col])
		}
		if imp <= 0 {
			t.Fatalf("no smoothness improvement: %v", row)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"wide-cell-content", "x"}},
		Notes:  []string{"a note"},
	}
	out := tbl.String()
	for _, want := range []string{"demo", "long-header", "wide-cell-content", "a note", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// fmtSscan parses a float that may carry a leading sign.
func fmtSscan(s string, v *float64) (int, error) {
	f, err := strconv.ParseFloat(strings.TrimPrefix(s, "+"), 64)
	if err != nil {
		return 0, err
	}
	*v = f
	return 1, nil
}
