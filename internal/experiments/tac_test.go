package experiments

import (
	"strconv"
	"testing"
)

func TestTACComparison(t *testing.T) {
	s := quickSuite()
	tbl, err := s.TACComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
	seen3d := false
	for _, row := range tbl.Rows {
		if len(row) != 7 {
			t.Fatalf("row width %d, want 7: %v", len(row), row)
		}
		for _, cell := range row[2:6] {
			r, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("non-numeric ratio %q in %v", cell, row)
			}
			if r <= 0 {
				t.Fatalf("degenerate ratio in %v", row)
			}
		}
		if row[6] == "auto" {
			t.Fatalf("auto column records the pseudo-layout, not a winner: %v", row)
		}
		if row[0] == "sedov3d" {
			seen3d = true
		}
	}
	if !seen3d {
		t.Fatal("no sedov3d rows")
	}
}
