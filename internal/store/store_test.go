package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestObjectRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("temporal frame bytes")
	id, created, err := s.PutObject(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first put reported created=false")
	}
	want := sha256.Sum256(payload)
	if id != hex.EncodeToString(want[:]) {
		t.Fatalf("id = %s, want content hash", id)
	}
	got, err := s.GetObject(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestObjectDedup(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id1, created1, err := s.PutObject([]byte("same bytes"))
	if err != nil {
		t.Fatal(err)
	}
	id2, created2, err := s.PutObject([]byte("same bytes"))
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("ids differ for identical content: %s vs %s", id1, id2)
	}
	if !created1 || created2 {
		t.Fatalf("created flags = %v, %v; want true, false", created1, created2)
	}
}

func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	oid, _, err := s.PutObject([]byte("frame"))
	if err != nil {
		t.Fatal(err)
	}
	mid, err := s.PutManifest([]byte("manifest"))
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a daemon restart: a fresh Store over the same root must serve
	// both artifacts and list the checkpoint.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b, err := s2.GetObject(oid); err != nil || string(b) != "frame" {
		t.Fatalf("GetObject after reopen = %q, %v", b, err)
	}
	if b, err := s2.GetManifest(mid); err != nil || string(b) != "manifest" {
		t.Fatalf("GetManifest after reopen = %q, %v", b, err)
	}
	ids, err := s2.ListCheckpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != mid {
		t.Fatalf("ListCheckpoints = %v, want [%s]", ids, mid)
	}
}

func TestOpenClearsTmp(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "tmp", "put-orphan")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan temp file survived reopen: %v", err)
	}
}

func TestBadIDRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{
		"",
		"short",
		"../../../../etc/passwd",
		strings.Repeat("Z", 64),           // not hex
		strings.Repeat("a", 63),           // wrong length
		strings.Repeat("A", 64),           // uppercase hex
		"..%2f" + strings.Repeat("a", 59), // traversal attempt
		strings.Repeat("a", 31) + "/" + strings.Repeat("a", 32), // embedded separator
	} {
		if _, err := s.GetObject(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("GetObject(%q) = %v, want ErrNotFound", id, err)
		}
		if _, err := s.GetManifest(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("GetManifest(%q) = %v, want ErrNotFound", id, err)
		}
	}
}

func TestMissingArtifact(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := strings.Repeat("ab", 32)
	if _, err := s.GetObject(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetObject = %v, want ErrNotFound", err)
	}
	if _, err := s.GetManifest(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetManifest = %v, want ErrNotFound", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := s.PutObject([]byte("pristine"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "objects", id[:2], id)
	if err := os.WriteFile(path, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetObject(id); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("GetObject on tampered bytes = %v, want ErrCorrupt", err)
	}

	mid, err := s.PutManifest([]byte("sealed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "checkpoints", mid), []byte("bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetManifest(mid); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("GetManifest on tampered bytes = %v, want ErrCorrupt", err)
	}
}

func TestListIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "checkpoints", "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err := s.ListCheckpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("ListCheckpoints = %v, want empty", ids)
	}
}
