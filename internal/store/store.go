// Package store is zmeshd's content-addressed artifact store: the on-disk
// persistence layer for sealed temporal checkpoints.
//
// Every artifact — temporal frame objects and checkpoint manifests alike —
// is addressed by the hex SHA-256 of its bytes, so identical frames dedup
// for free and a read can always verify what the disk handed back. Writes
// go through a temp file in the store's own tmp directory, are fsynced, and
// are renamed into place, so a crash mid-write leaves garbage in tmp/ but
// never a truncated object under its final name. Layout under the root:
//
//	objects/<id[:2]>/<id>   frame objects, fanned out by the first id byte
//	checkpoints/<id>        sealed checkpoint manifests
//	tmp/                    in-flight writes (cleared on Open)
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ErrNotFound reports a content address with no artifact behind it.
var ErrNotFound = errors.New("store: artifact not found")

// ErrCorrupt reports an artifact whose bytes no longer hash to its address.
var ErrCorrupt = errors.New("store: artifact corrupt (content hash mismatch)")

// Store is a content-addressed artifact store rooted at one directory. It is
// safe for concurrent use: writes are atomic renames keyed by content, so
// two writers racing on the same bytes converge on the same object.
type Store struct {
	root string
}

// Open opens (creating if needed) the store rooted at dir and clears any
// in-flight temp files left behind by a crash.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"objects", "checkpoints", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	// Orphaned temp files are garbage by construction: anything that mattered
	// was renamed out before its write returned.
	tmps, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	for _, e := range tmps {
		os.Remove(filepath.Join(dir, "tmp", e.Name()))
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// validID reports whether id is a well-formed content address (64 lowercase
// hex characters). Everything else — including path separators and dots —
// is rejected before touching the filesystem.
func validID(id string) bool {
	if len(id) != 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) objectPath(id string) string {
	return filepath.Join(s.root, "objects", id[:2], id)
}

func (s *Store) checkpointPath(id string) string {
	return filepath.Join(s.root, "checkpoints", id)
}

// writeAtomic persists b at path via temp-write, fsync, rename.
func (s *Store) writeAtomic(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Join(s.root, "tmp"), "put-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// PutObject persists b as a frame object and returns its content address.
// created is false when an object with the same content already existed
// (the write is skipped — content addressing makes it byte-identical).
func (s *Store) PutObject(b []byte) (id string, created bool, err error) {
	sum := sha256.Sum256(b)
	id = hex.EncodeToString(sum[:])
	path := s.objectPath(id)
	if _, err := os.Stat(path); err == nil {
		return id, false, nil
	}
	if err := s.writeAtomic(path, b); err != nil {
		return "", false, fmt.Errorf("store: put object: %w", err)
	}
	return id, true, nil
}

// GetObject returns the bytes of the frame object at id, re-hashing them to
// catch on-disk corruption.
func (s *Store) GetObject(id string) ([]byte, error) {
	if !validID(id) {
		return nil, fmt.Errorf("store: object id %q: %w", id, ErrNotFound)
	}
	b, err := os.ReadFile(s.objectPath(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: object %s: %w", id, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: get object: %w", err)
	}
	if sum := sha256.Sum256(b); hex.EncodeToString(sum[:]) != id {
		return nil, fmt.Errorf("store: object %s: %w", id, ErrCorrupt)
	}
	return b, nil
}

// PutManifest persists manifest bytes as a sealed checkpoint and returns the
// checkpoint id (the manifest's content address).
func (s *Store) PutManifest(b []byte) (id string, err error) {
	sum := sha256.Sum256(b)
	id = hex.EncodeToString(sum[:])
	path := s.checkpointPath(id)
	if _, err := os.Stat(path); err == nil {
		return id, nil
	}
	if err := s.writeAtomic(path, b); err != nil {
		return "", fmt.Errorf("store: put manifest: %w", err)
	}
	return id, nil
}

// GetManifest returns the manifest bytes of checkpoint id, re-hashing them
// to catch on-disk corruption.
func (s *Store) GetManifest(id string) ([]byte, error) {
	if !validID(id) {
		return nil, fmt.Errorf("store: checkpoint id %q: %w", id, ErrNotFound)
	}
	b, err := os.ReadFile(s.checkpointPath(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: checkpoint %s: %w", id, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: get manifest: %w", err)
	}
	if sum := sha256.Sum256(b); hex.EncodeToString(sum[:]) != id {
		return nil, fmt.Errorf("store: checkpoint %s: %w", id, ErrCorrupt)
	}
	return b, nil
}

// ListCheckpoints returns the ids of every sealed checkpoint, sorted.
func (s *Store) ListCheckpoints() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "checkpoints"))
	if err != nil {
		return nil, fmt.Errorf("store: list checkpoints: %w", err)
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		if validID(e.Name()) {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}
