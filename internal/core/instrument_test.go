package core

import (
	"testing"

	"repro/internal/amr"
	"repro/internal/telemetry"
)

// TestBuildRecipeObserved asserts the observed builder (a) produces the
// identical permutation to the uninstrumented one and (b) populates every
// recipe stage metric for the layouts that exercise it.
func TestBuildRecipeObserved(t *testing.T) {
	m, err := amr.NewMesh(2, 4, [3]int{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Refine(m.Roots()[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Refine(m.Roots()[3]); err != nil {
		t.Fatal(err)
	}
	for _, layout := range []Layout{LevelOrder, SFCWithinLevel, ZMesh, ZMeshBlock} {
		reg := telemetry.NewRegistry()
		got, err := BuildRecipeObserved(m, layout, "hilbert", 2, reg)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		want, err := BuildRecipeParallel(m, layout, "hilbert", 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.perm) != len(want.perm) {
			t.Fatalf("%v: perm length %d vs %d", layout, len(got.perm), len(want.perm))
		}
		for i := range got.perm {
			if got.perm[i] != want.perm[i] {
				t.Fatalf("%v: perm[%d] = %d, want %d", layout, i, got.perm[i], want.perm[i])
			}
		}
		s := reg.Snapshot()
		if s.Counters[CounterRecipeBuilds] != 1 {
			t.Errorf("%v: builds = %d, want 1", layout, s.Counters[CounterRecipeBuilds])
		}
		if want := int64(m.NumBlocks() * m.CellsPerBlock()); s.Counters[CounterRecipeCells] != want {
			t.Errorf("%v: cells = %d, want %d", layout, s.Counters[CounterRecipeCells], want)
		}
		if s.Timers[StageRecipeSetup].Count == 0 {
			t.Errorf("%v: setup stage unobserved", layout)
		}
		switch layout {
		case SFCWithinLevel:
			if s.Timers[StageRecipeSort].Count == 0 || s.Timers[StageRecipeDescent].Count == 0 {
				t.Errorf("%v: sort/descent stages unobserved: %v", layout, s.Names())
			}
		case ZMesh, ZMeshBlock:
			if s.Timers[StageRecipeSort].Count == 0 {
				t.Errorf("%v: root sort unobserved", layout)
			}
			if s.Timers[StageRecipeDescent].Count == 0 {
				t.Errorf("%v: descent unobserved", layout)
			}
		}
	}
	// Nil registry must behave exactly like the uninstrumented entry point.
	if _, err := BuildRecipeObserved(m, ZMesh, "hilbert", 0, nil); err != nil {
		t.Fatal(err)
	}
}
