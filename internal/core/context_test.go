package core

import (
	"context"
	"errors"
	"testing"
)

// A canceled context aborts the span-parallel recipe build instead of
// returning a partial permutation.
func TestBuildRecipeParallelContextCanceled(t *testing.T) {
	m := ringMesh(t, 2, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildRecipeParallelContext(ctx, m, ZMesh, "hilbert", 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A live context on the same mesh still builds, matching the serial
	// reference.
	got, err := BuildRecipeParallelContext(context.Background(), m, ZMesh, "hilbert", 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BuildRecipe(m, ZMesh, "hilbert")
	if err != nil {
		t.Fatal(err)
	}
	gp, wp := got.Perm(), want.Perm()
	if len(gp) != len(wp) {
		t.Fatalf("perm length %d, want %d", len(gp), len(wp))
	}
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("perm[%d] = %d, serial reference has %d", i, gp[i], wp[i])
		}
	}
}
