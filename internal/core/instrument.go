package core

import (
	"context"
	"time"

	"repro/internal/amr"
	"repro/internal/telemetry"
)

// Recipe-construction stage names, as they appear in a telemetry Registry.
// Timers accumulate per-worker wall time, so on a parallel build the stage
// totals sum to roughly builders × elapsed, not elapsed.
const (
	// StageRecipeSetup covers topology scanning and span partitioning: the
	// level/blockBase prefix sums plus the subtree-size walk that carves the
	// output permutation into disjoint spans.
	StageRecipeSetup = "recipe.setup"
	// StageRecipeSort covers the LSD radix sorts: the root-lattice curve
	// order and each level's curve-key sort (SFCWithinLevel).
	StageRecipeSort = "recipe.sort"
	// StageRecipeDescent covers span emission: the chained-tree descent
	// (ZMesh/ZMeshBlock) or the per-level curve-key generation
	// (SFCWithinLevel).
	StageRecipeDescent = "recipe.descent"

	// CounterRecipeBuilds counts completed recipe constructions.
	CounterRecipeBuilds = "recipe.builds"
	// CounterRecipeCells counts permutation entries produced.
	CounterRecipeCells = "recipe.cells"
)

// recipeMetrics holds the pre-resolved metrics of one observed build. A nil
// *recipeMetrics (the BuildRecipe/BuildRecipeParallel path) disables
// instrumentation entirely: the builder pays one nil check per stage.
type recipeMetrics struct {
	setup   *telemetry.Timer
	sort    *telemetry.Timer
	descent *telemetry.Timer
	builds  *telemetry.Counter
	cells   *telemetry.Counter
}

func newRecipeMetrics(reg *telemetry.Registry) *recipeMetrics {
	if reg == nil {
		return nil
	}
	return &recipeMetrics{
		setup:   reg.Timer(StageRecipeSetup),
		sort:    reg.Timer(StageRecipeSort),
		descent: reg.Timer(StageRecipeDescent),
		builds:  reg.Counter(CounterRecipeBuilds),
		cells:   reg.Counter(CounterRecipeCells),
	}
}

// BuildRecipeObserved is BuildRecipeParallel with per-stage telemetry: span
// partitioning, radix sorts and the descent record into reg's
// recipe.* timers and counters. A nil reg makes it identical to
// BuildRecipeParallel. The permutation produced is bit-for-bit the same
// with or without instrumentation.
func BuildRecipeObserved(m *amr.Mesh, layout Layout, curveName string, workers int, reg *telemetry.Registry) (*Recipe, error) {
	return buildRecipeParallel(context.Background(), m, layout, curveName, workers, newRecipeMetrics(reg))
}

// BuildRecipeObservedContext is BuildRecipeObserved with cancellation: the
// span workers observe ctx between disjoint spans (see
// BuildRecipeParallelContext). Aborted builds record no completed-build
// counter increment.
func BuildRecipeObservedContext(ctx context.Context, m *amr.Mesh, layout Layout, curveName string, workers int, reg *telemetry.Registry) (*Recipe, error) {
	return buildRecipeParallel(ctx, m, layout, curveName, workers, newRecipeMetrics(reg))
}

// now returns the stage clock when instrumented; the zero Time otherwise.
// Keeping the time.Now call behind the nil check keeps the uninstrumented
// builder free of clock reads.
func (rm *recipeMetrics) now() time.Time {
	if rm == nil {
		return time.Time{}
	}
	return time.Now()
}
