//go:build !zmesh_portable

package core

import "unsafe"

// Unsafe-backed kernels: every indexed access — the permutation loads, the
// sequential side, and the random side — goes through raw pointer arithmetic,
// so the inner loops carry no bounds checks and no per-iteration slice-header
// construction. Memory safety rests on two guarantees:
//
//  1. ApplyTo/RestoreTo validate len(src) == len(dst) == len(perm) == r.n
//     before dispatching here.
//  2. Recipe.kernelSafe has verified, once per recipe, that every perm entry
//     lies in [0, r.n). Recipes built by this package satisfy that by
//     construction — the builders emit permutations of [0, n) — so the check
//     is pure defense in depth; a recipe that fails it is refused with an
//     error, never handed to these kernels.
//
// Build with -tags zmesh_portable to compile the pure-Go blocked kernels on
// every platform (see kernel_portable.go).

// kernelUnsafe reports which kernel flavor this binary runs (surfaced in
// DESIGN.md's hot-path notes and the kernel tests).
const kernelUnsafe = true

// applyGather performs dst[t] = src[perm[t]], 8-wide: the eight index loads
// issue first, then the eight dependent gathered loads, so the random-access
// loads overlap in the load buffers instead of serializing.
func applyGather(dst, src []float64, perm []int32) {
	n := len(perm)
	if n == 0 {
		return
	}
	dp := unsafe.Pointer(unsafe.SliceData(dst))
	sp := unsafe.Pointer(unsafe.SliceData(src))
	pp := unsafe.Pointer(unsafe.SliceData(perm))
	i := 0
	for ; i+8 <= n; i += 8 {
		q := uintptr(i) << 2
		s0 := *(*int32)(unsafe.Add(pp, q))
		s1 := *(*int32)(unsafe.Add(pp, q+4))
		s2 := *(*int32)(unsafe.Add(pp, q+8))
		s3 := *(*int32)(unsafe.Add(pp, q+12))
		s4 := *(*int32)(unsafe.Add(pp, q+16))
		s5 := *(*int32)(unsafe.Add(pp, q+20))
		s6 := *(*int32)(unsafe.Add(pp, q+24))
		s7 := *(*int32)(unsafe.Add(pp, q+28))
		t := uintptr(i) << 3
		*(*float64)(unsafe.Add(dp, t)) = *(*float64)(unsafe.Add(sp, uintptr(s0)<<3))
		*(*float64)(unsafe.Add(dp, t+8)) = *(*float64)(unsafe.Add(sp, uintptr(s1)<<3))
		*(*float64)(unsafe.Add(dp, t+16)) = *(*float64)(unsafe.Add(sp, uintptr(s2)<<3))
		*(*float64)(unsafe.Add(dp, t+24)) = *(*float64)(unsafe.Add(sp, uintptr(s3)<<3))
		*(*float64)(unsafe.Add(dp, t+32)) = *(*float64)(unsafe.Add(sp, uintptr(s4)<<3))
		*(*float64)(unsafe.Add(dp, t+40)) = *(*float64)(unsafe.Add(sp, uintptr(s5)<<3))
		*(*float64)(unsafe.Add(dp, t+48)) = *(*float64)(unsafe.Add(sp, uintptr(s6)<<3))
		*(*float64)(unsafe.Add(dp, t+56)) = *(*float64)(unsafe.Add(sp, uintptr(s7)<<3))
	}
	for ; i < n; i++ {
		*(*float64)(unsafe.Add(dp, uintptr(i)<<3)) = *(*float64)(unsafe.Add(sp, uintptr(perm[i])<<3))
	}
}

// restoreScatter performs dst[perm[t]] = src[t], 4-wide. Scatters are
// store-bound, so the narrower unroll measures faster than 8-wide here: the
// store buffer fills before wider batching can help.
func restoreScatter(dst, src []float64, perm []int32) {
	n := len(perm)
	if n == 0 {
		return
	}
	dp := unsafe.Pointer(unsafe.SliceData(dst))
	sp := unsafe.Pointer(unsafe.SliceData(src))
	pp := unsafe.Pointer(unsafe.SliceData(perm))
	i := 0
	for ; i+4 <= n; i += 4 {
		q := uintptr(i) << 2
		t0 := *(*int32)(unsafe.Add(pp, q))
		t1 := *(*int32)(unsafe.Add(pp, q+4))
		t2 := *(*int32)(unsafe.Add(pp, q+8))
		t3 := *(*int32)(unsafe.Add(pp, q+12))
		s := uintptr(i) << 3
		*(*float64)(unsafe.Add(dp, uintptr(t0)<<3)) = *(*float64)(unsafe.Add(sp, s))
		*(*float64)(unsafe.Add(dp, uintptr(t1)<<3)) = *(*float64)(unsafe.Add(sp, s+8))
		*(*float64)(unsafe.Add(dp, uintptr(t2)<<3)) = *(*float64)(unsafe.Add(sp, s+16))
		*(*float64)(unsafe.Add(dp, uintptr(t3)<<3)) = *(*float64)(unsafe.Add(sp, s+24))
	}
	for ; i < n; i++ {
		*(*float64)(unsafe.Add(dp, uintptr(perm[i])<<3)) = *(*float64)(unsafe.Add(sp, uintptr(i)<<3))
	}
}
