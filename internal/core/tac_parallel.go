package core

// Parallel TAC construction. Levels are independent by construction (boxes
// never cross levels), so the TAC3D layout fans out across levels exactly
// like SFCWithinLevel: each level's job partitions its block lattice and
// writes its cells into a disjoint, pre-sized span of the shared
// permutation. The partition here is grid-based — dense occupancy/owner
// arrays indexed by lattice position, falling back to int64-keyed maps when
// the lattice is much larger than the level's population — and shares no
// code with the map-based serial reference in tac.go; the differential test
// asserts bit-for-bit equality of both the permutation and the plan.

import (
	"context"
	"fmt"

	"repro/internal/amr"
)

// tacLattice is the parallel builder's occupancy/ownership index over one
// level's block lattice. Dense arrays when the lattice volume is within a
// small factor of the block population; int64-keyed maps otherwise, so a
// deep, sparsely-refined level never allocates memory proportional to the
// full lattice volume.
type tacLattice struct {
	bd     [3]int
	blocks []int32 // dense: block id + 1, 0 = empty
	owner  []int32 // dense: box index + 1, 0 = unassigned
	mblk   map[int64]int32
	mown   map[int64]int32
}

func newTACLattice(bd [3]int, ids []amr.BlockID, m *amr.Mesh) *tacLattice {
	g := &tacLattice{bd: bd}
	vol := int64(bd[0]) * int64(bd[1]) * int64(bd[2])
	if vol <= int64(8*len(ids))+4096 {
		g.blocks = make([]int32, vol)
		g.owner = make([]int32, vol)
	} else {
		g.mblk = make(map[int64]int32, len(ids))
		g.mown = make(map[int64]int32, len(ids))
	}
	for _, id := range ids {
		c := m.Block(id).Coord
		g.setBlock(c[0], c[1], c[2], int32(id)+1)
	}
	return g
}

func (g *tacLattice) key(x, y, z int) int64 {
	return (int64(z)*int64(g.bd[1])+int64(y))*int64(g.bd[0]) + int64(x)
}

func (g *tacLattice) setBlock(x, y, z int, v int32) {
	if g.blocks != nil {
		g.blocks[g.key(x, y, z)] = v
		return
	}
	g.mblk[g.key(x, y, z)] = v
}

// block returns the block id at a lattice position (+1 encoding undone) and
// whether the position is occupied.
func (g *tacLattice) block(x, y, z int) (amr.BlockID, bool) {
	var v int32
	if g.blocks != nil {
		v = g.blocks[g.key(x, y, z)]
	} else {
		v = g.mblk[g.key(x, y, z)]
	}
	return amr.BlockID(v - 1), v != 0
}

// ownerOf returns the owning box index and whether the position is assigned.
func (g *tacLattice) ownerOf(x, y, z int) (int, bool) {
	var v int32
	if g.owner != nil {
		v = g.owner[g.key(x, y, z)]
	} else {
		v = g.mown[g.key(x, y, z)]
	}
	return int(v - 1), v != 0
}

func (g *tacLattice) setOwner(x, y, z, boxIdx int) {
	if g.owner != nil {
		g.owner[g.key(x, y, z)] = int32(boxIdx) + 1
		return
	}
	g.mown[g.key(x, y, z)] = int32(boxIdx) + 1
}

// tacPartitionLevel partitions one level and writes its cells into span,
// returning the level's boxes in creation order. The greedy growth follows
// the partition spec documented in tac.go.
func (bctx *buildContext) tacPartitionLevel(level int, span []int32) ([]TACBox, error) {
	m := bctx.m
	ids := bctx.levels[level]
	if len(ids) == 0 {
		return nil, nil
	}
	bd := m.LevelCellDims(level)
	for d := 0; d < m.Dims(); d++ {
		bd[d] /= bctx.bs
	}
	if m.Dims() == 2 {
		bd[2] = 1
	}
	g := newTACLattice(bd, ids, m)
	maxSide := tacMaxSideBlocks(bctx.bs)
	var boxes []TACBox
	next := 0
	for _, seed := range ids {
		c := m.Block(seed).Coord
		if _, taken := g.ownerOf(c[0], c[1], c[2]); taken {
			continue
		}
		min, size := [3]int{c[0], c[1], c[2]}, [3]int{1, 1, 1}
		claimed := 1
		for {
			extended := false
			for d := 0; d < m.Dims(); d++ {
				if size[d] >= maxSide || min[d]+size[d] >= bd[d] {
					continue
				}
				gain := g.slabGain(min, size, d)
				if gain == 0 {
					continue
				}
				grown := size
				grown[d]++
				if (claimed+gain)*tacMinFillDen < grown[0]*grown[1]*grown[2]*tacMinFillNum {
					continue
				}
				size = grown
				claimed += gain
				extended = true
			}
			if !extended {
				break
			}
		}
		box, wrote := bctx.writeTACBox(g, level, min, size, len(boxes), span[next:])
		next += wrote
		boxes = append(boxes, box)
	}
	if next != len(span) {
		return nil, fmt.Errorf("core: tac level %d emitted %d of %d cells", level, next, len(span))
	}
	return boxes, nil
}

// slabGain counts occupied, unassigned blocks in the one-slab extension of
// (min, size) in direction d.
func (g *tacLattice) slabGain(min, size [3]int, d int) int {
	lo, hi := min, [3]int{min[0] + size[0], min[1] + size[1], min[2] + size[2]}
	lo[d] = min[d] + size[d]
	hi[d] = lo[d] + 1
	gain := 0
	for z := lo[2]; z < hi[2]; z++ {
		for y := lo[1]; y < hi[1]; y++ {
			for x := lo[0]; x < hi[0]; x++ {
				if _, ok := g.block(x, y, z); !ok {
					continue
				}
				if _, taken := g.ownerOf(x, y, z); !taken {
					gain++
				}
			}
		}
	}
	return gain
}

// writeTACBox claims the box's blocks, writes its cells into out in local
// row-major order, and returns the box plus the number of cells written.
func (bctx *buildContext) writeTACBox(g *tacLattice, level int, min, size [3]int, boxIdx int, out []int32) (TACBox, int) {
	for z := min[2]; z < min[2]+size[2]; z++ {
		for y := min[1]; y < min[1]+size[1]; y++ {
			for x := min[0]; x < min[0]+size[0]; x++ {
				if _, ok := g.block(x, y, z); !ok {
					continue
				}
				if _, taken := g.ownerOf(x, y, z); !taken {
					g.setOwner(x, y, z, boxIdx)
				}
			}
		}
	}
	bs := bctx.bs
	cd := [3]int{size[0] * bs, size[1] * bs, 1}
	if bctx.m.Dims() == 3 {
		cd[2] = size[2] * bs
	}
	volume := cd[0] * cd[1] * cd[2]
	mask := make([]uint64, maskWords(volume))
	idx, wrote := 0, 0
	for z := 0; z < cd[2]; z++ {
		for y := 0; y < cd[1]; y++ {
			for x := 0; x < cd[0]; x++ {
				bx, by, bz := min[0]+x/bs, min[1]+y/bs, min[2]+z/bs
				if own, taken := g.ownerOf(bx, by, bz); taken && own == boxIdx {
					id, _ := g.block(bx, by, bz)
					out[wrote] = bctx.cellPos(id, x%bs, y%bs, z%bs)
					wrote++
					mask[idx>>6] |= 1 << (uint(idx) & 63)
				}
				idx++
			}
		}
	}
	mask, n := finalizeMask(mask, volume)
	return TACBox{Level: level, Min: min, Size: size, CellDims: cd, NumCells: n, Mask: mask}, wrote
}

// buildTACParallel fans the TAC layout out across levels and assembles the
// plan in level order.
func (bctx *buildContext) buildTACParallel(ctx context.Context, perm []int32, workers int) (*TACPlan, error) {
	spans := make([][]int32, len(bctx.levels))
	off := 0
	for l, ids := range bctx.levels {
		size := len(ids) * bctx.cpb
		spans[l] = perm[off : off+size]
		off += size
	}
	if off != len(perm) {
		return nil, fmt.Errorf("core: tac level spans cover %d of %d cells", off, len(perm))
	}
	boxesByLevel := make([][]TACBox, len(bctx.levels))
	err := bctx.runSpans(ctx, len(spans), workers, func(w *spanWriter, l int) error {
		boxes, err := bctx.tacPartitionLevel(l, spans[l])
		boxesByLevel[l] = boxes
		return err
	})
	if err != nil {
		return nil, err
	}
	plan := &TACPlan{}
	for _, boxes := range boxesByLevel {
		plan.Boxes = append(plan.Boxes, boxes...)
	}
	return plan, nil
}
