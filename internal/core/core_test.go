package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/amr"
)

func randomMesh(t testing.TB, seed int64, dims int) *amr.Mesh {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, err := amr.NewMesh(dims, 4, [3]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for _, id := range m.Leaves() {
			if m.Block(id).Level < 3 && rng.Float64() < 0.35 {
				if err := m.Refine(id); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return m
}

// allLayouts lists every concrete layout (AutoLayout is a pseudo-layout with
// no permutation and is tested separately in tac_test.go).
func allLayouts() []Layout { return []Layout{LevelOrder, SFCWithinLevel, ZMesh, ZMeshBlock, TAC3D} }

func TestLayoutStringParse(t *testing.T) {
	for _, l := range allLayouts() {
		got, err := ParseLayout(l.String())
		if err != nil || got != l {
			t.Fatalf("round trip %v: %v %v", l, got, err)
		}
	}
	if _, err := ParseLayout("bogus"); err == nil {
		t.Fatal("bogus layout accepted")
	}
}

// Every recipe must be a bijection on the stream positions.
func TestRecipeIsPermutation(t *testing.T) {
	for _, dims := range []int{2, 3} {
		m := randomMesh(t, 42, dims)
		n := m.NumBlocks() * m.CellsPerBlock()
		for _, layout := range allLayouts() {
			for _, curve := range []string{"morton", "hilbert", "rowmajor"} {
				r, err := BuildRecipe(m, layout, curve)
				if err != nil {
					t.Fatalf("dims=%d %v/%s: %v", dims, layout, curve, err)
				}
				if r.Len() != n {
					t.Fatalf("dims=%d %v/%s: len %d, want %d", dims, layout, curve, r.Len(), n)
				}
				seen := make([]bool, n)
				for _, s := range r.Perm() {
					if s < 0 || int(s) >= n || seen[s] {
						t.Fatalf("dims=%d %v/%s: invalid permutation", dims, layout, curve)
					}
					seen[s] = true
				}
			}
		}
	}
}

func TestApplyRestoreRoundTrip(t *testing.T) {
	m := randomMesh(t, 7, 2)
	f := amr.NewField(m, "q")
	f.FillFunc(func(x, y, z float64) float64 { return math.Sin(9*x) + math.Cos(7*y) })
	flat := amr.Flatten(amr.LevelArrays(f))
	for _, layout := range allLayouts() {
		r, err := BuildRecipe(m, layout, "hilbert")
		if err != nil {
			t.Fatal(err)
		}
		ordered, err := r.Apply(flat)
		if err != nil {
			t.Fatal(err)
		}
		back, err := r.Restore(ordered)
		if err != nil {
			t.Fatal(err)
		}
		for i := range flat {
			if back[i] != flat[i] {
				t.Fatalf("%v: position %d: %v != %v", layout, i, back[i], flat[i])
			}
		}
	}
}

func TestApplyRejectsWrongLength(t *testing.T) {
	m := randomMesh(t, 7, 2)
	r, err := BuildRecipe(m, ZMesh, "morton")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Apply(make([]float64, r.Len()-1)); err == nil {
		t.Fatal("short stream accepted")
	}
	if _, err := r.Restore(make([]float64, r.Len()+1)); err == nil {
		t.Fatal("long stream accepted")
	}
}

func TestLevelOrderIsIdentity(t *testing.T) {
	m := randomMesh(t, 3, 2)
	r, err := BuildRecipe(m, LevelOrder, "morton")
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range r.Perm() {
		if int(s) != i {
			t.Fatalf("level order perm[%d] = %d", i, s)
		}
	}
}

// The defining zMesh property: a refined coarse cell is immediately followed
// in the stream by the 2^dims fine cells covering the same region.
func TestZMeshChainsParentToChildren(t *testing.T) {
	for _, dims := range []int{2, 3} {
		m := randomMesh(t, 11, dims)
		r, err := BuildRecipe(m, ZMesh, "morton")
		if err != nil {
			t.Fatal(err)
		}
		// Identify each stream position's (level, global coords).
		type cellInfo struct {
			level   int
			coord   [3]uint32
			refined bool
		}
		info := make([]cellInfo, 0, r.Len())
		bs := m.BlockSize()
		kmax := 1
		if dims == 3 {
			kmax = bs
		}
		for level := 0; level <= m.MaxLevel(); level++ {
			for _, id := range m.SortedLevel(level) {
				for k := 0; k < kmax; k++ {
					for j := 0; j < bs; j++ {
						for i := 0; i < bs; i++ {
							g := m.GlobalCellCoord(id, i, j, k)
							// Cell is refined iff the block holding its
							// first fine cell exists at level+1.
							bc := [3]int{int(g[0]) * 2 / bs, int(g[1]) * 2 / bs, int(g[2]) * 2 / bs}
							if dims == 2 {
								bc[2] = 0
							}
							_, refined := m.Lookup(level+1, bc)
							info = append(info, cellInfo{level, g, refined})
						}
					}
				}
			}
		}
		// Walk the zMesh order and check the chaining property.
		perm := r.Perm()
		checked := 0
		for t0 := 0; t0 < len(perm)-1; t0++ {
			c := info[perm[t0]]
			if !c.refined {
				continue
			}
			next := info[perm[t0+1]]
			if next.level != c.level+1 {
				t.Fatalf("dims=%d: refined cell followed by level %d cell, want %d",
					dims, next.level, c.level+1)
			}
			if next.coord[0]/2 != c.coord[0] || next.coord[1]/2 != c.coord[1] {
				t.Fatalf("dims=%d: fine cell %v does not cover coarse %v",
					dims, next.coord, c.coord)
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("dims=%d: no refined cells exercised", dims)
		}
	}
}

// The recipe must be reproducible from serialized topology alone — the
// zero-metadata-overhead property.
func TestRecipeFromStructureMatches(t *testing.T) {
	m := randomMesh(t, 23, 2)
	blob := m.Structure()
	for _, layout := range allLayouts() {
		for _, curve := range []string{"morton", "hilbert"} {
			want, err := BuildRecipe(m, layout, curve)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RecipeFromStructure(blob, layout, curve)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != want.Len() {
				t.Fatalf("%v/%s: lengths differ", layout, curve)
			}
			for i := range want.Perm() {
				if got.Perm()[i] != want.Perm()[i] {
					t.Fatalf("%v/%s: perm differs at %d", layout, curve, i)
				}
			}
		}
	}
}

func TestRecipeFromStructureRejectsGarbage(t *testing.T) {
	if _, err := RecipeFromStructure([]byte{1, 2, 3}, ZMesh, "morton"); err == nil {
		t.Fatal("garbage structure accepted")
	}
}

func TestUnknownCurveRejected(t *testing.T) {
	m := randomMesh(t, 1, 2)
	if _, err := BuildRecipe(m, ZMesh, "peano"); err == nil {
		t.Fatal("unknown curve accepted")
	}
}

// totalVariation sums |x[i+1]-x[i]| — the smoothness metric (lower is
// smoother).
func totalVariation(x []float64) float64 {
	tv := 0.0
	for i := 1; i < len(x); i++ {
		tv += math.Abs(x[i] - x[i-1])
	}
	return tv
}

// The headline claim: on a refined dataset with localized features, the
// zMesh order is smoother than both the level order and the within-level
// SFC order.
func TestZMeshImprovesSmoothness(t *testing.T) {
	front := func(x, y, z float64) float64 {
		r := math.Hypot(x-0.5, y-0.5)
		return 1 / (1 + math.Exp((r-0.3)/0.01))
	}
	m, f, err := amr.BuildAdaptive(amr.BuildOptions{
		Dims: 2, BlockSize: 8, RootDims: [3]int{2, 2, 1},
		MaxDepth: 3, Threshold: 0.4,
	}, front)
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxLevel() < 2 {
		t.Fatal("dataset did not refine")
	}
	flat := amr.Flatten(amr.LevelArrays(f))
	tv := map[Layout]float64{}
	for _, layout := range allLayouts() {
		r, err := BuildRecipe(m, layout, "hilbert")
		if err != nil {
			t.Fatal(err)
		}
		ordered, err := r.Apply(flat)
		if err != nil {
			t.Fatal(err)
		}
		tv[layout] = totalVariation(ordered)
	}
	if tv[ZMesh] >= tv[LevelOrder] {
		t.Fatalf("zMesh TV %.3f not smoother than level order %.3f", tv[ZMesh], tv[LevelOrder])
	}
	if tv[SFCWithinLevel] >= tv[LevelOrder] {
		t.Fatalf("SFC-within-level TV %.3f not smoother than level order %.3f",
			tv[SFCWithinLevel], tv[LevelOrder])
	}
}

// property: Apply/Restore is lossless for arbitrary data on random meshes.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, layoutPick, curvePick uint8) bool {
		m := randomMesh(t, seed, 2)
		layout := allLayouts()[int(layoutPick)%len(allLayouts())]
		curve := []string{"morton", "hilbert", "rowmajor"}[curvePick%3]
		r, err := BuildRecipe(m, layout, curve)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		flat := make([]float64, r.Len())
		for i := range flat {
			flat[i] = rng.NormFloat64()
		}
		ordered, err := r.Apply(flat)
		if err != nil {
			return false
		}
		back, err := r.Restore(ordered)
		if err != nil {
			return false
		}
		for i := range flat {
			if back[i] != flat[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildRecipeZMesh(b *testing.B) {
	m := randomMesh(b, 99, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildRecipe(m, ZMesh, "hilbert"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApply(b *testing.B) {
	m := randomMesh(b, 99, 2)
	r, err := BuildRecipe(m, ZMesh, "hilbert")
	if err != nil {
		b.Fatal(err)
	}
	flat := make([]float64, r.Len())
	b.SetBytes(int64(len(flat) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Apply(flat); err != nil {
			b.Fatal(err)
		}
	}
}
