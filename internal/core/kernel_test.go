package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// recipeFromPerm builds a Recipe directly from a permutation, bypassing the
// mesh builders, so the kernel tests can cover arbitrary shapes and sizes
// (block boundaries, unroll remainders, empty and single-element streams).
func recipeFromPerm(perm []int32) *Recipe {
	return &Recipe{layout: ZMesh, curve: "test", n: len(perm), perm: perm}
}

func randomPerm(rng *rand.Rand, n int) []int32 {
	p := make([]int32, n)
	for i, v := range rng.Perm(n) {
		p[i] = int32(v)
	}
	return p
}

func randomStream(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func equalBits(tb testing.TB, what string, got, want []float64) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			tb.Fatalf("%s: value %d = %x, want %x", what, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// checkKernelAgreement pins every implementation — serial oracle, portable
// blocked kernel, and the dispatched (possibly unsafe) kernel — bit-for-bit
// against each other, and Restore∘Apply against identity.
func checkKernelAgreement(tb testing.TB, r *Recipe, flat []float64) {
	tb.Helper()
	wantOrdered, err := r.ApplyToSerial(nil, flat)
	if err != nil {
		tb.Fatal(err)
	}
	gotOrdered, err := r.ApplyTo(nil, flat)
	if err != nil {
		tb.Fatal(err)
	}
	equalBits(tb, "ApplyTo vs ApplyToSerial", gotOrdered, wantOrdered)
	blocked := make([]float64, r.n)
	applyGatherBlocked(blocked, flat, r.perm)
	equalBits(tb, "applyGatherBlocked vs ApplyToSerial", blocked, wantOrdered)

	wantFlat, err := r.RestoreToSerial(nil, wantOrdered)
	if err != nil {
		tb.Fatal(err)
	}
	equalBits(tb, "RestoreToSerial∘ApplyToSerial vs identity", wantFlat, flat)
	gotFlat, err := r.RestoreTo(nil, gotOrdered)
	if err != nil {
		tb.Fatal(err)
	}
	equalBits(tb, "RestoreTo vs RestoreToSerial", gotFlat, wantFlat)
	scattered := make([]float64, r.n)
	restoreScatterBlocked(scattered, gotOrdered, r.perm)
	equalBits(tb, "restoreScatterBlocked vs RestoreToSerial", scattered, wantFlat)
}

// TestKernelDifferentialMeshes runs the blocked kernels against the serial
// oracle over real recipes: every layout × curve on 2-D and 3-D ring-front
// meshes at several depths (the same family the builder differential tests
// use).
func TestKernelDifferentialMeshes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range []int{2, 3} {
		depths := []int{1, 3}
		if dims == 3 {
			depths = []int{1, 2}
		}
		for _, depth := range depths {
			m := ringMesh(t, dims, depth)
			for _, layout := range allLayouts() {
				for _, curve := range []string{"hilbert", "morton", "rowmajor"} {
					t.Run(fmt.Sprintf("dims=%d/depth=%d/%s/%s", dims, depth, layout, curve), func(t *testing.T) {
						r, err := BuildRecipe(m, layout, curve)
						if err != nil {
							t.Fatal(err)
						}
						checkKernelAgreement(t, r, randomStream(rng, r.Len()))
					})
				}
			}
		}
	}
}

// TestKernelRandomPermutations sweeps sizes chosen to hit every boundary of
// the blocked kernels: empty, single element, unroll remainders (±1 around
// the 4- and 8-wide unrolls), exact block multiples and stragglers.
func TestKernelRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 100,
		kernelBlock - 1, kernelBlock, kernelBlock + 1, kernelBlock + 7,
		3*kernelBlock + 5}
	for _, n := range sizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				r := recipeFromPerm(randomPerm(rng, n))
				checkKernelAgreement(t, r, randomStream(rng, n))
			}
		})
	}
}

// TestKernelReusesDestination pins the buffer-reuse contract of the tuned
// path: a destination with sufficient capacity is returned (resliced), not
// replaced.
func TestKernelReusesDestination(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := recipeFromPerm(randomPerm(rng, 777))
	flat := randomStream(rng, 777)
	dst := make([]float64, 777)
	out, err := r.ApplyTo(dst, flat)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &dst[0] {
		t.Fatal("ApplyTo did not reuse the provided destination")
	}
	back, err := r.RestoreTo(nil, out)
	if err != nil {
		t.Fatal(err)
	}
	equalBits(t, "round trip", back, flat)
}

// TestKernelAllocs pins the steady-state allocation count of the tuned
// kernels with reused destinations: zero.
func TestKernelAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := recipeFromPerm(randomPerm(rng, 4096))
	flat := randomStream(rng, 4096)
	dst := make([]float64, 4096)
	if allocs := testing.AllocsPerRun(100, func() {
		var err error
		dst, err = r.ApplyTo(dst, flat)
		if err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("ApplyTo with reused dst allocates %v per run, want 0", allocs)
	}
	ordered := make([]float64, 4096)
	copy(ordered, flat)
	if allocs := testing.AllocsPerRun(100, func() {
		var err error
		dst, err = r.RestoreTo(dst, ordered)
		if err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("RestoreTo with reused dst allocates %v per run, want 0", allocs)
	}
}

// TestKernelRejectsCorruptPerm pins the defense-in-depth path: a recipe
// whose permutation escapes [0, n) must be refused with an error — never
// handed to the unchecked kernels.
func TestKernelRejectsCorruptPerm(t *testing.T) {
	cases := map[string][]int32{
		"too-large": {0, 1, 3, 2, 4}, // 4 then corrupted below
		"negative":  {0, 1, 2, 3, -1},
	}
	cases["too-large"][4] = 5 // == n: one past the end
	for name, perm := range cases {
		t.Run(name, func(t *testing.T) {
			r := recipeFromPerm(perm)
			stream := make([]float64, len(perm))
			if _, err := r.ApplyTo(nil, stream); err == nil {
				t.Fatal("ApplyTo accepted an out-of-range permutation")
			}
			if _, err := r.RestoreTo(nil, stream); err == nil {
				t.Fatal("RestoreTo accepted an out-of-range permutation")
			}
		})
	}
	// A valid recipe must still verify cleanly.
	ok := recipeFromPerm([]int32{4, 2, 0, 1, 3})
	if _, err := ok.ApplyTo(nil, make([]float64, 5)); err != nil {
		t.Fatalf("valid permutation refused: %v", err)
	}
}

// FuzzKernelDifferential drives the kernel agreement check from fuzzed
// (size, seed) pairs, letting the fuzzer search for boundary sizes the fixed
// tables miss.
func FuzzKernelDifferential(f *testing.F) {
	f.Add(uint16(0), int64(1))
	f.Add(uint16(1), int64(2))
	f.Add(uint16(8), int64(3))
	f.Add(uint16(kernelBlock), int64(4))
	f.Add(uint16(kernelBlock+9), int64(5))
	f.Fuzz(func(t *testing.T, size uint16, seed int64) {
		n := int(size) % 5000
		rng := rand.New(rand.NewSource(seed))
		r := recipeFromPerm(randomPerm(rng, n))
		checkKernelAgreement(t, r, randomStream(rng, n))
	})
}
