package core

// Parallel recipe construction. The key observation is that every layout's
// permutation decomposes into spans whose sizes are computable from the
// topology alone before any traversal runs:
//
//   - LevelOrder is the identity — trivially chunkable.
//   - SFCWithinLevel emits each level contiguously; a level's span holds
//     len(SortedLevel(level)) * cellsPerBlock positions.
//   - ZMesh and ZMeshBlock emit each root's chained tree contiguously (in
//     curve order of the roots); a tree's span holds subtreeBlocks * cpb
//     positions, because every block of the tree contributes exactly its own
//     cells once.
//
// Each worker therefore writes its descent into a disjoint, pre-sized span
// of the shared perm slice: no appends, no locks, no post-hoc merge. The
// result is deterministic — span boundaries and span contents are pure
// functions of the mesh, never of scheduling — which the differential test
// against the serial reference builder asserts.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/amr"
	"repro/internal/sfc"
)

// buildContext is the read-only state shared by every span writer of one
// recipe construction.
type buildContext struct {
	m         *amr.Mesh
	curveName string
	levels    [][]amr.BlockID // canonical SortedLevel order, computed once
	blockBase []int32         // level-order position of each block's first cell
	cpb       int
	bs        int
	kmax      int
	met       *recipeMetrics // nil unless BuildRecipeObserved
}

func newBuildContext(m *amr.Mesh, curveName string, met *recipeMetrics) (*buildContext, error) {
	t0 := met.now()
	if _, err := sfc.New(curveName, m.Dims()); err != nil {
		return nil, err
	}
	if err := CheckMeshSize(m.NumBlocks(), m.CellsPerBlock()); err != nil {
		return nil, err
	}
	ctx := &buildContext{
		m:         m,
		curveName: curveName,
		cpb:       m.CellsPerBlock(),
		bs:        m.BlockSize(),
		kmax:      1,
		met:       met,
	}
	if m.Dims() == 3 {
		ctx.kmax = ctx.bs
	}
	ctx.levels = make([][]amr.BlockID, m.MaxLevel()+1)
	ctx.blockBase = make([]int32, m.NumBlocks())
	pos := int32(0)
	for level := 0; level <= m.MaxLevel(); level++ {
		ids := m.SortedLevel(level)
		ctx.levels[level] = ids
		for _, id := range ids {
			ctx.blockBase[id] = pos
			pos += int32(ctx.cpb)
		}
	}
	if met != nil {
		met.setup.Since(t0)
	}
	return ctx, nil
}

// cellPos is the level-order stream position of cell (i,j,k) of a block.
func (c *buildContext) cellPos(id amr.BlockID, i, j, k int) int32 {
	off := j*c.bs + i
	if c.m.Dims() == 3 {
		off = (k*c.bs+j)*c.bs + i
	}
	return c.blockBase[id] + int32(off)
}

// subtreeBlocks counts the blocks of the refinement tree rooted at id.
func (c *buildContext) subtreeBlocks(id amr.BlockID) int {
	blk := c.m.Block(id)
	n := 1
	if blk.IsLeaf() {
		return n
	}
	nsub := 1 << uint(c.m.Dims())
	for o := 0; o < nsub; o++ {
		n += c.subtreeBlocks(blk.Children[o])
	}
	return n
}

// spanWriter owns one goroutine's traversal state: a disjoint output span,
// a private curve instance, and reusable sort scratch.
type spanWriter struct {
	ctx      *buildContext
	curve    sfc.Curve
	cellBits uint
	out      []int32
	next     int
	coords   []uint32
	entries  []orderEntry
	scratch  []orderEntry
}

func newSpanWriter(ctx *buildContext) (*spanWriter, error) {
	curve, err := sfc.New(ctx.curveName, ctx.m.Dims())
	if err != nil {
		return nil, err
	}
	cellBits := ceilLog2(ctx.bs)
	if cellBits == 0 {
		cellBits = 1
	}
	return &spanWriter{
		ctx:      ctx,
		curve:    curve,
		cellBits: cellBits,
		coords:   make([]uint32, ctx.m.Dims()),
	}, nil
}

func (w *spanWriter) emit(pos int32) {
	w.out[w.next] = pos
	w.next++
}

// cellFromCurve maps a curve index within a block to cell coordinates.
func (w *spanWriter) cellFromCurve(idx uint64) (i, j, k int) {
	c := w.curve.Coords(idx, w.cellBits)
	i, j = int(c[0]), int(c[1])
	if w.ctx.m.Dims() == 3 {
		k = int(c[2])
	}
	return
}

// runTree emits the chained tree rooted at root into span.
func (w *spanWriter) runTree(layout Layout, root amr.BlockID, span []int32) error {
	t0 := w.ctx.met.now()
	w.out, w.next = span, 0
	switch layout {
	case ZMesh:
		for ci := 0; ci < w.ctx.cpb; ci++ {
			i, j, k := w.cellFromCurve(uint64(ci))
			g := w.ctx.m.GlobalCellCoord(root, i, j, k)
			w.emitCell(0, g, root, i, j, k)
		}
	case ZMeshBlock:
		w.emitBlockChained(root)
	default:
		return fmt.Errorf("core: layout %v is not tree-chained", layout)
	}
	if w.next != len(span) {
		return fmt.Errorf("core: tree at root %d emitted %d of %d cells", root, w.next, len(span))
	}
	if m := w.ctx.met; m != nil {
		m.descent.Since(t0)
	}
	return nil
}

// emitCell mirrors builder.emitCell: the cell, then (if refined) the 2^dims
// finer cells covering the same region, in curve order, recursively.
func (w *spanWriter) emitCell(level int, g [3]uint32, id amr.BlockID, i, j, k int) {
	w.emit(w.ctx.cellPos(id, i, j, k))
	m := w.ctx.m
	fine := [3]uint32{g[0] * 2, g[1] * 2, g[2] * 2}
	bs := w.ctx.bs
	bc := [3]int{int(fine[0]) / bs, int(fine[1]) / bs, int(fine[2]) / bs}
	if m.Dims() == 2 {
		bc[2] = 0
	}
	cid, ok := m.Lookup(level+1, bc)
	if !ok {
		return
	}
	nsub := 1 << uint(m.Dims())
	for s := 0; s < nsub; s++ {
		c := w.curve.Coords(uint64(s), 1)
		fi := int(fine[0]) + int(c[0])
		fj := int(fine[1]) + int(c[1])
		fk := 0
		if m.Dims() == 3 {
			fk = int(fine[2]) + int(c[2])
		}
		gg := [3]uint32{uint32(fi), uint32(fj), uint32(fk)}
		w.emitCell(level+1, gg, cid, fi%bs, fj%bs, fk%bs)
	}
}

// emitBlockChained mirrors builder.emitBlockChained at block granularity.
func (w *spanWriter) emitBlockChained(id amr.BlockID) {
	m := w.ctx.m
	for ci := 0; ci < w.ctx.cpb; ci++ {
		i, j, k := w.cellFromCurve(uint64(ci))
		w.emit(w.ctx.cellPos(id, i, j, k))
	}
	blk := m.Block(id)
	if blk.IsLeaf() {
		return
	}
	nsub := 1 << uint(m.Dims())
	for s := 0; s < nsub; s++ {
		c := w.curve.Coords(uint64(s), 1)
		ord := int(c[0]) | int(c[1])<<1
		if m.Dims() == 3 {
			ord |= int(c[2]) << 2
		}
		w.emitBlockChained(blk.Children[ord])
	}
}

// runLevel emits one level's cells in curve order into span
// (the SFCWithinLevel layout).
func (w *spanWriter) runLevel(level int, span []int32) error {
	t0 := w.ctx.met.now()
	m := w.ctx.m
	cellDims := m.LevelCellDims(level)
	maxDim := cellDims[0]
	for d := 1; d < m.Dims(); d++ {
		if cellDims[d] > maxDim {
			maxDim = cellDims[d]
		}
	}
	cbits := ceilLog2(maxDim)
	if cbits == 0 {
		cbits = 1
	}
	w.entries = w.entries[:0]
	for _, id := range w.ctx.levels[level] {
		for k := 0; k < w.ctx.kmax; k++ {
			for j := 0; j < w.ctx.bs; j++ {
				for i := 0; i < w.ctx.bs; i++ {
					g := m.GlobalCellCoord(id, i, j, k)
					w.coords[0], w.coords[1] = g[0], g[1]
					if m.Dims() == 3 {
						w.coords[2] = g[2]
					}
					w.entries = append(w.entries, orderEntry{
						key: w.curve.Index(w.coords, cbits),
						pos: w.ctx.cellPos(id, i, j, k),
					})
				}
			}
		}
	}
	if len(w.entries) != len(span) {
		return fmt.Errorf("core: level %d emitted %d of %d cells", level, len(w.entries), len(span))
	}
	if cap(w.scratch) < len(w.entries) {
		w.scratch = make([]orderEntry, len(w.entries))
	}
	met := w.ctx.met
	if met != nil {
		met.descent.Since(t0)
		t0 = time.Now()
	}
	radixSortEntries(w.entries, w.scratch[:cap(w.scratch)])
	if met != nil {
		met.sort.Since(t0)
		t0 = time.Now()
	}
	for t, e := range w.entries {
		span[t] = e.pos
	}
	if met != nil {
		met.descent.Since(t0)
	}
	return nil
}

// sortedRootsFast orders the root blocks along the curve over the root
// lattice using the radix sort.
func (ctx *buildContext) sortedRootsFast() ([]amr.BlockID, error) {
	t0 := ctx.met.now()
	m := ctx.m
	curve, err := sfc.New(ctx.curveName, m.Dims())
	if err != nil {
		return nil, err
	}
	rd := m.RootDims()
	maxRoot := rd[0]
	for d := 1; d < m.Dims(); d++ {
		if rd[d] > maxRoot {
			maxRoot = rd[d]
		}
	}
	rbits := ceilLog2(maxRoot)
	if rbits == 0 {
		rbits = 1
	}
	roots := m.Roots()
	entries := make([]orderEntry, 0, len(roots))
	scratch := make([]orderEntry, len(roots))
	coords := make([]uint32, m.Dims())
	for _, id := range roots {
		c := m.Block(id).Coord
		coords[0], coords[1] = uint32(c[0]), uint32(c[1])
		if m.Dims() == 3 {
			coords[2] = uint32(c[2])
		}
		entries = append(entries, orderEntry{key: curve.Index(coords, rbits), pos: int32(id)})
	}
	radixSortEntries(entries, scratch)
	out := make([]amr.BlockID, len(entries))
	for i, e := range entries {
		out[i] = amr.BlockID(e.pos)
	}
	if ctx.met != nil {
		ctx.met.sort.Since(t0)
	}
	return out, nil
}

// BuildRecipeParallel builds the recipe with an explicit worker budget;
// workers <= 0 uses GOMAXPROCS. Any worker count (including 1) produces the
// identical permutation: partitioning is by topology, not by scheduling.
func BuildRecipeParallel(m *amr.Mesh, layout Layout, curveName string, workers int) (*Recipe, error) {
	return buildRecipeParallel(context.Background(), m, layout, curveName, workers, nil)
}

// BuildRecipeParallelContext is BuildRecipeParallel with cancellation: the
// worker pool observes ctx between spans, so a caller-side deadline or
// cancel aborts the build between disjoint units of work rather than
// mid-span. On cancellation the error is ctx.Err().
func BuildRecipeParallelContext(ctx context.Context, m *amr.Mesh, layout Layout, curveName string, workers int) (*Recipe, error) {
	return buildRecipeParallel(ctx, m, layout, curveName, workers, nil)
}

func buildRecipeParallel(ctx context.Context, m *amr.Mesh, layout Layout, curveName string, workers int, met *recipeMetrics) (*Recipe, error) {
	bctx, err := newBuildContext(m, curveName, met)
	if err != nil {
		return nil, err
	}
	n := m.NumBlocks() * bctx.cpb
	perm := make([]int32, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var plan *TACPlan
	switch layout {
	case LevelOrder:
		fillIdentity(perm, workers)
	case SFCWithinLevel:
		err = bctx.buildLevelsParallel(ctx, perm, workers)
	case ZMesh, ZMeshBlock:
		err = bctx.buildTreesParallel(ctx, perm, layout, workers)
	case TAC3D:
		plan, err = bctx.buildTACParallel(ctx, perm, workers)
	case AutoLayout:
		return nil, fmt.Errorf("core: %w", ErrAutoLayout)
	default:
		return nil, fmt.Errorf("core: unknown layout %v", layout)
	}
	if err != nil {
		return nil, err
	}
	if met != nil {
		met.builds.Inc()
		met.cells.Add(int64(n))
	}
	return &Recipe{layout: layout, curve: curveName, n: n, perm: perm, tac: plan}, nil
}

// runSpans drives the bounded worker pool: jobs[i] is executed exactly once
// by some writer, each into its own span. Cancellation is observed between
// spans: once ctx is done no further span starts and the call returns
// ctx.Err(), leaving the partially-written permutation to the caller to
// discard.
func (bctx *buildContext) runSpans(ctx context.Context, numJobs, workers int, run func(w *spanWriter, job int) error) error {
	if workers > numJobs {
		workers = numJobs
	}
	if workers <= 1 {
		w, err := newSpanWriter(bctx)
		if err != nil {
			return err
		}
		for i := 0; i < numJobs; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(w, i); err != nil {
				return err
			}
		}
		return nil
	}
	writers := make([]*spanWriter, workers)
	for g := range writers {
		w, err := newSpanWriter(bctx)
		if err != nil {
			return err
		}
		writers[g] = w
	}
	jobs := make(chan int)
	errs := make([]error, numJobs)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(w *spanWriter) {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = run(w, i)
			}
		}(writers[g])
	}
dispatch:
	for i := 0; i < numJobs; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// buildTreesParallel fans the chained-tree layouts out across root trees.
func (bctx *buildContext) buildTreesParallel(ctx context.Context, perm []int32, layout Layout, workers int) error {
	roots, err := bctx.sortedRootsFast()
	if err != nil {
		return err
	}
	t0 := bctx.met.now()
	spans := make([][]int32, len(roots))
	off := 0
	for i, id := range roots {
		cells := bctx.subtreeBlocks(id) * bctx.cpb
		spans[i] = perm[off : off+cells]
		off += cells
	}
	if off != len(perm) {
		return fmt.Errorf("core: root spans cover %d of %d cells", off, len(perm))
	}
	if bctx.met != nil {
		bctx.met.setup.Since(t0)
	}
	return bctx.runSpans(ctx, len(roots), workers, func(w *spanWriter, i int) error {
		return w.runTree(layout, roots[i], spans[i])
	})
}

// buildLevelsParallel fans the within-level SFC layout out across levels.
func (bctx *buildContext) buildLevelsParallel(ctx context.Context, perm []int32, workers int) error {
	spans := make([][]int32, len(bctx.levels))
	off := 0
	for l, ids := range bctx.levels {
		size := len(ids) * bctx.cpb
		spans[l] = perm[off : off+size]
		off += size
	}
	if off != len(perm) {
		return fmt.Errorf("core: level spans cover %d of %d cells", off, len(perm))
	}
	return bctx.runSpans(ctx, len(spans), workers, func(w *spanWriter, l int) error {
		return w.runLevel(l, spans[l])
	})
}

// fillIdentity writes the identity permutation, chunked across workers for
// large meshes.
func fillIdentity(perm []int32, workers int) {
	n := len(perm)
	if workers <= 1 || n < 1<<15 {
		for p := range perm {
			perm[p] = int32(p)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for c0 := 0; c0 < n; c0 += chunk {
		c1 := c0 + chunk
		if c1 > n {
			c1 = n
		}
		wg.Add(1)
		go func(c0, c1 int) {
			defer wg.Done()
			for p := c0; p < c1; p++ {
				perm[p] = int32(p)
			}
		}(c0, c1)
	}
	wg.Wait()
}
