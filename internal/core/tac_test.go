package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/amr"
)

// tacTestMeshes is the mesh zoo the TAC-specific tests run over: random
// refinement (ragged frontiers, partially-filled boxes) and ring/spherical
// fronts (the shock pattern TAC targets), in 2-D and 3-D.
func tacTestMeshes(t testing.TB) map[string]*amr.Mesh {
	t.Helper()
	return map[string]*amr.Mesh{
		"random2d": randomMesh(t, 101, 2),
		"random3d": randomMesh(t, 202, 3),
		"ring2d":   ringMesh(t, 2, 3),
		"ring3d":   ringMesh(t, 3, 3),
	}
}

// The TAC differential oracle: the grid-based parallel partition must
// reproduce the map-based serial reference bit for bit — the permutation
// (already covered layout-generically by TestParallelBuildMatchesSerial) AND
// the plan: box extents, fill masks, cell counts, order. Any worker count
// must yield the identical plan.
func TestTACPlanMatchesSerial(t *testing.T) {
	for name, m := range tacTestMeshes(t) {
		want, err := BuildRecipeSerial(m, TAC3D, "hilbert")
		if err != nil {
			t.Fatalf("%s: serial: %v", name, err)
		}
		if want.TACPlan() == nil || len(want.TACPlan().Boxes) == 0 {
			t.Fatalf("%s: serial recipe has no plan", name)
		}
		for _, workers := range []int{0, 1, 3} {
			got, err := BuildRecipeParallel(m, TAC3D, "hilbert", workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			gp, wp := got.TACPlan(), want.TACPlan()
			if len(gp.Boxes) != len(wp.Boxes) {
				t.Fatalf("%s workers=%d: %d boxes, want %d", name, workers, len(gp.Boxes), len(wp.Boxes))
			}
			for i := range wp.Boxes {
				if !reflect.DeepEqual(gp.Boxes[i], wp.Boxes[i]) {
					t.Fatalf("%s workers=%d: box %d differs:\n got %+v\nwant %+v",
						name, workers, i, gp.Boxes[i], wp.Boxes[i])
				}
			}
			for i := range want.Perm() {
				if got.Perm()[i] != want.Perm()[i] {
					t.Fatalf("%s workers=%d: perm differs at %d", name, workers, i)
				}
			}
		}
	}
}

// Structural invariants of every TAC plan, checked against the partition
// spec: box sides within the cap, cell dims consistent with block extents,
// mask popcount consistent with NumCells, the fill threshold respected, and
// the boxes' real cells summing to exactly the mesh's cell count with the
// permutation grouped box by box.
func TestTACPlanInvariants(t *testing.T) {
	for name, m := range tacTestMeshes(t) {
		r, err := BuildRecipe(m, TAC3D, "hilbert")
		if err != nil {
			t.Fatal(err)
		}
		plan := r.TACPlan()
		if plan == nil {
			t.Fatalf("%s: no plan on TAC recipe", name)
		}
		bs := m.BlockSize()
		maxSide := tacMaxSideBlocks(bs)
		total, lastLevel := 0, 0
		for i, box := range plan.Boxes {
			if box.Level < lastLevel {
				t.Fatalf("%s: box %d level %d after level %d", name, i, box.Level, lastLevel)
			}
			lastLevel = box.Level
			for d := 0; d < 3; d++ {
				if box.Size[d] < 1 || box.Size[d] > maxSide {
					t.Fatalf("%s: box %d side %d = %d blocks (cap %d)", name, i, d, box.Size[d], maxSide)
				}
			}
			wantCD := [3]int{box.Size[0] * bs, box.Size[1] * bs, 1}
			if m.Dims() == 3 {
				wantCD[2] = box.Size[2] * bs
			}
			if box.CellDims != wantCD {
				t.Fatalf("%s: box %d cell dims %v, want %v", name, i, box.CellDims, wantCD)
			}
			if box.NumCells < 1 {
				t.Fatalf("%s: box %d holds no real cells", name, i)
			}
			// The greedy growth never dilutes a box below the fill floor.
			if box.NumCells*tacMinFillDen < box.Volume()*tacMinFillNum {
				t.Fatalf("%s: box %d fill %d/%d below %d/%d",
					name, i, box.NumCells, box.Volume(), tacMinFillNum, tacMinFillDen)
			}
			count := 0
			for idx := 0; idx < box.Volume(); idx++ {
				if box.Present(idx) {
					count++
				}
			}
			if count != box.NumCells {
				t.Fatalf("%s: box %d mask popcount %d, NumCells %d", name, i, count, box.NumCells)
			}
			if box.Mask != nil && len(box.Mask) != maskWords(box.Volume()) {
				t.Fatalf("%s: box %d mask is %d words, want %d",
					name, i, len(box.Mask), maskWords(box.Volume()))
			}
			total += box.NumCells
		}
		if total != r.Len() {
			t.Fatalf("%s: boxes hold %d cells, mesh has %d", name, total, r.Len())
		}
		// Box-by-box grouping: the cells of one box must all come from its
		// level's slice of the level-order stream.
		levelStart := make([]int32, m.MaxLevel()+2)
		pos := int32(0)
		for level := 0; level <= m.MaxLevel(); level++ {
			levelStart[level] = pos
			pos += int32(len(m.SortedLevel(level)) * m.CellsPerBlock())
		}
		levelStart[m.MaxLevel()+1] = pos
		off := 0
		for i, box := range plan.Boxes {
			for _, s := range r.Perm()[off : off+box.NumCells] {
				if s < levelStart[box.Level] || s >= levelStart[box.Level+1] {
					t.Fatalf("%s: box %d (level %d) emits level-order position %d outside its level",
						name, i, box.Level, s)
				}
			}
			off += box.NumCells
		}
	}
}

// Non-TAC recipes carry no plan; the accessor must be nil for them.
func TestTACPlanNilForOtherLayouts(t *testing.T) {
	m := randomMesh(t, 5, 2)
	for _, layout := range []Layout{LevelOrder, SFCWithinLevel, ZMesh, ZMeshBlock} {
		r, err := BuildRecipe(m, layout, "hilbert")
		if err != nil {
			t.Fatal(err)
		}
		if r.TACPlan() != nil {
			t.Fatalf("%v recipe carries a TAC plan", layout)
		}
	}
}

// AutoLayout is a pseudo-layout: both builders must refuse it with
// ErrAutoLayout, and its name must round-trip through ParseLayout so wire
// parameters can request it.
func TestAutoLayoutRejectedByBuilders(t *testing.T) {
	m := randomMesh(t, 9, 2)
	if _, err := BuildRecipeSerial(m, AutoLayout, "hilbert"); !errors.Is(err, ErrAutoLayout) {
		t.Fatalf("serial builder: got %v, want ErrAutoLayout", err)
	}
	if _, err := BuildRecipeParallel(m, AutoLayout, "hilbert", 2); !errors.Is(err, ErrAutoLayout) {
		t.Fatalf("parallel builder: got %v, want ErrAutoLayout", err)
	}
	got, err := ParseLayout(AutoLayout.String())
	if err != nil || got != AutoLayout {
		t.Fatalf("auto name round trip: %v %v", got, err)
	}
}

// FuzzTACPlanDifferential drives the plan differential from fuzzed
// (seed, dims) mesh shapes, letting the fuzzer search for refinement
// patterns where the grid-based parallel partition and the map-based serial
// reference disagree — the same role FuzzKernelDifferential plays for the
// gather/scatter kernels.
func FuzzTACPlanDifferential(f *testing.F) {
	f.Add(int64(1), false)
	f.Add(int64(2), true)
	f.Add(int64(101), false)
	f.Add(int64(202), true)
	f.Fuzz(func(t *testing.T, seed int64, threeD bool) {
		dims := 2
		if threeD {
			dims = 3
		}
		m := randomMesh(t, seed, dims)
		want, err := BuildRecipeSerial(m, TAC3D, "hilbert")
		if err != nil {
			t.Fatalf("serial: %v", err)
		}
		got, err := BuildRecipeParallel(m, TAC3D, "hilbert", 3)
		if err != nil {
			t.Fatalf("parallel: %v", err)
		}
		gp, wp := got.TACPlan(), want.TACPlan()
		if len(gp.Boxes) != len(wp.Boxes) {
			t.Fatalf("%d boxes, want %d", len(gp.Boxes), len(wp.Boxes))
		}
		for i := range wp.Boxes {
			if !reflect.DeepEqual(gp.Boxes[i], wp.Boxes[i]) {
				t.Fatalf("box %d differs:\n got %+v\nwant %+v", i, gp.Boxes[i], wp.Boxes[i])
			}
		}
		for i := range want.Perm() {
			if got.Perm()[i] != want.Perm()[i] {
				t.Fatalf("perm differs at %d", i)
			}
		}
	})
}
