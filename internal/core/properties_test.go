package core

import (
	"testing"

	"repro/internal/amr"
)

// cellMeta decodes a stream position back to (level, global coords).
func cellMeta(m *amr.Mesh) []struct {
	level int
	coord [3]uint32
} {
	bs := m.BlockSize()
	kmax := 1
	if m.Dims() == 3 {
		kmax = bs
	}
	out := make([]struct {
		level int
		coord [3]uint32
	}, 0, m.NumBlocks()*m.CellsPerBlock())
	for level := 0; level <= m.MaxLevel(); level++ {
		for _, id := range m.SortedLevel(level) {
			for k := 0; k < kmax; k++ {
				for j := 0; j < bs; j++ {
					for i := 0; i < bs; i++ {
						out = append(out, struct {
							level int
							coord [3]uint32
						}{level, m.GlobalCellCoord(id, i, j, k)})
					}
				}
			}
		}
	}
	return out
}

// SFCWithinLevel must keep levels contiguous and in ascending order.
func TestSFCWithinLevelKeepsLevelsSeparate(t *testing.T) {
	m := randomMesh(t, 31, 2)
	r, err := BuildRecipe(m, SFCWithinLevel, "hilbert")
	if err != nil {
		t.Fatal(err)
	}
	info := cellMeta(m)
	prevLevel := -1
	for _, s := range r.Perm() {
		l := info[s].level
		if l < prevLevel {
			t.Fatalf("level %d after level %d: levels interleaved", l, prevLevel)
		}
		prevLevel = l
	}
}

// Within one level, the Hilbert within-level order must visit cells so
// consecutive same-level cells are lattice neighbours (the curve is
// continuous over the subset only where the subset is contiguous, so test
// on an unrefined mesh where the full lattice is present).
func TestSFCWithinLevelHilbertContinuityUniform(t *testing.T) {
	m, err := amr.NewMesh(2, 4, [3]int{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := BuildRecipe(m, SFCWithinLevel, "hilbert")
	if err != nil {
		t.Fatal(err)
	}
	info := cellMeta(m)
	perm := r.Perm()
	for i := 1; i < len(perm); i++ {
		a := info[perm[i-1]].coord
		b := info[perm[i]].coord
		d := 0
		for k := 0; k < 2; k++ {
			if a[k] > b[k] {
				d += int(a[k] - b[k])
			} else {
				d += int(b[k] - a[k])
			}
		}
		if d != 1 {
			t.Fatalf("step %d: %v -> %v not a lattice neighbour", i, a, b)
		}
	}
}

// ZMeshBlock must emit whole blocks contiguously, with a parent block's
// cells immediately before its first child's cells.
func TestZMeshBlockContiguity(t *testing.T) {
	m := randomMesh(t, 37, 2)
	r, err := BuildRecipe(m, ZMeshBlock, "morton")
	if err != nil {
		t.Fatal(err)
	}
	cpb := m.CellsPerBlock()
	perm := r.Perm()
	if len(perm)%cpb != 0 {
		t.Fatal("stream not block aligned")
	}
	// Block base positions in the level-order stream are multiples of cpb;
	// verify each cpb-run of the zMesh stream stays within one source block.
	for b := 0; b < len(perm)/cpb; b++ {
		base := perm[b*cpb] / int32(cpb)
		for o := 1; o < cpb; o++ {
			if perm[b*cpb+o]/int32(cpb) != base {
				t.Fatalf("run %d mixes source blocks", b)
			}
		}
	}
}

// All layouts must agree on a single-block mesh (only one possible order
// up to within-block curve order differences: compare against themselves
// through apply/restore only).
func TestDegenerateSingleBlockMesh(t *testing.T) {
	m, err := amr.NewMesh(2, 2, [3]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range allLayouts() {
		r, err := BuildRecipe(m, layout, "hilbert")
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if r.Len() != 4 {
			t.Fatalf("%v: len %d", layout, r.Len())
		}
		data := []float64{1, 2, 3, 4}
		ordered, err := r.Apply(data)
		if err != nil {
			t.Fatal(err)
		}
		back, err := r.Restore(ordered)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if back[i] != data[i] {
				t.Fatalf("%v: round trip broke", layout)
			}
		}
	}
}

// Rectangular root grids (non-square domains) must work for every layout.
func TestRectangularRootGrid(t *testing.T) {
	m, err := amr.NewMesh(2, 4, [3]int{5, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Refine(m.Roots()[3]); err != nil {
		t.Fatal(err)
	}
	n := m.NumBlocks() * m.CellsPerBlock()
	for _, layout := range allLayouts() {
		for _, curve := range []string{"morton", "hilbert"} {
			r, err := BuildRecipe(m, layout, curve)
			if err != nil {
				t.Fatalf("%v/%s: %v", layout, curve, err)
			}
			seen := make([]bool, n)
			for _, s := range r.Perm() {
				if seen[s] {
					t.Fatalf("%v/%s: duplicate position", layout, curve)
				}
				seen[s] = true
			}
		}
	}
}

// The zMesh order of a deeper mesh must embed the order of geometry shared
// with a shallower mesh? Too strong; instead check determinism: building
// the same recipe twice yields identical permutations.
func TestRecipeDeterminism(t *testing.T) {
	m := randomMesh(t, 41, 3)
	a, err := BuildRecipe(m, ZMesh, "hilbert")
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildRecipe(m, ZMesh, "hilbert")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Perm() {
		if a.Perm()[i] != b.Perm()[i] {
			t.Fatalf("recipes differ at %d", i)
		}
	}
}
