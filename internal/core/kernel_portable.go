//go:build zmesh_portable

package core

// Portable kernel selection: with -tags zmesh_portable the tuned-but-safe
// blocked kernels stand in for the unsafe ones. Everything else — the
// per-recipe range validation, the serial fallback, the differential tests —
// is identical, so the tag only trades the last increment of speed for a
// build with no unsafe imports on the hot path.

// kernelUnsafe reports which kernel flavor this binary runs.
const kernelUnsafe = false

func applyGather(dst, src []float64, perm []int32) {
	applyGatherBlocked(dst, src, perm)
}

func restoreScatter(dst, src []float64, perm []int32) {
	restoreScatterBlocked(dst, src, perm)
}
