package core

// TAC-style adaptive 3D block layout (TAC3D). The zMesh layouts flatten the
// AMR hierarchy into one 1-D stream; the TAC/TAC+ line of work instead
// partitions each refinement level into compact rectangular boxes on the
// level's block lattice and compresses every box as a dense 2D/3D array, so
// a dims-aware predictor sees real spatial neighborhoods instead of a
// linearized walk. The layout half of that idea lives here: a deterministic
// greedy partition of every level into boxes, and a Recipe that serializes
// the field box by box in 3D-local row-major order.
//
// Partition spec (both builders implement exactly this, independently):
//
//   - Each level is partitioned separately, on its block lattice
//     (levelBlockDims). Boxes never cross levels.
//   - maxSide = max(1, tacTargetSideCells / blockSize) bounds every box side
//     in blocks, so a box holds at most tacTargetSideCells cells per axis.
//   - The level's occupied lattice coordinates are scanned in row-major
//     (z, y, x) order — the SortedLevel order. Each still-unassigned
//     occupied coordinate seeds a 1×1×1 box, which then grows greedily:
//     rounds of +x, +y, +z one-slab extensions (in that fixed order) repeat
//     until no direction extends. An extension is accepted iff the box side
//     stays within maxSide and the lattice, the new slab contains at least
//     one occupied unassigned block, and the grown box keeps
//     claimed/volume >= tacMinFillNum/tacMinFillDen (integer arithmetic, no
//     float determinism questions).
//   - A finalized box claims every occupied unassigned block inside its
//     extent. Boxes are emitted in creation order; within a box, cells run
//     in local row-major order (x fastest) over the box's cell lattice, and
//     a cell is emitted iff its containing block is claimed by this box —
//     the box's fill mask. Every block of the level is claimed by exactly
//     one box, so the concatenation of all boxes is a bijection over the
//     level's cells and the whole permutation remains a pure function of
//     topology: payloads still carry no permutation bytes.
//
// Partially-filled boxes are the "padded" part of the scheme: the plan's
// per-box fill mask tells the frame encoder (package zmesh) which positions
// of the dense padded array are real cells and which are padding, and the
// mask itself is rebuilt from topology at decode time, never stored.

import (
	"math/bits"

	"repro/internal/amr"
)

// TAC partition tuning. These are part of the layout definition: changing
// them changes every TAC permutation, so they are constants, not options.
const (
	// tacTargetSideCells caps a box side in cells; the side cap in blocks is
	// max(1, tacTargetSideCells/blockSize).
	tacTargetSideCells = 32
	// tacMinFillNum/tacMinFillDen is the minimum fraction of a box's block
	// volume that must be occupied by blocks the box claims (1/2): growth
	// that would dilute a box below half-full is rejected, which is what
	// keeps boxes "compact" on ragged refinement frontiers.
	tacMinFillNum = 1
	tacMinFillDen = 2
)

// tacMaxSideBlocks is the box side cap in blocks for a given block size.
func tacMaxSideBlocks(blockSize int) int {
	side := tacTargetSideCells / blockSize
	if side < 1 {
		side = 1
	}
	return side
}

// TACBox is one box of a TAC plan: a rectangle of whole blocks on one
// level's block lattice, plus the fill mask selecting which cells of the
// dense box are real.
type TACBox struct {
	// Level is the refinement level the box lives on.
	Level int
	// Min and Size locate the box on the level's block lattice, in blocks.
	// Size[2] is 1 on 2-D meshes.
	Min, Size [3]int
	// CellDims are the box's dense cell dimensions ({dx, dy, dz}, dz = 1 on
	// 2-D meshes): Size scaled by the mesh block size.
	CellDims [3]int
	// NumCells counts the real cells (mask popcount).
	NumCells int
	// Mask is the fill mask: bit b set means the cell at row-major index b
	// (x fastest, then y, then z) of the dense box is a real cell. A nil
	// mask means the box is fully dense (NumCells == Volume()).
	Mask []uint64
}

// Volume is the dense cell count of the box, padding included.
func (b *TACBox) Volume() int { return b.CellDims[0] * b.CellDims[1] * b.CellDims[2] }

// Present reports whether the cell at row-major index idx is real.
func (b *TACBox) Present(idx int) bool {
	if b.Mask == nil {
		return true
	}
	return b.Mask[idx>>6]&(1<<(uint(idx)&63)) != 0
}

// TACPlan is the full box decomposition of a mesh: every level's boxes in
// level order, boxes in creation order within a level. Like the Recipe it
// belongs to, a plan is a pure function of the mesh topology.
type TACPlan struct {
	Boxes []TACBox
}

// NumBoxes reports the number of boxes in the plan.
func (p *TACPlan) NumBoxes() int { return len(p.Boxes) }

// TACPlan exposes the box decomposition of a TAC3D recipe (nil for every
// other layout). The zmesh frame encoder uses it to build the dense padded
// per-box arrays; callers must not modify it.
func (r *Recipe) TACPlan() *TACPlan { return r.tac }

// maskWords is the uint64 word count of a fill mask over volume cells.
func maskWords(volume int) int { return (volume + 63) / 64 }

// finalizeMask drops a fully-dense mask (every Present query short-circuits)
// and returns the popcount either way.
func finalizeMask(mask []uint64, volume int) ([]uint64, int) {
	n := 0
	for _, w := range mask {
		n += bits.OnesCount64(w)
	}
	if n == volume {
		return nil, n
	}
	return mask, n
}

// ---------------------------------------------------------------------------
// Serial reference implementation (map-based). Mirrors the BuildRecipeSerial
// discipline: shares no occupancy, growth, or emission code with the
// parallel builder in tac_parallel.go, so bit-for-bit equality of both the
// permutation and the plan between the two is a meaningful differential.

// buildTAC runs the serial TAC partition and emission, returning the plan.
func (b *builder) buildTAC() (*TACPlan, error) {
	m := b.m
	maxSide := tacMaxSideBlocks(b.bs)
	plan := &TACPlan{}
	for level := 0; level <= m.MaxLevel(); level++ {
		ids := m.SortedLevel(level)
		if len(ids) == 0 {
			continue
		}
		bd := m.LevelCellDims(level)
		for d := 0; d < m.Dims(); d++ {
			bd[d] /= b.bs
		}
		if m.Dims() == 2 {
			bd[2] = 1
		}
		// Occupancy and ownership maps over the level's block lattice.
		occ := make(map[[3]int]amr.BlockID, len(ids))
		owner := make(map[[3]int]int, len(ids))
		for _, id := range ids {
			c := m.Block(id).Coord
			occ[[3]int{c[0], c[1], c[2]}] = id
		}
		for _, seed := range ids {
			sc := m.Block(seed).Coord
			if _, taken := owner[sc]; taken {
				continue
			}
			min, size := sc, [3]int{1, 1, 1}
			claimed := 1
			// Greedy growth: rounds of +x/+y/+z slab extensions.
			for {
				extended := false
				for d := 0; d < m.Dims(); d++ {
					if size[d] >= maxSide || min[d]+size[d] >= bd[d] {
						continue
					}
					gain := b.slabGain(occ, owner, min, size, d)
					if gain == 0 {
						continue
					}
					grown := size
					grown[d]++
					volume := grown[0] * grown[1] * grown[2]
					if (claimed+gain)*tacMinFillDen < volume*tacMinFillNum {
						continue
					}
					size = grown
					claimed += gain
					extended = true
				}
				if !extended {
					break
				}
			}
			// Claim and emit.
			box := b.emitTACBox(occ, owner, level, min, size, len(plan.Boxes))
			plan.Boxes = append(plan.Boxes, box)
		}
	}
	return plan, nil
}

// slabGain counts the occupied, unassigned blocks in the one-slab extension
// of box (min, size) in direction d.
func (b *builder) slabGain(occ map[[3]int]amr.BlockID, owner map[[3]int]int, min, size [3]int, d int) int {
	lo, hi := min, [3]int{min[0] + size[0], min[1] + size[1], min[2] + size[2]}
	lo[d] = min[d] + size[d]
	hi[d] = lo[d] + 1
	gain := 0
	for z := lo[2]; z < hi[2]; z++ {
		for y := lo[1]; y < hi[1]; y++ {
			for x := lo[0]; x < hi[0]; x++ {
				c := [3]int{x, y, z}
				if _, ok := occ[c]; !ok {
					continue
				}
				if _, taken := owner[c]; !taken {
					gain++
				}
			}
		}
	}
	return gain
}

// emitTACBox claims the box's blocks, appends its cells to the permutation
// in local row-major order, and returns the box with its fill mask.
func (b *builder) emitTACBox(occ map[[3]int]amr.BlockID, owner map[[3]int]int, level int, min, size [3]int, boxIdx int) TACBox {
	m := b.m
	for z := min[2]; z < min[2]+size[2]; z++ {
		for y := min[1]; y < min[1]+size[1]; y++ {
			for x := min[0]; x < min[0]+size[0]; x++ {
				c := [3]int{x, y, z}
				if _, ok := occ[c]; !ok {
					continue
				}
				if _, taken := owner[c]; !taken {
					owner[c] = boxIdx
				}
			}
		}
	}
	cd := [3]int{size[0] * b.bs, size[1] * b.bs, 1}
	if m.Dims() == 3 {
		cd[2] = size[2] * b.bs
	}
	volume := cd[0] * cd[1] * cd[2]
	mask := make([]uint64, maskWords(volume))
	idx := 0
	for z := 0; z < cd[2]; z++ {
		for y := 0; y < cd[1]; y++ {
			for x := 0; x < cd[0]; x++ {
				bc := [3]int{min[0] + x/b.bs, min[1] + y/b.bs, min[2] + z/b.bs}
				if own, taken := owner[bc]; taken && own == boxIdx {
					id := occ[bc]
					b.perm = append(b.perm, b.cellPos(id, x%b.bs, y%b.bs, z%b.bs))
					mask[idx>>6] |= 1 << (uint(idx) & 63)
				}
				idx++
			}
		}
	}
	mask, n := finalizeMask(mask, volume)
	return TACBox{Level: level, Min: min, Size: size, CellDims: cd, NumCells: n, Mask: mask}
}
