package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/amr"
)

// ringMesh builds a deterministic adaptive mesh refined along a circular
// (2-D) or spherical (3-D) front crossing many root blocks — the regrid
// pattern shock-driven AMR produces, and a workload that spreads the
// chained trees across the whole root lattice.
func ringMesh(tb testing.TB, dims, depth int) *amr.Mesh {
	tb.Helper()
	rd := [3]int{4, 4, 1}
	if dims == 3 {
		rd = [3]int{2, 2, 2}
	}
	m, err := amr.NewMesh(dims, 8, rd)
	if err != nil {
		tb.Fatal(err)
	}
	for d := 0; d < depth; d++ {
		for _, id := range m.Leaves() {
			blk := m.Block(id)
			if blk.Level != d {
				continue
			}
			// Block centre and half-diagonal on the unit domain.
			ext := make([]float64, dims)
			centre := make([]float64, dims)
			diag := 0.0
			for k := 0; k < dims; k++ {
				ext[k] = 1.0 / float64(rd[k]<<uint(blk.Level))
				centre[k] = (float64(blk.Coord[k]) + 0.5) * ext[k]
				diag += ext[k] * ext[k] / 4
			}
			r := 0.0
			for k := 0; k < dims; k++ {
				dc := centre[k] - 0.5
				r += dc * dc
			}
			if math.Abs(math.Sqrt(r)-0.35) < math.Sqrt(diag) {
				if err := m.Refine(id); err != nil {
					tb.Fatal(err)
				}
			}
		}
	}
	return m
}

// The tentpole invariant: the span-based parallel builder reproduces the
// serial reference builder bit for bit — for every layout, curve,
// dimensionality and worker count.
func TestParallelBuildMatchesSerial(t *testing.T) {
	curves := []string{"morton", "hilbert", "rowmajor"}
	for _, dims := range []int{2, 3} {
		meshes := map[string]*amr.Mesh{
			"random": randomMesh(t, 1234+int64(dims), dims),
			"ring":   ringMesh(t, dims, 3),
		}
		for name, m := range meshes {
			for _, layout := range allLayouts() {
				for _, curve := range curves {
					want, err := BuildRecipeSerial(m, layout, curve)
					if err != nil {
						t.Fatalf("serial dims=%d %s %v/%s: %v", dims, name, layout, curve, err)
					}
					for _, workers := range []int{0, 1, 3} {
						got, err := BuildRecipeParallel(m, layout, curve, workers)
						if err != nil {
							t.Fatalf("parallel dims=%d %s %v/%s workers=%d: %v",
								dims, name, layout, curve, workers, err)
						}
						if got.Len() != want.Len() {
							t.Fatalf("dims=%d %s %v/%s workers=%d: len %d, want %d",
								dims, name, layout, curve, workers, got.Len(), want.Len())
						}
						for i := range want.Perm() {
							if got.Perm()[i] != want.Perm()[i] {
								t.Fatalf("dims=%d %s %v/%s workers=%d: perm differs at %d: %d != %d",
									dims, name, layout, curve, workers, i, got.Perm()[i], want.Perm()[i])
							}
						}
					}
				}
			}
		}
	}
}

// Concurrent recipe builds sharing one mesh must be race-free: the builder
// only reads the topology. Run under -race.
func TestConcurrentBuildsShareMesh(t *testing.T) {
	m := randomMesh(t, 77, 2)
	n := m.NumBlocks() * m.CellsPerBlock()
	curves := []string{"morton", "hilbert", "rowmajor"}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			layout := allLayouts()[g%len(allLayouts())]
			curve := curves[g%len(curves)]
			r, err := BuildRecipe(m, layout, curve)
			if err != nil {
				errs <- err
				return
			}
			seen := make([]bool, n)
			for _, s := range r.Perm() {
				if s < 0 || int(s) >= n || seen[s] {
					errs <- fmt.Errorf("%v/%s: invalid permutation", layout, curve)
					return
				}
				seen[s] = true
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// The radix sort must agree with the comparator sort, including on
// duplicate keys (where stability carries the pos tie-break).
func TestRadixSortMatchesComparator(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := [][]orderEntry{
		nil,
		{{key: 3, pos: 0}},
	}
	// Random keys with varying spreads; pos ascending as builders emit them.
	for _, mask := range []uint64{0xff, 0xffff, 1<<62 - 1, ^uint64(0), 0x7} {
		entries := make([]orderEntry, 500)
		for i := range entries {
			entries[i] = orderEntry{key: rng.Uint64() & mask, pos: int32(i)}
		}
		cases = append(cases, entries)
	}
	// All-equal keys, already sorted, and reverse sorted.
	eq := make([]orderEntry, 100)
	asc := make([]orderEntry, 100)
	desc := make([]orderEntry, 100)
	for i := range eq {
		eq[i] = orderEntry{key: 42, pos: int32(i)}
		asc[i] = orderEntry{key: uint64(i) << 33, pos: int32(i)}
		desc[i] = orderEntry{key: uint64(len(desc) - i), pos: int32(i)}
	}
	cases = append(cases, eq, asc, desc)

	for ci, entries := range cases {
		want := append([]orderEntry(nil), entries...)
		sort.Slice(want, func(a, b int) bool {
			if want[a].key != want[b].key {
				return want[a].key < want[b].key
			}
			return want[a].pos < want[b].pos
		})
		got := append([]orderEntry(nil), entries...)
		scratch := make([]orderEntry, len(got))
		radixSortEntries(got, scratch)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("case %d: index %d: got %+v, want %+v", ci, i, got[i], want[i])
			}
		}
	}
}

// The int32 position-space guard: boundary arithmetic only, no giant
// allocations.
func TestCheckMeshSizeBoundary(t *testing.T) {
	const cpb = 16 // blockSize 4, 2-D
	limit := MaxCells / cpb
	if err := CheckMeshSize(limit, cpb); err != nil {
		t.Fatalf("%d blocks of %d cells rejected: %v", limit, cpb, err)
	}
	if err := CheckMeshSize(limit+1, cpb); err == nil {
		t.Fatalf("%d blocks of %d cells accepted (positions would wrap int32)", limit+1, cpb)
	}
	if err := CheckMeshSize(-1, cpb); err == nil {
		t.Fatal("negative block count accepted")
	}
	if err := CheckMeshSize(1, 0); err == nil {
		t.Fatal("zero cells per block accepted")
	}
}

// ApplyTo/RestoreTo must match Apply/Restore, reuse caller buffers, and
// reject aliasing destinations.
func TestApplyRestoreTo(t *testing.T) {
	m := randomMesh(t, 13, 2)
	r, err := BuildRecipe(m, ZMesh, "hilbert")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	flat := make([]float64, r.Len())
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	want, err := r.Apply(flat)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, r.Len())
	got, err := r.ApplyTo(buf, flat)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[0] {
		t.Fatal("ApplyTo did not reuse the caller buffer")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ApplyTo differs at %d", i)
		}
	}
	back, err := r.RestoreTo(make([]float64, 0, r.Len()), got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flat {
		if back[i] != flat[i] {
			t.Fatalf("RestoreTo differs at %d", i)
		}
	}
	// Short buffers are grown, not written out of bounds.
	small := make([]float64, 3)
	grown, err := r.ApplyTo(small, flat)
	if err != nil {
		t.Fatal(err)
	}
	if len(grown) != r.Len() {
		t.Fatalf("ApplyTo returned %d values, want %d", len(grown), r.Len())
	}
	// In-place permutation is impossible; aliasing must be rejected.
	if _, err := r.ApplyTo(flat, flat); err == nil {
		t.Fatal("aliasing destination accepted")
	}
	if _, err := r.RestoreTo(got, got); err == nil {
		t.Fatal("aliasing destination accepted")
	}
}
