package core

// Permutation kernels behind Recipe.ApplyTo and Recipe.RestoreTo.
//
// A recipe application is a pure permutation: Apply gathers, dst[t] =
// src[perm[t]]; Restore scatters, dst[perm[t]] = src[t]. The straightforward
// range loops pay a bounds check per random index, and the compiler cannot
// hoist it because it cannot prove perm's entries are in range. Two tuned
// tiers remove that cost:
//
//   - The portable blocked kernels below re-slice each fixed-size block of
//     perm and of the sequential-side stream once, so sequential accesses
//     inside a block carry no per-element checks, and unroll the inner loop
//     so the index loads separate from the value moves. Only the random-side
//     access still pays its check.
//   - The unsafe kernels (kernel_unsafe.go, default build) drop blocking and
//     run every access through raw pointers, justified by a one-time
//     per-recipe validation that all perm entries lie in [0, n) — see
//     Recipe.kernelSafe. Measured on the gather: per-iteration re-slicing
//     costs more than it saves once no access needs a check.
//
// core.go keeps the original loops as ApplyToSerial/RestoreToSerial: they
// are the differential oracle (mirroring BuildRecipeSerial) and the speedup
// baseline the CI gate measures against.
const kernelBlock = 1024

// applyGatherBlocked is the portable tuned gather: cache-blocked with the
// per-block destination re-sliced (no dst bounds checks) and a 4-way unroll.
// Compiled on every platform; the unsafe build dispatches applyGather from
// kernel_unsafe.go instead.
func applyGatherBlocked(dst, src []float64, perm []int32) {
	n := len(perm)
	for base := 0; base < n; base += kernelBlock {
		end := base + kernelBlock
		if end > n {
			end = n
		}
		p := perm[base:end:end]
		d := dst[base:end:end]
		i := 0
		for ; i+4 <= len(p); i += 4 {
			s0, s1, s2, s3 := p[i], p[i+1], p[i+2], p[i+3]
			v0, v1 := src[s0], src[s1]
			v2, v3 := src[s2], src[s3]
			d[i], d[i+1], d[i+2], d[i+3] = v0, v1, v2, v3
		}
		for ; i < len(p); i++ {
			d[i] = src[p[i]]
		}
	}
}

// restoreScatterBlocked is the portable tuned scatter: the per-block source
// and permutation slices are re-sliced (no sequential-side checks) with a
// 4-way unroll; only the scattered store still pays its bounds check.
func restoreScatterBlocked(dst, src []float64, perm []int32) {
	n := len(perm)
	for base := 0; base < n; base += kernelBlock {
		end := base + kernelBlock
		if end > n {
			end = n
		}
		p := perm[base:end:end]
		s := src[base:end:end]
		i := 0
		for ; i+4 <= len(p); i += 4 {
			t0, t1, t2, t3 := p[i], p[i+1], p[i+2], p[i+3]
			v0, v1 := s[i], s[i+1]
			v2, v3 := s[i+2], s[i+3]
			dst[t0], dst[t1], dst[t2], dst[t3] = v0, v1, v2, v3
		}
		for ; i < len(p); i++ {
			dst[p[i]] = s[i]
		}
	}
}
