package core

// LSD radix sort for orderEntry slices, replacing the comparison sort on the
// recipe-construction hot path. Curve keys are uint64, so eight stable
// byte-wide passes suffice; passes whose byte is constant across the input
// (the common case — keys use only 2*cbits or 3*cbits low bits) are skipped
// after a counting scan. Stability plus the fact that builders generate
// entries in ascending pos order means equal keys keep their pos order,
// matching the comparator's explicit pos tie-break exactly.

// radixThreshold is the size below which a binary insertion-free simple sort
// beats the counting passes.
const radixThreshold = 48

// radixSortEntries sorts entries in place by key ascending (stable). scratch
// must be at least len(entries) long; it is used as the ping-pong buffer so
// repeated sorts (one per level or per tree) allocate nothing.
func radixSortEntries(entries, scratch []orderEntry) {
	n := len(entries)
	if n < 2 {
		return
	}
	if n < radixThreshold {
		insertionSortEntries(entries)
		return
	}
	src, dst := entries, scratch[:n]
	inSrc := true // does src alias entries?
	var counts [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for i := range src {
			counts[byte(src[i].key>>shift)]++
		}
		if counts[byte(src[0].key>>shift)] == n {
			continue // whole input shares this byte: pass is the identity
		}
		sum := 0
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for i := range src {
			b := byte(src[i].key >> shift)
			dst[counts[b]] = src[i]
			counts[b]++
		}
		src, dst = dst, src
		inSrc = !inSrc
	}
	if !inSrc {
		copy(entries, src)
	}
}

// insertionSortEntries is the small-input fallback: stable, in place.
func insertionSortEntries(entries []orderEntry) {
	for i := 1; i < len(entries); i++ {
		e := entries[i]
		j := i - 1
		for j >= 0 && entries[j].key > e.key {
			entries[j+1] = entries[j]
			j--
		}
		entries[j+1] = e
	}
}
