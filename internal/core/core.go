// Package core implements zMesh, the paper's contribution: a level
// reordering for block-structured AMR data that groups points mapped to the
// same or adjacent geometric coordinates so the serialized stream is
// smoother and therefore more compressible by error-bounded lossy
// compressors.
//
// The reordering is described by a Recipe — a permutation between the
// application's native level-by-level layout and the zMesh layout. The
// recipe is a pure function of the mesh topology (the "chained tree"): it is
// rebuilt identically at decompression time from the AMR tree metadata the
// application already stores, so compressed payloads carry no permutation
// bytes at all.
package core

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/amr"
	"repro/internal/sfc"
)

// Layout selects a serialization order for an AMR field.
type Layout int

// Layouts.
const (
	// LevelOrder is the application baseline: one array per level, blocks
	// row-major within the level, cells row-major within each block.
	LevelOrder Layout = iota
	// SFCWithinLevel orders each level's cells along a space-filling curve
	// but keeps levels separate — the "Z-ordering"/"Hilbert" baseline the
	// paper compares against.
	SFCWithinLevel
	// ZMesh is the paper's chained-tree order: a per-cell depth-first
	// descent of the refinement forest that emits each coarse cell
	// immediately before the 2^dims finer cells covering exactly its
	// geometric footprint, sub-cells and siblings ordered by the curve.
	// This groups points mapped to the same or adjacent coordinates.
	ZMesh
	// ZMeshBlock is the coarse-grained ablation variant: the chained-tree
	// descent happens per *block* — a block's cells (curve order) are
	// emitted immediately before its children's. Less same-coordinate
	// grouping, longer uniform-resolution runs.
	ZMeshBlock
	// TAC3D is the TAC-style adaptive 3D block layout: each level's blocks
	// are greedily partitioned into compact padded boxes and serialized box
	// by box in 3D-local row-major order (see tac.go). A TAC3D recipe also
	// carries the box plan (Recipe.TACPlan), which the frame encoder uses to
	// compress every box as a dense multi-dimensional array.
	TAC3D
	// AutoLayout is the per-field auto-picker pseudo-layout: the encoder
	// trial-compresses a sample of each field under the candidate layouts
	// and records the winner in the artifact, so decoders never see
	// AutoLayout on the wire. It has no permutation of its own — building a
	// recipe for it is an error.
	AutoLayout
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case LevelOrder:
		return "level"
	case SFCWithinLevel:
		return "sfc-level"
	case ZMesh:
		return "zmesh"
	case ZMeshBlock:
		return "zmesh-block"
	case TAC3D:
		return "tac"
	case AutoLayout:
		return "auto"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// ParseLayout parses a layout name as printed by String.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "level":
		return LevelOrder, nil
	case "sfc-level":
		return SFCWithinLevel, nil
	case "zmesh":
		return ZMesh, nil
	case "zmesh-block":
		return ZMeshBlock, nil
	case "tac":
		return TAC3D, nil
	case "auto":
		return AutoLayout, nil
	}
	return 0, fmt.Errorf("core: unknown layout %q", s)
}

// Recipe is the restore recipe: a bijection between the level-order stream
// and a target layout for one mesh topology.
type Recipe struct {
	layout Layout
	curve  string
	n      int
	// perm[t] is the level-order position of the value at target position t.
	perm []int32
	// tac is the box decomposition backing a TAC3D permutation (nil for
	// every other layout); see TACPlan.
	tac *TACPlan

	// Kernel-safety validation state: the tuned gather/scatter kernels elide
	// the random-side bounds check (see kernel.go), which is sound only when
	// every perm entry lies in [0, n). Builders guarantee that by
	// construction; verifyOnce re-checks it once per recipe as defense in
	// depth, and a recipe that fails is refused by ApplyTo/RestoreTo.
	verifyOnce sync.Once
	unsafeOK   bool
}

// KernelTier reports which apply/restore kernel tier this binary was built
// with: "unsafe" (the default pointer-walking kernels) or "portable"
// (`-tags zmesh_portable`, blocked kernels with no unsafe). Performance
// gates key on this — the unsafe tier's speedup floor does not bind the
// portable tier.
func KernelTier() string {
	if kernelUnsafe {
		return "unsafe"
	}
	return "portable"
}

// Layout reports the recipe's target layout.
func (r *Recipe) Layout() Layout { return r.layout }

// Curve reports the sibling-ordering curve name.
func (r *Recipe) Curve() string { return r.curve }

// Len reports the number of points the recipe permutes.
func (r *Recipe) Len() int { return r.n }

// Perm exposes the raw permutation (target position → level-order
// position) for inspection; callers must not modify it.
func (r *Recipe) Perm() []int32 { return r.perm }

// Apply reorders a level-order stream into the recipe's layout.
func (r *Recipe) Apply(flat []float64) ([]float64, error) {
	return r.ApplyTo(nil, flat)
}

// ApplyTo is Apply with a caller-provided destination: dst is reused when its
// capacity suffices and allocated otherwise, so hot loops (worker pools,
// temporal streams) permute without a fresh slice per call. dst must not
// overlap flat.
//
// The permutation runs through the tuned gather kernel (kernel.go):
// bit-for-bit identical to ApplyToSerial, just faster.
func (r *Recipe) ApplyTo(dst, flat []float64) ([]float64, error) {
	if len(flat) != r.n {
		return nil, fmt.Errorf("core: stream has %d values, recipe expects %d", len(flat), r.n)
	}
	out, err := r.sizeDst(dst, flat)
	if err != nil {
		return nil, err
	}
	if !r.kernelSafe() {
		return nil, fmt.Errorf("core: recipe permutation has out-of-range entries")
	}
	applyGather(out, flat, r.perm)
	return out, nil
}

// ApplyToSerial is the straightforward reference gather loop, retained (like
// BuildRecipeSerial) as the differential oracle for the blocked kernel and
// as the baseline the CI gate measures the kernel speedup against. Not on
// the hot path.
func (r *Recipe) ApplyToSerial(dst, flat []float64) ([]float64, error) {
	if len(flat) != r.n {
		return nil, fmt.Errorf("core: stream has %d values, recipe expects %d", len(flat), r.n)
	}
	out, err := r.sizeDst(dst, flat)
	if err != nil {
		return nil, err
	}
	for t, s := range r.perm {
		out[t] = flat[s]
	}
	return out, nil
}

// Restore inverts Apply.
func (r *Recipe) Restore(ordered []float64) ([]float64, error) {
	return r.RestoreTo(nil, ordered)
}

// RestoreTo is Restore with a caller-provided destination, with the same
// reuse contract as ApplyTo. dst must not overlap ordered.
//
// The permutation runs through the tuned scatter kernel (kernel.go):
// bit-for-bit identical to RestoreToSerial, just faster.
func (r *Recipe) RestoreTo(dst, ordered []float64) ([]float64, error) {
	if len(ordered) != r.n {
		return nil, fmt.Errorf("core: stream has %d values, recipe expects %d", len(ordered), r.n)
	}
	out, err := r.sizeDst(dst, ordered)
	if err != nil {
		return nil, err
	}
	if !r.kernelSafe() {
		return nil, fmt.Errorf("core: recipe permutation has out-of-range entries")
	}
	restoreScatter(out, ordered, r.perm)
	return out, nil
}

// RestoreToSerial is the straightforward reference scatter loop — the
// differential oracle and speedup baseline for the blocked kernel, mirroring
// ApplyToSerial.
func (r *Recipe) RestoreToSerial(dst, ordered []float64) ([]float64, error) {
	if len(ordered) != r.n {
		return nil, fmt.Errorf("core: stream has %d values, recipe expects %d", len(ordered), r.n)
	}
	out, err := r.sizeDst(dst, ordered)
	if err != nil {
		return nil, err
	}
	for t, s := range r.perm {
		out[s] = ordered[t]
	}
	return out, nil
}

// kernelSafe reports whether the tuned kernels may elide the random-side
// bounds check for this recipe: every perm entry must lie in [0, n). The
// scan runs once per recipe (it is O(n), far cheaper than one permutation
// pass with checks) and the result is cached; builders always produce
// in-range permutations, so a false result indicates a corrupted recipe and
// turns every ApplyTo/RestoreTo into an error instead of an out-of-bounds
// access.
func (r *Recipe) kernelSafe() bool {
	r.verifyOnce.Do(func() {
		n := int32(r.n)
		for _, s := range r.perm {
			if s < 0 || s >= n {
				return
			}
		}
		r.unsafeOK = true
	})
	return r.unsafeOK
}

// sizeDst resizes dst to the recipe length, allocating only when the
// capacity falls short, and rejects a destination that aliases the source
// (a permutation cannot be computed in place).
func (r *Recipe) sizeDst(dst, src []float64) ([]float64, error) {
	if cap(dst) < r.n {
		return make([]float64, r.n), nil
	}
	dst = dst[:r.n]
	if r.n > 0 && len(src) > 0 && &dst[0] == &src[0] {
		return nil, fmt.Errorf("core: destination buffer aliases source")
	}
	return dst, nil
}

// MaxCells is the largest cell count a recipe can address: stream positions
// are stored as int32.
const MaxCells = math.MaxInt32

// CheckMeshSize reports whether a mesh of numBlocks blocks with
// cellsPerBlock cells each fits the recipe's int32 position space. Without
// this guard the level-order position accumulation would silently wrap and
// produce a corrupt permutation.
func CheckMeshSize(numBlocks, cellsPerBlock int) error {
	if numBlocks < 0 || cellsPerBlock <= 0 {
		return fmt.Errorf("core: invalid mesh size (%d blocks, %d cells/block)", numBlocks, cellsPerBlock)
	}
	if numBlocks > MaxCells/cellsPerBlock {
		return fmt.Errorf("core: mesh too large for recipe: %d blocks of %d cells exceed %d addressable positions",
			numBlocks, cellsPerBlock, int64(MaxCells))
	}
	return nil
}

// ceilLog2 returns the smallest b with 2^b >= v (v >= 1).
func ceilLog2(v int) uint {
	if v <= 1 {
		return 0
	}
	return uint(bits.Len(uint(v - 1)))
}

// builder carries the traversal state of the serial reference
// implementation. It is retained verbatim (append-based emission, comparator
// sort) as the differential oracle for the span-based parallel builder in
// parallel.go: the two share no emission or sorting code, so bit-for-bit
// permutation equality between them is a meaningful check.
type builder struct {
	m     *amr.Mesh
	curve sfc.Curve
	// levelOffset[l] is the position of level l's first value in the
	// level-order stream; blockBase[id] the position of a block's first cell.
	blockBase []int32
	perm      []int32
	cpb       int
	bs        int
	kmax      int
}

func newBuilder(m *amr.Mesh, curveName string) (*builder, error) {
	curve, err := sfc.New(curveName, m.Dims())
	if err != nil {
		return nil, err
	}
	if err := CheckMeshSize(m.NumBlocks(), m.CellsPerBlock()); err != nil {
		return nil, err
	}
	b := &builder{
		m:     m,
		curve: curve,
		cpb:   m.CellsPerBlock(),
		bs:    m.BlockSize(),
		kmax:  1,
	}
	if m.Dims() == 3 {
		b.kmax = b.bs
	}
	// Level-order base position for every block.
	b.blockBase = make([]int32, m.NumBlocks())
	pos := int32(0)
	for level := 0; level <= m.MaxLevel(); level++ {
		for _, id := range m.SortedLevel(level) {
			b.blockBase[id] = pos
			pos += int32(b.cpb)
		}
	}
	b.perm = make([]int32, 0, pos)
	return b, nil
}

// cellPos is the level-order stream position of cell (i,j,k) of a block.
func (b *builder) cellPos(id amr.BlockID, i, j, k int) int32 {
	off := j*b.bs + i
	if b.m.Dims() == 3 {
		off = (k*b.bs+j)*b.bs + i
	}
	return b.blockBase[id] + int32(off)
}

// BuildRecipe derives the restore recipe for the given layout and sibling
// curve ("morton", "hilbert" or "rowmajor") from the mesh topology alone.
// Construction is parallel (see BuildRecipeParallel); the permutation it
// produces is bit-for-bit identical to BuildRecipeSerial's.
func BuildRecipe(m *amr.Mesh, layout Layout, curveName string) (*Recipe, error) {
	return BuildRecipeParallel(m, layout, curveName, 0)
}

// BuildRecipeSerial is the single-threaded reference builder: a recursive
// descent appending to one slice, ordering curve keys with a comparison
// sort. It exists as the differential oracle for BuildRecipeParallel and is
// not on the hot path.
func BuildRecipeSerial(m *amr.Mesh, layout Layout, curveName string) (*Recipe, error) {
	b, err := newBuilder(m, curveName)
	if err != nil {
		return nil, err
	}
	var plan *TACPlan
	switch layout {
	case LevelOrder:
		b.buildLevelOrder()
	case SFCWithinLevel:
		b.buildSFCWithinLevel()
	case ZMesh:
		b.buildZMeshCells()
	case ZMeshBlock:
		b.buildZMeshBlocks()
	case TAC3D:
		if plan, err = b.buildTAC(); err != nil {
			return nil, err
		}
	case AutoLayout:
		return nil, fmt.Errorf("core: %w", ErrAutoLayout)
	default:
		return nil, fmt.Errorf("core: unknown layout %v", layout)
	}
	n := m.NumBlocks() * m.CellsPerBlock()
	if len(b.perm) != n {
		return nil, fmt.Errorf("core: traversal emitted %d of %d cells", len(b.perm), n)
	}
	return &Recipe{layout: layout, curve: curveName, n: n, perm: b.perm, tac: plan}, nil
}

// ErrAutoLayout is returned by the recipe builders when asked for
// AutoLayout: it is not a concrete serialization order. The encoder resolves
// it to a concrete winner per field and stamps that winner into the
// artifact, so a decoder that sees "auto" is being handed a request the
// protocol never produces — callers should surface this loudly (the zmeshd
// decompress endpoints turn it into a 400).
var ErrAutoLayout = fmt.Errorf("layout \"auto\" is resolved per field at encode time and never names a concrete order; decode with the layout recorded in the artifact")

// RecipeFromStructure rebuilds the recipe from serialized AMR tree metadata
// (amr.Mesh.Structure). This is the decompression path: the permutation is
// reconstructed from topology, never read from the compressed payload.
func RecipeFromStructure(structure []byte, layout Layout, curveName string) (*Recipe, error) {
	m, err := amr.MeshFromStructure(structure)
	if err != nil {
		return nil, err
	}
	return BuildRecipe(m, layout, curveName)
}

// buildLevelOrder emits the identity permutation (useful as a uniform code
// path for the baseline).
func (b *builder) buildLevelOrder() {
	n := int32(b.m.NumBlocks() * b.cpb)
	for p := int32(0); p < n; p++ {
		b.perm = append(b.perm, p)
	}
}

// buildSFCWithinLevel orders each level's cells by the curve index of their
// global cell coordinates, levels kept separate.
func (b *builder) buildSFCWithinLevel() {
	m := b.m
	for level := 0; level <= m.MaxLevel(); level++ {
		cellDims := m.LevelCellDims(level)
		maxDim := cellDims[0]
		for d := 1; d < m.Dims(); d++ {
			if cellDims[d] > maxDim {
				maxDim = cellDims[d]
			}
		}
		cbits := ceilLog2(maxDim)
		if cbits == 0 {
			cbits = 1
		}
		blocks := m.SortedLevel(level)
		entries := make([]orderEntry, 0, len(blocks)*b.cpb)
		coords := make([]uint32, m.Dims())
		for _, id := range blocks {
			for k := 0; k < b.kmax; k++ {
				for j := 0; j < b.bs; j++ {
					for i := 0; i < b.bs; i++ {
						g := m.GlobalCellCoord(id, i, j, k)
						coords[0], coords[1] = g[0], g[1]
						if m.Dims() == 3 {
							coords[2] = g[2]
						}
						entries = append(entries, orderEntry{
							key: b.curve.Index(coords, cbits),
							pos: b.cellPos(id, i, j, k),
						})
					}
				}
			}
		}
		sortEntries(entries)
		for _, e := range entries {
			b.perm = append(b.perm, e.pos)
		}
	}
}

// sortedRoots orders the root blocks along the curve over the root lattice.
func (b *builder) sortedRoots() []amr.BlockID {
	m := b.m
	rd := m.RootDims()
	maxRoot := rd[0]
	for d := 1; d < m.Dims(); d++ {
		if rd[d] > maxRoot {
			maxRoot = rd[d]
		}
	}
	rbits := ceilLog2(maxRoot)
	if rbits == 0 {
		rbits = 1
	}
	roots := m.Roots()
	entries := make([]orderEntry, 0, len(roots))
	coords := make([]uint32, m.Dims())
	for _, id := range roots {
		c := m.Block(id).Coord
		coords[0], coords[1] = uint32(c[0]), uint32(c[1])
		if m.Dims() == 3 {
			coords[2] = uint32(c[2])
		}
		entries = append(entries, orderEntry{key: b.curve.Index(coords, rbits), pos: int32(id)})
	}
	sortEntries(entries)
	out := make([]amr.BlockID, len(entries))
	for i, e := range entries {
		out[i] = amr.BlockID(e.pos)
	}
	return out
}

// buildZMeshBlocks is the block-granularity chained tree: depth-first over
// the refinement forest, a block's cells (curve order) immediately followed
// by its children (curve order of quadrant), recursively.
func (b *builder) buildZMeshBlocks() {
	cellBits := ceilLog2(b.bs)
	if cellBits == 0 {
		cellBits = 1
	}
	for _, root := range b.sortedRoots() {
		b.emitBlockChained(root, cellBits)
	}
}

func (b *builder) emitBlockChained(id amr.BlockID, cellBits uint) {
	m := b.m
	for ci := 0; ci < b.cpb; ci++ {
		i, j, k := b.cellFromCurve(uint64(ci), cellBits)
		b.perm = append(b.perm, b.cellPos(id, i, j, k))
	}
	blk := m.Block(id)
	if blk.IsLeaf() {
		return
	}
	// Children in curve order of their quadrant/octant offset.
	nsub := 1 << uint(m.Dims())
	for s := 0; s < nsub; s++ {
		c := b.curve.Coords(uint64(s), 1)
		ord := int(c[0]) | int(c[1])<<1
		if m.Dims() == 3 {
			ord |= int(c[2]) << 2
		}
		b.emitBlockChained(blk.Children[ord], cellBits)
	}
}

// buildZMeshCells performs the chained-tree traversal at cell granularity:
// roots in curve order, and within each tree a per-cell depth-first descent
// that emits a coarse cell immediately before the 2^dims finer cells
// covering the same region, sub-cells visited in curve order.
func (b *builder) buildZMeshCells() {
	cellBits := ceilLog2(b.bs)
	if cellBits == 0 {
		cellBits = 1
	}
	for _, root := range b.sortedRoots() {
		// Visit the root block's cells in curve order, descending at each.
		for ci := 0; ci < b.cpb; ci++ {
			i, j, k := b.cellFromCurve(uint64(ci), cellBits)
			g := b.m.GlobalCellCoord(root, i, j, k)
			b.emitCell(0, g, root, i, j, k)
		}
	}
}

// cellFromCurve maps a curve index within a block to cell coordinates.
func (b *builder) cellFromCurve(idx uint64, cellBits uint) (i, j, k int) {
	c := b.curve.Coords(idx, cellBits)
	i, j = int(c[0]), int(c[1])
	if b.m.Dims() == 3 {
		k = int(c[2])
	}
	return
}

// emitCell appends the cell at (level, global coord g) — stored in block id
// at (i,j,k) — and then recursively emits the 2^dims cells of the next
// level covering the same region, in curve order, if that region is refined.
func (b *builder) emitCell(level int, g [3]uint32, id amr.BlockID, i, j, k int) {
	b.perm = append(b.perm, b.cellPos(id, i, j, k))
	// The refining cells live at level+1, coordinates 2g .. 2g+1. They exist
	// iff the child block covering them exists.
	m := b.m
	fine := [3]uint32{g[0] * 2, g[1] * 2, g[2] * 2}
	bs := b.bs
	// Child block coordinate for the first fine cell.
	bc := [3]int{int(fine[0]) / bs, int(fine[1]) / bs, int(fine[2]) / bs}
	if m.Dims() == 2 {
		bc[2] = 0
	}
	cid, ok := m.Lookup(level+1, bc)
	if !ok {
		return
	}
	// All four/eight fine cells lie in the same child block because block
	// sizes are even: a coarse cell's 2x2(x2) refinement never straddles a
	// block boundary.
	subBits := uint(1)
	nsub := 1 << uint(m.Dims())
	for s := 0; s < nsub; s++ {
		c := b.curve.Coords(uint64(s), subBits)
		fi := int(fine[0]) + int(c[0])
		fj := int(fine[1]) + int(c[1])
		fk := 0
		if m.Dims() == 3 {
			fk = int(fine[2]) + int(c[2])
		}
		gg := [3]uint32{uint32(fi), uint32(fj), uint32(fk)}
		b.emitCell(level+1, gg, cid, fi%bs, fj%bs, fk%bs)
	}
}

// orderEntry pairs a curve key with a stream position for sorting.
type orderEntry struct {
	key uint64
	pos int32
}

// sortEntries orders by key ascending with a pos tie-break, so equal curve
// indices (which cannot occur within one level, but keep it total) resolve
// deterministically. This comparator version backs only the serial reference
// builder; the hot path uses the LSD radix sort in radix.go, which yields
// the identical order (it is stable, and entries are generated in ascending
// pos order).
func sortEntries(entries []orderEntry) {
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].key != entries[b].key {
			return entries[a].key < entries[b].key
		}
		return entries[a].pos < entries[b].pos
	})
}
