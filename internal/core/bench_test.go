package core

import (
	"fmt"
	"testing"
)

// BenchmarkBuildRecipe sweeps the parallel builder over layout × curve ×
// depth on the ring-front mesh (see parallel_test.go). Compare against
// BenchmarkBuildRecipeSerial for the parallelization + radix-sort speedup;
// cmd/zmesh-bench -recipebench emits the same sweep as BENCH_recipe.json.
func BenchmarkBuildRecipe(b *testing.B) {
	for _, depth := range []int{2, 4, 5} {
		m := ringMesh(b, 2, depth)
		for _, layout := range allLayouts() {
			for _, curve := range []string{"hilbert", "morton"} {
				b.Run(fmt.Sprintf("layout=%s/curve=%s/depth=%d", layout, curve, depth), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := BuildRecipe(m, layout, curve); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkBuildRecipeSerial is the single-threaded reference baseline for
// the sweep above.
func BenchmarkBuildRecipeSerial(b *testing.B) {
	for _, depth := range []int{2, 4, 5} {
		m := ringMesh(b, 2, depth)
		for _, layout := range allLayouts() {
			for _, curve := range []string{"hilbert", "morton"} {
				b.Run(fmt.Sprintf("layout=%s/curve=%s/depth=%d", layout, curve, depth), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := BuildRecipeSerial(m, layout, curve); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkBuildRecipe3D covers the 3-D chained tree at the depth the
// acceptance experiment uses.
func BenchmarkBuildRecipe3D(b *testing.B) {
	m := ringMesh(b, 3, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildRecipe(m, ZMesh, "hilbert"); err != nil {
			b.Fatal(err)
		}
	}
}

func applyRestoreMesh(b *testing.B) (*Recipe, []float64) {
	b.Helper()
	m := ringMesh(b, 2, 4)
	r, err := BuildRecipe(m, ZMesh, "hilbert")
	if err != nil {
		b.Fatal(err)
	}
	return r, make([]float64, r.Len())
}

// BenchmarkApplyTo measures permutation throughput with a reused
// destination (the worker-pool hot path).
func BenchmarkApplyTo(b *testing.B) {
	r, flat := applyRestoreMesh(b)
	dst := make([]float64, r.Len())
	b.SetBytes(int64(len(flat) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = r.ApplyTo(dst, flat)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyToSerial is the straightforward-loop baseline for
// BenchmarkApplyTo: the ratio between the two is the kernel speedup the CI
// gate enforces (report.MeasureCIGate, apply_speedup).
func BenchmarkApplyToSerial(b *testing.B) {
	r, flat := applyRestoreMesh(b)
	dst := make([]float64, r.Len())
	b.SetBytes(int64(len(flat) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = r.ApplyToSerial(dst, flat)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestore measures the allocating restore path.
func BenchmarkRestore(b *testing.B) {
	r, flat := applyRestoreMesh(b)
	ordered, err := r.Apply(flat)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(flat) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Restore(ordered); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestoreToSerial is the straightforward-loop baseline for
// BenchmarkRestoreTo.
func BenchmarkRestoreToSerial(b *testing.B) {
	r, flat := applyRestoreMesh(b)
	ordered, err := r.Apply(flat)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, r.Len())
	b.SetBytes(int64(len(flat) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = r.RestoreToSerial(dst, ordered)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestoreTo measures restore throughput with a reused destination.
func BenchmarkRestoreTo(b *testing.B) {
	r, flat := applyRestoreMesh(b)
	ordered, err := r.Apply(flat)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, r.Len())
	b.SetBytes(int64(len(flat) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = r.RestoreTo(dst, ordered)
		if err != nil {
			b.Fatal(err)
		}
	}
}
