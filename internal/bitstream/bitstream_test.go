package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleBits(t *testing.T) {
	w := NewWriter(0)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != uint64(len(pattern)) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(pattern))
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsBoundaries(t *testing.T) {
	cases := []struct {
		v uint64
		n uint
	}{
		{0, 1}, {1, 1}, {0xff, 8}, {0x1234, 16}, {0xdeadbeef, 32},
		{0xffffffffffffffff, 64}, {1, 64}, {0, 64}, {0x7, 3}, {0x15, 5},
	}
	w := NewWriter(0)
	for _, c := range cases {
		w.WriteBits(c.v, c.n)
	}
	r := NewReader(w.Bytes())
	for i, c := range cases {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		want := c.v
		if c.n < 64 {
			want &= (1 << c.n) - 1
		}
		if got != want {
			t.Fatalf("case %d: got %#x, want %#x", i, got, want)
		}
	}
}

func TestWriteBitsMasksHighBits(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xffff, 4) // only low 4 bits should land
	w.WriteBits(0, 4)
	r := NewReader(w.Bytes())
	got, err := r.ReadBits(8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x0f {
		t.Fatalf("got %#x, want 0x0f", got)
	}
}

func TestUnary(t *testing.T) {
	w := NewWriter(0)
	vals := []uint{0, 1, 5, 13, 0, 2}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes())
	for i, want := range vals {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("val %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("val %d = %d, want %d", i, got, want)
		}
	}
}

func TestShortStream(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xab, 8)
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(8); err != ErrShortStream {
		t.Fatalf("got %v, want ErrShortStream", err)
	}
}

func TestEmptyReader(t *testing.T) {
	r := NewReader(nil)
	if _, err := r.ReadBit(); err != ErrShortStream {
		t.Fatalf("got %v, want ErrShortStream", err)
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xffff, 16)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	w.WriteBits(0x5, 3)
	r := NewReader(w.Bytes())
	got, err := r.ReadBits(3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x5 {
		t.Fatalf("got %#x, want 0x5", got)
	}
}

func TestBytesPadding(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(1, 1)
	b := w.Bytes()
	if len(b) != 1 {
		t.Fatalf("1 bit should serialize to 1 byte, got %d", len(b))
	}
	w.WriteBits(0, 8) // 9 bits total
	b = w.Bytes()
	if len(b) != 2 {
		t.Fatalf("9 bits should serialize to 2 bytes, got %d", len(b))
	}
}

func TestCrossWordBoundary(t *testing.T) {
	// Force writes that straddle 64-bit word boundaries.
	w := NewWriter(0)
	w.WriteBits(0x1, 60)
	w.WriteBits(0xff, 8) // straddles word 0/1
	w.WriteBits(0xabcdef, 24)
	r := NewReader(w.Bytes())
	if v, _ := r.ReadBits(60); v != 0x1 {
		t.Fatalf("first field = %#x", v)
	}
	if v, _ := r.ReadBits(8); v != 0xff {
		t.Fatalf("straddling field = %#x", v)
	}
	if v, _ := r.ReadBits(24); v != 0xabcdef {
		t.Fatalf("third field = %#x", v)
	}
}

// property: any sequence of (value, width) writes reads back identically.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		vals := make([]uint64, count)
		widths := make([]uint, count)
		w := NewWriter(0)
		for i := range vals {
			widths[i] = uint(rng.Intn(64)) + 1
			vals[i] = rng.Uint64()
			if widths[i] < 64 {
				vals[i] &= (1 << widths[i]) - 1
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedBitAndBits(t *testing.T) {
	w := NewWriter(0)
	w.WriteBit(1)
	w.WriteBits(0x2a, 7)
	w.WriteBit(0)
	w.WriteBits(0xffffffffffffffff, 64)
	r := NewReader(w.Bytes())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("bit 0")
	}
	if v, _ := r.ReadBits(7); v != 0x2a {
		t.Fatal("field 1")
	}
	if b, _ := r.ReadBit(); b != 0 {
		t.Fatal("bit 2")
	}
	if v, _ := r.ReadBits(64); v != 0xffffffffffffffff {
		t.Fatal("field 3")
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%100000 == 0 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 13)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 20)
	for i := 0; i < 100000; i++ {
		w.WriteBits(uint64(i), 13)
	}
	data := w.Bytes()
	b.ResetTimer()
	r := NewReader(data)
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadBits(13); err != nil {
			r = NewReader(data)
		}
	}
}
