package bitstream

import (
	"testing"
)

// FuzzReader drives the bit reader with arbitrary data and an op script:
// every read either succeeds (and advances BitsRead by exactly the request)
// or returns ErrShortStream — never a panic, and never more bits than the
// buffer holds.
func FuzzReader(f *testing.F) {
	f.Add([]byte{0xff, 0x00, 0xaa}, []byte{1, 7, 64, 3})
	f.Add([]byte{}, []byte{1})
	f.Add([]byte{0x55}, []byte{0, 8, 8})

	f.Fuzz(func(t *testing.T, data []byte, ops []byte) {
		r := NewReader(data)
		limit := uint64(len(data)) * 8
		for _, op := range ops {
			before := r.BitsRead()
			switch {
			case op == 255:
				if _, err := r.ReadUnary(); err != nil {
					return
				}
			case op%65 == 0:
				if _, err := r.ReadBit(); err != nil {
					return
				}
				if r.BitsRead() != before+1 {
					t.Fatalf("ReadBit advanced %d bits", r.BitsRead()-before)
				}
			default:
				n := uint(op % 65)
				if _, err := r.ReadBits(n); err != nil {
					return
				}
				if r.BitsRead() != before+uint64(n) {
					t.Fatalf("ReadBits(%d) advanced %d bits", n, r.BitsRead()-before)
				}
			}
			if r.BitsRead() > limit {
				t.Fatalf("read %d bits from a %d-bit buffer", r.BitsRead(), limit)
			}
		}
	})
}
