// Package bitstream provides bit-granular writers and readers used by the
// entropy-coding stages of the SZ-like and ZFP-like compressors.
//
// Bits are packed LSB-first into 64-bit words: the first bit written to a
// word occupies bit 0. Words are serialized little-endian. This matches the
// convention used by ZFP's stream layer and keeps single-bit operations
// branch-light.
package bitstream

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortStream is returned when a read requests more bits than remain.
var ErrShortStream = errors.New("bitstream: read past end of stream")

// Writer accumulates bits into an in-memory buffer.
// The zero value is ready to use.
type Writer struct {
	words []uint64
	cur   uint64 // partially filled word
	nbits uint   // bits used in cur (0..63)
	total uint64 // total bits written
}

// NewWriter returns a Writer with capacity pre-allocated for sizeHint bits.
func NewWriter(sizeHint int) *Writer {
	w := &Writer{}
	if sizeHint > 0 {
		w.words = make([]uint64, 0, (sizeHint+63)/64)
	}
	return w
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.cur |= uint64(b&1) << w.nbits
	w.nbits++
	w.total++
	if w.nbits == 64 {
		w.words = append(w.words, w.cur)
		w.cur = 0
		w.nbits = 0
	}
}

// WriteBits appends the low n bits of v, least-significant bit first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n > 64 {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d out of range", n))
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	w.total += uint64(n)
	w.cur |= v << w.nbits
	used := 64 - w.nbits
	if n < used {
		w.nbits += n
		return
	}
	// cur is full: flush it and start a new word with the remaining bits.
	w.words = append(w.words, w.cur)
	w.cur = 0
	w.nbits = n - used
	if used < 64 && w.nbits > 0 {
		w.cur = v >> used
	}
}

// WriteUnary appends v as a unary code: v one-bits followed by a zero bit.
func (w *Writer) WriteUnary(v uint) {
	for i := uint(0); i < v; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
}

// Len reports the number of bits written so far.
func (w *Writer) Len() uint64 { return w.total }

// Bytes serializes the stream. The final partial word is zero-padded.
// The writer remains usable after calling Bytes.
func (w *Writer) Bytes() []byte {
	n := len(w.words)
	hasTail := w.nbits > 0
	out := make([]byte, 0, (n+1)*8)
	var buf [8]byte
	for _, word := range w.words {
		binary.LittleEndian.PutUint64(buf[:], word)
		out = append(out, buf[:]...)
	}
	if hasTail {
		binary.LittleEndian.PutUint64(buf[:], w.cur)
		// Only emit the bytes that carry data.
		nb := (w.nbits + 7) / 8
		out = append(out, buf[:nb]...)
	}
	return out
}

// Reset discards all written bits, retaining allocated capacity.
func (w *Writer) Reset() {
	w.words = w.words[:0]
	w.cur = 0
	w.nbits = 0
	w.total = 0
}

// Reader consumes bits from a byte slice produced by Writer.Bytes.
type Reader struct {
	data  []byte
	cur   uint64 // current word
	nbits uint   // bits remaining in cur
	pos   int    // byte offset of next load
	read  uint64 // total bits consumed
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// load refills cur with up to 64 bits from the underlying buffer.
func (r *Reader) load() error {
	remain := len(r.data) - r.pos
	if remain <= 0 {
		return ErrShortStream
	}
	if remain >= 8 {
		r.cur = binary.LittleEndian.Uint64(r.data[r.pos:])
		r.pos += 8
		r.nbits = 64
		return nil
	}
	var word uint64
	for i := 0; i < remain; i++ {
		word |= uint64(r.data[r.pos+i]) << (8 * uint(i))
	}
	r.pos += remain
	r.cur = word
	r.nbits = uint(remain) * 8
	return nil
}

// ReadBit consumes and returns one bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.nbits == 0 {
		if err := r.load(); err != nil {
			return 0, err
		}
	}
	b := uint(r.cur & 1)
	r.cur >>= 1
	r.nbits--
	r.read++
	return b, nil
}

// ReadBits consumes n bits (n in [0, 64]) and returns them LSB-aligned.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	if n > 64 {
		panic(fmt.Sprintf("bitstream: ReadBits n=%d out of range", n))
	}
	var v uint64
	if r.nbits >= n {
		if n == 64 {
			v = r.cur
			r.cur = 0
		} else {
			v = r.cur & ((1 << n) - 1)
			r.cur >>= n
		}
		r.nbits -= n
		r.read += uint64(n)
		return v, nil
	}
	// Take what is buffered, then refill.
	got := r.nbits
	v = r.cur
	r.cur = 0
	r.nbits = 0
	if err := r.load(); err != nil {
		return 0, err
	}
	rest := n - got
	if r.nbits < rest {
		return 0, ErrShortStream
	}
	var hi uint64
	if rest == 64 {
		hi = r.cur
		r.cur = 0
	} else {
		hi = r.cur & ((1 << rest) - 1)
		r.cur >>= rest
	}
	r.nbits -= rest
	v |= hi << got
	r.read += uint64(n)
	return v, nil
}

// ReadUnary consumes a unary code (ones terminated by a zero) and returns
// the count of one-bits.
func (r *Reader) ReadUnary() (uint, error) {
	var v uint
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return v, nil
		}
		v++
	}
}

// BitsRead reports the total number of bits consumed.
func (r *Reader) BitsRead() uint64 { return r.read }
