// Command temporale2e is the CI end-to-end test for zmeshd's temporal
// checkpoint store: it boots a built daemon binary with a store directory,
// streams a 3-snapshot 3-D Sedov run (keyframe + deltas, two quantities)
// through a temporal session, seals it, SIGTERMs the daemon and restarts it
// over the same store, then requires
//
//   - bit-exact full reads of every persisted snapshot (vs a client-side
//     mirror decoder fed the exact accepted frames),
//   - level-prefix progressive reads whose max reconstruction error strictly
//     improves as levels are added (and whose prefixes match the full read
//     byte for byte),
//   - tiered progressive reads whose guaranteed bounds strictly decrease and
//     hold for every prefix,
//   - session recovery across the restart: a session left unsealed when the
//     daemon dies must be transparently re-established by the client's next
//     append (forced keyframe, new session id), never wedged or forked.
//
// Usage (mirrors .github/workflows/ci.yml):
//
//	go build -o /tmp/zmeshd ./cmd/zmeshd
//	go run ./internal/tools/temporale2e -bin /tmp/zmeshd
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	zmesh "repro"
	"repro/client"
	"repro/internal/amr"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

const listenPrefix = "zmeshd: listening on "

func main() {
	var (
		bin     = flag.String("bin", "", "path to a built zmeshd binary (required)")
		res     = flag.Int("res", 48, "3-D solver resolution (res^3 cells)")
		timeout = flag.Duration("timeout", 5*time.Minute, "overall deadline")
	)
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "temporale2e: -bin is required")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *bin, *res); err != nil {
		fmt.Fprintf(os.Stderr, "temporale2e: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("temporale2e: PASS")
}

// daemon is one running zmeshd process plus its scraped base URL.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

func startDaemon(ctx context.Context, bin, addr, storeDir string) (*daemon, error) {
	cmd := exec.CommandContext(ctx, bin, "-addr", addr, "-store", storeDir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", bin, err)
	}
	baseURL := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			if u, ok := strings.CutPrefix(line, listenPrefix); ok {
				baseURL <- strings.TrimSpace(u)
			}
		}
	}()
	select {
	case base := <-baseURL:
		return &daemon{cmd: cmd, base: base}, nil
	case <-ctx.Done():
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("daemon never announced its address: %w", ctx.Err())
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("daemon never announced its address within 15s")
	}
}

// stop SIGTERMs the daemon and requires a clean drain (exit 0).
func (d *daemon) stop(ctx context.Context) error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signaling daemon: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exited uncleanly after SIGTERM: %w", err)
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("daemon did not exit after SIGTERM: %w", ctx.Err())
	}
}

// snapshots runs the 3-D Sedov blast to three successive times and samples
// every state onto the FIRST snapshot's hierarchy, so the temporal streams
// carry one keyframe followed by genuine delta frames.
func snapshots(res int) (*zmesh.Mesh, map[string][]*zmesh.Field, error) {
	p, err := sim.Lookup3D("sedov3d")
	if err != nil {
		return nil, nil, err
	}
	opt := sim.Analytic3DOptions{BlockSize: 8, RootDims: [3]int{2, 2, 2}, MaxDepth: 2, Threshold: 0.35}
	base, err := sim.GenerateCheckpoint3DAt("sedov3d", res, 0.4, opt)
	if err != nil {
		return nil, nil, fmt.Errorf("generating base snapshot: %w", err)
	}
	fields := map[string][]*zmesh.Field{}
	quantities := []string{"dens", "pres"}
	for _, q := range quantities {
		f, ok := base.Field(q)
		if !ok {
			return nil, nil, fmt.Errorf("base snapshot has no field %q", q)
		}
		fields[q] = append(fields[q], f)
	}
	for _, tScale := range []float64{0.5, 0.6} {
		g, err := sim.Run3D(p, res, tScale)
		if err != nil {
			return nil, nil, fmt.Errorf("advancing to t=%.1f: %w", tScale, err)
		}
		for _, q := range quantities {
			fields[q] = append(fields[q], amr.SampleField(base.Mesh, q, g.Sampler3(q)))
		}
	}
	return base.Mesh, fields, nil
}

func run(ctx context.Context, bin string, res int) error {
	storeDir, err := os.MkdirTemp("", "zmesh-temporal-e2e-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)

	fmt.Printf("temporale2e: running 3-D Sedov blast at %d^3 (3 snapshots)...\n", res)
	mesh, fields, err := snapshots(res)
	if err != nil {
		return err
	}
	nSnaps := len(fields["dens"])
	fmt.Printf("temporale2e: mesh has %d levels, %d blocks, %d values/quantity\n",
		mesh.MaxLevel()+1, mesh.NumBlocks(), mesh.NumBlocks()*mesh.CellsPerBlock())

	d, err := startDaemon(ctx, bin, "127.0.0.1:0", storeDir)
	if err != nil {
		return err
	}
	defer func() { _ = d.cmd.Process.Kill() }()
	fmt.Printf("temporale2e: daemon up at %s (store %s)\n", d.base, storeDir)

	// Stream the run: one temporal session, one stream per quantity, a
	// client-side mirror decoder tracking the exact reconstruction every
	// accepted frame commits the server to.
	cl := client.New(d.base)
	opt := zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "sz"}
	bound := zmesh.AbsBound(1e-3)
	sess, err := cl.NewTemporalSession(ctx, opt)
	if err != nil {
		return fmt.Errorf("creating session: %w", err)
	}
	mirrors := map[string]*zmesh.TemporalDecoder{}
	want := map[string][][]float64{}
	for si := 0; si < nSnaps; si++ {
		for _, q := range []string{"dens", "pres"} {
			r, err := sess.Append(ctx, fields[q][si], bound)
			if err != nil {
				return fmt.Errorf("appending %s snapshot %d: %w", q, si, err)
			}
			if (si == 0) != r.Keyframe {
				return fmt.Errorf("%s snapshot %d: keyframe=%v, want keyframe only first (static topology)", q, si, r.Keyframe)
			}
			if mirrors[q] == nil {
				mirrors[q] = zmesh.NewTemporalDecoder()
			}
			mf, err := mirrors[q].DecompressSnapshot(r.Frame)
			if err != nil {
				return fmt.Errorf("mirror decode %s snapshot %d: %w", q, si, err)
			}
			want[q] = append(want[q], append([]float64(nil), zmesh.FieldValues(mf)...))
			fmt.Printf("temporale2e: appended %s snapshot %d (keyframe=%v, %d bytes, object %s...)\n",
				q, si, r.Keyframe, len(r.Frame.Payload), r.Object[:12])
		}
	}
	ckpt, err := sess.Seal(ctx)
	if err != nil {
		return fmt.Errorf("sealing: %w", err)
	}
	fmt.Printf("temporale2e: sealed checkpoint %s...\n", ckpt[:12])

	// A second session left unsealed across the restart: its state dies with
	// the daemon and must come back via the client's recovery path.
	orphan, err := cl.NewTemporalSession(ctx, opt)
	if err != nil {
		return err
	}
	// Snapshot 1 as this session's keyframe: full values, not the sealed
	// session's delta, so the object is new rather than a dedup hit.
	if _, err := orphan.Append(ctx, fields["dens"][1], bound); err != nil {
		return err
	}

	snap, err := scrapeVars(ctx, d.base)
	if err != nil {
		return err
	}
	for key, min := range map[string]int64{
		"server.session.created":   2,
		"server.session.frames":    int64(2*nSnaps + 1),
		"server.store.objects":     int64(2*nSnaps + 1),
		"server.store.checkpoints": 1,
	} {
		if got := snap.Counters[key]; got < min {
			return fmt.Errorf("/debug/vars counter %s = %d, want >= %d", key, got, min)
		}
	}

	// Crash-restart: SIGTERM (clean drain), then a fresh daemon over the
	// same store directory — rebound to the same address, so the clients
	// (including the orphaned session) keep talking to "the daemon" the way
	// a supervised restart looks from a simulation's side.
	if err := d.stop(ctx); err != nil {
		return err
	}
	fmt.Println("temporale2e: daemon drained cleanly, restarting over the same store")
	d, err = startDaemon(ctx, bin, strings.TrimPrefix(d.base, "http://"), storeDir)
	if err != nil {
		return err
	}
	defer func() { _ = d.cmd.Process.Kill() }()

	// Bit-exact full reads of everything the sealed checkpoint persisted.
	for _, q := range []string{"dens", "pres"} {
		for si := 0; si < nSnaps; si++ {
			got, err := cl.ReadField(ctx, ckpt, q, si)
			if err != nil {
				return fmt.Errorf("post-restart read %s snapshot %d: %w", q, si, err)
			}
			if err := assertBitExact(got, want[q][si]); err != nil {
				return fmt.Errorf("%s snapshot %d: %w", q, si, err)
			}
		}
	}
	fmt.Printf("temporale2e: all %d persisted reconstructions bit-exact after restart\n", 2*nSnaps)

	// The orphaned session must recover: the restart dropped its server-side
	// state, so its next append answers 404 and the client transparently
	// re-creates the session and re-sends the snapshot as a forced keyframe.
	oldID := orphan.ID()
	r, err := orphan.Append(ctx, fields["dens"][2], bound)
	if err != nil {
		return fmt.Errorf("post-restart append on orphaned session: %w", err)
	}
	if !r.Recovered || !r.Keyframe || !r.Forced {
		return fmt.Errorf("post-restart append recovered=%v keyframe=%v forced=%v, want a forced-keyframe recovery",
			r.Recovered, r.Keyframe, r.Forced)
	}
	if orphan.ID() == oldID {
		return fmt.Errorf("recovery kept the dead session id %s", oldID)
	}
	fmt.Println("temporale2e: unsealed session re-established after restart (forced keyframe path)")

	// Progressive level-prefix reads: prefixes must match the full read byte
	// for byte, and the reconstruction error must strictly improve with
	// every added level, hitting exactly zero at the full depth.
	structure, err := cl.CheckpointStructure(ctx, ckpt, "dens", 0)
	if err != nil {
		return err
	}
	rdec, err := zmesh.NewDecoderFromStructure(structure)
	if err != nil {
		return fmt.Errorf("rebuilding mesh from checkpoint structure: %w", err)
	}
	rmesh := rdec.Mesh()
	maxLevels := rmesh.MaxLevel() + 1
	for _, q := range []string{"dens", "pres"} {
		full := want[q][0]
		prev := math.Inf(1)
		for k := 1; k <= maxLevels; k++ {
			ld, err := cl.ReadFieldLevels(ctx, ckpt, q, 0, k)
			if err != nil {
				return fmt.Errorf("levels=%d read of %s: %w", k, q, err)
			}
			if err := assertBitExact(ld.Values, full[:len(ld.Values)]); err != nil {
				return fmt.Errorf("%s levels=%d prefix: %w", q, k, err)
			}
			rec, err := zmesh.ReconstructPartialLevels(rmesh, q, ld.Values, k)
			if err != nil {
				return err
			}
			recValues := zmesh.FieldValues(rec)
			maxErr := 0.0
			for i := range recValues {
				if d := math.Abs(recValues[i] - full[i]); d > maxErr {
					maxErr = d
				}
			}
			fmt.Printf("temporale2e: %s levels=%d/%d -> max error %.6g\n", q, k, maxLevels, maxErr)
			if maxErr >= prev {
				return fmt.Errorf("%s: levels=%d max error %g did not improve on %g", q, k, maxErr, prev)
			}
			if k == maxLevels && maxErr != 0 {
				return fmt.Errorf("%s: full-depth levels read reconstructed with error %g, want 0", q, maxErr)
			}
			prev = maxErr
		}
	}

	// Tiered reads: guaranteed bounds strictly decrease, and every prefix's
	// actual error honors its bound.
	td, err := cl.ReadFieldTiers(ctx, ckpt, "dens", nSnaps-1, 4)
	if err != nil {
		return fmt.Errorf("tiered read: %w", err)
	}
	full := want["dens"][nSnaps-1]
	for i, b := range td.Bounds {
		if i > 0 && !(b < td.Bounds[i-1]) {
			return fmt.Errorf("tier bounds not strictly decreasing: %v", td.Bounds)
		}
	}
	maxErr := 0.0
	for i := range td.Values {
		if d := math.Abs(td.Values[i] - full[i]); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > td.Bounds[len(td.Bounds)-1]+1e-12 {
		return fmt.Errorf("tiered reconstruction error %g exceeds final guaranteed bound %g", maxErr, td.Bounds[len(td.Bounds)-1])
	}
	fmt.Printf("temporale2e: tiered read ok (%d tiers, bounds %v, final max error %.3g)\n",
		len(td.Bounds), td.Bounds, maxErr)

	// Post-restart telemetry: the read counters live on the new process.
	snap, err = scrapeVars(ctx, d.base)
	if err != nil {
		return err
	}
	for key, min := range map[string]int64{
		"server.store.reads":       1,
		"server.store.level_reads": 1,
		"server.store.tier_reads":  1,
	} {
		if got := snap.Counters[key]; got < min {
			return fmt.Errorf("/debug/vars counter %s = %d, want >= %d", key, got, min)
		}
	}

	if err := d.stop(ctx); err != nil {
		return err
	}
	fmt.Println("temporale2e: daemon drained cleanly")
	return nil
}

func assertBitExact(got, want []float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d values, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return fmt.Errorf("value %d: %x != %x", i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
	return nil
}

// scrapeVars fetches and parses the daemon's telemetry snapshot.
func scrapeVars(ctx context.Context, base string) (*telemetry.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+wire.PathVars, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("scraping %s: %w", wire.PathVars, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s returned %d", wire.PathVars, resp.StatusCode)
	}
	var vars struct {
		Zmeshd telemetry.Snapshot `json:"zmeshd"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", wire.PathVars, err)
	}
	return &vars.Zmeshd, nil
}
