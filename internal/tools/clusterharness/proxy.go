package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// faultProxy is the fault-injection point of the harness: every replica's
// advertised URL resolves to one of these, which forwards TCP to the real
// zmeshd process. Because replicas reach each other through their
// advertised URLs, peer structure fetches flow through the proxy too — so
// the harness can drop or delay peer traffic without touching the daemon.
//
// Faults are armed atomically:
//
//	delay:    every new connection sleeps d before the backend dial
//	dropNext: the next n connections are closed without forwarding
//
// A SIGKILLed backend needs no proxy support: the forward dial fails and
// the client-side connection closes, which the routing client treats as a
// transport failure and fails over.
type faultProxy struct {
	ln       net.Listener
	backend  atomic.Pointer[string] // real process address, retargeted on restart
	delay    atomic.Int64           // ns added before each backend dial
	dropNext atomic.Int64           // connections left to drop on arrival
}

func newFaultProxy() (*faultProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &faultProxy{ln: ln}
	go p.serve()
	return p, nil
}

func (p *faultProxy) url() string { return "http://" + p.ln.Addr().String() }

func (p *faultProxy) setBackend(addr string) { p.backend.Store(&addr) }

func (p *faultProxy) setDelay(d time.Duration) { p.delay.Store(int64(d)) }

func (p *faultProxy) dropNextConns(n int64) { p.dropNext.Store(n) }

func (p *faultProxy) serve() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.handle(conn)
	}
}

func (p *faultProxy) handle(conn net.Conn) {
	for {
		n := p.dropNext.Load()
		if n <= 0 {
			break
		}
		if p.dropNext.CompareAndSwap(n, n-1) {
			conn.Close()
			return
		}
	}
	if d := p.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	addr := p.backend.Load()
	if addr == nil {
		conn.Close()
		return
	}
	back, err := net.DialTimeout("tcp", *addr, 5*time.Second)
	if err != nil {
		conn.Close()
		return
	}
	go pipe(back, conn)
	pipe(conn, back)
}

// pipe copies one direction and half-closes the write side when the source
// is done, so HTTP keep-alive shutdown propagates cleanly.
func pipe(dst, src net.Conn) {
	_, _ = io.Copy(dst, src)
	if tc, ok := dst.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	} else {
		_ = dst.Close()
	}
}

// replica is one zmeshd process plus its fault proxy. The advertised URL
// (proxy.url()) is stable across restarts; the process binds an ephemeral
// port each boot and the proxy is retargeted at it.
type replica struct {
	idx       int
	bin       string
	proxy     *faultProxy
	extraArgs []string

	cmd      *exec.Cmd
	procAddr string // real listen address of the current process
}

// start boots the zmeshd process, waits for its listen announcement, and
// points the proxy at it. clusterNodes/self are advertised (proxy) URLs.
func (r *replica) start(clusterNodes []string, replication, vnodes int) error {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-cluster-nodes", strings.Join(clusterNodes, ","),
		"-cluster-self", r.proxy.url(),
		"-replication", fmt.Sprint(replication),
		"-vnodes", fmt.Sprint(vnodes),
		"-peer-timeout", "2s",
		"-retry-after", "100ms",
		"-drain-timeout", "10s",
	}
	args = append(args, r.extraArgs...)
	cmd := exec.Command(r.bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("replica %d: starting %s: %w", r.idx, r.bin, err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if u, ok := strings.CutPrefix(line, "zmeshd: listening on http://"); ok {
				addrc <- strings.TrimSpace(u)
			}
		}
	}()
	select {
	case addr := <-addrc:
		r.cmd = cmd
		r.procAddr = addr
		r.proxy.setBackend(addr)
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		return fmt.Errorf("replica %d never announced its address", r.idx)
	}
	return nil
}

// sigkill hard-kills the process — the mid-checkpoint crash fault. The
// proxy keeps accepting; forwards fail until restart.
func (r *replica) sigkill() error {
	if err := r.cmd.Process.Kill(); err != nil {
		return err
	}
	_, _ = r.cmd.Process.Wait()
	return nil
}

// sigterm asks for a graceful drain and waits for a clean exit.
func (r *replica) sigterm(timeout time.Duration) error {
	if err := r.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- r.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		_ = r.cmd.Process.Kill()
		return fmt.Errorf("replica %d did not drain within %s", r.idx, timeout)
	}
}

// awaitHealthy polls the replica's /healthz through the proxy — the
// no-sleeps way to sequence phases on real daemon state.
func (r *replica) awaitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	hc := &http.Client{Timeout: time.Second}
	for time.Now().Before(deadline) {
		resp, err := hc.Get(r.proxy.url() + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("replica %d not healthy within %s", r.idx, timeout)
}
