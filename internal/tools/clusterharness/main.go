// Command clusterharness is the multi-replica fault-injection test harness
// for zmeshd's cluster mode: it boots N real daemon processes behind
// fault-injection proxies, drives 10–100 concurrent writers through the
// routing ClusterClient, and injects real faults while asserting that
// every operation still round-trips bit-exactly:
//
//   - SIGKILL of the primary owner mid-run (writers keep going through the
//     surviving owners; the replica is restarted empty and must heal via
//     peer structure fetch)
//   - delayed and dropped peer/client connections (the proxies stall or
//     close TCP conns to one replica for a window)
//   - a 429 storm against a replica booted with -max-inflight 1
//
// Phases are sequenced by polling real state — operation counters,
// /healthz, /debug/vars — never by ordering sleeps. At the end the
// harness scrapes every replica's namespaced /debug/vars key and asserts
// the cluster invariants: recipe builds bounded by replication × meshes
// on the surviving replicas, peer fetches recorded on the healed replica,
// shed counted on the stormed replica, latency timers present wherever
// traffic landed, and the routing client's worst-case attempt count within
// its sweep budget.
//
// Usage (mirrors .github/workflows/ci.yml cluster-e2e):
//
//	go build -o /tmp/zmeshd ./cmd/zmeshd
//	go run ./internal/tools/clusterharness -bin /tmp/zmeshd -replicas 3 -writers 32 -seed 1
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	zmesh "repro"
	"repro/client"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

func main() {
	var (
		bin      = flag.String("bin", "", "path to a built zmeshd binary (required)")
		replicas = flag.Int("replicas", 3, "cluster size")
		writers  = flag.Int("writers", 32, "concurrent writers (10-100)")
		meshes   = flag.Int("meshes", 4, "distinct mesh topologies in play")
		repl     = flag.Int("replication", 2, "owners per mesh")
		seed     = flag.Int64("seed", 1, "deterministic workload seed")
		timeout  = flag.Duration("timeout", 4*time.Minute, "overall deadline")
	)
	flag.Parse()
	switch {
	case *bin == "":
		fmt.Fprintln(os.Stderr, "clusterharness: -bin is required")
		os.Exit(2)
	case *writers < 10 || *writers > 100:
		fmt.Fprintln(os.Stderr, "clusterharness: -writers must be in [10, 100]")
		os.Exit(2)
	case *replicas < 2 || *repl < 2 || *repl > *replicas:
		fmt.Fprintln(os.Stderr, "clusterharness: need -replicas >= 2 and 2 <= -replication <= -replicas")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *bin, *replicas, *writers, *meshes, *repl, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "clusterharness: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("clusterharness: PASS")
}

// workUnit is one mesh plus every expected result, precomputed through the
// in-process library so writer verification is pure byte comparison.
type workUnit struct {
	id       string
	mesh     *zmesh.Mesh
	field    *zmesh.Field
	values   []float64
	artifact *zmesh.Compressed // expected compress result
	decoded  []float64         // expected decompress result
	tacArt   *zmesh.Compressed // expected compress result under the TAC box layout
	tacDec   []float64         // expected TAC decompress result
	ck       *zmesh.Checkpoint
	ckArts   []*zmesh.Compressed // expected checkpoint results
}

var (
	workOpt = zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "sz"}
	// A second pipeline per mesh: the TAC box layout exercises the zTAC
	// frame path through every replica and doubles the per-mesh encoder
	// cache population the bounds below must account for.
	workOptTAC = zmesh.Options{Layout: zmesh.LayoutTAC, Curve: "hilbert", Codec: "sz"}
	workBound  = zmesh.AbsBound(1e-3)

	// workPipelines is the number of distinct (options, bound) pipelines the
	// writers drive per mesh; each populates its own encoder-cache entry.
	workPipelines = 2
)

// buildWork generates m distinct topologies (different refinement subsets
// of a 2×2-root mesh) with their full expected-result sets.
func buildWork(m int) ([]*workUnit, error) {
	units := make([]*workUnit, 0, m)
	seen := make(map[string]bool)
	for i := 0; i < m; i++ {
		mesh, err := zmesh.NewMesh(2, 8, [3]int{2, 2, 1})
		if err != nil {
			return nil, err
		}
		// Refinement subset i (by bitmask over the 4 roots) makes each
		// topology — and so each content address — distinct.
		for bit, root := range mesh.Roots() {
			if (i+1)&(1<<bit) != 0 {
				if err := mesh.Refine(root); err != nil {
					return nil, err
				}
			}
		}
		phase := float64(i)
		f := zmesh.SampleField(mesh, "dens", func(x, y, z float64) float64 {
			return math.Sin(5*x+phase)*math.Cos(4*y) + 0.1*phase*x
		})
		g := zmesh.SampleField(mesh, "pres", func(x, y, z float64) float64 {
			return math.Cos(3*x) * math.Sin(2*y+phase)
		})
		u := &workUnit{
			id:     cluster.MeshID(mesh.Structure()),
			mesh:   mesh,
			field:  f,
			values: zmesh.FieldValues(f),
			ck:     &zmesh.Checkpoint{Problem: "harness", Mesh: mesh, Fields: []*zmesh.Field{f, g}},
		}
		if seen[u.id] {
			return nil, fmt.Errorf("meshes %d collide on id %s", i, u.id)
		}
		seen[u.id] = true
		enc, err := zmesh.NewEncoder(mesh, workOpt)
		if err != nil {
			return nil, err
		}
		if u.artifact, err = enc.CompressField(f, workBound); err != nil {
			return nil, err
		}
		decField, err := zmesh.NewDecoder(mesh).DecompressField(u.artifact)
		if err != nil {
			return nil, err
		}
		u.decoded = zmesh.FieldValues(decField)
		encTAC, err := zmesh.NewEncoder(mesh, workOptTAC)
		if err != nil {
			return nil, err
		}
		if u.tacArt, err = encTAC.CompressField(f, workBound); err != nil {
			return nil, err
		}
		decTAC, err := zmesh.NewDecoder(mesh).DecompressField(u.tacArt)
		if err != nil {
			return nil, err
		}
		u.tacDec = zmesh.FieldValues(decTAC)
		for _, cf := range u.ck.Fields {
			a, err := enc.CompressField(cf, workBound)
			if err != nil {
				return nil, err
			}
			u.ckArts = append(u.ckArts, a)
		}
		units = append(units, u)
	}
	return units, nil
}

func run(ctx context.Context, bin string, nReplicas, nWriters, nMeshes, replication int, seed int64) error {
	work, err := buildWork(nMeshes)
	if err != nil {
		return fmt.Errorf("building workload: %w", err)
	}

	// Proxies first: their addresses are the advertised membership, known
	// before any process starts, so the ring — and therefore the fault
	// schedule — is computable up front.
	reps := make([]*replica, nReplicas)
	nodes := make([]string, nReplicas)
	for i := range reps {
		p, err := newFaultProxy()
		if err != nil {
			return err
		}
		reps[i] = &replica{idx: i, bin: bin, proxy: p}
		nodes[i] = p.url()
	}
	ring, err := cluster.New(nodes, cluster.DefaultVNodes, replication)
	if err != nil {
		return err
	}

	// Fault cast: the victim (SIGKILLed and restarted) is the primary owner
	// of mesh 0, so the post-restart peer-fetch probe is deterministic. The
	// stormed replica is any other index; it boots with -max-inflight 1.
	victim, storm := -1, -1
	primary := ring.Primary(work[0].id)
	for i, n := range nodes {
		if n == primary {
			victim = i
		}
	}
	for i := range nodes {
		if i != victim {
			storm = i
			break
		}
	}
	reps[storm].extraArgs = []string{"-max-inflight", "1"}
	fmt.Printf("clusterharness: %d replicas, R=%d, %d meshes, %d writers (victim=%d storm=%d)\n",
		nReplicas, replication, nMeshes, nWriters, victim, storm)

	for _, r := range reps {
		if err := r.start(nodes, replication, cluster.DefaultVNodes); err != nil {
			return err
		}
	}
	defer func() {
		for _, r := range reps {
			if r.cmd != nil {
				_ = r.cmd.Process.Kill()
			}
		}
	}()
	for _, r := range reps {
		if err := r.awaitHealthy(15 * time.Second); err != nil {
			return err
		}
	}
	fmt.Println("clusterharness: all replicas healthy")

	// The shared routing client: per-host retries are off (the router
	// sweeps owners). The rounds budget must outlast the worst shed phase —
	// the -max-inflight 1 replica under the storm burst can answer 429 for
	// seconds on a slow (race-instrumented) build, so give writers 10
	// rounds at up to 1s (the server's Retry-After hint) each.
	const rounds = 10
	cc, err := client.NewCluster(nodes,
		client.WithBackoff(50*time.Millisecond, time.Second),
		client.WithMaxRetries(rounds),
		client.WithHTTPClient(&http.Client{Timeout: 15 * time.Second}))
	if err != nil {
		return err
	}
	for i, u := range work {
		id, err := cc.RegisterMesh(ctx, u.mesh.Structure())
		if err != nil {
			return fmt.Errorf("registering mesh %d: %w", i, err)
		}
		if id != u.id {
			return fmt.Errorf("mesh %d: cluster returned id %s, local hash %s", i, id, u.id)
		}
	}
	fmt.Printf("clusterharness: %d meshes registered across owners\n", len(work))

	// Writers: each verifies every operation bit-exactly against the
	// precomputed library results. Phases below sequence on opsDone.
	var (
		opsDone  atomic.Int64
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		errOnce  sync.Once
		writeErr error
	)
	fail := func(err error) { errOnce.Do(func() { writeErr = err }) }
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				u := work[rng.Intn(len(work))]
				var err error
				switch rng.Intn(8) {
				case 0, 1, 2: // compress
					var comp *zmesh.Compressed
					comp, err = cc.Compress(ctx, u.id, u.field.Name, u.values, workOpt, workBound)
					if err == nil && !bytes.Equal(comp.Payload, u.artifact.Payload) {
						err = fmt.Errorf("mesh %s: artifact differs from library", u.id[:12])
					}
				case 3, 4: // decompress
					var vals []float64
					vals, err = cc.Decompress(ctx, u.id, u.artifact)
					if err == nil {
						err = bitExact(vals, u.decoded)
					}
				case 5: // TAC compress
					var comp *zmesh.Compressed
					comp, err = cc.Compress(ctx, u.id, u.field.Name, u.values, workOptTAC, workBound)
					if err == nil && comp.Layout != zmesh.LayoutTAC {
						err = fmt.Errorf("mesh %s: TAC compress answered layout %v", u.id[:12], comp.Layout)
					}
					if err == nil && !bytes.Equal(comp.Payload, u.tacArt.Payload) {
						err = fmt.Errorf("mesh %s: TAC artifact differs from library", u.id[:12])
					}
				case 6: // TAC decompress
					var vals []float64
					vals, err = cc.Decompress(ctx, u.id, u.tacArt)
					if err == nil {
						err = bitExact(vals, u.tacDec)
					}
				default: // checkpoint batch
					var arts []*zmesh.Compressed
					arts, err = cc.CompressCheckpoint(ctx, u.id, u.ck, workOpt, workBound)
					if err == nil && len(arts) != len(u.ckArts) {
						err = fmt.Errorf("checkpoint returned %d artifacts, want %d", len(arts), len(u.ckArts))
					}
					if err == nil {
						for i := range arts {
							if !bytes.Equal(arts[i].Payload, u.ckArts[i].Payload) {
								err = fmt.Errorf("checkpoint field %d artifact differs from library", i)
								break
							}
						}
					}
				}
				if err != nil {
					fail(fmt.Errorf("writer %d: %w", w, err))
					return
				}
				opsDone.Add(1)
			}
		}(w)
	}
	waitOps := func(target int64, what string) error {
		for opsDone.Load() < target {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("deadline while %s (%d/%d ops): %w", what, opsDone.Load(), target, err)
			}
			if writeErr != nil {
				return fmt.Errorf("writer failed while %s: %w", what, writeErr)
			}
			time.Sleep(10 * time.Millisecond)
		}
		return nil
	}

	// Phase 1: baseline traffic with all replicas up.
	if err := waitOps(int64(2*nWriters), "establishing baseline"); err != nil {
		return err
	}

	// Phase 2: SIGKILL the victim mid-run (writers are mid-compress and
	// mid-checkpoint right now) and require progress while it is down.
	killedAt := opsDone.Load()
	if err := reps[victim].sigkill(); err != nil {
		return err
	}
	fmt.Printf("clusterharness: SIGKILLed replica %d at %d ops\n", victim, killedAt)
	if err := waitOps(killedAt+int64(3*nWriters), "failing over around the dead primary"); err != nil {
		return err
	}

	// Phase 3: restart the victim empty; it must heal the probed mesh via a
	// peer structure fetch, bit-exactly.
	if err := reps[victim].start(nodes, replication, cluster.DefaultVNodes); err != nil {
		return fmt.Errorf("restarting victim: %w", err)
	}
	if err := reps[victim].awaitHealthy(15 * time.Second); err != nil {
		return err
	}
	fmt.Printf("clusterharness: replica %d restarted empty\n", victim)
	probe := client.New(nodes[victim],
		client.WithBackoff(50*time.Millisecond, 400*time.Millisecond), client.WithMaxRetries(10))
	comp, err := probe.Compress(ctx, work[0].id, work[0].field.Name, work[0].values, workOpt, workBound)
	if err != nil {
		return fmt.Errorf("post-restart probe on victim: %w", err)
	}
	if !bytes.Equal(comp.Payload, work[0].artifact.Payload) {
		return fmt.Errorf("post-restart probe artifact differs from library")
	}
	victimSnap, err := scrapeReplicaVars(ctx, reps[victim])
	if err != nil {
		return err
	}
	if victimSnap.Counters["server.peer.fetches"] < 1 {
		return fmt.Errorf("restarted replica healed without a peer fetch (counters: %v)", victimSnap.Counters)
	}
	fmt.Printf("clusterharness: replica %d healed via %d peer fetch(es)\n",
		victim, victimSnap.Counters["server.peer.fetches"])

	// Phase 4: delay, then drop, connections to one replica for a window of
	// ops. The restarted victim takes this fault — piling it onto the
	// -max-inflight 1 storm replica would starve both owners of some
	// meshes at once, which is an outage, not a fault drill. Writers must
	// ride both faults out with zero failures.
	delayed := victim
	reps[delayed].proxy.setDelay(100 * time.Millisecond)
	if err := waitOps(opsDone.Load()+int64(nWriters), "running under 100ms peer/client delay"); err != nil {
		return err
	}
	reps[delayed].proxy.setDelay(0)
	reps[delayed].proxy.dropNextConns(int64(nWriters / 2))
	if err := waitOps(opsDone.Load()+int64(nWriters), "running through dropped connections"); err != nil {
		return err
	}
	fmt.Println("clusterharness: delay and drop faults absorbed")

	// Phase 5: 429 storm — a burst of concurrent direct requests at the
	// -max-inflight 1 replica guarantees admission sheds while the writers
	// keep succeeding through the router.
	var burst sync.WaitGroup
	for b := 0; b < 16; b++ {
		burst.Add(1)
		go func(b int) {
			defer burst.Done()
			direct := client.New(nodes[storm], client.WithMaxRetries(0))
			u := work[b%len(work)]
			// Outcomes vary (2xx, 429, 421 off-owner) — the point is
			// concurrency pressure; correctness is asserted via counters.
			_, _ = direct.Compress(ctx, u.id, u.field.Name, u.values, workOpt, workBound)
		}(b)
	}
	burst.Wait()
	if err := waitOps(opsDone.Load()+int64(nWriters), "running through the 429 storm"); err != nil {
		return err
	}

	// Drain the workload.
	close(stop)
	wg.Wait()
	if writeErr != nil {
		return writeErr
	}
	total := opsDone.Load()
	fmt.Printf("clusterharness: %d operations, all bit-exact, zero failures\n", total)

	// Routing client invariants: attempts bounded by the sweep budget —
	// per round at most 2·R attempts (one sweep plus one post-refresh
	// rescan), over maxRetries+1 rounds.
	st := cc.Stats()
	bound := int64((rounds + 1) * 2 * replication)
	if st.MaxAttemptsPerOp > bound {
		return fmt.Errorf("an operation took %d attempts, budget is %d (stats %+v)", st.MaxAttemptsPerOp, bound, st)
	}
	if st.Failovers == 0 {
		return fmt.Errorf("no failovers recorded despite a SIGKILLed primary (stats %+v)", st)
	}
	fmt.Printf("clusterharness: router stats %+v (attempt budget %d)\n", st, bound)

	// Per-shard telemetry invariants, via each replica's namespaced
	// /debug/vars key.
	survivorBuilds, survivorEncBuilds := int64(0), int64(0)
	for _, r := range reps {
		snap, err := scrapeReplicaVars(ctx, r)
		if err != nil {
			return err
		}
		served := snap.Counters["server.compress.requests"] + snap.Counters["server.checkpoint.requests"] +
			snap.Counters["server.decompress.requests"]
		if served > 0 {
			lat := snap.Timers["server.compress.latency"].Count + snap.Timers["server.checkpoint.latency"].Count +
				snap.Timers["server.decompress.latency"].Count
			if lat == 0 {
				return fmt.Errorf("replica %d served %d requests but recorded no latency samples", r.idx, served)
			}
		}
		if r.idx != victim {
			survivorBuilds += snap.Counters["recipe.builds"]
			survivorEncBuilds += snap.Counters["server.cache.misses"]
		}
		if r.idx == storm && snapShed(snap) == 0 {
			return fmt.Errorf("stormed replica %d (max-inflight 1) never shed (counters: %v)", r.idx, snap.Counters)
		}
		fmt.Printf("clusterharness: replica %d vars ok (builds=%d shed=%d peer.fetches=%d)\n",
			r.idx, snap.Counters["recipe.builds"], snapShed(snap), snap.Counters["server.peer.fetches"])
	}
	// Each mesh has R owners and workPipelines (options, bound) pipelines
	// (zmesh and TAC), so the replicas that never lost their caches build at
	// most pipelines × R × meshes encoders between them (server.cache.misses
	// counts exactly one per encoder build), no matter how many writers
	// hammered. recipe.builds additionally counts the decompress side's
	// restore recipes — at most one more per pipeline per owned mesh — so
	// its bound is 2 × pipelines × R × meshes.
	if maxEnc := int64(workPipelines * replication * len(work)); survivorEncBuilds > maxEnc {
		return fmt.Errorf("surviving replicas built %d encoders for %d meshes × R=%d × %d pipelines (max %d) — encoder cache not bounding work",
			survivorEncBuilds, len(work), replication, workPipelines, maxEnc)
	}
	if maxBuilds := int64(2 * workPipelines * replication * len(work)); survivorBuilds > maxBuilds {
		return fmt.Errorf("surviving replicas built %d recipes for %d meshes × R=%d × %d pipelines (max %d) — recipe cache not bounding work",
			survivorBuilds, len(work), replication, workPipelines, maxBuilds)
	}

	// Clean shutdown: every replica drains on SIGTERM.
	for _, r := range reps {
		if err := r.sigterm(20 * time.Second); err != nil {
			return fmt.Errorf("replica %d: %w", r.idx, err)
		}
	}
	fmt.Println("clusterharness: all replicas drained cleanly")
	return nil
}

// bitExact compares two float streams at the bit level.
func bitExact(got, want []float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d values, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return fmt.Errorf("value %d differs: %x vs %x", i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
	return nil
}

// scrapeReplicaVars fetches one replica's /debug/vars through its proxy and
// returns the snapshot under its namespaced key (server.VarsKey of the real
// listen address) — asserting, as it goes, that the key exists at all.
func scrapeReplicaVars(ctx context.Context, r *replica) (*telemetry.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.proxy.url()+wire.PathVars, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica %d: scraping vars: %w", r.idx, err)
	}
	defer resp.Body.Close()
	var page map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return nil, fmt.Errorf("replica %d: parsing vars: %w", r.idx, err)
	}
	key := server.VarsKey(r.procAddr)
	raw, ok := page[key]
	if !ok {
		return nil, fmt.Errorf("replica %d: /debug/vars has no namespaced key %q", r.idx, key)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("replica %d: parsing snapshot under %q: %w", r.idx, key, err)
	}
	return &snap, nil
}

// snapShed sums the shed counters across endpoints.
func snapShed(snap *telemetry.Snapshot) int64 {
	var total int64
	for name, v := range snap.Counters {
		if len(name) > 5 && name[len(name)-5:] == ".shed" {
			total += v
		}
	}
	return total
}
