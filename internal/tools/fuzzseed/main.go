// Command fuzzseed regenerates the committed fuzz corpus seeds under each
// package's testdata/fuzz/<FuzzTarget>/ directory. The committed seeds give
// CI's short -fuzztime smoke runs immediate coverage of the interesting
// regions (valid payloads, truncations, bit flips) instead of starting from
// the trivial f.Add seeds every run; they also execute as regular test
// cases during plain `go test`.
//
//	go run ./internal/tools/fuzzseed
//
// Run from the repository root after changing any serialized format, and
// commit the result.
package main

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strconv"

	zmesh "repro"

	"repro/internal/amr"
	"repro/internal/compress"
	"repro/internal/compress/chunked"
	"repro/internal/compress/container"
	"repro/internal/compress/lossless"
	"repro/internal/compress/multilevel"
	"repro/internal/compress/sz"
	"repro/internal/compress/zfp"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fuzzseed: %v\n", err)
		os.Exit(1)
	}
}

// corpusEntry renders arguments in the `go test fuzz v1` corpus encoding.
func corpusEntry(args ...any) []byte {
	out := "go test fuzz v1\n"
	for _, a := range args {
		switch v := a.(type) {
		case []byte:
			out += "[]byte(" + strconv.Quote(string(v)) + ")\n"
		case bool:
			out += fmt.Sprintf("bool(%v)\n", v)
		default:
			panic(fmt.Sprintf("unsupported corpus arg type %T", a))
		}
	}
	return []byte(out)
}

func write(dir, name string, entry []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, entry, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// wave is the seed signal: smooth enough to compress well, structured
// enough that every codec exercises its real encode paths.
func wave(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		x := float64(i) / float64(n)
		vals[i] = math.Sin(12*x) + 0.3*math.Cos(31*x)
	}
	return vals
}

func flipMiddle(buf []byte) []byte {
	out := append([]byte(nil), buf...)
	if len(out) > 0 {
		out[len(out)/2] ^= 0xff
	}
	return out
}

func run() error {
	vals := wave(256)
	dims := []int{len(vals)}
	bound := compress.AbsBound(1e-3)

	codecs := []struct {
		dir   string
		codec compress.Compressor
	}{
		{"internal/compress/sz", sz.New()},
		{"internal/compress/zfp", zfp.New()},
		{"internal/compress/lossless", lossless.New()},
		{"internal/compress/multilevel", multilevel.New()},
		{"internal/compress/chunked", chunked.New(sz.New())},
	}
	for _, c := range codecs {
		payload, err := c.codec.Compress(vals, dims, bound)
		if err != nil {
			return fmt.Errorf("%s: %w", c.dir, err)
		}
		dir := filepath.Join(c.dir, "testdata", "fuzz", "FuzzDecompress")
		if err := write(dir, "seed-valid-wave", corpusEntry(payload)); err != nil {
			return err
		}
		if err := write(dir, "seed-bitflip", corpusEntry(flipMiddle(payload))); err != nil {
			return err
		}
		if len(payload) > 4 {
			if err := write(dir, "seed-truncated", corpusEntry(payload[:len(payload)/2])); err != nil {
				return err
			}
		}
	}

	// Progressive multilevel decode shares the multilevel payload format.
	mglPayload, err := multilevel.New().Compress(vals, dims, bound)
	if err != nil {
		return err
	}
	progDir := filepath.Join("internal/compress/multilevel", "testdata", "fuzz", "FuzzDecompressProgressive")
	if err := write(progDir, "seed-valid-wave", corpusEntry(mglPayload)); err != nil {
		return err
	}
	if err := write(progDir, "seed-bitflip", corpusEntry(flipMiddle(mglPayload))); err != nil {
		return err
	}

	// Container envelope: a well-formed frame plus a checksum-corrupted twin.
	szPayload, err := sz.New().Compress(vals, dims, bound)
	if err != nil {
		return err
	}
	env, err := container.Wrap("sz", len(vals), szPayload)
	if err != nil {
		return err
	}
	envDir := filepath.Join("internal/compress/container", "testdata", "fuzz", "FuzzUnwrap")
	if err := write(envDir, "seed-valid-envelope", corpusEntry(env)); err != nil {
		return err
	}
	corrupt := append([]byte(nil), env...)
	corrupt[len(corrupt)-1] ^= 0x01
	if err := write(envDir, "seed-bad-checksum", corpusEntry(corrupt)); err != nil {
		return err
	}

	// Bit reader: data plus an op script mixing aligned and straddling reads.
	bitDir := filepath.Join("internal/bitstream", "testdata", "fuzz", "FuzzReader")
	if err := write(bitDir, "seed-mixed-ops",
		corpusEntry([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x80, 0x7f}, []byte{3, 13, 1, 64, 8, 5, 32})); err != nil {
		return err
	}

	// Temporal frames: a real keyframe (payload + topology) and a delta
	// frame against it, in the root package's corpus.
	m, err := amr.NewMesh(2, 8, [3]int{1, 1, 1})
	if err != nil {
		return err
	}
	if err := m.Refine(m.Roots()[0]); err != nil {
		return err
	}
	n := m.NumBlocks() * m.CellsPerBlock()
	stream := wave(n)
	framePayload, err := sz.New().Compress(stream, []int{n}, bound)
	if err != nil {
		return err
	}
	frame, err := container.Wrap("sz", n, framePayload)
	if err != nil {
		return err
	}
	tempDir := filepath.Join("testdata", "fuzz", "FuzzDecompressSnapshot")
	if err := write(tempDir, "seed-keyframe", corpusEntry(true, frame, m.Structure())); err != nil {
		return err
	}
	if err := write(tempDir, "seed-delta-no-key", corpusEntry(false, frame, []byte{})); err != nil {
		return err
	}
	if err := write(tempDir, "seed-keyframe-bitflip", corpusEntry(true, flipMiddle(frame), m.Structure())); err != nil {
		return err
	}
	if err := temporalWireSeeds(); err != nil {
		return err
	}
	return tacSeeds()
}

// resealWire frames a hand-built body in the shared ZMT1/ZMM1 envelope
// (magic + body + CRC32-C over the body), so seeds probing the length and
// count validation are not rejected by the checksum first.
func resealWire(magic string, body []byte) []byte {
	b := append([]byte(magic), body...)
	crc := crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli))
	return binary.LittleEndian.AppendUint32(b, crc)
}

// temporalWireSeeds writes the ZMT1 temporal-frame and ZMM1 manifest corpora
// for internal/wire: real keyframe and delta frames off a temporal encoder,
// their mutations, and handcrafted declared-length/count bombs that must be
// rejected before any allocation.
func temporalWireSeeds() error {
	m, err := zmesh.NewMesh(2, 8, [3]int{2, 1, 1})
	if err != nil {
		return err
	}
	if err := m.Refine(m.Roots()[0]); err != nil {
		return err
	}
	enc, err := zmesh.NewTemporalEncoder(zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "sz"})
	if err != nil {
		return err
	}
	var frames [][]byte
	var rows []wire.ManifestFrame
	for i := 0; i < 2; i++ {
		phase := 0.3 * float64(i)
		f := zmesh.SampleField(m, "dens", func(x, y, z float64) float64 {
			return math.Sin(9*x+phase) * math.Cos(5*y)
		})
		tc, err := enc.CompressSnapshot(f, zmesh.AbsBound(1e-3))
		if err != nil {
			return err
		}
		frame, err := wire.EncodeTemporalFrame(&wire.TemporalFrame{
			Keyframe: tc.Keyframe, Field: tc.FieldName, Layout: tc.Layout.String(),
			Curve: tc.Curve, Codec: tc.Codec, NumValues: tc.NumValues,
			Bound: tc.Bound, Structure: tc.Structure, Payload: tc.Payload,
		})
		if err != nil {
			return err
		}
		frames = append(frames, frame)
		sum := sha256.Sum256(frame)
		rows = append(rows, wire.ManifestFrame{
			Keyframe: tc.Keyframe, NumValues: tc.NumValues, Bound: tc.Bound,
			Bytes: int64(len(frame)), Object: hex.EncodeToString(sum[:]),
		})
	}

	frameDir := filepath.Join("internal/wire", "testdata", "fuzz", "FuzzTemporalFrame")
	if err := write(frameDir, "seed-keyframe", corpusEntry(frames[0])); err != nil {
		return err
	}
	if err := write(frameDir, "seed-delta", corpusEntry(frames[1])); err != nil {
		return err
	}
	if err := write(frameDir, "seed-bitflip", corpusEntry(flipMiddle(frames[0]))); err != nil {
		return err
	}
	if err := write(frameDir, "seed-truncated", corpusEntry(frames[0][:len(frames[0])/2])); err != nil {
		return err
	}
	// A keyframe header whose declared payload length (2^60) dwarfs the
	// buffer, with a valid CRC so only the length check can reject it.
	appendStr := func(b []byte, s string) []byte {
		return append(binary.AppendUvarint(b, uint64(len(s))), s...)
	}
	bomb := []byte{1, 1} // version, keyframe flag
	for _, s := range []string{"dens", "zmesh", "hilbert", "sz"} {
		bomb = appendStr(bomb, s)
	}
	bomb = binary.AppendUvarint(bomb, 128)           // numValues
	bomb = binary.LittleEndian.AppendUint64(bomb, 0) // bound bits
	bomb = binary.AppendUvarint(bomb, 4)             // structure len
	bomb = append(bomb, "mesh"...)                   //
	bomb = binary.AppendUvarint(bomb, 1<<60)         // payload-length bomb
	if err := write(frameDir, "seed-payload-len-bomb", corpusEntry(resealWire("ZMT1", bomb))); err != nil {
		return err
	}

	manifest, err := wire.EncodeManifest(&wire.Manifest{Fields: []wire.ManifestField{{
		Name: "dens", Layout: "zmesh", Curve: "hilbert", Codec: "sz", Frames: rows,
	}}})
	if err != nil {
		return err
	}
	manifestDir := filepath.Join("internal/wire", "testdata", "fuzz", "FuzzManifest")
	if err := write(manifestDir, "seed-valid", corpusEntry(manifest)); err != nil {
		return err
	}
	if err := write(manifestDir, "seed-bitflip", corpusEntry(flipMiddle(manifest))); err != nil {
		return err
	}
	if err := write(manifestDir, "seed-truncated", corpusEntry(manifest[:len(manifest)/2])); err != nil {
		return err
	}
	// One field declaring 2^60 frames: the parser must refuse the count
	// against the remaining bytes before sizing anything from it.
	mbomb := []byte{1}                     // version
	mbomb = binary.AppendUvarint(mbomb, 1) // one field
	for _, s := range []string{"dens", "zmesh", "hilbert", "sz"} {
		mbomb = appendStr(mbomb, s)
	}
	mbomb = binary.AppendUvarint(mbomb, 1<<60) // frame-count bomb
	return write(manifestDir, "seed-frame-count-bomb", corpusEntry(resealWire("ZMM1", mbomb)))
}

// tacSeeds writes the zTAC frame corpus for the root package's
// FuzzTACFrame: a valid frame for the same sedov checkpoint the fuzz target
// decodes against (extracted bare from the container envelope so mutations
// reach the frame parser instead of dying on the envelope CRC), a bit flip,
// a truncation, and a handcrafted declared-box-count bomb that must be
// rejected before any allocation.
func tacSeeds() error {
	ck, err := zmesh.Generate("sedov", zmesh.GenerateOptions{
		Resolution: 64, TScale: 0.5, BlockSize: 8,
		RootDims: [3]int{2, 2, 1}, MaxDepth: 2, Threshold: 0.35,
	})
	if err != nil {
		return fmt.Errorf("tac seeds: %w", err)
	}
	dens, ok := ck.Field("dens")
	if !ok {
		return fmt.Errorf("tac seeds: dens missing")
	}
	enc, err := zmesh.NewEncoder(ck.Mesh, zmesh.Options{Layout: zmesh.LayoutTAC, Curve: "hilbert", Codec: "sz"})
	if err != nil {
		return err
	}
	c, err := enc.CompressField(dens, compress.AbsBound(1e-3))
	if err != nil {
		return err
	}
	env, err := container.Unwrap(c.Payload)
	if err != nil {
		return fmt.Errorf("tac seeds: unwrap: %w", err)
	}
	tacFrame := env.Payload
	dir := filepath.Join("testdata", "fuzz", "FuzzTACFrame")
	if err := write(dir, "seed-valid-frame", corpusEntry(tacFrame)); err != nil {
		return err
	}
	if err := write(dir, "seed-bitflip", corpusEntry(flipMiddle(tacFrame))); err != nil {
		return err
	}
	if err := write(dir, "seed-truncated", corpusEntry(tacFrame[:len(tacFrame)/2])); err != nil {
		return err
	}
	// Header declaring 2^60 boxes over the real value count: the decoder
	// must reject the count against the recipe's plan before sizing anything
	// from it.
	bomb := append([]byte("zTAC\x01"), binary.AppendUvarint(nil, uint64(c.NumValues))...)
	bomb = binary.AppendUvarint(bomb, 1<<60)
	return write(dir, "seed-box-count-bomb", corpusEntry(bomb))
}
