// Command e2esmoke is the CI end-to-end smoke test for zmeshd: it boots a
// built daemon binary on an ephemeral port, round-trips a generated
// simulation checkpoint through the public client, checks the result
// bit-identical to the in-process library path, scrapes /debug/vars for the
// expected telemetry, and finally SIGTERMs the daemon and requires a clean
// drain (exit code 0).
//
// Usage (mirrors .github/workflows/ci.yml):
//
//	go build -o /tmp/zmeshd ./cmd/zmeshd
//	go run ./internal/tools/e2esmoke -bin /tmp/zmeshd
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	zmesh "repro"
	"repro/client"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

const listenPrefix = "zmeshd: listening on "

func main() {
	var (
		bin     = flag.String("bin", "", "path to a built zmeshd binary (required)")
		problem = flag.String("problem", "sod", "simulation problem for the test checkpoint")
		timeout = flag.Duration("timeout", 2*time.Minute, "overall deadline")
	)
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "e2esmoke: -bin is required")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *bin, *problem); err != nil {
		fmt.Fprintf(os.Stderr, "e2esmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("e2esmoke: PASS")
}

func run(ctx context.Context, bin, problem string) error {
	cmd := exec.CommandContext(ctx, bin, "-addr", "127.0.0.1:0")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", bin, err)
	}
	// If we bail out early for any reason, don't leave an orphan daemon.
	defer func() { _ = cmd.Process.Kill() }()

	// The daemon prints its bound address to stdout once the listener is up.
	baseURL := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			if u, ok := strings.CutPrefix(line, listenPrefix); ok {
				baseURL <- strings.TrimSpace(u)
			}
		}
	}()
	var base string
	select {
	case base = <-baseURL:
	case <-ctx.Done():
		return fmt.Errorf("daemon never announced its address: %w", ctx.Err())
	case <-time.After(15 * time.Second):
		return fmt.Errorf("daemon never announced its address within 15s")
	}
	fmt.Printf("e2esmoke: daemon up at %s\n", base)

	if err := roundTrip(ctx, base, problem); err != nil {
		return err
	}
	if err := streamRoundTrip(ctx, base, problem); err != nil {
		return err
	}
	if err := checkpointRoundTrip(ctx, base, problem); err != nil {
		return err
	}
	if err := checkVars(ctx, base); err != nil {
		return err
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signaling daemon: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exited uncleanly after SIGTERM: %w", err)
		}
	case <-ctx.Done():
		return fmt.Errorf("daemon did not exit after SIGTERM: %w", ctx.Err())
	}
	fmt.Println("e2esmoke: daemon drained cleanly")
	return nil
}

// roundTrip registers a generated checkpoint and pushes its fields through
// the service, requiring byte-identical artifacts and bit-identical
// reconstructions versus the in-process library path.
func roundTrip(ctx context.Context, base, problem string) error {
	ck, err := zmesh.Generate(problem, zmesh.GenerateOptions{Resolution: 64})
	if err != nil {
		return fmt.Errorf("generating checkpoint: %w", err)
	}
	opt := zmesh.DefaultOptions()
	bound := zmesh.AbsBound(1e-3)

	enc, err := zmesh.NewEncoder(ck.Mesh, opt)
	if err != nil {
		return err
	}
	dec := zmesh.NewDecoder(ck.Mesh)

	cl := client.New(base)
	id, err := cl.Register(ctx, ck.Mesh)
	if err != nil {
		return fmt.Errorf("registering mesh: %w", err)
	}
	fmt.Printf("e2esmoke: registered %s checkpoint as %s (%d fields)\n", problem, id[:12], len(ck.Fields))

	for _, f := range ck.Fields {
		want, err := enc.CompressField(f, bound)
		if err != nil {
			return fmt.Errorf("library compress %s: %w", f.Name, err)
		}
		got, err := cl.CompressField(ctx, id, f, opt, bound)
		if err != nil {
			return fmt.Errorf("server compress %s: %w", f.Name, err)
		}
		if string(got.Payload) != string(want.Payload) {
			return fmt.Errorf("field %s: server artifact differs from library artifact (%d vs %d bytes)",
				f.Name, len(got.Payload), len(want.Payload))
		}
		wantField, err := dec.DecompressField(want)
		if err != nil {
			return fmt.Errorf("library decompress %s: %w", f.Name, err)
		}
		values, err := cl.Decompress(ctx, id, got)
		if err != nil {
			return fmt.Errorf("server decompress %s: %w", f.Name, err)
		}
		wantValues := zmesh.FieldValues(wantField)
		if len(values) != len(wantValues) {
			return fmt.Errorf("field %s: %d values from server, library has %d", f.Name, len(values), len(wantValues))
		}
		for i := range values {
			if math.Float64bits(values[i]) != math.Float64bits(wantValues[i]) {
				return fmt.Errorf("field %s: value %d differs: server %x, library %x",
					f.Name, i, math.Float64bits(values[i]), math.Float64bits(wantValues[i]))
			}
		}
		fmt.Printf("e2esmoke: field %-8s round-tripped bit-exact (%d values, %d byte artifact)\n",
			f.Name, len(values), len(got.Payload))
	}
	return nil
}

// streamRoundTrip pushes one field through the chunked streaming endpoints
// with a deliberately small chunk size (many frames) and requires the
// artifact and the reconstruction bit-identical to the buffered path.
func streamRoundTrip(ctx context.Context, base, problem string) error {
	ck, err := zmesh.Generate(problem, zmesh.GenerateOptions{Resolution: 64})
	if err != nil {
		return fmt.Errorf("generating checkpoint: %w", err)
	}
	f := ck.Fields[0]
	opt := zmesh.DefaultOptions()
	bound := zmesh.AbsBound(1e-3)
	enc, err := zmesh.NewEncoder(ck.Mesh, opt)
	if err != nil {
		return err
	}
	want, err := enc.CompressField(f, bound)
	if err != nil {
		return err
	}

	cl := client.New(base, client.WithChunkBytes(4096))
	id, err := cl.Register(ctx, ck.Mesh)
	if err != nil {
		return err
	}
	values := zmesh.FieldValues(f)
	got, err := cl.CompressStream(ctx, id, f.Name, bytes.NewReader(wire.AppendFloats(nil, values)), opt, bound)
	if err != nil {
		return fmt.Errorf("compress-stream %s: %w", f.Name, err)
	}
	if string(got.Payload) != string(want.Payload) {
		return fmt.Errorf("field %s: streamed artifact differs from library artifact (%d vs %d bytes)",
			f.Name, len(got.Payload), len(want.Payload))
	}
	var out bytes.Buffer
	n, err := cl.DecompressStream(ctx, id, got, &out)
	if err != nil {
		return fmt.Errorf("decompress-stream %s: %w", f.Name, err)
	}
	if n != len(values) {
		return fmt.Errorf("field %s: decompress-stream returned %d values, want %d", f.Name, n, len(values))
	}
	streamed, err := wire.DecodeFloats(out.Bytes())
	if err != nil {
		return err
	}
	dec := zmesh.NewDecoder(ck.Mesh)
	wantField, err := dec.DecompressField(want)
	if err != nil {
		return err
	}
	wantValues := zmesh.FieldValues(wantField)
	for i := range wantValues {
		if math.Float64bits(streamed[i]) != math.Float64bits(wantValues[i]) {
			return fmt.Errorf("field %s: streamed value %d differs", f.Name, i)
		}
	}
	fmt.Printf("e2esmoke: field %-8s round-tripped bit-exact via chunked streaming (%d values)\n", f.Name, n)
	return nil
}

// checkpointRoundTrip compresses every field of a snapshot in one batch
// request against a fresh pipeline (a curve no earlier step used) and
// requires exactly one recipe build for the whole checkpoint — the paper's
// amortization claim, asserted against the daemon's own counters.
func checkpointRoundTrip(ctx context.Context, base, problem string) error {
	ck, err := zmesh.Generate(problem, zmesh.GenerateOptions{Resolution: 64})
	if err != nil {
		return fmt.Errorf("generating checkpoint: %w", err)
	}
	// "morton" keeps this pipeline distinct from the default "hilbert" used
	// by the earlier round trips, so the recipe.builds delta isolates the
	// batch request.
	opt := zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "morton", Codec: "sz"}
	bound := zmesh.AbsBound(1e-3)

	buildsBefore, err := scrapeCounter(ctx, base, "recipe.builds")
	if err != nil {
		return err
	}
	cl := client.New(base)
	id, err := cl.Register(ctx, ck.Mesh)
	if err != nil {
		return err
	}
	arts, err := cl.CompressCheckpoint(ctx, id, ck, opt, bound)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if len(arts) != len(ck.Fields) {
		return fmt.Errorf("checkpoint returned %d artifacts for %d fields", len(arts), len(ck.Fields))
	}
	enc, err := zmesh.NewEncoder(ck.Mesh, opt)
	if err != nil {
		return err
	}
	for i, f := range ck.Fields {
		want, err := enc.CompressField(f, bound)
		if err != nil {
			return err
		}
		if string(arts[i].Payload) != string(want.Payload) {
			return fmt.Errorf("field %s: batch artifact differs from library artifact", f.Name)
		}
	}
	buildsAfter, err := scrapeCounter(ctx, base, "recipe.builds")
	if err != nil {
		return err
	}
	if got := buildsAfter - buildsBefore; got != 1 {
		return fmt.Errorf("checkpoint of %d fields cost %d recipe builds, want exactly 1", len(ck.Fields), got)
	}
	fmt.Printf("e2esmoke: checkpoint of %d fields batch-compressed with exactly 1 recipe build\n", len(ck.Fields))
	return nil
}

// scrapeCounter reads one counter from /debug/vars.
func scrapeCounter(ctx context.Context, base, name string) (int64, error) {
	snap, err := scrapeVars(ctx, base)
	if err != nil {
		return 0, err
	}
	return snap.Counters[name], nil
}

// scrapeVars fetches and parses the daemon's telemetry snapshot.
func scrapeVars(ctx context.Context, base string) (*telemetry.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+wire.PathVars, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("scraping %s: %w", wire.PathVars, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s returned %d", wire.PathVars, resp.StatusCode)
	}
	var vars struct {
		Zmeshd telemetry.Snapshot `json:"zmeshd"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", wire.PathVars, err)
	}
	return &vars.Zmeshd, nil
}

// checkVars scrapes /debug/vars and requires the daemon's telemetry to show
// the traffic we just sent: requests counted on every endpoint exercised
// (including the streaming and checkpoint ones), recipes built, cache hits
// from the second-and-later fields reusing the encoder.
func checkVars(ctx context.Context, base string) error {
	snap, err := scrapeVars(ctx, base)
	if err != nil {
		return err
	}
	checks := []struct {
		name string
		min  int64
	}{
		{"server.register.requests", 1},
		{"server.compress.requests", 1},
		{"server.decompress.requests", 1},
		{"server.compress_stream.requests", 1},
		{"server.decompress_stream.requests", 1},
		{"server.checkpoint.requests", 1},
		{"server.checkpoint.fields", 2}, // the batch carried the whole snapshot
		{"server.cache.misses", 1},
		{"server.cache.hits", 1}, // later fields reuse the first field's encoder
		{"recipe.builds", 1},
	}
	for _, c := range checks {
		if got := snap.Counters[c.name]; got < c.min {
			return fmt.Errorf("/debug/vars counter %s = %d, want >= %d (counters: %v)",
				c.name, got, c.min, snap.Counters)
		}
	}
	fmt.Printf("e2esmoke: telemetry ok (%d recipe builds, %d cache hits, %d compress requests, %d checkpoint fields)\n",
		snap.Counters["recipe.builds"], snap.Counters["server.cache.hits"],
		snap.Counters["server.compress.requests"], snap.Counters["server.checkpoint.fields"])
	return nil
}
