package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// FloatAssembler incrementally decodes a float64-LE value stream that
// arrives in arbitrarily split byte spans — the decode side of the chunked
// wire mode, where a float64 may straddle a chunk boundary. Feed spans in
// order, then Finish to take the decoded values. The zero value is ready
// to use; Reset adopts a caller-owned destination buffer so pooled callers
// decode without allocating.
type FloatAssembler struct {
	vals []float64
	rem  [8]byte
	nrem int
}

// Reset clears the assembler and adopts buf (len 0..cap reused) as the
// decode destination.
func (a *FloatAssembler) Reset(buf []float64) {
	a.vals = buf[:0]
	a.nrem = 0
}

// Grow ensures capacity for n total values, so callers that know the
// stream length (the server knows the mesh's cell count) pay one exact
// allocation instead of append's geometric growth.
func (a *FloatAssembler) Grow(n int) {
	if cap(a.vals) < n {
		next := make([]float64, len(a.vals), n)
		copy(next, a.vals)
		a.vals = next
	}
}

// Len reports the number of values decoded so far (excluding a pending
// partial value).
func (a *FloatAssembler) Len() int { return len(a.vals) }

// Feed decodes p into the value buffer, carrying at most 7 remainder bytes
// to the next call. p is not retained.
func (a *FloatAssembler) Feed(p []byte) {
	if a.nrem > 0 {
		n := copy(a.rem[a.nrem:], p)
		a.nrem += n
		p = p[n:]
		if a.nrem < 8 {
			return
		}
		a.vals = append(a.vals, math.Float64frombits(binary.LittleEndian.Uint64(a.rem[:])))
		a.nrem = 0
	}
	whole := len(p) &^ 7
	if src, ok := ViewFloats(p[:whole]); ok {
		a.vals = append(a.vals, src...)
	} else {
		for i := 0; i < whole; i += 8 {
			a.vals = append(a.vals, math.Float64frombits(binary.LittleEndian.Uint64(p[i:])))
		}
	}
	a.nrem = copy(a.rem[:], p[whole:])
}

// Finish returns the decoded values. A trailing partial value (stream
// length not a multiple of 8) is an error, mirroring DecodeFloats.
func (a *FloatAssembler) Finish() ([]float64, error) {
	if a.nrem != 0 {
		return nil, fmt.Errorf("wire: value stream ends with %d trailing bytes, not a multiple of 8", a.nrem)
	}
	return a.vals, nil
}
