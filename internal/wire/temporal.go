package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Temporal frame framing: the wire form of one zmesh.TemporalCompressed —
// the unit a simulation posts to a zmeshd temporal session. The grammar is
// self-describing and self-checking so a frame can be persisted verbatim in
// the content-addressed artifact store and replayed later without any
// side-channel metadata:
//
//	frame   = magic version flags
//	        | str(field) str(layout) str(curve) str(codec)
//	        | uvarint numValues | u64le boundBits
//	        | uvarint structureLen | structure
//	        | uvarint payloadLen | payload
//	        | u32le crc32c(everything after magic, before the crc)
//	magic   = "ZMT1"                                  (4 bytes)
//	version = u8 (currently 1)
//	flags   = u8: bit0 keyframe, bit1 forced keyframe
//	str     = uvarint len | bytes                     (len <= MaxFrameString)
//
// structure is the serialized mesh topology and must be present exactly on
// keyframes; payload is the container-enveloped codec output. boundBits is
// the IEEE 754 encoding of the resolved absolute error bound. The forced
// bit marks a keyframe the client emitted for recovery (session eviction or
// a dangling delta) rather than for a topology change — the server counts
// these separately so recovery storms are visible in telemetry.
var (
	temporalMagic = [4]byte{'Z', 'M', 'T', '1'}

	// ErrFrameMagic reports a buffer that does not start with the temporal
	// frame magic.
	ErrFrameMagic = errors.New("wire: not a temporal frame (bad magic)")
	// ErrFrameChecksum reports a frame whose body fails its CRC32-C.
	ErrFrameChecksum = errors.New("wire: temporal frame checksum mismatch")
	// ErrFrameTruncated reports a frame whose declared lengths run past the
	// end of the buffer — rejected before any allocation is sized from them.
	ErrFrameTruncated = errors.New("wire: truncated temporal frame")
)

const (
	temporalVersion = 1

	// MaxFrameString caps the field/layout/curve/codec identity strings of a
	// temporal frame.
	MaxFrameString = 4096
	// maxFrameValues caps the declared value count: large enough for any
	// real mesh, small enough that downstream arithmetic cannot overflow.
	maxFrameValues = 1 << 40

	frameKeyframeFlag = 1 << 0
	frameForcedFlag   = 1 << 1
)

// ContentTypeTemporal tags temporal frame request bodies.
const ContentTypeTemporal = "application/x-zmesh-temporal"

// TemporalFrame is the parsed form of one temporal wire frame.
type TemporalFrame struct {
	// Keyframe marks a spatially-coded snapshot; Forced additionally marks a
	// keyframe emitted for stream recovery rather than a topology change.
	Keyframe bool
	Forced   bool
	// Field, Layout, Curve and Codec are the stream identity, matching the
	// zmesh.Compressed metadata of the frame.
	Field  string
	Layout string
	Curve  string
	Codec  string
	// NumValues is the stream length in float64 values.
	NumValues int
	// Bound is the resolved absolute error bound of the frame.
	Bound float64
	// Structure is the serialized topology (keyframes only, nil otherwise).
	Structure []byte
	// Payload is the container-enveloped codec output.
	Payload []byte
}

func appendFrameString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendTemporalFrame appends the wire encoding of f to dst. Keyframes must
// carry a structure and delta frames must not; identity strings are capped
// at MaxFrameString.
func AppendTemporalFrame(dst []byte, f *TemporalFrame) ([]byte, error) {
	for _, s := range []string{f.Field, f.Layout, f.Curve, f.Codec} {
		if len(s) > MaxFrameString {
			return dst, fmt.Errorf("wire: temporal frame identity string is %d bytes, max %d", len(s), MaxFrameString)
		}
	}
	if f.Keyframe && len(f.Structure) == 0 {
		return dst, errors.New("wire: temporal keyframe without structure")
	}
	if !f.Keyframe && len(f.Structure) != 0 {
		return dst, errors.New("wire: temporal delta frame with structure")
	}
	if !f.Keyframe && f.Forced {
		return dst, errors.New("wire: forced flag on a delta frame")
	}
	if f.NumValues < 0 || uint64(f.NumValues) > maxFrameValues {
		return dst, fmt.Errorf("wire: temporal frame value count %d out of range", f.NumValues)
	}
	dst = append(dst, temporalMagic[:]...)
	body := len(dst)
	var flags byte
	if f.Keyframe {
		flags |= frameKeyframeFlag
	}
	if f.Forced {
		flags |= frameForcedFlag
	}
	dst = append(dst, temporalVersion, flags)
	dst = appendFrameString(dst, f.Field)
	dst = appendFrameString(dst, f.Layout)
	dst = appendFrameString(dst, f.Curve)
	dst = appendFrameString(dst, f.Codec)
	dst = binary.AppendUvarint(dst, uint64(f.NumValues))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f.Bound))
	dst = binary.AppendUvarint(dst, uint64(len(f.Structure)))
	dst = append(dst, f.Structure...)
	dst = binary.AppendUvarint(dst, uint64(len(f.Payload)))
	dst = append(dst, f.Payload...)
	sum := crc32.Checksum(dst[body:], castagnoliWire)
	dst = binary.LittleEndian.AppendUint32(dst, sum)
	return dst, nil
}

// EncodeTemporalFrame is AppendTemporalFrame into a fresh buffer.
func EncodeTemporalFrame(f *TemporalFrame) ([]byte, error) {
	return AppendTemporalFrame(nil, f)
}

// frameCursor walks a frame body with bounds-checked reads; every declared
// length is validated against the remaining bytes before any slice is taken,
// so a lying length costs nothing.
type frameCursor struct {
	buf []byte
}

func (c *frameCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf)
	if n <= 0 {
		return 0, ErrFrameTruncated
	}
	c.buf = c.buf[n:]
	return v, nil
}

func (c *frameCursor) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(c.buf)) {
		return nil, ErrFrameTruncated
	}
	out := c.buf[:n]
	c.buf = c.buf[n:]
	return out, nil
}

func (c *frameCursor) str(what string) (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > MaxFrameString {
		return "", fmt.Errorf("wire: temporal frame %s is %d bytes, max %d", what, n, MaxFrameString)
	}
	b, err := c.bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// ParseTemporalFrame parses one temporal frame from buf. The returned
// Structure and Payload slices alias buf; callers that outlive the buffer
// must copy them. The frame must span buf exactly (no trailing bytes).
func ParseTemporalFrame(buf []byte) (*TemporalFrame, error) {
	if len(buf) < 4 || [4]byte(buf[:4]) != temporalMagic {
		return nil, ErrFrameMagic
	}
	if len(buf) < 4+2+4 {
		return nil, ErrFrameTruncated
	}
	body, crcBytes := buf[4:len(buf)-4], buf[len(buf)-4:]
	if crc32.Checksum(body, castagnoliWire) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, ErrFrameChecksum
	}
	c := frameCursor{buf: body}
	verFlags, err := c.bytes(2)
	if err != nil {
		return nil, err
	}
	if verFlags[0] != temporalVersion {
		return nil, fmt.Errorf("wire: temporal frame version %d, want %d", verFlags[0], temporalVersion)
	}
	flags := verFlags[1]
	if flags&^(frameKeyframeFlag|frameForcedFlag) != 0 {
		return nil, fmt.Errorf("wire: temporal frame has unknown flags %#x", flags)
	}
	f := &TemporalFrame{
		Keyframe: flags&frameKeyframeFlag != 0,
		Forced:   flags&frameForcedFlag != 0,
	}
	if f.Field, err = c.str("field name"); err != nil {
		return nil, err
	}
	if f.Layout, err = c.str("layout"); err != nil {
		return nil, err
	}
	if f.Curve, err = c.str("curve"); err != nil {
		return nil, err
	}
	if f.Codec, err = c.str("codec"); err != nil {
		return nil, err
	}
	nv, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if nv > maxFrameValues {
		return nil, fmt.Errorf("wire: temporal frame declares %d values, max %d", nv, maxFrameValues)
	}
	f.NumValues = int(nv)
	bb, err := c.bytes(8)
	if err != nil {
		return nil, err
	}
	f.Bound = math.Float64frombits(binary.LittleEndian.Uint64(bb))
	if math.IsNaN(f.Bound) || math.IsInf(f.Bound, 0) || f.Bound < 0 {
		return nil, fmt.Errorf("wire: temporal frame bound %v is not a finite non-negative value", f.Bound)
	}
	sLen, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if f.Structure, err = c.bytes(sLen); err != nil {
		return nil, err
	}
	pLen, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if f.Payload, err = c.bytes(pLen); err != nil {
		return nil, err
	}
	if len(c.buf) != 0 {
		return nil, fmt.Errorf("wire: temporal frame has %d trailing bytes", len(c.buf))
	}
	if f.Keyframe && len(f.Structure) == 0 {
		return nil, errors.New("wire: temporal keyframe without structure")
	}
	if !f.Keyframe && len(f.Structure) != 0 {
		return nil, errors.New("wire: temporal delta frame with structure")
	}
	if !f.Keyframe && f.Forced {
		return nil, errors.New("wire: forced flag on a delta frame")
	}
	if len(f.Structure) == 0 {
		f.Structure = nil
	}
	return f, nil
}

// Temporal session and checkpoint endpoints (see DESIGN.md "Temporal
// checkpoint store").
const (
	// PathSessions is the temporal session collection: POST creates a
	// session, per-session subpaths append frames and seal.
	PathSessions = "/v1/sessions"
	// PathCheckpoints is the sealed-checkpoint collection: GETs serve
	// summaries, field reconstructions (full, level-prefix, or tiered) and
	// topology from the content-addressed artifact store.
	PathCheckpoints = "/v1/checkpoints"
)

// SessionFramesPath returns the frame-append endpoint of one session stream.
func SessionFramesPath(sessionID, field string) string {
	return PathSessions + "/" + sessionID + "/streams/" + field + "/frames"
}

// SessionSealPath returns the seal endpoint of a session.
func SessionSealPath(sessionID string) string { return PathSessions + "/" + sessionID + "/seal" }

// CheckpointInfoPath returns the JSON summary endpoint of a checkpoint.
func CheckpointInfoPath(checkpointID string) string { return PathCheckpoints + "/" + checkpointID }

// CheckpointFieldPath returns the field read endpoint of a checkpoint.
func CheckpointFieldPath(checkpointID, field string) string {
	return PathCheckpoints + "/" + checkpointID + "/fields/" + field
}

// CheckpointStructurePath returns the topology read endpoint of a
// checkpoint.
func CheckpointStructurePath(checkpointID string) string {
	return PathCheckpoints + "/" + checkpointID + "/structure"
}

// Query parameters of the session and checkpoint endpoints.
const (
	// ParamSeq is the frame-append sequence number: the zero-based index the
	// client expects this frame to land at in its stream. It makes appends
	// exactly-once under retries — a re-sent frame whose sequence and bytes
	// match the last accepted one is acknowledged idempotently, and any
	// other mismatch is rejected with 412 so the client does a full resync
	// instead of silently forking the stream.
	ParamSeq = "seq"
	// ParamSnapshot selects the snapshot index (default: the last one).
	ParamSnapshot = "snap"
	// ParamLevels requests a progressive level-prefix read: the first K
	// refinement levels of the level-order stream.
	ParamLevels = "levels"
	// ParamTiers requests a tiered progressive read: K multilevel tiers with
	// strictly decreasing error bounds, batch-framed one section per tier.
	ParamTiers = "tiers"
)

// Response headers of the checkpoint read endpoints.
const (
	// HeaderSnapshot is the snapshot index a read resolved to.
	HeaderSnapshot = "X-Zmesh-Snapshot"
	// HeaderSnapshots is the total snapshot count of the field's stream.
	HeaderSnapshots = "X-Zmesh-Snapshots"
	// HeaderLevels is the number of refinement levels a level-prefix read
	// covers.
	HeaderLevels = "X-Zmesh-Levels"
	// HeaderMeshLevels is the total refinement level count of the snapshot's
	// topology.
	HeaderMeshLevels = "X-Zmesh-Mesh-Levels"
	// HeaderTiers is the tier count of a tiered progressive read.
	HeaderTiers = "X-Zmesh-Tiers"
)

// SessionResponse is the JSON body of a successful session creation.
type SessionResponse struct {
	SessionID string `json:"session_id"`
}

// FrameResponse is the JSON body of a successful frame append.
type FrameResponse struct {
	Field string `json:"field"`
	// FrameIndex is the zero-based position of the frame in its stream.
	FrameIndex int  `json:"frame_index"`
	Keyframe   bool `json:"keyframe"`
	Forced     bool `json:"forced,omitempty"`
	// Object is the content address (hex SHA-256) the frame bytes were
	// persisted under.
	Object string `json:"object"`
	Bytes  int64  `json:"bytes"`
}

// SealResponse is the JSON body of a successful session seal.
type SealResponse struct {
	// CheckpointID is the content address of the manifest — the handle every
	// checkpoint read endpoint takes.
	CheckpointID string `json:"checkpoint_id"`
	Fields       int    `json:"fields"`
	Frames       int    `json:"frames"`
	Bytes        int64  `json:"bytes"`
}

// CheckpointFieldInfo summarizes one field stream of a checkpoint.
type CheckpointFieldInfo struct {
	Name      string `json:"name"`
	Layout    string `json:"layout"`
	Curve     string `json:"curve"`
	Codec     string `json:"codec"`
	Snapshots int    `json:"snapshots"`
	Keyframes int    `json:"keyframes"`
	Bytes     int64  `json:"bytes"`
	// Bounds is the per-snapshot resolved absolute error bound.
	Bounds []float64 `json:"bounds"`
}

// CheckpointResponse is the JSON body of GET /v1/checkpoints/{id}.
type CheckpointResponse struct {
	CheckpointID string                `json:"checkpoint_id"`
	Fields       []CheckpointFieldInfo `json:"fields"`
}
