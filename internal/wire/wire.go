// Package wire defines the zmeshd HTTP protocol constants and the small
// encoding helpers shared by the server (internal/server) and the public
// client package. Keeping them in one place makes the wire format a single
// point of truth: header names, the error-bound grammar, and the raw
// float64 framing used for field value streams.
//
// Protocol summary (see DESIGN.md "Service architecture"):
//
//	POST /v1/meshes                      body = Mesh.Structure bytes
//	  -> 200/201 JSON RegisterResponse   mesh_id = SHA-256(structure)
//	POST /v1/meshes/{id}/compress        body = float64-LE level-order values
//	  ?field=&layout=&curve=&codec=&bound=
//	  -> 200 container-enveloped payload, X-Zmesh-* metadata headers
//	POST /v1/meshes/{id}/decompress      body = container-enveloped payload
//	  ?field=&layout=&curve=
//	  -> 200 float64-LE level-order values, X-Zmesh-Num-Values header
//
// Overloaded servers shed with 429 + Retry-After (seconds); errors are JSON
// ErrorResponse bodies with conventional status codes.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/compress"
)

// Paths and path helpers.
const (
	// PathMeshes is the mesh registration collection.
	PathMeshes = "/v1/meshes"
	// PathVars is where the server exposes its expvar page (telemetry
	// registry included).
	PathVars = "/debug/vars"
	// PathHealth is the liveness probe.
	PathHealth = "/healthz"
	// PathRing is the cluster-topology endpoint: a GET returns the
	// RingResponse a routing client needs to compute placement (404 on a
	// single-node daemon). Clients fetch it at startup and re-fetch it
	// whenever a replica answers 421 Misdirected Request.
	PathRing = "/v1/ring"
)

// CompressPath returns the compress endpoint for a registered mesh.
func CompressPath(meshID string) string { return PathMeshes + "/" + meshID + "/compress" }

// DecompressPath returns the decompress endpoint for a registered mesh.
func DecompressPath(meshID string) string { return PathMeshes + "/" + meshID + "/decompress" }

// CompressStreamPath returns the chunked-streaming compress endpoint: the
// request body is a chunked stream (chunk.go) of float64-LE values, the
// response a chunked stream of the container-enveloped artifact.
func CompressStreamPath(meshID string) string {
	return PathMeshes + "/" + meshID + "/compress-stream"
}

// DecompressStreamPath returns the chunked-streaming decompress endpoint:
// the request body is a chunked stream of a container-enveloped artifact,
// the response a chunked stream of float64-LE values.
func DecompressStreamPath(meshID string) string {
	return PathMeshes + "/" + meshID + "/decompress-stream"
}

// CheckpointPath returns the batch checkpoint endpoint: one request
// compresses every field of a snapshot (batch.go framing both ways)
// against one cached encoder.
func CheckpointPath(meshID string) string { return PathMeshes + "/" + meshID + "/checkpoint" }

// StructurePath returns the peer structure-fetch endpoint: a GET yields the
// raw registered structure bytes (the preimage of the mesh id), or 404. A
// replica that receives traffic for a mesh it has never seen pulls the
// structure from a peer owner through this endpoint, verifies the SHA-256
// matches the requested id, and rebuilds the recipe locally.
func StructurePath(meshID string) string { return PathMeshes + "/" + meshID + "/structure" }

// Metadata headers. Compression responses carry the full artifact metadata
// so a client can reconstruct a zmesh.Compressed without parsing the
// envelope.
const (
	HeaderField     = "X-Zmesh-Field"
	HeaderLayout    = "X-Zmesh-Layout"
	HeaderCurve     = "X-Zmesh-Curve"
	HeaderCodec     = "X-Zmesh-Codec"
	HeaderNumValues = "X-Zmesh-Num-Values"

	ContentTypeBinary = "application/octet-stream"
	ContentTypeJSON   = "application/json"
)

// Query parameter names of the compress/decompress endpoints.
const (
	ParamField  = "field"
	ParamLayout = "layout"
	ParamCurve  = "curve"
	ParamCodec  = "codec"
	ParamBound  = "bound"
)

// RegisterResponse is the JSON body of a successful mesh registration.
type RegisterResponse struct {
	// MeshID is the hex SHA-256 of the structure bytes — content-addressed,
	// so re-registering the same topology is idempotent.
	MeshID string `json:"mesh_id"`
	// Blocks and Cells describe the decoded topology.
	Blocks int `json:"blocks"`
	Cells  int `json:"cells"`
	// Created is false when the mesh was already registered (the request
	// only refreshed its cache recency).
	Created bool `json:"created"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// RingResponse is the JSON body of GET /v1/ring: everything a client needs
// to rebuild the cluster's consistent-hash ring locally. Placement is a
// pure function of (nodes, vnodes, replication), so a client holding this
// response routes identically to every replica.
type RingResponse struct {
	// Nodes is the full cluster membership as advertised base URLs
	// (sorted; node identity is the verbatim string).
	Nodes []string `json:"nodes"`
	// VNodes is the virtual-node count per node.
	VNodes int `json:"vnodes"`
	// Replication is how many owners hold each mesh.
	Replication int `json:"replication"`
	// Self is the advertised URL of the replica that answered.
	Self string `json:"self"`
}

// FormatBound renders an error bound in the wire grammar: "abs:<v>" or
// "rel:<v>".
func FormatBound(b compress.Bound) string {
	return fmt.Sprintf("%s:%g", b.Mode, b.Value)
}

// ParseBound parses the "abs:<v>" / "rel:<v>" grammar produced by
// FormatBound. The value must be a positive finite float.
func ParseBound(s string) (compress.Bound, error) {
	mode, val, ok := strings.Cut(s, ":")
	if !ok {
		return compress.Bound{}, fmt.Errorf("wire: bound %q: want \"abs:<v>\" or \"rel:<v>\"", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return compress.Bound{}, fmt.Errorf("wire: bound %q: %w", s, err)
	}
	if !(v > 0) || math.IsInf(v, 0) {
		return compress.Bound{}, fmt.Errorf("wire: bound %q: value must be positive and finite", s)
	}
	switch mode {
	case "abs":
		return compress.AbsBound(v), nil
	case "rel":
		return compress.RelBound(v), nil
	}
	return compress.Bound{}, fmt.Errorf("wire: bound %q: unknown mode %q", s, mode)
}

// AppendFloats appends vals to dst in the wire framing: little-endian IEEE
// 754 float64, no header — the stream length is the byte length / 8. On
// little-endian builds the append is a single bulk copy via ViewBytes;
// otherwise it falls back to the per-element encoder.
func AppendFloats(dst []byte, vals []float64) []byte {
	if b, ok := ViewBytes(vals); ok {
		return append(dst, b...)
	}
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeFloats decodes a float64-LE stream. The byte length must be a
// multiple of 8.
func DecodeFloats(buf []byte) ([]float64, error) {
	return DecodeFloatsInto(nil, buf)
}

// DecodeFloatsInto is DecodeFloats with a caller-provided destination,
// reused when its capacity suffices — the hot-path variant for pooled
// request scratch. Validation runs before any allocation, so a ragged
// stream costs nothing. The result never aliases buf.
func DecodeFloatsInto(dst []float64, buf []byte) ([]float64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("wire: value stream is %d bytes, not a multiple of 8", len(buf))
	}
	n := len(buf) / 8
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]float64, n)
	}
	if src, ok := ViewFloats(buf); ok {
		copy(dst, src)
		return dst, nil
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return dst, nil
}
