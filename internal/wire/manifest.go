package wire

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Checkpoint manifest framing: the persisted index of one sealed temporal
// checkpoint. The manifest's content address (hex SHA-256 of these bytes) is
// the checkpoint id; it lists, per field stream, the content address of
// every frame object plus enough metadata to replay the stream without
// touching the objects:
//
//	manifest = magic version | uvarint nFields | field* | u32le crc32c
//	field    = str(name) str(layout) str(curve) str(codec)
//	         | uvarint nFrames | frame*
//	frame    = u8 flags | uvarint numValues | u64le boundBits
//	         | uvarint objectBytes | sha256 (32 raw bytes)
//	magic    = "ZMM1"                                 (4 bytes)
//	str      = uvarint len | bytes                    (len <= MaxFrameString)
//
// flags reuses the temporal frame flag bits (bit0 keyframe, bit1 forced).
// The crc covers everything after the magic and before itself. Declared
// counts are validated against the remaining buffer before any slice is
// sized from them: a frame occupies at least minManifestFrame bytes and a
// field at least minManifestField, so a declared-count bomb is rejected
// before allocation.
var (
	manifestMagic = [4]byte{'Z', 'M', 'M', '1'}

	// ErrManifestMagic reports a buffer that does not start with the
	// manifest magic.
	ErrManifestMagic = errors.New("wire: not a checkpoint manifest (bad magic)")
	// ErrManifestChecksum reports a manifest whose body fails its CRC32-C.
	ErrManifestChecksum = errors.New("wire: checkpoint manifest checksum mismatch")
)

const (
	manifestVersion = 1

	// minManifestFrame is the smallest wire size of one frame record:
	// flags(1) + numValues(1) + boundBits(8) + objectBytes(1) + sha256(32).
	minManifestFrame = 43
	// minManifestField is the smallest wire size of one field record: four
	// empty strings (1 byte each) + nFrames(1).
	minManifestField = 5
)

// Manifest is the parsed form of a checkpoint manifest.
type Manifest struct {
	Fields []ManifestField
}

// ManifestField is one field stream of a checkpoint.
type ManifestField struct {
	Name   string
	Layout string
	Curve  string
	Codec  string
	Frames []ManifestFrame
}

// ManifestFrame records one persisted temporal frame.
type ManifestFrame struct {
	Keyframe bool
	Forced   bool
	// NumValues is the stream length in float64 values.
	NumValues int
	// Bound is the resolved absolute error bound of the frame.
	Bound float64
	// Bytes is the size of the frame object.
	Bytes int64
	// Object is the content address (hex SHA-256) of the frame bytes.
	Object string
}

// AppendManifest appends the wire encoding of m to dst.
func AppendManifest(dst []byte, m *Manifest) ([]byte, error) {
	dst = append(dst, manifestMagic[:]...)
	body := len(dst)
	dst = append(dst, manifestVersion)
	dst = binary.AppendUvarint(dst, uint64(len(m.Fields)))
	for _, f := range m.Fields {
		for _, s := range []string{f.Name, f.Layout, f.Curve, f.Codec} {
			if len(s) > MaxFrameString {
				return dst, fmt.Errorf("wire: manifest identity string is %d bytes, max %d", len(s), MaxFrameString)
			}
		}
		dst = appendFrameString(dst, f.Name)
		dst = appendFrameString(dst, f.Layout)
		dst = appendFrameString(dst, f.Curve)
		dst = appendFrameString(dst, f.Codec)
		dst = binary.AppendUvarint(dst, uint64(len(f.Frames)))
		for _, fr := range f.Frames {
			var flags byte
			if fr.Keyframe {
				flags |= frameKeyframeFlag
			}
			if fr.Forced {
				flags |= frameForcedFlag
			}
			if fr.NumValues < 0 || uint64(fr.NumValues) > maxFrameValues {
				return dst, fmt.Errorf("wire: manifest frame value count %d out of range", fr.NumValues)
			}
			if fr.Bytes < 0 {
				return dst, fmt.Errorf("wire: manifest frame object size %d is negative", fr.Bytes)
			}
			sum, err := hex.DecodeString(fr.Object)
			if err != nil || len(sum) != 32 {
				return dst, fmt.Errorf("wire: manifest frame object %q is not a hex sha-256", fr.Object)
			}
			dst = append(dst, flags)
			dst = binary.AppendUvarint(dst, uint64(fr.NumValues))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(fr.Bound))
			dst = binary.AppendUvarint(dst, uint64(fr.Bytes))
			dst = append(dst, sum...)
		}
	}
	crc := crc32.Checksum(dst[body:], castagnoliWire)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	return dst, nil
}

// EncodeManifest is AppendManifest into a fresh buffer.
func EncodeManifest(m *Manifest) ([]byte, error) { return AppendManifest(nil, m) }

// ParseManifest parses a checkpoint manifest. The manifest must span buf
// exactly.
func ParseManifest(buf []byte) (*Manifest, error) {
	if len(buf) < 4 || [4]byte(buf[:4]) != manifestMagic {
		return nil, ErrManifestMagic
	}
	if len(buf) < 4+1+1+4 {
		return nil, ErrFrameTruncated
	}
	body, crcBytes := buf[4:len(buf)-4], buf[len(buf)-4:]
	if crc32.Checksum(body, castagnoliWire) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, ErrManifestChecksum
	}
	c := frameCursor{buf: body}
	ver, err := c.bytes(1)
	if err != nil {
		return nil, err
	}
	if ver[0] != manifestVersion {
		return nil, fmt.Errorf("wire: checkpoint manifest version %d, want %d", ver[0], manifestVersion)
	}
	nFields, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if nFields > uint64(len(c.buf))/minManifestField {
		return nil, fmt.Errorf("wire: manifest declares %d fields in %d bytes", nFields, len(c.buf))
	}
	m := &Manifest{Fields: make([]ManifestField, 0, nFields)}
	for i := uint64(0); i < nFields; i++ {
		var f ManifestField
		if f.Name, err = c.str("field name"); err != nil {
			return nil, err
		}
		if f.Layout, err = c.str("layout"); err != nil {
			return nil, err
		}
		if f.Curve, err = c.str("curve"); err != nil {
			return nil, err
		}
		if f.Codec, err = c.str("codec"); err != nil {
			return nil, err
		}
		nFrames, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if nFrames > uint64(len(c.buf))/minManifestFrame {
			return nil, fmt.Errorf("wire: manifest field %q declares %d frames in %d bytes", f.Name, nFrames, len(c.buf))
		}
		f.Frames = make([]ManifestFrame, 0, nFrames)
		for j := uint64(0); j < nFrames; j++ {
			hdr, err := c.bytes(1)
			if err != nil {
				return nil, err
			}
			flags := hdr[0]
			if flags&^(frameKeyframeFlag|frameForcedFlag) != 0 {
				return nil, fmt.Errorf("wire: manifest frame has unknown flags %#x", flags)
			}
			fr := ManifestFrame{
				Keyframe: flags&frameKeyframeFlag != 0,
				Forced:   flags&frameForcedFlag != 0,
			}
			nv, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			if nv > maxFrameValues {
				return nil, fmt.Errorf("wire: manifest frame declares %d values, max %d", nv, maxFrameValues)
			}
			fr.NumValues = int(nv)
			bb, err := c.bytes(8)
			if err != nil {
				return nil, err
			}
			fr.Bound = math.Float64frombits(binary.LittleEndian.Uint64(bb))
			if math.IsNaN(fr.Bound) || math.IsInf(fr.Bound, 0) || fr.Bound < 0 {
				return nil, fmt.Errorf("wire: manifest frame bound %v is not a finite non-negative value", fr.Bound)
			}
			ob, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			if ob > math.MaxInt64 {
				return nil, fmt.Errorf("wire: manifest frame object size %d overflows", ob)
			}
			fr.Bytes = int64(ob)
			sum, err := c.bytes(32)
			if err != nil {
				return nil, err
			}
			fr.Object = hex.EncodeToString(sum)
			if !fr.Keyframe && fr.Forced {
				return nil, errors.New("wire: manifest delta frame with forced flag")
			}
			f.Frames = append(f.Frames, fr)
		}
		if len(f.Frames) == 0 {
			return nil, fmt.Errorf("wire: manifest field %q has no frames", f.Name)
		}
		if !f.Frames[0].Keyframe {
			return nil, fmt.Errorf("wire: manifest field %q does not start with a keyframe", f.Name)
		}
		m.Fields = append(m.Fields, f)
	}
	if len(c.buf) != 0 {
		return nil, fmt.Errorf("wire: checkpoint manifest has %d trailing bytes", len(c.buf))
	}
	if len(m.Fields) == 0 {
		return nil, errors.New("wire: checkpoint manifest has no fields")
	}
	return m, nil
}
