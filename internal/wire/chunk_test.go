package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// collectChunks drains a chunked stream, concatenating payloads.
func collectChunks(t *testing.T, r io.Reader) ([]byte, error) {
	t.Helper()
	cr := NewChunkReader(r)
	var out []byte
	var buf []byte
	for {
		p, err := cr.Next(buf)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p...)
		buf = p
	}
}

func patternBytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>8)
	}
	return b
}

func TestChunkRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		writes [][]byte
	}{
		{"empty stream", nil},
		{"one small chunk", [][]byte{[]byte("hello")}},
		{"several chunks", [][]byte{patternBytes(100), patternBytes(1), patternBytes(4096)}},
		{"empty write skipped", [][]byte{nil, []byte("x"), {}}},
		{"oversized write split", [][]byte{patternBytes(MaxChunkPayload + 12345)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var wire bytes.Buffer
			cw := NewChunkWriter(&wire)
			var want []byte
			for _, p := range tc.writes {
				if err := cw.WriteChunk(p); err != nil {
					t.Fatalf("WriteChunk: %v", err)
				}
				want = append(want, p...)
			}
			if err := cw.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			got, err := collectChunks(t, &wire)
			if err != nil {
				t.Fatalf("read back: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(want))
			}
		})
	}
}

func TestAppendChunkedMatchesWriter(t *testing.T) {
	data := patternBytes(3*DefaultChunkBytes + 17)
	var viaWriter bytes.Buffer
	cw := NewChunkWriter(&viaWriter)
	for rest := data; len(rest) > 0; {
		n := min(DefaultChunkBytes, len(rest))
		if err := cw.WriteChunk(rest[:n]); err != nil {
			t.Fatal(err)
		}
		rest = rest[n:]
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	viaAppend := AppendChunked(nil, data, DefaultChunkBytes)
	if !bytes.Equal(viaWriter.Bytes(), viaAppend) {
		t.Fatal("AppendChunked and ChunkWriter produce different framings")
	}
}

// TestChunkReaderRejects is the corruption table: every way a frame can be
// malformed must map to its distinct sentinel, and truncation must never
// read as a clean end.
func TestChunkReaderRejects(t *testing.T) {
	// A valid one-chunk stream to mutate.
	valid := AppendChunked(nil, []byte("payload bytes here"), 0)
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrChunkMagic},
		{"empty input", func([]byte) []byte { return nil }, ErrChunkMagic},
		{"truncated magic", func(b []byte) []byte { return b[:2] }, ErrChunkMagic},
		{"corrupt payload byte", func(b []byte) []byte { b[14] ^= 0x40; return b }, ErrChunkChecksum},
		{"corrupt crc field", func(b []byte) []byte { b[9] ^= 0x01; return b }, ErrChunkChecksum},
		{"truncated mid-payload", func(b []byte) []byte { return b[:len(b)-12] }, io.ErrUnexpectedEOF},
		{"missing terminator", func(b []byte) []byte { return b[:len(b)-8] }, io.ErrUnexpectedEOF},
		{"truncated mid-header", func(b []byte) []byte { return b[:7] }, io.ErrUnexpectedEOF},
		{"nonzero terminator crc", func(b []byte) []byte { b[len(b)-2] = 0xAB; return b }, ErrChunkTerminator},
		{
			"oversized declared length",
			func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[4:8], MaxChunkPayload+1)
				return b
			},
			ErrChunkTooLarge,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), valid...))
			_, err := collectChunks(t, bytes.NewReader(b))
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got error %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestChunkReaderNoAllocationBomb proves a frame declaring a huge payload
// is rejected before any buffer is sized from the declared length.
func TestChunkReaderNoAllocationBomb(t *testing.T) {
	var b []byte
	b = append(b, chunkMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, 1<<31) // 2 GiB declared
	b = binary.LittleEndian.AppendUint32(b, 0)
	allocs := testing.AllocsPerRun(10, func() {
		cr := NewChunkReader(bytes.NewReader(b))
		if _, err := cr.Next(nil); !errors.Is(err, ErrChunkTooLarge) {
			t.Fatalf("got %v, want ErrChunkTooLarge", err)
		}
	})
	// The error path wraps the sentinel (a couple of small allocations); the
	// point is that no 2 GiB buffer is ever made.
	if allocs > 16 {
		t.Fatalf("reject path allocated %v times; declared length may be sizing a buffer", allocs)
	}
}

func TestChunkReaderReusesBuffer(t *testing.T) {
	var wire bytes.Buffer
	cw := NewChunkWriter(&wire)
	for i := 0; i < 4; i++ {
		if err := cw.WriteChunk(patternBytes(512)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	cr := NewChunkReader(&wire)
	buf := make([]byte, 0, 512)
	for {
		p, err := cr.Next(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if &p[0] != &buf[:1][0] {
			t.Fatal("Next allocated despite sufficient buffer capacity")
		}
	}
}

// FuzzChunkReader throws arbitrary bytes at the reader: it must never
// panic, and on valid framings it must faithfully reproduce the payload.
func FuzzChunkReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ZMC1"))
	f.Add(AppendChunked(nil, []byte("seed payload"), 4))
	f.Add(AppendChunked(nil, patternBytes(1000), 0))
	b := AppendChunked(nil, []byte("to corrupt"), 0)
	b[10] ^= 0xFF
	f.Add(b)
	f.Fuzz(func(t *testing.T, data []byte) {
		cr := NewChunkReader(bytes.NewReader(data))
		var buf []byte
		for i := 0; i < 1000; i++ {
			p, err := cr.Next(buf)
			if err != nil {
				// Whatever the error, a second call after EOF must stay EOF.
				if err == io.EOF {
					if _, err2 := cr.Next(buf); err2 != io.EOF {
						t.Fatalf("Next after EOF returned %v", err2)
					}
				}
				return
			}
			if len(p) == 0 {
				t.Fatal("Next returned an empty payload without error")
			}
			buf = p
		}
	})
}

func TestChunkCRCIsCastagnoli(t *testing.T) {
	// Pin the polynomial: the framing must stay consistent with the
	// container envelope (internal/compress/container) so tooling can share
	// one CRC implementation.
	payload := []byte("polynomial pin")
	framed := AppendChunked(nil, payload, 0)
	got := binary.LittleEndian.Uint32(framed[8:12])
	want := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli))
	if got != want {
		t.Fatalf("chunk crc %08x, want castagnoli %08x", got, want)
	}
}
