package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Chunked stream framing: the wire mode that lets multi-GB field streams
// flow through bounded buffers instead of one contiguous blob. A chunked
// body is a magic prefix followed by self-checking frames and an explicit
// terminator, so truncation, reordering and corruption are all detectable
// without knowing the stream length up front:
//
//	stream     = magic chunk* terminator
//	magic      = "ZMC1"                          (4 bytes)
//	chunk      = u32le n | u32le crc32c(payload) | payload[n]   1 <= n <= MaxChunkPayload
//	terminator = u32le 0 | u32le 0
//
// The payload bytes are opaque to the framing: the compress-stream request
// carries float64-LE values, the decompress-stream request carries a
// container-enveloped artifact, and the responses mirror them. Chunk
// boundaries carry no meaning — a float64 may straddle two chunks — so
// producers may cut frames wherever their buffers happen to end.
var (
	chunkMagic = [4]byte{'Z', 'M', 'C', '1'}

	// ErrChunkMagic reports a stream that does not start with the chunk
	// framing magic.
	ErrChunkMagic = errors.New("wire: not a chunked stream (bad magic)")
	// ErrChunkTooLarge reports a frame whose declared payload length exceeds
	// MaxChunkPayload — rejected before any allocation.
	ErrChunkTooLarge = errors.New("wire: chunk exceeds maximum payload size")
	// ErrChunkChecksum reports a frame whose payload fails its CRC32-C.
	ErrChunkChecksum = errors.New("wire: chunk checksum mismatch")
	// ErrChunkTerminator reports a terminator frame with a nonzero checksum
	// field.
	ErrChunkTerminator = errors.New("wire: malformed stream terminator")
)

const (
	// MaxChunkPayload caps a single frame's payload. The cap bounds the
	// receive-side allocation per chunk no matter what length a frame
	// declares.
	MaxChunkPayload = 4 << 20
	// DefaultChunkBytes is the frame size producers use unless configured
	// otherwise: large enough to amortize the 8-byte header, small enough
	// that a ring of a few chunks stays cache- and pool-friendly.
	DefaultChunkBytes = 256 << 10

	chunkHeaderSize = 8
)

// ContentTypeChunked tags request/response bodies in the chunked framing.
const ContentTypeChunked = "application/x-zmesh-chunked"

// ChunkWriter emits the chunked framing onto w. The magic is written
// lazily with the first frame, so constructing a writer commits nothing;
// Close writes the terminator and must be called for the stream to be
// complete. ChunkWriter does no buffering of its own — each WriteChunk is
// one frame — so callers control the frame granularity (and copies: the
// payload is written directly from the caller's slice).
type ChunkWriter struct {
	w          io.Writer
	wroteMagic bool
	hdr        [chunkHeaderSize]byte
}

// NewChunkWriter starts a chunked stream on w.
func NewChunkWriter(w io.Writer) *ChunkWriter { return &ChunkWriter{w: w} }

func (cw *ChunkWriter) magic() error {
	if cw.wroteMagic {
		return nil
	}
	if _, err := cw.w.Write(chunkMagic[:]); err != nil {
		return err
	}
	cw.wroteMagic = true
	return nil
}

// WriteChunk frames p as one chunk. Payloads larger than MaxChunkPayload
// are split into multiple frames; an empty p writes nothing (zero-length
// frames are reserved for the terminator).
func (cw *ChunkWriter) WriteChunk(p []byte) error {
	if err := cw.magic(); err != nil {
		return err
	}
	for len(p) > 0 {
		n := len(p)
		if n > MaxChunkPayload {
			n = MaxChunkPayload
		}
		binary.LittleEndian.PutUint32(cw.hdr[0:4], uint32(n))
		binary.LittleEndian.PutUint32(cw.hdr[4:8], crc32.Checksum(p[:n], castagnoliWire))
		if _, err := cw.w.Write(cw.hdr[:]); err != nil {
			return err
		}
		if _, err := cw.w.Write(p[:n]); err != nil {
			return err
		}
		p = p[n:]
	}
	return nil
}

// Close terminates the stream. It writes the magic first if no chunk was
// ever written (an empty stream is valid) and does not close the
// underlying writer.
func (cw *ChunkWriter) Close() error {
	if err := cw.magic(); err != nil {
		return err
	}
	var term [chunkHeaderSize]byte
	_, err := cw.w.Write(term[:])
	return err
}

// AppendChunked frames data as a complete chunked stream appended to dst —
// the buffered-producer convenience used when the whole payload is already
// in memory (e.g. a client retrying from a buffer). chunkBytes <= 0 uses
// DefaultChunkBytes.
func AppendChunked(dst, data []byte, chunkBytes int) []byte {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	if chunkBytes > MaxChunkPayload {
		chunkBytes = MaxChunkPayload
	}
	dst = append(dst, chunkMagic[:]...)
	for len(data) > 0 {
		n := len(data)
		if n > chunkBytes {
			n = chunkBytes
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
		dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(data[:n], castagnoliWire))
		dst = append(dst, data[:n]...)
		data = data[n:]
	}
	return append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
}

// ChunkReader consumes the chunked framing from r, one frame per Next
// call. It validates the magic, each frame's length cap and CRC, and the
// terminator; a stream that ends before the terminator surfaces as
// io.ErrUnexpectedEOF, never as a clean end.
type ChunkReader struct {
	r         io.Reader
	readMagic bool
	done      bool
	hdr       [chunkHeaderSize]byte
}

// NewChunkReader starts parsing a chunked stream from r.
func NewChunkReader(r io.Reader) *ChunkReader { return &ChunkReader{r: r} }

// Next returns the next chunk payload, read into buf when its capacity
// suffices (the returned slice aliases buf then) and into a fresh
// allocation otherwise. It returns io.EOF — with no payload — once the
// terminator has been consumed.
func (cr *ChunkReader) Next(buf []byte) ([]byte, error) {
	if cr.done {
		return nil, io.EOF
	}
	if !cr.readMagic {
		var m [4]byte
		if _, err := io.ReadFull(cr.r, m[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("%w: truncated before magic", ErrChunkMagic)
			}
			return nil, err
		}
		if m != chunkMagic {
			return nil, ErrChunkMagic
		}
		cr.readMagic = true
	}
	if _, err := io.ReadFull(cr.r, cr.hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, io.ErrUnexpectedEOF // stream ended without a terminator
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(cr.hdr[0:4])
	sum := binary.LittleEndian.Uint32(cr.hdr[4:8])
	if n == 0 {
		if sum != 0 {
			return nil, ErrChunkTerminator
		}
		cr.done = true
		return nil, io.EOF
	}
	if n > MaxChunkPayload {
		return nil, fmt.Errorf("%w: frame declares %d bytes, cap %d", ErrChunkTooLarge, n, MaxChunkPayload)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(cr.r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.Checksum(buf, castagnoliWire) != sum {
		return nil, ErrChunkChecksum
	}
	return buf, nil
}

var castagnoliWire = crc32.MakeTable(crc32.Castagnoli)
