//go:build !zmesh_portable && (386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm)

package wire

import "unsafe"

// Zero-copy reinterpretation between the float64-LE wire framing and
// in-memory []float64. Compiled only on little-endian architectures without
// the zmesh_portable tag, because the reinterpretation is byte-order
// dependent: on these targets the in-memory representation of a float64 IS
// the wire representation, so a request body can be handed to the kernels
// (and a value stream to the response writer) without the per-element
// copy loops in AppendFloats/DecodeFloats.
//
// ViewFloats additionally demands 8-byte pointer alignment. Go's allocator
// aligns every allocation ≥ 8 bytes, so whole buffers qualify; a body
// sub-slice at an odd offset does not, and falls back to the copying path.
// Callers must treat a view as borrowing the underlying buffer: the bytes
// and the floats alias the same memory.

// viewSupported reports whether this build reinterprets rather than copies.
const viewSupported = true

// ViewFloats reinterprets a wire-framed byte stream as []float64 without
// copying. ok is false — and callers must fall back to DecodeFloatsInto —
// when the length is not a multiple of 8 or the data is not 8-byte aligned.
func ViewFloats(buf []byte) (vals []float64, ok bool) {
	if len(buf)%8 != 0 {
		return nil, false
	}
	if len(buf) == 0 {
		return []float64{}, true
	}
	p := unsafe.Pointer(unsafe.SliceData(buf))
	if uintptr(p)%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*float64)(p), len(buf)/8), true
}

// ViewBytes reinterprets a []float64 as its wire framing without copying.
// ok is always true on this build for non-nil input ([]float64 data is
// naturally 8-byte aligned); the portable build always returns false.
func ViewBytes(vals []float64) (buf []byte, ok bool) {
	if len(vals) == 0 {
		return []byte{}, true
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(vals))), len(vals)*8), true
}
