package wire

import (
	"math"
	"testing"
)

func assembleSplit(t *testing.T, encoded []byte, step int) []float64 {
	t.Helper()
	var a FloatAssembler
	a.Reset(nil)
	for off := 0; off < len(encoded); off += step {
		end := off + step
		if end > len(encoded) {
			end = len(encoded)
		}
		a.Feed(encoded[off:end])
	}
	vals, err := a.Finish()
	if err != nil {
		t.Fatalf("Finish (step %d): %v", step, err)
	}
	return vals
}

// TestFloatAssemblerSplits feeds the same stream at every split granularity
// from byte-at-a-time up past the aligned fast path: a float64 straddling a
// chunk boundary must decode identically in all of them.
func TestFloatAssemblerSplits(t *testing.T) {
	want := make([]float64, 257)
	for i := range want {
		want[i] = math.Sin(float64(i)) * math.Pow(10, float64(i%7-3))
	}
	want[0] = math.Inf(1)
	want[1] = math.Copysign(0, -1)
	encoded := AppendFloats(nil, want)

	for _, step := range []int{1, 3, 7, 8, 13, 64, 1000, len(encoded)} {
		got := assembleSplit(t, encoded, step)
		if len(got) != len(want) {
			t.Fatalf("step %d: got %d values, want %d", step, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("step %d: value %d = %v, want %v", step, i, got[i], want[i])
			}
		}
	}
}

func TestFloatAssemblerTrailingBytes(t *testing.T) {
	var a FloatAssembler
	a.Reset(nil)
	a.Feed(make([]byte, 11)) // one value + 3 trailing bytes
	if _, err := a.Finish(); err == nil {
		t.Fatal("Finish accepted a stream with trailing bytes")
	}
}

func TestFloatAssemblerGrowNoRealloc(t *testing.T) {
	const n = 100
	encoded := AppendFloats(nil, make([]float64, n))
	var a FloatAssembler
	a.Reset(nil)
	a.Grow(n)
	before := cap(a.vals)
	a.Feed(encoded)
	vals, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != n || cap(vals) != before {
		t.Fatalf("Grow(%d) did not pre-size: len %d cap %d (was %d)", n, len(vals), cap(vals), before)
	}
}

func TestFloatAssemblerReset(t *testing.T) {
	var a FloatAssembler
	a.Reset(nil)
	a.Feed([]byte{1, 2, 3}) // leave a pending partial
	buf := make([]float64, 0, 8)
	a.Reset(buf)
	a.Feed(AppendFloats(nil, []float64{42}))
	vals, err := a.Finish()
	if err != nil {
		t.Fatalf("Reset did not clear the pending partial: %v", err)
	}
	if len(vals) != 1 || vals[0] != 42 {
		t.Fatalf("got %v, want [42]", vals)
	}
	if cap(vals) != 8 {
		t.Fatalf("Reset did not adopt the caller's buffer (cap %d)", cap(vals))
	}
}
