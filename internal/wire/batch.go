package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Batch framing: the multi-field body of the checkpoint endpoint. One
// request carries every field of a snapshot, so the server can compress
// them all against one cached encoder — amortizing recipe construction
// across the whole checkpoint exactly as the paper predicts. The grammar
// is sectioned, self-checking, and explicitly terminated:
//
//	batch      = magic section* terminator
//	magic      = "ZMB1"                                          (4 bytes)
//	section    = u16le nameLen | name | u16le metaLen | meta
//	           | u64le payloadLen | u32le crc32c(payload) | payload
//	terminator = u16le 0xFFFF
//
// name is the field name. meta is a small free-form string whose meaning
// is positional: the request carries the field's error bound ("abs:1e-3"),
// the response carries the decoded value count. payload is float64-LE
// values on the request and a container-enveloped artifact on the
// response. A body that ends before the terminator is a truncated batch
// (io.ErrUnexpectedEOF), which is how a client detects a server that
// aborted mid-response after the status line was already committed.
var (
	batchMagic = [4]byte{'Z', 'M', 'B', '1'}

	// ErrBatchMagic reports a body that does not start with the batch magic.
	ErrBatchMagic = errors.New("wire: not a batch stream (bad magic)")
	// ErrBatchPayloadTooLarge reports a section whose declared payload
	// length exceeds the reader's configured cap.
	ErrBatchPayloadTooLarge = errors.New("wire: batch section payload exceeds cap")
	// ErrBatchChecksum reports a section payload failing its CRC32-C.
	ErrBatchChecksum = errors.New("wire: batch section checksum mismatch")
)

// ContentTypeBatch tags request/response bodies in the batch framing.
const ContentTypeBatch = "application/x-zmesh-batch"

// batchTerminator is the nameLen value that ends a batch (no valid name is
// that long: nameLen and metaLen are each capped one below it).
const batchTerminator = 0xFFFF

// batchReadSeed caps the up-front allocation for a section payload. The
// declared length only sizes the buffer up to this seed; past it the
// buffer grows geometrically as bytes actually arrive, so a section
// declaring gigabytes while sending nothing cannot force the allocation.
const batchReadSeed = 1 << 20

// BatchWriter emits the batch framing onto w. Like ChunkWriter, the magic
// is lazy and Close writes the terminator.
type BatchWriter struct {
	w          io.Writer
	wroteMagic bool
	hdr        [16]byte
}

// NewBatchWriter starts a batch stream on w.
func NewBatchWriter(w io.Writer) *BatchWriter { return &BatchWriter{w: w} }

func (bw *BatchWriter) magic() error {
	if bw.wroteMagic {
		return nil
	}
	if _, err := bw.w.Write(batchMagic[:]); err != nil {
		return err
	}
	bw.wroteMagic = true
	return nil
}

// WriteSection frames one (name, meta, payload) section. The payload is
// written directly from the caller's slice.
func (bw *BatchWriter) WriteSection(name, meta string, payload []byte) error {
	if len(name) >= batchTerminator {
		return fmt.Errorf("wire: batch section name is %d bytes, max %d", len(name), batchTerminator-1)
	}
	if len(meta) >= batchTerminator {
		return fmt.Errorf("wire: batch section meta is %d bytes, max %d", len(meta), batchTerminator-1)
	}
	if err := bw.magic(); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(bw.hdr[0:2], uint16(len(name)))
	if _, err := bw.w.Write(bw.hdr[:2]); err != nil {
		return err
	}
	if _, err := io.WriteString(bw.w, name); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(bw.hdr[0:2], uint16(len(meta)))
	if _, err := bw.w.Write(bw.hdr[:2]); err != nil {
		return err
	}
	if _, err := io.WriteString(bw.w, meta); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(bw.hdr[0:8], uint64(len(payload)))
	binary.LittleEndian.PutUint32(bw.hdr[8:12], crc32.Checksum(payload, castagnoliWire))
	if _, err := bw.w.Write(bw.hdr[:12]); err != nil {
		return err
	}
	_, err := bw.w.Write(payload)
	return err
}

// Close terminates the batch. An empty batch (magic + terminator) is
// valid. The underlying writer is not closed.
func (bw *BatchWriter) Close() error {
	if err := bw.magic(); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(bw.hdr[0:2], batchTerminator)
	_, err := bw.w.Write(bw.hdr[:2])
	return err
}

// BatchReader consumes the batch framing from r, one section per Next
// call. maxPayload caps every section's declared payload length.
type BatchReader struct {
	r          io.Reader
	maxPayload int64
	readMagic  bool
	done       bool
	hdr        [16]byte
	nameBuf    []byte
	metaBuf    []byte
}

// NewBatchReader starts parsing a batch stream from r. maxPayload <= 0
// disables the per-section cap.
func NewBatchReader(r io.Reader, maxPayload int64) *BatchReader {
	return &BatchReader{r: r, maxPayload: maxPayload}
}

// unexpected normalizes a mid-frame read error: any EOF inside a section
// is a truncated batch.
func unexpected(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Next returns the next section, reading the payload into buf when its
// capacity suffices. The name and meta strings are copies and remain
// valid across calls; the payload aliases buf. Next returns io.EOF once
// the terminator has been consumed.
func (br *BatchReader) Next(buf []byte) (name, meta string, payload []byte, err error) {
	if br.done {
		return "", "", nil, io.EOF
	}
	if !br.readMagic {
		var m [4]byte
		if _, err := io.ReadFull(br.r, m[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return "", "", nil, fmt.Errorf("%w: truncated before magic", ErrBatchMagic)
			}
			return "", "", nil, err
		}
		if m != batchMagic {
			return "", "", nil, ErrBatchMagic
		}
		br.readMagic = true
	}
	if _, err := io.ReadFull(br.r, br.hdr[:2]); err != nil {
		return "", "", nil, unexpected(err)
	}
	nameLen := binary.LittleEndian.Uint16(br.hdr[0:2])
	if nameLen == batchTerminator {
		br.done = true
		return "", "", nil, io.EOF
	}
	if br.nameBuf, err = br.readSmall(br.nameBuf, int(nameLen)); err != nil {
		return "", "", nil, err
	}
	name = string(br.nameBuf)
	if _, err := io.ReadFull(br.r, br.hdr[:2]); err != nil {
		return "", "", nil, unexpected(err)
	}
	metaLen := binary.LittleEndian.Uint16(br.hdr[0:2])
	if metaLen == batchTerminator {
		return "", "", nil, fmt.Errorf("wire: batch section %q: terminator in meta position", name)
	}
	if br.metaBuf, err = br.readSmall(br.metaBuf, int(metaLen)); err != nil {
		return "", "", nil, err
	}
	meta = string(br.metaBuf)
	if _, err := io.ReadFull(br.r, br.hdr[:12]); err != nil {
		return "", "", nil, unexpected(err)
	}
	payloadLen := binary.LittleEndian.Uint64(br.hdr[0:8])
	sum := binary.LittleEndian.Uint32(br.hdr[8:12])
	if br.maxPayload > 0 && payloadLen > uint64(br.maxPayload) {
		return "", "", nil, fmt.Errorf("%w: section %q declares %d bytes, cap %d",
			ErrBatchPayloadTooLarge, name, payloadLen, br.maxPayload)
	}
	payload, err = readDeclared(br.r, buf, payloadLen)
	if err != nil {
		return "", "", nil, err
	}
	if crc32.Checksum(payload, castagnoliWire) != sum {
		return "", "", nil, fmt.Errorf("%w: section %q", ErrBatchChecksum, name)
	}
	return name, meta, payload, nil
}

func (br *BatchReader) readSmall(buf []byte, n int) ([]byte, error) {
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br.r, buf); err != nil {
		return buf, unexpected(err)
	}
	return buf, nil
}

// readDeclared reads exactly n bytes into buf, seeding the allocation at
// batchReadSeed and growing geometrically as data arrives — the declared
// length never sizes the buffer directly past the seed, so a lying length
// prefix costs at most one seed-sized allocation.
func readDeclared(r io.Reader, buf []byte, n uint64) ([]byte, error) {
	seed := n
	if seed > batchReadSeed {
		seed = batchReadSeed
	}
	if uint64(cap(buf)) < seed {
		buf = make([]byte, 0, seed)
	}
	buf = buf[:0]
	for uint64(len(buf)) < n {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		space := cap(buf) - len(buf)
		if rem := n - uint64(len(buf)); uint64(space) > rem {
			space = int(rem)
		}
		m, err := r.Read(buf[len(buf) : len(buf)+space])
		buf = buf[:len(buf)+m]
		if err != nil {
			if uint64(len(buf)) == n {
				break
			}
			return buf, unexpected(err)
		}
	}
	return buf, nil
}
