package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"strings"
	"testing"
)

func sampleFrame(keyframe bool) *TemporalFrame {
	f := &TemporalFrame{
		Keyframe:  keyframe,
		Field:     "dens",
		Layout:    "zmesh",
		Curve:     "hilbert",
		Codec:     "sz",
		NumValues: 4096,
		Bound:     1e-3,
		Payload:   []byte("compressed payload bytes"),
	}
	if keyframe {
		f.Structure = []byte("serialized mesh structure")
	}
	return f
}

func TestTemporalFrameRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name  string
		frame *TemporalFrame
	}{
		{"keyframe", sampleFrame(true)},
		{"delta", sampleFrame(false)},
		{"forced keyframe", func() *TemporalFrame {
			f := sampleFrame(true)
			f.Forced = true
			return f
		}()},
		{"empty payload keyframe", func() *TemporalFrame {
			f := sampleFrame(true)
			f.Payload = nil
			return f
		}()},
		{"zero bound", func() *TemporalFrame {
			f := sampleFrame(false)
			f.Bound = 0
			return f
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b, err := EncodeTemporalFrame(tc.frame)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ParseTemporalFrame(b)
			if err != nil {
				t.Fatal(err)
			}
			if got.Keyframe != tc.frame.Keyframe || got.Forced != tc.frame.Forced {
				t.Fatalf("flags round trip: got %+v", got)
			}
			if got.Field != tc.frame.Field || got.Layout != tc.frame.Layout ||
				got.Curve != tc.frame.Curve || got.Codec != tc.frame.Codec {
				t.Fatalf("identity round trip: got %+v", got)
			}
			if got.NumValues != tc.frame.NumValues || got.Bound != tc.frame.Bound {
				t.Fatalf("metadata round trip: got %+v", got)
			}
			if !bytes.Equal(got.Structure, tc.frame.Structure) || !bytes.Equal(got.Payload, tc.frame.Payload) {
				t.Fatalf("body round trip: got %+v", got)
			}
		})
	}
}

func TestTemporalFrameEncodeRejects(t *testing.T) {
	for _, tc := range []struct {
		name  string
		frame *TemporalFrame
	}{
		{"keyframe without structure", func() *TemporalFrame {
			f := sampleFrame(true)
			f.Structure = nil
			return f
		}()},
		{"delta with structure", func() *TemporalFrame {
			f := sampleFrame(false)
			f.Structure = []byte("x")
			return f
		}()},
		{"forced delta", func() *TemporalFrame {
			f := sampleFrame(false)
			f.Forced = true
			return f
		}()},
		{"oversized identity string", func() *TemporalFrame {
			f := sampleFrame(true)
			f.Field = strings.Repeat("x", MaxFrameString+1)
			return f
		}()},
		{"negative value count", func() *TemporalFrame {
			f := sampleFrame(true)
			f.NumValues = -1
			return f
		}()},
	} {
		if _, err := EncodeTemporalFrame(tc.frame); err == nil {
			t.Errorf("%s: encode succeeded, want error", tc.name)
		}
	}
}

func TestTemporalFrameParseRejects(t *testing.T) {
	valid, err := EncodeTemporalFrame(sampleFrame(true))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(b []byte) []byte) []byte {
		return mutate(append([]byte(nil), valid...))
	}
	for _, tc := range []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrFrameMagic},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b }), ErrFrameMagic},
		{"truncated header", []byte("ZMT1\x01"), ErrFrameTruncated},
		{"flipped body byte", corrupt(func(b []byte) []byte { b[10] ^= 0xFF; return b }), ErrFrameChecksum},
		{"flipped crc", corrupt(func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }), ErrFrameChecksum},
		{"truncated tail", valid[:len(valid)-8], nil},
		{"trailing bytes", append(append([]byte(nil), valid...), 0), nil},
	} {
		_, err := ParseTemporalFrame(tc.buf)
		if err == nil {
			t.Errorf("%s: parse succeeded, want error", tc.name)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: parse error = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestTemporalFrameLyingLengths rebuilds frames whose declared lengths or
// counts exceed the buffer, with the crc recomputed so only the length
// validation can reject them — a declared-length bomb must fail before any
// allocation is sized from it.
func TestTemporalFrameLyingLengths(t *testing.T) {
	reseal := func(body []byte) []byte {
		b := append([]byte(nil), temporalMagic[:]...)
		b = append(b, body...)
		crc := crc32.Checksum(body, castagnoliWire)
		return binary.LittleEndian.AppendUint32(b, crc)
	}
	strField := func(s string) []byte {
		return appendFrameString(nil, s)
	}
	base := func() []byte {
		var b []byte
		b = append(b, temporalVersion, frameKeyframeFlag)
		b = append(b, strField("dens")...)
		b = append(b, strField("zmesh")...)
		b = append(b, strField("hilbert")...)
		b = append(b, strField("sz")...)
		return b
	}
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"huge declared string", func() []byte {
			var b []byte
			b = append(b, temporalVersion, frameKeyframeFlag)
			b = binary.AppendUvarint(b, 1<<40) // field-name length bomb
			return b
		}()},
		{"huge declared values", func() []byte {
			b := base()
			b = binary.AppendUvarint(b, 1<<60) // numValues bomb
			return b
		}()},
		{"huge declared structure", func() []byte {
			b := base()
			b = binary.AppendUvarint(b, 64)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(1e-3))
			b = binary.AppendUvarint(b, 1<<50) // structureLen bomb
			return b
		}()},
		{"huge declared payload", func() []byte {
			b := base()
			b = binary.AppendUvarint(b, 64)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(1e-3))
			b = append(binary.AppendUvarint(b, 1), 'S')
			b = binary.AppendUvarint(b, 1<<50) // payloadLen bomb
			return b
		}()},
		{"nan bound", func() []byte {
			b := base()
			b = binary.AppendUvarint(b, 64)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(math.NaN()))
			b = append(binary.AppendUvarint(b, 1), 'S')
			b = binary.AppendUvarint(b, 0)
			return b
		}()},
		{"unknown flag bit", func() []byte {
			b := base()
			b[1] = frameKeyframeFlag | 1<<7
			b = binary.AppendUvarint(b, 64)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(1e-3))
			b = append(binary.AppendUvarint(b, 1), 'S')
			b = binary.AppendUvarint(b, 0)
			return b
		}()},
	} {
		if _, err := ParseTemporalFrame(reseal(tc.body)); err == nil {
			t.Errorf("%s: parse succeeded, want error", tc.name)
		}
	}
}

// FuzzTemporalFrame throws arbitrary bytes at the parser: it must never
// panic or over-allocate, and anything it accepts must re-encode to an
// equivalent frame.
func FuzzTemporalFrame(f *testing.F) {
	for _, kf := range []bool{true, false} {
		b, err := EncodeTemporalFrame(sampleFrame(kf))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		mutated := append([]byte(nil), b...)
		mutated[len(mutated)/2] ^= 0xFF
		f.Add(mutated)
	}
	f.Add([]byte{})
	f.Add([]byte("ZMT1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ParseTemporalFrame(data)
		if err != nil {
			return
		}
		re, err := EncodeTemporalFrame(fr)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		fr2, err := ParseTemporalFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to parse: %v", err)
		}
		if fr.Field != fr2.Field || fr.NumValues != fr2.NumValues ||
			!bytes.Equal(fr.Structure, fr2.Structure) || !bytes.Equal(fr.Payload, fr2.Payload) {
			t.Fatal("re-encode round trip diverged")
		}
	})
}
