package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

type section struct {
	name, meta string
	payload    []byte
}

func writeBatch(t *testing.T, secs []section) []byte {
	t.Helper()
	var b bytes.Buffer
	bw := NewBatchWriter(&b)
	for _, s := range secs {
		if err := bw.WriteSection(s.name, s.meta, s.payload); err != nil {
			t.Fatalf("WriteSection(%q): %v", s.name, err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return b.Bytes()
}

func readBatch(r io.Reader, maxPayload int64) ([]section, error) {
	br := NewBatchReader(r, maxPayload)
	var out []section
	var buf []byte
	for {
		name, meta, payload, err := br.Next(buf)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, section{name, meta, append([]byte(nil), payload...)})
		buf = payload
	}
}

func TestBatchRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		secs []section
	}{
		{"empty batch", nil},
		{"one section", []section{{"density", "abs:1e-3", patternBytes(64)}}},
		{"several sections", []section{
			{"density", "abs:1e-3", patternBytes(800)},
			{"pressure", "rel:1e-4", patternBytes(8)},
			{"energy", "", nil},
		}},
		{"payload larger than seed", []section{{"big", "abs:1", patternBytes(batchReadSeed + 4096)}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := writeBatch(t, tc.secs)
			got, err := readBatch(bytes.NewReader(body), 0)
			if err != nil {
				t.Fatalf("read back: %v", err)
			}
			if len(got) != len(tc.secs) {
				t.Fatalf("got %d sections, want %d", len(got), len(tc.secs))
			}
			for i, s := range tc.secs {
				if got[i].name != s.name || got[i].meta != s.meta {
					t.Fatalf("section %d: got (%q, %q), want (%q, %q)", i, got[i].name, got[i].meta, s.name, s.meta)
				}
				if !bytes.Equal(got[i].payload, s.payload) {
					t.Fatalf("section %d (%q): payload mismatch", i, s.name)
				}
			}
		})
	}
}

func TestBatchReaderRejects(t *testing.T) {
	valid := writeBatch(t, []section{{"field", "abs:1e-3", patternBytes(32)}})
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"bad magic", func(b []byte) []byte { b[3] = '9'; return b }, ErrBatchMagic},
		{"empty input", func([]byte) []byte { return nil }, ErrBatchMagic},
		{"truncated mid-name", func(b []byte) []byte { return b[:8] }, io.ErrUnexpectedEOF},
		{"truncated mid-payload", func(b []byte) []byte { return b[:len(b)-20] }, io.ErrUnexpectedEOF},
		{"missing terminator", func(b []byte) []byte { return b[:len(b)-2] }, io.ErrUnexpectedEOF},
		{"corrupt payload", func(b []byte) []byte { b[len(b)-10] ^= 0x01; return b }, ErrBatchChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), valid...))
			_, err := readBatch(bytes.NewReader(b), 0)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("got error %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestBatchReaderPayloadCap(t *testing.T) {
	body := writeBatch(t, []section{{"field", "", patternBytes(1024)}})
	if _, err := readBatch(bytes.NewReader(body), 100); !errors.Is(err, ErrBatchPayloadTooLarge) {
		t.Fatalf("got %v, want ErrBatchPayloadTooLarge", err)
	}
	if _, err := readBatch(bytes.NewReader(body), 1024); err != nil {
		t.Fatalf("payload exactly at cap rejected: %v", err)
	}
}

// TestReadDeclaredBomb is the declared-length regression: a section header
// claiming 1 GiB while delivering a handful of bytes must not allocate a
// 1 GiB buffer — the seed caps the up-front allocation and the reader fails
// on truncation instead.
func TestReadDeclaredBomb(t *testing.T) {
	var b []byte
	b = append(b, batchMagic[:]...)
	b = binary.LittleEndian.AppendUint16(b, 5)
	b = append(b, "field"...)
	b = binary.LittleEndian.AppendUint16(b, 0)
	b = binary.LittleEndian.AppendUint64(b, 1<<30) // 1 GiB declared
	b = binary.LittleEndian.AppendUint32(b, 0)
	b = append(b, "only this arrives"...)

	br := NewBatchReader(bytes.NewReader(b), 0) // cap disabled: the seed alone must protect
	_, _, payload, err := br.Next(nil)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("got %v, want ErrUnexpectedEOF", err)
	}
	if cap(payload) > 2*batchReadSeed {
		t.Fatalf("reader allocated %d bytes for a lying length prefix; want <= %d", cap(payload), 2*batchReadSeed)
	}
}

func TestBatchWriterRejectsOversizedName(t *testing.T) {
	bw := NewBatchWriter(io.Discard)
	if err := bw.WriteSection(string(make([]byte, batchTerminator)), "", nil); err == nil {
		t.Fatal("name of terminator length accepted; it would be read back as end-of-batch")
	}
	if err := bw.WriteSection("ok", string(make([]byte, batchTerminator)), nil); err == nil {
		t.Fatal("meta of terminator length accepted")
	}
}
