package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// refAppend is the reference per-element encoder, kept independent of the
// zero-copy fast paths so the tests pin the wire format itself.
func refAppend(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

func framingVals() []float64 {
	return []float64{
		0, math.Copysign(0, -1), 1.5, -2.75e-300,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.Float64frombits(0x7ff8_dead_beef_0001), // NaN with payload
		math.SmallestNonzeroFloat64, math.MaxFloat64,
	}
}

func equalFloatBits(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: value %d = %x, want %x", what, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestFloatFramingRoundTrip pins AppendFloats byte-for-byte against the
// reference encoder and DecodeFloats bit-for-bit against the input,
// including NaN payloads and signed zero — the framing must be transparent
// whether or not the zero-copy views are active.
func TestFloatFramingRoundTrip(t *testing.T) {
	vals := framingVals()
	buf := AppendFloats(nil, vals)
	if want := refAppend(nil, vals); !bytes.Equal(buf, want) {
		t.Fatalf("AppendFloats bytes diverge from reference encoding\n got %x\nwant %x", buf, want)
	}
	back, err := DecodeFloats(buf)
	if err != nil {
		t.Fatal(err)
	}
	equalFloatBits(t, "DecodeFloats(AppendFloats(vals))", back, vals)

	if got := AppendFloats(nil, nil); len(got) != 0 {
		t.Fatalf("AppendFloats(nil, nil) = %d bytes, want 0", len(got))
	}
	empty, err := DecodeFloats(nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("DecodeFloats(nil) = %v, %v; want empty, nil", empty, err)
	}
}

// TestDecodeFloatsRagged pins the validation contract: a stream whose length
// is not a multiple of 8 must fail before any allocation or partial decode.
func TestDecodeFloatsRagged(t *testing.T) {
	for _, n := range []int{1, 7, 9, 15} {
		if _, err := DecodeFloats(make([]byte, n)); err == nil {
			t.Fatalf("DecodeFloats accepted a %d-byte stream", n)
		}
		if out, err := DecodeFloatsInto(make([]float64, 4), make([]byte, n)); err == nil || out != nil {
			t.Fatalf("DecodeFloatsInto accepted a %d-byte stream (out=%v)", n, out)
		}
	}
}

// TestDecodeFloatsIntoReuse pins the scratch-reuse contract: a destination
// with sufficient capacity is resliced in place, and the decoded values
// never alias the input bytes.
func TestDecodeFloatsIntoReuse(t *testing.T) {
	vals := framingVals()
	buf := refAppend(nil, vals)
	dst := make([]float64, 1, len(vals)+3)
	out, err := DecodeFloatsInto(dst, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("DecodeFloatsInto did not reuse the provided destination")
	}
	equalFloatBits(t, "DecodeFloatsInto", out, vals)

	// Clobber the input; the decoded slice must be an independent copy.
	for i := range buf {
		buf[i] = 0xFF
	}
	equalFloatBits(t, "DecodeFloatsInto after clobbering input", out, vals)

	// Insufficient capacity allocates rather than writing out of range.
	small := make([]float64, 0, 2)
	out2, err := DecodeFloatsInto(small, refAppend(nil, vals))
	if err != nil {
		t.Fatal(err)
	}
	equalFloatBits(t, "DecodeFloatsInto with short dst", out2, vals)
}

// TestViewFloats exercises the zero-copy read view: when a view is granted
// it must agree bit-for-bit with the copying decoder and alias the buffer;
// misaligned or ragged input must always be refused.
func TestViewFloats(t *testing.T) {
	vals := framingVals()
	raw := refAppend(nil, vals)
	if view, ok := ViewFloats(raw); ok {
		if !viewSupported {
			t.Fatal("portable build granted a float view")
		}
		equalFloatBits(t, "ViewFloats", view, vals)
		// The view aliases the bytes: flip one sign bit through the buffer.
		raw[7] ^= 0x80
		if math.Signbit(view[0]) == math.Signbit(vals[0]) {
			t.Fatal("ViewFloats result does not alias the input buffer")
		}
	} else if viewSupported {
		t.Fatal("aligned whole-allocation buffer was refused a view")
	}

	if _, ok := ViewFloats(make([]byte, 12)); ok {
		t.Fatal("ViewFloats accepted a ragged stream")
	}
	// Alignment: a byte buffer's base address is not guaranteed 8-aligned, so
	// sweep all eight sub-slice offsets — exactly one of them is 8-aligned.
	// A supported build must grant exactly that one and refuse the rest
	// (decoding correctly where granted); the portable build grants none.
	sweep := refAppend(refAppend(nil, vals), vals)[:8*len(vals)+8]
	granted := 0
	for off := 0; off < 8; off++ {
		sub := sweep[off : off+8*len(vals)]
		view, ok := ViewFloats(sub)
		if !ok {
			continue
		}
		granted++
		if off%8 != 0 { // only informative when the base happens aligned
			want, err := DecodeFloats(sub)
			if err != nil {
				t.Fatal(err)
			}
			equalFloatBits(t, "ViewFloats at odd offset", view, want)
		} else {
			equalFloatBits(t, "ViewFloats at offset 0", view, vals)
		}
	}
	if viewSupported && granted != 1 {
		t.Fatalf("ViewFloats granted %d of 8 sub-slice offsets, want exactly 1", granted)
	}
	if !viewSupported && granted != 0 {
		t.Fatalf("portable ViewFloats granted %d views, want 0", granted)
	}
	if view, ok := ViewFloats(nil); ok && len(view) != 0 {
		t.Fatal("ViewFloats(nil) returned a non-empty view")
	}
}

// TestViewBytes exercises the zero-copy write view: granted views must equal
// the reference encoding and alias the values.
func TestViewBytes(t *testing.T) {
	vals := framingVals()
	if view, ok := ViewBytes(vals); ok {
		if !viewSupported {
			t.Fatal("portable build granted a byte view")
		}
		if want := refAppend(nil, vals); !bytes.Equal(view, want) {
			t.Fatalf("ViewBytes diverges from reference encoding\n got %x\nwant %x", view, want)
		}
		vals[2] = 99.5
		if !bytes.Equal(view[16:24], refAppend(nil, []float64{99.5})) {
			t.Fatal("ViewBytes result does not alias the values")
		}
	} else if viewSupported {
		t.Fatal("ViewBytes refused a non-empty slice on a supported build")
	}
}
