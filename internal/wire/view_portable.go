//go:build zmesh_portable || !(386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm)

package wire

// Portable stand-ins for the zero-copy views (view_unsafe.go): on big-endian
// targets — or under -tags zmesh_portable — reinterpretation is unavailable,
// every View call reports !ok, and callers take the explicit little-endian
// copy loops instead. The wire format is unchanged either way.

// viewSupported reports whether this build reinterprets rather than copies.
const viewSupported = false

// ViewFloats always reports ok=false on this build; use DecodeFloatsInto.
func ViewFloats(buf []byte) (vals []float64, ok bool) { return nil, false }

// ViewBytes always reports ok=false on this build; use AppendFloats.
func ViewBytes(vals []float64) (buf []byte, ok bool) { return nil, false }
