package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"
)

func sampleManifest() *Manifest {
	return &Manifest{Fields: []ManifestField{
		{
			Name: "dens", Layout: "zmesh", Curve: "hilbert", Codec: "sz",
			Frames: []ManifestFrame{
				{Keyframe: true, NumValues: 4096, Bound: 1e-3, Bytes: 1234, Object: strings.Repeat("ab", 32)},
				{NumValues: 4096, Bound: 1e-3, Bytes: 456, Object: strings.Repeat("cd", 32)},
				{Keyframe: true, Forced: true, NumValues: 4096, Bound: 2e-3, Bytes: 1200, Object: strings.Repeat("ef", 32)},
			},
		},
		{
			Name: "pres", Layout: "tac", Curve: "morton", Codec: "zfp",
			Frames: []ManifestFrame{
				{Keyframe: true, NumValues: 512, Bound: 0, Bytes: 99, Object: strings.Repeat("01", 32)},
			},
		},
	}}
}

func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	b, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseManifest(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestManifestEncodeRejects(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(m *Manifest)
	}{
		{"bad object id", func(m *Manifest) { m.Fields[0].Frames[0].Object = "not-hex" }},
		{"short object id", func(m *Manifest) { m.Fields[0].Frames[0].Object = "abcd" }},
		{"negative values", func(m *Manifest) { m.Fields[0].Frames[0].NumValues = -1 }},
		{"negative bytes", func(m *Manifest) { m.Fields[0].Frames[0].Bytes = -1 }},
		{"oversized name", func(m *Manifest) { m.Fields[0].Name = strings.Repeat("x", MaxFrameString+1) }},
	} {
		m := sampleManifest()
		tc.mutate(m)
		if _, err := EncodeManifest(m); err == nil {
			t.Errorf("%s: encode succeeded, want error", tc.name)
		}
	}
}

func TestManifestParseRejects(t *testing.T) {
	valid, err := EncodeManifest(sampleManifest())
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(b []byte) []byte) []byte {
		return mutate(append([]byte(nil), valid...))
	}
	for _, tc := range []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrManifestMagic},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b }), ErrManifestMagic},
		{"flipped body byte", corrupt(func(b []byte) []byte { b[12] ^= 0xFF; return b }), ErrManifestChecksum},
		{"flipped crc", corrupt(func(b []byte) []byte { b[len(b)-2] ^= 0xFF; return b }), ErrManifestChecksum},
		{"truncated tail", valid[:len(valid)-10], nil},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xEE), nil},
	} {
		_, err := ParseManifest(tc.buf)
		if err == nil {
			t.Errorf("%s: parse succeeded, want error", tc.name)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: parse error = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// resealManifest wraps a hand-built body in magic + valid crc so only the
// structural validation can reject it.
func resealManifest(body []byte) []byte {
	b := append([]byte(nil), manifestMagic[:]...)
	b = append(b, body...)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(body, castagnoliWire))
}

// TestManifestCountBombs pins the declared-count defense: a manifest
// declaring vastly more fields or frames than its bytes could hold must be
// rejected before any slice is sized from the count.
func TestManifestCountBombs(t *testing.T) {
	fieldHeader := func() []byte {
		var b []byte
		b = append(b, manifestVersion)
		b = binary.AppendUvarint(b, 1) // one field
		b = append(b, appendFrameString(nil, "dens")...)
		b = append(b, appendFrameString(nil, "zmesh")...)
		b = append(b, appendFrameString(nil, "hilbert")...)
		b = append(b, appendFrameString(nil, "sz")...)
		return b
	}
	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"field-count bomb", func() []byte {
			var b []byte
			b = append(b, manifestVersion)
			b = binary.AppendUvarint(b, 1<<60)
			return b
		}()},
		{"frame-count bomb", func() []byte {
			b := fieldHeader()
			b = binary.AppendUvarint(b, 1<<60)
			return b
		}()},
		{"frame count exceeds bytes", func() []byte {
			b := fieldHeader()
			b = binary.AppendUvarint(b, 100) // declares 100 frames, supplies none
			return b
		}()},
		{"zero frames", func() []byte {
			b := fieldHeader()
			b = binary.AppendUvarint(b, 0)
			return b
		}()},
		{"zero fields", []byte{manifestVersion, 0}},
	} {
		if _, err := ParseManifest(resealManifest(tc.body)); err == nil {
			t.Errorf("%s: parse succeeded, want error", tc.name)
		}
	}
}

func TestManifestFirstFrameMustBeKeyframe(t *testing.T) {
	m := sampleManifest()
	m.Fields[0].Frames[0].Keyframe = false
	m.Fields[0].Frames[0].Forced = false
	b, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseManifest(b); err == nil {
		t.Fatal("manifest whose stream starts with a delta was accepted")
	}
}

// FuzzManifest throws arbitrary bytes at the parser: it must never panic or
// allocate from a lying count, and anything it accepts must round-trip.
func FuzzManifest(f *testing.F) {
	b, err := EncodeManifest(sampleManifest())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	mutated := append([]byte(nil), b...)
	mutated[len(mutated)/2] ^= 0xFF
	f.Add(mutated)
	f.Add(resealManifest(func() []byte {
		var body []byte
		body = append(body, manifestVersion)
		body = binary.AppendUvarint(body, 1<<60)
		return body
	}()))
	f.Add([]byte{})
	f.Add([]byte("ZMM1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			return
		}
		re, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("accepted manifest failed to re-encode: %v", err)
		}
		m2, err := ParseManifest(re)
		if err != nil {
			t.Fatalf("re-encoded manifest failed to parse: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatal("re-encode round trip diverged")
		}
	})
}
