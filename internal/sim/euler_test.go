package sim

import (
	"math"
	"testing"
)

func TestGridIndexing(t *testing.T) {
	g := NewGrid(8, 4, Outflow)
	g.SetPrimitive(0, 0, 1, 2, 3, 4)
	rho, vx, vy, p := g.Primitive(0, 0)
	if rho != 1 || vx != 2 || vy != 3 || math.Abs(p-4) > 1e-12 {
		t.Fatalf("primitive round trip: %v %v %v %v", rho, vx, vy, p)
	}
	// Adjacent cell is untouched.
	if rho, _, _, _ := g.Primitive(1, 0); rho != 0 {
		t.Fatalf("neighbouring cell contaminated: rho=%v", rho)
	}
}

func TestGhostFillOutflow(t *testing.T) {
	g := NewGrid(4, 4, Outflow)
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			g.SetPrimitive(i, j, float64(i+1), 0, 0, 1)
		}
	}
	g.fillGhosts()
	if g.u[0][g.idx(-1, 2)] != g.u[0][g.idx(0, 2)] {
		t.Fatal("left ghost not extrapolated")
	}
	if g.u[0][g.idx(4, 2)] != g.u[0][g.idx(3, 2)] {
		t.Fatal("right ghost not extrapolated")
	}
}

func TestGhostFillPeriodic(t *testing.T) {
	g := NewGrid(4, 4, Periodic)
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			g.SetPrimitive(i, j, float64(4*j+i+1), 0, 0, 1)
		}
	}
	g.fillGhosts()
	if g.u[0][g.idx(-1, 2)] != g.u[0][g.idx(3, 2)] {
		t.Fatal("left ghost not periodic")
	}
	if g.u[0][g.idx(4, 2)] != g.u[0][g.idx(0, 2)] {
		t.Fatal("right ghost not periodic")
	}
	if g.u[0][g.idx(2, -2)] != g.u[0][g.idx(2, 2)] {
		t.Fatal("bottom ghost not periodic")
	}
}

func TestGhostFillReflect(t *testing.T) {
	g := NewGrid(4, 4, Reflect)
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			g.SetPrimitive(i, j, 1, 2, 3, 1)
		}
	}
	g.fillGhosts()
	// Density mirrors, normal momentum flips.
	if g.u[0][g.idx(-1, 2)] != g.u[0][g.idx(0, 2)] {
		t.Fatal("reflect density")
	}
	if g.u[1][g.idx(-1, 2)] != -g.u[1][g.idx(0, 2)] {
		t.Fatal("x-momentum must flip at x boundary")
	}
	if g.u[2][g.idx(2, -1)] != -g.u[2][g.idx(2, 0)] {
		t.Fatal("y-momentum must flip at y boundary")
	}
}

func TestUniformFlowIsSteady(t *testing.T) {
	// A uniform state must be an exact steady solution.
	g := NewGrid(16, 16, Periodic)
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			g.SetPrimitive(i, j, 1.3, 0.7, -0.2, 2.1)
		}
	}
	for s := 0; s < 10; s++ {
		if _, err := g.Step(0.4, 0); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 16; j++ {
		for i := 0; i < 16; i++ {
			rho, vx, vy, p := g.Primitive(i, j)
			if math.Abs(rho-1.3) > 1e-12 || math.Abs(vx-0.7) > 1e-12 ||
				math.Abs(vy+0.2) > 1e-12 || math.Abs(p-2.1) > 1e-10 {
				t.Fatalf("cell (%d,%d) drifted: %v %v %v %v", i, j, rho, vx, vy, p)
			}
		}
	}
}

func TestMassConservationPeriodic(t *testing.T) {
	p, err := Lookup("kh")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGrid(32, 32, p.BC)
	for j := 0; j < 32; j++ {
		for i := 0; i < 32; i++ {
			x, y := g.CellCenter(i, j)
			rho, vx, vy, pr := p.InitialCondition(x, y)
			g.SetPrimitive(i, j, rho, vx, vy, pr)
		}
	}
	mass := func() float64 {
		var m float64
		for j := 0; j < 32; j++ {
			for i := 0; i < 32; i++ {
				rho, _, _, _ := g.Primitive(i, j)
				m += rho
			}
		}
		return m * g.Dx() * g.Dy()
	}
	m0 := mass()
	for s := 0; s < 50; s++ {
		if _, err := g.Step(0.4, 0); err != nil {
			t.Fatal(err)
		}
	}
	if rel := math.Abs(mass()-m0) / m0; rel > 1e-12 {
		t.Fatalf("mass drifted by %v (relative)", rel)
	}
}

func TestSodAgainstExact(t *testing.T) {
	p, err := Lookup("sod")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Run(p, 256, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact := ExactRiemann(
		RiemannState{Rho: 1, U: 0, P: 1},
		RiemannState{Rho: 0.125, U: 0, P: 0.1},
	)
	var l1 float64
	for i := 0; i < 256; i++ {
		x, _ := g.CellCenter(i, 0)
		rho, _, _, _ := g.Primitive(i, 1)
		want, _, _ := exact((x - 0.5) / g.Time)
		l1 += math.Abs(rho - want)
	}
	l1 /= 256
	if l1 > 0.015 {
		t.Fatalf("Sod density L1 error %.4f vs exact; want < 0.015", l1)
	}
}

func TestExactRiemannSodValues(t *testing.T) {
	// Reference values for the Sod problem (Toro, table 4.1 / standard):
	// p* ≈ 0.30313, u* ≈ 0.92745.
	exact := ExactRiemann(
		RiemannState{Rho: 1, U: 0, P: 1},
		RiemannState{Rho: 0.125, U: 0, P: 0.1},
	)
	// Sample just left of the contact (s slightly below u*).
	rho, u, p := exact(0.9)
	if math.Abs(p-0.30313) > 1e-3 {
		t.Fatalf("p* = %v, want 0.30313", p)
	}
	if math.Abs(u-0.92745) > 1e-3 {
		t.Fatalf("u* = %v, want 0.92745", u)
	}
	if math.Abs(rho-0.42632) > 1e-3 {
		t.Fatalf("rho*L = %v, want 0.42632", rho)
	}
	// Post-shock density on the right of the contact: 0.26557.
	rho, _, _ = exact(1.0)
	if math.Abs(rho-0.26557) > 1e-3 {
		t.Fatalf("rho*R = %v, want 0.26557", rho)
	}
	// Far states are returned untouched.
	rho, u, p = exact(-10)
	if rho != 1 || u != 0 || p != 1 {
		t.Fatalf("far-left state %v %v %v", rho, u, p)
	}
	rho, u, p = exact(10)
	if rho != 0.125 || u != 0 || p != 0.1 {
		t.Fatalf("far-right state %v %v %v", rho, u, p)
	}
}

func TestSedovSymmetry(t *testing.T) {
	p, err := Lookup("sedov")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Run(p, 64, 64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Quadrant symmetry of the density field about the centre.
	for j := 0; j < 32; j++ {
		for i := 0; i < 32; i++ {
			a, _, _, _ := g.Primitive(i, j)
			b, _, _, _ := g.Primitive(63-i, j)
			c, _, _, _ := g.Primitive(i, 63-j)
			if math.Abs(a-b) > 1e-9 || math.Abs(a-c) > 1e-9 {
				t.Fatalf("asymmetry at (%d,%d): %v %v %v", i, j, a, b, c)
			}
		}
	}
	// The blast must have produced a density contrast.
	var min, max float64 = math.Inf(1), math.Inf(-1)
	for j := 0; j < 64; j++ {
		for i := 0; i < 64; i++ {
			rho, _, _, _ := g.Primitive(i, j)
			min = math.Min(min, rho)
			max = math.Max(max, rho)
		}
	}
	if max/min < 2 {
		t.Fatalf("blast contrast %v too weak", max/min)
	}
}

func TestStepOnEmptyGridErrors(t *testing.T) {
	g := NewGrid(8, 8, Outflow)
	if _, err := g.Step(0.4, 0); err == nil {
		t.Fatal("Step on uninitialized grid must error")
	}
}

func TestProblemsRegistry(t *testing.T) {
	names := Problems()
	if len(names) != 4 {
		t.Fatalf("registry has %d problems", len(names))
	}
	for _, n := range names {
		p, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.TEnd <= 0 || p.CFL <= 0 || p.InitialCondition == nil {
			t.Fatalf("problem %q incomplete", n)
		}
	}
	if _, err := Lookup("nonexistent"); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

func TestPositivity(t *testing.T) {
	// The strong Sedov blast must keep density and pressure positive.
	p, err := Lookup("sedov")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Run(p, 64, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 64; j++ {
		for i := 0; i < 64; i++ {
			rho, _, _, pr := g.Primitive(i, j)
			if rho <= 0 || math.IsNaN(rho) || math.IsNaN(pr) {
				t.Fatalf("cell (%d,%d): rho=%v p=%v", i, j, rho, pr)
			}
		}
	}
}
