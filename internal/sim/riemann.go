package sim

import "math"

// RiemannState is one side of a 1-D Riemann problem in primitive variables.
type RiemannState struct {
	Rho, U, P float64
}

// ExactRiemann solves the 1-D Riemann problem exactly (Toro, ch. 4) and
// returns a sampler giving (rho, u, p) at similarity coordinate s = x/t.
// It is used to validate the Euler solver against the Sod problem.
func ExactRiemann(l, r RiemannState) func(s float64) (rho, u, p float64) {
	g := Gamma
	g1 := (g - 1) / (2 * g)
	g2 := (g + 1) / (2 * g)
	g3 := 2 * g / (g - 1)
	g4 := 2 / (g - 1)
	g5 := 2 / (g + 1)
	g6 := (g - 1) / (g + 1)
	g7 := (g - 1) / 2

	cL := math.Sqrt(g * l.P / l.Rho)
	cR := math.Sqrt(g * r.P / r.Rho)

	// fK is the pressure function for one side; returns f and df/dp.
	fK := func(p float64, s RiemannState, c float64) (f, df float64) {
		if p > s.P {
			// Shock.
			a := g5 / s.Rho
			b := g6 * s.P
			q := math.Sqrt(a / (p + b))
			f = (p - s.P) * q
			df = q * (1 - 0.5*(p-s.P)/(b+p))
			return
		}
		// Rarefaction.
		pr := p / s.P
		f = g4 * c * (math.Pow(pr, g1) - 1)
		df = math.Pow(pr, -g2) / (s.Rho * c)
		return
	}

	// Newton-Raphson for p*.
	p := 0.5 * (l.P + r.P) // initial guess
	if p < 1e-12 {
		p = 1e-12
	}
	for iter := 0; iter < 100; iter++ {
		fL, dL := fK(p, l, cL)
		fR, dR := fK(p, r, cR)
		f := fL + fR + (r.U - l.U)
		df := dL + dR
		dp := f / df
		p -= dp
		if p < 1e-12 {
			p = 1e-12
		}
		if math.Abs(dp) < 1e-14*(p+1e-14) {
			break
		}
	}
	pStar := p
	fL, _ := fK(pStar, l, cL)
	fR, _ := fK(pStar, r, cR)
	uStar := 0.5*(l.U+r.U) + 0.5*(fR-fL)

	return func(s float64) (rho, u, pp float64) {
		if s <= uStar {
			// Left of contact.
			if pStar > l.P {
				// Left shock.
				sL := l.U - cL*math.Sqrt(g2*pStar/l.P+g1)
				if s <= sL {
					return l.Rho, l.U, l.P
				}
				rhoS := l.Rho * (pStar/l.P + g6) / (g6*pStar/l.P + 1)
				return rhoS, uStar, pStar
			}
			// Left rarefaction.
			shL := l.U - cL
			if s <= shL {
				return l.Rho, l.U, l.P
			}
			cStar := cL * math.Pow(pStar/l.P, g1)
			stL := uStar - cStar
			if s >= stL {
				rhoS := l.Rho * math.Pow(pStar/l.P, 1/g)
				return rhoS, uStar, pStar
			}
			// Inside the fan.
			u = g5 * (cL + g7*l.U + s)
			c := g5 * (cL + g7*(l.U-s))
			rho = l.Rho * math.Pow(c/cL, g4)
			pp = l.P * math.Pow(c/cL, g3)
			return rho, u, pp
		}
		// Right of contact.
		if pStar > r.P {
			// Right shock.
			sR := r.U + cR*math.Sqrt(g2*pStar/r.P+g1)
			if s >= sR {
				return r.Rho, r.U, r.P
			}
			rhoS := r.Rho * (pStar/r.P + g6) / (g6*pStar/r.P + 1)
			return rhoS, uStar, pStar
		}
		// Right rarefaction.
		shR := r.U + cR
		if s >= shR {
			return r.Rho, r.U, r.P
		}
		cStar := cR * math.Pow(pStar/r.P, g1)
		stR := uStar + cStar
		if s <= stR {
			rhoS := r.Rho * math.Pow(pStar/r.P, 1/g)
			return rhoS, uStar, pStar
		}
		u = g5 * (-cR + g7*r.U + s)
		c := g5 * (cR - g7*(r.U-s))
		rho = r.Rho * math.Pow(c/cR, g4)
		pp = r.P * math.Pow(c/cR, g3)
		return rho, u, pp
	}
}
