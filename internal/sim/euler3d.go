package sim

import (
	"fmt"
	"math"
)

// nvar3 is the conserved-variable count in 3-D: rho, rho·u, rho·v, rho·w, E.
const nvar3 = 5

// Grid3 is a uniform 3-D finite-volume grid over the unit cube with two
// ghost layers per side, advanced by the same MUSCL + HLL dimensional
// splitting as the 2-D solver.
type Grid3 struct {
	Nx, Ny, Nz int
	BC         Boundary
	u          [nvar3][]float64
	sx, sy     int // strides: sx = 1 implicit, sy = Nx+2ng, sz = sy*(Ny+2ng)
	sz         int
	Time       float64
	Steps      int
}

// NewGrid3 allocates a 3-D grid of nx × ny × nz interior cells.
func NewGrid3(nx, ny, nz int, bc Boundary) *Grid3 {
	g := &Grid3{Nx: nx, Ny: ny, Nz: nz, BC: bc}
	g.sy = nx + 2*ng
	g.sz = g.sy * (ny + 2*ng)
	n := g.sz * (nz + 2*ng)
	for v := 0; v < nvar3; v++ {
		g.u[v] = make([]float64, n)
	}
	return g
}

// idx maps (i,j,k), each possibly in ghost range, to storage offset.
func (g *Grid3) idx(i, j, k int) int {
	return (k+ng)*g.sz + (j+ng)*g.sy + (i + ng)
}

// Dx reports the cell width (cubic cells over the unit cube per dimension).
func (g *Grid3) Dx() float64 { return 1.0 / float64(g.Nx) }

// Dy reports the y cell width.
func (g *Grid3) Dy() float64 { return 1.0 / float64(g.Ny) }

// Dz reports the z cell width.
func (g *Grid3) Dz() float64 { return 1.0 / float64(g.Nz) }

// CellCenter reports the physical centre of interior cell (i,j,k).
func (g *Grid3) CellCenter(i, j, k int) (x, y, z float64) {
	return (float64(i) + 0.5) * g.Dx(), (float64(j) + 0.5) * g.Dy(), (float64(k) + 0.5) * g.Dz()
}

// SetPrimitive initializes interior cell (i,j,k) from primitive variables.
func (g *Grid3) SetPrimitive(i, j, k int, rho, vx, vy, vz, p float64) {
	o := g.idx(i, j, k)
	g.u[0][o] = rho
	g.u[1][o] = rho * vx
	g.u[2][o] = rho * vy
	g.u[3][o] = rho * vz
	g.u[4][o] = p/(Gamma-1) + 0.5*rho*(vx*vx+vy*vy+vz*vz)
}

// Primitive reads primitive variables of interior cell (i,j,k).
func (g *Grid3) Primitive(i, j, k int) (rho, vx, vy, vz, p float64) {
	o := g.idx(i, j, k)
	rho = g.u[0][o]
	vx = g.u[1][o] / rho
	vy = g.u[2][o] / rho
	vz = g.u[3][o] / rho
	p = (Gamma - 1) * (g.u[4][o] - 0.5*rho*(vx*vx+vy*vy+vz*vz))
	return
}

// axisGeom describes sweeps along one axis: extent, memory stride, and the
// index of the normal momentum component.
type axisGeom struct {
	n      int
	stride int
	normal int // 1, 2 or 3
}

func (g *Grid3) axis(a int) axisGeom {
	switch a {
	case 0:
		return axisGeom{g.Nx, 1, 1}
	case 1:
		return axisGeom{g.Ny, g.sy, 2}
	default:
		return axisGeom{g.Nz, g.sz, 3}
	}
}

// fillGhosts applies the boundary condition along every axis.
func (g *Grid3) fillGhosts() {
	dims := [3]int{g.Nx, g.Ny, g.Nz}
	for a := 0; a < 3; a++ {
		ax := g.axis(a)
		// Enumerate all lines along axis a.
		o1, o2 := (a+1)%3, (a+2)%3
		ax1, ax2 := g.axis(o1), g.axis(o2)
		for p2 := -ng; p2 < dims[o2]+ng; p2++ {
			for p1 := -ng; p1 < dims[o1]+ng; p1++ {
				base := g.idx(0, 0, 0) + p1*ax1.stride + p2*ax2.stride
				for v := 0; v < nvar3; v++ {
					u := g.u[v]
					for l := 1; l <= ng; l++ {
						lo := base - l*ax.stride
						hi := base + (ax.n-1+l)*ax.stride
						switch g.BC {
						case Periodic:
							u[lo] = u[base+(ax.n-l)*ax.stride]
							u[hi] = u[base+(l-1)*ax.stride]
						case Reflect:
							u[lo] = u[base+(l-1)*ax.stride]
							u[hi] = u[base+(ax.n-l)*ax.stride]
							if v == ax.normal {
								u[lo] = -u[lo]
								u[hi] = -u[hi]
							}
						default: // Outflow
							u[lo] = u[base]
							u[hi] = u[base+(ax.n-1)*ax.stride]
						}
					}
				}
			}
		}
	}
}

// hllFlux3 computes the HLL flux for a 1-D Riemann problem with the normal
// momentum at index nrm; the other two momenta advect passively.
func hllFlux3(l, r [nvar3]float64, nrm int) [nvar3]float64 {
	prim := func(c [nvar3]float64) (rho, un, p float64) {
		rho = c[0]
		if rho < 1e-12 {
			rho = 1e-12
		}
		un = c[nrm] / rho
		ke := (c[1]*c[1] + c[2]*c[2] + c[3]*c[3]) / (2 * rho)
		p = (Gamma - 1) * (c[4] - ke)
		if p < 1e-12 {
			p = 1e-12
		}
		return
	}
	rhoL, uL, pL := prim(l)
	rhoR, uR, pR := prim(r)
	cL := math.Sqrt(Gamma * pL / rhoL)
	cR := math.Sqrt(Gamma * pR / rhoR)
	sL := math.Min(uL-cL, uR-cR)
	sR := math.Max(uL+cL, uR+cR)
	fluxOf := func(c [nvar3]float64, un, p float64) [nvar3]float64 {
		var f [nvar3]float64
		f[0] = c[nrm]
		for m := 1; m <= 3; m++ {
			f[m] = c[m] * un
		}
		f[nrm] += p
		f[4] = un * (c[4] + p)
		return f
	}
	fL := fluxOf(l, uL, pL)
	fR := fluxOf(r, uR, pR)
	switch {
	case sL >= 0:
		return fL
	case sR <= 0:
		return fR
	default:
		var f [nvar3]float64
		inv := 1 / (sR - sL)
		for v := 0; v < nvar3; v++ {
			f[v] = (sR*fL[v] - sL*fR[v] + sL*sR*(r[v]-l[v])) * inv
		}
		return f
	}
}

// maxWaveSpeed3 scans the interior for the largest per-axis signal speed.
func (g *Grid3) maxWaveSpeed3() [3]float64 {
	var a [3]float64
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				rho, vx, vy, vz, p := g.Primitive(i, j, k)
				if rho <= 0 || p <= 0 {
					continue
				}
				c := math.Sqrt(Gamma * p / rho)
				if s := math.Abs(vx) + c; s > a[0] {
					a[0] = s
				}
				if s := math.Abs(vy) + c; s > a[1] {
					a[1] = s
				}
				if s := math.Abs(vz) + c; s > a[2] {
					a[2] = s
				}
			}
		}
	}
	return a
}

// sweep3 advances the split equations along axis a by dt with MUSCL
// reconstruction on every line.
func (g *Grid3) sweep3(a int, dt float64) {
	g.fillGhosts()
	ax := g.axis(a)
	h := [3]float64{g.Dx(), g.Dy(), g.Dz()}[a]
	lam := dt / h
	dims := [3]int{g.Nx, g.Ny, g.Nz}
	o1, o2 := (a+1)%3, (a+2)%3
	ax1, ax2 := g.axis(o1), g.axis(o2)

	flux := make([][nvar3]float64, ax.n+1)
	newU := make([][nvar3]float64, ax.n)
	for p2 := 0; p2 < dims[o2]; p2++ {
		for p1 := 0; p1 < dims[o1]; p1++ {
			base := g.idx(0, 0, 0) + p1*ax1.stride + p2*ax2.stride
			at := func(v, i int) float64 { return g.u[v][base+i*ax.stride] }
			for i := 0; i <= ax.n; i++ {
				var l, r [nvar3]float64
				for v := 0; v < nvar3; v++ {
					um := at(v, i-2)
					u0 := at(v, i-1)
					up := at(v, i)
					upp := at(v, i+1)
					l[v] = u0 + 0.5*minmod(u0-um, up-u0)
					r[v] = up - 0.5*minmod(up-u0, upp-up)
				}
				flux[i] = hllFlux3(l, r, ax.normal)
			}
			for i := 0; i < ax.n; i++ {
				for v := 0; v < nvar3; v++ {
					newU[i][v] = at(v, i) - lam*(flux[i+1][v]-flux[i][v])
				}
			}
			for i := 0; i < ax.n; i++ {
				for v := 0; v < nvar3; v++ {
					g.u[v][base+i*ax.stride] = newU[i][v]
				}
			}
		}
	}
}

// Step advances one time step of at most dtMax; sweep order rotates with
// step parity for approximate Strang symmetry.
func (g *Grid3) Step(cfl, dtMax float64) (float64, error) {
	a := g.maxWaveSpeed3()
	sum := a[0]/g.Dx() + a[1]/g.Dy() + a[2]/g.Dz()
	if sum == 0 {
		return 0, fmt.Errorf("sim: zero wave speed; uninitialized grid?")
	}
	dt := cfl / sum
	if dtMax > 0 && dt > dtMax {
		dt = dtMax
	}
	order := [][3]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {0, 2, 1}, {2, 0, 1}, {1, 0, 2}}
	for _, ax := range order[g.Steps%len(order)] {
		g.sweep3(ax, dt)
	}
	g.Time += dt
	g.Steps++
	return dt, nil
}

// Advance runs Step until tEnd.
func (g *Grid3) Advance(tEnd, cfl float64) error {
	const maxSteps = 200000
	for g.Time < tEnd {
		if _, err := g.Step(cfl, tEnd-g.Time); err != nil {
			return err
		}
		if g.Steps > maxSteps {
			return fmt.Errorf("sim: exceeded %d steps before t=%g", maxSteps, tEnd)
		}
	}
	return nil
}

// Quantity3 evaluates a named primitive quantity at interior cell (i,j,k).
// Names follow QuantityNames plus "velz".
func (g *Grid3) Quantity3(name string, i, j, k int) float64 {
	rho, vx, vy, vz, p := g.Primitive(i, j, k)
	switch name {
	case "dens":
		return rho
	case "pres":
		return p
	case "velx":
		return vx
	case "vely":
		return vy
	case "velz":
		return vz
	case "ener":
		return p/((Gamma-1)*rho) + 0.5*(vx*vx+vy*vy+vz*vz)
	default:
		panic(fmt.Sprintf("sim: unknown quantity %q", name))
	}
}

// Sampler3 returns a trilinear interpolator over the named quantity.
func (g *Grid3) Sampler3(name string) func(x, y, z float64) float64 {
	nx, ny, nz := g.Nx, g.Ny, g.Nz
	vals := make([]float64, nx*ny*nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				vals[(k*ny+j)*nx+i] = g.Quantity3(name, i, j, k)
			}
		}
	}
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	return func(x, y, z float64) float64 {
		fx := x*float64(nx) - 0.5
		fy := y*float64(ny) - 0.5
		fz := z*float64(nz) - 0.5
		i0 := clamp(int(math.Floor(fx)), nx-1)
		j0 := clamp(int(math.Floor(fy)), ny-1)
		k0 := clamp(int(math.Floor(fz)), nz-1)
		i1 := clamp(i0+1, nx-1)
		j1 := clamp(j0+1, ny-1)
		k1 := clamp(k0+1, nz-1)
		tx := fx - math.Floor(fx)
		ty := fy - math.Floor(fy)
		tz := fz - math.Floor(fz)
		if i1 == i0 {
			tx = 0
		}
		if j1 == j0 {
			ty = 0
		}
		if k1 == k0 {
			tz = 0
		}
		v := func(i, j, k int) float64 { return vals[(k*ny+j)*nx+i] }
		lerp := func(a, b, t float64) float64 { return a + t*(b-a) }
		c00 := lerp(v(i0, j0, k0), v(i1, j0, k0), tx)
		c10 := lerp(v(i0, j1, k0), v(i1, j1, k0), tx)
		c01 := lerp(v(i0, j0, k1), v(i1, j0, k1), tx)
		c11 := lerp(v(i0, j1, k1), v(i1, j1, k1), tx)
		return lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz)
	}
}
