package sim

import (
	"fmt"
	"math"

	"repro/internal/amr"
)

// AdvectionDiffusion evolves a scalar u on the AMR hierarchy itself (2-D or
// 3-D, periodic domain): u_t + a·∇u = ν ∆u, first-order upwind advection
// and central diffusion on leaf blocks, explicit Euler in time with a
// global time step set by the finest level. Ghost cells at coarse–fine
// interfaces are filled by same-level copy where a same-level neighbour
// exists and by piecewise-constant prolongation from the first coarser
// ancestor otherwise; interior (refined) blocks hold restricted data, so
// coarse neighbours are always valid donors. Combined with
// refine-on-gradient regridding this is a miniature but genuine AMR solver,
// used to produce time-evolving hierarchies whose refinement tracks the
// solution. Refinement is monotone within a run (no coarsening), a
// deliberate substrate constraint.
type AdvectionDiffusion struct {
	Mesh  *amr.Mesh
	U     *amr.Field
	Ax    float64 // advection velocity x
	Ay    float64 // advection velocity y
	Az    float64 // advection velocity z (3-D only)
	Nu    float64 // diffusivity
	CFL   float64 // stability factor in (0, 1]; default 0.4
	Time  float64
	Steps int

	scratch map[amr.BlockID][]float64 // per-block next-step buffers
}

// NewAdvectionDiffusion wraps an existing mesh/field pair.
func NewAdvectionDiffusion(m *amr.Mesh, u *amr.Field, ax, ay, nu float64) (*AdvectionDiffusion, error) {
	return &AdvectionDiffusion{
		Mesh: m, U: u, Ax: ax, Ay: ay, Nu: nu, CFL: 0.4,
		scratch: make(map[amr.BlockID][]float64),
	}, nil
}

// sample reads the solution at (level, global cell coords), walking to
// coarser ancestors when the requested level does not cover the location.
// Coordinates wrap periodically at each level's lattice extent.
func (s *AdvectionDiffusion) sample(level, gi, gj, gk int) float64 {
	m := s.Mesh
	bs := m.BlockSize()
	if m.Dims() == 2 {
		gk = 0
	}
	for l := level; l >= 0; l-- {
		dims := m.LevelCellDims(l)
		i := ((gi % dims[0]) + dims[0]) % dims[0]
		j := ((gj % dims[1]) + dims[1]) % dims[1]
		k := 0
		bk := 0
		if m.Dims() == 3 {
			k = ((gk % dims[2]) + dims[2]) % dims[2]
			bk = k / bs
		}
		if id, ok := m.Lookup(l, [3]int{i / bs, j / bs, bk}); ok {
			return s.U.At(id, i%bs, j%bs, k%bs)
		}
		gi >>= 1
		gj >>= 1
		gk >>= 1
	}
	panic("sim: unreachable — level 0 covers the domain")
}

// dt computes the stable global step from the finest level present.
func (s *AdvectionDiffusion) dt() float64 {
	h := s.Mesh.CellExtent(s.Mesh.MaxLevel(), 0)
	adv := math.Inf(1)
	if v := math.Abs(s.Ax) + math.Abs(s.Ay) + math.Abs(s.Az); v > 0 {
		adv = h / v
	}
	diff := math.Inf(1)
	if s.Nu > 0 {
		// Explicit stability limit h² / (2·dims·ν).
		diff = h * h / (2 * float64(s.Mesh.Dims()) * s.Nu)
	}
	cfl := s.CFL
	if cfl <= 0 {
		cfl = 0.4
	}
	d := cfl * math.Min(adv, diff)
	if math.IsInf(d, 0) {
		return 0
	}
	return d
}

// upwind computes the upwind first derivative given the stencil values and
// the advection speed along the axis.
func upwind(a, uMinus, u, uPlus, h float64) float64 {
	if a >= 0 {
		return (u - uMinus) / h
	}
	return (uPlus - u) / h
}

// Step advances one explicit Euler step on all leaves; returns dt.
func (s *AdvectionDiffusion) Step() (float64, error) {
	dt := s.dt()
	if dt <= 0 {
		return 0, fmt.Errorf("sim: zero stable time step (no dynamics configured)")
	}
	m := s.Mesh
	bs := m.BlockSize()
	threeD := m.Dims() == 3
	kmax := 1
	if threeD {
		kmax = bs
	}
	s.U.Sync()
	leaves := m.Leaves()
	for _, id := range leaves {
		b := m.Block(id)
		h := m.CellExtent(b.Level, 0)
		buf := s.scratch[id]
		if len(buf) < m.CellsPerBlock() {
			buf = make([]float64, m.CellsPerBlock())
			s.scratch[id] = buf
		}
		ox := b.Coord[0] * bs
		oy := b.Coord[1] * bs
		oz := b.Coord[2] * bs
		for k := 0; k < kmax; k++ {
			for j := 0; j < bs; j++ {
				for i := 0; i < bs; i++ {
					u := s.U.At(id, i, j, k)
					uw := s.sample(b.Level, ox+i-1, oy+j, oz+k)
					ue := s.sample(b.Level, ox+i+1, oy+j, oz+k)
					us := s.sample(b.Level, ox+i, oy+j-1, oz+k)
					un := s.sample(b.Level, ox+i, oy+j+1, oz+k)
					adv := s.Ax*upwind(s.Ax, uw, u, ue, h) +
						s.Ay*upwind(s.Ay, us, u, un, h)
					lap := uw + ue + us + un - 4*u
					if threeD {
						ub := s.sample(b.Level, ox+i, oy+j, oz+k-1)
						ut := s.sample(b.Level, ox+i, oy+j, oz+k+1)
						adv += s.Az * upwind(s.Az, ub, u, ut, h)
						lap += ub + ut - 2*u
					}
					lap /= h * h
					idx := (j*bs + i)
					if threeD {
						idx = (k*bs+j)*bs + i
					}
					buf[idx] = u + dt*(-adv+s.Nu*lap)
				}
			}
		}
	}
	// Commit and refresh parents.
	for _, id := range leaves {
		copy(s.U.Data(id), s.scratch[id])
	}
	s.U.Restrict()
	s.Time += dt
	s.Steps++
	return dt, nil
}

// Regrid refines leaves whose Löhner indicator exceeds threshold (up to
// maxDepth), prolongating the solution onto new children. Refinement is
// monotone (no coarsening), as in refine-only AMR drivers.
func (s *AdvectionDiffusion) Regrid(threshold float64, maxDepth int) error {
	m := s.Mesh
	scale := s.U.MaxAbs()
	for _, id := range m.Leaves() {
		if m.Block(id).Level >= maxDepth {
			continue
		}
		if amr.LohnerIndicator(s.U, id, 0.01, scale) <= threshold {
			continue
		}
		before := m.NumBlocks()
		if err := m.Refine(id); err != nil {
			return err
		}
		s.U.Sync()
		// Prolong data onto every block created by this refinement
		// (balance enforcement may have created additional families).
		for nb := before; nb < m.NumBlocks(); nb++ {
			s.U.Prolong(amr.BlockID(nb))
		}
	}
	return nil
}

// Run advances to tEnd, regridding every regridEvery steps (0 disables).
func (s *AdvectionDiffusion) Run(tEnd float64, regridEvery int, threshold float64, maxDepth int) error {
	const maxSteps = 500000
	for s.Time < tEnd {
		if regridEvery > 0 && s.Steps%regridEvery == 0 {
			if err := s.Regrid(threshold, maxDepth); err != nil {
				return err
			}
		}
		if _, err := s.Step(); err != nil {
			return err
		}
		if s.Steps > maxSteps {
			return fmt.Errorf("sim: exceeded %d steps before t=%g", maxSteps, tEnd)
		}
	}
	return nil
}

// TotalMass integrates u over the domain (leaf cells weighted by volume).
func (s *AdvectionDiffusion) TotalMass() float64 {
	m := s.Mesh
	bs := m.BlockSize()
	kmax := 1
	if m.Dims() == 3 {
		kmax = bs
	}
	var mass float64
	for _, id := range m.Leaves() {
		b := m.Block(id)
		h := m.CellExtent(b.Level, 0)
		vol := h * h
		if m.Dims() == 3 {
			vol *= h
		}
		for k := 0; k < kmax; k++ {
			for j := 0; j < bs; j++ {
				for i := 0; i < bs; i++ {
					mass += s.U.At(id, i, j, k) * vol
				}
			}
		}
	}
	return mass
}
