package sim

import (
	"math"
	"testing"

	"repro/internal/amr"
)

// smallCheckpointOptions keeps unit tests fast.
func smallCheckpointOptions() CheckpointOptions {
	return CheckpointOptions{
		Resolution: 64,
		TScale:     0.5,
		BlockSize:  8,
		RootDims:   [3]int{2, 2, 1},
		MaxDepth:   2,
		Threshold:  0.35,
	}
}

func TestGenerateCheckpointSod(t *testing.T) {
	ck, err := GenerateCheckpoint("sod", smallCheckpointOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ck.Problem != "sod" {
		t.Fatalf("problem %q", ck.Problem)
	}
	if got, want := len(ck.Fields), len(QuantityNames()); got != want {
		t.Fatalf("%d fields, want %d", got, want)
	}
	// The shock must have driven refinement.
	if ck.Mesh.MaxLevel() < 1 {
		t.Fatal("no refinement on a shock problem")
	}
	// Every field shares the mesh.
	for _, f := range ck.Fields {
		if f.Mesh() != ck.Mesh {
			t.Fatalf("field %s bound to a different mesh", f.Name)
		}
	}
	// Density values must be within the physically admissible Sod range.
	dens, ok := ck.Field("dens")
	if !ok {
		t.Fatal("dens field missing")
	}
	for id := 0; id < ck.Mesh.NumBlocks(); id++ {
		for _, v := range dens.Data(amr.BlockID(id)) {
			if v < 0.05 || v > 1.5 || math.IsNaN(v) {
				t.Fatalf("density %v outside Sod range", v)
			}
		}
	}
}

func TestFieldLookup(t *testing.T) {
	ck, err := GenerateCheckpoint("sod", smallCheckpointOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ck.Field("pres"); !ok {
		t.Fatal("pres missing")
	}
	if _, ok := ck.Field("nope"); ok {
		t.Fatal("bogus field found")
	}
}

func TestGenerateCheckpointSubsetQuantities(t *testing.T) {
	opt := smallCheckpointOptions()
	opt.Quantities = []string{"pres", "dens"}
	ck, err := GenerateCheckpoint("sedov", opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Fields) != 2 {
		t.Fatalf("%d fields", len(ck.Fields))
	}
	if ck.Fields[0].Name != "pres" || ck.Fields[1].Name != "dens" {
		t.Fatalf("field names %q %q", ck.Fields[0].Name, ck.Fields[1].Name)
	}
}

func TestGenerateCheckpointUnknownProblem(t *testing.T) {
	if _, err := GenerateCheckpoint("warp-drive", smallCheckpointOptions()); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

func TestSamplerInterpolates(t *testing.T) {
	g := NewGrid(8, 8, Outflow)
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			x, _ := g.CellCenter(i, j)
			g.SetPrimitive(i, j, 1+x, 0, 0, 1)
		}
	}
	s := g.Sampler("dens")
	// At a cell centre the sampler returns the cell value exactly.
	x, y := g.CellCenter(3, 4)
	if got := s(x, y, 0); math.Abs(got-(1+x)) > 1e-12 {
		t.Fatalf("sampler at centre = %v, want %v", got, 1+x)
	}
	// Between centres a linear field is reproduced exactly by bilinear
	// interpolation.
	xm := x + 0.5*g.Dx()
	if got := s(xm, y, 0); math.Abs(got-(1+xm)) > 1e-12 {
		t.Fatalf("sampler midpoint = %v, want %v", got, 1+xm)
	}
	// Clamping at the domain edge must not panic and stays in range.
	if got := s(0, 0, 0); got < 1 || got > 2 {
		t.Fatalf("corner sample %v out of range", got)
	}
	if got := s(1, 1, 0); got < 1 || got > 2 {
		t.Fatalf("far corner sample %v out of range", got)
	}
}

func TestQuantityNamesMatchQuantity(t *testing.T) {
	g := NewGrid(4, 4, Outflow)
	g.SetPrimitive(1, 1, 2, 0.5, -0.5, 3)
	for _, name := range QuantityNames() {
		v := g.Quantity(name, 1, 1)
		if math.IsNaN(v) {
			t.Fatalf("quantity %s is NaN", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown quantity must panic")
		}
	}()
	g.Quantity("bogus", 1, 1)
}
