package sim

import (
	"math"
	"testing"
)

func TestGrid3PrimitiveRoundTrip(t *testing.T) {
	g := NewGrid3(4, 4, 4, Outflow)
	g.SetPrimitive(1, 2, 3, 1.5, 0.1, -0.2, 0.3, 2.5)
	rho, vx, vy, vz, p := g.Primitive(1, 2, 3)
	if rho != 1.5 || math.Abs(vx-0.1) > 1e-14 || math.Abs(vy+0.2) > 1e-14 ||
		math.Abs(vz-0.3) > 1e-14 || math.Abs(p-2.5) > 1e-12 {
		t.Fatalf("round trip: %v %v %v %v %v", rho, vx, vy, vz, p)
	}
}

func TestUniformFlow3DIsSteady(t *testing.T) {
	g := NewGrid3(8, 8, 8, Periodic)
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				g.SetPrimitive(i, j, k, 1.2, 0.3, -0.4, 0.5, 1.7)
			}
		}
	}
	for s := 0; s < 6; s++ {
		if _, err := g.Step(0.4, 0); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				rho, vx, vy, vz, p := g.Primitive(i, j, k)
				if math.Abs(rho-1.2) > 1e-12 || math.Abs(vx-0.3) > 1e-12 ||
					math.Abs(vy+0.4) > 1e-12 || math.Abs(vz-0.5) > 1e-12 ||
					math.Abs(p-1.7) > 1e-10 {
					t.Fatalf("cell (%d,%d,%d) drifted", i, j, k)
				}
			}
		}
	}
}

func TestMassConservation3DPeriodic(t *testing.T) {
	g := NewGrid3(12, 12, 12, Periodic)
	for k := 0; k < 12; k++ {
		for j := 0; j < 12; j++ {
			for i := 0; i < 12; i++ {
				x, y, z := g.CellCenter(i, j, k)
				g.SetPrimitive(i, j, k, 1+0.3*math.Sin(2*math.Pi*(x+y+z)),
					0.2, -0.1, 0.15, 1)
			}
		}
	}
	mass := func() float64 {
		var m float64
		for k := 0; k < 12; k++ {
			for j := 0; j < 12; j++ {
				for i := 0; i < 12; i++ {
					rho, _, _, _, _ := g.Primitive(i, j, k)
					m += rho
				}
			}
		}
		return m
	}
	m0 := mass()
	for s := 0; s < 20; s++ {
		if _, err := g.Step(0.4, 0); err != nil {
			t.Fatal(err)
		}
	}
	if rel := math.Abs(mass()-m0) / m0; rel > 1e-12 {
		t.Fatalf("mass drifted by %v", rel)
	}
}

func TestSod3DAgainstExact(t *testing.T) {
	p, err := Lookup3D("sod3d")
	if err != nil {
		t.Fatal(err)
	}
	// Coarse 3-D run; variation is along x only.
	g := NewGrid3(96, 4, 4, p.BC)
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 96; i++ {
				x := (float64(i) + 0.5) / 96
				rho, vx, vy, vz, pr := p.InitialCondition(x, 0, 0)
				g.SetPrimitive(i, j, k, rho, vx, vy, vz, pr)
			}
		}
	}
	if err := g.Advance(0.2, 0.4); err != nil {
		t.Fatal(err)
	}
	exact := ExactRiemann(
		RiemannState{Rho: 1, U: 0, P: 1},
		RiemannState{Rho: 0.125, U: 0, P: 0.1},
	)
	var l1 float64
	for i := 0; i < 96; i++ {
		x := (float64(i) + 0.5) / 96
		rho, _, _, _, _ := g.Primitive(i, 2, 2)
		want, _, _ := exact((x - 0.5) / g.Time)
		l1 += math.Abs(rho - want)
	}
	l1 /= 96
	if l1 > 0.03 {
		t.Fatalf("3-D Sod density L1 error %.4f vs exact; want < 0.03", l1)
	}
}

func TestSedov3DSymmetry(t *testing.T) {
	p, err := Lookup3D("sedov3d")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Run3D(p, 24, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Octant symmetry of density about the centre.
	n := 24
	for k := 0; k < n/2; k++ {
		for j := 0; j < n/2; j++ {
			for i := 0; i < n/2; i++ {
				a, _, _, _, _ := g.Primitive(i, j, k)
				b, _, _, _, _ := g.Primitive(n-1-i, j, k)
				c, _, _, _, _ := g.Primitive(i, n-1-j, k)
				d, _, _, _, _ := g.Primitive(i, j, n-1-k)
				if math.Abs(a-b) > 1e-9 || math.Abs(a-c) > 1e-9 || math.Abs(a-d) > 1e-9 {
					t.Fatalf("asymmetry at (%d,%d,%d): %v %v %v %v", i, j, k, a, b, c, d)
				}
			}
		}
	}
}

func TestQuantity3AndSampler3(t *testing.T) {
	g := NewGrid3(8, 8, 8, Outflow)
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				x, _, _ := g.CellCenter(i, j, k)
				g.SetPrimitive(i, j, k, 1+x, 0.5, 0, 0, 1)
			}
		}
	}
	if v := g.Quantity3("velx", 3, 3, 3); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("velx = %v", v)
	}
	s := g.Sampler3("dens")
	x, y, z := g.CellCenter(4, 4, 4)
	if got := s(x, y, z); math.Abs(got-(1+x)) > 1e-12 {
		t.Fatalf("sampler at centre = %v, want %v", got, 1+x)
	}
	// Trilinear interpolation reproduces linear fields between centres.
	xm := x + 0.3*g.Dx()
	if got := s(xm, y, z); math.Abs(got-(1+xm)) > 1e-12 {
		t.Fatalf("sampler between centres = %v, want %v", got, 1+xm)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown quantity must panic")
		}
	}()
	g.Quantity3("bogus", 0, 0, 0)
}

func TestGenerateCheckpoint3D(t *testing.T) {
	ck, err := GenerateCheckpoint3D("sedov3d", 24, Analytic3DOptions{
		BlockSize: 4, RootDims: [3]int{2, 2, 2}, MaxDepth: 2, Threshold: 0.35,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ck.Mesh.Dims() != 3 {
		t.Fatalf("dims %d", ck.Mesh.Dims())
	}
	if ck.Mesh.MaxLevel() < 1 {
		t.Fatal("3-D blast did not refine")
	}
	if len(ck.Fields) != len(QuantityNames3D()) {
		t.Fatalf("%d fields", len(ck.Fields))
	}
	if _, err := GenerateCheckpoint3D("nope", 16, Analytic3DOptions{}); err == nil {
		t.Fatal("unknown 3-D problem accepted")
	}
}

func TestReflect3DGhosts(t *testing.T) {
	g := NewGrid3(4, 4, 4, Reflect)
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 4; i++ {
				g.SetPrimitive(i, j, k, 1, 2, 3, 4, 1)
			}
		}
	}
	g.fillGhosts()
	// Normal momentum flips at each face; density mirrors.
	if g.u[0][g.idx(-1, 2, 2)] != g.u[0][g.idx(0, 2, 2)] {
		t.Fatal("x-face density")
	}
	if g.u[1][g.idx(-1, 2, 2)] != -g.u[1][g.idx(0, 2, 2)] {
		t.Fatal("x-face normal momentum must flip")
	}
	if g.u[2][g.idx(2, -1, 2)] != -g.u[2][g.idx(2, 0, 2)] {
		t.Fatal("y-face normal momentum must flip")
	}
	if g.u[3][g.idx(2, 2, -1)] != -g.u[3][g.idx(2, 2, 0)] {
		t.Fatal("z-face normal momentum must flip")
	}
	// Tangential momentum mirrors unchanged.
	if g.u[2][g.idx(-1, 2, 2)] != g.u[2][g.idx(0, 2, 2)] {
		t.Fatal("x-face tangential momentum must mirror")
	}
}
