package sim

import (
	"fmt"
	"math"

	"repro/internal/amr"
)

// Analytic3DOptions configures Generate3D.
type Analytic3DOptions struct {
	BlockSize int
	RootDims  [3]int
	MaxDepth  int
	Threshold float64
}

// DefaultAnalytic3DOptions matches the scale of the 2-D evaluation
// hierarchies.
func DefaultAnalytic3DOptions() Analytic3DOptions {
	return Analytic3DOptions{
		BlockSize: 8,
		RootDims:  [3]int{2, 2, 2},
		MaxDepth:  2,
		Threshold: 0.35,
	}
}

// Generate3D builds a 3-D AMR checkpoint from analytic fields modelling a
// spherical blast: a steep spherical density front (driving refinement), a
// pressure field decaying behind the shock, and a radial velocity field.
// The 2-D evaluation's solver substitutes for FLASH; in 3-D, where a full
// hydro solve is out of scope, the same statistical structure — a
// codimension-1 steep front refined by the AMR criterion, smooth fields
// elsewhere — is produced analytically.
func Generate3D(opt Analytic3DOptions) (*Checkpoint, error) {
	if opt.BlockSize == 0 {
		opt = DefaultAnalytic3DOptions()
	}
	const (
		r0 = 0.31 // front radius
		w  = 0.01 // front width
	)
	radius := func(x, y, z float64) float64 {
		dx, dy, dz := x-0.5, y-0.5, z-0.5
		return math.Sqrt(dx*dx + dy*dy + dz*dz)
	}
	dens := func(x, y, z float64) float64 {
		r := radius(x, y, z)
		// Shock jump at r0 with a mild post-shock ramp.
		return 0.125 + 0.875/(1+math.Exp((r-r0)/w)) + 0.1*math.Exp(-r*r/0.02)
	}
	pres := func(x, y, z float64) float64 {
		r := radius(x, y, z)
		return 0.1 + 0.9/(1+math.Exp((r-r0)/w)) + 2*math.Exp(-r*r/0.005)
	}
	velr := func(x, y, z float64) float64 {
		r := radius(x, y, z)
		// Radial outflow peaking just behind the front.
		return r / r0 * math.Exp(-((r-r0)/(3*w))*((r-r0)/(3*w))/2)
	}

	mesh, first, err := amr.BuildAdaptive(amr.BuildOptions{
		Dims:      3,
		BlockSize: opt.BlockSize,
		RootDims:  opt.RootDims,
		MaxDepth:  opt.MaxDepth,
		Threshold: opt.Threshold,
	}, dens)
	if err != nil {
		return nil, fmt.Errorf("sim: building 3-D hierarchy: %w", err)
	}
	first.Name = "dens"
	ck := &Checkpoint{Problem: "blast3d", Mesh: mesh, Fields: []*amr.Field{first}}
	ck.Fields = append(ck.Fields,
		amr.SampleField(mesh, "pres", pres),
		amr.SampleField(mesh, "velr", velr),
	)
	return ck, nil
}
