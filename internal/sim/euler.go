// Package sim generates the scientific datasets the compression study runs
// on. It implements a 2-D compressible Euler solver (MUSCL + HLL finite
// volume with dimensional splitting) on a uniform grid, the classic FLASH
// test problems (Sod, Sedov, blast, Kelvin–Helmholtz), and the projection of
// converged solutions onto the block-structured AMR hierarchy, yielding
// multi-level, multi-quantity checkpoints with the same statistical
// structure as production AMR output.
package sim

import (
	"fmt"
	"math"
)

// Gamma is the ratio of specific heats for the ideal-gas equation of state.
const Gamma = 1.4

// Boundary selects the boundary condition applied on all four grid edges.
type Boundary int

// Boundary conditions.
const (
	Outflow Boundary = iota // zero-gradient extrapolation
	Periodic
	Reflect
)

// nvar is the number of conserved variables: rho, rho*u, rho*v, E.
const nvar = 4

// Grid is a uniform 2-D finite-volume grid over the unit square holding the
// conserved variables with two ghost layers per side.
type Grid struct {
	Nx, Ny int
	BC     Boundary
	// u holds conserved variables: u[v][(j+2)*stride + (i+2)] for interior
	// cell (i,j), v in 0..3.
	u      [nvar][]float64
	stride int
	Time   float64
	Steps  int
}

const ng = 2 // ghost layers

// NewGrid allocates a grid of nx × ny interior cells.
func NewGrid(nx, ny int, bc Boundary) *Grid {
	g := &Grid{Nx: nx, Ny: ny, BC: bc, stride: nx + 2*ng}
	n := (nx + 2*ng) * (ny + 2*ng)
	for v := 0; v < nvar; v++ {
		g.u[v] = make([]float64, n)
	}
	return g
}

// idx maps interior coordinates (which may extend into ghosts with
// i in [-ng, Nx+ng)) to the storage offset.
func (g *Grid) idx(i, j int) int { return (j+ng)*g.stride + (i + ng) }

// Dx reports the cell width.
func (g *Grid) Dx() float64 { return 1.0 / float64(g.Nx) }

// Dy reports the cell height.
func (g *Grid) Dy() float64 { return 1.0 / float64(g.Ny) }

// CellCenter reports the physical centre of interior cell (i,j).
func (g *Grid) CellCenter(i, j int) (x, y float64) {
	return (float64(i) + 0.5) * g.Dx(), (float64(j) + 0.5) * g.Dy()
}

// SetPrimitive initializes interior cell (i,j) from primitive variables.
func (g *Grid) SetPrimitive(i, j int, rho, vx, vy, p float64) {
	k := g.idx(i, j)
	g.u[0][k] = rho
	g.u[1][k] = rho * vx
	g.u[2][k] = rho * vy
	g.u[3][k] = p/(Gamma-1) + 0.5*rho*(vx*vx+vy*vy)
}

// Primitive reads primitive variables (rho, vx, vy, p) of interior cell (i,j).
func (g *Grid) Primitive(i, j int) (rho, vx, vy, p float64) {
	k := g.idx(i, j)
	rho = g.u[0][k]
	vx = g.u[1][k] / rho
	vy = g.u[2][k] / rho
	p = (Gamma - 1) * (g.u[3][k] - 0.5*rho*(vx*vx+vy*vy))
	return
}

// fillGhosts applies the boundary condition to both ghost layers.
func (g *Grid) fillGhosts() {
	nx, ny := g.Nx, g.Ny
	for v := 0; v < nvar; v++ {
		u := g.u[v]
		for j := 0; j < ny; j++ {
			for l := 1; l <= ng; l++ {
				switch g.BC {
				case Periodic:
					u[g.idx(-l, j)] = u[g.idx(nx-l, j)]
					u[g.idx(nx-1+l, j)] = u[g.idx(l-1, j)]
				case Reflect:
					u[g.idx(-l, j)] = u[g.idx(l-1, j)]
					u[g.idx(nx-1+l, j)] = u[g.idx(nx-l, j)]
				default:
					u[g.idx(-l, j)] = u[g.idx(0, j)]
					u[g.idx(nx-1+l, j)] = u[g.idx(nx-1, j)]
				}
			}
		}
		for i := -ng; i < nx+ng; i++ {
			for l := 1; l <= ng; l++ {
				switch g.BC {
				case Periodic:
					u[g.idx(i, -l)] = u[g.idx(i, ny-l)]
					u[g.idx(i, ny-1+l)] = u[g.idx(i, l-1)]
				case Reflect:
					u[g.idx(i, -l)] = u[g.idx(i, l-1)]
					u[g.idx(i, ny-1+l)] = u[g.idx(i, ny-l)]
				default:
					u[g.idx(i, -l)] = u[g.idx(i, 0)]
					u[g.idx(i, ny-1+l)] = u[g.idx(i, ny-1)]
				}
			}
		}
	}
	if g.BC == Reflect {
		// Normal momentum flips sign in reflecting ghosts.
		for j := 0; j < ny; j++ {
			for l := 1; l <= ng; l++ {
				g.u[1][g.idx(-l, j)] = -g.u[1][g.idx(-l, j)]
				g.u[1][g.idx(nx-1+l, j)] = -g.u[1][g.idx(nx-1+l, j)]
			}
		}
		for i := -ng; i < nx+ng; i++ {
			for l := 1; l <= ng; l++ {
				g.u[2][g.idx(i, -l)] = -g.u[2][g.idx(i, -l)]
				g.u[2][g.idx(i, ny-1+l)] = -g.u[2][g.idx(i, ny-1+l)]
			}
		}
	}
}

// prim converts one conserved state to primitive form with vacuum guards.
func prim(c [nvar]float64) (rho, vx, vy, p float64) {
	rho = c[0]
	if rho < 1e-12 {
		rho = 1e-12
	}
	vx = c[1] / rho
	vy = c[2] / rho
	p = (Gamma - 1) * (c[3] - 0.5*rho*(vx*vx+vy*vy))
	if p < 1e-12 {
		p = 1e-12
	}
	return
}

// minmod is the slope limiter used in reconstruction.
func minmod(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	if math.Abs(a) < math.Abs(b) {
		return a
	}
	return b
}

// hllFlux computes the HLL numerical flux for the x-split Riemann problem
// with left state l and right state r (conserved).
func hllFlux(l, r [nvar]float64) [nvar]float64 {
	rhoL, uL, vL, pL := prim(l)
	rhoR, uR, vR, pR := prim(r)
	cL := math.Sqrt(Gamma * pL / rhoL)
	cR := math.Sqrt(Gamma * pR / rhoR)
	sL := math.Min(uL-cL, uR-cR)
	sR := math.Max(uL+cL, uR+cR)
	fluxOf := func(rho, u, v, p float64, c [nvar]float64) [nvar]float64 {
		return [nvar]float64{
			rho * u,
			rho*u*u + p,
			rho * u * v,
			u * (c[3] + p),
		}
	}
	fL := fluxOf(rhoL, uL, vL, pL, l)
	fR := fluxOf(rhoR, uR, vR, pR, r)
	switch {
	case sL >= 0:
		return fL
	case sR <= 0:
		return fR
	default:
		var f [nvar]float64
		inv := 1 / (sR - sL)
		for v := 0; v < nvar; v++ {
			f[v] = (sR*fL[v] - sL*fR[v] + sL*sR*(r[v]-l[v])) * inv
		}
		return f
	}
}

// maxWaveSpeed scans the interior for the largest |u|+c and |v|+c.
func (g *Grid) maxWaveSpeed() (ax, ay float64) {
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			rho, vx, vy, p := g.Primitive(i, j)
			if rho <= 0 || p <= 0 {
				continue
			}
			c := math.Sqrt(Gamma * p / rho)
			if s := math.Abs(vx) + c; s > ax {
				ax = s
			}
			if s := math.Abs(vy) + c; s > ay {
				ay = s
			}
		}
	}
	return
}

// sweepX advances the x-split equations by dt with MUSCL reconstruction.
func (g *Grid) sweepX(dt float64) {
	g.fillGhosts()
	nx, ny := g.Nx, g.Ny
	lam := dt / g.Dx()
	// Fluxes at interfaces i-1/2 for i in 0..nx.
	flux := make([][nvar]float64, nx+1)
	var newU [nvar][]float64
	for v := 0; v < nvar; v++ {
		newU[v] = make([]float64, nx)
	}
	for j := 0; j < ny; j++ {
		for i := 0; i <= nx; i++ {
			// Left cell i-1, right cell i; reconstruct both sides.
			var l, r [nvar]float64
			for v := 0; v < nvar; v++ {
				um := g.u[v][g.idx(i-2, j)]
				u0 := g.u[v][g.idx(i-1, j)]
				up := g.u[v][g.idx(i, j)]
				upp := g.u[v][g.idx(i+1, j)]
				l[v] = u0 + 0.5*minmod(u0-um, up-u0)
				r[v] = up - 0.5*minmod(up-u0, upp-up)
			}
			flux[i] = hllFlux(l, r)
		}
		for i := 0; i < nx; i++ {
			for v := 0; v < nvar; v++ {
				newU[v][i] = g.u[v][g.idx(i, j)] - lam*(flux[i+1][v]-flux[i][v])
			}
		}
		for i := 0; i < nx; i++ {
			for v := 0; v < nvar; v++ {
				g.u[v][g.idx(i, j)] = newU[v][i]
			}
		}
	}
}

// sweepY advances the y-split equations by dt. It reuses the x-direction
// flux with velocity components swapped.
func (g *Grid) sweepY(dt float64) {
	g.fillGhosts()
	nx, ny := g.Nx, g.Ny
	lam := dt / g.Dy()
	flux := make([][nvar]float64, ny+1)
	var newU [nvar][]float64
	for v := 0; v < nvar; v++ {
		newU[v] = make([]float64, ny)
	}
	swap := func(c [nvar]float64) [nvar]float64 {
		return [nvar]float64{c[0], c[2], c[1], c[3]}
	}
	for i := 0; i < nx; i++ {
		for j := 0; j <= ny; j++ {
			var l, r [nvar]float64
			for v := 0; v < nvar; v++ {
				um := g.u[v][g.idx(i, j-2)]
				u0 := g.u[v][g.idx(i, j-1)]
				up := g.u[v][g.idx(i, j)]
				upp := g.u[v][g.idx(i, j+1)]
				l[v] = u0 + 0.5*minmod(u0-um, up-u0)
				r[v] = up - 0.5*minmod(up-u0, upp-up)
			}
			f := hllFlux(swap(l), swap(r))
			flux[j] = swap(f)
		}
		for j := 0; j < ny; j++ {
			for v := 0; v < nvar; v++ {
				newU[v][j] = g.u[v][g.idx(i, j)] - lam*(flux[j+1][v]-flux[j][v])
			}
		}
		for j := 0; j < ny; j++ {
			for v := 0; v < nvar; v++ {
				g.u[v][g.idx(i, j)] = newU[v][j]
			}
		}
	}
}

// Step advances the solution by one time step of at most dtMax, returning
// the dt actually taken. Strang splitting alternates sweep order by step
// parity for second-order accuracy.
func (g *Grid) Step(cfl, dtMax float64) (float64, error) {
	ax, ay := g.maxWaveSpeed()
	if ax == 0 && ay == 0 {
		return 0, fmt.Errorf("sim: zero wave speed; uninitialized grid?")
	}
	dt := cfl / (ax/g.Dx() + ay/g.Dy())
	if dtMax > 0 && dt > dtMax {
		dt = dtMax
	}
	if g.Steps%2 == 0 {
		g.sweepX(dt)
		g.sweepY(dt)
	} else {
		g.sweepY(dt)
		g.sweepX(dt)
	}
	g.Time += dt
	g.Steps++
	return dt, nil
}

// Advance runs Step until the simulation time reaches tEnd.
func (g *Grid) Advance(tEnd, cfl float64) error {
	const maxSteps = 200000
	for g.Time < tEnd {
		remaining := tEnd - g.Time
		if _, err := g.Step(cfl, remaining); err != nil {
			return err
		}
		if g.Steps > maxSteps {
			return fmt.Errorf("sim: exceeded %d steps before t=%g", maxSteps, tEnd)
		}
	}
	return nil
}
