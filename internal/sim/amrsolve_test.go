package sim

import (
	"math"
	"testing"

	"repro/internal/amr"
)

func gaussian(cx, cy, w float64) func(x, y, z float64) float64 {
	return func(x, y, z float64) float64 {
		dx, dy := x-cx, y-cy
		return math.Exp(-(dx*dx + dy*dy) / (2 * w * w))
	}
}

func newSolver(t *testing.T, ax, ay, nu float64) *AdvectionDiffusion {
	t.Helper()
	m, u, err := amr.BuildAdaptive(amr.BuildOptions{
		Dims: 2, BlockSize: 8, RootDims: [3]int{2, 2, 1},
		MaxDepth: 2, Threshold: 0.3,
	}, gaussian(0.35, 0.35, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewAdvectionDiffusion(m, u, ax, ay, nu)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func Test3DSolver(t *testing.T) {
	m, u, err := amr.BuildAdaptive(amr.BuildOptions{
		Dims: 3, BlockSize: 4, RootDims: [3]int{2, 2, 2},
		MaxDepth: 1, Threshold: 0.3,
	}, func(x, y, z float64) float64 {
		dx, dy, dz := x-0.4, y-0.4, z-0.4
		return math.Exp(-(dx*dx + dy*dy + dz*dz) / (2 * 0.06 * 0.06))
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewAdvectionDiffusion(m, u, 0, 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	m0 := s.TotalMass()
	peak0 := u.MaxAbs()
	for i := 0; i < 20; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// 3-D diffusion decays the peak; mass conservation is approximate on a
	// multi-level hierarchy (piecewise-constant ghosts), so allow slack.
	if peak := u.MaxAbs(); peak >= peak0 {
		t.Fatalf("3-D diffusion did not decay the peak: %v -> %v", peak0, peak)
	}
	if rel := math.Abs(s.TotalMass()-m0) / m0; rel > 0.05 {
		t.Fatalf("3-D mass drifted by %v", rel)
	}
	// Advection in z moves things without blowing up.
	s.Az = 1
	s.Nu = 0
	for i := 0; i < 20; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range m.Leaves() {
		for _, v := range u.Data(id) {
			if math.IsNaN(v) || math.Abs(v) > 10 {
				t.Fatalf("3-D advection unstable: %v", v)
			}
		}
	}
}

func TestZeroDynamicsErrors(t *testing.T) {
	s := newSolver(t, 0, 0, 0)
	if _, err := s.Step(); err == nil {
		t.Fatal("zero-dynamics step must error")
	}
}

func TestMassConservedUnderDiffusion(t *testing.T) {
	// Pure diffusion on a periodic domain conserves total mass; on a
	// uniform (single-level) grid the 5-point stencil conserves exactly.
	m, err := amr.NewMesh(2, 8, [3]int{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	u := amr.NewField(m, "u")
	u.FillFunc(gaussian(0.5, 0.5, 0.08))
	s, err := NewAdvectionDiffusion(m, u, 0, 0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	m0 := s.TotalMass()
	for i := 0; i < 50; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if rel := math.Abs(s.TotalMass()-m0) / m0; rel > 1e-12 {
		t.Fatalf("mass drifted by %v", rel)
	}
}

func TestDiffusionDecaysPeak(t *testing.T) {
	s := newSolver(t, 0, 0, 0.005)
	peak0 := s.U.MaxAbs()
	for i := 0; i < 100; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if peak := s.U.MaxAbs(); peak >= peak0 {
		t.Fatalf("diffusion did not decay the peak: %v -> %v", peak0, peak)
	}
	// Positivity: explicit diffusion within the stability bound must not
	// produce (significant) undershoot.
	for _, id := range s.Mesh.Leaves() {
		for _, v := range s.U.Data(id) {
			if v < -1e-9 {
				t.Fatalf("undershoot %v", v)
			}
		}
	}
}

func TestAdvectionMovesBlob(t *testing.T) {
	s := newSolver(t, 1, 1, 0)
	// Centre of mass before.
	com := func() (float64, float64) {
		m := s.Mesh
		bs := m.BlockSize()
		var sx, sy, tot float64
		for _, id := range m.Leaves() {
			b := m.Block(id)
			h := m.CellExtent(b.Level, 0)
			area := h * h
			for j := 0; j < bs; j++ {
				for i := 0; i < bs; i++ {
					v := s.U.At(id, i, j, 0) * area
					p := m.CellCenter(id, i, j, 0)
					sx += v * p[0]
					sy += v * p[1]
					tot += v
				}
			}
		}
		return sx / tot, sy / tot
	}
	x0, y0 := com()
	if err := s.Run(0.1, 0, 0, 2); err != nil {
		t.Fatal(err)
	}
	x1, y1 := com()
	// Advection at (1,1) for t=0.1 moves the blob ~0.1 diagonally
	// (upwinding smears, so allow slack).
	if x1-x0 < 0.05 || y1-y0 < 0.05 {
		t.Fatalf("blob barely moved: (%.3f,%.3f) -> (%.3f,%.3f)", x0, y0, x1, y1)
	}
}

func TestRegridFollowsBlob(t *testing.T) {
	s := newSolver(t, 1, 1, 0)
	nBefore := s.Mesh.NumBlocks()
	if err := s.Run(0.15, 5, 0.3, 3); err != nil {
		t.Fatal(err)
	}
	if s.Mesh.NumBlocks() <= nBefore {
		t.Fatal("regridding created no blocks while the blob moved")
	}
	// The moved blob's region must now be refined: find the finest block
	// containing the blob peak.
	m := s.Mesh
	bs := m.BlockSize()
	var peakLevel int
	peak := -1.0
	for _, id := range m.Leaves() {
		b := m.Block(id)
		for j := 0; j < bs; j++ {
			for i := 0; i < bs; i++ {
				if v := s.U.At(id, i, j, 0); v > peak {
					peak = v
					peakLevel = b.Level
				}
			}
		}
	}
	if peakLevel < 2 {
		t.Fatalf("blob peak sits on level %d; expected refined coverage", peakLevel)
	}
}

func TestSampleCoarseFallback(t *testing.T) {
	// A leaf at a coarse/fine boundary must read ghosts from the coarser
	// neighbour without panicking, and the sample must equal the coarse
	// block's cell value.
	m, err := amr.NewMesh(2, 4, [3]int{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Refine only block (0,0): block (1,0) stays coarse.
	if err := m.Refine(m.Roots()[0]); err != nil {
		t.Fatal(err)
	}
	u := amr.NewField(m, "u")
	u.FillFunc(func(x, y, z float64) float64 { return x })
	s, err := NewAdvectionDiffusion(m, u, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Level-1 cell just right of the fine region (gi=8 at level 1) has no
	// level-1 block; sample must fall back to level 0 (coarse cell gi=4).
	got := s.sample(1, 8, 0, 0)
	coarse, _ := m.Lookup(0, [3]int{1, 0, 0})
	want := u.At(coarse, 0, 0, 0)
	if got != want {
		t.Fatalf("coarse fallback sample = %v, want %v", got, want)
	}
	// Periodic wrap: sampling at -1 wraps to the right edge.
	gotWrap := s.sample(0, -1, 0, 0)
	wantWrap := u.At(coarse, 3, 0, 0)
	if gotWrap != wantWrap {
		t.Fatalf("periodic sample = %v, want %v", gotWrap, wantWrap)
	}
}

func TestStepCountsAdvance(t *testing.T) {
	s := newSolver(t, 0.5, 0, 0.001)
	dt, err := s.Step()
	if err != nil {
		t.Fatal(err)
	}
	if dt <= 0 || s.Time != dt || s.Steps != 1 {
		t.Fatalf("dt=%v time=%v steps=%d", dt, s.Time, s.Steps)
	}
}
