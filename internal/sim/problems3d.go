package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/amr"
)

// Problem3D is a 3-D test problem.
type Problem3D struct {
	Name             string
	About            string
	BC               Boundary
	TEnd             float64
	CFL              float64
	InitialCondition func(x, y, z float64) (rho, vx, vy, vz, p float64)
}

var problems3d = map[string]Problem3D{
	"sod3d": {
		Name:  "sod3d",
		About: "Sod shock tube along x in 3-D",
		BC:    Outflow,
		TEnd:  0.2,
		CFL:   0.4,
		InitialCondition: func(x, y, z float64) (float64, float64, float64, float64, float64) {
			if x < 0.5 {
				return 1, 0, 0, 0, 1
			}
			return 0.125, 0, 0, 0, 0.1
		},
	},
	"sedov3d": {
		Name:  "sedov3d",
		About: "Sedov point blast in 3-D: spherical shock from the centre",
		BC:    Outflow,
		TEnd:  0.05,
		CFL:   0.3,
		InitialCondition: func(x, y, z float64) (float64, float64, float64, float64, float64) {
			r := math.Sqrt((x-0.5)*(x-0.5) + (y-0.5)*(y-0.5) + (z-0.5)*(z-0.5))
			if r < 0.04 {
				return 1, 0, 0, 0, 500
			}
			return 1, 0, 0, 0, 1e-2
		},
	},
}

// Problems3D lists the 3-D problem names, sorted.
func Problems3D() []string {
	names := make([]string, 0, len(problems3d))
	for n := range problems3d {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup3D returns the named 3-D problem.
func Lookup3D(name string) (Problem3D, error) {
	p, ok := problems3d[name]
	if !ok {
		return Problem3D{}, fmt.Errorf("sim: unknown 3-D problem %q (have %v)", name, Problems3D())
	}
	return p, nil
}

// Run3D initializes and advances a 3-D problem on an n³ grid.
func Run3D(p Problem3D, n int, tScale float64) (*Grid3, error) {
	g := NewGrid3(n, n, n, p.BC)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				x, y, z := g.CellCenter(i, j, k)
				rho, vx, vy, vz, pr := p.InitialCondition(x, y, z)
				g.SetPrimitive(i, j, k, rho, vx, vy, vz, pr)
			}
		}
	}
	if tScale <= 0 {
		tScale = 1
	}
	if err := g.Advance(p.TEnd*tScale, p.CFL); err != nil {
		return nil, err
	}
	return g, nil
}

// QuantityNames3D lists the quantities of a 3-D checkpoint.
func QuantityNames3D() []string { return []string{"dens", "pres", "velx", "vely", "velz"} }

// GenerateCheckpoint3D runs a 3-D problem and projects it onto a 3-D AMR
// hierarchy (density drives refinement), yielding a multi-quantity 3-D
// checkpoint like the 3-D FLASH datasets in the paper's evaluation.
func GenerateCheckpoint3D(problem string, resolution int, opt Analytic3DOptions) (*Checkpoint, error) {
	return GenerateCheckpoint3DAt(problem, resolution, 1, opt)
}

// GenerateCheckpoint3DAt is GenerateCheckpoint3D stopped at tScale times the
// problem's end time. Successive tScale values yield the temporally
// correlated snapshot sequences the temporal delta encoder exploits; each
// snapshot rebuilds its own hierarchy, so refinement tracks the evolving
// solution like a real AMR run.
func GenerateCheckpoint3DAt(problem string, resolution int, tScale float64, opt Analytic3DOptions) (*Checkpoint, error) {
	p, err := Lookup3D(problem)
	if err != nil {
		return nil, err
	}
	if resolution <= 0 {
		resolution = 48
	}
	if opt.BlockSize == 0 {
		opt = DefaultAnalytic3DOptions()
	}
	g, err := Run3D(p, resolution, tScale)
	if err != nil {
		return nil, fmt.Errorf("sim: running %s: %w", problem, err)
	}
	mesh, first, err := amr.BuildAdaptive(amr.BuildOptions{
		Dims:      3,
		BlockSize: opt.BlockSize,
		RootDims:  opt.RootDims,
		MaxDepth:  opt.MaxDepth,
		Threshold: opt.Threshold,
	}, g.Sampler3("dens"))
	if err != nil {
		return nil, fmt.Errorf("sim: building 3-D hierarchy: %w", err)
	}
	first.Name = "dens"
	ck := &Checkpoint{Problem: problem, Mesh: mesh, Fields: []*amr.Field{first}}
	for _, q := range QuantityNames3D()[1:] {
		ck.Fields = append(ck.Fields, amr.SampleField(mesh, q, g.Sampler3(q)))
	}
	return ck, nil
}
