package sim

import (
	"fmt"
	"math"
	"sort"
)

// Problem defines one of the standard test problems used to produce
// datasets: an initial condition, boundary condition, and end time.
type Problem struct {
	Name             string
	About            string
	BC               Boundary
	TEnd             float64
	CFL              float64
	InitialCondition func(x, y float64) (rho, vx, vy, p float64)
}

// problems is the registry of built-in test problems. They mirror the FLASH
// verification suite the zMesh evaluation draws its datasets from.
var problems = map[string]Problem{
	"sod": {
		Name:  "sod",
		About: "Sod shock tube along x: shock, contact and rarefaction",
		BC:    Outflow,
		TEnd:  0.2,
		CFL:   0.4,
		InitialCondition: func(x, y float64) (float64, float64, float64, float64) {
			if x < 0.5 {
				return 1, 0, 0, 1
			}
			return 0.125, 0, 0, 0.1
		},
	},
	"sedov": {
		Name:  "sedov",
		About: "Sedov point blast: cylindrical shock expanding from the centre",
		BC:    Outflow,
		TEnd:  0.05,
		CFL:   0.3,
		InitialCondition: func(x, y float64) (float64, float64, float64, float64) {
			r := math.Hypot(x-0.5, y-0.5)
			if r < 0.02 {
				return 1, 0, 0, 1000
			}
			return 1, 0, 0, 1e-2
		},
	},
	"blast": {
		Name:  "blast",
		About: "two interacting blast waves of unequal strength",
		BC:    Reflect,
		TEnd:  0.04,
		CFL:   0.3,
		InitialCondition: func(x, y float64) (float64, float64, float64, float64) {
			r1 := math.Hypot(x-0.3, y-0.4)
			r2 := math.Hypot(x-0.7, y-0.6)
			switch {
			case r1 < 0.05:
				return 1, 0, 0, 500
			case r2 < 0.05:
				return 1, 0, 0, 200
			default:
				return 1, 0, 0, 1e-2
			}
		},
	},
	"kh": {
		Name:  "kh",
		About: "Kelvin-Helmholtz shear instability with seeded perturbation",
		BC:    Periodic,
		TEnd:  0.8,
		CFL:   0.4,
		InitialCondition: func(x, y float64) (float64, float64, float64, float64) {
			// Dense fast stripe in the middle, light slow fluid outside,
			// smooth tanh interfaces plus a sinusoidal transverse seed.
			w := 0.02
			s1 := math.Tanh((y - 0.25) / w)
			s2 := math.Tanh((y - 0.75) / w)
			band := 0.5 * (s1 - s2) // 1 inside stripe, 0 outside
			rho := 1 + band
			vx := -0.5 + band // -0.5 outside, +0.5 inside
			vy := 0.05 * math.Sin(4*math.Pi*x) *
				(math.Exp(-(y-0.25)*(y-0.25)/(2*w*w)) + math.Exp(-(y-0.75)*(y-0.75)/(2*w*w)))
			return rho, vx, vy, 2.5
		},
	},
}

// Problems lists the registered problem names in sorted order.
func Problems() []string {
	names := make([]string, 0, len(problems))
	for n := range problems {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the named problem.
func Lookup(name string) (Problem, error) {
	p, ok := problems[name]
	if !ok {
		return Problem{}, fmt.Errorf("sim: unknown problem %q (have %v)", name, Problems())
	}
	return p, nil
}

// Run initializes a grid with the problem's initial condition and advances
// it to the problem's end time (scaled by tScale; 1 means the full run).
func Run(p Problem, nx, ny int, tScale float64) (*Grid, error) {
	g := NewGrid(nx, ny, p.BC)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			x, y := g.CellCenter(i, j)
			rho, vx, vy, pr := p.InitialCondition(x, y)
			g.SetPrimitive(i, j, rho, vx, vy, pr)
		}
	}
	if tScale <= 0 {
		tScale = 1
	}
	if err := g.Advance(p.TEnd*tScale, p.CFL); err != nil {
		return nil, err
	}
	return g, nil
}

// QuantityNames lists the primitive quantities a checkpoint carries, in the
// order Quantities returns them.
func QuantityNames() []string { return []string{"dens", "pres", "velx", "vely", "ener"} }

// Quantity evaluates one named primitive quantity at interior cell (i,j).
func (g *Grid) Quantity(name string, i, j int) float64 {
	rho, vx, vy, p := g.Primitive(i, j)
	switch name {
	case "dens":
		return rho
	case "pres":
		return p
	case "velx":
		return vx
	case "vely":
		return vy
	case "ener":
		return p/((Gamma-1)*rho) + 0.5*(vx*vx+vy*vy) // specific total energy
	default:
		panic(fmt.Sprintf("sim: unknown quantity %q", name))
	}
}

// Sampler returns a bilinear interpolator over the named quantity, defined
// on the unit square, suitable for amr.BuildAdaptive / amr.SampleField.
func (g *Grid) Sampler(name string) func(x, y, z float64) float64 {
	nx, ny := g.Nx, g.Ny
	vals := make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			vals[j*nx+i] = g.Quantity(name, i, j)
		}
	}
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	return func(x, y, z float64) float64 {
		// Locate x,y in cell-centre coordinates.
		fx := x*float64(nx) - 0.5
		fy := y*float64(ny) - 0.5
		i0 := clamp(int(math.Floor(fx)), 0, nx-1)
		j0 := clamp(int(math.Floor(fy)), 0, ny-1)
		i1 := clamp(i0+1, 0, nx-1)
		j1 := clamp(j0+1, 0, ny-1)
		tx := fx - math.Floor(fx)
		ty := fy - math.Floor(fy)
		if i1 == i0 {
			tx = 0
		}
		if j1 == j0 {
			ty = 0
		}
		v00 := vals[j0*nx+i0]
		v10 := vals[j0*nx+i1]
		v01 := vals[j1*nx+i0]
		v11 := vals[j1*nx+i1]
		return (1-tx)*(1-ty)*v00 + tx*(1-ty)*v10 + (1-tx)*ty*v01 + tx*ty*v11
	}
}
