package sim

import (
	"fmt"

	"repro/internal/amr"
)

// Checkpoint is an AMR snapshot of a simulation: a mesh plus one field per
// physical quantity, mirroring what an AMR application writes to disk.
type Checkpoint struct {
	Problem string
	Mesh    *amr.Mesh
	Fields  []*amr.Field
}

// Field returns the named quantity.
func (c *Checkpoint) Field(name string) (*amr.Field, bool) {
	for _, f := range c.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// CheckpointOptions configures GenerateCheckpoint.
type CheckpointOptions struct {
	// Resolution is the uniform solver grid (Resolution × Resolution). It
	// should be at least BlockSize*RootDims*2^MaxDepth to give the finest
	// AMR level real structure to sample.
	Resolution int
	// TScale scales the problem's end time (1 = full run, 0.5 = half).
	TScale float64
	// BlockSize, RootDims, MaxDepth, Threshold configure the AMR projection.
	BlockSize int
	RootDims  [3]int
	MaxDepth  int
	Threshold float64
	// Quantities to sample; nil means all of QuantityNames().
	Quantities []string
}

// DefaultCheckpointOptions returns the configuration used by the evaluation
// harness: a 256² solve projected onto an 8²-cell-block hierarchy with up to
// four refinement levels (root 2×2 blocks → finest level matches the solve).
func DefaultCheckpointOptions() CheckpointOptions {
	return CheckpointOptions{
		Resolution: 256,
		TScale:     1,
		BlockSize:  8,
		RootDims:   [3]int{2, 2, 1},
		MaxDepth:   4,
		Threshold:  0.35,
	}
}

// GenerateCheckpoint runs the named problem to completion on a uniform grid
// and projects the solution onto an AMR hierarchy adapted to the density
// field (FLASH refines on density/pressure gradients; density drives the
// topology here and every other quantity is sampled on the same mesh, as in
// a real checkpoint where all quantities share the grid).
func GenerateCheckpoint(problem string, opt CheckpointOptions) (*Checkpoint, error) {
	p, err := Lookup(problem)
	if err != nil {
		return nil, err
	}
	if opt.Resolution <= 0 {
		opt.Resolution = 256
	}
	g, err := Run(p, opt.Resolution, opt.Resolution, opt.TScale)
	if err != nil {
		return nil, fmt.Errorf("sim: running %s: %w", problem, err)
	}
	return ProjectCheckpoint(g, problem, opt)
}

// ProjectCheckpoint adapts an AMR hierarchy to an already-computed solution
// and samples the requested quantities onto it.
func ProjectCheckpoint(g *Grid, problem string, opt CheckpointOptions) (*Checkpoint, error) {
	quantities := opt.Quantities
	if quantities == nil {
		quantities = QuantityNames()
	}
	if len(quantities) == 0 {
		return nil, fmt.Errorf("sim: no quantities requested")
	}
	mesh, first, err := amr.BuildAdaptive(amr.BuildOptions{
		Dims:      2,
		BlockSize: opt.BlockSize,
		RootDims:  opt.RootDims,
		MaxDepth:  opt.MaxDepth,
		Threshold: opt.Threshold,
	}, g.Sampler(quantities[0]))
	if err != nil {
		return nil, fmt.Errorf("sim: building AMR hierarchy: %w", err)
	}
	first.Name = quantities[0]
	ck := &Checkpoint{Problem: problem, Mesh: mesh, Fields: []*amr.Field{first}}
	for _, q := range quantities[1:] {
		ck.Fields = append(ck.Fields, amr.SampleField(mesh, q, g.Sampler(q)))
	}
	return ck, nil
}
