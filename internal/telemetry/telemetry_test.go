package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestBucketBoundaries pins the log2 bucketing: each power-of-two edge must
// land in the bucket whose half-open range [2^(i-1), 2^i) contains it.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1025, 11},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// The bucket bounds must tile: High(i) == Low(i+1) for interior buckets.
	for i := 1; i < 63; i++ {
		if BucketHigh(i) != BucketLow(i+1) {
			t.Errorf("bucket %d: high %d != next low %d", i, BucketHigh(i), BucketLow(i+1))
		}
		lo, hi := BucketLow(i), BucketHigh(i)
		if got := bucketIndex(lo); got != i {
			t.Errorf("low edge %d fell in bucket %d, want %d", lo, got, i)
		}
		if got := bucketIndex(hi - 1); got != i {
			t.Errorf("high edge %d fell in bucket %d, want %d", hi-1, got, i)
		}
		if got := bucketIndex(hi); got != i+1 {
			t.Errorf("exclusive high %d fell in bucket %d, want %d", hi, got, i+1)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, -5} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 101 {
		t.Fatalf("sum = %d, want 101", s.Sum)
	}
	if s.Min != -5 || s.Max != 100 {
		t.Fatalf("min/max = %d/%d, want -5/100", s.Min, s.Max)
	}
	if want := 101.0 / 5; s.Mean != want {
		t.Fatalf("mean = %g, want %g", s.Mean, want)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
		if b.Count <= 0 {
			t.Errorf("empty bucket %+v in snapshot", b)
		}
	}
	if total != 5 {
		t.Fatalf("bucket counts sum to %d, want 5", total)
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	// 100 observations of 10 and 100 of 1000: the median straddles the two
	// bucket populations, p99 must sit in the upper bucket.
	for i := 0; i < 100; i++ {
		h.Observe(10)
		h.Observe(1000)
	}
	s := h.snapshot()
	if q := s.Quantile(0.25); q < 10 || q > 16 {
		t.Errorf("p25 = %g, want within the [10, 16) bucket", q)
	}
	if q := s.Quantile(0.99); q < 512 || q > 1001 {
		t.Errorf("p99 = %g, want within the [512, 1001) clamped bucket", q)
	}
	if q := s.Quantile(0); q < 10 {
		t.Errorf("p0 = %g, want >= observed min", q)
	}
	if q := s.Quantile(1); q > 1001 {
		t.Errorf("p100 = %g, want <= observed max+1", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
}

func TestObserveMilli(t *testing.T) {
	var h Histogram
	h.ObserveMilli(3.7)   // 3700
	h.ObserveMilli(0.001) // 1
	s := h.snapshot()
	if s.Min != 1 || s.Max != 3700 {
		t.Fatalf("milli min/max = %d/%d, want 1/3700", s.Min, s.Max)
	}
}

func TestRegistrySharing(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c2 := r.Counter("x")
	if c1 != c2 {
		t.Fatal("same name resolved to distinct counters")
	}
	c1.Add(2)
	c2.Inc()
	if got := r.Counter("x").Load(); got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
	// Separate namespaces: a histogram and timer under the same name are
	// distinct metrics.
	r.Histogram("x").Observe(1)
	r.Timer("x").Observe(time.Millisecond)
	s := r.Snapshot()
	if s.Counters["x"] != 3 || s.Histograms["x"].Count != 1 || s.Timers["x"].Count != 1 {
		t.Fatalf("namespace collision in snapshot: %+v", s)
	}
	if names := s.Names(); len(names) != 1 || names[0] != "x" {
		t.Fatalf("names = %v, want [x]", names)
	}
}

// TestNilSafety asserts the uninstrumented-path contract: everything works
// on nil receivers and does nothing.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	h := r.Histogram("b")
	tm := r.Timer("c")
	if c != nil || h != nil || tm != nil {
		t.Fatal("nil registry returned non-nil metrics")
	}
	c.Add(1)
	c.Inc()
	if c.Load() != 0 {
		t.Fatal("nil counter loaded non-zero")
	}
	h.Observe(1)
	h.ObserveMilli(1)
	tm.Observe(time.Second)
	tm.Since(time.Now())
	ran := false
	tm.Time(func() { ran = true })
	if !ran {
		t.Fatal("nil timer did not run fn")
	}
	if tm.TotalNs() != 0 {
		t.Fatal("nil timer reports time")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Histograms)+len(s.Timers) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames").Add(7)
	r.Timer("stage").Observe(1500 * time.Nanosecond)
	r.Histogram("ratio_milli").ObserveMilli(4.2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v\n%s", err, buf.String())
	}
	if s.Counters["frames"] != 7 {
		t.Fatalf("frames = %d, want 7", s.Counters["frames"])
	}
	if s.Timers["stage"].TotalNs != 1500 {
		t.Fatalf("stage total = %d, want 1500", s.Timers["stage"].TotalNs)
	}
	if s.Histograms["ratio_milli"].Max != 4200 {
		t.Fatalf("ratio max = %d, want 4200", s.Histograms["ratio_milli"].Max)
	}
	if got := s.StageTotals()["stage"]; got != 1500 {
		t.Fatalf("StageTotals = %d, want 1500", got)
	}
}

// TestMetricAllocs pins the hot-path allocation contract: once a metric
// exists, observing it allocates nothing, and the nil (uninstrumented)
// variants allocate nothing either.
func TestMetricAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	tm := r.Timer("t")
	h.Observe(1) // warm the once-guarded min/max init
	if n := testing.AllocsPerRun(100, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %v", n)
	}
	if n := testing.AllocsPerRun(100, func() { h.Observe(42) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v", n)
	}
	if n := testing.AllocsPerRun(100, func() { tm.Observe(time.Microsecond) }); n != 0 {
		t.Errorf("Timer.Observe allocates %v", n)
	}
	var nc *Counter
	var nh *Histogram
	var nt *Timer
	if n := testing.AllocsPerRun(100, func() {
		nc.Add(1)
		nh.Observe(1)
		nt.Observe(1)
	}); n != 0 {
		t.Errorf("nil metric ops allocate %v", n)
	}
	// Repeated lookups of an existing metric must not allocate (they are
	// not on the hot path, but Instrument-time resolution should stay cheap).
	if n := testing.AllocsPerRun(100, func() { r.Counter("c").Add(1) }); n != 0 {
		t.Errorf("Counter lookup allocates %v", n)
	}
}
