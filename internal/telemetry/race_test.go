package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRegistryHammer drives one Registry from 16 goroutines that race
// metric creation, observation and snapshotting. Run under -race this
// asserts the concurrency contract; the final counts assert no lost
// updates.
func TestRegistryHammer(t *testing.T) {
	const (
		goroutines = 16
		iters      = 2000
	)
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the goroutines share metric names, half use private ones,
			// so both the fast read-lock path and the create path race.
			private := fmt.Sprintf("private.%d", g)
			for i := 0; i < iters; i++ {
				r.Counter("shared.count").Inc()
				r.Counter(private).Inc()
				r.Histogram("shared.hist").Observe(int64(i % 1000))
				r.Timer("shared.timer").Observe(time.Duration(i) * time.Nanosecond)
				if i%256 == 0 {
					s := r.Snapshot()
					if s.Counters["shared.count"] < 0 {
						t.Error("negative counter in snapshot")
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["shared.count"]; got != goroutines*iters {
		t.Fatalf("shared counter = %d, want %d (lost updates)", got, goroutines*iters)
	}
	for g := 0; g < goroutines; g++ {
		name := fmt.Sprintf("private.%d", g)
		if got := s.Counters[name]; got != iters {
			t.Fatalf("%s = %d, want %d", name, got, iters)
		}
	}
	if got := s.Histograms["shared.hist"].Count; got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
	if got := s.Timers["shared.timer"].Count; got != goroutines*iters {
		t.Fatalf("timer count = %d, want %d", got, goroutines*iters)
	}
	// Bucket totals must equal the observation count: no observation may be
	// dropped or double-bucketed under contention.
	var bucketTotal int64
	for _, b := range s.Histograms["shared.hist"].Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != goroutines*iters {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, goroutines*iters)
	}
}
