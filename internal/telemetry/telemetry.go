// Package telemetry is the zero-dependency metrics substrate of the zMesh
// pipeline: atomic counters, streaming histograms with fixed log-spaced
// buckets, and per-stage wall-time timers, collected in a Registry that can
// be snapshotted to JSON or published through expvar.
//
// Design constraints (see DESIGN.md "Telemetry"):
//
//   - Zero dependencies beyond the standard library, so every internal
//     package (core, compress, the public API) may import it freely.
//   - Concurrency-safe without locks on the hot path: all mutation is a
//     handful of atomic operations. Metric *lookup* takes a read lock, so
//     callers resolve their metrics once (at Instrument time) and hold the
//     pointers.
//   - Nil-tolerant: every method works on a nil Registry, Counter,
//     Histogram or Timer and does nothing. Uninstrumented code paths carry
//     nil metric pointers and pay only a pointer comparison — no
//     allocations, no atomics, no time.Now calls.
//
// Histograms bucket by order of magnitude: bucket i holds values v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Non-positive values land in
// bucket 0. The bucketing is branch-free and fixed at compile time, so
// Observe is a few atomic adds regardless of the value distribution.
package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically-increasing (or freely adjusted) atomic count.
// The zero value is ready to use. Methods on a nil *Counter are no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count (0 for a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// numBuckets covers the full non-negative int64 range: bucket 0 for v <= 0,
// buckets 1..63 for bits.Len64(v) = 1..63, bucket 64 overflow.
const numBuckets = 65

// Histogram is a streaming histogram over int64 observations with fixed
// log2-spaced buckets plus exact count/sum/min/max. The zero value is ready
// to use. Methods on a nil *Histogram are no-ops. All methods are safe for
// concurrent use; a snapshot taken under concurrent writes is internally
// consistent per field but the fields may lag each other by in-flight
// observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid iff count > 0
	max     atomic.Int64 // valid iff count > 0
	once    sync.Once    // initializes min/max sentinels
	buckets [numBuckets]atomic.Int64
}

func (h *Histogram) init() {
	h.once.Do(func() {
		h.min.Store(math.MaxInt64)
		h.max.Store(math.MinInt64)
	})
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLow returns the inclusive lower bound of bucket i (0 for the
// underflow bucket).
func BucketLow(i int) int64 {
	if i <= 0 {
		return math.MinInt64
	}
	return 1 << (i - 1)
}

// BucketHigh returns the exclusive upper bound of bucket i.
func BucketHigh(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 64 {
		return math.MaxInt64
	}
	return 1 << i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.init()
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveMilli records a float64 in fixed-point thousandths — the
// convention used for dimensionless quantities like compression ratios, so
// the log-spaced integer buckets resolve the [0.001, 1000] range.
func (h *Histogram) ObserveMilli(v float64) {
	if h == nil {
		return
	}
	h.Observe(int64(math.Round(v * 1000)))
}

// Timer accumulates wall-time durations as a nanosecond histogram. The zero
// value is ready to use; methods on a nil *Timer are no-ops.
type Timer struct {
	h Histogram
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.h.Observe(int64(d))
}

// Since records the duration elapsed since t0. It is the usual call-site
// idiom: t0 := time.Now(); ...work...; timer.Since(t0).
func (t *Timer) Since(t0 time.Time) {
	if t == nil {
		return
	}
	t.h.Observe(int64(time.Since(t0)))
}

// Time runs fn and records its duration.
func (t *Timer) Time(fn func()) {
	if t == nil {
		fn()
		return
	}
	t0 := time.Now()
	fn()
	t.h.Observe(int64(time.Since(t0)))
}

// TotalNs returns the accumulated nanoseconds (0 for a nil timer).
func (t *Timer) TotalNs() int64 {
	if t == nil {
		return 0
	}
	return t.h.sum.Load()
}

// Registry is a named collection of metrics. Metrics are created on first
// lookup and live for the registry's lifetime; lookups for the same name
// return the same metric, so concurrent producers share one instance.
// Counters, histograms and timers occupy separate namespaces.
//
// A nil *Registry is valid everywhere and returns nil metrics, which makes
// the uninstrumented path a pure nil-check.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	timers   map[string]*Timer
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = new(Counter)
	r.counters[name] = c
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = new(Histogram)
	r.hists[name] = h
	return h
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	t, ok := r.timers[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok = r.timers[name]; ok {
		return t
	}
	t = new(Timer)
	r.timers[name] = t
	return t
}

// Bucket is one non-empty histogram bucket in a snapshot. Lo is inclusive,
// Hi exclusive.
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts by
// linear interpolation within the containing bucket, clamped to the
// observed min/max. It returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for _, b := range s.Buckets {
		if seen+float64(b.Count) >= rank {
			lo, hi := float64(b.Lo), float64(b.Hi)
			if lo < float64(s.Min) {
				lo = float64(s.Min)
			}
			if hi > float64(s.Max)+1 {
				hi = float64(s.Max) + 1
			}
			if hi <= lo {
				return lo
			}
			frac := (rank - seen) / float64(b.Count)
			return lo + frac*(hi-lo)
		}
		seen += float64(b.Count)
	}
	return float64(s.Max)
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			lo := BucketLow(i)
			if s.Count > 0 && lo < s.Min {
				lo = s.Min
			}
			s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: BucketHigh(i), Count: n})
		}
	}
	return s
}

// TimerSnapshot is a point-in-time copy of a timer (all values in
// nanoseconds).
type TimerSnapshot struct {
	Count   int64    `json:"count"`
	TotalNs int64    `json:"total_ns"`
	MinNs   int64    `json:"min_ns"`
	MaxNs   int64    `json:"max_ns"`
	MeanNs  float64  `json:"mean_ns"`
	P50Ns   float64  `json:"p50_ns"`
	P99Ns   float64  `json:"p99_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a whole registry, suitable for JSON
// serialization (this is also what the expvar integration publishes).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Timers     map[string]TimerSnapshot     `json:"timers,omitempty"`
}

// Snapshot copies the registry's current state. Safe to call while
// producers are writing; the result is a consistent-enough view for
// reporting (each metric is read atomically, metrics may lag each other).
// A nil registry yields a zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Load()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	if len(r.timers) > 0 {
		s.Timers = make(map[string]TimerSnapshot, len(r.timers))
		for name, t := range r.timers {
			hs := t.h.snapshot()
			s.Timers[name] = TimerSnapshot{
				Count:   hs.Count,
				TotalNs: hs.Sum,
				MinNs:   hs.Min,
				MaxNs:   hs.Max,
				MeanNs:  hs.Mean,
				P50Ns:   hs.Quantile(0.5),
				P99Ns:   hs.Quantile(0.99),
				Buckets: hs.Buckets,
			}
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// StageTotals flattens the snapshot's timers into a name → total-ns map,
// the shape run reports embed per configuration.
func (s Snapshot) StageTotals() map[string]int64 {
	if len(s.Timers) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s.Timers))
	for name, t := range s.Timers {
		out[name] = t.TotalNs
	}
	return out
}

// Names returns the sorted union of metric names, for stable iteration in
// reports and tests.
func (s Snapshot) Names() []string {
	seen := make(map[string]bool)
	for n := range s.Counters {
		seen[n] = true
	}
	for n := range s.Histograms {
		seen[n] = true
	}
	for n := range s.Timers {
		seen[n] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
