package telemetry

import (
	"expvar"
	"sync"
)

var (
	publishMu  sync.Mutex
	publishSet = make(map[string]*publishedRegistry)
)

// publishedRegistry is the swappable indirection behind one expvar name:
// expvar.Publish panics on duplicate names, so repeated Publish calls for
// the same name retarget the existing expvar.Func instead.
type publishedRegistry struct {
	mu  sync.RWMutex
	reg *Registry
}

func (p *publishedRegistry) get() *Registry {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.reg
}

// Publish exposes the registry's live snapshot as the named expvar (e.g.
// under /debug/vars when net/http/pprof or expvar handlers are mounted).
// Publishing a second registry under the same name replaces the first;
// publishing nil detaches the name (it then reports an empty snapshot).
func Publish(name string, r *Registry) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if p, ok := publishSet[name]; ok {
		p.mu.Lock()
		p.reg = r
		p.mu.Unlock()
		return
	}
	p := &publishedRegistry{reg: r}
	publishSet[name] = p
	expvar.Publish(name, expvar.Func(func() any {
		return p.get().Snapshot()
	}))
}
