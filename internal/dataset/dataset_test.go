package dataset

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/amr"
)

func testCheckpoint(t *testing.T) (*CheckpointFile, *amr.Mesh) {
	t.Helper()
	m, f, err := amr.BuildAdaptive(amr.BuildOptions{
		Dims: 2, BlockSize: 8, RootDims: [3]int{2, 2, 1},
		MaxDepth: 2, Threshold: 0.4,
	}, func(x, y, z float64) float64 { return math.Tanh((x - 0.5) / 0.05) })
	if err != nil {
		t.Fatal(err)
	}
	f.Name = "dens"
	g := amr.SampleField(m, "pres", func(x, y, z float64) float64 { return x * y })
	return FromFields("test", m, []*amr.Field{f, g}), m
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck, m := testCheckpoint(t)
	path := filepath.Join(t.TempDir(), "a.ckpt")
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Problem != "test" || len(got.Fields) != 2 {
		t.Fatalf("loaded %q with %d fields", got.Problem, len(got.Fields))
	}
	m2, err := got.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	if !amr.SameTopology(m, m2) {
		t.Fatal("topology mismatch after round trip")
	}
	fd, ok := got.Field("dens")
	if !ok {
		t.Fatal("dens missing")
	}
	if len(fd.Levels) != m.MaxLevel()+1 {
		t.Fatalf("%d level arrays", len(fd.Levels))
	}
	orig, _ := ck.Field("dens")
	for l := range orig.Levels {
		for i := range orig.Levels[l] {
			if fd.Levels[l][i] != orig.Levels[l][i] {
				t.Fatalf("level %d cell %d mismatch", l, i)
			}
		}
	}
	if _, ok := got.Field("nope"); ok {
		t.Fatal("bogus field found")
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	_, m := testCheckpoint(t)
	a := &ArchiveFile{
		Problem:   "test",
		Structure: m.Structure(),
		Fields: []CompressedField{{
			Name: "dens", Layout: "zmesh", Curve: "hilbert", Codec: "sz",
			BoundMode: "rel", BoundVal: 1e-4, NumValues: 1000,
			Payload: []byte{1, 2, 3},
		}},
	}
	path := filepath.Join(t.TempDir(), "a.zm")
	if err := SaveArchive(path, a); err != nil {
		t.Fatal(err)
	}
	got, err := LoadArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Fields) != 1 || got.Fields[0].Codec != "sz" || got.Fields[0].NumValues != 1000 {
		t.Fatalf("archive fields %+v", got.Fields)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
	// An archive is not a checkpoint and vice versa: empty Structure guards.
	path := filepath.Join(t.TempDir(), "bad")
	if err := save(path, &CheckpointFile{}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("structureless checkpoint accepted")
	}
	if err := save(path, &ArchiveFile{}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArchive(path); err == nil {
		t.Fatal("structureless archive accepted")
	}
}
