// Package dataset persists AMR checkpoints and compressed archives on disk.
// Checkpoints use the application's native representation — per-level arrays
// plus the tree metadata blob — mirroring what an AMR code writes; archives
// hold compressed field payloads plus the same tree metadata, and nothing
// else (no permutations, per the zMesh design).
package dataset

import (
	"encoding/gob"
	"fmt"
	"os"

	"repro/internal/amr"
)

// FieldData is one quantity serialized level-by-level.
type FieldData struct {
	Name   string
	Levels [][]float64
}

// CheckpointFile is the on-disk form of an AMR checkpoint.
type CheckpointFile struct {
	Problem   string
	Structure []byte // amr.Mesh.Structure()
	Fields    []FieldData
}

// CompressedField is one compressed quantity inside an archive.
type CompressedField struct {
	Name      string
	Layout    string
	Curve     string
	Codec     string
	BoundMode string
	BoundVal  float64
	NumValues int
	Payload   []byte
}

// ArchiveFile is the on-disk form of a compressed checkpoint. Note that the
// only layout metadata is the AMR tree structure the application stores
// anyway — restore recipes are rebuilt from it.
type ArchiveFile struct {
	Problem   string
	Structure []byte
	Fields    []CompressedField
}

// FromFields builds a CheckpointFile from live mesh fields.
func FromFields(problem string, m *amr.Mesh, fields []*amr.Field) *CheckpointFile {
	ck := &CheckpointFile{Problem: problem, Structure: m.Structure()}
	for _, f := range fields {
		ck.Fields = append(ck.Fields, FieldData{Name: f.Name, Levels: amr.LevelArrays(f)})
	}
	return ck
}

// Mesh rebuilds the checkpoint's mesh topology.
func (c *CheckpointFile) Mesh() (*amr.Mesh, error) {
	return amr.MeshFromStructure(c.Structure)
}

// Field returns the named quantity's level arrays.
func (c *CheckpointFile) Field(name string) (*FieldData, bool) {
	for i := range c.Fields {
		if c.Fields[i].Name == name {
			return &c.Fields[i], true
		}
	}
	return nil, false
}

// SaveCheckpoint writes a checkpoint with gob encoding.
func SaveCheckpoint(path string, ck *CheckpointFile) error {
	return save(path, ck)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(path string) (*CheckpointFile, error) {
	var ck CheckpointFile
	if err := load(path, &ck); err != nil {
		return nil, err
	}
	if len(ck.Structure) == 0 {
		return nil, fmt.Errorf("dataset: %s: not a checkpoint file", path)
	}
	return &ck, nil
}

// SaveArchive writes a compressed archive.
func SaveArchive(path string, a *ArchiveFile) error {
	return save(path, a)
}

// LoadArchive reads an archive written by SaveArchive.
func LoadArchive(path string) (*ArchiveFile, error) {
	var a ArchiveFile
	if err := load(path, &a); err != nil {
		return nil, err
	}
	if len(a.Structure) == 0 {
		return nil, fmt.Errorf("dataset: %s: not an archive file", path)
	}
	return &a, nil
}

func save(path string, v interface{}) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(v); err != nil {
		return fmt.Errorf("dataset: encoding %s: %w", path, err)
	}
	return f.Close()
}

func load(path string, v interface{}) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("dataset: decoding %s: %w", path, err)
	}
	return nil
}
