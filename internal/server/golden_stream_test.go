package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	zmesh "repro"
	"repro/internal/compress/container"
	"repro/internal/wire"
)

// Golden fixtures for the streaming transport: one committed exchange per
// codec across compress-stream, decompress-stream, and checkpoint. They
// pin the chunk framing, the batch framing, and the endpoints' byte-exact
// behavior the same way TestGoldenWire pins the buffered protocol.
// Regenerate after an intentional format change with:
//
//	go test ./internal/server -run TestGoldenStream -update

// streamFixtureChunk is the request-side chunk granularity: small enough
// that every fixture body spans multiple frames, so the framing itself
// (not just the single-chunk degenerate case) is pinned.
const streamFixtureChunk = 1 << 10

type streamFixture struct {
	ContainerVersion int `json:"container_version"`

	Structure []byte `json:"structure"`
	MeshID    string `json:"mesh_id"`

	// compress-stream: chunked request body → chunked response + headers.
	CompressQuery    string            `json:"compress_query"`
	CompressBody     []byte            `json:"compress_body"`
	CompressRespBody []byte            `json:"compress_resp_body"`
	CompressHeaders  map[string]string `json:"compress_headers"`

	// decompress-stream: the artifact re-framed as chunks → chunked values.
	DecompressQuery    string `json:"decompress_query"`
	DecompressBody     []byte `json:"decompress_body"`
	DecompressRespBody []byte `json:"decompress_resp_body"`

	// checkpoint: batch request (two fields, per-section bounds) → batch
	// response + headers.
	CheckpointQuery    string            `json:"checkpoint_query"`
	CheckpointBody     []byte            `json:"checkpoint_body"`
	CheckpointRespBody []byte            `json:"checkpoint_resp_body"`
	CheckpointHeaders  map[string]string `json:"checkpoint_headers"`
}

func streamFixtureQueries(codec string) (compressQ, decompressQ, checkpointQ string) {
	compressQ = url.Values{
		wire.ParamField:  {"dens"},
		wire.ParamLayout: {zmesh.LayoutZMesh.String()},
		wire.ParamCurve:  {"hilbert"},
		wire.ParamCodec:  {codec},
		wire.ParamBound:  {wire.FormatBound(testBound())},
	}.Encode()
	decompressQ = url.Values{
		wire.ParamField:  {"dens"},
		wire.ParamLayout: {zmesh.LayoutZMesh.String()},
		wire.ParamCurve:  {"hilbert"},
	}.Encode()
	checkpointQ = url.Values{
		wire.ParamLayout: {zmesh.LayoutZMesh.String()},
		wire.ParamCurve:  {"hilbert"},
		wire.ParamCodec:  {codec},
	}.Encode()
	return
}

// recordStreamExchange runs the canonical streamed exchange for one codec
// against a fresh server and captures every byte.
func recordStreamExchange(t *testing.T, codec string) *streamFixture {
	t.Helper()
	s := New(Config{})
	m, f := testMesh(t)
	values := zmesh.FieldValues(f)
	compressQ, decompressQ, checkpointQ := streamFixtureQueries(codec)
	fx := &streamFixture{
		ContainerVersion: container.Version,
		Structure:        m.Structure(),
		CompressQuery:    compressQ,
		CompressBody:     wire.AppendChunked(nil, wire.AppendFloats(nil, values), streamFixtureChunk),
		DecompressQuery:  decompressQ,
		CheckpointQuery:  checkpointQ,
	}
	post(t, s.Handler(), wire.PathMeshes, fx.Structure, http.StatusCreated)
	fx.MeshID = MeshID(fx.Structure)

	rec := postRaw(t, s.Handler(), wire.CompressStreamPath(fx.MeshID)+"?"+fx.CompressQuery, wire.ContentTypeChunked, fx.CompressBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("compress-stream: status %d (body %q)", rec.Code, rec.Body.String())
	}
	fx.CompressRespBody = rec.Body.Bytes()
	fx.CompressHeaders = map[string]string{}
	for _, h := range wireMetaHeaders {
		fx.CompressHeaders[h] = rec.Header().Get(h)
	}

	// Unframe the payload and re-frame it as the decompress request.
	payload := unchunk(t, fx.CompressRespBody)
	fx.DecompressBody = wire.AppendChunked(nil, payload, streamFixtureChunk)
	rec = postRaw(t, s.Handler(), wire.DecompressStreamPath(fx.MeshID)+"?"+fx.DecompressQuery, wire.ContentTypeChunked, fx.DecompressBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("decompress-stream: status %d (body %q)", rec.Code, rec.Body.String())
	}
	fx.DecompressRespBody = rec.Body.Bytes()

	fx.CheckpointBody = goldenCheckpointBody(t, f)
	rec = postRaw(t, s.Handler(), wire.CheckpointPath(fx.MeshID)+"?"+fx.CheckpointQuery, wire.ContentTypeBatch, fx.CheckpointBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("checkpoint: status %d (body %q)", rec.Code, rec.Body.String())
	}
	fx.CheckpointRespBody = rec.Body.Bytes()
	fx.CheckpointHeaders = map[string]string{}
	for _, h := range []string{wire.HeaderLayout, wire.HeaderCurve, wire.HeaderCodec} {
		fx.CheckpointHeaders[h] = rec.Header().Get(h)
	}
	return fx
}

// goldenCheckpointBody builds the deterministic two-field batch request of
// the checkpoint fixtures, with distinct per-section bounds.
func goldenCheckpointBody(t *testing.T, f *zmesh.Field) []byte {
	t.Helper()
	var b bytes.Buffer
	bw := wire.NewBatchWriter(&b)
	dens := wire.AppendFloats(nil, zmesh.FieldValues(f))
	if err := bw.WriteSection("dens", "abs:0.001", dens); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteSection("pres", "abs:0.01", dens); err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// unchunk reassembles a chunked body's payload.
func unchunk(t *testing.T, body []byte) []byte {
	t.Helper()
	cr := wire.NewChunkReader(bytes.NewReader(body))
	var out []byte
	for {
		p, err := cr.Next(nil)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("unchunking fixture body: %v", err)
		}
		out = append(out, p...)
	}
}

// TestGoldenStream replays each codec's committed streamed exchange and
// requires byte-identical responses.
func TestGoldenStream(t *testing.T) {
	for _, codec := range zmesh.Codecs() {
		if strings.HasPrefix(codec, "test-") {
			continue
		}
		codec := codec
		t.Run(codec, func(t *testing.T) {
			name := filepath.Join(wireGoldenDir, "stream_"+codec+".json")
			if *updateWire {
				fx := recordStreamExchange(t, codec)
				buf, err := json.MarshalIndent(fx, "", " ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(wireGoldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(name, append(buf, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", name)
				return
			}
			buf, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("%v (regenerate with `go test ./internal/server -run TestGoldenStream -update`)", err)
			}
			var fx streamFixture
			if err := json.Unmarshal(buf, &fx); err != nil {
				t.Fatalf("parsing %s: %v", name, err)
			}
			if fx.ContainerVersion != container.Version {
				t.Fatalf("%s: fixture written with container version %d, code is at version %d.\n"+
					"Regenerate with `go test ./internal/server -run TestGoldenStream -update`.",
					name, fx.ContainerVersion, container.Version)
			}

			s := New(Config{})
			post(t, s.Handler(), wire.PathMeshes, fx.Structure, http.StatusCreated)

			rec := postRaw(t, s.Handler(), wire.CompressStreamPath(fx.MeshID)+"?"+fx.CompressQuery, wire.ContentTypeChunked, fx.CompressBody)
			if rec.Code != http.StatusOK {
				t.Fatalf("compress-stream: status %d (body %q)", rec.Code, rec.Body.String())
			}
			for h, want := range fx.CompressHeaders {
				if got := rec.Header().Get(h); got != want {
					t.Errorf("compress-stream header %s = %q, fixture pins %q", h, got, want)
				}
			}
			if !bytes.Equal(rec.Body.Bytes(), fx.CompressRespBody) {
				t.Fatalf("compress-stream response drifted (%d bytes, fixture %d).\n"+
					"The chunk framing or artifact format changed. If intentional, regenerate\n"+
					"with `go test ./internal/server -run TestGoldenStream -update`.",
					rec.Body.Len(), len(fx.CompressRespBody))
			}

			rec = postRaw(t, s.Handler(), wire.DecompressStreamPath(fx.MeshID)+"?"+fx.DecompressQuery, wire.ContentTypeChunked, fx.DecompressBody)
			if rec.Code != http.StatusOK {
				t.Fatalf("decompress-stream: status %d (body %q)", rec.Code, rec.Body.String())
			}
			if !bytes.Equal(rec.Body.Bytes(), fx.DecompressRespBody) {
				t.Fatalf("decompress-stream response drifted (%d bytes, fixture %d)", rec.Body.Len(), len(fx.DecompressRespBody))
			}

			rec = postRaw(t, s.Handler(), wire.CheckpointPath(fx.MeshID)+"?"+fx.CheckpointQuery, wire.ContentTypeBatch, fx.CheckpointBody)
			if rec.Code != http.StatusOK {
				t.Fatalf("checkpoint: status %d (body %q)", rec.Code, rec.Body.String())
			}
			for h, want := range fx.CheckpointHeaders {
				if got := rec.Header().Get(h); got != want {
					t.Errorf("checkpoint header %s = %q, fixture pins %q", h, got, want)
				}
			}
			if !bytes.Equal(rec.Body.Bytes(), fx.CheckpointRespBody) {
				t.Fatalf("checkpoint response drifted (%d bytes, fixture %d)", rec.Body.Len(), len(fx.CheckpointRespBody))
			}
		})
	}
}
