package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	zmesh "repro"
	"repro/internal/compress/container"
	"repro/internal/wire"
)

// Golden wire-format fixtures: a committed HTTP exchange per codec —
// register, compress, decompress request and response bytes — replayed
// against a fresh server and compared bit for bit. They pin the zmeshd
// protocol the same way testdata/golden pins the artifact format: any
// change to the URL grammar, headers, float framing, or the payload
// envelope fails CI until container.Version is bumped (for envelope
// breaks) and the fixtures are regenerated with:
//
//	go test ./internal/server -run TestGoldenWire -update
var updateWire = flag.Bool("update", false, "regenerate golden wire fixtures under testdata/golden/server")

const wireGoldenDir = "../../testdata/golden/server"

// wireFixture is one committed protocol exchange. []byte fields marshal as
// base64.
type wireFixture struct {
	// ContainerVersion pins the payload envelope version; see checkVersion
	// in the root golden tests for the regeneration discipline.
	ContainerVersion int `json:"container_version"`

	// Register: request body (Mesh.Structure bytes) and response JSON.
	Structure    []byte `json:"structure"`
	MeshID       string `json:"mesh_id"`
	RegisterBody []byte `json:"register_body"`

	// Compress: query string, request body (float64-LE values), response
	// payload (container envelope) and metadata headers.
	CompressQuery   string            `json:"compress_query"`
	CompressBody    []byte            `json:"compress_body"`
	CompressPayload []byte            `json:"compress_payload"`
	CompressHeaders map[string]string `json:"compress_headers"`

	// Decompress: query string; request body is CompressPayload, response
	// is the reconstructed float64-LE stream.
	DecompressQuery string `json:"decompress_query"`
	DecompressBody  []byte `json:"decompress_body"`
}

// wireMetaHeaders is the pinned X-Zmesh-* header set of compress responses.
var wireMetaHeaders = []string{
	wire.HeaderField, wire.HeaderLayout, wire.HeaderCurve, wire.HeaderCodec, wire.HeaderNumValues,
}

// post issues one request against the handler and fails on any non-status
// surprise.
func post(t *testing.T, h http.Handler, path string, body []byte, wantStatus int) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", wire.ContentTypeBinary)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("POST %s: status %d (body %q), want %d", path, rec.Code, rec.Body.String(), wantStatus)
	}
	return rec
}

func compressQuery(layout zmesh.Layout, codec string) string {
	return url.Values{
		wire.ParamField:  {"dens"},
		wire.ParamLayout: {layout.String()},
		wire.ParamCurve:  {"hilbert"},
		wire.ParamCodec:  {codec},
		wire.ParamBound:  {wire.FormatBound(testBound())},
	}.Encode()
}

func decompressQuery(layout zmesh.Layout) string {
	return url.Values{
		wire.ParamField:  {"dens"},
		wire.ParamLayout: {layout.String()},
		wire.ParamCurve:  {"hilbert"},
	}.Encode()
}

// recordExchange runs the canonical register→compress→decompress exchange
// for one layout/codec pair against a fresh server and captures every byte
// on the wire.
func recordExchange(t *testing.T, layout zmesh.Layout, codec string) *wireFixture {
	t.Helper()
	s := New(Config{})
	m, f := testMesh(t)
	fx := &wireFixture{
		ContainerVersion: container.Version,
		Structure:        m.Structure(),
		CompressQuery:    compressQuery(layout, codec),
		CompressBody:     wire.AppendFloats(nil, zmesh.FieldValues(f)),
		DecompressQuery:  decompressQuery(layout),
	}

	rec := post(t, s.Handler(), wire.PathMeshes, fx.Structure, http.StatusCreated)
	fx.RegisterBody = rec.Body.Bytes()
	var reg wire.RegisterResponse
	if err := json.Unmarshal(fx.RegisterBody, &reg); err != nil {
		t.Fatal(err)
	}
	fx.MeshID = reg.MeshID

	rec = post(t, s.Handler(), wire.CompressPath(fx.MeshID)+"?"+fx.CompressQuery, fx.CompressBody, http.StatusOK)
	fx.CompressPayload = rec.Body.Bytes()
	fx.CompressHeaders = map[string]string{}
	for _, h := range wireMetaHeaders {
		fx.CompressHeaders[h] = rec.Header().Get(h)
	}

	rec = post(t, s.Handler(), wire.DecompressPath(fx.MeshID)+"?"+fx.DecompressQuery, fx.CompressPayload, http.StatusOK)
	fx.DecompressBody = rec.Body.Bytes()
	return fx
}

// TestGoldenWire replays each codec's committed exchange against a fresh
// server and requires the responses byte-identical to the fixtures.
func TestGoldenWire(t *testing.T) {
	for _, codec := range zmesh.Codecs() {
		if strings.HasPrefix(codec, "test-") {
			continue // test-registered stubs (alloc_test.go) are not protocol codecs
		}
		codec := codec
		t.Run(codec, func(t *testing.T) {
			goldenWireCase(t, filepath.Join(wireGoldenDir, codec+".json"), zmesh.LayoutZMesh, codec)
		})
	}
}

// TestGoldenWireTAC pins the exchange for the TAC box layout: the zTAC
// frame rides inside the same container envelope, so this fixture holds the
// frame format itself to the golden discipline, not just the envelope.
func TestGoldenWireTAC(t *testing.T) {
	goldenWireCase(t, filepath.Join(wireGoldenDir, "tac_sz.json"), zmesh.LayoutTAC, "sz")
}

func goldenWireCase(t *testing.T, name string, layout zmesh.Layout, codec string) {
	if *updateWire {
		fx := recordExchange(t, layout, codec)
		buf, err := json.MarshalIndent(fx, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(wireGoldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(name, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", name)
		return
	}
	buf, err := os.ReadFile(name)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test ./internal/server -run TestGoldenWire -update`)", err)
	}
	var fx wireFixture
	if err := json.Unmarshal(buf, &fx); err != nil {
		t.Fatalf("parsing %s: %v", name, err)
	}
	if fx.ContainerVersion != container.Version {
		t.Fatalf("%s: fixture written with container version %d, code is at version %d.\n"+
			"The envelope format changed: regenerate with `go test ./internal/server -run TestGoldenWire -update`.",
			name, fx.ContainerVersion, container.Version)
	}
	if !container.IsContainer(fx.CompressPayload) {
		t.Fatalf("%s: committed payload is not a container envelope", name)
	}

	s := New(Config{})
	rec := post(t, s.Handler(), wire.PathMeshes, fx.Structure, http.StatusCreated)
	if !bytes.Equal(rec.Body.Bytes(), fx.RegisterBody) {
		t.Fatalf("register response drifted:\n got %s\nwant %s", rec.Body.Bytes(), fx.RegisterBody)
	}

	rec = post(t, s.Handler(), wire.CompressPath(fx.MeshID)+"?"+fx.CompressQuery, fx.CompressBody, http.StatusOK)
	for _, h := range wireMetaHeaders {
		if got := rec.Header().Get(h); got != fx.CompressHeaders[h] {
			t.Errorf("compress header %s = %q, fixture pins %q", h, got, fx.CompressHeaders[h])
		}
	}
	if !bytes.Equal(rec.Body.Bytes(), fx.CompressPayload) {
		t.Fatalf("compress payload drifted (%d bytes, fixture %d).\n"+
			"The wire or artifact format changed. If intentional, bump container.Version\n"+
			"and regenerate with `go test ./internal/server -run TestGoldenWire -update`.",
			rec.Body.Len(), len(fx.CompressPayload))
	}

	// The committed payload (not the one just produced) must still
	// decompress to the committed bits: old artifacts stay readable.
	rec = post(t, s.Handler(), wire.DecompressPath(fx.MeshID)+"?"+fx.DecompressQuery, fx.CompressPayload, http.StatusOK)
	if !bytes.Equal(rec.Body.Bytes(), fx.DecompressBody) {
		t.Fatalf("decompress output drifted (%d bytes, fixture %d)", rec.Body.Len(), len(fx.DecompressBody))
	}
}

// TestWireErrorShapes pins the protocol's error conventions: JSON bodies,
// conventional status codes.
func TestWireErrorShapes(t *testing.T) {
	s := New(Config{})
	m, _ := testMesh(t)
	post(t, s.Handler(), wire.PathMeshes, m.Structure(), http.StatusCreated)
	id := MeshID(m.Structure())

	cases := []struct {
		name, path string
		body       []byte
		status     int
	}{
		{"empty structure", wire.PathMeshes, nil, http.StatusBadRequest},
		{"unknown mesh", wire.CompressPath("deadbeef") + "?" + compressQuery(zmesh.LayoutZMesh, "sz"), nil, http.StatusNotFound},
		{"missing bound", wire.CompressPath(id) + "?field=dens", []byte{0, 0, 0, 0, 0, 0, 0, 0}, http.StatusBadRequest},
		{"bad bound", wire.CompressPath(id) + "?bound=abs:-1", []byte{0, 0, 0, 0, 0, 0, 0, 0}, http.StatusBadRequest},
		{"unknown codec", wire.CompressPath(id) + "?codec=nope&bound=abs:1e-3", nil, http.StatusBadRequest},
		{"ragged floats", wire.CompressPath(id) + "?bound=abs:1e-3", []byte{1, 2, 3}, http.StatusBadRequest},
		{"empty payload", wire.DecompressPath(id), nil, http.StatusBadRequest},
		{"garbage payload", wire.DecompressPath(id), []byte("not a container"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(t, s.Handler(), tc.path, tc.body, tc.status)
			var er wire.ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("error body %q is not a JSON ErrorResponse", rec.Body.String())
			}
			if ct := rec.Header().Get("Content-Type"); ct != wire.ContentTypeJSON {
				t.Fatalf("error Content-Type = %q, want %q", ct, wire.ContentTypeJSON)
			}
		})
	}
}
