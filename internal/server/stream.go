package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	zmesh "repro"
	"repro/internal/compress"
	"repro/internal/wire"
)

// Streaming transport: the chunked wire mode of zmeshd. The plain
// compress/decompress endpoints buffer each field as one float64-LE blob,
// which puts a hard RAM ceiling on checkpoint size; the -stream variants
// consume and produce the wire.Chunk framing through a fixed-size ring of
// pooled chunk buffers, so the only full-field buffer a request ever holds
// is the float64 value stream the codec itself needs — the byte-side body
// is never materialized. The checkpoint endpoint compresses every field of
// a snapshot in one request against one cached encoder, which is the
// paper's recipe-amortization claim made wire-visible: recipe.builds moves
// by one for N fields. See DESIGN.md "Streaming transport".

// ringSlots is the number of chunk buffers per ring. The per-request chunk
// memory is bounded by ringSlots × wire.MaxChunkPayload no matter how large
// the streamed field is.
const ringSlots = 4

// maxPooledRing caps the total chunk-buffer capacity a ring may carry back
// into its pool — the same one-big-request discipline as maxPooledBody.
const maxPooledRing = 4 << 20

// chunkRing is a fixed-size ring of chunk buffers: frames are read into
// slots round-robin, so a streamed body of any length recycles the same
// ringSlots buffers instead of growing a contiguous blob.
type chunkRing struct {
	slots [ringSlots][]byte
	next  int
}

// acquire hands out the next slot (index + current buffer).
func (r *chunkRing) acquire() (int, []byte) {
	i := r.next % ringSlots
	r.next++
	return i, r.slots[i]
}

// release returns a possibly-grown buffer to its slot.
func (r *chunkRing) release(i int, buf []byte) { r.slots[i] = buf }

// pinnedBytes is the total capacity the ring would pin in the pool.
func (r *chunkRing) pinnedBytes() int {
	n := 0
	for _, s := range r.slots {
		n += cap(s)
	}
	return n
}

var ringPool = sync.Pool{New: func() any { return new(chunkRing) }}

func putRing(r *chunkRing) {
	if r.pinnedBytes() > maxPooledRing {
		*r = chunkRing{}
	}
	ringPool.Put(r)
}

// streamParams resolves the shared front half of the compress-side
// handlers: mesh lookup, pipeline options, codec validation, and the
// cached encoder (one recipe build per (mesh, layout, curve, codec), ever).
func (s *Server) streamParams(r *http.Request) (*meshEntry, zmesh.Options, *zmesh.Encoder, error) {
	entry, err := s.resolveMesh(r.Context(), r.PathValue("id"))
	if err != nil {
		return nil, zmesh.Options{}, nil, err
	}
	opt, err := pipelineParams(r)
	if err != nil {
		return nil, zmesh.Options{}, nil, err
	}
	if _, err := compress.Get(opt.Codec); err != nil {
		return nil, zmesh.Options{}, nil, badRequest(err)
	}
	enc, err := s.store.encoder(entry, opt)
	if err != nil {
		return nil, zmesh.Options{}, nil, err
	}
	return entry, opt, enc, nil
}

// handleCompressStream: POST /v1/meshes/{id}/compress-stream, same query
// grammar as /compress; body = chunked stream of float64-LE level-order
// values, response = chunked stream of the container-enveloped payload
// with the X-Zmesh-* metadata headers.
func (s *Server) handleCompressStream(w http.ResponseWriter, r *http.Request) error {
	entry, _, enc, err := s.streamParams(r)
	if err != nil {
		return err
	}
	boundStr := r.URL.Query().Get(wire.ParamBound)
	if boundStr == "" {
		return badRequest(errors.New("missing bound parameter (e.g. bound=abs:1e-3)"))
	}
	bound, err := wire.ParseBound(boundStr)
	if err != nil {
		return badRequest(err)
	}
	fieldName := r.URL.Query().Get(wire.ParamField)
	if fieldName == "" {
		fieldName = "field"
	}
	nCells := entry.mesh.NumBlocks() * entry.mesh.CellsPerBlock()

	sc := scratchPool.Get().(*requestScratch)
	defer putScratch(sc)
	ring := ringPool.Get().(*chunkRing)
	defer putRing(ring)

	c, err := compressChunked(enc, fieldName, nCells, r.Body, bound, sc, ring)
	if err != nil {
		if cerr := r.Context().Err(); cerr != nil {
			return cerr // client gone mid-stream
		}
		return err
	}
	h := w.Header()
	h.Set("Content-Type", wire.ContentTypeChunked)
	h.Set(wire.HeaderField, c.FieldName)
	h.Set(wire.HeaderLayout, c.Layout.String())
	h.Set(wire.HeaderCurve, c.Curve)
	h.Set(wire.HeaderCodec, c.Codec)
	h.Set(wire.HeaderNumValues, strconv.Itoa(c.NumValues))
	if err := writeChunked(w, c.Payload); err != nil {
		return committed(err)
	}
	return nil
}

// compressChunked is the allocation-audited core of handleCompressStream:
// chunked body → incremental float decode through the ring → artifact. The
// ring bounds the byte-side memory; the float buffer is sized exactly once
// to the mesh's cell count (the codec needs the whole value stream either
// way). sc.body is never touched — the full wire body exists only as
// transient ring slots.
func compressChunked(enc *zmesh.Encoder, fieldName string, nCells int, body io.Reader, bound zmesh.Bound, sc *requestScratch, ring *chunkRing) (*zmesh.Compressed, error) {
	cr := wire.NewChunkReader(body)
	var asm wire.FloatAssembler
	asm.Reset(sc.values)
	asm.Grow(nCells)
	for {
		i, slot := ring.acquire()
		payload, err := cr.Next(slot)
		ring.release(i, payload)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, badRequest(fmt.Errorf("reading chunked values: %w", err))
		}
		asm.Feed(payload)
		if asm.Len() > nCells {
			return nil, badRequest(fmt.Errorf("stream exceeds the mesh's %d cells", nCells))
		}
	}
	values, err := asm.Finish()
	if err != nil {
		return nil, badRequest(err)
	}
	sc.values = values
	if len(values) != nCells {
		return nil, badRequest(fmt.Errorf("stream has %d values, mesh has %d cells", len(values), nCells))
	}
	return enc.CompressValuesScratch(fieldName, values, bound, &sc.zs)
}

// handleDecompressStream: POST /v1/meshes/{id}/decompress-stream, same
// query grammar as /decompress; body = chunked stream of a
// container-enveloped payload, response = chunked stream of float64-LE
// level-order values.
func (s *Server) handleDecompressStream(w http.ResponseWriter, r *http.Request) error {
	entry, err := s.resolveMesh(r.Context(), r.PathValue("id"))
	if err != nil {
		return err
	}
	opt, err := pipelineParams(r)
	if err != nil {
		return err
	}
	if err := requireConcreteLayout(opt, "decode with the layout the compress response recorded"); err != nil {
		return err
	}
	fieldName := r.URL.Query().Get(wire.ParamField)
	if fieldName == "" {
		fieldName = "field"
	}
	sc := scratchPool.Get().(*requestScratch)
	defer putScratch(sc)
	ring := ringPool.Get().(*chunkRing)
	defer putRing(ring)

	// Assemble the artifact payload chunk by chunk. Unlike the value
	// stream, the payload must be contiguous for the codec — but it is the
	// *compressed* representation, typically 4-10× smaller than the field,
	// and it reuses the pooled body buffer.
	cr := wire.NewChunkReader(r.Body)
	sc.body = sc.body[:0]
	for {
		i, slot := ring.acquire()
		payload, err := cr.Next(slot)
		ring.release(i, payload)
		if err == io.EOF {
			break
		}
		if err != nil {
			return badRequest(fmt.Errorf("reading chunked payload: %w", err))
		}
		sc.body = append(sc.body, payload...)
	}
	if len(sc.body) == 0 {
		return badRequest(errors.New("empty payload body"))
	}
	if err := r.Context().Err(); err != nil {
		return err // client gone; keep the cancellation out of 4xx stats
	}
	sc.artifact = zmesh.Compressed{
		FieldName: fieldName,
		Layout:    opt.Layout,
		Curve:     opt.Curve,
		Payload:   sc.body,
	}
	values, err := entry.dec.DecompressValuesScratch(&sc.artifact, &sc.zs)
	if err != nil {
		return badRequest(err)
	}
	h := w.Header()
	h.Set("Content-Type", wire.ContentTypeChunked)
	h.Set(wire.HeaderField, fieldName)
	h.Set(wire.HeaderNumValues, strconv.Itoa(len(values)))
	out, ok := wire.ViewBytes(values)
	if !ok {
		sc.body = wire.AppendFloats(sc.body[:0], values)
		out = sc.body
	}
	if err := writeChunked(w, out); err != nil {
		return committed(err)
	}
	return nil
}

// writeChunked frames data onto w in DefaultChunkBytes slices — zero-copy:
// each frame's payload is a sub-slice of data.
func writeChunked(w io.Writer, data []byte) error {
	cw := wire.NewChunkWriter(w)
	for off := 0; off < len(data); off += wire.DefaultChunkBytes {
		end := off + wire.DefaultChunkBytes
		if end > len(data) {
			end = len(data)
		}
		if err := cw.WriteChunk(data[off:end]); err != nil {
			return err
		}
	}
	return cw.Close()
}

// handleCheckpoint: POST /v1/meshes/{id}/checkpoint?layout=&curve=&codec=[&bound=],
// body = batch framing with one section per field (meta = the field's
// error bound, falling back to the query bound when empty); response =
// batch framing with one section per field (meta = decoded value count,
// payload = container-enveloped artifact). All sections are compressed
// against one cached encoder, so the whole checkpoint costs at most one
// recipe build — the paper's amortization claim as a wire contract.
//
// The request streams: each raw field is read, compressed, and its buffer
// recycled before the next section, so peak raw-field memory is one field.
// The response sections, however, are accumulated and written only after
// the request is fully consumed — net/http makes the request body
// unavailable once the response starts flushing, so the two cannot be
// interleaved. Buffering the compressed side costs the compressed
// checkpoint (typically several times smaller than one raw field), and it
// means any per-section failure surfaces as a clean JSON error instead of
// a truncated body.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) error {
	entry, opt, enc, err := s.streamParams(r)
	if err != nil {
		return err
	}
	// The batch response advertises ONE layout header for all sections, but
	// the auto picker chooses per field — a mixed batch would mislabel every
	// section the last one disagrees with. Reject loudly instead of lying.
	if err := requireConcreteLayout(opt, "the batch checkpoint records one layout for all fields; pick a concrete layout or compress fields individually"); err != nil {
		return err
	}
	var defaultBound zmesh.Bound
	haveDefault := false
	if boundStr := r.URL.Query().Get(wire.ParamBound); boundStr != "" {
		if defaultBound, err = wire.ParseBound(boundStr); err != nil {
			return badRequest(err)
		}
		haveDefault = true
	}
	nCells := entry.mesh.NumBlocks() * entry.mesh.CellsPerBlock()
	sc := scratchPool.Get().(*requestScratch)
	defer putScratch(sc)

	br := wire.NewBatchReader(r.Body, s.cfg.MaxBodyBytes)
	var resp bytes.Buffer
	bw := wire.NewBatchWriter(&resp)
	var layoutStr, curve, codec string
	fields := 0
	for {
		name, meta, payload, err := br.Next(sc.body)
		if err == io.EOF {
			break
		}
		if err != nil {
			return badRequest(fmt.Errorf("reading batch section: %w", err))
		}
		sc.body = payload[:0]
		if name == "" {
			name = "field"
		}
		bound := defaultBound
		if meta != "" {
			if bound, err = wire.ParseBound(meta); err != nil {
				return badRequest(fmt.Errorf("section %q: %w", name, err))
			}
		} else if !haveDefault {
			return badRequest(fmt.Errorf("section %q: no bound (set section meta or the bound query parameter)", name))
		}
		c, err := compressStream(enc, name, nCells, payload, bound, sc)
		if err != nil {
			return err
		}
		if err := bw.WriteSection(c.FieldName, strconv.Itoa(c.NumValues), c.Payload); err != nil {
			return err
		}
		layoutStr, curve, codec = c.Layout.String(), c.Curve, c.Codec
		fields++
		s.checkpointFields.Inc()
	}
	if fields == 0 {
		return badRequest(errors.New("empty checkpoint batch"))
	}
	if err := bw.Close(); err != nil {
		return err
	}
	h := w.Header()
	h.Set("Content-Type", wire.ContentTypeBatch)
	h.Set(wire.HeaderLayout, layoutStr)
	h.Set(wire.HeaderCurve, curve)
	h.Set(wire.HeaderCodec, codec)
	if _, err := w.Write(resp.Bytes()); err != nil {
		return committed(err)
	}
	return nil
}
