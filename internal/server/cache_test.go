package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"

	zmesh "repro"
	"repro/client"
)

// distinctMesh builds the n-th of a family of topologically distinct
// meshes (different refinement patterns → different structure hashes).
func distinctMesh(t testing.TB, n int) (*zmesh.Mesh, *zmesh.Field) {
	t.Helper()
	m, err := zmesh.NewMesh(2, 4, [3]int{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Refine(m.Roots()[n%4]); err != nil {
		t.Fatal(err)
	}
	if n >= 4 {
		if err := m.Refine(m.Roots()[(n+1)%4]); err != nil {
			t.Fatal(err)
		}
	}
	f := zmesh.SampleField(m, fmt.Sprintf("q%d", n), func(x, y, z float64) float64 {
		return math.Sin(float64(n+1)*x) + y
	})
	return m, f
}

// TestLRUBasics exercises the generic LRU directly: recency order,
// capacity eviction, refresh-on-get.
func TestLRUBasics(t *testing.T) {
	var evicted []int
	c := newLRU[int, string](2, func(k int, _ string) { evicted = append(evicted, k) })
	c.add(1, "a")
	c.add(2, "b")
	if _, ok := c.get(1); !ok {
		t.Fatal("key 1 missing")
	}
	c.add(3, "c") // evicts 2: key 1 was refreshed by the get
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted %v, want [2]", evicted)
	}
	if _, ok := c.get(2); ok {
		t.Fatal("key 2 still resident after eviction")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("key 1 evicted despite recency refresh")
	}
	c.remove(3)
	if c.len() != 1 {
		t.Fatalf("len = %d after remove, want 1", c.len())
	}
	if len(evicted) != 1 {
		t.Fatalf("remove invoked the eviction callback: %v", evicted)
	}
}

// TestMeshLRUEviction: registering past MaxMeshes drops the least recently
// used mesh; requests against it 404 until re-registration.
func TestMeshLRUEviction(t *testing.T) {
	s, cl := newTestServer(t, Config{MaxMeshes: 2})
	ctx := context.Background()

	m0, f0 := distinctMesh(t, 0)
	id0, err := cl.Register(ctx, m0)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 2; n++ {
		m, _ := distinctMesh(t, n)
		if _, err := cl.Register(ctx, m); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Registry().Counter("server.mesh.evictions").Load(); got != 1 {
		t.Fatalf("mesh evictions = %d, want 1", got)
	}
	_, err = cl.CompressField(ctx, id0, f0, zmesh.DefaultOptions(), testBound())
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("evicted mesh: got %v, want 404", err)
	}
	// Re-registering restores service.
	if _, err := cl.Register(ctx, m0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CompressField(ctx, id0, f0, zmesh.DefaultOptions(), testBound()); err != nil {
		t.Fatalf("compress after re-registration: %v", err)
	}
}

// TestEncoderLRUEviction: with a single encoder slot, alternating pipelines
// keep evicting each other, so every request is a miss and a fresh recipe
// build; with enough slots the same sequence is all hits after warmup.
func TestEncoderLRUEviction(t *testing.T) {
	m, f := testMesh(t)
	ctx := context.Background()

	runSequence := func(cfg Config, reqs int) (builds, misses, evictions int64) {
		s, cl := newTestServer(t, cfg)
		id, err := cl.Register(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < reqs; i++ {
			opt := zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "sz"}
			if i%2 == 1 {
				opt.Codec = "zfp"
			}
			if _, err := cl.CompressField(ctx, id, f, opt, testBound()); err != nil {
				t.Fatal(err)
			}
		}
		reg := s.Registry()
		return reg.Counter("recipe.builds").Load(),
			reg.Counter("server.cache.misses").Load(),
			reg.Counter("server.cache.evictions").Load()
	}

	builds, misses, evictions := runSequence(Config{MaxEncoders: 1}, 4)
	if misses != 4 || evictions != 3 {
		t.Fatalf("capacity-1 alternation: misses=%d evictions=%d, want 4 and 3", misses, evictions)
	}
	if builds != 4 {
		t.Fatalf("capacity-1 alternation rebuilt %d recipes, want 4", builds)
	}

	builds, misses, evictions = runSequence(Config{MaxEncoders: 8}, 4)
	if misses != 2 || evictions != 0 {
		t.Fatalf("roomy cache: misses=%d evictions=%d, want 2 and 0", misses, evictions)
	}
	if builds != 2 {
		t.Fatalf("roomy cache built %d recipes, want 2 (one per codec)", builds)
	}
}

// TestConcurrentRegisterAndCompress hammers the store under -race: 8
// goroutines each register a distinct mesh and immediately stream fields
// through it while the mesh LRU is tight enough to evict concurrently.
func TestConcurrentRegisterAndCompress(t *testing.T) {
	_, cl := newTestServer(t, Config{MaxMeshes: 4, MaxEncoders: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m, f := distinctMesh(t, g)
			values := zmesh.FieldValues(f)
			for iter := 0; iter < 4; iter++ {
				// Re-register each round: the tight LRU may have evicted
				// this mesh while other goroutines registered theirs.
				id, err := cl.Register(ctx, m)
				if err != nil {
					errs[g] = err
					return
				}
				c, err := cl.Compress(ctx, id, f.Name, values, zmesh.DefaultOptions(), testBound())
				if err != nil {
					var se *client.StatusError
					if errors.As(err, &se) && se.Code == http.StatusNotFound {
						continue // evicted between register and compress: legal
					}
					errs[g] = err
					return
				}
				if _, err := cl.Decompress(ctx, id, c); err != nil {
					var se *client.StatusError
					if errors.As(err, &se) && se.Code == http.StatusNotFound {
						continue
					}
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestStoreSizes sanity-checks the occupancy gauge.
func TestStoreSizes(t *testing.T) {
	s, cl := newTestServer(t, Config{})
	ctx := context.Background()
	m, f := testMesh(t)
	id, err := cl.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CompressField(ctx, id, f, zmesh.DefaultOptions(), testBound()); err != nil {
		t.Fatal(err)
	}
	meshes, encoders := s.store.sizes()
	if meshes != 1 || encoders != 1 {
		t.Fatalf("sizes = (%d meshes, %d encoders), want (1, 1)", meshes, encoders)
	}
}
