package server

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	zmesh "repro"
	"repro/internal/telemetry"
)

// store holds the server's two LRU layers:
//
//   - meshes: structure-hash → registered topology plus its Decoder. The
//     decoder internally caches restore recipes per (layout, curve), so the
//     decompress path amortizes recipe construction per mesh for free.
//   - encoders: (structure-hash, layout, curve, codec) → Encoder future. An
//     Encoder binds a recipe to a codec, so the codec joins the key; two
//     codecs over the same (mesh, layout, curve) still share nothing, which
//     keeps eviction granular.
//
// Evicting a mesh drops every encoder derived from it (the keys are tracked
// on the mesh entry), so the encoder LRU never serves a topology the mesh
// LRU no longer admits. All map operations run under one mutex; recipe
// construction — the expensive part — runs outside it behind a
// once-guarded future, so concurrent requests for the same pipeline build
// it exactly once while requests for other pipelines proceed.
type store struct {
	reg *zmesh.Registry

	hits          *telemetry.Counter // encoder/decoder resolved from cache
	misses        *telemetry.Counter // encoder had to be built
	evictions     *telemetry.Counter // encoder entries dropped by capacity
	meshRegs      *telemetry.Counter // successful registrations (new meshes)
	meshEvictions *telemetry.Counter // meshes dropped by capacity

	mu       sync.Mutex
	meshes   *lru[string, *meshEntry]
	encoders *lru[encoderKey, *encoderFuture]
}

// meshEntry is one registered topology.
type meshEntry struct {
	id        string
	structure []byte
	mesh      *zmesh.Mesh
	dec       *zmesh.Decoder
	// encKeys are the encoder-cache keys derived from this mesh, removed
	// alongside it on eviction. Guarded by the store mutex.
	encKeys []encoderKey
}

type encoderKey struct {
	meshID string
	layout zmesh.Layout
	curve  string
	codec  string
}

// encoderFuture is a once-built encoder slot: the store lock only ever
// publishes the future; the recipe build happens in build() outside it.
type encoderFuture struct {
	once sync.Once
	enc  *zmesh.Encoder
	err  error
}

func newStore(maxMeshes, maxEncoders int, reg *zmesh.Registry) *store {
	s := &store{
		reg:           reg,
		hits:          reg.Counter("server.cache.hits"),
		misses:        reg.Counter("server.cache.misses"),
		evictions:     reg.Counter("server.cache.evictions"),
		meshRegs:      reg.Counter("server.mesh.registered"),
		meshEvictions: reg.Counter("server.mesh.evictions"),
	}
	s.encoders = newLRU[encoderKey, *encoderFuture](maxEncoders, func(encoderKey, *encoderFuture) {
		s.evictions.Inc()
	})
	s.meshes = newLRU[string, *meshEntry](maxMeshes, func(_ string, e *meshEntry) {
		for _, k := range e.encKeys {
			s.encoders.remove(k)
		}
		s.meshEvictions.Inc()
	})
	return s
}

// MeshID is the content address of a structure blob: hex SHA-256.
func MeshID(structure []byte) string {
	sum := sha256.Sum256(structure)
	return hex.EncodeToString(sum[:])
}

// register decodes and stores a topology, returning its entry and whether
// it was newly created. Re-registering refreshes recency only.
func (s *store) register(structure []byte) (*meshEntry, bool, error) {
	id := MeshID(structure)
	s.mu.Lock()
	if e, ok := s.meshes.get(id); ok {
		s.mu.Unlock()
		return e, false, nil
	}
	s.mu.Unlock()

	// Decode outside the lock: MeshFromStructure validates and allocates,
	// and concurrent registrations of distinct meshes should not serialize.
	m, err := zmesh.NewDecoderFromStructure(structure)
	if err != nil {
		return nil, false, err
	}
	e := &meshEntry{
		id:        id,
		structure: append([]byte(nil), structure...),
		mesh:      m.Mesh(),
		dec:       m.Instrument(s.reg),
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.meshes.get(id); ok {
		// A concurrent registration of the same blob won; keep its entry so
		// encoder-cache keys stay attached to one canonical mesh.
		return prev, false, nil
	}
	s.meshes.add(id, e)
	s.meshRegs.Inc()
	return e, true, nil
}

// lookup returns the registered mesh entry, refreshing its recency.
func (s *store) lookup(id string) (*meshEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meshes.get(id)
}

// encoder resolves the cached encoder for a pipeline key, building (and
// recording a recipe.builds increment) only on a miss. Concurrent callers
// for the same key share one build.
func (s *store) encoder(e *meshEntry, opt zmesh.Options) (*zmesh.Encoder, error) {
	key := encoderKey{meshID: e.id, layout: opt.Layout, curve: opt.Curve, codec: opt.Codec}
	s.mu.Lock()
	fut, ok := s.encoders.get(key)
	if ok {
		s.hits.Inc()
	} else {
		// Re-check the mesh is still admitted: an eviction racing this
		// request must not resurrect encoder keys for a dropped mesh. The
		// eviction surfaces as 404 — the same contract as a mesh that was
		// never registered, so clients re-register rather than retrying a
		// "server error" that will never heal on its own.
		if _, live := s.meshes.get(e.id); !live {
			s.mu.Unlock()
			return nil, notFound("mesh %s evicted, re-register it", e.id)
		}
		fut = &encoderFuture{}
		s.encoders.add(key, fut)
		e.encKeys = append(e.encKeys, key)
		s.misses.Inc()
	}
	s.mu.Unlock()

	fut.once.Do(func() {
		fut.enc, fut.err = zmesh.NewEncoderObserved(e.mesh, opt, s.reg)
	})
	if fut.err != nil {
		// Do not cache failures: drop the future so the next request retries.
		s.mu.Lock()
		if cur, ok := s.encoders.get(key); ok && cur == fut {
			s.encoders.remove(key)
		}
		s.mu.Unlock()
		return nil, fut.err
	}
	return fut.enc, nil
}

// sizes reports the current cache occupancy (for expvar-style gauges).
func (s *store) sizes() (meshes, encoders int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meshes.len(), s.encoders.len()
}
