package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	zmesh "repro"
	"repro/internal/compress"
	"repro/internal/compress/multilevel"
	"repro/internal/core"
	cstore "repro/internal/store"
	"repro/internal/wire"
)

// Checkpoint reads: everything under GET /v1/checkpoints/{id} serves sealed
// artifacts straight from the content-addressed store — no session state is
// involved, so reads keep working across daemon restarts and concurrently
// with live writers. A field read replays the persisted frame chain through
// a fresh TemporalDecoder (the store is the source of truth; decoder state
// is never cached across requests) and then serves the reconstruction in one
// of three shapes: the full level-order stream, a coarse level-prefix
// (?levels=K), or an error-bounded tier cascade (?tiers=K).

// maxReadTiers caps ?tiers=K: each tier k is relative-bound 10^-k, and
// beyond 8 the residuals are below double-precision noise for typical
// fields.
const maxReadTiers = 8

// storeErr maps store failures: a missing artifact is the client's 404,
// anything else (including corruption) is the server's 500.
func storeErr(err error) error {
	if errors.Is(err, cstore.ErrNotFound) {
		return &httpError{status: http.StatusNotFound, err: err}
	}
	return err
}

// loadManifest fetches and parses the manifest of one checkpoint.
func (s *Server) loadManifest(id string) (*wire.Manifest, error) {
	raw, err := s.artifacts.GetManifest(id)
	if err != nil {
		return nil, storeErr(err)
	}
	m, err := wire.ParseManifest(raw)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", id, err)
	}
	return m, nil
}

// handleCheckpointInfo: GET /v1/checkpoints/{id} — the JSON summary of a
// sealed checkpoint (fields, snapshot counts, bounds, artifact sizes).
func (s *Server) handleCheckpointInfo(w http.ResponseWriter, r *http.Request) error {
	if err := s.requireStore(); err != nil {
		return err
	}
	id := r.PathValue("id")
	m, err := s.loadManifest(id)
	if err != nil {
		return err
	}
	resp := wire.CheckpointResponse{CheckpointID: id, Fields: make([]wire.CheckpointFieldInfo, 0, len(m.Fields))}
	for _, f := range m.Fields {
		info := wire.CheckpointFieldInfo{
			Name:   f.Name,
			Layout: f.Layout,
			Curve:  f.Curve,
			Codec:  f.Codec,
			Bounds: make([]float64, 0, len(f.Frames)),
		}
		for _, fr := range f.Frames {
			info.Snapshots++
			if fr.Keyframe {
				info.Keyframes++
			}
			info.Bytes += fr.Bytes
			info.Bounds = append(info.Bounds, fr.Bound)
		}
		resp.Fields = append(resp.Fields, info)
	}
	w.Header().Set("Content-Type", wire.ContentTypeJSON)
	return json.NewEncoder(w).Encode(resp)
}

// manifestField resolves one field stream of a checkpoint by name.
func manifestField(m *wire.Manifest, name string) (*wire.ManifestField, error) {
	for i := range m.Fields {
		if m.Fields[i].Name == name {
			return &m.Fields[i], nil
		}
	}
	return nil, notFound("checkpoint has no field %q", name)
}

// snapParam resolves ?snap=N (default: the last snapshot of the stream).
func snapParam(r *http.Request, frames int) (int, error) {
	v := r.URL.Query().Get(wire.ParamSnapshot)
	if v == "" {
		return frames - 1, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, badRequest(fmt.Errorf("bad %s parameter %q", wire.ParamSnapshot, v))
	}
	if n >= frames {
		return 0, notFound("snapshot %d out of range (stream has %d)", n, frames)
	}
	return n, nil
}

// loadFrame fetches and parses the persisted temporal frame behind one
// manifest row. Store-side failures are 500s: the seal proved these bytes
// decodable.
func (s *Server) loadFrame(mf *wire.ManifestFrame) (*wire.TemporalFrame, error) {
	raw, err := s.artifacts.GetObject(mf.Object)
	if err != nil {
		return nil, storeErr(err)
	}
	frame, err := wire.ParseTemporalFrame(raw)
	if err != nil {
		return nil, fmt.Errorf("object %s: %w", mf.Object, err)
	}
	return frame, nil
}

// replayField replays frames 0..snap of one persisted stream through a
// fresh decoder and returns the snapshot's reconstruction.
func (s *Server) replayField(f *wire.ManifestField, snap int) (*zmesh.Field, *zmesh.Mesh, error) {
	layout, err := core.ParseLayout(f.Layout)
	if err != nil {
		return nil, nil, fmt.Errorf("manifest layout: %w", err)
	}
	dec := zmesh.NewTemporalDecoder()
	var field *zmesh.Field
	for i := 0; i <= snap; i++ {
		frame, err := s.loadFrame(&f.Frames[i])
		if err != nil {
			return nil, nil, err
		}
		field, err = dec.DecompressSnapshot(&zmesh.TemporalCompressed{
			Compressed: zmesh.Compressed{
				FieldName: frame.Field,
				Layout:    layout,
				Curve:     frame.Curve,
				Codec:     frame.Codec,
				NumValues: frame.NumValues,
				Payload:   frame.Payload,
			},
			Keyframe:  frame.Keyframe,
			Structure: frame.Structure,
			Bound:     frame.Bound,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("replaying frame %d (object %s): %w", i, f.Frames[i].Object, err)
		}
	}
	return field, dec.Mesh(), nil
}

// handleCheckpointStructure: GET /v1/checkpoints/{id}/structure?field=&snap=
// — the serialized topology governing the requested snapshot (its stream's
// most recent keyframe at or before snap). Visualization clients register it
// to rebuild the mesh without replaying any field data.
func (s *Server) handleCheckpointStructure(w http.ResponseWriter, r *http.Request) error {
	if err := s.requireStore(); err != nil {
		return err
	}
	m, err := s.loadManifest(r.PathValue("id"))
	if err != nil {
		return err
	}
	name := r.URL.Query().Get(wire.ParamField)
	if name == "" {
		name = m.Fields[0].Name
	}
	f, err := manifestField(m, name)
	if err != nil {
		return err
	}
	snap, err := snapParam(r, len(f.Frames))
	if err != nil {
		return err
	}
	key := -1
	for i := snap; i >= 0; i-- {
		if f.Frames[i].Keyframe {
			key = i
			break
		}
	}
	if key < 0 {
		// ParseManifest enforces keyframe-first; reaching here means the
		// store served a manifest the seal path could not have written.
		return fmt.Errorf("checkpoint field %q has no keyframe at or before snapshot %d", name, snap)
	}
	frame, err := s.loadFrame(&f.Frames[key])
	if err != nil {
		return err
	}
	h := w.Header()
	h.Set("Content-Type", wire.ContentTypeBinary)
	h.Set(wire.HeaderSnapshot, strconv.Itoa(snap))
	h.Set(wire.HeaderSnapshots, strconv.Itoa(len(f.Frames)))
	_, err = w.Write(frame.Structure)
	return err
}

// handleCheckpointField: GET /v1/checkpoints/{id}/fields/{field} with
// optional ?snap=N and one of ?levels=K / ?tiers=K. The default response is
// the full level-order reconstruction as chunk-framed float64-LE; levels=K
// serves the coarse prefix covering the first K refinement levels in the
// same framing; tiers=K serves a batch of K multilevel tiers with strictly
// decreasing error bounds (decode any prefix for a bounded-error preview).
func (s *Server) handleCheckpointField(w http.ResponseWriter, r *http.Request) error {
	if err := s.requireStore(); err != nil {
		return err
	}
	m, err := s.loadManifest(r.PathValue("id"))
	if err != nil {
		return err
	}
	f, err := manifestField(m, r.PathValue("field"))
	if err != nil {
		return err
	}
	snap, err := snapParam(r, len(f.Frames))
	if err != nil {
		return err
	}
	q := r.URL.Query()
	levelsStr, tiersStr := q.Get(wire.ParamLevels), q.Get(wire.ParamTiers)
	if levelsStr != "" && tiersStr != "" {
		return badRequest(fmt.Errorf("%s and %s are mutually exclusive", wire.ParamLevels, wire.ParamTiers))
	}

	field, mesh, err := s.replayField(f, snap)
	if err != nil {
		return err
	}
	values := zmesh.FieldValues(field)
	s.mStore.reads.Inc()

	h := w.Header()
	h.Set(wire.HeaderSnapshot, strconv.Itoa(snap))
	h.Set(wire.HeaderSnapshots, strconv.Itoa(len(f.Frames)))
	h.Set(wire.HeaderMeshLevels, strconv.Itoa(mesh.MaxLevel()+1))

	if tiersStr != "" {
		k, err := strconv.Atoi(tiersStr)
		if err != nil || k < 1 || k > maxReadTiers {
			return badRequest(fmt.Errorf("bad %s parameter %q (want 1..%d)", wire.ParamTiers, tiersStr, maxReadTiers))
		}
		return s.writeTiers(w, values, k)
	}

	out := values
	levels := mesh.MaxLevel() + 1
	if levelsStr != "" {
		k, err := strconv.Atoi(levelsStr)
		if err != nil {
			return badRequest(fmt.Errorf("bad %s parameter %q", wire.ParamLevels, levelsStr))
		}
		n, err := zmesh.LevelPrefixCells(mesh, k)
		if err != nil {
			return badRequest(err)
		}
		out = values[:n]
		levels = k
		s.mStore.levelReads.Inc()
	}
	h.Set(wire.HeaderLevels, strconv.Itoa(levels))
	h.Set("Content-Type", wire.ContentTypeChunked)
	raw, ok := wire.ViewBytes(out)
	if !ok {
		raw = wire.AppendFloats(nil, out)
	}
	if err := writeChunked(w, raw); err != nil {
		return committed(err)
	}
	return nil
}

// writeTiers compresses values into k progressive tiers (relative bounds
// 10^-1 .. 10^-k) and writes them as one batch stream, each section named
// "tier" with the tier's guaranteed absolute bound in the section metadata.
func (s *Server) writeTiers(w http.ResponseWriter, values []float64, k int) error {
	bounds := make([]float64, k)
	b := 0.1
	for i := range bounds {
		bounds[i] = b
		b /= 10
	}
	tiers, err := multilevel.New().CompressProgressive(values, []int{len(values)}, compress.Rel, bounds)
	if err != nil {
		return fmt.Errorf("tiering reconstruction: %w", err)
	}
	s.mStore.tierReads.Inc()
	h := w.Header()
	h.Set(wire.HeaderTiers, strconv.Itoa(len(tiers)))
	h.Set("Content-Type", wire.ContentTypeBatch)
	bw := wire.NewBatchWriter(w)
	for _, t := range tiers {
		meta := strconv.FormatFloat(t.Bound, 'g', -1, 64)
		if err := bw.WriteSection("tier", meta, t.Payload); err != nil {
			return committed(err)
		}
	}
	if err := bw.Close(); err != nil {
		return committed(err)
	}
	return nil
}
