package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wire"
)

// serveOnEphemeral boots a Server via Serve (the path that publishes the
// per-address expvar key) and returns its listen address.
func serveOnEphemeral(t testing.TB, cfg Config) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ln.Addr().String()
}

// TestVarsNamespacedPerAddress pins the /debug/vars key shape several
// daemons in one process (the cluster harness, in-process cluster tests)
// rely on: each listener publishes its registry under "zmeshd.<addr>", so
// per-replica metrics stay distinguishable even though expvar is global.
func TestVarsNamespacedPerAddress(t *testing.T) {
	m, _ := testMesh(t)
	s1, addr1 := serveOnEphemeral(t, Config{})
	_, addr2 := serveOnEphemeral(t, Config{})

	resp := rawRegister(t, "http://"+addr1, m.Structure())
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}

	// Either listener's /debug/vars page carries every key (expvar is
	// process-global); what matters is that the keys are distinct and each
	// maps to its own server's registry.
	resp, err := http.Get("http://" + addr2 + wire.PathVars)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}

	key1, key2 := VarsKey(addr1), VarsKey(addr2)
	if key1 == key2 {
		t.Fatalf("both servers share vars key %q", key1)
	}
	for _, key := range []string{key1, key2} {
		if !strings.HasPrefix(key, ExpvarName+".127.0.0.1:") {
			t.Fatalf("vars key %q does not follow %q + \".\" + listen address", key, ExpvarName)
		}
		if _, ok := page[key]; !ok {
			t.Fatalf("/debug/vars has no key %q (keys: %v)", key, keysOf(page))
		}
	}

	var snap1, snap2 telemetry.Snapshot
	if err := json.Unmarshal(page[key1], &snap1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(page[key2], &snap2); err != nil {
		t.Fatal(err)
	}
	if got := snap1.Counters["server.mesh.registered"]; got != 1 {
		t.Fatalf("server 1 mesh.registered via vars = %d, want 1", got)
	}
	if got := snap2.Counters["server.mesh.registered"]; got != 0 {
		t.Fatalf("server 2 mesh.registered via vars = %d, want 0 (registries leaked across keys)", got)
	}
	// The in-process view and the scraped view must agree.
	if got := s1.Registry().Counter("server.mesh.registered").Load(); got != snap1.Counters["server.mesh.registered"] {
		t.Fatalf("scraped counter %d != in-process counter %d", snap1.Counters["server.mesh.registered"], got)
	}
}

func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
