package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	zmesh "repro"
	"repro/client"
	"repro/internal/compress"
	"repro/internal/compress/multilevel"
	"repro/internal/wire"
)

// Temporal subsystem tests: session lifecycle, eviction/restart recovery,
// the distinct error contract (404 / 409 / 412), exactly-once appends, the
// wire-path validate-first-commit-last guarantee under codec fault
// injection, and persistence across a simulated daemon restart.

// temporalConfig is the baseline store-enabled server config.
func temporalConfig(t testing.TB) Config {
	t.Helper()
	return Config{StoreDir: t.TempDir()}
}

func temporalOptions() zmesh.Options {
	return zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "sz"}
}

// snapField samples one evolving quantity on m: phase advances the solution
// so successive snapshots are temporally correlated (delta-friendly) but not
// identical.
func snapField(m *zmesh.Mesh, name string, phase float64) *zmesh.Field {
	return zmesh.SampleField(m, name, func(x, y, z float64) float64 {
		return math.Sin(5*x+phase)*math.Cos(4*y-0.3*phase) + 0.1*x*y
	})
}

// mirrorDecoders tracks the client-side expectation: every accepted frame is
// replayed through a local TemporalDecoder per field, giving the bit-exact
// reconstruction the server's reads must reproduce.
type mirrorDecoders map[string]*zmesh.TemporalDecoder

func (md mirrorDecoders) apply(t testing.TB, field string, frame *zmesh.TemporalCompressed) []float64 {
	t.Helper()
	dec := md[field]
	if dec == nil {
		dec = zmesh.NewTemporalDecoder()
		md[field] = dec
	}
	f, err := dec.DecompressSnapshot(frame)
	if err != nil {
		t.Fatalf("mirror decode %s: %v", field, err)
	}
	return append([]float64(nil), zmesh.FieldValues(f)...)
}

// TestTemporalLifecycle streams a 3-snapshot, 2-quantity run through a
// temporal session, seals it, and verifies every read surface: the JSON
// summary, bit-exact full reads of every snapshot, the structure read, the
// coarse level-prefix read, and the tiered read with its strictly-decreasing
// guaranteed bounds.
func TestTemporalLifecycle(t *testing.T) {
	m, _ := testMesh(t)
	_, cl := newTestServer(t, temporalConfig(t))
	ctx := context.Background()

	sess, err := cl.NewTemporalSession(ctx, temporalOptions())
	if err != nil {
		t.Fatal(err)
	}
	const snaps = 3
	fields := []string{"dens", "pres"}
	mirror := mirrorDecoders{}
	want := map[string][][]float64{} // field -> snap -> values

	for si := 0; si < snaps; si++ {
		for _, name := range fields {
			f := snapField(m, name, 0.2*float64(si))
			res, err := sess.Append(ctx, f, zmesh.AbsBound(1e-3))
			if err != nil {
				t.Fatalf("append %s snap %d: %v", name, si, err)
			}
			if res.Recovered {
				t.Fatalf("append %s snap %d: unexpected recovery", name, si)
			}
			if res.FrameIndex != si {
				t.Fatalf("append %s snap %d: frame index %d", name, si, res.FrameIndex)
			}
			if (si == 0) != res.Keyframe {
				t.Fatalf("append %s snap %d: keyframe=%v (topology is static)", name, si, res.Keyframe)
			}
			want[name] = append(want[name], mirror.apply(t, name, res.Frame))
		}
	}
	ckpt, err := sess.Seal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Seal(ctx); !errors.Is(err, client.ErrSessionSealed) {
		t.Fatalf("second seal: %v, want ErrSessionSealed", err)
	}

	info, err := cl.CheckpointInfo(ctx, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Fields) != len(fields) {
		t.Fatalf("checkpoint has %d fields, want %d", len(info.Fields), len(fields))
	}
	for i, fi := range info.Fields {
		if fi.Name != fields[i] {
			t.Fatalf("field %d is %q, want %q (manifest must keep stream order)", i, fi.Name, fields[i])
		}
		if fi.Snapshots != snaps || fi.Keyframes != 1 {
			t.Fatalf("field %q: %d snapshots / %d keyframes, want %d / 1", fi.Name, fi.Snapshots, fi.Keyframes, snaps)
		}
		if fi.Layout != "zmesh" || fi.Curve != "hilbert" || fi.Codec != "sz" {
			t.Fatalf("field %q identity %s/%s/%s", fi.Name, fi.Layout, fi.Curve, fi.Codec)
		}
	}

	// Full reads: every snapshot of every field, bit-exact vs the mirror.
	for _, name := range fields {
		for si := 0; si < snaps; si++ {
			got, err := cl.ReadField(ctx, ckpt, name, si)
			if err != nil {
				t.Fatalf("read %s snap %d: %v", name, si, err)
			}
			assertBitExact(t, fmt.Sprintf("%s snap %d", name, si), got, want[name][si])
		}
		// snap < 0 defaults to the last snapshot.
		got, err := cl.ReadField(ctx, ckpt, name, -1)
		if err != nil {
			t.Fatal(err)
		}
		assertBitExact(t, name+" default snap", got, want[name][snaps-1])
	}

	// Structure read rebuilds the exact topology.
	structure, err := cl.CheckpointStructure(ctx, ckpt, "dens", -1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(structure, m.Structure()) {
		t.Fatal("checkpoint structure differs from the source mesh structure")
	}

	// Level-prefix read: the prefix must equal the full read's head, and
	// reconstructing it must reproduce the delivered levels exactly.
	full := want["dens"][snaps-1]
	dec, err := zmesh.NewDecoderFromStructure(structure)
	if err != nil {
		t.Fatal(err)
	}
	mesh := dec.Mesh()
	for k := 1; k <= mesh.MaxLevel()+1; k++ {
		ld, err := cl.ReadFieldLevels(ctx, ckpt, "dens", -1, k)
		if err != nil {
			t.Fatalf("levels=%d: %v", k, err)
		}
		if ld.Levels != k || ld.MeshLevels != mesh.MaxLevel()+1 || ld.Snapshot != snaps-1 || ld.Snapshots != snaps {
			t.Fatalf("levels=%d: headers %+v", k, ld)
		}
		n, err := zmesh.LevelPrefixCells(mesh, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(ld.Values) != n {
			t.Fatalf("levels=%d: %d values, want %d", k, len(ld.Values), n)
		}
		assertBitExact(t, fmt.Sprintf("levels=%d prefix", k), ld.Values, full[:n])
		if _, err := zmesh.ReconstructPartialLevels(mesh, "dens", ld.Values, k); err != nil {
			t.Fatalf("levels=%d: reconstruct: %v", k, err)
		}
	}

	// Tiered read: bounds strictly decrease and every bound is honored by the
	// reconstruction of its prefix.
	td, err := cl.ReadFieldTiers(ctx, ckpt, "dens", -1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Tiers) != 3 {
		t.Fatalf("got %d tiers, want 3", len(td.Tiers))
	}
	for i := 1; i < len(td.Bounds); i++ {
		if !(td.Bounds[i] < td.Bounds[i-1]) {
			t.Fatalf("tier bounds not strictly decreasing: %v", td.Bounds)
		}
	}
	for k := 1; k <= len(td.Tiers); k++ {
		prefix, err := multilevel.New().DecompressProgressive(td.Tiers[:k])
		if err != nil {
			t.Fatalf("decoding %d-tier prefix: %v", k, err)
		}
		maxErr := 0.0
		for i := range prefix {
			if d := math.Abs(prefix[i] - full[i]); d > maxErr {
				maxErr = d
			}
		}
		if maxErr > td.Bounds[k-1]+1e-12 {
			t.Fatalf("tier prefix %d: max error %g exceeds guaranteed bound %g", k, maxErr, td.Bounds[k-1])
		}
	}
}

func assertBitExact(t testing.TB, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: value %d: %x != %x", what, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// restartableServer serves a swappable *Server behind one stable URL, so a
// "daemon restart" (all sessions lost, store directory kept) can happen
// without the client noticing an address change.
type restartableServer struct {
	cur atomic.Pointer[Server]
	ts  *httptest.Server
	cfg Config
}

func newRestartableServer(t testing.TB, cfg Config) *restartableServer {
	t.Helper()
	rs := &restartableServer{cfg: cfg}
	rs.cur.Store(New(cfg))
	rs.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rs.cur.Load().Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(rs.ts.Close)
	return rs
}

// restart replaces the running server with a fresh one over the same store
// directory — exactly what a SIGTERM + re-exec does to session state.
func (rs *restartableServer) restart() { rs.cur.Store(New(rs.cfg)) }

// TestCheckpointSurvivesRestart seals a run, restarts the daemon over the
// same store directory, and requires every read to stay bit-exact.
func TestCheckpointSurvivesRestart(t *testing.T) {
	m, _ := testMesh(t)
	rs := newRestartableServer(t, temporalConfig(t))
	cl := client.New(rs.ts.URL, client.WithBackoff(time.Millisecond, 50*time.Millisecond))
	ctx := context.Background()

	sess, err := cl.NewTemporalSession(ctx, temporalOptions())
	if err != nil {
		t.Fatal(err)
	}
	mirror := mirrorDecoders{}
	var want [][]float64
	for si := 0; si < 3; si++ {
		res, err := sess.Append(ctx, snapField(m, "dens", 0.2*float64(si)), zmesh.AbsBound(1e-3))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, mirror.apply(t, "dens", res.Frame))
	}
	ckpt, err := sess.Seal(ctx)
	if err != nil {
		t.Fatal(err)
	}

	rs.restart()

	for si := range want {
		got, err := cl.ReadField(ctx, ckpt, "dens", si)
		if err != nil {
			t.Fatalf("post-restart read snap %d: %v", si, err)
		}
		assertBitExact(t, fmt.Sprintf("post-restart snap %d", si), got, want[si])
	}
	info, err := cl.CheckpointInfo(ctx, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Fields) != 1 || info.Fields[0].Snapshots != 3 {
		t.Fatalf("post-restart summary: %+v", info)
	}
}

// TestTemporalRecovery is the eviction/recovery table: however the server
// loses session state (idle TTL, capacity pressure, daemon restart), the
// client's next append must transparently re-establish it with a forced
// keyframe, and the run sealed afterwards must replay bit-exactly — the
// recovery path may lose unsealed history but can never corrupt what it
// keeps.
func TestTemporalRecovery(t *testing.T) {
	cases := []struct {
		name string
		cfg  func(t *testing.T) Config
		// evict drops the client's session server-side between snapshots.
		evict func(t *testing.T, rs *restartableServer, cl *client.Client)
	}{
		{
			name: "ttl-eviction",
			cfg: func(t *testing.T) Config {
				c := temporalConfig(t)
				c.SessionTTL = time.Minute
				return c
			},
			evict: func(t *testing.T, rs *restartableServer, cl *client.Client) {
				// Age the registry clock past the TTL; the next lookup sweeps.
				s := rs.cur.Load()
				s.sessions.now = func() time.Time { return time.Now().Add(2 * time.Minute) }
			},
		},
		{
			name: "capacity-eviction",
			cfg: func(t *testing.T) Config {
				c := temporalConfig(t)
				c.MaxSessions = 1
				return c
			},
			evict: func(t *testing.T, rs *restartableServer, cl *client.Client) {
				// A second attaching run evicts the oldest session.
				if _, err := cl.NewTemporalSession(context.Background(), temporalOptions()); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "daemon-restart",
			cfg:  func(t *testing.T) Config { return temporalConfig(t) },
			evict: func(t *testing.T, rs *restartableServer, cl *client.Client) {
				rs.restart()
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, _ := testMesh(t)
			rs := newRestartableServer(t, tc.cfg(t))
			cl := client.New(rs.ts.URL, client.WithBackoff(time.Millisecond, 50*time.Millisecond))
			ctx := context.Background()

			sess, err := cl.NewTemporalSession(ctx, temporalOptions())
			if err != nil {
				t.Fatal(err)
			}
			oldID := sess.ID()
			// Snapshot 0 lands in the doomed session; it is lost with it
			// (never sealed), which is the documented soft-state contract.
			if _, err := sess.Append(ctx, snapField(m, "dens", 0), zmesh.AbsBound(1e-3)); err != nil {
				t.Fatal(err)
			}

			tc.evict(t, rs, cl)

			mirror := mirrorDecoders{}
			var want [][]float64
			res, err := sess.Append(ctx, snapField(m, "dens", 0.2), zmesh.AbsBound(1e-3))
			if err != nil {
				t.Fatalf("append after %s: %v", tc.name, err)
			}
			if !res.Recovered {
				t.Fatalf("append after %s did not report recovery", tc.name)
			}
			if !res.Keyframe || !res.Forced {
				t.Fatalf("recovery frame keyframe=%v forced=%v, want forced keyframe", res.Keyframe, res.Forced)
			}
			if res.FrameIndex != 0 {
				t.Fatalf("recovery frame index %d, want 0 (fresh stream)", res.FrameIndex)
			}
			if sess.ID() == oldID {
				t.Fatal("recovery kept the evicted session id")
			}
			want = append(want, mirror.apply(t, "dens", res.Frame))

			// The run continues with plain deltas.
			res, err = sess.Append(ctx, snapField(m, "dens", 0.4), zmesh.AbsBound(1e-3))
			if err != nil {
				t.Fatal(err)
			}
			if res.Recovered || res.Keyframe {
				t.Fatalf("post-recovery append recovered=%v keyframe=%v, want plain delta", res.Recovered, res.Keyframe)
			}
			want = append(want, mirror.apply(t, "dens", res.Frame))

			ckpt, err := sess.Seal(ctx)
			if err != nil {
				t.Fatal(err)
			}
			for si := range want {
				got, err := cl.ReadField(ctx, ckpt, "dens", si)
				if err != nil {
					t.Fatalf("read snap %d: %v", si, err)
				}
				assertBitExact(t, fmt.Sprintf("%s snap %d", tc.name, si), got, want[si])
			}
		})
	}
}

// rawFrames encodes a short keyframe+delta sequence for the raw-HTTP tests.
func rawFrames(t testing.TB, m *zmesh.Mesh, field string, n int) [][]byte {
	t.Helper()
	enc, err := zmesh.NewTemporalEncoder(temporalOptions())
	if err != nil {
		t.Fatal(err)
	}
	frames := make([][]byte, n)
	for i := range frames {
		tc, err := enc.CompressSnapshot(snapField(m, field, 0.2*float64(i)), zmesh.AbsBound(1e-3))
		if err != nil {
			t.Fatal(err)
		}
		frames[i], err = wire.EncodeTemporalFrame(&wire.TemporalFrame{
			Keyframe:  tc.Keyframe,
			Field:     tc.FieldName,
			Layout:    tc.Layout.String(),
			Curve:     tc.Curve,
			Codec:     tc.Codec,
			NumValues: tc.NumValues,
			Bound:     tc.Bound,
			Structure: tc.Structure,
			Payload:   tc.Payload,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return frames
}

// postFrame is a raw, retry-free frame POST; it returns status and body.
func postFrame(t testing.TB, base, sid, field string, seq int, frame []byte) (int, string) {
	t.Helper()
	url := base + wire.SessionFramesPath(sid, field)
	if seq >= 0 {
		url += "?" + wire.ParamSeq + "=" + strconv.Itoa(seq)
	}
	resp, err := http.Post(url, wire.ContentTypeTemporal, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func createRawSession(t testing.TB, base string) string {
	t.Helper()
	resp, err := http.Post(base+wire.PathSessions, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("session create: status %d", resp.StatusCode)
	}
	var sr wire.SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr.SessionID
}

// TestTemporalDistinctErrors pins the error contract recovery keys off:
// unknown session (404), dangling delta (409), sequence divergence (412),
// and the 503 of a daemon started without -store. Each failure mode must be
// distinguishable by status code alone.
func TestTemporalDistinctErrors(t *testing.T) {
	m, _ := testMesh(t)
	frames := rawFrames(t, m, "dens", 2)

	t.Run("store-disabled", func(t *testing.T) {
		s := New(Config{})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		resp, err := http.Post(ts.URL+wire.PathSessions, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("session create without store: %d, want 503", resp.StatusCode)
		}
		resp, err = http.Get(ts.URL + wire.CheckpointInfoPath("0123"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("checkpoint read without store: %d, want 503", resp.StatusCode)
		}
	})

	s := New(temporalConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	t.Run("unknown-session", func(t *testing.T) {
		code, body := postFrame(t, ts.URL, "deadbeef", "dens", 0, frames[0])
		if code != http.StatusNotFound || !strings.Contains(body, "unknown or evicted") {
			t.Fatalf("status %d body %q, want 404 unknown-or-evicted", code, body)
		}
	})
	t.Run("dangling-delta", func(t *testing.T) {
		sid := createRawSession(t, ts.URL)
		code, body := postFrame(t, ts.URL, sid, "dens", 0, frames[1]) // delta first
		if code != http.StatusConflict || !strings.Contains(body, "before any keyframe") {
			t.Fatalf("status %d body %q, want 409 dangling-delta", code, body)
		}
		// The stream is not wedged: the keyframe recovers it.
		if code, body := postFrame(t, ts.URL, sid, "dens", 0, frames[0]); code != http.StatusOK {
			t.Fatalf("keyframe after dangling delta: %d %q", code, body)
		}
	})
	t.Run("seq-divergence", func(t *testing.T) {
		sid := createRawSession(t, ts.URL)
		if code, body := postFrame(t, ts.URL, sid, "dens", 0, frames[0]); code != http.StatusOK {
			t.Fatalf("keyframe: %d %q", code, body)
		}
		// A frame claiming a future (or stale, different-bytes) sequence is
		// refused without touching the stream.
		code, body := postFrame(t, ts.URL, sid, "dens", 5, frames[1])
		if code != http.StatusPreconditionFailed || !strings.Contains(body, "resync required") {
			t.Fatalf("status %d body %q, want 412 resync-required", code, body)
		}
		code, body = postFrame(t, ts.URL, sid, "dens", 0, frames[1])
		if code != http.StatusPreconditionFailed {
			t.Fatalf("stale seq with different bytes: %d %q, want 412", code, body)
		}
		// The correct sequence still lands.
		if code, body := postFrame(t, ts.URL, sid, "dens", 1, frames[1]); code != http.StatusOK {
			t.Fatalf("in-order delta after divergence attempts: %d %q", code, body)
		}
	})
	t.Run("field-mismatch", func(t *testing.T) {
		sid := createRawSession(t, ts.URL)
		code, body := postFrame(t, ts.URL, sid, "pres", 0, frames[0])
		if code != http.StatusBadRequest || !strings.Contains(body, "posted to stream") {
			t.Fatalf("status %d body %q, want 400 field-mismatch", code, body)
		}
	})
	t.Run("seal-empty", func(t *testing.T) {
		sid := createRawSession(t, ts.URL)
		resp, err := http.Post(ts.URL+wire.SessionSealPath(sid), "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("sealing empty session: %d, want 400", resp.StatusCode)
		}
	})
}

// TestTemporalIdempotentReplay pins the exactly-once contract: re-posting
// the stream's final frame (lost response, client retry) is acknowledged
// again without growing the stream, while different bytes at the same stale
// sequence are refused.
func TestTemporalIdempotentReplay(t *testing.T) {
	m, _ := testMesh(t)
	frames := rawFrames(t, m, "dens", 2)
	s := New(temporalConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sid := createRawSession(t, ts.URL)
	code, body := postFrame(t, ts.URL, sid, "dens", 0, frames[0])
	if code != http.StatusOK {
		t.Fatalf("keyframe: %d %q", code, body)
	}
	var first wire.FrameResponse
	if err := json.Unmarshal([]byte(body), &first); err != nil {
		t.Fatal(err)
	}

	// Retry of the same bytes at the previous sequence: replayed ack.
	code, body = postFrame(t, ts.URL, sid, "dens", 0, frames[0])
	if code != http.StatusOK {
		t.Fatalf("idempotent replay: %d %q", code, body)
	}
	var replay wire.FrameResponse
	if err := json.Unmarshal([]byte(body), &replay); err != nil {
		t.Fatal(err)
	}
	if replay != first {
		t.Fatalf("replay response %+v differs from original %+v", replay, first)
	}

	// The stream did not grow: the next frame still lands at index 1.
	code, body = postFrame(t, ts.URL, sid, "dens", 1, frames[1])
	if code != http.StatusOK {
		t.Fatalf("delta after replay: %d %q", code, body)
	}
	var next wire.FrameResponse
	if err := json.Unmarshal([]byte(body), &next); err != nil {
		t.Fatal(err)
	}
	if next.FrameIndex != 1 {
		t.Fatalf("frame after replay landed at index %d, want 1", next.FrameIndex)
	}
}

// wireFlakyCodec extends the temporal fault-injection pattern to the wire
// path: Compress always works (the client encodes fine) but Decompress fails
// while armed, so the failure fires inside the server's validating decoder.
type wireFlakyCodec struct {
	inner compress.Compressor
	fail  *atomic.Bool
}

var wireFlakyFail atomic.Bool

func init() {
	compress.Register("test-flaky-wire", func() compress.Compressor {
		inner, err := compress.Get("sz")
		if err != nil {
			panic(err)
		}
		return &wireFlakyCodec{inner: inner, fail: &wireFlakyFail}
	})
}

func (c *wireFlakyCodec) Name() string { return "test-flaky-wire" }
func (c *wireFlakyCodec) Compress(data []float64, dims []int, b compress.Bound) ([]byte, error) {
	return c.inner.Compress(data, dims, b)
}
func (c *wireFlakyCodec) Decompress(buf []byte) ([]float64, error) {
	if c.fail.Load() {
		return nil, errors.New("injected wire-path codec failure")
	}
	return c.inner.Decompress(buf)
}

// TestTemporalWireFaultInjection drives the server's validate-first-
// commit-last contract: a frame whose decode fails (transient codec fault)
// must be rejected with 400 while leaving the stream exactly where it was —
// the same frame retried at the same sequence is then accepted, and the
// sealed checkpoint replays bit-exactly as if the fault never happened.
func TestTemporalWireFaultInjection(t *testing.T) {
	m, _ := testMesh(t)
	opt := zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "test-flaky-wire"}
	enc, err := zmesh.NewTemporalEncoder(opt)
	if err != nil {
		t.Fatal(err)
	}
	wireFlakyFail.Store(false)
	defer wireFlakyFail.Store(false)

	s := New(temporalConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sid := createRawSession(t, ts.URL)

	mirror := zmesh.NewTemporalDecoder()
	var want [][]float64
	for si := 0; si < 3; si++ {
		tc, err := enc.CompressSnapshot(snapField(m, "dens", 0.2*float64(si)), zmesh.AbsBound(1e-3))
		if err != nil {
			t.Fatal(err)
		}
		frame, err := wire.EncodeTemporalFrame(&wire.TemporalFrame{
			Keyframe: tc.Keyframe, Field: tc.FieldName, Layout: tc.Layout.String(),
			Curve: tc.Curve, Codec: tc.Codec, NumValues: tc.NumValues,
			Bound: tc.Bound, Structure: tc.Structure, Payload: tc.Payload,
		})
		if err != nil {
			t.Fatal(err)
		}
		if si == 1 {
			// Fault the server-side decode of the mid-stream delta.
			wireFlakyFail.Store(true)
			code, body := postFrame(t, ts.URL, sid, "dens", si, frame)
			if code != http.StatusBadRequest || !strings.Contains(body, "frame rejected") {
				t.Fatalf("faulted frame: %d %q, want 400 frame-rejected", code, body)
			}
			wireFlakyFail.Store(false)
		}
		// The same frame at the same sequence lands once the fault clears:
		// the rejected attempt committed nothing.
		code, body := postFrame(t, ts.URL, sid, "dens", si, frame)
		if code != http.StatusOK {
			t.Fatalf("frame %d: %d %q", si, code, body)
		}
		var fr wire.FrameResponse
		if err := json.Unmarshal([]byte(body), &fr); err != nil {
			t.Fatal(err)
		}
		if fr.FrameIndex != si {
			t.Fatalf("frame %d landed at index %d (stream advanced on a rejected frame)", si, fr.FrameIndex)
		}
		f, err := mirror.DecompressSnapshot(tc)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, append([]float64(nil), zmesh.FieldValues(f)...))
	}

	resp, err := http.Post(ts.URL+wire.SessionSealPath(sid), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var seal wire.SealResponse
	if err := json.NewDecoder(resp.Body).Decode(&seal); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if seal.Frames != 3 {
		t.Fatalf("sealed %d frames, want 3", seal.Frames)
	}

	cl := client.New(ts.URL, client.WithBackoff(time.Millisecond, 50*time.Millisecond))
	for si := range want {
		got, err := cl.ReadField(context.Background(), seal.CheckpointID, "dens", si)
		if err != nil {
			t.Fatalf("read snap %d: %v", si, err)
		}
		assertBitExact(t, fmt.Sprintf("snap %d", si), got, want[si])
	}
}
