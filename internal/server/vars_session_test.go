package server

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	zmesh "repro"
	"repro/client"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// TestVarsTemporalKeyShape pins the /debug/vars key shape of the temporal
// subsystem: every server.session.* and server.store.* counter, plus the
// admission counters of the four temporal endpoints, must appear on the
// scraped page under this server's key — dashboards and the e2e harness
// alert on these exact names. The pin runs a real lifecycle so the load-
// bearing counters are provably wired, not just registered.
func TestVarsTemporalKeyShape(t *testing.T) {
	m, _ := testMesh(t)
	cfg := temporalConfig(t)
	s, addr := serveOnEphemeral(t, cfg)
	cl := client.New("http://"+addr, client.WithBackoff(time.Millisecond, 50*time.Millisecond))
	ctx := context.Background()

	sess, err := cl.NewTemporalSession(ctx, temporalOptions())
	if err != nil {
		t.Fatal(err)
	}
	for si := 0; si < 2; si++ {
		if _, err := sess.Append(ctx, snapField(m, "dens", 0.2*float64(si)), zmesh.AbsBound(1e-3)); err != nil {
			t.Fatal(err)
		}
	}
	ckpt, err := sess.Seal(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadField(ctx, ckpt, "dens", -1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadFieldLevels(ctx, ckpt, "dens", -1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ReadFieldTiers(ctx, ckpt, "dens", -1, 2); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + wire.PathVars)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(page[VarsKey(addr)], &snap); err != nil {
		t.Fatal(err)
	}

	// Exact key inventory: a rename here breaks scrapers, so spell every
	// key out rather than deriving them.
	keys := []string{
		"server.session.active",
		"server.session.created",
		"server.session.evicted",
		"server.session.sealed",
		"server.session.frames",
		"server.session.forced_keyframes",
		"server.session.dangling_deltas",
		"server.store.objects",
		"server.store.artifact_bytes",
		"server.store.dedup_hits",
		"server.store.checkpoints",
		"server.store.reads",
		"server.store.level_reads",
		"server.store.tier_reads",
	}
	for _, ep := range []string{"session_create", "session_frame", "session_seal", "checkpoint_read"} {
		keys = append(keys,
			"server."+ep+".requests",
			"server."+ep+".errors",
			"server."+ep+".shed",
			"server."+ep+".inflight",
		)
	}
	for _, key := range keys {
		if _, ok := snap.Counters[key]; !ok {
			t.Errorf("scraped snapshot is missing counter %q", key)
		}
	}

	// The lifecycle above fixes these values exactly.
	for key, want := range map[string]int64{
		"server.session.created":          1,
		"server.session.sealed":           1,
		"server.session.active":           0,
		"server.session.frames":           2,
		"server.session.evicted":          0,
		"server.session.forced_keyframes": 0,
		"server.session.dangling_deltas":  0,
		"server.store.objects":            2,
		"server.store.checkpoints":        1,
		"server.store.reads":              3,
		"server.store.level_reads":        1,
		"server.store.tier_reads":         1,
		"server.session_create.requests":  1,
		"server.session_frame.requests":   2,
		"server.session_seal.requests":    1,
		"server.checkpoint_read.requests": 3,
		"server.session_frame.errors":     0,
		"server.checkpoint_read.errors":   0,
	} {
		if got := snap.Counters[key]; got != want {
			t.Errorf("counter %q = %d, want %d", key, got, want)
		}
	}

	// Scraped and in-process views agree.
	if got := s.Registry().Counter("server.store.checkpoints").Load(); got != snap.Counters["server.store.checkpoints"] {
		t.Fatalf("scraped store.checkpoints %d != in-process %d", snap.Counters["server.store.checkpoints"], got)
	}
}
