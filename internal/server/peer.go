package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	zmesh "repro"
	"repro/internal/cluster"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Cluster mode. A zmeshd replica configured with a ring (Config.Ring +
// Config.Self) becomes one shard of a horizontal cluster:
//
//   - GET /v1/ring serves the placement config so routing clients compute
//     the same owner lists the replicas do.
//   - GET /v1/meshes/{id}/structure serves the raw structure bytes of a
//     registered mesh — the peer-fetch primitive. Structure bytes are the
//     preimage of the mesh id, so the fetching side can (and must) verify
//     the SHA-256 before trusting them.
//   - A compress/decompress request for a mesh this replica has never seen
//     no longer 404s outright: if this replica owns the id, it pulls the
//     structure from a peer owner, verifies the hash, registers it locally
//     and rebuilds the recipe — so a replica that restarted empty heals
//     itself from its peers instead of erroring until every client
//     re-registers. If this replica does NOT own the id, it answers 421
//     Misdirected Request, telling the routing client its ring is stale.
//
// Corruption never propagates: a peer response whose SHA-256 does not match
// the requested id (truncation, bit flips, a different structure) is
// discarded and the request fails 502 Bad Gateway — the mesh registry stays
// content-addressed even across replica boundaries. See DESIGN.md "Cluster
// architecture".

// peerMetrics counts the cluster-mode traffic of one replica.
type peerMetrics struct {
	fetches     *telemetry.Counter // structures successfully pulled from a peer
	errors      *telemetry.Counter // peer fetch attempts that failed (per peer)
	corrupt     *telemetry.Counter // peer responses rejected by hash/decode
	misdirected *telemetry.Counter // 421s served to misrouted clients
	served      *telemetry.Counter // structure bytes served to peers/clients
}

func newPeerMetrics(r *zmesh.Registry) *peerMetrics {
	return &peerMetrics{
		fetches:     r.Counter("server.peer.fetches"),
		errors:      r.Counter("server.peer.errors"),
		corrupt:     r.Counter("server.peer.corrupt"),
		misdirected: r.Counter("server.peer.misdirected"),
		served:      r.Counter("server.peer.structure_served"),
	}
}

// misdirected is the 421 a replica answers when asked about a mesh id it
// does not own (and has not cached): the routing client reacts by
// re-fetching /v1/ring and re-routing rather than retrying here.
func misdirected(id string) error {
	return &httpError{
		status: http.StatusMisdirectedRequest,
		err:    fmt.Errorf("mesh %s is not owned by this replica (stale ring? refresh %s)", id, wire.PathRing),
	}
}

// badGateway wraps peer-fetch failures: retryable by clients (the next
// owner may have the structure) but distinct from this replica's own 5xx.
func badGateway(err error) error {
	return &httpError{status: http.StatusBadGateway, err: err}
}

// resolveMesh is the cluster-aware mesh lookup every data endpoint goes
// through. Local hits — including meshes this replica no longer owns after
// a ring change — are served as before; availability beats strict
// ownership for data already on hand. On a miss:
//
//	single-node:    404 (the PR-4 contract, unchanged)
//	owner miss:     pull the structure from a peer owner, register, serve
//	non-owner miss: 421 so the client re-routes
func (s *Server) resolveMesh(ctx context.Context, id string) (*meshEntry, error) {
	if e, ok := s.store.lookup(id); ok {
		return e, nil
	}
	if s.cfg.Ring == nil {
		return nil, notFound("mesh %s not registered", id)
	}
	if !s.cfg.Ring.IsOwner(s.cfg.Self, id) {
		s.mPeer.misdirected.Inc()
		return nil, misdirected(id)
	}
	return s.fetchFromPeers(ctx, id)
}

// fetchFromPeers tries the other owners of id in placement order, verifying
// each response against the content address before registering it. The
// error reflects the worst thing seen: corruption or a failing peer maps to
// 502 (retryable — another replica may still serve the client), while
// clean everywhere-404 means the mesh genuinely is not registered anywhere
// and stays a 404.
func (s *Server) fetchFromPeers(ctx context.Context, id string) (*meshEntry, error) {
	var sawCorrupt, sawError bool
	for _, node := range s.cfg.Ring.Owners(id) {
		if node == s.cfg.Self {
			continue
		}
		structure, err := s.fetchStructure(ctx, node, id)
		if err != nil {
			if errors.Is(err, errPeerMiss) {
				continue
			}
			s.mPeer.errors.Inc()
			sawError = true
			continue
		}
		if cluster.MeshID(structure) != id {
			// The peer handed back bytes that are not the preimage of the
			// id — truncated, bit-flipped, or a different mesh entirely.
			// Never register them: that would poison a content-addressed
			// cache for every later client of this replica.
			s.mPeer.corrupt.Inc()
			sawCorrupt = true
			continue
		}
		entry, _, err := s.store.register(structure)
		if err != nil {
			// Hash-valid but undecodable bytes mean the content address was
			// minted from a structure this build cannot parse; treat it as
			// peer corruption, not a client error.
			s.mPeer.corrupt.Inc()
			sawCorrupt = true
			continue
		}
		s.mPeer.fetches.Inc()
		return entry, nil
	}
	switch {
	case sawCorrupt:
		return nil, badGateway(fmt.Errorf("peer returned corrupt structure for mesh %s", id))
	case sawError:
		return nil, badGateway(fmt.Errorf("fetching structure for mesh %s from peers failed", id))
	default:
		return nil, notFound("mesh %s not registered on any owner", id)
	}
}

// errPeerMiss marks a clean 404 from a peer (it simply has not seen the
// mesh), distinguishing it from transport failures and bad responses.
var errPeerMiss = errors.New("peer does not have the mesh")

// fetchStructure GETs one peer's structure endpoint, bounded by the
// configured peer timeout and the server's own body cap.
func (s *Server) fetchStructure(ctx context.Context, node, id string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+wire.StructurePath(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.peerClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, errPeerMiss
	case resp.StatusCode != http.StatusOK:
		return nil, fmt.Errorf("peer %s returned %d", node, resp.StatusCode)
	}
	// +1 so a peer streaming more than the cap is detected as oversized
	// rather than silently truncated into a hash mismatch.
	body, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		return nil, fmt.Errorf("peer %s structure exceeds body cap", node)
	}
	return body, nil
}

// handleStructure: GET /v1/meshes/{id}/structure — the raw registered
// structure bytes. Deliberately outside admission control (instrumented's
// semaphore): peer fetches are how a replica heals after restart, and a
// 429 storm on the data endpoints must not be able to starve recovery.
func (s *Server) handleStructure(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	entry, ok := s.store.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("mesh %s not registered", id))
		return
	}
	s.mPeer.served.Inc()
	w.Header().Set("Content-Type", wire.ContentTypeBinary)
	w.Header().Set(wire.HeaderNumValues, "0")
	_, _ = w.Write(entry.structure)
}

// handleRing: GET /v1/ring — the placement config, or 404 on a single-node
// daemon (a routing client treats that as "degenerate single-shard ring").
func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	ring := s.cfg.Ring
	if ring == nil {
		writeError(w, http.StatusNotFound, errors.New("not running in cluster mode"))
		return
	}
	w.Header().Set("Content-Type", wire.ContentTypeJSON)
	_ = json.NewEncoder(w).Encode(wire.RingResponse{
		Nodes:       ring.Nodes(),
		VNodes:      ring.VNodes(),
		Replication: ring.Replication(),
		Self:        s.cfg.Self,
	})
}

// defaultPeerTimeout bounds each peer structure fetch when the config does
// not say otherwise.
const defaultPeerTimeout = 5 * time.Second
