package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	zmesh "repro"
	"repro/internal/wire"
)

// The TAC layout must flow through the service byte-identically to the
// library: compress on the server, compare against the in-process encoder,
// decompress through both the buffered and chunked-stream endpoints.
func TestServerTACRoundTrip(t *testing.T) {
	m, f := testMesh(t)
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()
	id, err := cl.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	opt := zmesh.Options{Layout: zmesh.LayoutTAC, Curve: "hilbert", Codec: "sz"}
	got, err := cl.CompressField(ctx, id, f, opt, testBound())
	if err != nil {
		t.Fatal(err)
	}
	if got.Layout != zmesh.LayoutTAC {
		t.Fatalf("artifact layout %v, want tac", got.Layout)
	}
	enc, err := zmesh.NewEncoder(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := enc.CompressField(f, testBound())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("server TAC payload differs from library payload (%d vs %d bytes)",
			len(got.Payload), len(want.Payload))
	}
	values, err := cl.Decompress(ctx, id, got)
	if err != nil {
		t.Fatal(err)
	}
	orig := zmesh.FieldValues(f)
	eb := testBound().Absolute(orig)
	for i := range orig {
		if d := orig[i] - values[i]; d > eb || d < -eb {
			t.Fatalf("value %d error %g exceeds bound %g", i, d, eb)
		}
	}
	var sb strings.Builder
	if _, err := cl.DecompressStream(ctx, id, got, &sb); err != nil {
		t.Fatalf("decompress-stream of TAC artifact: %v", err)
	}
}

// LayoutAuto through the service: the response must record the concrete
// winner, match the library's seed-0 pick byte for byte, and round-trip
// with nothing beyond the recorded metadata.
func TestServerAutoCompress(t *testing.T) {
	m, f := testMesh(t)
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()
	id, err := cl.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	opt := zmesh.Options{Layout: zmesh.LayoutAuto, Curve: "hilbert", Codec: "sz"}
	got, err := cl.CompressField(ctx, id, f, opt, testBound())
	if err != nil {
		t.Fatal(err)
	}
	if got.Layout == zmesh.LayoutAuto {
		t.Fatal("server response records the pseudo-layout instead of the winner")
	}
	enc, err := zmesh.NewEncoder(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := enc.CompressField(f, testBound())
	if err != nil {
		t.Fatal(err)
	}
	if got.Layout != want.Layout || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("server auto pick %v differs from library pick %v", got.Layout, want.Layout)
	}
	if _, err := cl.Decompress(ctx, id, got); err != nil {
		t.Fatalf("decompress of auto-compressed artifact: %v", err)
	}
}

// The decode-side endpoints must reject layout=auto with an explicit 400 —
// an unsupported layout is the client's mistake, never a 500 and never a
// silent fallback to some default order.
func TestServerRejectsAutoOnDecodePaths(t *testing.T) {
	m, _ := testMesh(t)
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+wire.PathMeshes, wire.ContentTypeBinary, bytes.NewReader(m.Structure()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := MeshID(m.Structure())
	for _, path := range []string{
		wire.DecompressPath(id) + "?layout=auto",
		wire.DecompressStreamPath(id) + "?layout=auto",
		wire.CheckpointPath(id) + "?layout=auto&bound=rel:1e-3",
	} {
		resp, err := http.Post(ts.URL+path, wire.ContentTypeBinary, bytes.NewReader([]byte{1, 2, 3, 4}))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %q)", path, resp.StatusCode, body)
		}
	}
	// An unknown layout name must also be a 400, on encode and decode alike.
	for _, path := range []string{
		wire.CompressPath(id) + "?layout=bogus&bound=abs:1e-3",
		wire.DecompressPath(id) + "?layout=bogus",
	} {
		resp, err := http.Post(ts.URL+path, wire.ContentTypeBinary, bytes.NewReader([]byte{1, 2, 3, 4}))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}
