package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/wire"
)

// TestMaxBodyBytes413 pins the request-size cap: an over-limit body must
// yield 413 with the standard JSON error shape — both when the client
// declares Content-Length (rejected before the body is read or any decode
// buffer is sized) and when it streams chunked (stopped by the
// MaxBytesReader at the cap). A 400 here would mislead clients into
// retrying the same oversized request.
func TestMaxBodyBytes413(t *testing.T) {
	m, _ := testMesh(t)
	structure := m.Structure()
	limit := int64(len(structure) + 512)
	s := New(Config{MaxBodyBytes: limit})
	post(t, s.Handler(), wire.PathMeshes, structure, http.StatusCreated)
	id := MeshID(structure)

	oversized := make([]byte, limit+8)
	paths := map[string]string{
		"compress":   wire.CompressPath(id) + "?bound=abs:1e-3",
		"decompress": wire.DecompressPath(id),
		"register":   wire.PathMeshes,
	}
	for name, path := range paths {
		t.Run(name+"/content-length", func(t *testing.T) {
			// bytes.Reader bodies carry Content-Length, so the pre-read check fires.
			rec := post(t, s.Handler(), path, oversized, http.StatusRequestEntityTooLarge)
			assertJSONError(t, rec)
		})
		t.Run(name+"/chunked", func(t *testing.T) {
			// A bare io.Reader leaves ContentLength unset; the cap must still
			// hold via the MaxBytesReader installed around the body.
			req := httptest.NewRequest(http.MethodPost, path, io.MultiReader(bytes.NewReader(oversized)))
			req.Header.Set("Content-Type", wire.ContentTypeBinary)
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusRequestEntityTooLarge {
				t.Fatalf("chunked oversize body: status %d (body %q), want 413", rec.Code, rec.Body.String())
			}
			assertJSONError(t, rec)
		})
	}

	// An in-limit request on the same server still succeeds: the cap must
	// not leak into the accept path.
	rec := post(t, s.Handler(), wire.PathMeshes, structure, http.StatusOK)
	_ = rec
}

func assertJSONError(t *testing.T, rec *httptest.ResponseRecorder) {
	t.Helper()
	var er wire.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Fatalf("error body %q is not a JSON ErrorResponse", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != wire.ContentTypeJSON {
		t.Fatalf("error Content-Type = %q, want %q", ct, wire.ContentTypeJSON)
	}
}
