package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	zmesh "repro"
	"repro/client"
)

// testMesh builds the deterministic topology and field shared by the server
// tests: a 2×2-root 8²-block 2D mesh with two refined roots.
func testMesh(t testing.TB) (*zmesh.Mesh, *zmesh.Field) {
	t.Helper()
	m, err := zmesh.NewMesh(2, 8, [3]int{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Refine(m.Roots()[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Refine(m.Roots()[2]); err != nil {
		t.Fatal(err)
	}
	f := zmesh.SampleField(m, "dens", func(x, y, z float64) float64 {
		return math.Sin(5*x)*math.Cos(4*y) + 0.1*x*y
	})
	return m, f
}

func testBound() zmesh.Bound { return zmesh.AbsBound(1e-3) }

// newTestServer boots a Server on an httptest listener and returns it with
// a retrying client.
func newTestServer(t testing.TB, cfg Config) (*Server, *client.Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL, client.WithBackoff(time.Millisecond, 50*time.Millisecond), client.WithMaxRetries(20))
	return s, cl
}

// TestRoundTripAllCodecs pins the acceptance criterion: a field compressed
// via the server and decompressed via the client is bit-identical to the
// pure-library path, for every registered codec — and the on-wire payload
// itself matches the library's artifact byte for byte.
func TestRoundTripAllCodecs(t *testing.T) {
	m, f := testMesh(t)
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()
	id, err := cl.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if want := MeshID(m.Structure()); id != want {
		t.Fatalf("mesh id %s, want %s", id, want)
	}
	for _, codec := range zmesh.Codecs() {
		if strings.HasPrefix(codec, "test-") {
			continue // test-registered stubs (alloc_test.go) are not protocol codecs
		}
		codec := codec
		t.Run(codec, func(t *testing.T) {
			opt := zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: codec}
			got, err := cl.CompressField(ctx, id, f, opt, testBound())
			if err != nil {
				t.Fatal(err)
			}
			enc, err := zmesh.NewEncoder(m, opt)
			if err != nil {
				t.Fatal(err)
			}
			want, err := enc.CompressField(f, testBound())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Payload, want.Payload) {
				t.Fatalf("server payload differs from library payload (%d vs %d bytes)", len(got.Payload), len(want.Payload))
			}
			if got.NumValues != want.NumValues || got.Codec != want.Codec || got.Curve != want.Curve || got.Layout != want.Layout {
				t.Fatalf("artifact metadata differs: %+v vs %+v", got, want)
			}
			values, err := cl.Decompress(ctx, id, got)
			if err != nil {
				t.Fatal(err)
			}
			libField, err := zmesh.NewDecoder(m).DecompressField(want)
			if err != nil {
				t.Fatal(err)
			}
			libValues := zmesh.FieldValues(libField)
			if len(values) != len(libValues) {
				t.Fatalf("got %d values, library yields %d", len(values), len(libValues))
			}
			for i := range values {
				if math.Float64bits(values[i]) != math.Float64bits(libValues[i]) {
					t.Fatalf("value %d: server path %x, library path %x", i,
						math.Float64bits(values[i]), math.Float64bits(libValues[i]))
				}
			}
		})
	}
}

// TestRegisterIdempotent: re-registering the same structure returns the
// same content-addressed ID without creating a second entry, and a corrupt
// structure is rejected with 400 (no retries burned).
func TestRegisterIdempotent(t *testing.T) {
	m, _ := testMesh(t)
	s, cl := newTestServer(t, Config{})
	ctx := context.Background()
	id1, err := cl.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := cl.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("re-registration changed the id: %s vs %s", id1, id2)
	}
	if got := s.Registry().Counter("server.mesh.registered").Load(); got != 1 {
		t.Fatalf("registered counter = %d, want 1", got)
	}
	if _, err := cl.RegisterMesh(ctx, []byte("not a structure")); err == nil {
		t.Fatal("corrupt structure registered successfully")
	} else {
		var se *client.StatusError
		if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
			t.Fatalf("corrupt structure: got %v, want 400 StatusError", err)
		}
	}
}

// TestAdmissionShed sets the semaphore to 2, saturates it, and asserts that
// an excess request is shed with 429 + Retry-After — and that the retrying
// client eventually succeeds once capacity frees up.
func TestAdmissionShed(t *testing.T) {
	m, f := testMesh(t)
	s, cl := newTestServer(t, Config{MaxInflight: 2, RetryAfter: time.Second})
	ctx := context.Background()
	id, err := cl.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}

	// Saturate both admission slots from the test.
	s.sem <- struct{}{}
	s.sem <- struct{}{}

	values := zmesh.FieldValues(f)
	done := make(chan error, 1)
	go func() {
		_, err := cl.Compress(ctx, id, "dens", values, zmesh.DefaultOptions(), testBound())
		done <- err
	}()

	// The retrying client must be observing sheds while the slots are held.
	shed := s.Registry().Counter("server.compress.shed")
	waitFor(t, 5*time.Second, func() bool { return shed.Load() > 0 })

	// Free the slots; the client's backoff must now succeed.
	<-s.sem
	<-s.sem
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("retrying client failed after capacity freed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("retrying client did not complete after capacity freed")
	}
}

// TestShedResponseShape checks the raw 429: Retry-After header and JSON
// error body.
func TestShedResponseShape(t *testing.T) {
	s := New(Config{MaxInflight: 1, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	resp, err := http.Post(ts.URL+"/v1/meshes", "application/octet-stream", bytes.NewReader([]byte{1}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", ra)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte("capacity")) {
		t.Fatalf("shed body %q carries no capacity message", body)
	}
}

// TestConcurrentClients is the race-detector hammer: 16 concurrent clients
// compress and decompress against a semaphore of 2, so load shedding, the
// client backoff, the encoder cache and the decoder recipe cache all run
// concurrently. Every request must eventually succeed.
func TestConcurrentClients(t *testing.T) {
	m, f := testMesh(t)
	_, cl := newTestServer(t, Config{MaxInflight: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	id, err := cl.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	values := zmesh.FieldValues(f)
	curves := []string{"hilbert", "morton", "rowmajor"}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opt := zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: curves[g%len(curves)], Codec: "sz"}
			for iter := 0; iter < 3; iter++ {
				c, err := cl.Compress(ctx, id, "dens", values, opt, testBound())
				if err != nil {
					errs[g] = err
					return
				}
				out, err := cl.Decompress(ctx, id, c)
				if err != nil {
					errs[g] = err
					return
				}
				if len(out) != len(values) {
					errs[g] = errors.New("length mismatch")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", g, err)
		}
	}
}

// TestCacheHitKeepsRecipeBuildsFlat pins the amortization criterion: the
// second compress request against an already-registered mesh must not
// rebuild the recipe — the recipe.builds counter stays flat on a cache hit
// and moves only when a new (layout, curve, codec) pipeline is requested.
func TestCacheHitKeepsRecipeBuildsFlat(t *testing.T) {
	m, f := testMesh(t)
	s, cl := newTestServer(t, Config{})
	ctx := context.Background()
	id, err := cl.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	builds := s.Registry().Counter("recipe.builds")
	hits := s.Registry().Counter("server.cache.hits")

	opt := zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "sz"}
	if _, err := cl.CompressField(ctx, id, f, opt, testBound()); err != nil {
		t.Fatal(err)
	}
	afterFirst := builds.Load()
	if afterFirst == 0 {
		t.Fatal("first compress did not record a recipe build")
	}
	if _, err := cl.CompressField(ctx, id, f, opt, testBound()); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != afterFirst {
		t.Fatalf("recipe.builds moved %d → %d on a cache hit", afterFirst, got)
	}
	if hits.Load() == 0 {
		t.Fatal("second compress did not count a cache hit")
	}
	// A different curve is a different pipeline: exactly one more build.
	opt.Curve = "morton"
	if _, err := cl.CompressField(ctx, id, f, opt, testBound()); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != afterFirst+1 {
		t.Fatalf("recipe.builds = %d after new curve, want %d", got, afterFirst+1)
	}
}

// TestDrain pins graceful shutdown: with a request still in flight (its
// body held open), Shutdown must wait for it to complete successfully
// before Serve returns.
func TestDrain(t *testing.T) {
	m, _ := testMesh(t)
	s := New(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	ctx := context.Background()
	cl := client.New(base)
	if _, err := cl.Register(ctx, m); err != nil {
		t.Fatal(err)
	}

	// Hold a register request in flight by streaming its body slowly: the
	// handler blocks reading until the pipe is closed.
	pr, pw := io.Pipe()
	reqDone := make(chan error, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/meshes", pr)
		if err != nil {
			reqDone <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			reqDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
			body, _ := io.ReadAll(resp.Body)
			reqDone <- errors.New("in-flight request failed: " + resp.Status + " " + string(body))
			return
		}
		reqDone <- nil
	}()
	structure := m.Structure()
	if _, err := pw.Write(structure[:1]); err != nil {
		t.Fatal(err)
	}
	inflight := s.Registry().Counter("server.register.inflight")
	waitFor(t, 5*time.Second, func() bool { return inflight.Load() > 0 })

	// Begin the drain while the request is still open.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Give Shutdown a moment to start, then finish the request body.
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v before the in-flight request completed", err)
	default:
	}
	if _, err := pw.Write(structure[1:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

// TestEndpointMetrics checks the latency/request accounting end to end.
func TestEndpointMetrics(t *testing.T) {
	m, f := testMesh(t)
	s, cl := newTestServer(t, Config{})
	ctx := context.Background()
	id, err := cl.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cl.CompressField(ctx, id, f, zmesh.DefaultOptions(), testBound())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Decompress(ctx, id, c); err != nil {
		t.Fatal(err)
	}
	reg := s.Registry()
	for _, name := range []string{"server.register.requests", "server.compress.requests", "server.decompress.requests"} {
		if reg.Counter(name).Load() == 0 {
			t.Fatalf("%s = 0 after a full round trip", name)
		}
	}
	for _, name := range []string{"server.compress.latency", "server.decompress.latency"} {
		if reg.Timer(name).TotalNs() == 0 {
			t.Fatalf("%s recorded no time", name)
		}
	}
	// Unknown mesh must 404 without a retry storm.
	_, err = cl.Compress(ctx, "deadbeef", "x", zmesh.FieldValues(f), zmesh.DefaultOptions(), testBound())
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("unknown mesh: got %v, want 404", err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
