package server

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	zmesh "repro"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Temporal sessions: the server-side half of a simulation's temporal stream.
// A session holds one TemporalDecoder per quantity; every posted frame is
// fully decoded (the decoder's validate-first-commit-last contract) before
// its raw bytes are persisted to the content-addressed artifact store, so a
// sealed checkpoint only ever references frames the server proved it can
// replay. Sessions are soft state by design: idle ones are evicted, restarts
// drop them all, and recovery is always the same cheap move — the client
// re-attaches and sends a forced keyframe, never replaying history and never
// resuming a stream whose server state silently diverged.

// sessionMetrics is the server.session.* counter set (see vars_session_test
// for the pinned key shape).
type sessionMetrics struct {
	active          *telemetry.Counter
	created         *telemetry.Counter
	evicted         *telemetry.Counter
	sealed          *telemetry.Counter
	frames          *telemetry.Counter
	forcedKeyframes *telemetry.Counter
	danglingDeltas  *telemetry.Counter
}

func newSessionMetrics(r *zmesh.Registry) *sessionMetrics {
	return &sessionMetrics{
		active:          r.Counter("server.session.active"),
		created:         r.Counter("server.session.created"),
		evicted:         r.Counter("server.session.evicted"),
		sealed:          r.Counter("server.session.sealed"),
		frames:          r.Counter("server.session.frames"),
		forcedKeyframes: r.Counter("server.session.forced_keyframes"),
		danglingDeltas:  r.Counter("server.session.dangling_deltas"),
	}
}

// storeMetrics is the server.store.* counter set.
type storeMetrics struct {
	objects       *telemetry.Counter
	artifactBytes *telemetry.Counter
	dedupHits     *telemetry.Counter
	checkpoints   *telemetry.Counter
	reads         *telemetry.Counter
	levelReads    *telemetry.Counter
	tierReads     *telemetry.Counter
}

func newStoreMetrics(r *zmesh.Registry) *storeMetrics {
	return &storeMetrics{
		objects:       r.Counter("server.store.objects"),
		artifactBytes: r.Counter("server.store.artifact_bytes"),
		dedupHits:     r.Counter("server.store.dedup_hits"),
		checkpoints:   r.Counter("server.store.checkpoints"),
		reads:         r.Counter("server.store.reads"),
		levelReads:    r.Counter("server.store.level_reads"),
		tierReads:     r.Counter("server.store.tier_reads"),
	}
}

// tstream is one quantity's stream inside a session: the validating decoder
// plus the manifest rows accumulated so far.
type tstream struct {
	dec    *zmesh.TemporalDecoder
	layout zmesh.Layout
	curve  string
	codec  string
	frames []wire.ManifestFrame
}

// tsession is one attached simulation run. Its mutex serializes frame
// appends per session (temporal order is the whole point); the registry
// mutex is never held across a decode. Lock order is always sess.mu before
// reg.mu (the frame handler poisons while appending); the registry therefore
// never touches sess.mu — gone is atomic and lastUsed is guarded by reg.mu.
type tsession struct {
	id string
	// gone latches when the session was evicted or poisoned while a handler
	// still held a pointer to it: the handler re-checks it under mu and
	// refuses to touch decoder state that is no longer registered.
	gone atomic.Bool
	// lastUsed is the idle clock, guarded by the registry mutex.
	lastUsed time.Time

	mu      sync.Mutex
	streams map[string]*tstream
	order   []string
}

// sessionRegistry owns the live sessions: TTL eviction is lazy (checked on
// every lookup and create), capacity eviction is oldest-first on create.
type sessionRegistry struct {
	mu       sync.Mutex
	sessions map[string]*tsession
	ttl      time.Duration
	max      int
	// now is the clock, a field so eviction tests can age sessions without
	// sleeping.
	now func() time.Time
	m   *sessionMetrics
}

func newSessionRegistry(ttl time.Duration, max int, m *sessionMetrics) *sessionRegistry {
	return &sessionRegistry{
		sessions: make(map[string]*tsession),
		ttl:      ttl,
		max:      max,
		now:      time.Now,
		m:        m,
	}
}

// evictLocked removes sess (already looked up) under reg.mu.
func (reg *sessionRegistry) evictLocked(sess *tsession) {
	sess.gone.Store(true)
	delete(reg.sessions, sess.id)
	reg.m.evicted.Inc()
	reg.m.active.Add(-1)
}

// sweepLocked evicts every session idle past the TTL.
func (reg *sessionRegistry) sweepLocked(now time.Time) {
	for _, sess := range reg.sessions {
		if now.Sub(sess.lastUsed) > reg.ttl {
			reg.evictLocked(sess)
		}
	}
}

// create mints a new session, evicting the oldest one if the registry is at
// capacity.
func (reg *sessionRegistry) create() (*tsession, error) {
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return nil, fmt.Errorf("minting session id: %w", err)
	}
	sess := &tsession{
		id:      hex.EncodeToString(raw[:]),
		streams: make(map[string]*tstream),
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	now := reg.now()
	sess.lastUsed = now
	reg.sweepLocked(now)
	for len(reg.sessions) >= reg.max {
		var oldest *tsession
		for _, c := range reg.sessions {
			if oldest == nil || c.lastUsed.Before(oldest.lastUsed) {
				oldest = c
			}
		}
		reg.evictLocked(oldest)
	}
	reg.sessions[sess.id] = sess
	reg.m.created.Inc()
	reg.m.active.Inc()
	return sess, nil
}

// get returns the live session with the given id, refreshing its idle clock,
// or nil if it does not exist (never created, evicted, sealed, or lost to a
// restart — indistinguishable by design).
func (reg *sessionRegistry) get(id string) *tsession {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	now := reg.now()
	reg.sweepLocked(now)
	sess := reg.sessions[id]
	if sess == nil {
		return nil
	}
	sess.lastUsed = now
	return sess
}

// remove unregisters the session (seal path). It returns false if the
// session was already gone.
func (reg *sessionRegistry) remove(sess *tsession) bool {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, ok := reg.sessions[sess.id]; !ok {
		return false
	}
	sess.gone.Store(true)
	delete(reg.sessions, sess.id)
	reg.m.active.Add(-1)
	return true
}

// poison drops a session whose decoder state advanced past what the store
// persisted (an object write failed after a successful decode). Keeping it
// would fork the stream: the server would accept deltas against a frame no
// reader can ever fetch.
func (reg *sessionRegistry) poison(sess *tsession) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, ok := reg.sessions[sess.id]; ok {
		reg.evictLocked(sess)
	}
}

// errStoreDisabled is returned by every temporal endpoint when zmeshd runs
// without a store directory.
var errStoreDisabled = &httpError{
	status: http.StatusServiceUnavailable,
	err:    errors.New("temporal store disabled (start zmeshd with -store)"),
}

func (s *Server) requireStore() error {
	if s.artifacts == nil {
		return errStoreDisabled
	}
	return nil
}

// handleSessionCreate: POST /v1/sessions. The response carries the opaque
// session id every stream and seal call names.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) error {
	if err := s.requireStore(); err != nil {
		return err
	}
	sess, err := s.sessions.create()
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", wire.ContentTypeJSON)
	w.WriteHeader(http.StatusCreated)
	return json.NewEncoder(w).Encode(wire.SessionResponse{SessionID: sess.id})
}

// sessionUnknown is the distinct signal for "re-create the session and force
// keyframes": 404 with a stable message. Clients treat it as the recovery
// trigger after an eviction or a daemon restart.
func sessionUnknown(id string) error {
	return notFound("session %s unknown or evicted", id)
}

// danglingDelta is the distinct signal for "this one stream lost its
// baseline": 409, narrower than sessionUnknown — the session itself is fine
// and the client recovers by re-sending this snapshot as a forced keyframe.
func danglingDelta(field string) error {
	return &httpError{
		status: http.StatusConflict,
		err:    fmt.Errorf("delta frame for field %q before any keyframe (send a keyframe to recover)", field),
	}
}

// seqMismatch is the distinct signal for "this stream's history diverged
// from the client's": 412, meaning neither a plain retry nor a keyframe at
// the client's sequence can reconcile — the client must resync (re-create
// the session) rather than risk a silently forked stream.
func seqMismatch(field string, want, got uint64) error {
	return &httpError{
		status: http.StatusPreconditionFailed,
		err:    fmt.Errorf("stream %q is at frame %d, client sent sequence %d (resync required)", field, want, got),
	}
}

// handleSessionFrame: POST /v1/sessions/{sid}/streams/{field}/frames, body =
// one ZMT1 temporal frame. The frame is decoded end-to-end before anything
// is persisted or committed, so a bad frame (corrupt payload, identity
// mismatch, codec failure) leaves both the decoder and the store untouched.
func (s *Server) handleSessionFrame(w http.ResponseWriter, r *http.Request) error {
	if err := s.requireStore(); err != nil {
		return err
	}
	sess := s.sessions.get(r.PathValue("sid"))
	if sess == nil {
		return sessionUnknown(r.PathValue("sid"))
	}
	fieldName := r.PathValue("field")

	sc := scratchPool.Get().(*requestScratch)
	defer putScratch(sc)
	var err error
	sc.body, err = s.readBody(r, sc.body)
	if err != nil {
		return badRequest(fmt.Errorf("reading frame: %w", err))
	}
	frame, err := wire.ParseTemporalFrame(sc.body)
	if err != nil {
		return badRequest(err)
	}
	if frame.Field != fieldName {
		return badRequest(fmt.Errorf("frame is for field %q, posted to stream %q", frame.Field, fieldName))
	}
	layout, err := core.ParseLayout(frame.Layout)
	if err != nil {
		return badRequest(err)
	}
	if layout == zmesh.LayoutAuto {
		return badRequest(fmt.Errorf("temporal frames must record a concrete layout: %w", zmesh.ErrAutoLayout))
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.gone.Load() {
		// Evicted between lookup and lock: same contract as never found.
		return sessionUnknown(sess.id)
	}
	st := sess.streams[fieldName]
	cur := 0
	if st != nil {
		cur = len(st.frames)
	}
	if seqStr := r.URL.Query().Get(wire.ParamSeq); seqStr != "" {
		seq, err := strconv.ParseUint(seqStr, 10, 32)
		if err != nil {
			return badRequest(fmt.Errorf("bad %s parameter %q", wire.ParamSeq, seqStr))
		}
		if st != nil && seq == uint64(cur-1) {
			// A retry of the frame the stream already ends with (same index,
			// same bytes) is acknowledged again without decoding or
			// appending: the first attempt's response was lost, not the
			// frame. Content addressing makes the comparison exact.
			last := &st.frames[cur-1]
			sum := sha256.Sum256(sc.body)
			if last.Object == hex.EncodeToString(sum[:]) {
				w.Header().Set("Content-Type", wire.ContentTypeJSON)
				return json.NewEncoder(w).Encode(wire.FrameResponse{
					Field:      fieldName,
					FrameIndex: cur - 1,
					Keyframe:   last.Keyframe,
					Forced:     last.Forced,
					Object:     last.Object,
					Bytes:      last.Bytes,
				})
			}
		}
		if seq != uint64(cur) {
			return seqMismatch(fieldName, uint64(cur), seq)
		}
	}
	if st == nil {
		if !frame.Keyframe {
			s.mSession.danglingDeltas.Inc()
			return danglingDelta(fieldName)
		}
		st = &tstream{dec: zmesh.NewTemporalDecoder(), layout: layout, curve: frame.Curve, codec: frame.Codec}
	} else if layout != st.layout || frame.Curve != st.curve || frame.Codec != st.codec {
		return badRequest(fmt.Errorf("frame identity %s/%s/%s does not match stream %s/%s/%s",
			frame.Layout, frame.Curve, frame.Codec, st.layout, st.curve, st.codec))
	}

	tc := &zmesh.TemporalCompressed{
		Compressed: zmesh.Compressed{
			FieldName: frame.Field,
			Layout:    layout,
			Curve:     frame.Curve,
			Codec:     frame.Codec,
			NumValues: frame.NumValues,
			Payload:   frame.Payload,
		},
		Keyframe:  frame.Keyframe,
		Structure: frame.Structure,
		Bound:     frame.Bound,
	}
	if _, err := st.dec.DecompressSnapshot(tc); err != nil {
		// Validate-first-commit-last: the decoder did not advance, the store
		// was never touched, and the client may retry the same frame index.
		return badRequest(fmt.Errorf("frame rejected: %w", err))
	}

	object, createdObj, err := s.artifacts.PutObject(sc.body)
	if err != nil {
		// The decoder committed but the frame bytes did not persist: any
		// future delta would chain off a frame no reader can fetch. Poison
		// the session so the client recovers through the keyframe path
		// instead of silently forking the stream.
		s.sessions.poison(sess)
		return fmt.Errorf("persisting frame (session dropped, re-create and send a keyframe): %w", err)
	}
	if createdObj {
		s.mStore.objects.Inc()
		s.mStore.artifactBytes.Add(int64(len(sc.body)))
	} else {
		s.mStore.dedupHits.Inc()
	}
	if sess.streams[fieldName] == nil {
		sess.streams[fieldName] = st
		sess.order = append(sess.order, fieldName)
	}
	st.frames = append(st.frames, wire.ManifestFrame{
		Keyframe:  frame.Keyframe,
		Forced:    frame.Forced,
		NumValues: frame.NumValues,
		Bound:     frame.Bound,
		Bytes:     int64(len(sc.body)),
		Object:    object,
	})
	s.mSession.frames.Inc()
	if frame.Forced {
		s.mSession.forcedKeyframes.Inc()
	}

	w.Header().Set("Content-Type", wire.ContentTypeJSON)
	return json.NewEncoder(w).Encode(wire.FrameResponse{
		Field:      fieldName,
		FrameIndex: len(st.frames) - 1,
		Keyframe:   frame.Keyframe,
		Forced:     frame.Forced,
		Object:     object,
		Bytes:      int64(len(sc.body)),
	})
}

// handleSessionSeal: POST /v1/sessions/{sid}/seal. Sealing writes the
// manifest — the checkpoint becomes durable and readable — and retires the
// session; the returned checkpoint id is the manifest's content address.
func (s *Server) handleSessionSeal(w http.ResponseWriter, r *http.Request) error {
	if err := s.requireStore(); err != nil {
		return err
	}
	sess := s.sessions.get(r.PathValue("sid"))
	if sess == nil {
		return sessionUnknown(r.PathValue("sid"))
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.gone.Load() {
		return sessionUnknown(sess.id)
	}
	if len(sess.order) == 0 {
		return badRequest(errors.New("session has no frames to seal"))
	}
	m := &wire.Manifest{Fields: make([]wire.ManifestField, 0, len(sess.order))}
	frames, bytes := 0, int64(0)
	for _, name := range sess.order {
		st := sess.streams[name]
		m.Fields = append(m.Fields, wire.ManifestField{
			Name:   name,
			Layout: st.layout.String(),
			Curve:  st.curve,
			Codec:  st.codec,
			Frames: st.frames,
		})
		frames += len(st.frames)
		for _, fr := range st.frames {
			bytes += fr.Bytes
		}
	}
	encoded, err := wire.EncodeManifest(m)
	if err != nil {
		return fmt.Errorf("encoding manifest: %w", err)
	}
	id, err := s.artifacts.PutManifest(encoded)
	if err != nil {
		return fmt.Errorf("persisting manifest: %w", err)
	}
	// The manifest is durable; only now retire the session. A re-seal of an
	// already-removed session answers 404 like any other post-seal use.
	if !s.sessions.remove(sess) {
		return sessionUnknown(sess.id)
	}
	s.mSession.sealed.Inc()
	s.mStore.checkpoints.Inc()
	w.Header().Set("Content-Type", wire.ContentTypeJSON)
	return json.NewEncoder(w).Encode(wire.SealResponse{
		CheckpointID: id,
		Fields:       len(m.Fields),
		Frames:       frames,
		Bytes:        bytes,
	})
}
