package server

import "container/list"

// lruEntry is one key/value pair on the recency list.
type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// lru is a fixed-capacity least-recently-used map. It is not safe for
// concurrent use — callers guard it with their own lock (the caches in this
// package serialize map operations and do the expensive work, recipe
// construction, outside the lock via futures).
type lru[K comparable, V any] struct {
	cap     int
	ll      *list.List // front = most recent; elements hold *lruEntry[K,V]
	items   map[K]*list.Element
	onEvict func(K, V) // called for capacity evictions, not explicit removes
}

// newLRU creates an LRU holding at most capacity entries (capacity must be
// positive). onEvict may be nil.
func newLRU[K comparable, V any](capacity int, onEvict func(K, V)) *lru[K, V] {
	return &lru[K, V]{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[K]*list.Element, capacity),
		onEvict: onEvict,
	}
}

// get returns the value for key and marks it most recently used.
func (c *lru[K, V]) get(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// add inserts (or refreshes) key → val as most recently used, evicting the
// least recently used entry when over capacity.
func (c *lru[K, V]) add(key K, val V) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry[K, V]).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[K, V]{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		ent := oldest.Value.(*lruEntry[K, V])
		c.ll.Remove(oldest)
		delete(c.items, ent.key)
		if c.onEvict != nil {
			c.onEvict(ent.key, ent.val)
		}
	}
}

// remove deletes key without invoking the eviction callback.
func (c *lru[K, V]) remove(key K) {
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// len reports the current entry count.
func (c *lru[K, V]) len() int { return c.ll.Len() }
