// Package server implements zmeshd: an HTTP compression service around the
// zMesh pipeline. A client registers a serialized mesh structure once and
// then streams fields through compress/decompress endpoints; the server
// amortizes recipe construction across requests with content-addressed
// encoder/decoder caches (the paper's overhead claim, made cross-process),
// sheds load past a bounded in-flight budget with 429 + Retry-After, and
// drains gracefully on shutdown. See DESIGN.md "Service architecture".
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	zmesh "repro"
	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/core"
	cstore "repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// ExpvarName is the expvar key the server's telemetry registry is published
// under (visible on /debug/vars).
const ExpvarName = "zmeshd"

// VarsKey is the per-replica expvar key: "zmeshd.<listen-address>". The
// bare ExpvarName is process-global and always tracks the newest server —
// fine for a daemon, useless when a test or harness runs N replicas in one
// process (or scrapes N daemons generically). Serve additionally publishes
// the registry under this address-scoped key, so every replica's counters
// stay reachable without collisions; vars_test.go pins the shape.
func VarsKey(listenAddr string) string { return ExpvarName + "." + listenAddr }

// Config sizes the server. The zero value is usable: every field has a
// production-sane default applied by New.
type Config struct {
	// MaxMeshes bounds the registered-mesh LRU (default 64). Evicted meshes
	// return 404 until re-registered.
	MaxMeshes int
	// MaxEncoders bounds the (mesh, layout, curve, codec) encoder LRU
	// (default 256).
	MaxEncoders int
	// MaxInflight is the admission budget: at most this many register,
	// compress or decompress requests run concurrently; the rest are shed
	// with 429 (default 2 × GOMAXPROCS).
	MaxInflight int
	// RetryAfter is the hint returned with 429 responses, rounded up to
	// whole seconds for the Retry-After header (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes caps request bodies (default 1 GiB).
	MaxBodyBytes int64
	// Registry receives all server, pipeline and recipe telemetry. New
	// creates a private registry when nil; pass one to share it with
	// zmesh.PublishMetrics / expvar.
	Registry *zmesh.Registry

	// Ring enables cluster mode: the consistent-hash placement this replica
	// shares with every peer (see internal/cluster and peer.go). nil keeps
	// the single-node behavior of earlier releases.
	Ring *cluster.Ring
	// Self is this replica's advertised base URL. Required with Ring, and
	// must be a ring member — placement decisions compare it against owner
	// lists verbatim.
	Self string
	// PeerTimeout bounds each peer structure fetch (default 5s). Under it,
	// a stalled peer turns into a clean 502 instead of a wedged request.
	PeerTimeout time.Duration
	// PeerClient overrides the HTTP client used for peer fetches (tests
	// inject failure modes here). Default: a dedicated http.Client.
	PeerClient *http.Client

	// StoreDir enables the temporal checkpoint store: sealed checkpoints are
	// persisted under this directory (see internal/store) and the
	// /v1/sessions + /v1/checkpoints endpoints come alive. Empty keeps the
	// stateless behavior of earlier releases (those endpoints answer 503).
	StoreDir string
	// SessionTTL evicts temporal sessions idle past this duration (default
	// 15m). Eviction is safe by construction: the client recovers by
	// re-creating the session and sending forced keyframes.
	SessionTTL time.Duration
	// MaxSessions bounds concurrently attached temporal sessions (default
	// 256); past it, the longest-idle session is evicted.
	MaxSessions int
}

func (c *Config) fillDefaults() {
	if c.MaxMeshes <= 0 {
		c.MaxMeshes = 64
	}
	if c.MaxEncoders <= 0 {
		c.MaxEncoders = 256
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.Registry == nil {
		c.Registry = zmesh.NewRegistry()
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = defaultPeerTimeout
	}
	if c.PeerClient == nil {
		c.PeerClient = &http.Client{}
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
}

// endpointMetrics is the per-endpoint counter/timer set, resolved once at
// construction: server.<ep>.requests|errors|shed|inflight plus a latency
// timer. inflight is a gauge expressed as a counter (+1 on entry, −1 on
// exit).
type endpointMetrics struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	shed     *telemetry.Counter
	inflight *telemetry.Counter
	latency  *telemetry.Timer
}

func newEndpointMetrics(r *zmesh.Registry, ep string) *endpointMetrics {
	return &endpointMetrics{
		requests: r.Counter("server." + ep + ".requests"),
		errors:   r.Counter("server." + ep + ".errors"),
		shed:     r.Counter("server." + ep + ".shed"),
		inflight: r.Counter("server." + ep + ".inflight"),
		latency:  r.Timer("server." + ep + ".latency"),
	}
}

// Server is the zmeshd HTTP service. Create with New, mount Handler (or use
// Serve/ListenAndServe), stop with Shutdown.
type Server struct {
	cfg   Config
	reg   *zmesh.Registry
	store *store
	sem   chan struct{}
	mux   *http.ServeMux

	// srvMu guards the Serve/Shutdown lifecycle: srv is written by Serve
	// and read by Shutdown, and a Shutdown that lands before Serve must
	// keep the later Serve from starting (shutdown latches).
	srvMu    sync.Mutex
	srv      *http.Server
	shutdown bool

	mRegister         *endpointMetrics
	mCompress         *endpointMetrics
	mDecompress       *endpointMetrics
	mCompressStream   *endpointMetrics
	mDecompressStream *endpointMetrics
	mCheckpoint       *endpointMetrics
	checkpointFields  *telemetry.Counter
	mPeer             *peerMetrics
	peerClient        *http.Client

	// Temporal checkpoint store (nil unless Config.StoreDir is set) and its
	// session registry + counters. The counters exist even when the store is
	// disabled so /debug/vars always carries the full key shape.
	artifacts       *cstore.Store
	sessions        *sessionRegistry
	mSession        *sessionMetrics
	mStore          *storeMetrics
	mSessionCreate  *endpointMetrics
	mSessionFrame   *endpointMetrics
	mSessionSeal    *endpointMetrics
	mCheckpointRead *endpointMetrics
}

// New constructs a server from cfg (zero-value fields get defaults).
// Cluster mode (cfg.Ring != nil) requires cfg.Self to be a ring member;
// a violation is a deployment bug every request would hit, so it panics
// here rather than serving 421s forever.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	if cfg.Ring != nil && !cfg.Ring.Contains(cfg.Self) {
		panic(fmt.Sprintf("server: Self %q is not a member of the configured ring %v", cfg.Self, cfg.Ring.Nodes()))
	}
	s := &Server{
		cfg:               cfg,
		reg:               cfg.Registry,
		store:             newStore(cfg.MaxMeshes, cfg.MaxEncoders, cfg.Registry),
		sem:               make(chan struct{}, cfg.MaxInflight),
		mRegister:         newEndpointMetrics(cfg.Registry, "register"),
		mCompress:         newEndpointMetrics(cfg.Registry, "compress"),
		mDecompress:       newEndpointMetrics(cfg.Registry, "decompress"),
		mCompressStream:   newEndpointMetrics(cfg.Registry, "compress_stream"),
		mDecompressStream: newEndpointMetrics(cfg.Registry, "decompress_stream"),
		mCheckpoint:       newEndpointMetrics(cfg.Registry, "checkpoint"),
		checkpointFields:  cfg.Registry.Counter("server.checkpoint.fields"),
		mPeer:             newPeerMetrics(cfg.Registry),
		peerClient:        cfg.PeerClient,
		mSession:          newSessionMetrics(cfg.Registry),
		mStore:            newStoreMetrics(cfg.Registry),
		mSessionCreate:    newEndpointMetrics(cfg.Registry, "session_create"),
		mSessionFrame:     newEndpointMetrics(cfg.Registry, "session_frame"),
		mSessionSeal:      newEndpointMetrics(cfg.Registry, "session_seal"),
		mCheckpointRead:   newEndpointMetrics(cfg.Registry, "checkpoint_read"),
	}
	s.sessions = newSessionRegistry(cfg.SessionTTL, cfg.MaxSessions, s.mSession)
	if cfg.StoreDir != "" {
		// A store directory that cannot be opened is a deployment bug every
		// session would hit; fail loudly like a ring misconfiguration.
		artifacts, err := cstore.Open(cfg.StoreDir)
		if err != nil {
			panic(fmt.Sprintf("server: opening artifact store: %v", err))
		}
		s.artifacts = artifacts
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+wire.PathMeshes, s.instrumented(s.mRegister, s.handleRegister))
	mux.HandleFunc("POST "+wire.PathMeshes+"/{id}/compress", s.instrumented(s.mCompress, s.handleCompress))
	mux.HandleFunc("POST "+wire.PathMeshes+"/{id}/decompress", s.instrumented(s.mDecompress, s.handleDecompress))
	mux.HandleFunc("POST "+wire.PathMeshes+"/{id}/compress-stream", s.instrumented(s.mCompressStream, s.handleCompressStream))
	mux.HandleFunc("POST "+wire.PathMeshes+"/{id}/decompress-stream", s.instrumented(s.mDecompressStream, s.handleDecompressStream))
	mux.HandleFunc("POST "+wire.PathMeshes+"/{id}/checkpoint", s.instrumented(s.mCheckpoint, s.handleCheckpoint))
	// Temporal checkpoint store endpoints (alive only with Config.StoreDir;
	// otherwise they answer 503 so clients get an explicit signal rather
	// than a 404 that looks like a routing bug).
	mux.HandleFunc("POST "+wire.PathSessions, s.instrumented(s.mSessionCreate, s.handleSessionCreate))
	mux.HandleFunc("POST "+wire.PathSessions+"/{sid}/streams/{field}/frames", s.instrumented(s.mSessionFrame, s.handleSessionFrame))
	mux.HandleFunc("POST "+wire.PathSessions+"/{sid}/seal", s.instrumented(s.mSessionSeal, s.handleSessionSeal))
	mux.HandleFunc("GET "+wire.PathCheckpoints+"/{id}", s.instrumented(s.mCheckpointRead, s.handleCheckpointInfo))
	mux.HandleFunc("GET "+wire.PathCheckpoints+"/{id}/fields/{field}", s.instrumented(s.mCheckpointRead, s.handleCheckpointField))
	mux.HandleFunc("GET "+wire.PathCheckpoints+"/{id}/structure", s.instrumented(s.mCheckpointRead, s.handleCheckpointStructure))
	// Cluster-mode endpoints. Both bypass admission control on purpose:
	// ring fetches are how clients recover from 421s and structure fetches
	// are how restarted replicas heal, so neither may be starved by a 429
	// storm on the data endpoints.
	mux.HandleFunc("GET "+wire.PathMeshes+"/{id}/structure", s.handleStructure)
	mux.HandleFunc("GET "+wire.PathRing, s.handleRing)
	mux.HandleFunc("GET "+wire.PathHealth, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.Handle("GET "+wire.PathVars, expvar.Handler())
	s.mux = mux
	// Publish the registry so /debug/vars carries the server metrics. A
	// later New (tests create many servers) retargets the name to the
	// newest registry.
	telemetry.Publish(ExpvarName, cfg.Registry)
	return s
}

// Registry exposes the server's telemetry registry (the one Config.Registry
// supplied, or the private one New created).
func (s *Server) Registry() *zmesh.Registry { return s.reg }

// Handler returns the full route table, including /healthz and /debug/vars.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, mirroring net/http — and
// immediately (closing ln) when Shutdown already ran, so a Serve racing a
// Shutdown can never resurrect the server.
func (s *Server) Serve(ln net.Listener) error {
	s.srvMu.Lock()
	if s.shutdown {
		s.srvMu.Unlock()
		ln.Close()
		return http.ErrServerClosed
	}
	if s.srv == nil {
		s.srv = &http.Server{Handler: s.mux}
	}
	srv := s.srv
	s.srvMu.Unlock()
	// Now the bound address is known, namespace this replica's metrics by
	// it (see VarsKey) so N replicas never collide on one expvar page.
	telemetry.Publish(VarsKey(ln.Addr().String()), s.reg)
	return srv.Serve(ln)
}

// Shutdown drains the server: no new connections are accepted, in-flight
// requests run to completion (subject to ctx), then Serve returns. This is
// what zmeshd runs on SIGTERM. Shutdown latches: once called, any Serve —
// concurrent or later — refuses to start.
func (s *Server) Shutdown(ctx context.Context) error {
	s.srvMu.Lock()
	s.shutdown = true
	srv := s.srv
	s.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// instrumented wraps a handler with admission control and the endpoint's
// request/inflight/latency/error accounting. Shed requests never reach the
// handler: they cost one semaphore poll and a small JSON response.
func (s *Server) instrumented(m *endpointMetrics, h func(http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m.requests.Inc()
		select {
		case s.sem <- struct{}{}:
		default:
			m.shed.Inc()
			secs := int64(s.cfg.RetryAfter.Seconds())
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			writeError(w, http.StatusTooManyRequests, errors.New("server at capacity"))
			return
		}
		defer func() { <-s.sem }()
		m.inflight.Inc()
		defer m.inflight.Add(-1)
		t0 := time.Now()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		if err := h(w, r); err != nil {
			m.errors.Inc()
			// A handler that already committed its response (streaming
			// endpoints after the first body byte) signals failure on the
			// wire itself — a truncated chunk/batch stream with no
			// terminator — and a JSON error appended to a half-written
			// binary body would only corrupt it further.
			if !errors.Is(err, errCommitted) {
				writeError(w, statusFor(err), err)
			}
		}
		m.latency.Since(t0)
	}
}

// httpError carries an explicit status through the handler return path.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(err error) error { return &httpError{status: http.StatusBadRequest, err: err} }

// errCommitted marks a handler failure that happened after the response
// status and some body bytes were already written: instrumented() counts
// it but must not append a JSON error to the committed body. The client
// detects the failure as a truncated stream (missing terminator frame).
var errCommitted = errors.New("response already committed")

// committed wraps err so instrumented() skips writeError.
func committed(err error) error { return fmt.Errorf("%w: %w", errCommitted, err) }

func notFound(format string, args ...any) error {
	return &httpError{status: http.StatusNotFound, err: fmt.Errorf(format, args...)}
}

func statusFor(err error) int {
	// MaxBytesError resolves first: handlers wrap body-read failures in
	// badRequest, and the over-limit case must surface as 413, not the
	// wrapper's 400.
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	return http.StatusInternalServerError
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", wire.ContentTypeJSON)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wire.ErrorResponse{Error: err.Error()})
}

// requestScratch is the pooled per-request state of the compress/decompress
// hot paths: the body buffer, the float decode buffer (used only when the
// body cannot be viewed zero-copy), the pipeline Scratch, and the response
// artifact shell. Pooling them makes steady-state requests allocate only
// what the pipeline itself must produce (the wrapped payload); see the
// AllocsPerRun pins in alloc_test.go and DESIGN.md "Hot path".
type requestScratch struct {
	body     []byte
	values   []float64
	zs       zmesh.Scratch
	artifact zmesh.Compressed
}

var scratchPool = sync.Pool{New: func() any { return new(requestScratch) }}

// maxPooledBody caps the total bytes a scratch may carry back into the
// pool: one unusually large request must not pin its buffers for the
// pool's lifetime. The audit covers every pooled buffer — the body, the
// float decode buffer, and the pipeline Scratch's internal buffers — not
// just the body; a big-endian or misaligned request grows sc.values to the
// full field size without ever touching sc.body, and before this cap
// applied to all of them such a request pinned its float buffers forever.
// A variable (not a const) so the regression test can lower it.
var maxPooledBody = 64 << 20

// pinnedBytes is the total capacity the scratch would pin in the pool.
func (sc *requestScratch) pinnedBytes() int {
	return cap(sc.body) + 8*cap(sc.values) + sc.zs.PinnedBytes()
}

func putScratch(sc *requestScratch) {
	if sc.pinnedBytes() > maxPooledBody {
		*sc = requestScratch{}
	}
	sc.artifact = zmesh.Compressed{}
	scratchPool.Put(sc)
}

// readBodySeed caps how much buffer a declared Content-Length may allocate
// up front. A client can declare any length and then send nothing, so the
// declaration only seeds the buffer up to this bound; past it the buffer
// grows geometrically as bytes actually arrive — a 1 GiB lie costs one
// 1 MiB allocation, not a 1 GiB one.
const readBodySeed = 1 << 20

// readBody reads the whole request body into buf (grown as needed, reused
// otherwise). A declared Content-Length beyond the server's cap fails
// before any allocation; bodies without one are still stopped by the
// MaxBytesReader installed in instrumented(). Either way the limit error
// unwraps to *http.MaxBytesError, which statusFor maps to 413.
func (s *Server) readBody(r *http.Request, buf []byte) ([]byte, error) {
	if r.ContentLength > s.cfg.MaxBodyBytes {
		return buf, &http.MaxBytesError{Limit: s.cfg.MaxBodyBytes}
	}
	if n := r.ContentLength; n > 0 && int64(cap(buf)) < n {
		seed := n
		if seed > readBodySeed {
			seed = readBodySeed
		}
		if cap(buf) < int(seed) {
			buf = make([]byte, 0, seed)
		}
	}
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// handleRegister: POST /v1/meshes, body = Mesh.Structure bytes. In cluster
// mode a replica only accepts registrations it owns: answering 421 instead
// of silently caching a misrouted structure keeps stale clients
// self-correcting (they refresh the ring) and keeps every shard holding
// only its K/N share — the point of sharding. Re-registering a mesh this
// replica already holds stays a 200 regardless of current ownership.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) error {
	structure, err := io.ReadAll(r.Body)
	if err != nil {
		return badRequest(fmt.Errorf("reading structure: %w", err))
	}
	if len(structure) == 0 {
		return badRequest(errors.New("empty structure body"))
	}
	if s.cfg.Ring != nil {
		if id := cluster.MeshID(structure); !s.cfg.Ring.IsOwner(s.cfg.Self, id) {
			if _, ok := s.store.lookup(id); !ok {
				s.mPeer.misdirected.Inc()
				return misdirected(id)
			}
		}
	}
	entry, created, err := s.store.register(structure)
	if err != nil {
		return badRequest(fmt.Errorf("decoding structure: %w", err))
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	w.Header().Set("Content-Type", wire.ContentTypeJSON)
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(wire.RegisterResponse{
		MeshID:  entry.id,
		Blocks:  entry.mesh.NumBlocks(),
		Cells:   entry.mesh.NumBlocks() * entry.mesh.CellsPerBlock(),
		Created: created,
	})
}

// pipelineParams parses the shared layout/curve query parameters.
func pipelineParams(r *http.Request) (zmesh.Options, error) {
	opt := zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "sz"}
	q := r.URL.Query()
	if v := q.Get(wire.ParamLayout); v != "" {
		layout, err := core.ParseLayout(v)
		if err != nil {
			return opt, badRequest(err)
		}
		opt.Layout = layout
	}
	if v := q.Get(wire.ParamCurve); v != "" {
		opt.Curve = v
	}
	if v := q.Get(wire.ParamCodec); v != "" {
		opt.Codec = v
	}
	return opt, nil
}

// requireConcreteLayout rejects the LayoutAuto pseudo-layout where only a
// concrete serialization order makes sense. Auto is an encode-time selection
// policy — every artifact records its concrete winner — so a request naming
// it on a decode path is a client error and must surface as an explicit 400,
// never a 500 or a silent fallback to some default order.
func requireConcreteLayout(opt zmesh.Options, context string) error {
	if opt.Layout == zmesh.LayoutAuto {
		return badRequest(fmt.Errorf("layout %q is encode-only (%s): %w",
			opt.Layout, context, zmesh.ErrAutoLayout))
	}
	return nil
}

// handleCompress: POST /v1/meshes/{id}/compress?field=&layout=&curve=&codec=&bound=,
// body = float64-LE level-order values; response = container-enveloped
// payload with X-Zmesh-* metadata headers.
func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) error {
	entry, err := s.resolveMesh(r.Context(), r.PathValue("id"))
	if err != nil {
		return err
	}
	opt, err := pipelineParams(r)
	if err != nil {
		return err
	}
	if _, err := compress.Get(opt.Codec); err != nil {
		return badRequest(err)
	}
	boundStr := r.URL.Query().Get(wire.ParamBound)
	if boundStr == "" {
		return badRequest(errors.New("missing bound parameter (e.g. bound=abs:1e-3)"))
	}
	bound, err := wire.ParseBound(boundStr)
	if err != nil {
		return badRequest(err)
	}
	fieldName := r.URL.Query().Get(wire.ParamField)
	if fieldName == "" {
		fieldName = "field"
	}
	enc, err := s.store.encoder(entry, opt)
	if err != nil {
		return err
	}
	sc := scratchPool.Get().(*requestScratch)
	defer putScratch(sc)
	sc.body, err = s.readBody(r, sc.body)
	if err != nil {
		return badRequest(fmt.Errorf("reading values: %w", err))
	}
	if err := r.Context().Err(); err != nil {
		// Client gone: skip the pipeline; the error still counts toward the
		// endpoint metrics (the response is unreachable either way).
		return err
	}
	nCells := entry.mesh.NumBlocks() * entry.mesh.CellsPerBlock()
	c, err := compressStream(enc, fieldName, nCells, sc.body, bound, sc)
	if err != nil {
		return err
	}
	h := w.Header()
	h.Set("Content-Type", wire.ContentTypeBinary)
	h.Set(wire.HeaderField, c.FieldName)
	h.Set(wire.HeaderLayout, c.Layout.String())
	h.Set(wire.HeaderCurve, c.Curve)
	h.Set(wire.HeaderCodec, c.Codec)
	h.Set(wire.HeaderNumValues, strconv.Itoa(c.NumValues))
	_, err = w.Write(c.Payload)
	return err
}

// compressStream is the allocation-audited core of handleCompress: wire
// body → value stream → artifact, skipping Field materialization entirely.
// On little-endian builds an aligned body is handed to the pipeline as a
// zero-copy float view; otherwise the values are decoded into the pooled
// buffer. Separated from the handler so the AllocsPerRun pins can audit it
// without the net/http plumbing.
func compressStream(enc *zmesh.Encoder, fieldName string, nCells int, body []byte, bound zmesh.Bound, sc *requestScratch) (*zmesh.Compressed, error) {
	values, ok := wire.ViewFloats(body)
	if !ok {
		var err error
		values, err = wire.DecodeFloatsInto(sc.values, body)
		if err != nil {
			return nil, badRequest(err)
		}
		sc.values = values
	}
	if len(values) != nCells {
		return nil, badRequest(fmt.Errorf("stream has %d values, mesh has %d cells", len(values), nCells))
	}
	c, err := enc.CompressValuesScratch(fieldName, values, bound, &sc.zs)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// handleDecompress: POST /v1/meshes/{id}/decompress?field=&layout=&curve=,
// body = container-enveloped payload; response = float64-LE level-order
// values. The codec is taken from the envelope itself.
func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) error {
	entry, err := s.resolveMesh(r.Context(), r.PathValue("id"))
	if err != nil {
		return err
	}
	opt, err := pipelineParams(r)
	if err != nil {
		return err
	}
	if err := requireConcreteLayout(opt, "decode with the layout the compress response recorded"); err != nil {
		return err
	}
	fieldName := r.URL.Query().Get(wire.ParamField)
	if fieldName == "" {
		fieldName = "field"
	}
	sc := scratchPool.Get().(*requestScratch)
	defer putScratch(sc)
	sc.body, err = s.readBody(r, sc.body)
	if err != nil {
		return badRequest(fmt.Errorf("reading payload: %w", err))
	}
	if len(sc.body) == 0 {
		return badRequest(errors.New("empty payload body"))
	}
	if err := r.Context().Err(); err != nil {
		return err // client gone; keep the cancellation out of 4xx stats
	}
	sc.artifact = zmesh.Compressed{
		FieldName: fieldName,
		Layout:    opt.Layout,
		Curve:     opt.Curve,
		// Codec and NumValues stay zero: the container envelope is
		// authoritative and the decoder validates against it.
		Payload: sc.body,
	}
	values, err := entry.dec.DecompressValuesScratch(&sc.artifact, &sc.zs)
	if err != nil {
		return badRequest(err) // corrupt envelope/payload is the client's fault
	}
	h := w.Header()
	h.Set("Content-Type", wire.ContentTypeBinary)
	h.Set(wire.HeaderField, fieldName)
	h.Set(wire.HeaderNumValues, strconv.Itoa(len(values)))
	// The response bytes are the values themselves on little-endian builds;
	// the portable fallback encodes into the (already consumed) body buffer.
	out, ok := wire.ViewBytes(values)
	if !ok {
		sc.body = wire.AppendFloats(sc.body[:0], values)
		out = sc.body
	}
	_, err = w.Write(out)
	return err
}
