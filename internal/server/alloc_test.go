package server

import (
	"fmt"
	"testing"

	zmesh "repro"
	"repro/internal/compress"
	"repro/internal/wire"
)

// stubCodec is a zero-allocation stand-in codec for the steady-state
// allocation pins: Compress and Decompress return cached slices, so every
// allocation the pins observe belongs to the server pipeline itself, not to
// a real codec's internals. Registered as "test-stub"; the protocol-facing
// codec loops (TestGoldenWire, TestClientServerRoundTrip) skip "test-"
// names.
type stubCodec struct {
	payload []byte
	values  []float64
}

func (c *stubCodec) Name() string { return "test-stub" }
func (c *stubCodec) Compress(data []float64, dims []int, bound compress.Bound) ([]byte, error) {
	return c.payload, nil
}
func (c *stubCodec) Decompress(buf []byte) ([]float64, error) { return c.values, nil }

var theStub = &stubCodec{payload: []byte("stub-payload")}

func init() {
	compress.Register("test-stub", func() compress.Compressor { return theStub })
}

// TestServerStreamAllocs pins the steady-state allocation count of the
// pooled request cores. The budget is 8 allocations per request; with the
// stub codec the compress path costs only the container envelope and the
// artifact struct, and the decompress path only the envelope parse — the
// permutation, decode, and scratch stages all reuse pooled buffers.
func TestServerStreamAllocs(t *testing.T) {
	m, f := testMesh(t)
	values := zmesh.FieldValues(f)
	theStub.values = make([]float64, len(values))
	copy(theStub.values, values)

	opt := zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "test-stub"}
	enc, err := zmesh.NewEncoder(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	body := wire.AppendFloats(nil, values)
	bound := testBound()
	sc := new(requestScratch)
	nCells := m.NumBlocks() * m.CellsPerBlock()

	// Warm the scratch, and keep one artifact for the decompress pin.
	artifact, err := compressStream(enc, "dens", nCells, body, bound, sc)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 8
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := compressStream(enc, "dens", nCells, body, bound, sc); err != nil {
			t.Fatal(err)
		}
	}); allocs > budget {
		t.Fatalf("steady-state compress allocates %v per request, budget %d", allocs, budget)
	}

	dec := zmesh.NewDecoder(m)
	sc.artifact = zmesh.Compressed{Layout: opt.Layout, Curve: opt.Curve, Payload: artifact.Payload}
	if _, err := dec.DecompressValuesScratch(&sc.artifact, &sc.zs); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := dec.DecompressValuesScratch(&sc.artifact, &sc.zs); err != nil {
			t.Fatal(err)
		}
	}); allocs > budget {
		t.Fatalf("steady-state decompress allocates %v per request, budget %d", allocs, budget)
	}
}

// TestCompressStreamMisaligned pins the fallback path: a misaligned body
// must decode through the copying path and produce the same artifact.
func TestCompressStreamMisaligned(t *testing.T) {
	m, f := testMesh(t)
	values := zmesh.FieldValues(f)
	enc, err := zmesh.NewEncoder(m, zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "sz"})
	if err != nil {
		t.Fatal(err)
	}
	nCells := m.NumBlocks() * m.CellsPerBlock()
	bound := testBound()
	aligned := wire.AppendFloats(nil, values)

	// Rebuild the body at every offset of an oversized buffer; exactly one
	// offset (whichever is 8-aligned) takes the view path, the rest copy.
	backing := make([]byte, len(aligned)+8)
	for off := 0; off < 8; off++ {
		body := backing[off : off+len(aligned)]
		copy(body, aligned)
		c, err := compressStream(enc, "dens", nCells, body, bound, new(requestScratch))
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		want, err := enc.CompressValues("dens", values, bound)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%x", c.Payload) != fmt.Sprintf("%x", want.Payload) {
			t.Fatalf("offset %d: payload diverges from aligned compression", off)
		}
	}
}
