package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	zmesh "repro"
	"repro/internal/cluster"
	"repro/internal/wire"
)

// bootClusterServers starts n real replicas (each with its own listener,
// registry and caches) sharing one consistent-hash ring, mirroring how the
// cluster harness boots daemons. mut lets a test tweak one replica's config
// before boot.
func bootClusterServers(t testing.TB, n, repl int, mut func(i int, cfg *Config)) ([]*Server, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	ring, err := cluster.New(urls, 32, repl)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*Server, n)
	for i := range servers {
		cfg := Config{Ring: ring, Self: urls[i], PeerTimeout: 2 * time.Second}
		if mut != nil {
			mut(i, &cfg)
		}
		s := New(cfg)
		servers[i] = s
		ln := lns[i]
		go func() { _ = s.Serve(ln) }()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Shutdown(ctx)
		})
	}
	return servers, urls
}

// rawRegister posts structure bytes directly to one replica (no routing).
func rawRegister(t testing.TB, base string, structure []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(base+wire.PathMeshes, wire.ContentTypeBinary, bytes.NewReader(structure))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// rawCompress posts a field's values directly to one replica with the
// default pipeline and drains the response body.
func rawCompress(t testing.TB, base, id string, values []float64) (int, []byte) {
	t.Helper()
	body := wire.AppendFloats(nil, values)
	u := base + wire.CompressPath(id) + "?" + wire.ParamBound + "=abs:1e-3"
	resp, err := http.Post(u, wire.ContentTypeBinary, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, payload
}

func counterOf(s *Server, name string) int64 {
	return s.Registry().Snapshot().Counters[name]
}

// TestPeerFetchHealsEmptyReplica pins the recovery path the cluster exists
// for: a replica that has never seen a mesh (registered only on its peer)
// serves a compress request by pulling the structure from the peer,
// verifying the content address, and rebuilding the recipe locally — and
// the artifact is byte-identical to the in-process library's.
func TestPeerFetchHealsEmptyReplica(t *testing.T) {
	m, f := testMesh(t)
	servers, urls := bootClusterServers(t, 2, 2, nil) // R = N: both replicas own everything

	structure := m.Structure()
	id := cluster.MeshID(structure)
	resp := rawRegister(t, urls[0], structure)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register on replica 0: status %d", resp.StatusCode)
	}

	// Replica 1 never saw the registration.
	status, payload := rawCompress(t, urls[1], id, zmesh.FieldValues(f))
	if status != http.StatusOK {
		t.Fatalf("compress on empty replica: status %d, body %s", status, payload)
	}
	opt := zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "sz"}
	enc, err := zmesh.NewEncoder(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := enc.CompressField(f, testBound())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, want.Payload) {
		t.Fatalf("peer-fetch artifact differs from library artifact (%d vs %d bytes)", len(payload), len(want.Payload))
	}
	if got := counterOf(servers[1], "server.peer.fetches"); got != 1 {
		t.Fatalf("replica 1 peer.fetches = %d, want 1", got)
	}
	if got := counterOf(servers[1], "recipe.builds"); got != 1 {
		t.Fatalf("replica 1 recipe.builds = %d, want 1 (rebuilt locally from fetched structure)", got)
	}
	if got := counterOf(servers[0], "server.peer.structure_served"); got != 1 {
		t.Fatalf("replica 0 structure_served = %d, want 1", got)
	}

	// A second request is a plain local hit: no more peer traffic.
	status, _ = rawCompress(t, urls[1], id, zmesh.FieldValues(f))
	if status != http.StatusOK {
		t.Fatalf("second compress: status %d", status)
	}
	if got := counterOf(servers[1], "server.peer.fetches"); got != 1 {
		t.Fatalf("replica 1 peer.fetches after local hit = %d, want still 1", got)
	}
}

// TestMisdirectedRequests pins the 421 contract: with R=1, exactly one
// replica owns each mesh; the others answer 421 for both registration and
// data requests so a routing client knows to refresh its ring.
func TestMisdirectedRequests(t *testing.T) {
	m, f := testMesh(t)
	_, urls := bootClusterServers(t, 3, 1, nil)

	structure := m.Structure()
	id := cluster.MeshID(structure)
	ring, err := cluster.New(urls, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	owner := ring.Primary(id)
	var nonOwner string
	for _, u := range urls {
		if u != owner {
			nonOwner = u
			break
		}
	}

	resp := rawRegister(t, nonOwner, structure)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("register on non-owner: status %d, want 421", resp.StatusCode)
	}
	resp = rawRegister(t, owner, structure)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register on owner: status %d, want 201", resp.StatusCode)
	}
	if status, _ := rawCompress(t, nonOwner, id, zmesh.FieldValues(f)); status != http.StatusMisdirectedRequest {
		t.Fatalf("compress on non-owner: status %d, want 421", status)
	}
	if status, _ := rawCompress(t, owner, id, zmesh.FieldValues(f)); status != http.StatusOK {
		t.Fatalf("compress on owner: status %d, want 200", status)
	}
}

// TestPeerFetchCorruption is the cache-poisoning table: whatever garbage a
// peer returns — truncation, bit flips, the wrong structure, errors,
// timeouts — the fetching replica must reject it via the content address,
// answer a clean 502 (404 only for a clean everywhere-miss), and keep its
// registry unpoisoned so a later honest peer heals it.
func TestPeerFetchCorruption(t *testing.T) {
	m, f := testMesh(t)
	structure := m.Structure()
	id := cluster.MeshID(structure)
	values := zmesh.FieldValues(f)

	otherMesh, _ := testMesh(t)
	if err := otherMesh.Refine(otherMesh.Roots()[1]); err != nil {
		t.Fatal(err)
	}

	flipped := append([]byte(nil), structure...)
	flipped[len(flipped)/2] ^= 0x40

	cases := []struct {
		name       string
		peer       http.HandlerFunc
		wantStatus int
		wantCount  string // counter expected to move on the fetching replica
	}{
		{
			name: "truncated",
			peer: func(w http.ResponseWriter, r *http.Request) {
				_, _ = w.Write(structure[:len(structure)-5])
			},
			wantStatus: http.StatusBadGateway,
			wantCount:  "server.peer.corrupt",
		},
		{
			name: "bit_flipped",
			peer: func(w http.ResponseWriter, r *http.Request) {
				_, _ = w.Write(flipped)
			},
			wantStatus: http.StatusBadGateway,
			wantCount:  "server.peer.corrupt",
		},
		{
			name: "empty_body",
			peer: func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(http.StatusOK)
			},
			wantStatus: http.StatusBadGateway,
			wantCount:  "server.peer.corrupt",
		},
		{
			name: "wrong_structure",
			peer: func(w http.ResponseWriter, r *http.Request) {
				_, _ = w.Write(otherMesh.Structure()) // valid bytes, wrong preimage
			},
			wantStatus: http.StatusBadGateway,
			wantCount:  "server.peer.corrupt",
		},
		{
			name: "peer_500",
			peer: func(w http.ResponseWriter, r *http.Request) {
				http.Error(w, "boom", http.StatusInternalServerError)
			},
			wantStatus: http.StatusBadGateway,
			wantCount:  "server.peer.errors",
		},
		{
			name: "peer_hangs",
			peer: func(w http.ResponseWriter, r *http.Request) {
				<-r.Context().Done() // stall until the fetcher's PeerTimeout fires
			},
			wantStatus: http.StatusBadGateway,
			wantCount:  "server.peer.errors",
		},
		{
			name: "peer_miss",
			peer: func(w http.ResponseWriter, r *http.Request) {
				http.NotFound(w, r)
			},
			wantStatus: http.StatusNotFound,
			wantCount:  "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var peerHits atomic.Int64
			peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path != wire.StructurePath(id) {
					t.Errorf("peer got unexpected path %s", r.URL.Path)
				}
				peerHits.Add(1)
				tc.peer(w, r)
			}))
			defer peer.Close()

			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			self := "http://" + ln.Addr().String()
			ring, err := cluster.New([]string{peer.URL, self}, 32, 2)
			if err != nil {
				t.Fatal(err)
			}
			s := New(Config{Ring: ring, Self: self, PeerTimeout: 200 * time.Millisecond})
			go func() { _ = s.Serve(ln) }()
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				_ = s.Shutdown(ctx)
			}()

			status, body := rawCompress(t, self, id, values)
			if status != tc.wantStatus {
				t.Fatalf("compress with %s peer: status %d (body %s), want %d", tc.name, status, body, tc.wantStatus)
			}
			if peerHits.Load() == 0 {
				t.Fatal("peer was never consulted")
			}
			if tc.wantCount != "" {
				if got := counterOf(s, tc.wantCount); got == 0 {
					t.Fatalf("counter %s = 0, want > 0", tc.wantCount)
				}
			}
			// The poison check: nothing may have been registered under id.
			if _, ok := s.store.lookup(id); ok {
				t.Fatalf("%s peer response was cached — content-addressed registry poisoned", tc.name)
			}
			if got := counterOf(s, "server.mesh.registered"); got != 0 {
				t.Fatalf("mesh.registered = %d after %s peer, want 0", got, tc.name)
			}
		})
	}
}

// TestPeerFetchRecoversAfterCorruptPeer pins that a corrupt peer does not
// wedge anything: once an honest peer is reachable, the same id heals.
func TestPeerFetchRecoversAfterCorruptPeer(t *testing.T) {
	m, f := testMesh(t)
	structure := m.Structure()
	id := cluster.MeshID(structure)

	var corrupt atomic.Bool
	corrupt.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if corrupt.Load() {
			_, _ = w.Write(structure[:len(structure)/2])
			return
		}
		_, _ = w.Write(structure)
	}))
	defer peer.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://" + ln.Addr().String()
	ring, err := cluster.New([]string{peer.URL, self}, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Ring: ring, Self: self, PeerTimeout: time.Second})
	go func() { _ = s.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	if status, _ := rawCompress(t, self, id, zmesh.FieldValues(f)); status != http.StatusBadGateway {
		t.Fatalf("corrupt phase: status %d, want 502", status)
	}
	corrupt.Store(false)
	if status, _ := rawCompress(t, self, id, zmesh.FieldValues(f)); status != http.StatusOK {
		t.Fatalf("healed phase: status %d, want 200", status)
	}
}

// TestStructureEndpoint pins the peer-fetch primitive itself: the raw
// registered bytes come back verbatim, unknown ids 404.
func TestStructureEndpoint(t *testing.T) {
	m, _ := testMesh(t)
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	base := ts.URL

	resp := rawRegister(t, base, m.Structure())
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	id := cluster.MeshID(m.Structure())
	resp, err := http.Get(base + wire.StructurePath(id))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("structure fetch: status %d", resp.StatusCode)
	}
	if !bytes.Equal(got, m.Structure()) {
		t.Fatalf("structure bytes differ: got %d bytes, want %d", len(got), len(m.Structure()))
	}
	if cluster.MeshID(got) != id {
		t.Fatal("served structure does not hash to its own id")
	}
	resp, err = http.Get(base + wire.StructurePath("deadbeef"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown structure fetch: status %d, want 404", resp.StatusCode)
	}
}

// TestRingEndpoint pins the topology handshake: cluster replicas serve
// their full placement config, single-node daemons 404.
func TestRingEndpoint(t *testing.T) {
	_, urls := bootClusterServers(t, 3, 2, nil)
	resp, err := http.Get(urls[1] + wire.PathRing)
	if err != nil {
		t.Fatal(err)
	}
	var rr wire.RingResponse
	err = json.NewDecoder(resp.Body).Decode(&rr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ring fetch: status %d", resp.StatusCode)
	}
	if len(rr.Nodes) != 3 || rr.Replication != 2 || rr.VNodes != 32 || rr.Self != urls[1] {
		t.Fatalf("ring response %+v does not match boot config", rr)
	}

	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err = http.Get(ts.URL + wire.PathRing)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("single-node ring fetch: status %d, want 404", resp.StatusCode)
	}
}
