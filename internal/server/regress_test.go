package server

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	zmesh "repro"
	"repro/client"
)

// TestPutScratchDropsOversizedBuffers is the scratch-pinning regression:
// the pool audit must cover every pooled buffer — body, float decode
// buffer, and the pipeline Scratch's internals — not just the body. Before
// the fix, a misaligned or big-endian request grew sc.values to the full
// field size without touching sc.body, and the capacity stayed pinned in
// the pool forever.
func TestPutScratchDropsOversizedBuffers(t *testing.T) {
	defer func(old int) { maxPooledBody = old }(maxPooledBody)
	maxPooledBody = 1 << 10

	cases := []struct {
		name string
		fill func(sc *requestScratch)
	}{
		{"body only", func(sc *requestScratch) { sc.body = make([]byte, 2<<10) }},
		// The pre-fix escape hatches: capacity held outside sc.body.
		{"values only", func(sc *requestScratch) { sc.values = make([]float64, 1<<10) }},
		{"pipeline scratch only", func(sc *requestScratch) {
			// Grow the zmesh.Scratch internals the way a real request does:
			// run a compression through it.
			m, f := testMesh(t)
			enc, err := zmesh.NewEncoder(m, zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "sz"})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := enc.CompressValuesScratch("dens", zmesh.FieldValues(f), testBound(), &sc.zs); err != nil {
				t.Fatal(err)
			}
			if sc.zs.PinnedBytes() == 0 {
				t.Fatal("compression did not grow the pipeline scratch; the case tests nothing")
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := new(requestScratch)
			tc.fill(sc)
			if sc.pinnedBytes() <= maxPooledBody {
				t.Fatalf("scratch pins only %d bytes, cap is %d; the case tests nothing", sc.pinnedBytes(), maxPooledBody)
			}
			putScratch(sc)
			if sc.pinnedBytes() != 0 {
				t.Fatalf("putScratch pooled a scratch pinning %d bytes (cap %d)", sc.pinnedBytes(), maxPooledBody)
			}
		})
	}

	// And the inverse: a modest scratch keeps its buffers (that is the point
	// of pooling).
	sc := new(requestScratch)
	sc.body = make([]byte, 512)
	sc.values = make([]float64, 8)
	putScratch(sc)
	if cap(sc.body) == 0 || cap(sc.values) == 0 {
		t.Fatal("putScratch dropped buffers under the cap")
	}
}

// TestReadBodyDeclaredLengthBomb is the allocation-bomb regression: a
// request declaring Content-Length: 512 MiB while sending a handful of
// bytes must not allocate 512 MiB up front — before the fix readBody sized
// the buffer directly from the declaration.
func TestReadBodyDeclaredLengthBomb(t *testing.T) {
	s := New(Config{}) // default cap 1 GiB, above the lie
	body := []byte("a few real bytes")
	req := httptest.NewRequest(http.MethodPost, "/v1/meshes", bytes.NewReader(body))
	req.ContentLength = 512 << 20

	buf, err := s.readBody(req, nil)
	if err != nil {
		t.Fatalf("readBody: %v", err)
	}
	if !bytes.Equal(buf, body) {
		t.Fatalf("readBody returned %q, want %q", buf, body)
	}
	if cap(buf) > 2*readBodySeed {
		t.Fatalf("declared length sized the buffer to %d bytes; pre-allocation must be capped at the %d seed", cap(buf), readBodySeed)
	}

	// An honest large declaration still reads correctly (geometric growth
	// past the seed).
	big := make([]byte, 3<<20)
	for i := range big {
		big[i] = byte(i)
	}
	req = httptest.NewRequest(http.MethodPost, "/v1/meshes", bytes.NewReader(big))
	req.ContentLength = int64(len(big))
	buf, err = s.readBody(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, big) {
		t.Fatal("large body corrupted by the seeded growth path")
	}

	// A declaration beyond the server cap still fails up front with the
	// 413-mapped error, before any read.
	req = httptest.NewRequest(http.MethodPost, "/v1/meshes", bytes.NewReader(body))
	req.ContentLength = s.cfg.MaxBodyBytes + 1
	_, err = s.readBody(req, nil)
	var mbe *http.MaxBytesError
	if !errors.As(err, &mbe) {
		t.Fatalf("over-cap declaration: got %v, want MaxBytesError", err)
	}
	if statusFor(err) != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-cap declaration maps to %d, want 413", statusFor(err))
	}
}

// TestShutdownBeforeServe is the lifecycle-race regression: before the
// fix, Shutdown read s.srv unsynchronized, so a Shutdown landing before
// Serve was a silent no-op and the later Serve ran forever. Shutdown must
// latch: any Serve after (or racing) it returns ErrServerClosed.
func TestShutdownBeforeServe(t *testing.T) {
	s := New(Config{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown before Serve: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	select {
	case err := <-done:
		if err != http.ErrServerClosed {
			t.Fatalf("Serve after Shutdown returned %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve after Shutdown did not return; the shutdown was silently lost")
	}
	// The listener must have been released.
	ln2, err := net.Listen("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("listener still held after refused Serve: %v", err)
	}
	ln2.Close()
}

// TestServeShutdownConcurrent hammers the lifecycle under the race
// detector: many goroutines racing Serve and Shutdown on fresh servers.
// Whatever the interleaving, every Serve must return (no leak, no lost
// shutdown) — and without the mutex this test fails under -race on the
// s.srv field.
func TestServeShutdownConcurrent(t *testing.T) {
	for i := 0; i < 20; i++ {
		s := New(Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		serveErr := make(chan error, 1)
		go func() {
			defer wg.Done()
			serveErr <- s.Serve(ln)
		}()
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("Shutdown: %v", err)
			}
		}()
		wg.Wait()
		select {
		case err := <-serveErr:
			if err != http.ErrServerClosed {
				t.Fatalf("iteration %d: Serve returned %v, want ErrServerClosed", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("iteration %d: Serve never returned", i)
		}
		ln.Close()
	}
}

// TestEvictedMeshStatus is the error-mapping regression: compressing
// against a mesh entry that the LRU evicted mid-request must surface as
// 404 — the same contract as a never-registered mesh, telling the client
// to re-register — not as a retryable 500.
func TestEvictedMeshStatus(t *testing.T) {
	s := New(Config{MaxMeshes: 1})
	mA, _ := testMesh(t)
	entryA, _, err := s.store.register(mA.Structure())
	if err != nil {
		t.Fatal(err)
	}
	// Registering a second mesh evicts A (capacity 1).
	mB, err := zmesh.NewMesh(2, 8, [3]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.store.register(mB.Structure()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.store.lookup(entryA.id); ok {
		t.Fatal("mesh A still admitted; eviction did not happen")
	}
	// A request that resolved entryA before the eviction now asks for its
	// encoder — the race the status mapping is about.
	_, err = s.store.encoder(entryA, zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "sz"})
	if err == nil {
		t.Fatal("encoder resolved for an evicted mesh")
	}
	if got := statusFor(err); got != http.StatusNotFound {
		t.Fatalf("evicted mesh maps to %d (%v), want 404", got, err)
	}
}

// TestEvictedMeshEndToEnd: the eviction 404 over the wire, through the
// client (which must not burn retries on it).
func TestEvictedMeshEndToEnd(t *testing.T) {
	m, f := testMesh(t)
	_, cl := newTestServer(t, Config{MaxMeshes: 1})
	ctx := context.Background()
	id, err := cl.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	mB, err := zmesh.NewMesh(2, 8, [3]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Register(ctx, mB); err != nil {
		t.Fatal(err)
	}
	_, err = cl.CompressField(ctx, id, f, zmesh.DefaultOptions(), testBound())
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("evicted mesh over the wire: got %v, want a 404 StatusError", err)
	}
	// Re-registering heals it.
	if _, err := cl.Register(ctx, m); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CompressField(ctx, id, f, zmesh.DefaultOptions(), testBound()); err != nil {
		t.Fatalf("compress after re-registration: %v", err)
	}
}
