package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	zmesh "repro"
	"repro/client"
	"repro/internal/wire"
)

// testCheckpoint wraps testMesh's topology with several sampled fields, the
// batch endpoint's natural input.
func testCheckpoint(t testing.TB) (*zmesh.Mesh, *zmesh.Checkpoint) {
	t.Helper()
	m, _ := testMesh(t)
	fns := map[string]func(x, y, z float64) float64{
		"dens": func(x, y, z float64) float64 { return math.Sin(5*x) * math.Cos(4*y) },
		"pres": func(x, y, z float64) float64 { return math.Exp(-x*x - y*y) },
		"velx": func(x, y, z float64) float64 { return x - y },
		"ener": func(x, y, z float64) float64 { return 1 + 0.5*x*y },
	}
	ck := &zmesh.Checkpoint{Problem: "test", Mesh: m}
	for _, name := range []string{"dens", "pres", "velx", "ener"} {
		ck.Fields = append(ck.Fields, zmesh.SampleField(m, name, fns[name]))
	}
	return m, ck
}

// TestStreamRoundTripAllCodecs is the streaming acceptance criterion: a
// field pushed through compress-stream in tiny chunks — so the body is
// strictly larger than the server's chunk-ring budget — must produce an
// artifact byte-identical to the pure-library path, and decompress-stream
// must reproduce the values bit for bit.
func TestStreamRoundTripAllCodecs(t *testing.T) {
	m, f := testMesh(t)
	const chunkBytes = 512
	ts := httptest.NewServer(New(Config{}).Handler())
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL,
		client.WithBackoff(time.Millisecond, 50*time.Millisecond),
		client.WithMaxRetries(20),
		client.WithChunkBytes(chunkBytes))
	ctx := context.Background()
	id, err := cl.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	values := zmesh.FieldValues(f)
	if 8*len(values) <= ringSlots*chunkBytes {
		t.Fatalf("test field (%d bytes) does not exceed the ring budget (%d); the bounded-buffer claim is untested",
			8*len(values), ringSlots*chunkBytes)
	}
	for _, codec := range zmesh.Codecs() {
		if strings.HasPrefix(codec, "test-") {
			continue
		}
		codec := codec
		t.Run(codec, func(t *testing.T) {
			opt := zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: codec}
			got, err := cl.CompressStream(ctx, id, "dens", bytes.NewReader(wire.AppendFloats(nil, values)), opt, testBound())
			if err != nil {
				t.Fatal(err)
			}
			enc, err := zmesh.NewEncoder(m, opt)
			if err != nil {
				t.Fatal(err)
			}
			want, err := enc.CompressField(f, testBound())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Payload, want.Payload) {
				t.Fatalf("streamed payload differs from library payload (%d vs %d bytes)", len(got.Payload), len(want.Payload))
			}
			if got.NumValues != want.NumValues || got.Codec != want.Codec {
				t.Fatalf("artifact metadata differs: %+v vs %+v", got, want)
			}
			var out bytes.Buffer
			n, err := cl.DecompressStream(ctx, id, got, &out)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(values) {
				t.Fatalf("DecompressStream returned %d values, want %d", n, len(values))
			}
			roundTripped, err := wire.DecodeFloats(out.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			libField, err := zmesh.NewDecoder(m).DecompressField(want)
			if err != nil {
				t.Fatal(err)
			}
			libValues := zmesh.FieldValues(libField)
			for i := range libValues {
				if math.Float64bits(roundTripped[i]) != math.Float64bits(libValues[i]) {
					t.Fatalf("value %d: streamed %x, library %x", i,
						math.Float64bits(roundTripped[i]), math.Float64bits(libValues[i]))
				}
			}
		})
	}
}

// TestCompressChunkedBoundedBuffers asserts the tentpole's memory claim
// directly on the handler core: streaming a body through compressChunked
// must never materialize the byte-side body — sc.body stays untouched and
// the ring's total capacity stays within slots × chunk size — while still
// producing the exact library artifact.
func TestCompressChunkedBoundedBuffers(t *testing.T) {
	m, f := testMesh(t)
	values := zmesh.FieldValues(f)
	enc, err := zmesh.NewEncoder(m, zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "sz"})
	if err != nil {
		t.Fatal(err)
	}
	nCells := m.NumBlocks() * m.CellsPerBlock()
	const chunkBytes = 1 << 10
	body := wire.AppendChunked(nil, wire.AppendFloats(nil, values), chunkBytes)
	if len(body) <= ringSlots*chunkBytes {
		t.Fatalf("chunked body (%d bytes) does not exceed the ring budget", len(body))
	}
	sc := new(requestScratch)
	ring := new(chunkRing)
	c, err := compressChunked(enc, "dens", nCells, bytes.NewReader(body), testBound(), sc, ring)
	if err != nil {
		t.Fatal(err)
	}
	want, err := enc.CompressValues("dens", values, testBound())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Payload, want.Payload) {
		t.Fatal("chunked compression diverges from buffered compression")
	}
	if cap(sc.body) != 0 {
		t.Fatalf("compress-stream materialized %d bytes of byte-side body; the chunked path must not", cap(sc.body))
	}
	if got, budget := ring.pinnedBytes(), ringSlots*chunkBytes; got > budget {
		t.Fatalf("ring grew to %d bytes, budget %d: per-request chunk memory is unbounded", got, budget)
	}
	if cap(sc.values) < nCells {
		t.Fatal("value buffer was not adopted back into the scratch")
	}
}

// TestCheckpointSingleRecipeBuild pins the batch amortization criterion:
// compressing all N fields of a checkpoint through one request must build
// exactly one recipe, and every artifact must match the library bit for
// bit.
func TestCheckpointSingleRecipeBuild(t *testing.T) {
	m, ck := testCheckpoint(t)
	s, cl := newTestServer(t, Config{})
	ctx := context.Background()
	id, err := cl.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	builds := s.Registry().Counter("recipe.builds")
	before := builds.Load()
	opt := zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "sz"}
	arts, err := cl.CompressCheckpoint(ctx, id, ck, opt, testBound())
	if err != nil {
		t.Fatal(err)
	}
	if got := builds.Load() - before; got != 1 {
		t.Fatalf("checkpoint of %d fields built %d recipes, want exactly 1", len(ck.Fields), got)
	}
	if got := s.Registry().Counter("server.checkpoint.fields").Load(); got != int64(len(ck.Fields)) {
		t.Fatalf("server.checkpoint.fields = %d, want %d", got, len(ck.Fields))
	}
	if len(arts) != len(ck.Fields) {
		t.Fatalf("got %d artifacts, want %d", len(arts), len(ck.Fields))
	}
	enc, err := zmesh.NewEncoder(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range ck.Fields {
		want, err := enc.CompressField(f, testBound())
		if err != nil {
			t.Fatal(err)
		}
		if arts[i].FieldName != f.Name {
			t.Fatalf("artifact %d named %q, want %q", i, arts[i].FieldName, f.Name)
		}
		if !bytes.Equal(arts[i].Payload, want.Payload) {
			t.Fatalf("field %q: batch payload differs from library payload", f.Name)
		}
		if arts[i].NumValues != want.NumValues {
			t.Fatalf("field %q: NumValues %d, want %d", f.Name, arts[i].NumValues, want.NumValues)
		}
		// The batch artifact must decompress through the ordinary endpoint.
		values, err := cl.Decompress(ctx, id, arts[i])
		if err != nil {
			t.Fatalf("field %q: decompressing batch artifact: %v", f.Name, err)
		}
		if len(values) != want.NumValues {
			t.Fatalf("field %q: decompressed %d values, want %d", f.Name, len(values), want.NumValues)
		}
	}
	// A second checkpoint against the same pipeline is fully amortized. (The
	// decompress loop above built the decoder's restore recipe, so compare
	// against the count after it, not the compress-side baseline.)
	afterDecompress := builds.Load()
	if _, err := cl.CompressCheckpoint(ctx, id, ck, opt, testBound()); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != afterDecompress {
		t.Fatalf("second checkpoint rebuilt the recipe (%d → %d builds)", afterDecompress, got)
	}
}

// TestCheckpointPerFieldBounds: each section's meta bound overrides the
// query default, and a batch with neither fails with 400.
func TestCheckpointPerFieldBounds(t *testing.T) {
	m, ck := testCheckpoint(t)
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()
	id, err := cl.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	opt := zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "sz"}
	loose := zmesh.AbsBound(1e-1)
	tight := zmesh.AbsBound(1e-6)
	fields := []client.BatchField{
		{Name: "dens", Values: zmesh.FieldValues(ck.Fields[0])},
	}
	looseArts, err := cl.CompressBatch(ctx, id, fields, opt, loose)
	if err != nil {
		t.Fatal(err)
	}
	tightArts, err := cl.CompressBatch(ctx, id, fields, opt, tight)
	if err != nil {
		t.Fatal(err)
	}
	if len(looseArts[0].Payload) >= len(tightArts[0].Payload) {
		t.Fatalf("loose bound payload (%d bytes) not smaller than tight bound payload (%d): per-batch bound ignored?",
			len(looseArts[0].Payload), len(tightArts[0].Payload))
	}
}

// streamQuery renders the compress-stream query grammar.
func streamQuery(codec, bound string) string {
	v := url.Values{
		wire.ParamField:  {"dens"},
		wire.ParamLayout: {zmesh.LayoutZMesh.String()},
		wire.ParamCurve:  {"hilbert"},
		wire.ParamCodec:  {codec},
	}
	if bound != "" {
		v.Set(wire.ParamBound, bound)
	}
	return v.Encode()
}

// postRaw issues one request with an explicit content type, without
// asserting the status.
func postRaw(t *testing.T, h http.Handler, path, contentType string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", contentType)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestStreamErrorShapes pins the streaming endpoints' pre-commit error
// conventions: failures before the first response byte are ordinary JSON
// errors with conventional status codes — including 404 (not 500) for a
// mesh that the cache evicted.
func TestStreamErrorShapes(t *testing.T) {
	s := New(Config{})
	m, f := testMesh(t)
	post(t, s.Handler(), wire.PathMeshes, m.Structure(), http.StatusCreated)
	id := MeshID(m.Structure())
	okBody := wire.AppendChunked(nil, wire.AppendFloats(nil, zmesh.FieldValues(f)), 0)
	short := wire.AppendChunked(nil, wire.AppendFloats(nil, []float64{1, 2, 3}), 0)

	cases := []struct {
		name, path  string
		contentType string
		body        []byte
		status      int
	}{
		{"unknown mesh", wire.CompressStreamPath("deadbeef") + "?" + streamQuery("sz", "abs:1e-3"), wire.ContentTypeChunked, okBody, http.StatusNotFound},
		{"missing bound", wire.CompressStreamPath(id) + "?" + streamQuery("sz", ""), wire.ContentTypeChunked, okBody, http.StatusBadRequest},
		{"bad magic", wire.CompressStreamPath(id) + "?" + streamQuery("sz", "abs:1e-3"), wire.ContentTypeChunked, []byte("XXXX????"), http.StatusBadRequest},
		{"truncated stream", wire.CompressStreamPath(id) + "?" + streamQuery("sz", "abs:1e-3"), wire.ContentTypeChunked, okBody[:len(okBody)-8], http.StatusBadRequest},
		{"wrong cell count", wire.CompressStreamPath(id) + "?" + streamQuery("sz", "abs:1e-3"), wire.ContentTypeChunked, short, http.StatusBadRequest},
		{"unknown codec", wire.CompressStreamPath(id) + "?" + streamQuery("nope", "abs:1e-3"), wire.ContentTypeChunked, okBody, http.StatusBadRequest},
		{"decompress empty", wire.DecompressStreamPath(id), wire.ContentTypeChunked, wire.AppendChunked(nil, nil, 0), http.StatusBadRequest},
		{"checkpoint empty batch", wire.CheckpointPath(id) + "?bound=abs:1e-3", wire.ContentTypeBatch, batchBody(t, nil), http.StatusBadRequest},
		{"checkpoint no bound", wire.CheckpointPath(id), wire.ContentTypeBatch, batchBody(t, [][2]string{{"dens", ""}}), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postRaw(t, s.Handler(), tc.path, tc.contentType, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status %d (body %q), want %d", rec.Code, rec.Body.String(), tc.status)
			}
			if ct := rec.Header().Get("Content-Type"); ct != wire.ContentTypeJSON {
				t.Fatalf("error Content-Type = %q, want %q", ct, wire.ContentTypeJSON)
			}
		})
	}
}

// batchBody builds a batch request whose sections carry tiny (wrong-sized)
// payloads — enough for error-shape tests that never reach the codec.
func batchBody(t *testing.T, sections [][2]string) []byte {
	t.Helper()
	var b bytes.Buffer
	bw := wire.NewBatchWriter(&b)
	for _, s := range sections {
		if err := bw.WriteSection(s[0], s[1], wire.AppendFloats(nil, []float64{1})); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestCheckpointSectionErrorIsClean pins the mid-batch failure contract:
// because the response is buffered until the whole request has compressed,
// a failure in a later section surfaces as an ordinary JSON 400 — no
// partial batch body ever reaches the client.
func TestCheckpointSectionErrorIsClean(t *testing.T) {
	s := New(Config{})
	m, f := testMesh(t)
	post(t, s.Handler(), wire.PathMeshes, m.Structure(), http.StatusCreated)
	id := MeshID(m.Structure())

	var b bytes.Buffer
	bw := wire.NewBatchWriter(&b)
	good := wire.AppendFloats(nil, zmesh.FieldValues(f))
	if err := bw.WriteSection("dens", "abs:1e-3", good); err != nil {
		t.Fatal(err)
	}
	// Second section: malformed bound, rejected only after section one has
	// already been compressed.
	if err := bw.WriteSection("pres", "abs:not-a-number", good); err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	errsBefore := s.Registry().Counter("server.checkpoint.errors").Load()
	rec := postRaw(t, s.Handler(), wire.CheckpointPath(id)+"?"+streamQuery("sz", ""), wire.ContentTypeBatch, b.Bytes())
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d (body %q), want 400", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != wire.ContentTypeJSON {
		t.Fatalf("Content-Type %q, want JSON (no partial batch body)", ct)
	}
	var er wire.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || !strings.Contains(er.Error, "pres") {
		t.Fatalf("error body %q does not name the failing section", rec.Body.String())
	}
	if got := s.Registry().Counter("server.checkpoint.errors").Load(); got != errsBefore+1 {
		t.Fatalf("failed checkpoint not counted as an error (%d → %d)", errsBefore, got)
	}
}

// TestStreamEndpointMetrics: the new endpoints account requests and
// latency like the buffered ones.
func TestStreamEndpointMetrics(t *testing.T) {
	m, ck := testCheckpoint(t)
	s, cl := newTestServer(t, Config{})
	ctx := context.Background()
	id, err := cl.Register(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	opt := zmesh.Options{Layout: zmesh.LayoutZMesh, Curve: "hilbert", Codec: "sz"}
	values := zmesh.FieldValues(ck.Fields[0])
	c, err := cl.CompressStream(ctx, id, "dens", bytes.NewReader(wire.AppendFloats(nil, values)), opt, testBound())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.DecompressStream(ctx, id, c, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CompressCheckpoint(ctx, id, ck, opt, testBound()); err != nil {
		t.Fatal(err)
	}
	reg := s.Registry()
	for _, name := range []string{
		"server.compress_stream.requests", "server.decompress_stream.requests", "server.checkpoint.requests",
	} {
		if reg.Counter(name).Load() == 0 {
			t.Fatalf("%s = 0 after a streamed round trip", name)
		}
	}
	for _, name := range []string{
		"server.compress_stream.latency", "server.decompress_stream.latency", "server.checkpoint.latency",
	} {
		if reg.Timer(name).TotalNs() == 0 {
			t.Fatalf("%s recorded no time", name)
		}
	}
}
