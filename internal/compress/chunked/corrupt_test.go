package chunked

// Table-driven corrupt-framing tests for the chunked format. Each case
// crafts a hostile header or payload and asserts the decoder fails loudly —
// the seed code accepted trailing garbage, zero-filled short chunks, and
// wrapped an int accumulator on crafted chunk lengths.

import (
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/compress"
	"repro/internal/compress/sz"
)

// frame assembles a chunked payload from raw header fields and chunk
// payloads, bypassing Compress so tests can forge inconsistent tables.
func frame(n, cs, nChunks uint64, lengths []uint64, chunks ...[]byte) []byte {
	out := make([]byte, 0, 64)
	out = binary.AppendUvarint(out, magic)
	out = binary.AppendUvarint(out, version)
	out = binary.AppendUvarint(out, n)
	out = binary.AppendUvarint(out, cs)
	out = binary.AppendUvarint(out, nChunks)
	for _, l := range lengths {
		out = binary.AppendUvarint(out, l)
	}
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

// basePayload compresses n values with the bare sz codec.
func basePayload(t *testing.T, n int) []byte {
	t.Helper()
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i % 97)
	}
	buf, err := sz.New().Compress(data, []int{n}, compress.AbsBound(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestTrailingGarbageRejected(t *testing.T) {
	c := &Compressor{Base: sz.New(), ChunkSize: 1000}
	data := make([]float64, 2500)
	for i := range data {
		data[i] = float64(i)
	}
	buf, err := c.Compress(data, []int{len(data)}, compress.AbsBound(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]byte{{0}, {1, 2, 3}, make([]byte, 64)} {
		mut := append(append([]byte(nil), buf...), extra...)
		if _, err := c.Decompress(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%d trailing bytes: got %v, want ErrCorrupt", len(extra), err)
		}
	}
}

func TestShortChunkRejectedNotZeroFilled(t *testing.T) {
	// Frame table promises 1000-value chunks for n=2000, but the second
	// chunk's payload decodes to only 400 values. The seed code copied the
	// 400 and left the remaining 600 silently zero.
	c := &Compressor{Base: sz.New(), ChunkSize: 1000}
	full := basePayload(t, 1000)
	short := basePayload(t, 400)
	buf := frame(2000, 1000, 2,
		[]uint64{uint64(len(full)), uint64(len(short))}, full, short)
	out, err := c.Decompress(buf)
	if err == nil {
		t.Fatalf("short chunk accepted (decoded %d values)", len(out))
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestOverlongChunkRejected(t *testing.T) {
	// The second chunk decodes to more values than its extent; accepting
	// it would clobber a neighbouring chunk's output.
	c := &Compressor{Base: sz.New(), ChunkSize: 1000}
	full := basePayload(t, 1000)
	long := basePayload(t, 1400)
	buf := frame(2000, 1000, 2,
		[]uint64{uint64(len(full)), uint64(len(long))}, full, long)
	if _, err := c.Decompress(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestHostileChunkLengthsDoNotWrap(t *testing.T) {
	// Two lengths near 2^63 sum to a tiny value in a wrapping int; the
	// seed code then sliced past the buffer and panicked. Lengths must be
	// capped against the remaining bytes individually.
	c := &Compressor{Base: sz.New(), ChunkSize: 1000}
	huge := uint64(1) << 63
	buf := frame(2000, 1000, 2, []uint64{huge, huge})
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Decompress panicked: %v", r)
		}
	}()
	if _, err := c.Decompress(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestForgedChunkCountRejected(t *testing.T) {
	// nChunks is fully determined by n and cs; forged counts (extra empty
	// frames, missing frames) are rejected up front.
	c := &Compressor{Base: sz.New(), ChunkSize: 1000}
	full := basePayload(t, 1000)
	for _, nChunks := range []uint64{0, 1, 3, 7} {
		lengths := make([]uint64, nChunks)
		chunks := make([][]byte, 0, nChunks)
		for i := range lengths {
			lengths[i] = uint64(len(full))
			chunks = append(chunks, full)
		}
		buf := frame(2000, 1000, nChunks, lengths, chunks...)
		if _, err := c.Decompress(buf); err == nil {
			t.Fatalf("nChunks=%d accepted for n=2000 cs=1000", nChunks)
		}
	}
}

func TestEmptyChunkForNonEmptyExtentRejected(t *testing.T) {
	// A zero-length payload for a chunk that must carry values was the
	// other silent zero-fill path in the seed code.
	c := &Compressor{Base: sz.New(), ChunkSize: 1000}
	full := basePayload(t, 1000)
	buf := frame(2000, 1000, 2, []uint64{uint64(len(full)), 0}, full)
	if _, err := c.Decompress(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestImplausibleValueCountRejected(t *testing.T) {
	// A header claiming billions of values for a few bytes must fail
	// before the output array is allocated.
	c := &Compressor{Base: sz.New(), ChunkSize: 1000}
	n := uint64(1) << 33
	cs := uint64(1) << 33
	buf := frame(n, cs, 1, []uint64{4}, []byte{1, 2, 3, 4})
	if _, err := c.Decompress(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestEmptyInputRoundTrip(t *testing.T) {
	c := &Compressor{Base: sz.New(), ChunkSize: 1000}
	if _, err := c.Compress(nil, []int{1}, compress.AbsBound(1e-6)); err == nil {
		// dims {1} with no data is invalid; the real empty case is n=0
		// via the internal framing, exercised below.
		t.Fatal("invalid dims accepted")
	}
	// An n=0 frame with one empty chunk decodes to zero values.
	empty := frame(0, 1000, 1, []uint64{0})
	out, err := c.Decompress(empty)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty frame: %v (%d values)", err, len(out))
	}
}
