// Package chunked wraps any error-bounded codec with data-parallel
// chunking, the strategy ZFP's OpenMP mode and SZ's multi-threaded variants
// use: the stream is split into fixed-size chunks, chunks are compressed
// and decompressed concurrently by a bounded worker pool, and the framing
// records per-chunk payload lengths. The error bound is resolved against
// the whole stream first (a range-relative bound must not drift per chunk),
// then applied to every chunk as an absolute bound, so the global
// point-wise guarantee is preserved exactly.
//
// Chunking costs a little ratio (prediction/transform state resets at chunk
// boundaries, per-chunk headers) and buys near-linear speedup — the
// trade-off the parallel-scaling experiment quantifies.
package chunked

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/compress"
)

const (
	magic   = 0x43484b31 // "CHK1"
	version = 1
)

// DefaultChunkSize is the default number of values per chunk.
const DefaultChunkSize = 1 << 16

// Compressor applies Base to fixed-size chunks in parallel. Only 1-D data
// is supported (the mode the zMesh pipeline uses).
type Compressor struct {
	Base      compress.Compressor
	ChunkSize int // values per chunk; DefaultChunkSize when 0
	Workers   int // concurrent workers; GOMAXPROCS when 0
}

// New wraps base with default chunking.
func New(base compress.Compressor) *Compressor {
	return &Compressor{Base: base}
}

// Name implements compress.Compressor.
func (c *Compressor) Name() string { return c.Base.Name() + "-par" }

func (c *Compressor) chunkSize() int {
	if c.ChunkSize <= 0 {
		return DefaultChunkSize
	}
	return c.ChunkSize
}

func (c *Compressor) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// Compress implements compress.Compressor.
func (c *Compressor) Compress(data []float64, dims []int, bound compress.Bound) ([]byte, error) {
	if len(dims) != 1 {
		return nil, fmt.Errorf("chunked: only 1-D data supported, got %d dims", len(dims))
	}
	if err := compress.Validate(data, dims); err != nil {
		return nil, err
	}
	// Resolve the bound globally, then hand chunks an absolute bound.
	abs := compress.AbsBound(bound.Absolute(data))
	cs := c.chunkSize()
	nChunks := (len(data) + cs - 1) / cs
	if nChunks == 0 {
		nChunks = 1 // empty input still writes one (empty) frame table
	}
	payloads := make([][]byte, nChunks)
	errs := make([]error, nChunks)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range jobs {
				lo := ci * cs
				hi := lo + cs
				if hi > len(data) {
					hi = len(data)
				}
				if lo >= hi {
					payloads[ci] = nil
					continue
				}
				payloads[ci], errs[ci] = c.Base.Compress(data[lo:hi], []int{hi - lo}, abs)
			}
		}()
	}
	for ci := 0; ci < nChunks; ci++ {
		jobs <- ci
	}
	close(jobs)
	wg.Wait()
	for ci, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("chunked: chunk %d: %w", ci, err)
		}
	}
	out := make([]byte, 0, len(data))
	out = binary.AppendUvarint(out, magic)
	out = binary.AppendUvarint(out, version)
	out = binary.AppendUvarint(out, uint64(len(data)))
	out = binary.AppendUvarint(out, uint64(cs))
	out = binary.AppendUvarint(out, uint64(nChunks))
	for _, p := range payloads {
		out = binary.AppendUvarint(out, uint64(len(p)))
	}
	for _, p := range payloads {
		out = append(out, p...)
	}
	return out, nil
}

// ErrCorrupt is returned for malformed payloads.
var ErrCorrupt = errors.New("chunked: corrupt payload")

// chunkExtent is the number of values chunk ci must decode to for a stream
// of n values in chunks of cs.
func chunkExtent(ci, cs, n int) int {
	lo := ci * cs
	if lo >= n {
		return 0
	}
	if n-lo < cs {
		return n - lo
	}
	return cs
}

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(buf []byte) ([]float64, error) {
	rd := buf
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, ErrCorrupt
		}
		rd = rd[n:]
		return v, nil
	}
	mg, err := next()
	if err != nil || mg != magic {
		return nil, ErrCorrupt
	}
	ver, err := next()
	if err != nil || ver != version {
		return nil, fmt.Errorf("chunked: unsupported version %d", ver)
	}
	n64, err := next()
	if err != nil || n64 > compress.MaxElements {
		return nil, ErrCorrupt
	}
	cs64, err := next()
	if err != nil || cs64 == 0 || cs64 > compress.MaxElements {
		return nil, ErrCorrupt
	}
	nChunks64, err := next()
	if err != nil {
		return nil, ErrCorrupt
	}
	// The chunk count is fully determined by the value count and chunk
	// size; anything else is a forged frame table.
	expectChunks := (n64 + cs64 - 1) / cs64
	if expectChunks == 0 {
		expectChunks = 1 // empty input still writes one (empty) frame
	}
	if nChunks64 != expectChunks {
		return nil, ErrCorrupt
	}
	nChunks := int(nChunks64)
	n := int(n64)
	cs := int(cs64)
	// Hostile chunk lengths must not wrap an int accumulator: cap each
	// length against the remaining buffer and sum in uint64.
	lengths := make([]int, nChunks)
	var total uint64
	for i := range lengths {
		l, err := next()
		if err != nil {
			return nil, err
		}
		if l > uint64(len(rd)) {
			return nil, ErrCorrupt
		}
		lengths[i] = int(l)
		total += l
	}
	// The chunk payloads must fill the rest of the buffer exactly:
	// trailing bytes after the last chunk are corruption, not slack.
	if total != uint64(len(rd)) {
		return nil, ErrCorrupt
	}
	chunks := make([][]byte, nChunks)
	off := 0
	for i, l := range lengths {
		chunks[i] = rd[off : off+l]
		off += l
	}
	// Validate chunk shapes before allocating the (possibly huge) output:
	// every chunk that must carry values needs a non-empty payload, and the
	// claimed value count must be plausible for the bytes present.
	for ci := 0; ci < nChunks; ci++ {
		if expect := chunkExtent(ci, cs, n); (expect > 0) != (len(chunks[ci]) > 0) {
			return nil, ErrCorrupt
		}
	}
	if err := compress.PlausibleCount(n, len(buf)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	out := make([]float64, n)
	errs := make([]error, nChunks)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range jobs {
				expect := chunkExtent(ci, cs, n)
				if expect == 0 {
					continue
				}
				vals, err := c.Base.Decompress(chunks[ci])
				if err != nil {
					errs[ci] = err
					continue
				}
				// A chunk decoding to the wrong extent would silently
				// zero-fill (short) or clobber its neighbour (long).
				if len(vals) != expect {
					errs[ci] = ErrCorrupt
					continue
				}
				copy(out[ci*cs:], vals)
			}
		}()
	}
	for ci := 0; ci < nChunks; ci++ {
		jobs <- ci
	}
	close(jobs)
	wg.Wait()
	for ci, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("chunked: chunk %d: %w", ci, err)
		}
	}
	return out, nil
}
