package chunked

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
	"repro/internal/compress/sz"
	"repro/internal/compress/zfp"
)

func maxErr(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if e := math.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func signal(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(float64(i)/75) * float64(1+i/10000)
	}
	return out
}

func TestRoundTripBothBases(t *testing.T) {
	data := signal(300000)
	for _, base := range []compress.Compressor{sz.New(), zfp.New()} {
		c := New(base)
		eb := 1e-4
		buf, err := c.Compress(data, []int{len(data)}, compress.AbsBound(eb))
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got, err := c.Decompress(buf)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(got) != len(data) {
			t.Fatalf("%s: %d values", c.Name(), len(got))
		}
		if e := maxErr(data, got); e > eb {
			t.Fatalf("%s: max error %g", c.Name(), e)
		}
	}
}

func TestRelBoundResolvedGlobally(t *testing.T) {
	// A range-relative bound must be resolved against the WHOLE stream:
	// construct data whose chunks have very different local ranges. If a
	// chunk resolved the bound locally its absolute tolerance would differ,
	// breaking the global guarantee.
	n := 3 * DefaultChunkSize
	data := make([]float64, n)
	for i := range data {
		switch {
		case i < DefaultChunkSize:
			data[i] = math.Sin(float64(i)) * 1e-6 // tiny range chunk
		default:
			data[i] = math.Sin(float64(i)/100) * 1e3 // huge range chunk
		}
	}
	c := New(sz.New())
	rel := 1e-4
	buf, err := c.Compress(data, []int{n}, compress.RelBound(rel))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	globalAbs := compress.RelBound(rel).Absolute(data)
	if e := maxErr(data, got); e > globalAbs {
		t.Fatalf("global relative bound violated: %g > %g", e, globalAbs)
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	data := signal(100000)
	var ref []byte
	for _, workers := range []int{1, 2, 7} {
		c := &Compressor{Base: sz.New(), Workers: workers}
		buf, err := c.Compress(data, []int{len(data)}, compress.AbsBound(1e-4))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = buf
			continue
		}
		if len(buf) != len(ref) {
			t.Fatalf("workers=%d: payload size %d differs from %d (must be deterministic)",
				workers, len(buf), len(ref))
		}
		for i := range buf {
			if buf[i] != ref[i] {
				t.Fatalf("workers=%d: payload differs at byte %d", workers, i)
			}
		}
	}
}

func TestChunkBoundaryExactness(t *testing.T) {
	// Sizes around the chunk boundary must all round-trip.
	c := &Compressor{Base: sz.New(), ChunkSize: 1000}
	for _, n := range []int{1, 999, 1000, 1001, 2000, 2001} {
		data := signal(n)
		buf, err := c.Compress(data, []int{n}, compress.AbsBound(1e-5))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := c.Decompress(buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d values", n, len(got))
		}
		if e := maxErr(data, got); e > 1e-5 {
			t.Fatalf("n=%d: max error %g", n, e)
		}
	}
}

func TestOnlyOneD(t *testing.T) {
	c := New(sz.New())
	if _, err := c.Compress(make([]float64, 4), []int{2, 2}, compress.AbsBound(1)); err == nil {
		t.Fatal("2-D accepted")
	}
}

func TestCorrupt(t *testing.T) {
	c := New(sz.New())
	if _, err := c.Decompress(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := c.Decompress([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted")
	}
	data := signal(5000)
	buf, err := c.Compress(data, []int{5000}, compress.AbsBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(buf[:len(buf)/3]); err == nil {
		t.Fatal("truncated accepted")
	}
}

func TestName(t *testing.T) {
	if got := New(zfp.New()).Name(); got != "zfp-par" {
		t.Fatalf("name %q", got)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, size uint16, chunkPow uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size%5000) + 1
		data := make([]float64, n)
		v := 0.0
		for i := range data {
			v += rng.NormFloat64()
			data[i] = v
		}
		c := &Compressor{Base: sz.New(), ChunkSize: 1 << (chunkPow%8 + 4)}
		eb := 1e-3
		buf, err := c.Compress(data, []int{n}, compress.AbsBound(eb))
		if err != nil {
			return false
		}
		got, err := c.Decompress(buf)
		if err != nil || len(got) != n {
			return false
		}
		return maxErr(data, got) <= eb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkChunkedCompress(b *testing.B) {
	data := signal(1 << 20)
	c := New(sz.New())
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data, []int{len(data)}, compress.AbsBound(1e-4)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialCompress(b *testing.B) {
	data := signal(1 << 20)
	c := sz.New()
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data, []int{len(data)}, compress.AbsBound(1e-4)); err != nil {
			b.Fatal(err)
		}
	}
}
