package chunked

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/compress/sz"
	"repro/internal/compress/zfp"
)

// FuzzDecompress feeds arbitrary bytes to the chunked framing over both
// base codecs, seeded with valid round-trip payloads across chunk-boundary
// shapes. The decoder must never panic, and the frame table must account
// for every byte and every value — truncation, trailing garbage, and
// short-decoding chunks all surface as errors, never as zero-filled output.
func FuzzDecompress(f *testing.F) {
	data := make([]float64, 5000)
	for i := range data {
		data[i] = math.Sin(float64(i) / 40)
	}
	for _, n := range []int{1, 999, 1000, 5000} {
		c := &Compressor{Base: sz.New(), ChunkSize: 1000}
		if buf, err := c.Compress(data[:n], []int{n}, compress.AbsBound(1e-4)); err == nil {
			f.Add(buf)
		}
	}
	if buf, err := New(zfp.New()).Compress(data, []int{len(data)}, compress.AbsBound(1e-4)); err == nil {
		f.Add(buf)
	}
	f.Add([]byte{})

	c := &Compressor{Base: sz.New(), ChunkSize: 1000, Workers: 2}
	f.Fuzz(func(t *testing.T, buf []byte) {
		out, err := c.Decompress(buf)
		if err == nil && len(buf) > 0 && len(out) > compress.MaxExpansion*len(buf) {
			t.Fatalf("decoded %d values from %d bytes", len(out), len(buf))
		}
	})
}
