package lossless

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
)

func TestExactRoundTrip(t *testing.T) {
	c := New()
	data := make([]float64, 4096)
	for i := range data {
		data[i] = math.Sin(float64(i) / 10)
	}
	buf, err := c.Compress(data, []int{len(data)}, compress.AbsBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("value %d: %v != %v (lossless must be exact)", i, got[i], data[i])
		}
	}
}

func TestRandomDataNearIncompressible(t *testing.T) {
	c := New()
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 8192)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	buf, err := c.Compress(data, []int{len(data)}, compress.AbsBound(1))
	if err != nil {
		t.Fatal(err)
	}
	// Random doubles barely compress: the floor lossy codecs must clear.
	if r := compress.Ratio(len(data), buf); r > 1.5 {
		t.Fatalf("random data ratio %.2f unexpectedly high", r)
	}
}

func TestMultiDim(t *testing.T) {
	c := New()
	data := make([]float64, 6*7*8)
	for i := range data {
		data[i] = float64(i)
	}
	buf, err := c.Compress(data, []int{6, 7, 8}, compress.AbsBound(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("%d values", len(got))
	}
}

func TestCorrupt(t *testing.T) {
	c := New()
	if _, err := c.Decompress(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := c.Decompress([]byte{9, 9, 9}); err == nil {
		t.Fatal("garbage accepted")
	}
	data := []float64{1, 2, 3, 4}
	buf, err := c.Compress(data, []int{4}, compress.AbsBound(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(buf[:len(buf)-2]); err == nil {
		t.Fatal("truncated accepted")
	}
}

func TestRegistered(t *testing.T) {
	c, err := compress.Get("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "gzip" {
		t.Fatalf("name %q", c.Name())
	}
}

func TestRoundTripQuick(t *testing.T) {
	c := New()
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0 // Validate rejects non-finite; normalize
			}
		}
		if len(vals) == 0 {
			return true
		}
		buf, err := c.Compress(vals, []int{len(vals)}, compress.AbsBound(1))
		if err != nil {
			return false
		}
		got, err := c.Decompress(buf)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
