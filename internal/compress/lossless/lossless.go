// Package lossless provides the DEFLATE-based lossless baseline codec
// ("gzip" in the evaluation tables). Scientific-data papers, zMesh
// included, quote lossless general-purpose compression as the floor that
// error-bounded lossy compressors must clear; on floating-point fields it
// typically achieves ratios barely above 1.
package lossless

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/compress"
)

const (
	magic   = 0x4c4f5331 // "LOS1"
	version = 1
)

// Compressor is the lossless codec. The error bound is accepted for
// interface compatibility and trivially satisfied (reconstruction is
// exact).
type Compressor struct {
	// Level is the flate level; 0 means flate.DefaultCompression.
	Level int
}

// New returns a lossless codec at the default level.
func New() *Compressor { return &Compressor{} }

func init() {
	compress.Register("gzip", func() compress.Compressor { return New() })
}

// Name implements compress.Compressor.
func (c *Compressor) Name() string { return "gzip" }

// Compress implements compress.Compressor. The bound is ignored — output
// reconstructs exactly.
func (c *Compressor) Compress(data []float64, dims []int, bound compress.Bound) ([]byte, error) {
	if err := compress.Validate(data, dims); err != nil {
		return nil, err
	}
	head := make([]byte, 0, 32)
	head = binary.AppendUvarint(head, magic)
	head = binary.AppendUvarint(head, version)
	head = binary.AppendUvarint(head, uint64(len(dims)))
	for _, d := range dims {
		head = binary.AppendUvarint(head, uint64(d))
	}
	var out bytes.Buffer
	out.Write(head)
	level := c.Level
	if level == 0 {
		level = flate.DefaultCompression
	}
	fw, err := flate.NewWriter(&out, level)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, 8)
	for _, v := range data {
		binary.LittleEndian.PutUint64(raw, math.Float64bits(v))
		if _, err := fw.Write(raw); err != nil {
			return nil, err
		}
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// ErrCorrupt is returned for malformed payloads.
var ErrCorrupt = errors.New("lossless: corrupt payload")

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(buf []byte) ([]float64, error) {
	rd := buf
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, ErrCorrupt
		}
		rd = rd[n:]
		return v, nil
	}
	mg, err := next()
	if err != nil || mg != magic {
		return nil, ErrCorrupt
	}
	ver, err := next()
	if err != nil || ver != version {
		return nil, fmt.Errorf("lossless: unsupported version %d", ver)
	}
	ndims, err := next()
	if err != nil || ndims < 1 || ndims > 3 {
		return nil, ErrCorrupt
	}
	dims := make([]int, ndims)
	for i := range dims {
		d, err := next()
		if err != nil || d == 0 || d > 1<<40 {
			return nil, ErrCorrupt
		}
		dims[i] = int(d)
	}
	n, err := compress.CheckSize(dims)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := compress.PlausibleCount(n, len(rd)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	// Read at most one byte past the expected length: enough to detect a
	// stream that is too long without inflating an unbounded DEFLATE bomb.
	body, err := io.ReadAll(io.LimitReader(flate.NewReader(bytes.NewReader(rd)), int64(n)*8+1))
	if err != nil {
		return nil, fmt.Errorf("lossless: %w", err)
	}
	if len(body) != n*8 {
		return nil, fmt.Errorf("lossless: %d bytes for %d values", len(body), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return out, nil
}
