package lossless

import (
	"math"
	"testing"

	"repro/internal/compress"
)

// FuzzDecompress feeds arbitrary bytes to the lossless decoder, seeded with
// valid round-trip payloads. The decoder must never panic, and a successful
// decode must be exact for untampered inputs, so any accepted stream stays
// within the plausible-expansion envelope.
func FuzzDecompress(f *testing.F) {
	c := New()
	data := make([]float64, 256)
	for i := range data {
		data[i] = math.Sqrt(float64(i)) * math.Sin(float64(i)/5)
	}
	for _, dims := range [][]int{{256}, {16, 16}, {4, 8, 8}} {
		if buf, err := c.Compress(data, dims, compress.Bound{}); err == nil {
			f.Add(buf)
		}
	}
	// Highly compressible payload: constant data stresses the DEFLATE
	// expansion limit.
	if buf, err := c.Compress(make([]float64, 4096), []int{4096}, compress.Bound{}); err == nil {
		f.Add(buf)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, buf []byte) {
		out, err := c.Decompress(buf)
		if err == nil && len(buf) > 0 && len(out) > compress.MaxExpansion*len(buf) {
			t.Fatalf("decoded %d values from %d bytes", len(out), len(buf))
		}
	})
}
