package sz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
)

func maxErr(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if e := math.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func smoothSignal(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		t := float64(i) / float64(n)
		out[i] = math.Sin(2*math.Pi*5*t) + 0.3*math.Cos(2*math.Pi*17*t)
	}
	return out
}

func TestRoundTrip1D(t *testing.T) {
	c := New()
	data := smoothSignal(10000)
	for _, eb := range []float64{1e-1, 1e-3, 1e-6} {
		buf, err := c.Compress(data, []int{len(data)}, compress.AbsBound(eb))
		if err != nil {
			t.Fatalf("eb=%g: %v", eb, err)
		}
		got, err := c.Decompress(buf)
		if err != nil {
			t.Fatalf("eb=%g: %v", eb, err)
		}
		if len(got) != len(data) {
			t.Fatalf("eb=%g: %d values", eb, len(got))
		}
		if e := maxErr(data, got); e > eb {
			t.Fatalf("eb=%g: max error %g exceeds bound", eb, e)
		}
	}
}

func TestSmoothCompressesWell(t *testing.T) {
	c := New()
	data := smoothSignal(100000)
	buf, err := c.Compress(data, []int{len(data)}, compress.RelBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	if r := compress.Ratio(len(data), buf); r < 8 {
		t.Fatalf("smooth signal ratio %.2f, want >= 8", r)
	}
}

func TestSmootherMeansSmaller(t *testing.T) {
	// The core property zMesh relies on: for the same values in a different
	// order, a smoother ordering compresses better.
	c := New()
	n := 50000
	smooth := smoothSignal(n)
	shuffled := append([]float64(nil), smooth...)
	rng := rand.New(rand.NewSource(5))
	rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	bs, err := c.Compress(smooth, []int{n}, compress.AbsBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	bsh, err := c.Compress(shuffled, []int{n}, compress.AbsBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) >= len(bsh) {
		t.Fatalf("smooth %d bytes not smaller than shuffled %d bytes", len(bs), len(bsh))
	}
}

func TestRoundTrip2D(t *testing.T) {
	c := New()
	ny, nx := 64, 96
	data := make([]float64, ny*nx)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			data[j*nx+i] = math.Sin(float64(i)/7) * math.Cos(float64(j)/5)
		}
	}
	eb := 1e-4
	buf, err := c.Compress(data, []int{ny, nx}, compress.AbsBound(eb))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, got); e > eb {
		t.Fatalf("2-D max error %g exceeds %g", e, eb)
	}
}

func TestRoundTrip3D(t *testing.T) {
	c := New()
	nz, ny, nx := 16, 24, 20
	data := make([]float64, nz*ny*nx)
	idx := 0
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				data[idx] = float64(i+j+k) + math.Sin(float64(idx)/50)
				idx++
			}
		}
	}
	eb := 1e-3
	buf, err := c.Compress(data, []int{nz, ny, nx}, compress.AbsBound(eb))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, got); e > eb {
		t.Fatalf("3-D max error %g exceeds %g", e, eb)
	}
}

func TestRandomDataBounded(t *testing.T) {
	// Worst case: white noise. Ratio will be poor but the bound must hold.
	c := New()
	rng := rand.New(rand.NewSource(42))
	data := make([]float64, 20000)
	for i := range data {
		data[i] = rng.NormFloat64() * 100
	}
	eb := 0.5
	buf, err := c.Compress(data, []int{len(data)}, compress.AbsBound(eb))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, got); e > eb {
		t.Fatalf("max error %g exceeds %g", e, eb)
	}
}

func TestConstantData(t *testing.T) {
	c := New()
	data := make([]float64, 5000)
	for i := range data {
		data[i] = 3.14159
	}
	buf, err := c.Compress(data, []int{len(data)}, compress.RelBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if math.Abs(v-3.14159) > 1e-3 {
			t.Fatalf("value %d = %v", i, v)
		}
	}
	if r := compress.Ratio(len(data), buf); r < 100 {
		t.Fatalf("constant data ratio %.1f, want >= 100", r)
	}
}

func TestRelativeBound(t *testing.T) {
	c := New()
	data := smoothSignal(10000)
	lo, hi := data[0], data[0]
	for _, v := range data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	rel := 1e-3
	buf, err := c.Compress(data, []int{len(data)}, compress.RelBound(rel))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, got); e > rel*(hi-lo) {
		t.Fatalf("max error %g exceeds relative bound %g", e, rel*(hi-lo))
	}
}

func TestTinyInputs(t *testing.T) {
	c := New()
	for _, n := range []int{1, 2, 3, 5} {
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(i) * 1.5
		}
		buf, err := c.Compress(data, []int{n}, compress.AbsBound(1e-6))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got, err := c.Decompress(buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d", n, len(got))
		}
		if e := maxErr(data, got); e > 1e-6 {
			t.Fatalf("n=%d: error %g", n, e)
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	c := New()
	if _, err := c.Compress([]float64{1, 2}, []int{3}, compress.AbsBound(1e-3)); err == nil {
		t.Fatal("dims mismatch accepted")
	}
	if _, err := c.Compress([]float64{1, math.NaN()}, []int{2}, compress.AbsBound(1e-3)); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := c.Compress([]float64{1, 2}, []int{2}, compress.AbsBound(0)); err == nil {
		t.Fatal("zero bound accepted")
	}
	if _, err := c.Compress([]float64{1, 2}, []int{2}, compress.AbsBound(-1)); err == nil {
		t.Fatal("negative bound accepted")
	}
	bad := &Compressor{Intervals: 7}
	if _, err := bad.Compress([]float64{1, 2}, []int{2}, compress.AbsBound(1e-3)); err == nil {
		t.Fatal("odd intervals accepted")
	}
}

func TestCorruptPayload(t *testing.T) {
	c := New()
	data := smoothSignal(1000)
	buf, err := c.Compress(data, []int{1000}, compress.AbsBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := c.Decompress(buf[:3]); err == nil {
		t.Fatal("truncated accepted")
	}
	garbage := append([]byte{0}, 0xde, 0xad, 0xbe, 0xef)
	if _, err := c.Decompress(garbage); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDisableLossless(t *testing.T) {
	c := &Compressor{Intervals: DefaultIntervals, DisableLossless: true}
	data := smoothSignal(5000)
	buf, err := c.Compress(data, []int{5000}, compress.AbsBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	got, err := New().Decompress(buf) // default codec decodes it too
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, got); e > 1e-4 {
		t.Fatalf("error %g", e)
	}
}

func TestRegistry(t *testing.T) {
	c, err := compress.Get("sz")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "sz" {
		t.Fatalf("name %q", c.Name())
	}
}

// property: for random smooth-ish walks, bound holds at every point and the
// length round-trips, at every tested error bound.
func TestBoundQuick(t *testing.T) {
	c := New()
	f := func(seed int64, size uint16, ebExp uint8) bool {
		n := int(size%3000) + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([]float64, n)
		v := 0.0
		for i := range data {
			v += rng.NormFloat64()
			data[i] = v
		}
		eb := math.Pow(10, -float64(ebExp%7)-1)
		buf, err := c.Compress(data, []int{n}, compress.AbsBound(eb))
		if err != nil {
			return false
		}
		got, err := c.Decompress(buf)
		if err != nil || len(got) != n {
			return false
		}
		return maxErr(data, got) <= eb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress1D(b *testing.B) {
	c := New()
	data := smoothSignal(1 << 18)
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data, []int{len(data)}, compress.RelBound(1e-4)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress1D(b *testing.B) {
	c := New()
	data := smoothSignal(1 << 18)
	buf, err := c.Compress(data, []int{len(data)}, compress.RelBound(1e-4))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(buf); err != nil {
			b.Fatal(err)
		}
	}
}
