package sz

import (
	"math"
	"testing"

	"repro/internal/compress"
)

// FuzzDecompress feeds arbitrary bytes to the SZ decoder, seeded with valid
// round-trip payloads across dimensionalities and codec variants. The
// decoder must never panic and must never report more values than the
// payload could plausibly encode.
func FuzzDecompress(f *testing.F) {
	data := make([]float64, 600)
	for i := range data {
		data[i] = math.Sin(float64(i)/9) + 0.3*math.Cos(float64(i)/2)
	}
	variants := []*Compressor{
		New(),
		{Intervals: DefaultIntervals, DisableLossless: true},
		{Intervals: DefaultIntervals, DisableRegression: true},
		{Intervals: 64},
	}
	for _, c := range variants {
		for _, dims := range [][]int{{600}, {20, 30}, {10, 6, 10}} {
			if buf, err := c.Compress(data, dims, compress.AbsBound(1e-3)); err == nil {
				f.Add(buf)
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 0xff})

	c := New()
	f.Fuzz(func(t *testing.T, buf []byte) {
		out, err := c.Decompress(buf)
		if err == nil && len(buf) > 0 && len(out) > compress.MaxExpansion*len(buf) {
			t.Fatalf("decoded %d values from %d bytes", len(out), len(buf))
		}
	})
}
