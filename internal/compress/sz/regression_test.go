package sz

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/compress"
)

func TestFitRegressionExactOnPlane(t *testing.T) {
	// A linear field must be fitted exactly (up to float32 coefficient
	// rounding).
	nx, ny := 12, 12
	data := make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			data[j*nx+i] = 3 + 0.5*float64(i) - 0.25*float64(j)
		}
	}
	g := grid{gx: nx, gy: ny, gz: 1}
	c := fitRegression(data, g, 0, 0, 0, nx, ny, 1)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			want := data[j*nx+i]
			got := c.predict(i, j, 0, nx, ny, 1)
			if math.Abs(got-want) > 1e-4 {
				t.Fatalf("plane fit at (%d,%d): %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestFitRegression3D(t *testing.T) {
	nx, ny, nz := 6, 6, 6
	data := make([]float64, nx*ny*nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				data[(k*ny+j)*nx+i] = 1 + float64(i) + 2*float64(j) - 0.5*float64(k)
			}
		}
	}
	g := grid{gx: nx, gy: ny, gz: nz}
	c := fitRegression(data, g, 0, 0, 0, nx, ny, nz)
	if math.Abs(c.b1-1) > 1e-5 || math.Abs(c.b2-2) > 1e-5 || math.Abs(c.b3+0.5) > 1e-5 {
		t.Fatalf("3-D slopes %v %v %v", c.b1, c.b2, c.b3)
	}
}

func TestRegCoeffsRoundTrip(t *testing.T) {
	for _, threeD := range []bool{false, true} {
		c := regCoeffs{m: 1.5, b1: -0.25, b2: 3.75, b3: 0.125}
		if !threeD {
			c.b3 = 0
		}
		w := bitstream.NewWriter(0)
		c.write(w, threeD)
		r := bitstream.NewReader(w.Bytes())
		got, err := readRegCoeffs(r, threeD)
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatalf("threeD=%v: %+v != %+v", threeD, got, c)
		}
	}
}

func TestChooseRegressionPrefersPlane(t *testing.T) {
	// On a steep plane, regression residuals are ~0 while Lorenzo carries
	// the first element's full value; regression must win.
	nx, ny := 12, 12
	data := make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			data[j*nx+i] = 100 * float64(i+j)
		}
	}
	g := grid{gx: nx, gy: ny, gz: 1}
	c := fitRegression(data, g, 0, 0, 0, nx, ny, 1)
	if !chooseRegression(data, g, c, 1e-4, 0, 0, 0, nx, ny, 1) {
		t.Fatal("regression not chosen for a steep plane")
	}
}

func TestChooseRegressionPrefersLorenzoOnStep(t *testing.T) {
	// A step function fits no plane; Lorenzo's residuals are zero away
	// from the discontinuity.
	nx, ny := 12, 12
	data := make([]float64, nx*ny)
	for j := 1; j < ny; j++ { // leave row 0 at zero so Lorenzo starts clean
		for i := 0; i < nx; i++ {
			if i >= nx/2 {
				data[j*nx+i] = 1
			}
		}
	}
	g := grid{gx: nx, gy: ny, gz: 1}
	c := fitRegression(data, g, 0, 0, 0, nx, ny, 1)
	if chooseRegression(data, g, c, 1e-4, 0, 0, 0, nx, ny, 1) {
		t.Fatal("regression chosen for a step function")
	}
}

func TestRegressionImprovesGradientField(t *testing.T) {
	// A smooth 2-D field with strong gradients: the blocked scheme must
	// not lose to pure Lorenzo (SZ-2 vs SZ-1 behaviour).
	ny, nx := 256, 256
	data := make([]float64, ny*nx)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			x, y := float64(i)/float64(nx), float64(j)/float64(ny)
			data[j*nx+i] = 100*x*x + 50*y + 20*math.Sin(4*math.Pi*x*y)
		}
	}
	bound := compress.RelBound(1e-4)
	withReg := New()
	noReg := &Compressor{Intervals: DefaultIntervals, DisableRegression: true}
	a, err := withReg.Compress(data, []int{ny, nx}, bound)
	if err != nil {
		t.Fatal(err)
	}
	b, err := noReg.Compress(data, []int{ny, nx}, bound)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) > len(b)*105/100 {
		t.Fatalf("blocked scheme %d bytes much worse than Lorenzo %d bytes", len(a), len(b))
	}
	// Both decode within bound.
	for _, buf := range [][]byte{a, b} {
		got, err := New().Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		eb := bound.Absolute(data)
		for i := range data {
			if math.Abs(got[i]-data[i]) > eb {
				t.Fatalf("bound violated: %g > %g", math.Abs(got[i]-data[i]), eb)
			}
		}
	}
}

func TestBlockedRoundTripOddSizes(t *testing.T) {
	// Edge blocks (array not a multiple of the block size) must round-trip.
	rng := rand.New(rand.NewSource(8))
	c := New()
	for _, dims := range [][]int{{13, 17}, {25, 12}, {7, 7, 7}, {6, 13, 9}} {
		n := 1
		for _, d := range dims {
			n *= d
		}
		data := make([]float64, n)
		v := 0.0
		for i := range data {
			v += rng.NormFloat64()
			data[i] = v
		}
		eb := 1e-3
		buf, err := c.Compress(data, dims, compress.AbsBound(eb))
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		got, err := c.Decompress(buf)
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		if e := maxErr(data, got); e > eb {
			t.Fatalf("dims %v: max error %g", dims, e)
		}
	}
}

func TestDisableRegressionStillDecodes(t *testing.T) {
	// Payloads from the ablation configuration decode with the default
	// codec (scheme is in the header).
	data := make([]float64, 24*24)
	for i := range data {
		data[i] = float64(i % 24)
	}
	noReg := &Compressor{Intervals: DefaultIntervals, DisableRegression: true}
	buf, err := noReg.Compress(data, []int{24, 24}, compress.AbsBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	got, err := New().Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, got); e > 1e-4 {
		t.Fatalf("max error %g", e)
	}
}
