package sz

import (
	"math"

	"repro/internal/bitstream"
)

// SZ-2.x-style blocked prediction for 2-D and 3-D data: the array is split
// into fixed-size blocks and each block independently chooses between the
// Lorenzo predictor (on reconstructed neighbours) and a linear regression
// predictor f = m + b1·(i−ī) + b2·(j−j̄) [+ b3·(k−k̄)] fitted to the
// block's own data. Regression wins in smooth, high-gradient regions where
// Lorenzo's neighbour differences are dominated by quantization-noise
// feedback; Lorenzo wins around discontinuities. The selection bit and the
// (float32-rounded) coefficients are stored per block.

// Block edge lengths, matching SZ-2's choices.
const (
	regBlock2D = 12
	regBlock3D = 6
)

// regCoeffs holds the (rounded) regression plane for one block.
type regCoeffs struct {
	m, b1, b2, b3 float64
}

// grid describes the global array: extents (gz=1 and/or gy=1 collapse
// dimensions) with x fastest-varying.
type grid struct {
	gx, gy, gz int
}

func (g grid) at(data []float64, i, j, k int) float64 {
	return data[(k*g.gy+j)*g.gx+i]
}

// fitRegression fits the least-squares linear model over the block with
// origin (ox,oy,oz) and extent (ni,nj,nk). The closed form uses centred
// coordinates, for which the normal equations decouple on a lattice.
func fitRegression(data []float64, g grid, ox, oy, oz, ni, nj, nk int) regCoeffs {
	ci := float64(ni-1) / 2
	cj := float64(nj-1) / 2
	ck := float64(nk-1) / 2
	var sum, si, sj, sk float64
	for k := 0; k < nk; k++ {
		for j := 0; j < nj; j++ {
			for i := 0; i < ni; i++ {
				v := g.at(data, ox+i, oy+j, oz+k)
				sum += v
				si += v * (float64(i) - ci)
				sj += v * (float64(j) - cj)
				sk += v * (float64(k) - ck)
			}
		}
	}
	n := float64(ni * nj * nk)
	den := func(m int) float64 {
		c := float64(m-1) / 2
		var s float64
		for i := 0; i < m; i++ {
			d := float64(i) - c
			s += d * d
		}
		return s
	}
	var c regCoeffs
	c.m = sum / n
	if d := den(ni) * float64(nj*nk); d > 0 {
		c.b1 = si / d
	}
	if d := den(nj) * float64(ni*nk); d > 0 {
		c.b2 = sj / d
	}
	if d := den(nk) * float64(ni*nj); d > 0 {
		c.b3 = sk / d
	}
	// Round through float32: the representation the decoder will see.
	c.m = float64(float32(c.m))
	c.b1 = float64(float32(c.b1))
	c.b2 = float64(float32(c.b2))
	c.b3 = float64(float32(c.b3))
	return c
}

// predict evaluates the regression plane at block-local coordinates.
func (c regCoeffs) predict(i, j, k, ni, nj, nk int) float64 {
	return c.m +
		c.b1*(float64(i)-float64(ni-1)/2) +
		c.b2*(float64(j)-float64(nj-1)/2) +
		c.b3*(float64(k)-float64(nk-1)/2)
}

// write serializes the coefficients (float32 each; b3 only for 3-D).
func (c regCoeffs) write(w *bitstream.Writer, threeD bool) {
	w.WriteBits(uint64(math.Float32bits(float32(c.m))), 32)
	w.WriteBits(uint64(math.Float32bits(float32(c.b1))), 32)
	w.WriteBits(uint64(math.Float32bits(float32(c.b2))), 32)
	if threeD {
		w.WriteBits(uint64(math.Float32bits(float32(c.b3))), 32)
	}
}

// readRegCoeffs inverts write.
func readRegCoeffs(r *bitstream.Reader, threeD bool) (regCoeffs, error) {
	var c regCoeffs
	read := func(dst *float64) error {
		v, err := r.ReadBits(32)
		if err != nil {
			return err
		}
		*dst = float64(math.Float32frombits(uint32(v)))
		return nil
	}
	if err := read(&c.m); err != nil {
		return c, err
	}
	if err := read(&c.b1); err != nil {
		return c, err
	}
	if err := read(&c.b2); err != nil {
		return c, err
	}
	if threeD {
		if err := read(&c.b3); err != nil {
			return c, err
		}
	}
	return c, nil
}

// chooseRegression estimates, on the original data, whether the regression
// plane out-predicts Lorenzo for this block. Lorenzo is evaluated on
// original (global) neighbours, the way SZ's sampling pass estimates it,
// and regression carries a small charge for its coefficient storage.
func chooseRegression(data []float64, g grid, c regCoeffs, eb float64,
	ox, oy, oz, ni, nj, nk int) bool {
	at := func(i, j, k int) float64 {
		if i < 0 || j < 0 || k < 0 {
			return 0
		}
		return g.at(data, i, j, k)
	}
	var lorenzo, reg float64
	for k := 0; k < nk; k++ {
		for j := 0; j < nj; j++ {
			for i := 0; i < ni; i++ {
				gi, gj, gk := ox+i, oy+j, oz+k
				v := at(gi, gj, gk)
				var pl float64
				if g.gz == 1 {
					pl = at(gi-1, gj, 0) + at(gi, gj-1, 0) - at(gi-1, gj-1, 0)
				} else {
					pl = at(gi-1, gj, gk) + at(gi, gj-1, gk) + at(gi, gj, gk-1) -
						at(gi-1, gj-1, gk) - at(gi-1, gj, gk-1) - at(gi, gj-1, gk-1) +
						at(gi-1, gj-1, gk-1)
				}
				lorenzo += math.Abs(v - pl)
				reg += math.Abs(v - c.predict(i, j, k, ni, nj, nk))
			}
		}
	}
	// Coefficient storage charge expressed in residual currency (~one
	// quantization bin per stored byte).
	reg += 32 * eb
	return reg < lorenzo
}
