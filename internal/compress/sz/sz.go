// Package sz implements an SZ-style error-bounded lossy compressor
// (Di & Cappello, IPDPS'16; Tao et al., IPDPS'17): each value is predicted
// by a Lorenzo predictor evaluated on previously *reconstructed* values, the
// prediction residual is quantized with linear-scaling quantization against
// the absolute error bound, quantization codes are entropy-coded with a
// canonical Huffman coder, and the whole payload is passed through a
// DEFLATE lossless stage. Values whose residual falls outside the
// quantization range are stored verbatim ("unpredictable").
//
// Like SZ, this codec is a prediction-based compressor: its ratio improves
// directly with the smoothness of the input stream, which is the property
// zMesh's reordering targets.
package sz

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/bitstream"
	"repro/internal/compress"
	"repro/internal/huffman"
)

const (
	magic   = 0x535a4731 // "SZG1"
	version = 1
)

// Prediction schemes for 2-D/3-D data.
const (
	schemeLorenzo = 0 // global Lorenzo prediction
	schemeBlocked = 1 // SZ-2-style per-block Lorenzo/regression selection
)

// DefaultIntervals is the default linear-scaling quantization capacity
// (SZ's default quantization_intervals), i.e. the Huffman alphabet size.
const DefaultIntervals = 65536

// Compressor is the SZ-like codec. The zero value is NOT ready: use New.
type Compressor struct {
	// Intervals is the quantization capacity (alphabet size). Must be an
	// even number >= 4. Code 0 is reserved for unpredictable values.
	Intervals int
	// DisableLossless skips the DEFLATE stage (for ablation studies).
	DisableLossless bool
	// DisableRegression turns off SZ-2-style per-block regression for
	// 2-D/3-D inputs, falling back to pure Lorenzo (for ablation studies).
	DisableRegression bool
}

// New returns an SZ codec with default settings.
func New() *Compressor { return &Compressor{Intervals: DefaultIntervals} }

func init() {
	compress.Register("sz", func() compress.Compressor { return New() })
}

// Name implements compress.Compressor.
func (c *Compressor) Name() string { return "sz" }

// predict1D predicts from previous reconstructed values. Order 1 is the
// preceding-neighbour (Lorenzo) predictor; order 2 extrapolates linearly.
func predict1D(recon []float64, i, order int) float64 {
	switch {
	case i == 0:
		return 0
	case i == 1 || order == 1:
		return recon[i-1]
	default:
		return 2*recon[i-1] - recon[i-2]
	}
}

// choose1DPredictor samples the data and picks the 1-D predictor order with
// the smaller total residual, mirroring SZ's predictor auto-tuning. Raw
// values stand in for reconstructed ones during sampling, which is exact in
// the limit of small error bounds.
func choose1DPredictor(data []float64) int {
	var r1, r2 float64
	stride := len(data)/4096 + 1
	for i := 2; i < len(data); i += stride {
		r1 += math.Abs(data[i] - data[i-1])
		r2 += math.Abs(data[i] - (2*data[i-1] - data[i-2]))
	}
	if r2 < r1 {
		return 2
	}
	return 1
}

// predict2D is the 2-D Lorenzo predictor on reconstructed values with
// out-of-range neighbours treated as zero.
func predict2D(recon []float64, nx, i, j int) float64 {
	at := func(ii, jj int) float64 {
		if ii < 0 || jj < 0 {
			return 0
		}
		return recon[jj*nx+ii]
	}
	return at(i-1, j) + at(i, j-1) - at(i-1, j-1)
}

// predict3D is the 3-D (7-term) Lorenzo predictor.
func predict3D(recon []float64, nx, ny, i, j, k int) float64 {
	at := func(ii, jj, kk int) float64 {
		if ii < 0 || jj < 0 || kk < 0 {
			return 0
		}
		return recon[(kk*ny+jj)*nx+ii]
	}
	return at(i-1, j, k) + at(i, j-1, k) + at(i, j, k-1) -
		at(i-1, j-1, k) - at(i-1, j, k-1) - at(i, j-1, k-1) +
		at(i-1, j-1, k-1)
}

// Compress implements compress.Compressor.
func (c *Compressor) Compress(data []float64, dims []int, bound compress.Bound) ([]byte, error) {
	if err := compress.Validate(data, dims); err != nil {
		return nil, err
	}
	if c.Intervals < 4 || c.Intervals%2 != 0 {
		return nil, fmt.Errorf("sz: intervals must be even and >= 4, got %d", c.Intervals)
	}
	eb := bound.Absolute(data)
	if eb <= 0 || math.IsNaN(eb) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("sz: invalid error bound %v", eb)
	}
	n := len(data)
	radius := c.Intervals / 2
	twoEb := 2 * eb

	codes := make([]int, n)
	recon := make([]float64, n)
	var unpred []float64

	quantize := func(idx int, pred float64) {
		v := data[idx]
		diff := v - pred
		q := math.Floor(diff/twoEb + 0.5)
		if math.Abs(q) < float64(radius) {
			r := pred + q*twoEb
			// Guard against floating-point slop in pred+q*twoEb.
			if math.Abs(r-v) <= eb {
				codes[idx] = int(q) + radius
				recon[idx] = r
				return
			}
		}
		codes[idx] = 0
		unpred = append(unpred, v)
		recon[idx] = v
	}

	predOrder := 1
	scheme := schemeLorenzo
	var selBytes []byte
	switch len(dims) {
	case 1:
		predOrder = choose1DPredictor(data)
		for i := 0; i < n; i++ {
			quantize(i, predict1D(recon, i, predOrder))
		}
	case 2:
		if c.DisableRegression {
			ny, nx := dims[0], dims[1]
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					quantize(j*nx+i, predict2D(recon, nx, i, j))
				}
			}
		} else {
			scheme = schemeBlocked
			selBytes = c.blockedEncode2D(data, recon, quantize, dims, eb)
		}
	case 3:
		if c.DisableRegression {
			nz, ny, nx := dims[0], dims[1], dims[2]
			for k := 0; k < nz; k++ {
				for j := 0; j < ny; j++ {
					for i := 0; i < nx; i++ {
						quantize((k*ny+j)*nx+i, predict3D(recon, nx, ny, i, j, k))
					}
				}
			}
		} else {
			scheme = schemeBlocked
			selBytes = c.blockedEncode3D(data, recon, quantize, dims, eb)
		}
	}

	coded, err := huffman.EncodeAll(codes, c.Intervals)
	if err != nil {
		return nil, fmt.Errorf("sz: entropy stage: %w", err)
	}

	// Assemble payload: header, huffman blob, unpredictable values.
	var payload bytes.Buffer
	head := make([]byte, 0, 64)
	head = binary.AppendUvarint(head, magic)
	head = binary.AppendUvarint(head, version)
	head = binary.AppendUvarint(head, uint64(len(dims)))
	for _, d := range dims {
		head = binary.AppendUvarint(head, uint64(d))
	}
	head = binary.AppendUvarint(head, uint64(predOrder))
	head = binary.AppendUvarint(head, uint64(scheme))
	head = binary.AppendUvarint(head, uint64(c.Intervals))
	head = binary.AppendUvarint(head, math.Float64bits(eb))
	head = binary.AppendUvarint(head, uint64(len(unpred)))
	head = binary.AppendUvarint(head, uint64(len(coded)))
	head = binary.AppendUvarint(head, uint64(len(selBytes)))
	payload.Write(head)
	payload.Write(selBytes)
	payload.Write(coded)
	raw := make([]byte, 8)
	for _, v := range unpred {
		binary.LittleEndian.PutUint64(raw, math.Float64bits(v))
		payload.Write(raw)
	}

	if c.DisableLossless {
		return append([]byte{0}, payload.Bytes()...), nil
	}
	var out bytes.Buffer
	out.WriteByte(1) // lossless stage marker
	fw, err := flate.NewWriter(&out, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(payload.Bytes()); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	// If DEFLATE did not help (already dense Huffman output), keep the raw
	// payload; the marker byte tells the decoder which path was taken.
	if out.Len() >= payload.Len()+1 {
		return append([]byte{0}, payload.Bytes()...), nil
	}
	return out.Bytes(), nil
}

// blockedEncode2D runs the per-block Lorenzo/regression selection over a
// 2-D array, quantizing every cell, and returns the serialized selection
// bits + regression coefficients.
func (c *Compressor) blockedEncode2D(data, recon []float64, quantize func(idx int, pred float64), dims []int, eb float64) []byte {
	ny, nx := dims[0], dims[1]
	g := grid{gx: nx, gy: ny, gz: 1}
	w := bitstream.NewWriter(0)
	const b = regBlock2D
	for oy := 0; oy < ny; oy += b {
		nj := min(b, ny-oy)
		for ox := 0; ox < nx; ox += b {
			ni := min(b, nx-ox)
			co := fitRegression(data, g, ox, oy, 0, ni, nj, 1)
			use := chooseRegression(data, g, co, eb, ox, oy, 0, ni, nj, 1)
			if use {
				w.WriteBit(1)
				co.write(w, false)
			} else {
				w.WriteBit(0)
			}
			for j := 0; j < nj; j++ {
				for i := 0; i < ni; i++ {
					idx := (oy+j)*nx + (ox + i)
					var pred float64
					if use {
						pred = co.predict(i, j, 0, ni, nj, 1)
					} else {
						pred = predict2D(recon, nx, ox+i, oy+j)
					}
					quantize(idx, pred)
				}
			}
		}
	}
	return w.Bytes()
}

// blockedEncode3D is the 3-D analogue of blockedEncode2D.
func (c *Compressor) blockedEncode3D(data, recon []float64, quantize func(idx int, pred float64), dims []int, eb float64) []byte {
	nz, ny, nx := dims[0], dims[1], dims[2]
	g := grid{gx: nx, gy: ny, gz: nz}
	w := bitstream.NewWriter(0)
	const b = regBlock3D
	for oz := 0; oz < nz; oz += b {
		nk := min(b, nz-oz)
		for oy := 0; oy < ny; oy += b {
			nj := min(b, ny-oy)
			for ox := 0; ox < nx; ox += b {
				ni := min(b, nx-ox)
				co := fitRegression(data, g, ox, oy, oz, ni, nj, nk)
				use := chooseRegression(data, g, co, eb, ox, oy, oz, ni, nj, nk)
				if use {
					w.WriteBit(1)
					co.write(w, true)
				} else {
					w.WriteBit(0)
				}
				for k := 0; k < nk; k++ {
					for j := 0; j < nj; j++ {
						for i := 0; i < ni; i++ {
							idx := ((oz+k)*ny+(oy+j))*nx + (ox + i)
							var pred float64
							if use {
								pred = co.predict(i, j, k, ni, nj, nk)
							} else {
								pred = predict3D(recon, nx, ny, ox+i, oy+j, oz+k)
							}
							quantize(idx, pred)
						}
					}
				}
			}
		}
	}
	return w.Bytes()
}

// blockedDecode2D mirrors blockedEncode2D on the decompression side.
func blockedDecode2D(sel *bitstream.Reader, recon []float64, apply func(idx int, pred float64) error, dims []int) error {
	ny, nx := dims[0], dims[1]
	const b = regBlock2D
	for oy := 0; oy < ny; oy += b {
		nj := min(b, ny-oy)
		for ox := 0; ox < nx; ox += b {
			ni := min(b, nx-ox)
			bit, err := sel.ReadBit()
			if err != nil {
				return err
			}
			var co regCoeffs
			use := bit == 1
			if use {
				if co, err = readRegCoeffs(sel, false); err != nil {
					return err
				}
			}
			for j := 0; j < nj; j++ {
				for i := 0; i < ni; i++ {
					idx := (oy+j)*nx + (ox + i)
					var pred float64
					if use {
						pred = co.predict(i, j, 0, ni, nj, 1)
					} else {
						pred = predict2D(recon, nx, ox+i, oy+j)
					}
					if err := apply(idx, pred); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// blockedDecode3D mirrors blockedEncode3D on the decompression side.
func blockedDecode3D(sel *bitstream.Reader, recon []float64, apply func(idx int, pred float64) error, dims []int) error {
	nz, ny, nx := dims[0], dims[1], dims[2]
	const b = regBlock3D
	for oz := 0; oz < nz; oz += b {
		nk := min(b, nz-oz)
		for oy := 0; oy < ny; oy += b {
			nj := min(b, ny-oy)
			for ox := 0; ox < nx; ox += b {
				ni := min(b, nx-ox)
				bit, err := sel.ReadBit()
				if err != nil {
					return err
				}
				var co regCoeffs
				use := bit == 1
				if use {
					if co, err = readRegCoeffs(sel, true); err != nil {
						return err
					}
				}
				for k := 0; k < nk; k++ {
					for j := 0; j < nj; j++ {
						for i := 0; i < ni; i++ {
							idx := ((oz+k)*ny+(oy+j))*nx + (ox + i)
							var pred float64
							if use {
								pred = co.predict(i, j, k, ni, nj, nk)
							} else {
								pred = predict3D(recon, nx, ny, ox+i, oy+j, oz+k)
							}
							if err := apply(idx, pred); err != nil {
								return err
							}
						}
					}
				}
			}
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ErrCorrupt is returned for malformed payloads.
var ErrCorrupt = errors.New("sz: corrupt payload")

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(buf []byte) ([]float64, error) {
	if len(buf) < 2 {
		return nil, ErrCorrupt
	}
	marker, body := buf[0], buf[1:]
	switch marker {
	case 0:
	case 1:
		var err error
		body, err = io.ReadAll(flate.NewReader(bytes.NewReader(body)))
		if err != nil {
			return nil, fmt.Errorf("sz: lossless stage: %w", err)
		}
	default:
		return nil, ErrCorrupt
	}

	rd := body
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, ErrCorrupt
		}
		rd = rd[n:]
		return v, nil
	}
	mg, err := next()
	if err != nil || mg != magic {
		return nil, ErrCorrupt
	}
	ver, err := next()
	if err != nil || ver != version {
		return nil, fmt.Errorf("sz: unsupported version %d", ver)
	}
	ndims64, err := next()
	if err != nil || ndims64 < 1 || ndims64 > 3 {
		return nil, ErrCorrupt
	}
	dims := make([]int, ndims64)
	n := 1
	for i := range dims {
		d, err := next()
		if err != nil || d == 0 || d > 1<<40 {
			return nil, ErrCorrupt
		}
		dims[i] = int(d)
	}
	n, err = compress.CheckSize(dims)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	predOrder64, err := next()
	if err != nil || predOrder64 < 1 || predOrder64 > 2 {
		return nil, ErrCorrupt
	}
	predOrder := int(predOrder64)
	scheme64, err := next()
	if err != nil || scheme64 > schemeBlocked {
		return nil, ErrCorrupt
	}
	scheme := int(scheme64)
	if scheme == schemeBlocked && len(dims) < 2 {
		return nil, ErrCorrupt
	}
	intervals64, err := next()
	if err != nil || intervals64 < 4 || intervals64%2 != 0 || intervals64 > 1<<30 {
		return nil, ErrCorrupt
	}
	radius := int(intervals64) / 2
	ebBits, err := next()
	if err != nil {
		return nil, err
	}
	eb := math.Float64frombits(ebBits)
	if eb <= 0 || math.IsNaN(eb) || math.IsInf(eb, 0) {
		return nil, ErrCorrupt
	}
	nUnpred64, err := next()
	if err != nil {
		return nil, err
	}
	codedLen64, err := next()
	if err != nil {
		return nil, err
	}
	selLen64, err := next()
	if err != nil {
		return nil, err
	}
	// Validate each section length against the remaining bytes separately:
	// summing attacker-controlled uint64s first could wrap past the check
	// and panic on the slice expressions below.
	lenRd := uint64(len(rd))
	if selLen64 > lenRd || codedLen64 > lenRd-selLen64 || nUnpred64 > (lenRd-selLen64-codedLen64)/8 {
		return nil, ErrCorrupt
	}
	selBytes := rd[:selLen64]
	coded := rd[selLen64 : selLen64+codedLen64]
	rawUnpred := rd[selLen64+codedLen64 : selLen64+codedLen64+8*nUnpred64]

	codes, err := huffman.DecodeAll(coded)
	if err != nil {
		return nil, fmt.Errorf("sz: entropy stage: %w", err)
	}
	if len(codes) != n {
		return nil, fmt.Errorf("sz: %d codes for %d values", len(codes), n)
	}
	unpred := make([]float64, nUnpred64)
	for i := range unpred {
		unpred[i] = math.Float64frombits(binary.LittleEndian.Uint64(rawUnpred[8*i:]))
	}

	twoEb := 2 * eb
	recon := make([]float64, n)
	ui := 0
	apply := func(idx int, pred float64) error {
		code := codes[idx]
		if code == 0 {
			if ui >= len(unpred) {
				return ErrCorrupt
			}
			recon[idx] = unpred[ui]
			ui++
			return nil
		}
		recon[idx] = pred + float64(code-radius)*twoEb
		return nil
	}
	switch {
	case len(dims) == 1:
		for i := 0; i < n; i++ {
			if err := apply(i, predict1D(recon, i, predOrder)); err != nil {
				return nil, err
			}
		}
	case len(dims) == 2 && scheme == schemeBlocked:
		if err := blockedDecode2D(bitstream.NewReader(selBytes), recon, apply, dims); err != nil {
			return nil, err
		}
	case len(dims) == 2:
		ny, nx := dims[0], dims[1]
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				if err := apply(j*nx+i, predict2D(recon, nx, i, j)); err != nil {
					return nil, err
				}
			}
		}
	case len(dims) == 3 && scheme == schemeBlocked:
		if err := blockedDecode3D(bitstream.NewReader(selBytes), recon, apply, dims); err != nil {
			return nil, err
		}
	case len(dims) == 3:
		nz, ny, nx := dims[0], dims[1], dims[2]
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					if err := apply((k*ny+j)*nx+i, predict3D(recon, nx, ny, i, j, k)); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if ui != len(unpred) {
		return nil, ErrCorrupt
	}
	return recon, nil
}
