package compress_test

// Corruption-robustness tests: decompressors must never panic or allocate
// unboundedly on mutated payloads — they either return an error or (for
// mutations that keep the framing valid) some decoded data. These tests
// mutate real payloads with random bit flips, truncations and extensions.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/compress/lossless"
	"repro/internal/compress/multilevel"
	"repro/internal/compress/sz"
	"repro/internal/compress/zfp"
)

func codecs() []compress.Compressor {
	return []compress.Compressor{sz.New(), zfp.New(), lossless.New(), multilevel.New()}
}

func signal(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(float64(i)/13) + 0.2*math.Cos(float64(i)/3)
	}
	return out
}

// decodeSafely runs Decompress and converts panics into test failures with
// the mutation context attached.
func decodeSafely(t *testing.T, c compress.Compressor, buf []byte, ctx string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: %s: Decompress panicked: %v", c.Name(), ctx, r)
		}
	}()
	out, err := c.Decompress(buf)
	if err == nil && len(out) > 1<<24 {
		t.Fatalf("%s: %s: suspiciously large decode (%d values)", c.Name(), ctx, len(out))
	}
}

func TestBitFlipRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := signal(4096)
	for _, c := range codecs() {
		buf, err := c.Compress(data, []int{len(data)}, compress.RelBound(1e-3))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 300; trial++ {
			mut := append([]byte(nil), buf...)
			flips := rng.Intn(8) + 1
			for f := 0; f < flips; f++ {
				pos := rng.Intn(len(mut))
				mut[pos] ^= 1 << uint(rng.Intn(8))
			}
			decodeSafely(t, c, mut, "bit flips")
		}
	}
}

func TestTruncationRobustness(t *testing.T) {
	data := signal(4096)
	for _, c := range codecs() {
		buf, err := c.Compress(data, []int{len(data)}, compress.RelBound(1e-3))
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut <= len(buf); cut += 1 + len(buf)/97 {
			decodeSafely(t, c, buf[:cut], "truncation")
		}
	}
}

func TestExtensionRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	data := signal(1024)
	for _, c := range codecs() {
		buf, err := c.Compress(data, []int{len(data)}, compress.RelBound(1e-3))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			extra := make([]byte, rng.Intn(64)+1)
			rng.Read(extra)
			decodeSafely(t, c, append(append([]byte(nil), buf...), extra...), "extension")
		}
	}
}

func TestRandomGarbageRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, c := range codecs() {
		for trial := 0; trial < 200; trial++ {
			garbage := make([]byte, rng.Intn(512))
			rng.Read(garbage)
			decodeSafely(t, c, garbage, "garbage")
		}
	}
}

// Headers claiming absurd sizes must be rejected, not allocated.
func TestHugeDimsRejected(t *testing.T) {
	if _, err := compress.CheckSize([]int{1 << 30, 1 << 30, 1 << 30}); err == nil {
		t.Fatal("absurd dims accepted")
	}
	if n, err := compress.CheckSize([]int{1024, 1024}); err != nil || n != 1<<20 {
		t.Fatalf("sane dims rejected: %v %v", n, err)
	}
	if _, err := compress.CheckSize([]int{0}); err == nil {
		t.Fatal("zero dim accepted")
	}
}
