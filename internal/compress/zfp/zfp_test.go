package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/compress"
)

func maxErr(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if e := math.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestPermTables(t *testing.T) {
	for _, dims := range []int{1, 2, 3} {
		pm := perm(dims)
		size := 1 << (2 * uint(dims))
		if len(pm) != size {
			t.Fatalf("dims=%d: perm length %d", dims, len(pm))
		}
		seen := make([]bool, size)
		prevDeg := -1
		for _, p := range pm {
			if p < 0 || p >= size || seen[p] {
				t.Fatalf("dims=%d: invalid perm %v", dims, pm)
			}
			seen[p] = true
			deg := 0
			for k := 0; k < dims; k++ {
				deg += (p >> (2 * uint(k))) & 3
			}
			if deg < prevDeg {
				t.Fatalf("dims=%d: perm not degree-ordered", dims)
			}
			prevDeg = deg
		}
	}
	// DC coefficient first.
	if perm2[0] != 0 || perm3[0] != 0 {
		t.Fatal("DC coefficient must come first")
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	vals := []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), math.MaxInt64 / 4, -math.MaxInt64 / 4}
	for _, v := range vals {
		if got := invNegabinary(negabinary(v)); got != v {
			t.Fatalf("negabinary(%d) round trip = %d", v, got)
		}
	}
	f := func(v int64) bool { return invNegabinary(negabinary(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegabinaryMagnitudeOrdering(t *testing.T) {
	// Small-magnitude values must map to codes with fewer significant bits,
	// which is what makes MSB-first plane coding effective.
	if bitsLen(negabinary(0)) != 0 {
		t.Fatal("negabinary(0) must be 0")
	}
	small := bitsLen(negabinary(3))
	large := bitsLen(negabinary(1 << 30))
	if small >= large {
		t.Fatalf("bit length not monotone: %d vs %d", small, large)
	}
}

// encodeInts/decodeInts at full precision must be lossless.
func TestIntsCoderLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, dims := range []int{1, 2, 3} {
		size := 1 << (2 * uint(dims))
		pm := perm(dims)
		for trial := 0; trial < 50; trial++ {
			u := make([]uint64, size)
			for i := range u {
				// Mix of magnitudes, including zeros.
				switch rng.Intn(4) {
				case 0:
					u[i] = 0
				case 1:
					u[i] = uint64(rng.Intn(16))
				case 2:
					u[i] = rng.Uint64() >> 33
				default:
					u[i] = rng.Uint64() >> 2
				}
			}
			w := bitstream.NewWriter(0)
			encodeInts(w, u, intprec, pm)
			got := make([]uint64, size)
			r := bitstream.NewReader(w.Bytes())
			if err := decodeInts(r, got, intprec, pm); err != nil {
				t.Fatalf("dims=%d trial=%d: %v", dims, trial, err)
			}
			for i := range u {
				if got[i] != u[i] {
					t.Fatalf("dims=%d trial=%d coeff=%d: %#x vs %#x", dims, trial, i, got[i], u[i])
				}
			}
		}
	}
}

func TestLiftTransformApproxInverse(t *testing.T) {
	// The lifting transform discards a few low-order bits; for values far
	// above the LSB the inverse must reproduce the input to tiny relative
	// error.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		for _, dims := range []int{1, 2, 3} {
			size := 1 << (2 * uint(dims))
			blk := make([]int64, size)
			orig := make([]int64, size)
			for i := range blk {
				blk[i] = int64(rng.Uint64()>>4) - (1 << 59)
				orig[i] = blk[i]
			}
			fwdXform(blk, dims)
			invXform(blk, dims)
			for i := range blk {
				diff := blk[i] - orig[i]
				if diff < 0 {
					diff = -diff
				}
				// Allowed slack: a handful of LSBs per lifting pass.
				if diff > 64 {
					t.Fatalf("dims=%d coeff=%d: drift %d", dims, i, diff)
				}
			}
		}
	}
}

func smooth2D(ny, nx int) []float64 {
	data := make([]float64, ny*nx)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			data[j*nx+i] = math.Sin(float64(i)/9)*math.Cos(float64(j)/7) + 0.1*float64(i+j)
		}
	}
	return data
}

func TestRoundTrip1D(t *testing.T) {
	c := New()
	n := 10000
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i) / 40)
	}
	for _, eb := range []float64{1e-1, 1e-3, 1e-6, 1e-9} {
		buf, err := c.Compress(data, []int{n}, compress.AbsBound(eb))
		if err != nil {
			t.Fatalf("eb=%g: %v", eb, err)
		}
		got, err := c.Decompress(buf)
		if err != nil {
			t.Fatalf("eb=%g: %v", eb, err)
		}
		if len(got) != n {
			t.Fatalf("eb=%g: %d values", eb, len(got))
		}
		if e := maxErr(data, got); e > eb {
			t.Fatalf("eb=%g: max error %g exceeds bound", eb, e)
		}
	}
}

func TestRoundTrip2D(t *testing.T) {
	c := New()
	data := smooth2D(63, 65) // deliberately not multiples of 4
	eb := 1e-4
	buf, err := c.Compress(data, []int{63, 65}, compress.AbsBound(eb))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, got); e > eb {
		t.Fatalf("max error %g exceeds %g", e, eb)
	}
}

func TestRoundTrip3D(t *testing.T) {
	c := New()
	nz, ny, nx := 9, 13, 17
	data := make([]float64, nz*ny*nx)
	idx := 0
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				data[idx] = math.Exp(-float64((i-8)*(i-8)+(j-6)*(j-6)+(k-4)*(k-4)) / 40)
				idx++
			}
		}
	}
	eb := 1e-5
	buf, err := c.Compress(data, []int{nz, ny, nx}, compress.AbsBound(eb))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, got); e > eb {
		t.Fatalf("max error %g exceeds %g", e, eb)
	}
}

func TestSmoothCompressesWell(t *testing.T) {
	c := New()
	data := smooth2D(256, 256)
	buf, err := c.Compress(data, []int{256, 256}, compress.RelBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	if r := compress.Ratio(len(data), buf); r < 6 {
		t.Fatalf("smooth 2-D ratio %.2f, want >= 6", r)
	}
}

func TestZeroBlocksAreCheap(t *testing.T) {
	c := New()
	data := make([]float64, 100000) // all zeros
	buf, err := c.Compress(data, []int{len(data)}, compress.AbsBound(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	// One bit per 4-value block plus header.
	if len(buf) > len(data)/4/8+64 {
		t.Fatalf("zero data took %d bytes", len(buf))
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("value %d = %v", i, v)
		}
	}
}

func TestHugeToleranceZeroesData(t *testing.T) {
	c := New()
	data := []float64{1e-6, -1e-6, 2e-6, 0}
	buf, err := c.Compress(data, []int{4}, compress.AbsBound(1.0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, got); e > 1.0 {
		t.Fatalf("error %g", e)
	}
}

func TestRandomDataBounded(t *testing.T) {
	c := New()
	rng := rand.New(rand.NewSource(17))
	data := make([]float64, 8192)
	for i := range data {
		data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)-3))
	}
	for _, eb := range []float64{1e-2, 1e-5, 1e-8} {
		buf, err := c.Compress(data, []int{len(data)}, compress.AbsBound(eb))
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		if e := maxErr(data, got); e > eb {
			t.Fatalf("eb=%g: max error %g", eb, e)
		}
	}
}

func TestMixedMagnitudeBlocks(t *testing.T) {
	// Exercise per-block exponents: alternating tiny and huge regions.
	c := New()
	data := make([]float64, 4096)
	for i := range data {
		if (i/4)%2 == 0 {
			data[i] = 1e-12 * float64(i%17)
		} else {
			data[i] = 1e12 * math.Sin(float64(i)/5)
		}
	}
	eb := 1e-3
	buf, err := c.Compress(data, []int{len(data)}, compress.AbsBound(eb))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, got); e > eb {
		t.Fatalf("max error %g", e)
	}
}

func TestInvalidInputs(t *testing.T) {
	c := New()
	if _, err := c.Compress([]float64{1}, []int{2}, compress.AbsBound(1e-3)); err == nil {
		t.Fatal("dims mismatch accepted")
	}
	if _, err := c.Compress([]float64{math.Inf(1)}, []int{1}, compress.AbsBound(1e-3)); err == nil {
		t.Fatal("Inf accepted")
	}
	if _, err := c.Compress([]float64{1}, []int{1}, compress.AbsBound(0)); err == nil {
		t.Fatal("zero bound accepted")
	}
}

func TestCorruptPayload(t *testing.T) {
	c := New()
	if _, err := c.Decompress(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := c.Decompress([]byte{0x01, 0x02}); err == nil {
		t.Fatal("garbage accepted")
	}
	data := smooth2D(16, 16)
	buf, err := c.Compress(data, []int{16, 16}, compress.AbsBound(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(buf[:len(buf)/4]); err == nil {
		t.Fatal("truncated accepted")
	}
}

func TestRegistry(t *testing.T) {
	c, err := compress.Get("zfp")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "zfp" {
		t.Fatalf("name %q", c.Name())
	}
}

// property: the bound holds for arbitrary random-walk inputs across bounds
// and shapes.
func TestBoundQuick(t *testing.T) {
	c := New()
	f := func(seed int64, size uint16, ebExp uint8, twoD bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size%2000) + 1
		var dims []int
		if twoD {
			ny := int(math.Sqrt(float64(n)))
			if ny < 1 {
				ny = 1
			}
			nx := (n + ny - 1) / ny
			n = nx * ny
			dims = []int{ny, nx}
		} else {
			dims = []int{n}
		}
		data := make([]float64, n)
		v := 0.0
		for i := range data {
			v += rng.NormFloat64()
			data[i] = v
		}
		eb := math.Pow(10, -float64(ebExp%8))
		buf, err := c.Compress(data, dims, compress.AbsBound(eb))
		if err != nil {
			return false
		}
		got, err := c.Decompress(buf)
		if err != nil || len(got) != n {
			return false
		}
		return maxErr(data, got) <= eb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress2D(b *testing.B) {
	c := New()
	data := smooth2D(512, 512)
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data, []int{512, 512}, compress.RelBound(1e-4)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress2D(b *testing.B) {
	c := New()
	data := smooth2D(512, 512)
	buf, err := c.Compress(data, []int{512, 512}, compress.RelBound(1e-4))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(buf); err != nil {
			b.Fatal(err)
		}
	}
}
