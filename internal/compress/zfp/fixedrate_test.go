package zfp

import (
	"math"
	"math/rand"
	"testing"
)

func TestFixedRatePayloadSize(t *testing.T) {
	// The defining property: payload size depends only on rate and block
	// count, never on the data.
	n := 4096
	smooth := make([]float64, n)
	noisy := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range smooth {
		smooth[i] = math.Sin(float64(i) / 50)
		noisy[i] = rng.NormFloat64() * 1e6
	}
	f := FixedRate{BitsPerValue: 8}
	a, err := f.Compress(smooth, []int{n})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Compress(noisy, []int{n})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("fixed rate sizes differ: %d vs %d", len(a), len(b))
	}
	// 8 bits/value over 4096 values = 4096 bytes + small header.
	if len(a) < 4096 || len(a) > 4096+64 {
		t.Fatalf("payload %d bytes for 8 bits/value over %d values", len(a), n)
	}
}

func TestFixedRateRoundTripAccuracy(t *testing.T) {
	// Higher rates must give monotonically better reconstructions.
	n := 8192
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i)/100) + 0.01*math.Cos(float64(i)/3)
	}
	prev := math.Inf(1)
	for _, rate := range []float64{6, 12, 24, 48} {
		f := FixedRate{BitsPerValue: rate}
		buf, err := f.Compress(data, []int{n})
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		got, err := f.Decompress(buf)
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		var maxe float64
		for i := range data {
			if e := math.Abs(data[i] - got[i]); e > maxe {
				maxe = e
			}
		}
		if maxe >= prev {
			t.Fatalf("rate %v: error %g not better than lower rate's %g", rate, maxe, prev)
		}
		prev = maxe
	}
	if prev > 1e-9 {
		t.Fatalf("48 bits/value leaves error %g", prev)
	}
}

func TestFixedRate2D(t *testing.T) {
	ny, nx := 37, 41
	data := make([]float64, ny*nx)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			data[j*nx+i] = math.Exp(-float64((i-20)*(i-20)+(j-18)*(j-18)) / 80)
		}
	}
	f := FixedRate{BitsPerValue: 16}
	buf, err := f.Compress(data, []int{ny, nx})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if e := math.Abs(data[i] - got[i]); e > 1e-3 {
			t.Fatalf("cell %d error %g at 16 bits/value", i, e)
		}
	}
}

func TestRandomAccessMatchesFullDecode(t *testing.T) {
	ny, nx := 32, 48 // 8 x 12 blocks
	data := make([]float64, ny*nx)
	rng := rand.New(rand.NewSource(4))
	v := 0.0
	for i := range data {
		v += rng.NormFloat64()
		data[i] = v
	}
	f := FixedRate{BitsPerValue: 20}
	buf, err := f.Compress(data, []int{ny, nx})
	if err != nil {
		t.Fatal(err)
	}
	full, err := f.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	nBlocks := (ny / 4) * (nx / 4)
	for _, idx := range []int{0, 1, 17, nBlocks - 1} {
		blk, err := f.DecodeBlockAt(buf, idx)
		if err != nil {
			t.Fatalf("block %d: %v", idx, err)
		}
		// Block idx covers rows 4*(idx/12).. and cols 4*(idx%12)..
		bj, bi := idx/(nx/4), idx%(nx/4)
		for j := 0; j < 4; j++ {
			for i := 0; i < 4; i++ {
				want := full[(4*bj+j)*nx+(4*bi+i)]
				got := blk[4*j+i]
				if got != want {
					t.Fatalf("block %d cell (%d,%d): random access %v != full %v",
						idx, i, j, got, want)
				}
			}
		}
	}
	if _, err := f.DecodeBlockAt(buf, nBlocks); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	if _, err := f.DecodeBlockAt(buf, -1); err == nil {
		t.Fatal("negative block accepted")
	}
}

func TestFixedRateZeroBlocks(t *testing.T) {
	data := make([]float64, 1024)
	f := FixedRate{BitsPerValue: 8}
	buf, err := f.Compress(data, []int{len(data)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("cell %d = %v", i, v)
		}
	}
}

func TestFixedRateValidation(t *testing.T) {
	f := FixedRate{BitsPerValue: 0.5} // 2 bits/block in 1-D: too small
	if _, err := f.Compress(make([]float64, 8), []int{8}); err == nil {
		t.Fatal("tiny rate accepted")
	}
	g := FixedRate{BitsPerValue: 8}
	if _, err := g.Compress([]float64{math.NaN()}, []int{1}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := g.Decompress([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := g.DecodeBlockAt([]byte{1, 2, 3}, 0); err == nil {
		t.Fatal("garbage accepted for random access")
	}
}

func TestFixedRate3D(t *testing.T) {
	nz, ny, nx := 8, 8, 8
	data := make([]float64, nz*ny*nx)
	for i := range data {
		data[i] = float64(i % 97)
	}
	f := FixedRate{BitsPerValue: 24}
	buf, err := f.Compress(data, []int{nz, ny, nx})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if e := math.Abs(data[i] - got[i]); e > 0.5 {
			t.Fatalf("cell %d error %g", i, e)
		}
	}
	// Random access in 3-D.
	blk, err := f.DecodeBlockAt(buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk) != 64 {
		t.Fatalf("3-D block has %d values", len(blk))
	}
}
