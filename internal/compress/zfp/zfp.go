// Package zfp implements a ZFP-style transform-based error-bounded lossy
// compressor (Lindstrom, TVCG 2014) in fixed-accuracy mode. Data is
// processed in 4^d blocks: each block is converted to a block-floating-point
// representation with a per-block common exponent, decorrelated with ZFP's
// reversible integer lifting transform, mapped to negabinary, and the
// coefficient bit planes are coded most-significant first with ZFP's
// group-testing embedded coder, truncated at the precision implied by the
// error tolerance.
//
// Unlike the prediction-based SZ codec, ratio here is driven by smoothness
// *within* each 4-wide block, which is why the paper observes smaller (but
// still positive) gains for ZFP from zMesh's reordering.
package zfp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bitstream"
	"repro/internal/compress"
)

const (
	magic   = 0x5a465031 // "ZFP1"
	version = 1

	intprec = 64                 // bits of the fixed-point representation
	nbmask  = 0xaaaaaaaaaaaaaaaa // negabinary conversion mask
	ebias   = 16384              // block exponent bias in the stream
)

// Compressor is the ZFP-like codec in fixed-accuracy mode.
type Compressor struct{}

// New returns a ZFP codec.
func New() *Compressor { return &Compressor{} }

func init() {
	compress.Register("zfp", func() compress.Compressor { return New() })
}

// Name implements compress.Compressor.
func (c *Compressor) Name() string { return "zfp" }

// perm2 and perm3 order block coefficients by total sequency (sum of
// per-dimension frequencies), low frequencies first, ties broken
// lexicographically. ZFP uses the same total-degree ordering.
var (
	perm2 = makePerm(2)
	perm3 = makePerm(3)
)

func makePerm(dims int) []int {
	size := 1 << (2 * uint(dims)) // 4^dims
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	degree := func(i int) int {
		d := 0
		for k := 0; k < dims; k++ {
			d += (i >> (2 * uint(k))) & 3
		}
		return d
	}
	// Stable insertion sort by degree keeps lexicographic tie-break.
	for a := 1; a < size; a++ {
		for b := a; b > 0 && degree(idx[b]) < degree(idx[b-1]); b-- {
			idx[b], idx[b-1] = idx[b-1], idx[b]
		}
	}
	return idx
}

func perm(dims int) []int {
	switch dims {
	case 2:
		return perm2
	case 3:
		return perm3
	default:
		return []int{0, 1, 2, 3}
	}
}

// fwdLift applies ZFP's forward decorrelating lifting step to four values
// at stride s starting at p[0].
func fwdLift(p []int64, off, s int) {
	x := p[off]
	y := p[off+s]
	z := p[off+2*s]
	w := p[off+3*s]

	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1

	p[off] = x
	p[off+s] = y
	p[off+2*s] = z
	p[off+3*s] = w
}

// invLift inverts fwdLift (up to the bits the forward shifts discard, which
// lie far below any representable tolerance).
func invLift(p []int64, off, s int) {
	x := p[off]
	y := p[off+s]
	z := p[off+2*s]
	w := p[off+3*s]

	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w

	p[off] = x
	p[off+s] = y
	p[off+2*s] = z
	p[off+3*s] = w
}

// fwdXform decorrelates a 4^dims block in place.
func fwdXform(blk []int64, dims int) {
	switch dims {
	case 1:
		fwdLift(blk, 0, 1)
	case 2:
		for j := 0; j < 4; j++ {
			fwdLift(blk, 4*j, 1) // rows (x)
		}
		for i := 0; i < 4; i++ {
			fwdLift(blk, i, 4) // columns (y)
		}
	case 3:
		for k := 0; k < 4; k++ {
			for j := 0; j < 4; j++ {
				fwdLift(blk, 16*k+4*j, 1) // x lines
			}
		}
		for k := 0; k < 4; k++ {
			for i := 0; i < 4; i++ {
				fwdLift(blk, 16*k+i, 4) // y lines
			}
		}
		for j := 0; j < 4; j++ {
			for i := 0; i < 4; i++ {
				fwdLift(blk, 4*j+i, 16) // z lines
			}
		}
	}
}

// invXform inverts fwdXform (dimensions in reverse order).
func invXform(blk []int64, dims int) {
	switch dims {
	case 1:
		invLift(blk, 0, 1)
	case 2:
		for i := 0; i < 4; i++ {
			invLift(blk, i, 4)
		}
		for j := 0; j < 4; j++ {
			invLift(blk, 4*j, 1)
		}
	case 3:
		for j := 0; j < 4; j++ {
			for i := 0; i < 4; i++ {
				invLift(blk, 4*j+i, 16)
			}
		}
		for k := 0; k < 4; k++ {
			for i := 0; i < 4; i++ {
				invLift(blk, 16*k+i, 4)
			}
		}
		for k := 0; k < 4; k++ {
			for j := 0; j < 4; j++ {
				invLift(blk, 16*k+4*j, 1)
			}
		}
	}
}

// negabinary maps a signed coefficient to an unsigned code whose magnitude
// ordering matches bit-plane significance.
func negabinary(x int64) uint64 {
	return (uint64(x) + nbmask) ^ nbmask
}

// invNegabinary inverts negabinary.
func invNegabinary(u uint64) int64 {
	return int64((u ^ nbmask) - nbmask)
}

// blockPrecision is ZFP's fixed-accuracy precision rule: the number of bit
// planes that must be kept so the dropped planes stay below the tolerance,
// with 2*(dims+1) guard planes covering transform gain.
func blockPrecision(emax, minexp, dims int) int {
	p := emax - minexp + 2*(dims+1)
	if p < 0 {
		return 0
	}
	if p > intprec {
		return intprec
	}
	return p
}

// encodeInts is ZFP's embedded bit-plane coder: planes are emitted from the
// most significant down to kmin; within a plane, bits of already-significant
// coefficients are sent verbatim, and the rest of the plane is group-tested
// with a unary run-length code.
func encodeInts(w *bitstream.Writer, u []uint64, maxprec int, pm []int) {
	size := len(u)
	kmin := intprec - maxprec
	n := 0
	for k := intprec - 1; k >= kmin; k-- {
		// Step 1: extract bit plane k (in sequency order).
		var x uint64
		for i := 0; i < size; i++ {
			x |= ((u[pm[i]] >> uint(k)) & 1) << uint(i)
		}
		// Step 2: first n bits verbatim.
		w.WriteBits(x, uint(n))
		x >>= uint(n)
		// Step 3: unary run-length encode the remainder. Each group-test
		// bit says whether any not-yet-significant coefficient has this
		// plane's bit set; if so, zero positions are walked explicitly and
		// the significant position is marked (implied for the final slot).
		for n < size {
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			for n < size-1 && x&1 == 0 {
				w.WriteBit(0)
				x >>= 1
				n++
			}
			if n < size-1 {
				w.WriteBit(1)
			}
			x >>= 1
			n++
		}
	}
}

// decodeInts inverts encodeInts.
func decodeInts(r *bitstream.Reader, u []uint64, maxprec int, pm []int) error {
	size := len(u)
	kmin := intprec - maxprec
	n := 0
	for k := intprec - 1; k >= kmin; k-- {
		x, err := r.ReadBits(uint(n))
		if err != nil {
			return err
		}
		for n < size {
			gb, err := r.ReadBit()
			if err != nil {
				return err
			}
			if gb == 0 {
				break
			}
			// Walk zero positions until the significant one (implied when
			// only the final slot remains).
			for n < size-1 {
				b, err := r.ReadBit()
				if err != nil {
					return err
				}
				if b != 0 {
					break
				}
				n++
			}
			x |= 1 << uint(n)
			n++
		}
		// Deposit plane.
		for i := 0; i < size && x != 0; i++ {
			u[pm[i]] |= (x & 1) << uint(k)
			x >>= 1
		}
	}
	return nil
}

// bitsLen reports the index just past the highest set bit of x.
func bitsLen(x uint64) int {
	n := 0
	for x != 0 {
		n++
		x >>= 1
	}
	return n
}

// encodeBlock writes one 4^dims block.
func encodeBlock(w *bitstream.Writer, blk []float64, dims, minexp int) {
	maxabs := 0.0
	for _, v := range blk {
		if a := math.Abs(v); a > maxabs {
			maxabs = a
		}
	}
	if maxabs == 0 {
		w.WriteBit(0)
		return
	}
	_, emax := math.Frexp(maxabs) // maxabs = f * 2^emax, f in [0.5,1)
	maxprec := blockPrecision(emax, minexp, dims)
	if maxprec == 0 {
		// Entire block is below the tolerance floor: code as zero.
		w.WriteBit(0)
		return
	}
	w.WriteBit(1)
	w.WriteBits(uint64(emax+ebias), 16)
	// Block floating point: q = v * 2^(62-emax), |q| < 2^62.
	s := math.Ldexp(1, intprec-2-emax)
	iblk := make([]int64, len(blk))
	for i, v := range blk {
		iblk[i] = int64(v * s)
	}
	fwdXform(iblk, dims)
	u := make([]uint64, len(iblk))
	for i, q := range iblk {
		u[i] = negabinary(q)
	}
	encodeInts(w, u, maxprec, perm(dims))
}

// decodeBlock reads one block into blk.
func decodeBlock(r *bitstream.Reader, blk []float64, dims, minexp int) error {
	nz, err := r.ReadBit()
	if err != nil {
		return err
	}
	if nz == 0 {
		for i := range blk {
			blk[i] = 0
		}
		return nil
	}
	e64, err := r.ReadBits(16)
	if err != nil {
		return err
	}
	emax := int(e64) - ebias
	maxprec := blockPrecision(emax, minexp, dims)
	if maxprec == 0 {
		return errors.New("zfp: inconsistent block header")
	}
	u := make([]uint64, len(blk))
	if err := decodeInts(r, u, maxprec, perm(dims)); err != nil {
		return err
	}
	iblk := make([]int64, len(blk))
	for i, v := range u {
		iblk[i] = invNegabinary(v)
	}
	invXform(iblk, dims)
	s := math.Ldexp(1, emax-(intprec-2))
	for i, q := range iblk {
		blk[i] = float64(q) * s
	}
	return nil
}

// minExpOf computes ZFP's minexp from a tolerance: the largest e with
// 2^e <= tol.
func minExpOf(tol float64) int {
	_, e := math.Frexp(tol) // tol = f * 2^e, f in [0.5,1)
	return e - 1
}

// blockCount returns ceil(n/4).
func blockCount(n int) int { return (n + 3) / 4 }

// Compress implements compress.Compressor.
func (c *Compressor) Compress(data []float64, dims []int, bound compress.Bound) ([]byte, error) {
	if err := compress.Validate(data, dims); err != nil {
		return nil, err
	}
	eb := bound.Absolute(data)
	if eb <= 0 || math.IsNaN(eb) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("zfp: invalid error bound %v", eb)
	}
	minexp := minExpOf(eb)
	ndims := len(dims)

	head := make([]byte, 0, 64)
	head = binary.AppendUvarint(head, magic)
	head = binary.AppendUvarint(head, version)
	head = binary.AppendUvarint(head, uint64(ndims))
	for _, d := range dims {
		head = binary.AppendUvarint(head, uint64(d))
	}
	head = binary.AppendUvarint(head, math.Float64bits(eb))

	w := bitstream.NewWriter(len(data) * 16)
	switch ndims {
	case 1:
		n := dims[0]
		var blk [4]float64
		for b := 0; b < blockCount(n); b++ {
			gather1(data, n, b, blk[:])
			encodeBlock(w, blk[:], 1, minexp)
		}
	case 2:
		ny, nx := dims[0], dims[1]
		var blk [16]float64
		for bj := 0; bj < blockCount(ny); bj++ {
			for bi := 0; bi < blockCount(nx); bi++ {
				gather2(data, nx, ny, bi, bj, blk[:])
				encodeBlock(w, blk[:], 2, minexp)
			}
		}
	case 3:
		nz, ny, nx := dims[0], dims[1], dims[2]
		var blk [64]float64
		for bk := 0; bk < blockCount(nz); bk++ {
			for bj := 0; bj < blockCount(ny); bj++ {
				for bi := 0; bi < blockCount(nx); bi++ {
					gather3(data, nx, ny, nz, bi, bj, bk, blk[:])
					encodeBlock(w, blk[:], 3, minexp)
				}
			}
		}
	}
	return append(head, w.Bytes()...), nil
}

// ErrCorrupt is returned for malformed payloads.
var ErrCorrupt = errors.New("zfp: corrupt payload")

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(buf []byte) ([]float64, error) {
	rd := buf
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, ErrCorrupt
		}
		rd = rd[n:]
		return v, nil
	}
	mg, err := next()
	if err != nil || mg != magic {
		return nil, ErrCorrupt
	}
	ver, err := next()
	if err != nil || ver != version {
		return nil, fmt.Errorf("zfp: unsupported version %d", ver)
	}
	ndims64, err := next()
	if err != nil || ndims64 < 1 || ndims64 > 3 {
		return nil, ErrCorrupt
	}
	dims := make([]int, ndims64)
	n := 1
	for i := range dims {
		d, err := next()
		if err != nil || d == 0 || d > 1<<40 {
			return nil, ErrCorrupt
		}
		dims[i] = int(d)
	}
	n, err = compress.CheckSize(dims)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	ebBits, err := next()
	if err != nil {
		return nil, err
	}
	eb := math.Float64frombits(ebBits)
	if eb <= 0 || math.IsNaN(eb) || math.IsInf(eb, 0) {
		return nil, ErrCorrupt
	}
	minexp := minExpOf(eb)

	// Reject element counts the remaining bits cannot possibly encode (an
	// all-zero block still costs one bit per 4^d values) before allocating.
	if err := compress.PlausibleCount(n, len(rd)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	out := make([]float64, n)
	r := bitstream.NewReader(rd)
	switch len(dims) {
	case 1:
		var blk [4]float64
		for b := 0; b < blockCount(dims[0]); b++ {
			if err := decodeBlock(r, blk[:], 1, minexp); err != nil {
				return nil, err
			}
			scatter1(out, dims[0], b, blk[:])
		}
	case 2:
		ny, nx := dims[0], dims[1]
		var blk [16]float64
		for bj := 0; bj < blockCount(ny); bj++ {
			for bi := 0; bi < blockCount(nx); bi++ {
				if err := decodeBlock(r, blk[:], 2, minexp); err != nil {
					return nil, err
				}
				scatter2(out, nx, ny, bi, bj, blk[:])
			}
		}
	case 3:
		nz, ny, nx := dims[0], dims[1], dims[2]
		var blk [64]float64
		for bk := 0; bk < blockCount(nz); bk++ {
			for bj := 0; bj < blockCount(ny); bj++ {
				for bi := 0; bi < blockCount(nx); bi++ {
					if err := decodeBlock(r, blk[:], 3, minexp); err != nil {
						return nil, err
					}
					scatter3(out, nx, ny, nz, bi, bj, bk, blk[:])
				}
			}
		}
	}
	return out, nil
}

// gather/scatter move 4^d tiles between the flat array and block buffers,
// replicating edge values into the padding of partial blocks.

func gather1(data []float64, n, b int, blk []float64) {
	for i := 0; i < 4; i++ {
		src := 4*b + i
		if src >= n {
			src = n - 1
		}
		blk[i] = data[src]
	}
}

func scatter1(out []float64, n, b int, blk []float64) {
	for i := 0; i < 4; i++ {
		if dst := 4*b + i; dst < n {
			out[dst] = blk[i]
		}
	}
}

func clampIdx(v, n int) int {
	if v >= n {
		return n - 1
	}
	return v
}

func gather2(data []float64, nx, ny, bi, bj int, blk []float64) {
	for j := 0; j < 4; j++ {
		sj := clampIdx(4*bj+j, ny)
		for i := 0; i < 4; i++ {
			si := clampIdx(4*bi+i, nx)
			blk[4*j+i] = data[sj*nx+si]
		}
	}
}

func scatter2(out []float64, nx, ny, bi, bj int, blk []float64) {
	for j := 0; j < 4; j++ {
		dj := 4*bj + j
		if dj >= ny {
			continue
		}
		for i := 0; i < 4; i++ {
			di := 4*bi + i
			if di >= nx {
				continue
			}
			out[dj*nx+di] = blk[4*j+i]
		}
	}
}

func gather3(data []float64, nx, ny, nz, bi, bj, bk int, blk []float64) {
	for k := 0; k < 4; k++ {
		sk := clampIdx(4*bk+k, nz)
		for j := 0; j < 4; j++ {
			sj := clampIdx(4*bj+j, ny)
			for i := 0; i < 4; i++ {
				si := clampIdx(4*bi+i, nx)
				blk[(4*k+j)*4+i] = data[(sk*ny+sj)*nx+si]
			}
		}
	}
}

func scatter3(out []float64, nx, ny, nz, bi, bj, bk int, blk []float64) {
	for k := 0; k < 4; k++ {
		dk := 4*bk + k
		if dk >= nz {
			continue
		}
		for j := 0; j < 4; j++ {
			dj := 4*bj + j
			if dj >= ny {
				continue
			}
			for i := 0; i < 4; i++ {
				di := 4*bi + i
				if di >= nx {
					continue
				}
				out[(dk*ny+dj)*nx+di] = blk[(4*k+j)*4+i]
			}
		}
	}
}
