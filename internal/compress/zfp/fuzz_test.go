package zfp

import (
	"math"
	"testing"

	"repro/internal/compress"
)

// FuzzDecompress feeds arbitrary bytes to the ZFP decoder, seeded with
// valid round-trip payloads in 1-D/2-D/3-D. The decoder must never panic
// and must never report more values than the payload could plausibly
// encode.
func FuzzDecompress(f *testing.F) {
	c := New()
	data := make([]float64, 512)
	for i := range data {
		data[i] = math.Sin(float64(i) / 7)
	}
	for _, dims := range [][]int{{512}, {16, 32}, {8, 8, 8}} {
		if buf, err := c.Compress(data, dims, compress.AbsBound(1e-4)); err == nil {
			f.Add(buf)
		}
	}
	// All-zero data exercises the one-bit empty-block path.
	if buf, err := c.Compress(make([]float64, 64), []int{64}, compress.AbsBound(1e-4)); err == nil {
		f.Add(buf)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, buf []byte) {
		out, err := c.Decompress(buf)
		if err == nil && len(buf) > 0 && len(out) > compress.MaxExpansion*len(buf) {
			t.Fatalf("decoded %d values from %d bytes", len(out), len(buf))
		}
	})
}
