package zfp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/bitstream"
	"repro/internal/compress"
)

// Fixed-rate mode: every 4^d block is coded with exactly the same number of
// bits, trading the error guarantee of accuracy mode for a fixed size and —
// the reason ZFP applications use it — random access: any block can be
// decoded from bit offset blockIndex × maxbits without touching the rest of
// the stream.

const rateMagic = 0x5a465052 // "ZFPR"

// minBlockBits is the smallest per-block budget: the zero flag plus the
// 16-bit exponent must fit, and at least one plane bit should remain.
const minBlockBits = 18

// encodeIntsBudget is encodeInts with ZFP's exact bit-budget semantics;
// it returns the number of budget bits actually written.
func encodeIntsBudget(w *bitstream.Writer, u []uint64, maxprec int, pm []int, budget int) int {
	size := len(u)
	kmin := intprec - maxprec
	n := 0
	bits := budget
	for k := intprec - 1; k >= kmin && bits > 0; k-- {
		var x uint64
		for i := 0; i < size; i++ {
			x |= ((u[pm[i]] >> uint(k)) & 1) << uint(i)
		}
		m := n
		if bits < m {
			m = bits
		}
		w.WriteBits(x, uint(m))
		x >>= uint(m)
		bits -= m
		for n < size && bits > 0 {
			bits--
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			for n < size-1 && bits > 0 {
				bits--
				b := uint(x & 1)
				w.WriteBit(b)
				if b != 0 {
					break
				}
				x >>= 1
				n++
			}
			x >>= 1
			n++
		}
	}
	return budget - bits
}

// decodeIntsBudget mirrors encodeIntsBudget, returning bits consumed.
func decodeIntsBudget(r *bitstream.Reader, u []uint64, maxprec int, pm []int, budget int) (int, error) {
	size := len(u)
	kmin := intprec - maxprec
	n := 0
	bits := budget
	for k := intprec - 1; k >= kmin && bits > 0; k-- {
		m := n
		if bits < m {
			m = bits
		}
		x, err := r.ReadBits(uint(m))
		if err != nil {
			return 0, err
		}
		bits -= m
		for n < size && bits > 0 {
			bits--
			gb, err := r.ReadBit()
			if err != nil {
				return 0, err
			}
			if gb == 0 {
				break
			}
			for n < size-1 && bits > 0 {
				bits--
				b, err := r.ReadBit()
				if err != nil {
					return 0, err
				}
				if b != 0 {
					break
				}
				n++
			}
			x |= 1 << uint(n)
			n++
		}
		for i := 0; i < size && x != 0; i++ {
			u[pm[i]] |= (x & 1) << uint(k)
			x >>= 1
		}
	}
	return budget - bits, nil
}

// encodeBlockRate codes one block into exactly maxbits bits.
func encodeBlockRate(w *bitstream.Writer, blk []float64, dims, maxbits int) {
	start := w.Len()
	budget := maxbits
	maxabs := 0.0
	for _, v := range blk {
		if a := math.Abs(v); a > maxabs {
			maxabs = a
		}
	}
	if maxabs == 0 {
		w.WriteBit(0)
		budget--
	} else {
		w.WriteBit(1)
		budget--
		_, emax := math.Frexp(maxabs)
		w.WriteBits(uint64(emax+ebias), 16)
		budget -= 16
		s := math.Ldexp(1, intprec-2-emax)
		iblk := make([]int64, len(blk))
		for i, v := range blk {
			iblk[i] = int64(v * s)
		}
		fwdXform(iblk, dims)
		u := make([]uint64, len(iblk))
		for i, q := range iblk {
			u[i] = negabinary(q)
		}
		used := encodeIntsBudget(w, u, intprec, perm(dims), budget)
		budget -= used
	}
	// Zero-pad so the block occupies exactly maxbits bits.
	for w.Len() < start+uint64(maxbits) {
		pad := start + uint64(maxbits) - w.Len()
		if pad > 64 {
			pad = 64
		}
		w.WriteBits(0, uint(pad))
	}
	_ = budget
}

// decodeBlockRate reads one block of exactly maxbits bits.
func decodeBlockRate(r *bitstream.Reader, blk []float64, dims, maxbits int) error {
	start := r.BitsRead()
	budget := maxbits
	nz, err := r.ReadBit()
	if err != nil {
		return err
	}
	budget--
	if nz == 0 {
		for i := range blk {
			blk[i] = 0
		}
	} else {
		e64, err := r.ReadBits(16)
		if err != nil {
			return err
		}
		budget -= 16
		emax := int(e64) - ebias
		u := make([]uint64, len(blk))
		if _, err := decodeIntsBudget(r, u, intprec, perm(dims), budget); err != nil {
			return err
		}
		iblk := make([]int64, len(blk))
		for i, v := range u {
			iblk[i] = invNegabinary(v)
		}
		invXform(iblk, dims)
		s := math.Ldexp(1, emax-(intprec-2))
		for i, q := range iblk {
			blk[i] = float64(q) * s
		}
	}
	// Skip padding to the block boundary.
	for r.BitsRead() < start+uint64(maxbits) {
		skip := start + uint64(maxbits) - r.BitsRead()
		if skip > 64 {
			skip = 64
		}
		if _, err := r.ReadBits(uint(skip)); err != nil {
			return err
		}
	}
	return nil
}

// FixedRate is the fixed-rate codec façade. BitsPerValue is the rate; the
// per-block budget is BitsPerValue × 4^dims rounded down.
type FixedRate struct {
	BitsPerValue float64
}

// blockBits computes the per-block bit budget for a dimensionality.
func (f FixedRate) blockBits(ndims int) int {
	size := 1 << (2 * uint(ndims))
	return int(f.BitsPerValue * float64(size))
}

// Compress encodes data at the fixed rate. Unlike accuracy mode there is no
// error bound: accuracy follows from the rate.
func (f FixedRate) Compress(data []float64, dims []int) ([]byte, error) {
	if err := compress.Validate(data, dims); err != nil {
		return nil, err
	}
	maxbits := f.blockBits(len(dims))
	if maxbits < minBlockBits {
		return nil, fmt.Errorf("zfp: rate %v gives %d bits/block; need >= %d",
			f.BitsPerValue, maxbits, minBlockBits)
	}
	head := make([]byte, 0, 64)
	head = binary.AppendUvarint(head, rateMagic)
	head = binary.AppendUvarint(head, version)
	head = binary.AppendUvarint(head, uint64(len(dims)))
	for _, d := range dims {
		head = binary.AppendUvarint(head, uint64(d))
	}
	head = binary.AppendUvarint(head, uint64(maxbits))

	w := bitstream.NewWriter(len(data) * 8)
	forEachBlock(dims, func(coords [3]int) {
		blk := gatherBlock(data, dims, coords)
		encodeBlockRate(w, blk, len(dims), maxbits)
	})
	return append(head, w.Bytes()...), nil
}

// ErrBadRateStream is returned for malformed fixed-rate payloads.
var ErrBadRateStream = errors.New("zfp: corrupt fixed-rate payload")

// parseRateHeader returns dims, maxbits and the bitstream body.
func parseRateHeader(buf []byte) ([]int, int, []byte, error) {
	rd := buf
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, ErrBadRateStream
		}
		rd = rd[n:]
		return v, nil
	}
	mg, err := next()
	if err != nil || mg != rateMagic {
		return nil, 0, nil, ErrBadRateStream
	}
	ver, err := next()
	if err != nil || ver != version {
		return nil, 0, nil, ErrBadRateStream
	}
	nd, err := next()
	if err != nil || nd < 1 || nd > 3 {
		return nil, 0, nil, ErrBadRateStream
	}
	dims := make([]int, nd)
	for i := range dims {
		d, err := next()
		if err != nil || d == 0 || d > 1<<40 {
			return nil, 0, nil, ErrBadRateStream
		}
		dims[i] = int(d)
	}
	if _, err := compress.CheckSize(dims); err != nil {
		return nil, 0, nil, ErrBadRateStream
	}
	mb, err := next()
	if err != nil || mb < minBlockBits || mb > 1<<24 {
		return nil, 0, nil, ErrBadRateStream
	}
	return dims, int(mb), rd, nil
}

// Decompress decodes the whole fixed-rate stream.
func (f FixedRate) Decompress(buf []byte) ([]float64, error) {
	dims, maxbits, body, err := parseRateHeader(buf)
	if err != nil {
		return nil, err
	}
	n, err := compress.CheckSize(dims)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	r := bitstream.NewReader(body)
	var derr error
	forEachBlock(dims, func(coords [3]int) {
		if derr != nil {
			return
		}
		blk := make([]float64, 1<<(2*uint(len(dims))))
		if err := decodeBlockRate(r, blk, len(dims), maxbits); err != nil {
			derr = err
			return
		}
		scatterBlock(out, dims, coords, blk)
	})
	if derr != nil {
		return nil, derr
	}
	return out, nil
}

// DecodeBlockAt randomly accesses one block by its index in row-major
// block order, decoding exactly maxbits bits at offset index × maxbits.
// It returns the block's values (padding positions of partial edge blocks
// hold replicated values, as at encode time).
func (f FixedRate) DecodeBlockAt(buf []byte, index int) ([]float64, error) {
	dims, maxbits, body, err := parseRateHeader(buf)
	if err != nil {
		return nil, err
	}
	nBlocks := 1
	for _, d := range dims {
		nBlocks *= blockCount(d)
	}
	if index < 0 || index >= nBlocks {
		return nil, fmt.Errorf("zfp: block index %d out of range [0,%d)", index, nBlocks)
	}
	r := bitstream.NewReader(body)
	// Seek: skip index×maxbits bits.
	skip := uint64(index) * uint64(maxbits)
	for skip > 0 {
		c := skip
		if c > 64 {
			c = 64
		}
		if _, err := r.ReadBits(uint(c)); err != nil {
			return nil, err
		}
		skip -= c
	}
	blk := make([]float64, 1<<(2*uint(len(dims))))
	if err := decodeBlockRate(r, blk, len(dims), maxbits); err != nil {
		return nil, err
	}
	return blk, nil
}

// forEachBlock enumerates block origins in row-major block order.
func forEachBlock(dims []int, fn func(coords [3]int)) {
	switch len(dims) {
	case 1:
		for b := 0; b < blockCount(dims[0]); b++ {
			fn([3]int{b, 0, 0})
		}
	case 2:
		for bj := 0; bj < blockCount(dims[0]); bj++ {
			for bi := 0; bi < blockCount(dims[1]); bi++ {
				fn([3]int{bi, bj, 0})
			}
		}
	case 3:
		for bk := 0; bk < blockCount(dims[0]); bk++ {
			for bj := 0; bj < blockCount(dims[1]); bj++ {
				for bi := 0; bi < blockCount(dims[2]); bi++ {
					fn([3]int{bi, bj, bk})
				}
			}
		}
	}
}

// gatherBlock extracts the block at the given block coordinates.
func gatherBlock(data []float64, dims []int, c [3]int) []float64 {
	switch len(dims) {
	case 1:
		blk := make([]float64, 4)
		gather1(data, dims[0], c[0], blk)
		return blk
	case 2:
		blk := make([]float64, 16)
		gather2(data, dims[1], dims[0], c[0], c[1], blk)
		return blk
	default:
		blk := make([]float64, 64)
		gather3(data, dims[2], dims[1], dims[0], c[0], c[1], c[2], blk)
		return blk
	}
}

// scatterBlock writes a block back.
func scatterBlock(out []float64, dims []int, c [3]int, blk []float64) {
	switch len(dims) {
	case 1:
		scatter1(out, dims[0], c[0], blk)
	case 2:
		scatter2(out, dims[1], dims[0], c[0], c[1], blk)
	default:
		scatter3(out, dims[2], dims[1], dims[0], c[0], c[1], c[2], blk)
	}
}
