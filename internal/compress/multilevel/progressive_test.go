package multilevel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/compress"
)

func progressiveSignal(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		t := float64(i) / float64(n)
		out[i] = math.Sin(2*math.Pi*3*t) + 0.2*math.Sin(2*math.Pi*31*t) + 0.3*t
	}
	return out
}

func TestProgressiveBoundsPerPrefix(t *testing.T) {
	c := New()
	data := progressiveSignal(20000)
	bounds := []float64{1e-2, 1e-3, 1e-4, 1e-5}
	tiers, err := c.CompressProgressive(data, []int{len(data)}, compress.Abs, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiers) != len(bounds) {
		t.Fatalf("%d tiers", len(tiers))
	}
	for k := 1; k <= len(tiers); k++ {
		got, err := c.DecompressProgressive(tiers[:k])
		if err != nil {
			t.Fatalf("prefix %d: %v", k, err)
		}
		if e := maxErr(data, got); e > bounds[k-1] {
			t.Fatalf("prefix %d: max error %g exceeds %g", k, e, bounds[k-1])
		}
	}
}

func TestProgressiveMonotoneImprovement(t *testing.T) {
	c := New()
	data := progressiveSignal(10000)
	bounds := []float64{1e-1, 1e-3, 1e-5}
	tiers, err := c.CompressProgressive(data, []int{len(data)}, compress.Abs, bounds)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for k := 1; k <= len(tiers); k++ {
		got, err := c.DecompressProgressive(tiers[:k])
		if err != nil {
			t.Fatal(err)
		}
		e := maxErr(data, got)
		if e > prev {
			t.Fatalf("prefix %d error %g worse than previous %g", k, e, prev)
		}
		prev = e
	}
}

func TestProgressiveCostVsOneShot(t *testing.T) {
	// All tiers together should not cost more than ~3x a one-shot encode
	// at the final bound (the progressive premium must be bounded).
	c := New()
	data := progressiveSignal(50000)
	bounds := []float64{1e-2, 1e-4}
	tiers, err := c.CompressProgressive(data, []int{len(data)}, compress.Abs, bounds)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, tier := range tiers {
		total += len(tier.Payload)
	}
	oneShot, err := c.Compress(data, []int{len(data)}, compress.AbsBound(bounds[len(bounds)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if total > 3*len(oneShot) {
		t.Fatalf("progressive total %d bytes vs one-shot %d", total, len(oneShot))
	}
	// The first tier must be much smaller than the full encoding: that is
	// the point of progressive retrieval.
	if len(tiers[0].Payload) >= len(oneShot) {
		t.Fatalf("coarse tier %d bytes not smaller than one-shot %d", len(tiers[0].Payload), len(oneShot))
	}
}

func TestProgressive2D(t *testing.T) {
	c := New()
	ny, nx := 48, 64
	data := make([]float64, ny*nx)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			data[j*nx+i] = math.Exp(-float64((i-30)*(i-30)+(j-20)*(j-20)) / 200)
		}
	}
	bounds := []float64{1e-2, 1e-4}
	tiers, err := c.CompressProgressive(data, []int{ny, nx}, compress.Rel, bounds)
	if err != nil {
		t.Fatal(err)
	}
	rng := compress.RelBound(1).Absolute(data) // = value range (bound 1.0 * range)
	for k := 1; k <= len(tiers); k++ {
		got, err := c.DecompressProgressive(tiers[:k])
		if err != nil {
			t.Fatal(err)
		}
		if e := maxErr(data, got); e > bounds[k-1]*rng {
			t.Fatalf("prefix %d: error %g exceeds %g", k, e, bounds[k-1]*rng)
		}
	}
}

func TestProgressiveValidation(t *testing.T) {
	c := New()
	data := progressiveSignal(100)
	if _, err := c.CompressProgressive(data, []int{100}, compress.Abs, nil); err == nil {
		t.Fatal("no bounds accepted")
	}
	if _, err := c.CompressProgressive(data, []int{100}, compress.Abs, []float64{1e-3, 1e-2}); err == nil {
		t.Fatal("increasing bounds accepted")
	}
	if _, err := c.CompressProgressive(data, []int{100}, compress.Abs, []float64{0}); err == nil {
		t.Fatal("zero bound accepted")
	}
	if _, err := c.DecompressProgressive(nil); err == nil {
		t.Fatal("no tiers accepted")
	}
}

func TestProgressiveOutOfOrderTiersRejected(t *testing.T) {
	c := New()
	data := progressiveSignal(1000)
	tiers, err := c.CompressProgressive(data, []int{1000}, compress.Abs, []float64{1e-2, 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecompressProgressive([]Tier{tiers[1], tiers[0]}); err == nil {
		t.Fatal("out-of-order tiers accepted")
	}
}

func TestProgressiveCorruptTier(t *testing.T) {
	c := New()
	data := progressiveSignal(1000)
	tiers, err := c.CompressProgressive(data, []int{1000}, compress.Abs, []float64{1e-2})
	if err != nil {
		t.Fatal(err)
	}
	tiers[0].Payload = tiers[0].Payload[:len(tiers[0].Payload)/2]
	if _, err := c.DecompressProgressive(tiers); err == nil {
		t.Fatal("truncated tier accepted")
	}
}

func TestProgressiveRandomData(t *testing.T) {
	c := New()
	rng := rand.New(rand.NewSource(21))
	data := make([]float64, 4000)
	v := 0.0
	for i := range data {
		v += rng.NormFloat64()
		data[i] = v
	}
	bounds := []float64{1.0, 0.1, 0.01}
	tiers, err := c.CompressProgressive(data, []int{len(data)}, compress.Abs, bounds)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= len(tiers); k++ {
		got, err := c.DecompressProgressive(tiers[:k])
		if err != nil {
			t.Fatal(err)
		}
		if e := maxErr(data, got); e > bounds[k-1] {
			t.Fatalf("prefix %d: error %g exceeds %g", k, e, bounds[k-1])
		}
	}
}
