package multilevel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
)

func maxErr(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if e := math.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestDecomposeRecomposeIdentity(t *testing.T) {
	// Without quantization the transform must be exactly invertible.
	rng := rand.New(rand.NewSource(5))
	cases := [][]int{{1}, {2}, {3}, {17}, {64}, {65}, {8, 8}, {7, 9}, {16, 5}, {4, 6, 8}, {5, 5, 5}}
	for _, dims := range cases {
		n := 1
		for _, d := range dims {
			n *= d
		}
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		work := append([]float64(nil), data...)
		decompose(work, dims)
		recompose(work, dims)
		for i := range data {
			if math.Abs(work[i]-data[i]) > 1e-12*(1+math.Abs(data[i])) {
				t.Fatalf("dims %v: cell %d drifted %v -> %v", dims, i, data[i], work[i])
			}
		}
	}
}

func TestCoefficientsDecayForSmoothData(t *testing.T) {
	// For a smooth signal, fine-level detail coefficients must be tiny
	// relative to the data scale — the property the codec exploits.
	n := 1024
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(2 * math.Pi * float64(i) / float64(n))
	}
	work := append([]float64(nil), data...)
	decompose(work, []int{n})
	// Odd indices hold the finest-level details. The last node uses the
	// zeroth-order boundary predictor and carries a first-difference-sized
	// detail by design, so exclude it.
	var maxDetail float64
	for i := 1; i < n-1; i += 2 {
		if a := math.Abs(work[i]); a > maxDetail {
			maxDetail = a
		}
	}
	if maxDetail > 1e-4 {
		t.Fatalf("finest details reach %v for a smooth signal", maxDetail)
	}
}

func TestRoundTrip1D(t *testing.T) {
	c := New()
	n := 10000
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i)/50) + 0.1*math.Cos(float64(i)/7)
	}
	for _, eb := range []float64{1e-2, 1e-4, 1e-6} {
		buf, err := c.Compress(data, []int{n}, compress.AbsBound(eb))
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		if e := maxErr(data, got); e > eb {
			t.Fatalf("eb=%g: max error %g", eb, e)
		}
	}
}

func TestRoundTrip2D3D(t *testing.T) {
	c := New()
	ny, nx := 33, 47
	data := make([]float64, ny*nx)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			data[j*nx+i] = math.Exp(-float64((i-20)*(i-20)+(j-15)*(j-15)) / 100)
		}
	}
	eb := 1e-4
	buf, err := c.Compress(data, []int{ny, nx}, compress.AbsBound(eb))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, got); e > eb {
		t.Fatalf("2-D max error %g", e)
	}

	nz := 9
	d3 := make([]float64, nz*ny*nx)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				d3[(k*ny+j)*nx+i] = float64(i) + 2*float64(j) - float64(k*k)/10
			}
		}
	}
	buf, err = c.Compress(d3, []int{nz, ny, nx}, compress.AbsBound(eb))
	if err != nil {
		t.Fatal(err)
	}
	got, err = c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(d3, got); e > eb {
		t.Fatalf("3-D max error %g", e)
	}
}

func TestSmoothBeatsGzipFloor(t *testing.T) {
	c := New()
	n := 65536
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i) / 100)
	}
	buf, err := c.Compress(data, []int{n}, compress.RelBound(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	if r := compress.Ratio(n, buf); r < 10 {
		t.Fatalf("multilevel ratio %.2f on smooth data, want >= 10", r)
	}
}

func TestRandomDataBounded(t *testing.T) {
	c := New()
	rng := rand.New(rand.NewSource(77))
	data := make([]float64, 5000)
	for i := range data {
		data[i] = rng.NormFloat64() * 50
	}
	eb := 0.25
	buf, err := c.Compress(data, []int{len(data)}, compress.AbsBound(eb))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, got); e > eb {
		t.Fatalf("max error %g", e)
	}
}

func TestInvalidInputs(t *testing.T) {
	c := New()
	if _, err := c.Compress([]float64{1, 2}, []int{3}, compress.AbsBound(1e-3)); err == nil {
		t.Fatal("dims mismatch accepted")
	}
	if _, err := c.Compress([]float64{1}, []int{1}, compress.AbsBound(0)); err == nil {
		t.Fatal("zero bound accepted")
	}
	bad := &Compressor{Intervals: 5}
	if _, err := bad.Compress([]float64{1}, []int{1}, compress.AbsBound(1)); err == nil {
		t.Fatal("odd intervals accepted")
	}
}

func TestCorrupt(t *testing.T) {
	c := New()
	if _, err := c.Decompress(nil); err == nil {
		t.Fatal("nil accepted")
	}
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	buf, err := c.Compress(data, []int{8}, compress.AbsBound(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(buf[:len(buf)/2]); err == nil {
		t.Fatal("truncated accepted")
	}
}

func TestRegistered(t *testing.T) {
	c, err := compress.Get("mgl")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "mgl" {
		t.Fatalf("name %q", c.Name())
	}
}

// property: the error bound holds across random walks, shapes, and bounds.
func TestBoundQuick(t *testing.T) {
	c := New()
	f := func(seed int64, size uint16, ebExp uint8, shape uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size%2000) + 1
		var dims []int
		switch shape % 3 {
		case 0:
			dims = []int{n}
		case 1:
			ny := int(math.Sqrt(float64(n)))
			if ny < 1 {
				ny = 1
			}
			nx := (n + ny - 1) / ny
			n = ny * nx
			dims = []int{ny, nx}
		default:
			nz := 3
			ny := 5
			nx := (n + nz*ny - 1) / (nz * ny)
			if nx < 1 {
				nx = 1
			}
			n = nz * ny * nx
			dims = []int{nz, ny, nx}
		}
		data := make([]float64, n)
		v := 0.0
		for i := range data {
			v += rng.NormFloat64()
			data[i] = v
		}
		eb := math.Pow(10, -float64(ebExp%7)-1)
		buf, err := c.Compress(data, dims, compress.AbsBound(eb))
		if err != nil {
			return false
		}
		got, err := c.Decompress(buf)
		if err != nil || len(got) != n {
			return false
		}
		return maxErr(data, got) <= eb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress1D(b *testing.B) {
	c := New()
	n := 1 << 18
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i) / 40)
	}
	b.SetBytes(int64(n * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data, []int{n}, compress.RelBound(1e-4)); err != nil {
			b.Fatal(err)
		}
	}
}
