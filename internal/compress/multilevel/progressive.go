package multilevel

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/compress"
	"repro/internal/huffman"
)

// Progressive retrieval (Wan et al., "Error-controlled, progressive, and
// adaptable retrieval of scientific data with multilevel decomposition"):
// the multilevel coefficients are encoded once into a sequence of tiers
// with decreasing error bounds. A reader fetches tiers incrementally —
// after any prefix of k tiers the reconstruction satisfies the k-th bound,
// so analyses requesting coarse accuracy move a fraction of the bytes.
// Tier k stores the quantized residual between the true coefficients and
// the coefficients reconstructed from tiers 0..k-1.

const tierMagic = 0x4d474c54 // "MGLT"

// Tier is one increment of a progressive encoding.
type Tier struct {
	// Bound is the absolute error bound guaranteed after decoding this and
	// all previous tiers.
	Bound float64
	// Payload is the tier's encoded residual stream.
	Payload []byte
}

// CompressProgressive encodes data into one tier per bound. Bounds must be
// strictly decreasing and positive; they are interpreted per the given
// bound mode against the whole dataset (Rel resolves against the range).
func (c *Compressor) CompressProgressive(data []float64, dims []int, mode compress.BoundMode, bounds []float64) ([]Tier, error) {
	if err := compress.Validate(data, dims); err != nil {
		return nil, err
	}
	if c.Intervals < 4 || c.Intervals%2 != 0 {
		return nil, fmt.Errorf("mgl: intervals must be even and >= 4, got %d", c.Intervals)
	}
	if len(bounds) == 0 {
		return nil, fmt.Errorf("mgl: no tier bounds given")
	}
	abs := make([]float64, len(bounds))
	for i, b := range bounds {
		a := compress.Bound{Mode: mode, Value: b}.Absolute(data)
		if a <= 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			return nil, fmt.Errorf("mgl: invalid tier bound %v", b)
		}
		if i > 0 && a >= abs[i-1] {
			return nil, fmt.Errorf("mgl: tier bounds must decrease (%v >= %v)", a, abs[i-1])
		}
		abs[i] = a
	}

	coeffs := append([]float64(nil), data...)
	decompose(coeffs, dims)
	amp := errorAmplification(dims)
	reconC := make([]float64, len(coeffs))
	radius := c.Intervals / 2

	tiers := make([]Tier, 0, len(abs))
	for ti, bound := range abs {
		q := bound / amp
		twoQ := 2 * q
		codes := make([]int, len(coeffs))
		var unpred []float64
		for i, v := range coeffs {
			r := v - reconC[i]
			k := math.Floor(r/twoQ + 0.5)
			if math.Abs(k) < float64(radius) {
				d := k * twoQ
				if math.Abs(d-r) <= q {
					codes[i] = int(k) + radius
					reconC[i] += d
					continue
				}
			}
			codes[i] = 0
			unpred = append(unpred, r)
			reconC[i] = v
		}
		coded, err := huffman.EncodeAll(codes, c.Intervals)
		if err != nil {
			return nil, fmt.Errorf("mgl: tier %d entropy stage: %w", ti, err)
		}
		var payload bytes.Buffer
		head := make([]byte, 0, 64)
		head = binary.AppendUvarint(head, tierMagic)
		head = binary.AppendUvarint(head, version)
		head = binary.AppendUvarint(head, uint64(ti))
		head = binary.AppendUvarint(head, uint64(len(dims)))
		for _, d := range dims {
			head = binary.AppendUvarint(head, uint64(d))
		}
		head = binary.AppendUvarint(head, uint64(c.Intervals))
		head = binary.AppendUvarint(head, math.Float64bits(q))
		head = binary.AppendUvarint(head, uint64(len(unpred)))
		head = binary.AppendUvarint(head, uint64(len(coded)))
		payload.Write(head)
		payload.Write(coded)
		raw := make([]byte, 8)
		for _, v := range unpred {
			binary.LittleEndian.PutUint64(raw, math.Float64bits(v))
			payload.Write(raw)
		}
		var out bytes.Buffer
		out.WriteByte(1)
		fw, err := flate.NewWriter(&out, flate.DefaultCompression)
		if err != nil {
			return nil, err
		}
		if _, err := fw.Write(payload.Bytes()); err != nil {
			return nil, err
		}
		if err := fw.Close(); err != nil {
			return nil, err
		}
		final := out.Bytes()
		if out.Len() >= payload.Len()+1 {
			final = append([]byte{0}, payload.Bytes()...)
		}
		tiers = append(tiers, Tier{Bound: bound, Payload: final})
	}
	return tiers, nil
}

// DecompressProgressive reconstructs from any prefix of tiers; the result
// satisfies the last provided tier's bound.
func (c *Compressor) DecompressProgressive(tiers []Tier) ([]float64, error) {
	if len(tiers) == 0 {
		return nil, fmt.Errorf("mgl: no tiers")
	}
	var reconC []float64
	var dims []int
	for ti, tier := range tiers {
		codes, unpred, q, radius, tdims, tIdx, err := decodeTier(tier.Payload)
		if err != nil {
			return nil, fmt.Errorf("mgl: tier %d: %w", ti, err)
		}
		if tIdx != ti {
			return nil, fmt.Errorf("mgl: tier %d out of order (stream says %d)", ti, tIdx)
		}
		if dims == nil {
			dims = tdims
			reconC = make([]float64, len(codes))
		} else if !sameDims(dims, tdims) {
			return nil, fmt.Errorf("mgl: tier %d dims %v mismatch %v", ti, tdims, dims)
		}
		if len(codes) != len(reconC) {
			return nil, ErrCorrupt
		}
		ui := 0
		twoQ := 2 * q
		for i, code := range codes {
			if code == 0 {
				// Unpredictable: the raw residual makes the coefficient
				// exact from this tier on.
				if ui >= len(unpred) {
					return nil, ErrCorrupt
				}
				reconC[i] += unpred[ui]
				ui++
				continue
			}
			reconC[i] += float64(code-radius) * twoQ
		}
		if ui != len(unpred) {
			return nil, ErrCorrupt
		}
	}
	out := append([]float64(nil), reconC...)
	recompose(out, dims)
	return out, nil
}

func sameDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// decodeTier parses one tier payload, returning the alphabet codes
// (0 = unpredictable), raw residuals, quantum, radius, dims and tier index.
func decodeTier(buf []byte) (codes []int, unpred []float64, q float64, radius int, dims []int, tierIdx int, err error) {
	fail := func(e error) ([]int, []float64, float64, int, []int, int, error) {
		return nil, nil, 0, 0, nil, 0, e
	}
	if len(buf) < 2 {
		return fail(ErrCorrupt)
	}
	marker, body := buf[0], buf[1:]
	switch marker {
	case 0:
	case 1:
		body, err = io.ReadAll(flate.NewReader(bytes.NewReader(body)))
		if err != nil {
			return fail(err)
		}
	default:
		return fail(ErrCorrupt)
	}
	rd := body
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, ErrCorrupt
		}
		rd = rd[n:]
		return v, nil
	}
	mg, err := next()
	if err != nil || mg != tierMagic {
		return fail(ErrCorrupt)
	}
	ver, err := next()
	if err != nil || ver != version {
		return fail(ErrCorrupt)
	}
	t64, err := next()
	if err != nil {
		return fail(err)
	}
	nd, err := next()
	if err != nil || nd < 1 || nd > 3 {
		return fail(ErrCorrupt)
	}
	dims = make([]int, nd)
	for i := range dims {
		d, err := next()
		if err != nil || d == 0 || d > 1<<40 {
			return fail(ErrCorrupt)
		}
		dims[i] = int(d)
	}
	n, err := compress.CheckSize(dims)
	if err != nil {
		return fail(ErrCorrupt)
	}
	intervals, err := next()
	if err != nil || intervals < 4 || intervals%2 != 0 || intervals > 1<<30 {
		return fail(ErrCorrupt)
	}
	qb, err := next()
	if err != nil {
		return fail(err)
	}
	q = math.Float64frombits(qb)
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return fail(ErrCorrupt)
	}
	nUnpred, err := next()
	if err != nil {
		return fail(err)
	}
	codedLen, err := next()
	if err != nil {
		return fail(err)
	}
	// Per-section bounds checks; summing the uint64 lengths first could
	// wrap and pass, panicking the slice expressions below.
	lenRd := uint64(len(rd))
	if codedLen > lenRd || nUnpred > (lenRd-codedLen)/8 {
		return fail(ErrCorrupt)
	}
	codes, err = huffman.DecodeAll(rd[:codedLen])
	if err != nil {
		return fail(err)
	}
	// recompose walks the full dims geometry; a code stream of any other
	// length would index out of range.
	if len(codes) != n {
		return fail(ErrCorrupt)
	}
	unpred = make([]float64, nUnpred)
	for i := range unpred {
		unpred[i] = math.Float64frombits(binary.LittleEndian.Uint64(rd[codedLen+uint64(8*i):]))
	}
	return codes, unpred, q, int(intervals) / 2, dims, int(t64), nil
}
