package multilevel

import (
	"math"
	"testing"

	"repro/internal/compress"
)

// FuzzDecompress feeds arbitrary bytes to the multilevel decoder, seeded
// with valid round-trip payloads. The decoder must never panic and must
// never report more values than the payload could plausibly encode.
func FuzzDecompress(f *testing.F) {
	c := New()
	data := make([]float64, 500)
	for i := range data {
		data[i] = math.Exp(-float64(i)/200) * math.Sin(float64(i)/11)
	}
	for _, dims := range [][]int{{500}, {20, 25}, {5, 10, 10}} {
		if buf, err := c.Compress(data, dims, compress.AbsBound(1e-3)); err == nil {
			f.Add(buf)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0})

	f.Fuzz(func(t *testing.T, buf []byte) {
		out, err := c.Decompress(buf)
		if err == nil && len(buf) > 0 && len(out) > compress.MaxExpansion*len(buf) {
			t.Fatalf("decoded %d values from %d bytes", len(out), len(buf))
		}
	})
}

// FuzzDecompressProgressive drives the tier decode path, whose geometry
// walk (recompose) indexes by the header dims and must therefore reject any
// code stream whose length disagrees with them.
func FuzzDecompressProgressive(f *testing.F) {
	c := New()
	data := make([]float64, 400)
	for i := range data {
		data[i] = math.Sin(float64(i) / 17)
	}
	tiers, err := c.CompressProgressive(data, []int{400}, compress.Abs, []float64{1e-1, 1e-2, 1e-3})
	if err == nil {
		for _, tier := range tiers {
			f.Add(tier.Payload)
		}
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, buf []byte) {
		out, err := c.DecompressProgressive([]Tier{{Bound: 1e-1, Payload: buf}})
		if err == nil && len(buf) > 0 && len(out) > compress.MaxExpansion*len(buf) {
			t.Fatalf("decoded %d values from %d bytes", len(out), len(buf))
		}
	})
}
