// Package multilevel implements an MGARD-inspired error-bounded compressor
// (Ainsworth, Tugluk, Whitney, Klasky — "Multilevel techniques for
// compression and reduction of scientific data"): the input is decomposed
// into a hierarchical (interpolation) basis — at each level, nodes at odd
// multiples of the stride are replaced by their deviation from the linear
// interpolant of their even neighbours, dimension by dimension — the
// multilevel coefficients are uniformly quantized with a budget that splits
// the error bound across levels, and the quantization codes are entropy
// coded like SZ's (canonical Huffman + DEFLATE).
//
// This is the hierarchical-basis core of MGARD without the L²-projection
// correction; it preserves MGARD's defining behaviour — coefficients decay
// with level for smooth data, so coarse levels carry almost all the signal.
package multilevel

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/compress"
	"repro/internal/huffman"
)

const (
	magic   = 0x4d474c31 // "MGL1"
	version = 1
)

// DefaultIntervals is the quantization capacity (Huffman alphabet size).
const DefaultIntervals = 65536

// Compressor is the multilevel codec.
type Compressor struct {
	// Intervals is the quantization capacity; even, >= 4.
	Intervals int
}

// New returns a multilevel codec with default settings.
func New() *Compressor { return &Compressor{Intervals: DefaultIntervals} }

func init() {
	compress.Register("mgl", func() compress.Compressor { return New() })
}

// Name implements compress.Compressor.
func (c *Compressor) Name() string { return "mgl" }

// numLevels reports the decomposition depth for extent n: strides
// 1, 2, 4, ... while 2*stride < n gives level count.
func numLevels(dims []int) int {
	max := 0
	for _, d := range dims {
		l := 0
		for s := 1; 2*s < d; s *= 2 {
			l++
		}
		if l > max {
			max = l
		}
	}
	return max
}

// forwardAxis applies one level of the hierarchical decomposition along an
// axis: for every line, nodes at odd multiples of stride become details
// (value minus linear interpolant of even neighbours). lineLen is the
// extent along the axis, lineStride the memory stride between consecutive
// axis elements.
func forwardLine(data []float64, base, lineLen, lineStride, s int) {
	for i := s; i < lineLen; i += 2 * s {
		data[base+i*lineStride] -= linePred(data, base, lineLen, lineStride, s, i)
	}
}

// inverseLine inverts forwardLine.
func inverseLine(data []float64, base, lineLen, lineStride, s int) {
	for i := s; i < lineLen; i += 2 * s {
		data[base+i*lineStride] += linePred(data, base, lineLen, lineStride, s, i)
	}
}

// linePred predicts the odd node at i from the kept (even-multiple) nodes:
// the linear interpolant of its neighbours in the interior and the left
// neighbour alone at the right boundary. The boundary deliberately stays
// zeroth-order: its prediction weights sum to 1 in magnitude, which keeps
// the level-wise error amplification linear (errorAmplification); a linear
// extrapolation (weights 2, −1) would compound neighbour errors by 3 per
// level and break the worst-case bound. Predictions read only kept nodes,
// so forward and inverse apply them identically.
func linePred(data []float64, base, lineLen, lineStride, s, i int) float64 {
	left := data[base+(i-s)*lineStride]
	if i+s < lineLen {
		return 0.5 * (left + data[base+(i+s)*lineStride])
	}
	return left
}

// axisGeometry enumerates the lines of an N-D array along one axis.
type axisGeometry struct {
	lineLen    int
	lineStride int
	lines      []int // base offsets
}

// geometry computes the line decomposition of dims (slowest-first order,
// as used throughout the compress packages) along axis a.
func geometry(dims []int, a int) axisGeometry {
	// Strides, slowest-first: stride[last] = 1.
	nd := len(dims)
	strides := make([]int, nd)
	strides[nd-1] = 1
	for i := nd - 2; i >= 0; i-- {
		strides[i] = strides[i+1] * dims[i+1]
	}
	g := axisGeometry{lineLen: dims[a], lineStride: strides[a]}
	// Enumerate all index combinations of the other axes.
	total := 1
	for i, d := range dims {
		if i != a {
			total *= d
		}
	}
	g.lines = make([]int, 0, total)
	idx := make([]int, nd)
	for {
		base := 0
		for i := range idx {
			base += idx[i] * strides[i]
		}
		g.lines = append(g.lines, base)
		// Increment the multi-index, skipping axis a.
		i := nd - 1
		for ; i >= 0; i-- {
			if i == a {
				continue
			}
			idx[i]++
			if idx[i] < dims[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return g
}

// decompose applies the full multilevel transform in place and returns the
// level of each element (0 = finest detail, L = coarsest nodes), used for
// diagnostics and level-wise statistics.
func decompose(data []float64, dims []int) {
	levels := numLevels(dims)
	for l, s := 0, 1; l < levels; l, s = l+1, s*2 {
		for a := 0; a < len(dims); a++ {
			if 2*s >= dims[a] && s >= dims[a] {
				continue
			}
			g := geometry(dims, a)
			for _, base := range g.lines {
				forwardLine(data, base, g.lineLen, g.lineStride, s)
			}
		}
	}
}

// recompose inverts decompose.
func recompose(data []float64, dims []int) {
	levels := numLevels(dims)
	// Levels in reverse, axes in reverse.
	s := 1
	for l := 0; l < levels-1; l++ {
		s *= 2
	}
	for l := levels - 1; l >= 0; l, s = l-1, s/2 {
		for a := len(dims) - 1; a >= 0; a-- {
			if 2*s >= dims[a] && s >= dims[a] {
				continue
			}
			g := geometry(dims, a)
			for _, base := range g.lines {
				inverseLine(data, base, g.lineLen, g.lineStride, s)
			}
		}
	}
}

// errorAmplification bounds how much per-coefficient quantization error can
// amplify through recomposition: each inverse level adds at most the mean
// of two already-erroneous neighbours on top of the coefficient's own
// error, so the worst case grows linearly with level count per dimension.
func errorAmplification(dims []int) float64 {
	amp := float64(numLevels(dims)*len(dims) + 1)
	return amp
}

// Compress implements compress.Compressor.
func (c *Compressor) Compress(data []float64, dims []int, bound compress.Bound) ([]byte, error) {
	if err := compress.Validate(data, dims); err != nil {
		return nil, err
	}
	if c.Intervals < 4 || c.Intervals%2 != 0 {
		return nil, fmt.Errorf("mgl: intervals must be even and >= 4, got %d", c.Intervals)
	}
	eb := bound.Absolute(data)
	if eb <= 0 || math.IsNaN(eb) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("mgl: invalid error bound %v", eb)
	}
	work := append([]float64(nil), data...)
	decompose(work, dims)

	// Quantize coefficients with the amplification-adjusted budget.
	q := eb / errorAmplification(dims)
	twoQ := 2 * q
	radius := c.Intervals / 2
	codes := make([]int, len(work))
	var unpred []float64
	for i, v := range work {
		k := math.Floor(v/twoQ + 0.5)
		if math.Abs(k) < float64(radius) {
			r := k * twoQ
			if math.Abs(r-v) <= q {
				codes[i] = int(k) + radius
				work[i] = r
				continue
			}
		}
		codes[i] = 0
		unpred = append(unpred, v)
		work[i] = v
	}
	coded, err := huffman.EncodeAll(codes, c.Intervals)
	if err != nil {
		return nil, fmt.Errorf("mgl: entropy stage: %w", err)
	}

	var payload bytes.Buffer
	head := make([]byte, 0, 64)
	head = binary.AppendUvarint(head, magic)
	head = binary.AppendUvarint(head, version)
	head = binary.AppendUvarint(head, uint64(len(dims)))
	for _, d := range dims {
		head = binary.AppendUvarint(head, uint64(d))
	}
	head = binary.AppendUvarint(head, uint64(c.Intervals))
	head = binary.AppendUvarint(head, math.Float64bits(q))
	head = binary.AppendUvarint(head, uint64(len(unpred)))
	head = binary.AppendUvarint(head, uint64(len(coded)))
	payload.Write(head)
	payload.Write(coded)
	raw := make([]byte, 8)
	for _, v := range unpred {
		binary.LittleEndian.PutUint64(raw, math.Float64bits(v))
		payload.Write(raw)
	}

	var out bytes.Buffer
	out.WriteByte(1)
	fw, err := flate.NewWriter(&out, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(payload.Bytes()); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	if out.Len() >= payload.Len()+1 {
		return append([]byte{0}, payload.Bytes()...), nil
	}
	return out.Bytes(), nil
}

// ErrCorrupt is returned for malformed payloads.
var ErrCorrupt = errors.New("mgl: corrupt payload")

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(buf []byte) ([]float64, error) {
	if len(buf) < 2 {
		return nil, ErrCorrupt
	}
	marker, body := buf[0], buf[1:]
	switch marker {
	case 0:
	case 1:
		var err error
		body, err = io.ReadAll(flate.NewReader(bytes.NewReader(body)))
		if err != nil {
			return nil, fmt.Errorf("mgl: lossless stage: %w", err)
		}
	default:
		return nil, ErrCorrupt
	}
	rd := body
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, ErrCorrupt
		}
		rd = rd[n:]
		return v, nil
	}
	mg, err := next()
	if err != nil || mg != magic {
		return nil, ErrCorrupt
	}
	ver, err := next()
	if err != nil || ver != version {
		return nil, fmt.Errorf("mgl: unsupported version %d", ver)
	}
	nd, err := next()
	if err != nil || nd < 1 || nd > 3 {
		return nil, ErrCorrupt
	}
	dims := make([]int, nd)
	for i := range dims {
		d, err := next()
		if err != nil || d == 0 || d > 1<<40 {
			return nil, ErrCorrupt
		}
		dims[i] = int(d)
	}
	n, err := compress.CheckSize(dims)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	intervals64, err := next()
	if err != nil || intervals64 < 4 || intervals64%2 != 0 || intervals64 > 1<<30 {
		return nil, ErrCorrupt
	}
	radius := int(intervals64) / 2
	qBits, err := next()
	if err != nil {
		return nil, err
	}
	q := math.Float64frombits(qBits)
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return nil, ErrCorrupt
	}
	nUnpred, err := next()
	if err != nil {
		return nil, err
	}
	codedLen, err := next()
	if err != nil {
		return nil, err
	}
	// Check the section lengths separately: a crafted header could wrap
	// codedLen+8*nUnpred past the bound and panic the slice expressions.
	lenRd := uint64(len(rd))
	if codedLen > lenRd || nUnpred > (lenRd-codedLen)/8 {
		return nil, ErrCorrupt
	}
	codes, err := huffman.DecodeAll(rd[:codedLen])
	if err != nil {
		return nil, fmt.Errorf("mgl: entropy stage: %w", err)
	}
	if len(codes) != n {
		return nil, fmt.Errorf("mgl: %d codes for %d values", len(codes), n)
	}
	rawUnpred := rd[codedLen : codedLen+8*nUnpred]
	work := make([]float64, n)
	ui := 0
	twoQ := 2 * q
	for i, code := range codes {
		if code == 0 {
			if ui >= int(nUnpred) {
				return nil, ErrCorrupt
			}
			work[i] = math.Float64frombits(binary.LittleEndian.Uint64(rawUnpred[8*ui:]))
			ui++
			continue
		}
		work[i] = float64(code-radius) * twoQ
	}
	if ui != int(nUnpred) {
		return nil, ErrCorrupt
	}
	recompose(work, dims)
	return work, nil
}
