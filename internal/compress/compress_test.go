package compress

import (
	"math"
	"testing"
)

func TestBoundAbsolute(t *testing.T) {
	data := []float64{-2, 0, 6} // range 8
	if got := AbsBound(0.5).Absolute(data); got != 0.5 {
		t.Fatalf("abs bound = %v", got)
	}
	if got := RelBound(0.25).Absolute(data); got != 2.0 {
		t.Fatalf("rel bound = %v, want 2.0", got)
	}
	// Constant data: relative bound falls back to the raw value.
	if got := RelBound(0.1).Absolute([]float64{5, 5, 5}); got != 0.1 {
		t.Fatalf("constant-data rel bound = %v", got)
	}
	if got := RelBound(0.1).Absolute(nil); got != 0.1 {
		t.Fatalf("empty-data rel bound = %v", got)
	}
}

func TestBoundModeString(t *testing.T) {
	if Abs.String() != "abs" || Rel.String() != "rel" {
		t.Fatal("mode strings")
	}
}

func TestValidate(t *testing.T) {
	ok := []struct {
		n    int
		dims []int
	}{
		{6, []int{6}}, {6, []int{2, 3}}, {24, []int{2, 3, 4}},
	}
	for _, c := range ok {
		if err := Validate(make([]float64, c.n), c.dims); err != nil {
			t.Fatalf("dims %v rejected: %v", c.dims, err)
		}
	}
	if err := Validate(make([]float64, 5), []int{6}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := Validate(nil, nil); err == nil {
		t.Fatal("no dims accepted")
	}
	if err := Validate(make([]float64, 1), []int{1, 1, 1, 1}); err == nil {
		t.Fatal("4 dims accepted")
	}
	if err := Validate(make([]float64, 0), []int{0}); err == nil {
		t.Fatal("zero dim accepted")
	}
	if err := Validate([]float64{math.NaN()}, []int{1}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(100, make([]byte, 100)); got != 8 {
		t.Fatalf("ratio = %v, want 8", got)
	}
	if got := Ratio(10, nil); got != 0 {
		t.Fatalf("empty ratio = %v", got)
	}
}

func TestRegistry(t *testing.T) {
	Register("test-codec", func() Compressor { return nil })
	found := false
	for _, n := range Codecs() {
		if n == "test-codec" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered codec missing from Codecs()")
	}
	if _, err := Get("definitely-not-registered"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}
