// Package compress defines the error-bounded lossy compressor interface
// shared by the SZ-like and ZFP-like codecs, together with the error-bound
// semantics and a registry used by the CLI and benchmark harness.
package compress

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// BoundMode selects how the error bound value is interpreted.
type BoundMode int

// Bound modes.
const (
	// Abs bounds the point-wise absolute error: |x' - x| <= Value.
	Abs BoundMode = iota
	// Rel bounds the point-wise error relative to the data's value range:
	// |x' - x| <= Value * (max - min).
	Rel
)

// String implements fmt.Stringer.
func (m BoundMode) String() string {
	if m == Rel {
		return "rel"
	}
	return "abs"
}

// Bound is an error-bound request.
type Bound struct {
	Mode  BoundMode
	Value float64
}

// RelBound is shorthand for a value-range-relative bound.
func RelBound(v float64) Bound { return Bound{Mode: Rel, Value: v} }

// AbsBound is shorthand for an absolute bound.
func AbsBound(v float64) Bound { return Bound{Mode: Abs, Value: v} }

// Absolute resolves the bound against the data's value range.
func (b Bound) Absolute(data []float64) float64 {
	if b.Mode == Abs {
		return b.Value
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	r := hi - lo
	if len(data) == 0 || r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
		// Constant (or empty) data: any positive tolerance works; pick the
		// bound value itself so a zero range does not produce a zero bound.
		return b.Value
	}
	return b.Value * r
}

// Compressor is an error-bounded lossy codec for float64 arrays. dims gives
// the logical shape ({n}, {ny,nx} or {nz,ny,nx}); the product must equal
// len(data). Implementations must guarantee the point-wise bound for every
// finite input and must round-trip the array length exactly.
type Compressor interface {
	Name() string
	Compress(data []float64, dims []int, bound Bound) ([]byte, error)
	Decompress(buf []byte) ([]float64, error)
}

// Validate checks a (data, dims) pair for the Compress contract.
func Validate(data []float64, dims []int) error {
	if len(dims) < 1 || len(dims) > 3 {
		return fmt.Errorf("compress: %d dims unsupported", len(dims))
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("compress: non-positive dim %d", d)
		}
		n *= d
	}
	if n != len(data) {
		return fmt.Errorf("compress: dims %v imply %d values, data has %d", dims, n, len(data))
	}
	for i, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("compress: non-finite value at index %d", i)
		}
	}
	return nil
}

// Ratio reports the compression ratio achieved for a payload.
func Ratio(numValues int, compressed []byte) float64 {
	if len(compressed) == 0 {
		return 0
	}
	return float64(numValues*8) / float64(len(compressed))
}

// MaxElements bounds the element count a decoder will allocate for; it
// protects against corrupt or hostile headers requesting absurd sizes.
const MaxElements = 1 << 34

// CheckSize validates a decoded dimension list against MaxElements,
// returning the total element count.
func CheckSize(dims []int) (int, error) {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return 0, fmt.Errorf("compress: non-positive dim %d", d)
		}
		if n > MaxElements/d {
			return 0, fmt.Errorf("compress: dims %v exceed element limit", dims)
		}
		n *= d
	}
	return n, nil
}

// MaxExpansion bounds how many decoded values a decoder will believe one
// payload byte can carry. The most expansive legitimate path (all-zero ZFP
// blocks, or constant data through Huffman + DEFLATE) stays three orders of
// magnitude below this, while a hostile header claiming MaxElements values
// for a handful of bytes is rejected before the output array is allocated.
const MaxExpansion = 1 << 16

// PlausibleCount rejects a header-claimed element count that the available
// payload bytes could not possibly encode, so corrupt headers fail before
// allocation instead of after a multi-gigabyte make().
func PlausibleCount(n, payloadBytes int) error {
	if n < 0 || n > MaxElements {
		return fmt.Errorf("compress: element count %d out of range", n)
	}
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	if n > 0 && (payloadBytes == 0 || n/payloadBytes > MaxExpansion) {
		return fmt.Errorf("compress: %d elements implausible for %d payload bytes", n, payloadBytes)
	}
	return nil
}

// ErrUnknownCodec is returned by Get for unregistered names.
var ErrUnknownCodec = errors.New("compress: unknown codec")

var (
	regMu    sync.RWMutex
	registry = map[string]func() Compressor{}
)

// Register adds a codec constructor under its name. Intended to be called
// from package init functions.
func Register(name string, ctor func() Compressor) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = ctor
}

// Get instantiates a registered codec.
func Get(name string) (Compressor, error) {
	regMu.RLock()
	ctor, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownCodec, name, Codecs())
	}
	return ctor(), nil
}

// Codecs lists registered codec names, sorted.
func Codecs() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
