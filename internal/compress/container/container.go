// Package container defines the self-describing envelope wrapped around
// every compressed field payload. zMesh's decode path is the single point
// of failure for data integrity — the compressed artifact stores no
// permutation metadata, so a silently corrupted payload would decompress
// into plausible-looking garbage. The envelope makes corruption loud: it
// records the codec that produced the payload, the value count the payload
// must decode to, and a CRC32-C over the payload bytes, all verified before
// any codec is dispatched.
//
// Layout (all integers little-endian; uvarint = unsigned LEB128):
//
//	offset 0   magic "zMc1" (4 bytes)
//	offset 4   format version (1 byte)
//	offset 5   codec name length L, 1..=MaxCodecName (1 byte)
//	offset 6   codec name (L bytes)
//	...        value count (uvarint)
//	...        payload length P (uvarint)
//	...        CRC32-C of the payload (4 bytes, little-endian)
//	...        payload (exactly P bytes; the envelope must end here)
//
// The magic's first byte (0x7a, 'z') is disjoint from every legacy bare
// payload this repo has ever produced: the SZ and multilevel codecs start
// with a 0x00/0x01 lossless-stage marker, and the ZFP, lossless and chunked
// framings start with the uvarint encoding of a 32-bit magic whose first
// byte has the continuation bit set (>= 0x80). Decoders therefore detect
// the envelope by prefix and fall back to the legacy bare-payload path when
// it is absent.
package container

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/compress"
)

// Version is the current envelope format version.
const Version = 1

// MaxCodecName bounds the codec name length accepted in an envelope.
const MaxCodecName = 32

// Magic is the 4-byte envelope prefix.
var Magic = [4]byte{'z', 'M', 'c', '1'}

// Envelope errors. ErrChecksum wraps ErrCorrupt so callers matching either
// sentinel behave correctly.
var (
	// ErrCorrupt is returned for structurally invalid envelopes: truncated
	// headers, bad lengths, or trailing bytes after the payload.
	ErrCorrupt = errors.New("container: corrupt envelope")
	// ErrChecksum is returned when the payload fails CRC verification.
	ErrChecksum = fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
)

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Envelope is a parsed container.
type Envelope struct {
	// Version is the format version the envelope was written with.
	Version int
	// Codec names the compressor that produced Payload.
	Codec string
	// NumValues is the float64 count Payload must decode to.
	NumValues int
	// Payload is the codec's raw output (aliases the input buffer).
	Payload []byte
}

// IsContainer reports whether buf starts with the envelope magic. A false
// result means buf is a legacy bare payload (or garbage) and should take
// the caller's compatibility path.
func IsContainer(buf []byte) bool {
	return len(buf) >= len(Magic) && [4]byte(buf[:4]) == Magic
}

// Wrap builds an envelope around payload.
func Wrap(codec string, numValues int, payload []byte) ([]byte, error) {
	if len(codec) == 0 || len(codec) > MaxCodecName {
		return nil, fmt.Errorf("container: codec name %q length out of range [1, %d]", codec, MaxCodecName)
	}
	if numValues < 0 || numValues > compress.MaxElements {
		return nil, fmt.Errorf("container: value count %d out of range", numValues)
	}
	out := make([]byte, 0, len(Magic)+2+len(codec)+2*binary.MaxVarintLen64+4+len(payload))
	out = append(out, Magic[:]...)
	out = append(out, Version, byte(len(codec)))
	out = append(out, codec...)
	out = binary.AppendUvarint(out, uint64(numValues))
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return append(out, payload...), nil
}

// Unwrap parses and verifies an envelope. The returned payload aliases buf.
// Callers should test IsContainer first; Unwrap on a non-container buffer
// returns ErrCorrupt.
func Unwrap(buf []byte) (Envelope, error) {
	var env Envelope
	if !IsContainer(buf) {
		return env, fmt.Errorf("%w: missing magic", ErrCorrupt)
	}
	rd := buf[len(Magic):]
	if len(rd) < 2 {
		return env, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	ver := int(rd[0])
	if ver != Version {
		return env, fmt.Errorf("container: unsupported envelope version %d", ver)
	}
	nameLen := int(rd[1])
	rd = rd[2:]
	if nameLen == 0 || nameLen > MaxCodecName || len(rd) < nameLen {
		return env, fmt.Errorf("%w: bad codec name length %d", ErrCorrupt, nameLen)
	}
	name := string(rd[:nameLen])
	rd = rd[nameLen:]
	numValues, n := uvarint(rd)
	if n <= 0 || numValues > compress.MaxElements {
		return env, fmt.Errorf("%w: bad value count", ErrCorrupt)
	}
	rd = rd[n:]
	payloadLen, n := uvarint(rd)
	if n <= 0 {
		return env, fmt.Errorf("%w: bad payload length", ErrCorrupt)
	}
	rd = rd[n:]
	if len(rd) < 4 {
		return env, fmt.Errorf("%w: truncated checksum", ErrCorrupt)
	}
	sum := binary.LittleEndian.Uint32(rd)
	rd = rd[4:]
	// The payload must fill the rest of the buffer exactly: a shorter
	// remainder is truncation, a longer one is trailing garbage.
	if payloadLen != uint64(len(rd)) {
		return env, fmt.Errorf("%w: payload length %d, %d bytes remain", ErrCorrupt, payloadLen, len(rd))
	}
	if crc32.Checksum(rd, castagnoli) != sum {
		return env, ErrChecksum
	}
	env.Version = ver
	env.Codec = name
	env.NumValues = int(numValues)
	env.Payload = rd
	return env, nil
}

// uvarint is binary.Uvarint restricted to the minimal (canonical) encoding:
// a padded varint (trailing zero continuation groups) re-encodes the same
// value in fewer bytes, which would let distinct byte strings parse as the
// same envelope. The envelope format admits exactly one serialization.
func uvarint(b []byte) (uint64, int) {
	v, n := binary.Uvarint(b)
	if n > 1 && b[n-1] == 0 {
		return 0, -1 // non-minimal encoding
	}
	return v, n
}
