package container

import (
	"bytes"
	"testing"
)

// FuzzUnwrap feeds arbitrary bytes to Unwrap: it must never panic, and any
// envelope it accepts must verify (payload length exact, CRC matching), so
// re-wrapping the parsed fields reproduces the input bit-for-bit.
func FuzzUnwrap(f *testing.F) {
	seed, _ := Wrap("sz", 4096, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(seed)
	empty, _ := Wrap("zfp", 0, nil)
	f.Add(empty)
	f.Add([]byte{'z', 'M', 'c', '1', 1, 2, 's', 'z'})
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Unwrap(data)
		if err != nil {
			return
		}
		back, err := Wrap(env.Codec, env.NumValues, env.Payload)
		if err != nil {
			t.Fatalf("accepted envelope does not re-wrap: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("re-wrap not canonical:\n in  % x\n out % x", data, back)
		}
	})
}
