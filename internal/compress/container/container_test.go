package container

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func mustWrap(t *testing.T, codec string, n int, payload []byte) []byte {
	t.Helper()
	buf, err := Wrap(codec, n, payload)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, {0x42}, bytes.Repeat([]byte{1, 2, 3}, 1000)} {
		buf := mustWrap(t, "sz", 1234, payload)
		env, err := Unwrap(buf)
		if err != nil {
			t.Fatalf("payload len %d: %v", len(payload), err)
		}
		if env.Codec != "sz" || env.NumValues != 1234 || env.Version != Version {
			t.Fatalf("envelope %+v", env)
		}
		if !bytes.Equal(env.Payload, payload) {
			t.Fatal("payload not bit-exact")
		}
	}
}

func TestIsContainer(t *testing.T) {
	buf := mustWrap(t, "zfp", 8, []byte{9, 9})
	if !IsContainer(buf) {
		t.Fatal("wrapped payload not detected")
	}
	// Legacy framings: sz/mgl marker bytes and the uvarint-magic codecs.
	for _, legacy := range [][]byte{{0x00, 1, 2}, {0x01, 1, 2}, {0xb1, 0xa0, 0x91}, nil, {'z'}, {'z', 'M', 'c'}} {
		if IsContainer(legacy) {
			t.Fatalf("false positive on % x", legacy)
		}
	}
}

func TestWrapRejectsBadArgs(t *testing.T) {
	if _, err := Wrap("", 1, nil); err == nil {
		t.Fatal("empty codec name accepted")
	}
	if _, err := Wrap(strings.Repeat("x", MaxCodecName+1), 1, nil); err == nil {
		t.Fatal("oversized codec name accepted")
	}
	if _, err := Wrap("sz", -1, nil); err == nil {
		t.Fatal("negative value count accepted")
	}
}

// TestCorruptTable mutates a valid envelope at every field and asserts the
// mutation is rejected — never a silent wrong result.
func TestCorruptTable(t *testing.T) {
	payload := []byte{10, 20, 30, 40, 50}
	buf := mustWrap(t, "sz", 5, payload)

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }},
		{"zero name length", func(b []byte) []byte { b[5] = 0; return b }},
		{"oversized name length", func(b []byte) []byte { b[5] = MaxCodecName + 1; return b }},
		{"name length past end", func(b []byte) []byte { b[5] = 30; return b }},
		{"flipped crc", func(b []byte) []byte { b[len(b)-len(payload)-1] ^= 1; return b }},
		{"flipped payload bit", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) }},
	}
	// Truncation at every byte boundary of the envelope.
	for cut := 0; cut < len(buf); cut++ {
		mut := append([]byte(nil), buf[:cut]...)
		if _, err := Unwrap(mut); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for _, tc := range cases {
		mut := tc.mut(append([]byte(nil), buf...))
		if _, err := Unwrap(mut); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

func TestChecksumSentinel(t *testing.T) {
	buf := mustWrap(t, "sz", 5, []byte{1, 2, 3, 4, 5})
	buf[len(buf)-3] ^= 0x80
	_, err := Unwrap(buf)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum, got %v", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatal("ErrChecksum must wrap ErrCorrupt")
	}
}

func TestUnwrapAliasesNotCopies(t *testing.T) {
	payload := []byte{1, 2, 3}
	buf := mustWrap(t, "sz", 3, payload)
	env, err := Unwrap(buf)
	if err != nil {
		t.Fatal(err)
	}
	if &env.Payload[0] != &buf[len(buf)-3] {
		t.Fatal("Unwrap copied the payload")
	}
}
