// Package cluster implements the consistent-hash placement shared by every
// zmeshd replica and by the routing client. The registry is already
// content-addressed — a mesh id is the SHA-256 of its structure bytes — so
// any replica can rebuild a recipe from the structure alone; what the ring
// adds is an agreement on *which* replicas hold which meshes, so encoder
// caches shard across the cluster instead of every node caching everything.
//
// Placement is a classic consistent-hash ring with virtual nodes: each node
// contributes VNodes points on a 64-bit circle, a mesh id hashes to one
// point, and its R owners are the first R distinct nodes found walking
// clockwise from there. All hashing is SHA-256-derived, so placement is a
// pure deterministic function of (nodes, vnodes, replication, id): every
// replica and every client computes the same owner list with no
// coordination. Adding or removing one node moves only the arcs adjacent to
// its points — about K/N of K ids for N nodes — which is what makes
// rebalancing survivable; ring_test.go pins both the movement bound and a
// golden placement so any change here is deliberate.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
)

// Defaults applied by New when the corresponding argument is zero.
const (
	// DefaultVNodes is the virtual-node count per physical node. More
	// vnodes smooth the load distribution (stddev ~ 1/sqrt(vnodes)) at the
	// cost of a larger point table; 64 keeps per-node load within a few
	// percent for small clusters.
	DefaultVNodes = 64
	// DefaultReplication is the number of replicas that hold each mesh's
	// structure bytes (and therefore can serve it without a peer fetch).
	DefaultReplication = 2
)

// Ring is an immutable consistent-hash ring. Construct with New; derive
// changed memberships with WithNodes. Immutability is what makes it safe to
// share between request goroutines and to swap atomically on refresh.
type Ring struct {
	nodes       []string // sorted, unique
	vnodes      int
	replication int
	points      []point // sorted by hash; len = len(nodes) * vnodes
}

// point is one virtual node on the circle.
type point struct {
	hash uint64
	node int32 // index into nodes
}

// New builds a ring over the given node addresses (base URLs, used verbatim
// as identities — "http://a:1" and "http://a:1/" are different nodes).
// vnodes and replication fall back to the defaults when <= 0; replication
// is clamped to the node count. Node order does not matter: the ring sorts
// internally so any permutation of the same membership hashes identically.
func New(nodes []string, vnodes, replication int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if replication <= 0 {
		replication = DefaultReplication
	}
	if replication > len(nodes) {
		replication = len(nodes)
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node address")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
	}
	r := &Ring{
		nodes:       sorted,
		vnodes:      vnodes,
		replication: replication,
		points:      make([]point, 0, len(sorted)*vnodes),
	}
	for ni, node := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: pointHash(node, v), node: int32(ni)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break by node index so placement
		// stays a pure function of membership.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// WithNodes derives a ring with the same vnodes/replication configuration
// over a different membership.
func (r *Ring) WithNodes(nodes []string) (*Ring, error) {
	return New(nodes, r.vnodes, r.replication)
}

// pointHash places virtual node v of a node on the circle: the first 8
// bytes (big-endian) of SHA-256("node\x00vnode"). SHA-256 rather than a
// seeded fast hash so every language/runtime that ever reimplements this
// agrees byte-for-byte.
func pointHash(node string, v int) uint64 {
	h := sha256.New()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(v)))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0]))
}

// keyHash places a mesh id on the circle. The id is already hex SHA-256 of
// the structure bytes, but it is hashed again (with a domain-separating
// prefix) so arbitrary test keys place uniformly too.
func keyHash(id string) uint64 {
	h := sha256.New()
	h.Write([]byte("mesh\x00"))
	h.Write([]byte(id))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0]))
}

// MeshID is the content address of a structure blob: hex SHA-256. It lives
// here (rather than only in internal/server) so the routing client can
// compute placement before any server has seen the bytes.
func MeshID(structure []byte) string {
	sum := sha256.Sum256(structure)
	return hex.EncodeToString(sum[:])
}

// Nodes returns the ring membership (sorted; a copy).
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// NumNodes reports the membership size.
func (r *Ring) NumNodes() int { return len(r.nodes) }

// VNodes reports the virtual-node count per node.
func (r *Ring) VNodes() int { return r.vnodes }

// Replication reports the configured replication factor (already clamped to
// the node count).
func (r *Ring) Replication() int { return r.replication }

// Contains reports whether node is a ring member.
func (r *Ring) Contains(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// Owners returns the replicas responsible for a mesh id: the first
// Replication distinct nodes clockwise from the id's point. The first entry
// is the primary. The order is deterministic and identical on every ring
// with the same configuration, so clients and servers agree on both the
// owner set and the preferred contact order.
func (r *Ring) Owners(id string) []string {
	return r.appendOwners(make([]string, 0, r.replication), id)
}

// appendOwners is Owners into a caller-provided slice (hot-path variant for
// the routing client's per-request owner walk).
func (r *Ring) appendOwners(dst []string, id string) []string {
	want := r.replication
	kh := keyHash(id)
	// First point with hash >= kh, wrapping to 0.
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	var seen [8]int32 // replication is small; linear scan beats a map
	var seenSlice []int32
	if want <= len(seen) {
		seenSlice = seen[:0]
	} else {
		seenSlice = make([]int32, 0, want)
	}
	for i := 0; i < len(r.points) && len(seenSlice) < want; i++ {
		p := r.points[(start+i)%len(r.points)]
		dup := false
		for _, s := range seenSlice {
			if s == p.node {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seenSlice = append(seenSlice, p.node)
		dst = append(dst, r.nodes[p.node])
	}
	return dst
}

// Primary returns the first owner of a mesh id.
func (r *Ring) Primary(id string) string {
	kh := keyHash(id)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	return r.nodes[r.points[start%len(r.points)].node]
}

// IsOwner reports whether node is among the owners of a mesh id.
func (r *Ring) IsOwner(node, id string) bool {
	if !r.Contains(node) {
		return false
	}
	var buf [8]string
	var owners []string
	if r.replication <= len(buf) {
		owners = r.appendOwners(buf[:0], id)
	} else {
		owners = r.Owners(id)
	}
	for _, o := range owners {
		if o == node {
			return true
		}
	}
	return false
}
