package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func mustRing(t *testing.T, nodes []string, vnodes, repl int) *Ring {
	t.Helper()
	r, err := New(nodes, vnodes, repl)
	if err != nil {
		t.Fatalf("New(%v, %d, %d): %v", nodes, vnodes, repl, err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := New([]string{"a", "a"}, 0, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := New([]string{"a", ""}, 0, 0); err == nil {
		t.Fatal("empty node address accepted")
	}
	// Defaults and clamping.
	r := mustRing(t, []string{"a"}, 0, 0)
	if r.VNodes() != DefaultVNodes {
		t.Fatalf("vnodes = %d, want default %d", r.VNodes(), DefaultVNodes)
	}
	if r.Replication() != 1 {
		t.Fatalf("replication = %d, want clamp to 1 node", r.Replication())
	}
}

// TestDeterministicAcrossOrder pins that placement is a pure function of
// membership: any permutation of the node list yields identical owners.
func TestDeterministicAcrossOrder(t *testing.T) {
	a := mustRing(t, []string{"n1", "n2", "n3", "n4"}, 32, 2)
	b := mustRing(t, []string{"n4", "n2", "n1", "n3"}, 32, 2)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("id-%d", i)
		if got, want := b.Owners(id), a.Owners(id); !reflect.DeepEqual(got, want) {
			t.Fatalf("id %s: owners differ across node order: %v vs %v", id, got, want)
		}
	}
}

// TestOwnersShape pins the structural contract: R distinct live nodes, the
// primary first, IsOwner consistent with Owners.
func TestOwnersShape(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e"}
	r := mustRing(t, nodes, 64, 3)
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("key-%d", i)
		owners := r.Owners(id)
		if len(owners) != 3 {
			t.Fatalf("id %s: %d owners, want 3", id, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("id %s: duplicate owner %s in %v", id, o, owners)
			}
			seen[o] = true
			if !r.IsOwner(o, id) {
				t.Fatalf("id %s: Owners lists %s but IsOwner denies it", id, o)
			}
		}
		if owners[0] != r.Primary(id) {
			t.Fatalf("id %s: Primary %s != Owners[0] %s", id, r.Primary(id), owners[0])
		}
		for _, n := range nodes {
			if !seen[n] && r.IsOwner(n, id) {
				t.Fatalf("id %s: IsOwner(%s) true but not in Owners %v", id, n, owners)
			}
		}
	}
	if r.IsOwner("not-a-member", "key-1") {
		t.Fatal("IsOwner accepted a non-member")
	}
}

// TestDistribution sanity-checks vnode smoothing: with 128 vnodes no node's
// primary share strays past 2x the fair share.
func TestDistribution(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r := mustRing(t, nodes, 128, 1)
	const K = 4000
	counts := map[string]int{}
	for i := 0; i < K; i++ {
		counts[r.Primary(fmt.Sprintf("key-%d", i))]++
	}
	fair := K / len(nodes)
	for n, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("node %s holds %d/%d primaries, outside [%d, %d]", n, c, K, fair/2, fair*2)
		}
	}
}

// ownerKey canonicalizes an owner set (order-insensitive) for comparison.
func ownerKey(owners []string) string {
	s := append([]string(nil), owners...)
	sort.Strings(s)
	return fmt.Sprint(s)
}

// TestAddNodeMovesBoundedKeys is the rebalancing property the ring exists
// for: growing an N-node ring to N+1 moves at most about K/(N+1) primaries
// (plus vnode-variance slack), and an id's owner set changes only when the
// new node joined it — consistent hashing's minimal-disruption contract.
func TestAddNodeMovesBoundedKeys(t *testing.T) {
	const (
		N      = 5
		K      = 3000
		vnodes = 128
		R      = 2
	)
	rng := rand.New(rand.NewSource(7))
	nodes := make([]string, N)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	before := mustRing(t, nodes, vnodes, R)
	after := mustRing(t, append(append([]string(nil), nodes...), "http://replica-new:8080"), vnodes, R)

	ids := make([]string, K)
	for i := range ids {
		ids[i] = fmt.Sprintf("mesh-%d-%d", i, rng.Int63())
	}
	movedPrimary, changedOwners := 0, 0
	for _, id := range ids {
		if before.Primary(id) != after.Primary(id) {
			movedPrimary++
			// A primary only ever moves *to* the new node; existing arcs
			// between surviving points are untouched.
			if after.Primary(id) != "http://replica-new:8080" {
				t.Fatalf("id %s: primary moved %s -> %s, not to the added node",
					id, before.Primary(id), after.Primary(id))
			}
		}
		ob, oa := before.Owners(id), after.Owners(id)
		if ownerKey(ob) != ownerKey(oa) {
			changedOwners++
			joined := false
			for _, o := range oa {
				if o == "http://replica-new:8080" {
					joined = true
				}
			}
			if !joined {
				t.Fatalf("id %s: owner set changed %v -> %v without the added node joining it", id, ob, oa)
			}
		}
	}
	// Expected K/(N+1) primaries move; allow 50% slack for vnode variance.
	if bound := K/(N+1) + K/(N+1)/2; movedPrimary > bound {
		t.Fatalf("adding 1 of %d nodes moved %d/%d primaries, want <= %d", N+1, movedPrimary, K, bound)
	}
	// Owner sets change for ids the new node now owns: expected R*K/(N+1).
	if bound := R*K/(N+1) + R*K/(N+1)/2; changedOwners > bound {
		t.Fatalf("adding 1 of %d nodes changed %d/%d owner sets, want <= %d", N+1, changedOwners, K, bound)
	}
	t.Logf("add: moved %d/%d primaries (fair %d), changed %d owner sets (fair %d)",
		movedPrimary, K, K/(N+1), changedOwners, R*K/(N+1))
}

// TestRemoveNodeMovesOnlyItsKeys pins the removal side exactly: an owner
// set changes if and only if the removed node was in it, and a primary
// moves only off the removed node.
func TestRemoveNodeMovesOnlyItsKeys(t *testing.T) {
	const (
		N      = 5
		K      = 3000
		vnodes = 128
		R      = 2
	)
	nodes := make([]string, N)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	removed := nodes[2]
	before := mustRing(t, nodes, vnodes, R)
	after, err := before.WithNodes(append(append([]string(nil), nodes[:2]...), nodes[3:]...))
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < K; i++ {
		id := fmt.Sprintf("mesh-%d", i)
		ob, oa := before.Owners(id), after.Owners(id)
		had := false
		for _, o := range ob {
			if o == removed {
				had = true
			}
		}
		if had != (ownerKey(ob) != ownerKey(oa)) {
			t.Fatalf("id %s: removed-node membership %v but owner-set change %v (%v -> %v)",
				id, had, ownerKey(ob) != ownerKey(oa), ob, oa)
		}
		if pb := before.Primary(id); pb != removed && pb != after.Primary(id) {
			t.Fatalf("id %s: primary moved %s -> %s though %s was not removed",
				id, pb, after.Primary(id), pb)
		}
		if had {
			moved++
		}
	}
	if bound := R*K/N + R*K/N/2; moved > bound {
		t.Fatalf("removing 1 of %d nodes disturbed %d/%d ids, want <= %d", N, moved, K, bound)
	}
}

// TestGoldenPlacement pins the exact placement of a fixed ring. If this
// test fails, the hash or walk changed and EVERY deployed ring rebalances:
// only update the fixture as a deliberate, called-out migration.
func TestGoldenPlacement(t *testing.T) {
	r := mustRing(t, []string{"http://node-a:9001", "http://node-b:9002", "http://node-c:9003"}, 16, 2)
	golden := map[string][2]string{
		"0c0b861b44ff25d0a8eb9e4f4d7e62a0c1bb07cf9a3f2f2ef65f9ce2f4bb5f30": {"http://node-c:9003", "http://node-b:9002"},
		"mesh-0": {"http://node-a:9001", "http://node-b:9002"},
		"mesh-1": {"http://node-c:9003", "http://node-a:9001"},
		"mesh-2": {"http://node-a:9001", "http://node-b:9002"},
		"mesh-3": {"http://node-c:9003", "http://node-b:9002"},
		"mesh-4": {"http://node-c:9003", "http://node-a:9001"},
		"mesh-5": {"http://node-b:9002", "http://node-a:9001"},
		"mesh-6": {"http://node-c:9003", "http://node-a:9001"},
		"mesh-7": {"http://node-c:9003", "http://node-a:9001"},
	}
	for id, want := range golden {
		got := r.Owners(id)
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("id %s: owners %v, golden fixture %v — placement changed, see test comment", id, got, want)
		}
	}
}

func TestMeshID(t *testing.T) {
	// Pin the content address so server and client (which both route by it)
	// can never drift: hex SHA-256 of the raw bytes.
	if got, want := MeshID([]byte("abc")), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"; got != want {
		t.Fatalf("MeshID(abc) = %s, want %s", got, want)
	}
}

func BenchmarkOwners(b *testing.B) {
	nodes := make([]string, 8)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	r, err := New(nodes, 128, 3)
	if err != nil {
		b.Fatal(err)
	}
	id := MeshID([]byte("bench"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf [8]string
		_ = r.appendOwners(buf[:0], id)
	}
}
