package report

import (
	"testing"

	"repro/internal/experiments"
)

func TestTelemetryReport(t *testing.T) {
	s := experiments.NewSuite(experiments.QuickConfig())
	rep, err := Telemetry(s, []string{"sz"}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// 4 layouts × 3 curves × 1 codec × 1 problem.
	if want := 12; len(rep.Points) != want {
		t.Fatalf("got %d points, want %d", len(rep.Points), want)
	}
	seen := make(map[string]bool)
	for _, pt := range rep.Points {
		key := pt.Layout + "/" + pt.Curve + "/" + pt.Codec
		if seen[key] {
			t.Errorf("duplicate combo %s", key)
		}
		seen[key] = true
		if pt.Ratio <= 0 {
			t.Errorf("%s: non-positive ratio %v", key, pt.Ratio)
		}
		if pt.CompressNs <= 0 || pt.DecompressNs <= 0 || pt.RecipeNs <= 0 {
			t.Errorf("%s: missing timings %d/%d/%d", key, pt.CompressNs, pt.DecompressNs, pt.RecipeNs)
		}
		if pt.MaxAbsError <= 0 {
			t.Errorf("%s: expected lossy error > 0, got %v", key, pt.MaxAbsError)
		}
		// The per-stage breakdown must include recipe phases and the codec
		// stage for this combo. Level-order builds no sort keys, so
		// recipe.sort is only required on reordering layouts.
		wantStages := []string{"recipe.setup", "encode.stage.codec." + pt.Codec, "decode.stage.restore"}
		if pt.Layout != "level" {
			wantStages = append(wantStages, "recipe.sort")
		}
		for _, stage := range wantStages {
			if pt.StageNs[stage] <= 0 {
				t.Errorf("%s: stage %q missing from breakdown %v", key, stage, pt.StageNs)
			}
		}
		if pt.Counters["encode.fields"] != int64(pt.Fields) {
			t.Errorf("%s: encode.fields=%d want %d", key, pt.Counters["encode.fields"], pt.Fields)
		}
		if pt.Counters["decode.fields"] != int64(pt.Fields) {
			t.Errorf("%s: decode.fields=%d want %d", key, pt.Counters["decode.fields"], pt.Fields)
		}
	}
	// zmesh layouts should not be less smooth than the level-order identity
	// on at least one combo (sanity that the smoothness column is wired up).
	var anyPositive bool
	for _, pt := range rep.Points {
		if pt.Layout != "level" && pt.SmoothnessPct > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Error("no reordered combo reported positive smoothness improvement")
	}
}
