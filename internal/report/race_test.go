//go:build race

package report

// raceEnabled reports whether this test binary runs under the race
// detector, whose instrumentation distorts kernel timings beyond use.
const raceEnabled = true
