package report

import "testing"

func TestCIGateSelfComparison(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts the kernel timing the floor gates on")
	}
	m, err := MeasureCIGate(1)
	if err != nil {
		t.Fatal(err)
	}
	if m.RecipeScore <= 0 || m.CompressScore <= 0 || m.DecompressScore <= 0 || m.ServerScore <= 0 {
		t.Fatalf("non-positive scores: %+v", m)
	}
	if m.KernelSpeedup <= 0 || m.KernelTunedNs <= 0 || m.KernelSerialNs <= 0 {
		t.Fatalf("kernel measurement missing: %+v", m)
	}
	if m.ServerAllocsPerOp <= 0 {
		t.Fatalf("server allocs/op missing: %+v", m)
	}
	if len(m.Ratios) != 12 {
		t.Fatalf("got %d ratio combos, want 12 (6 layouts x 2 codecs)", len(m.Ratios))
	}
	for _, combo := range []string{"tac/hilbert/sz", "tac/hilbert/zfp", "auto/hilbert/sz", "auto/hilbert/zfp"} {
		if _, ok := m.Ratios[combo]; !ok {
			t.Errorf("ratio combo %s missing", combo)
		}
	}
	for combo, r := range m.Ratios {
		if r <= 1 {
			t.Errorf("ratio %s = %v, expected compression > 1", combo, r)
		}
	}
	// A measurement compared against itself is within budget for every
	// baseline-relative entry; the kernel floor is absolute, so only a
	// genuinely slow kernel can make self-comparison fail.
	if v := CompareCIGate(m, m, 0.15, 0.01); len(v) != 0 {
		t.Fatalf("self-comparison produced violations: %v", v)
	}
}

// gateFixture returns a synthetic measurement that passes every absolute
// check, for exercising CompareCIGate's baseline-relative logic.
func gateFixture() *CIMeasurement {
	return &CIMeasurement{
		Version:           CIGateVersion,
		KernelTier:        "unsafe",
		RecipeScore:       1.0,
		CompressScore:     2.0,
		DecompressScore:   0.5,
		ServerScore:       1.5,
		KernelSpeedup:     1.5,
		KernelTunedNs:     1e6,
		KernelSerialNs:    15e5,
		ServerAllocsPerOp: 4000,
		Ratios:            map[string]float64{"zmesh/hilbert/sz": 10.0, "level/hilbert/zfp": 8.0},
	}
}

func TestCIGateDetectsRegressions(t *testing.T) {
	base := gateFixture()
	cur := gateFixture()
	cur.RecipeScore = 1.2                  // +20% — over the 15% budget
	cur.CompressScore = 2.1                // +5% — within budget
	cur.Ratios["zmesh/hilbert/sz"] = 9.5   // -5% — over the 1% budget
	cur.Ratios["level/hilbert/zfp"] = 7.99 // -0.1% — within budget
	v := CompareCIGate(base, cur, 0.15, 0.01)
	if len(v) != 2 {
		t.Fatalf("want 2 violations (recipe slowdown + sz ratio drop), got %d: %v", len(v), v)
	}

	// The kernel floor is absolute: a speedup below KernelSpeedupFloor fails
	// even when the baseline agrees with it.
	slow := gateFixture()
	slow.KernelSpeedup = KernelSpeedupFloor - 0.1
	slowBase := gateFixture()
	slowBase.KernelSpeedup = slow.KernelSpeedup
	if v := CompareCIGate(slowBase, slow, 0.15, 0.01); len(v) != 1 {
		t.Fatalf("slow kernel: want 1 violation, got %v", v)
	}

	// Allocation regressions past the 25%+8 slack fail; within-slack jitter
	// does not.
	hungry := gateFixture()
	hungry.ServerAllocsPerOp = base.ServerAllocsPerOp*1.25 + 9
	if v := CompareCIGate(base, hungry, 0.15, 0.01); len(v) != 1 {
		t.Fatalf("alloc regression: want 1 violation, got %v", v)
	}
	jitter := gateFixture()
	jitter.ServerAllocsPerOp = base.ServerAllocsPerOp + 4
	if v := CompareCIGate(base, jitter, 0.15, 0.01); len(v) != 0 {
		t.Fatalf("alloc jitter within slack flagged: %v", v)
	}

	// Version skew must be its own hard failure.
	stale := gateFixture()
	stale.Version = CIGateVersion + 1
	if v := CompareCIGate(stale, cur, 0.15, 0.01); len(v) != 1 {
		t.Fatalf("version skew: want 1 violation, got %v", v)
	}

	// A combo missing from the current measurement fails rather than passing
	// silently.
	missing := gateFixture()
	curNoRatio := gateFixture()
	curNoRatio.Ratios = map[string]float64{"zmesh/hilbert/sz": 10.0}
	if v := CompareCIGate(missing, curNoRatio, 0.15, 0.01); len(v) != 1 {
		t.Fatalf("missing combo: want 1 violation, got %v", v)
	}
}

func TestMergeConservative(t *testing.T) {
	a := gateFixture()
	b := gateFixture()
	b.RecipeScore, b.RecipeNs = 1.4, 7e6                                 // slower mode — should win
	b.CompressScore = 1.8                                                // faster — should lose
	b.KernelSpeedup, b.KernelTunedNs, b.KernelSerialNs = 1.7, 9e5, 153e4 // better — should win
	b.ServerAllocsPerOp = 4100                                           // hungrier — should win
	if err := a.MergeConservative(b); err != nil {
		t.Fatal(err)
	}
	if a.RecipeScore != 1.4 || a.RecipeNs != 7e6 {
		t.Fatalf("slower recipe mode not kept: %+v", a)
	}
	if a.CompressScore != 2.0 {
		t.Fatalf("faster compress mode overwrote the slow one: %+v", a)
	}
	if a.KernelSpeedup != 1.7 || a.ServerAllocsPerOp != 4100 {
		t.Fatalf("kernel/allocs merge wrong: %+v", a)
	}

	// Diverging deterministic ratios mean the two runs measured different
	// code; refuse to merge.
	c := gateFixture()
	c.Ratios["zmesh/hilbert/sz"] = 9.0
	if err := gateFixture().MergeConservative(c); err == nil {
		t.Fatal("diverging ratios merged silently")
	}
	d := gateFixture()
	d.Version = CIGateVersion + 1
	if err := gateFixture().MergeConservative(d); err == nil {
		t.Fatal("version skew merged silently")
	}
}
