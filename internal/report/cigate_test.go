package report

import "testing"

func TestCIGateSelfComparison(t *testing.T) {
	m, err := MeasureCIGate(1)
	if err != nil {
		t.Fatal(err)
	}
	if m.RecipeScore <= 0 || m.CompressScore <= 0 || m.DecompressScore <= 0 {
		t.Fatalf("non-positive scores: %+v", m)
	}
	if len(m.Ratios) != 8 {
		t.Fatalf("got %d ratio combos, want 8 (4 layouts x 2 codecs)", len(m.Ratios))
	}
	for combo, r := range m.Ratios {
		if r <= 1 {
			t.Errorf("ratio %s = %v, expected compression > 1", combo, r)
		}
	}
	// A measurement compared against itself is by definition within budget.
	if v := CompareCIGate(m, m, 0.15, 0.01); len(v) != 0 {
		t.Fatalf("self-comparison produced violations: %v", v)
	}
}

func TestCIGateDetectsRegressions(t *testing.T) {
	base := &CIMeasurement{
		Version:         CIGateVersion,
		RecipeScore:     1.0,
		CompressScore:   2.0,
		DecompressScore: 0.5,
		Ratios:          map[string]float64{"zmesh/hilbert/sz": 10.0, "level/hilbert/zfp": 8.0},
	}
	cur := &CIMeasurement{
		Version:         CIGateVersion,
		RecipeScore:     1.2, // +20% — over the 15% budget
		CompressScore:   2.1, // +5% — within budget
		DecompressScore: 0.5,
		Ratios:          map[string]float64{"zmesh/hilbert/sz": 9.5, "level/hilbert/zfp": 7.99}, // -5% / -0.1%
	}
	v := CompareCIGate(base, cur, 0.15, 0.01)
	if len(v) != 2 {
		t.Fatalf("want 2 violations (recipe slowdown + sz ratio drop), got %d: %v", len(v), v)
	}

	// Version skew must be its own hard failure.
	stale := &CIMeasurement{Version: CIGateVersion + 1}
	if v := CompareCIGate(stale, cur, 0.15, 0.01); len(v) != 1 {
		t.Fatalf("version skew: want 1 violation, got %v", v)
	}

	// A combo missing from the current measurement fails rather than passing
	// silently.
	missing := &CIMeasurement{
		Version:     CIGateVersion,
		RecipeScore: 1, CompressScore: 1, DecompressScore: 1,
		Ratios: map[string]float64{"zmesh/hilbert/sz": 10.0},
	}
	curNoRatio := &CIMeasurement{
		Version:     CIGateVersion,
		RecipeScore: 1, CompressScore: 1, DecompressScore: 1,
		Ratios: map[string]float64{},
	}
	if v := CompareCIGate(missing, curNoRatio, 0.15, 0.01); len(v) != 1 {
		t.Fatalf("missing combo: want 1 violation, got %v", v)
	}
}
