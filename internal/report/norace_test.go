//go:build !race

package report

const raceEnabled = false
